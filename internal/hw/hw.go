// Package hw models the hardware platform the hypervisor runs on: CPUs
// with register files and local APIC timers, an IO-APIC, physical memory,
// a per-CPU performance-counter NMI source, and I/O devices (block device,
// NIC).
//
// The model corresponds to the paper's testbed: an 8-core x86-64 machine
// with 8 GB of memory. Hardware raises interrupts by calling back into a
// registered InterruptSink (the hypervisor); it never depends on hypervisor
// packages, keeping the layering strict.
package hw

import (
	"fmt"
	"time"

	"nilihype/internal/simclock"
)

// Vector identifies an interrupt delivered to a CPU.
type Vector int

// Interrupt vectors. The specific values are arbitrary; only identity
// matters to the simulation.
const (
	VecTimer Vector = iota + 1 // local APIC timer
	VecNMI                     // performance-counter NMI (watchdog)
	VecBlock                   // block device completion
	VecNIC                     // network device RX
	VecIPI                     // inter-processor interrupt
)

// String returns a short name for the vector.
func (v Vector) String() string {
	switch v {
	case VecTimer:
		return "timer"
	case VecNMI:
		return "nmi"
	case VecBlock:
		return "block"
	case VecNIC:
		return "nic"
	case VecIPI:
		return "ipi"
	default:
		return fmt.Sprintf("vec(%d)", int(v))
	}
}

// InterruptSink receives interrupts raised by the hardware. The hypervisor
// registers itself as the sink. NMIs are delivered even when the target CPU
// has interrupts disabled; all other vectors are held pending by the caller
// (the IOAPIC / local APIC) until the sink accepts them.
type InterruptSink interface {
	// DeliverInterrupt is invoked when vector fires on cpu. It returns
	// true if the sink accepted the interrupt and false if the interrupt
	// must remain pending (e.g. interrupts disabled at the CPU).
	DeliverInterrupt(cpu int, vec Vector) bool
}

// PageSize is the size of a physical page frame.
const PageSize = 4096

// Config describes a machine.
type Config struct {
	CPUs     int           // number of physical CPUs
	MemoryMB int           // physical memory in MiB
	BlockSvc time.Duration // block device service time per request
	NICLat   time.Duration // NIC delivery latency
}

// DefaultConfig returns the paper's testbed: 8 Nehalem cores, 8 GB RAM.
func DefaultConfig() Config {
	return Config{
		CPUs:     8,
		MemoryMB: 8192,
		BlockSvc: 200 * time.Microsecond,
		NICLat:   30 * time.Microsecond,
	}
}

// Machine is the simulated hardware platform.
type Machine struct {
	Clock *simclock.Clock

	cpus   []*CPU
	ioapic *IOAPIC
	block  *BlockDevice
	nic    *NIC

	pageFrames int
	sink       InterruptSink
}

// NewMachine builds a machine from cfg on the given clock.
func NewMachine(clock *simclock.Clock, cfg Config) (*Machine, error) {
	if cfg.CPUs <= 0 {
		return nil, fmt.Errorf("hw: invalid CPU count %d", cfg.CPUs)
	}
	if cfg.MemoryMB <= 0 {
		return nil, fmt.Errorf("hw: invalid memory size %dMB", cfg.MemoryMB)
	}
	m := &Machine{
		Clock:      clock,
		pageFrames: cfg.MemoryMB * 1024 * 1024 / PageSize,
	}
	for i := 0; i < cfg.CPUs; i++ {
		m.cpus = append(m.cpus, newCPU(m, i))
	}
	m.ioapic = newIOAPIC(m)
	m.block = newBlockDevice(m, cfg.BlockSvc)
	m.nic = newNIC(m, cfg.NICLat)
	return m, nil
}

// SetSink registers the interrupt sink (the hypervisor). It must be called
// before any interrupt source is armed.
func (m *Machine) SetSink(s InterruptSink) { m.sink = s }

// NumCPUs returns the number of physical CPUs.
func (m *Machine) NumCPUs() int { return len(m.cpus) }

// CPU returns physical CPU i.
func (m *Machine) CPU(i int) *CPU { return m.cpus[i] }

// CPUs returns all CPUs in index order.
func (m *Machine) CPUs() []*CPU { return m.cpus }

// HypervisorCycles returns the machine-wide total of cycles spent
// executing hypervisor code — the telemetry gauge behind the
// processing-overhead trend.
func (m *Machine) HypervisorCycles() uint64 {
	var total uint64
	for _, c := range m.cpus {
		total += c.Cycles.Hypervisor
	}
	return total
}

// IOAPIC returns the machine's IO-APIC.
func (m *Machine) IOAPIC() *IOAPIC { return m.ioapic }

// Block returns the block device.
func (m *Machine) Block() *BlockDevice { return m.block }

// NIC returns the network device.
func (m *Machine) NIC() *NIC { return m.nic }

// PageFrames returns the number of physical page frames.
func (m *Machine) PageFrames() int { return m.pageFrames }

// MemoryBytes returns the physical memory size in bytes.
func (m *Machine) MemoryBytes() int64 { return int64(m.pageFrames) * PageSize }

// deliver routes an interrupt to the sink, returning whether it was
// accepted. Unrouted interrupts (no sink) are dropped, which only happens
// in unit tests of the hw package itself.
func (m *Machine) deliver(cpu int, vec Vector) bool {
	if m.sink == nil {
		return false
	}
	return m.sink.DeliverInterrupt(cpu, vec)
}
