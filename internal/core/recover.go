package core

import (
	"fmt"
	"time"

	"nilihype/internal/audit"
	"nilihype/internal/detect"
	"nilihype/internal/hv"
	"nilihype/internal/hypercall"
	"nilihype/internal/telemetry"
)

// Probabilities for the DetectingOnly discard-scope ablation (§III-C).
// These model the paper's qualitative argument for discarding all threads:
// a non-discarded thread may be blocked forever on an IPI response from
// the discarded CPU, or may fail when it encounters global state the
// recovery process changed.
const (
	ipiWaitProb     = 0.10
	globalClashProb = 0.18
)

// recover runs the recovery protocol for the detection event with the
// given ladder rung. It is re-invokable: escalation calls it once per
// attempt, and each invocation re-discards execution threads and merges
// any interrupted hypercalls the previous attempt never retried.
func (en *Engine) recover(e detect.Event, mech Mechanism) {
	h := en.H
	if !h.RecoveryPathIntact() {
		// Failure cause 1 of §VII-A: the corrupted state prevents the
		// recovery routine from even being invoked — no ladder rung can
		// run (the audit never gets to execute either), so this is
		// terminal regardless of escalation policy.
		en.fail("recovery routine failed to be invoked (corrupted hypervisor state)")
		return
	}
	en.recovering = true

	// Initial steps (§III-B / §III-C): stop the world. All CPUs disable
	// interrupts; guest activity and device delivery are deferred.
	h.Pause()
	h.Jrn.Pause(h.Clock.Now(), e.CPU)
	if en.OnPause != nil {
		en.OnPause()
	}

	// Discard execution threads per the configured scope.
	var pending []*hv.PendingCall
	switch en.Cfg.Scope {
	case DetectingOnly:
		if p := h.DiscardThread(e.CPU); p != nil {
			pending = append(pending, p)
		}
		en.synthesizeSingleDiscardHazards(e.CPU)
	default:
		pending = h.DiscardAllThreads()
		h.ClearCrossCPUWaits()
	}
	en.mergePending(pending)

	enh := en.Cfg.Enhancements
	reboot := mech.Reboots()
	// Recovery-domain-partitioned repair applies to in-place rungs only: a
	// reboot rung re-initializes whole state families at once, so there is
	// nothing to partition (and Table II's boot costs dwarf any overlap).
	parallel := en.Cfg.RepairCPUs > 1 && !reboot

	// --- state repair, charged to the latency breakdown ------------------

	en.beginLatency()

	if reboot {
		en.rebootStateReinit(mech)
	} else {
		en.charge("Interrupt all CPUs and discard hypervisor stacks", microresetDiscardCost)
	}

	if enh.Has(EnhReHypeMechanisms) {
		// Release locks embedded in heap objects (ReHype's mechanism,
		// reused by NiLiHype; §III-B, §V-A).
		h.Locks.UnlockHeapLocks()
		if !reboot {
			en.charge("Release heap locks", heapLockCost)
		}
		// Acknowledge all pending and in-service interrupts (§III-B).
		h.Machine.IOAPIC().AckAll()
		for _, cpu := range h.Machine.CPUs() {
			cpu.ClearPending()
		}
		if !reboot {
			en.charge("Acknowledge pending/in-service interrupts", ackIRQCost)
		}
		// Save FS/GS at detection (§IV). Only the reboot path actually
		// clobbers them; the save makes the restore possible.
		h.SaveFSGS()
	}

	if enh.Has(EnhPFScan) {
		en.PFRepaired = h.Frames.ScanAndRepair()
		if !reboot {
			cost := scaleByFrames(pfScanCostAt8GB, h.Machine.PageFrames())
			label := "Restore and check consistency of page frame entries"
			n := en.Cfg.ScanCPUs
			if parallel && n <= 1 {
				// Partitioned repair has the recovery CPUs idle during the
				// scan; use them for the §VII-B sharded walk too.
				n = en.Cfg.RepairCPUs
			}
			if n > 1 {
				// §VII-B mitigation: shard the descriptor walk across
				// cores. The recovery CPU coordinates; near-linear
				// speedup since the walk is embarrassingly parallel.
				cost = cost/time.Duration(n) + parallelScanCoordCost
				label = fmt.Sprintf("%s (%d cores)", label, n)
			}
			en.charge(label, cost)
		}
	}

	if parallel && (enh.Has(EnhClearIRQCount) || enh.Has(EnhSchedConsistency)) {
		// The partitioned path performs the same IRQ and scheduler repairs
		// as the serial blocks below, as one concurrent recovery-domain
		// level charged at its makespan.
		en.runRepairPlan(enh)
	} else {
		if enh.Has(EnhClearIRQCount) || reboot {
			// Reboot re-initializes the per-CPU area, so ReHype gets this
			// inherently.
			h.ClearIRQCounts()
			if !reboot {
				en.charge("Clear IRQ counts", clearIRQCost)
			}
		}

		if enh.Has(EnhSchedConsistency) || reboot {
			// Reboot rebuilds scheduler structures while re-integrating
			// vCPUs, giving ReHype the equivalent repair.
			h.Sched.RepairFromPerCPU()
			if !reboot {
				en.charge("Ensure consistency within scheduling metadata", schedRepairCost)
			}
		}
	}

	if enh.Has(EnhUnlockStaticLocks) && !reboot {
		h.Locks.UnlockStaticSegment()
		en.charge("Unlock static locks (iterate lock segment)", staticLockCost)
	}
	if reboot {
		// Boot initializes static locks to their unlocked state (§V-A).
		h.Locks.ReinitStatic()
	}

	if enh.Has(EnhReprogramIOAPIC) && !reboot {
		// Device-corruption repair: rewrite diverged IO-APIC redirection
		// entries from the software copy recorded at boot. (Reboot rungs
		// get the equivalent from the APIC-setup boot step in
		// rebootStateReinit.)
		if h.Machine.IOAPIC().ReprogramFromBoot() > 0 {
			h.Tel.Inc(telemetry.CtrIOAPICRepairs)
		}
		en.charge("Reprogram IO-APIC redirection entries from boot routes", reprogramIOAPICCost)
	}

	if mech == PrivVMRestart {
		// The rung's distinguishing step: reboot the PrivVM from its boot
		// image and re-attach the surviving AppVMs' I/O rings. Runs before
		// the audit so the audit validates the fresh Dom0 structures.
		en.restartPrivVM()
	}

	// Post-repair state audit (EscalationPolicy.Audit): walk the real
	// structures, repair what is repairable, sacrifice AppVMs whose
	// damage is confinable, and leave escalation-class damage for
	// complete() to trip over. Runs after the rung's own enhancements so
	// it only pays for (and finds) what they missed.
	if en.Cfg.Escalation.Audit {
		aOpts := audit.Options{
			SkipFrames: enh.Has(EnhPFScan),
			SkipSched:  enh.Has(EnhSchedConsistency) || reboot,
		}
		if parallel {
			aOpts.RepairCPUs = en.Cfg.RepairCPUs
			aOpts.SerialExec = en.Cfg.SerialRepairExec
			if !aOpts.SkipFrames {
				// The audit's descriptor walk, sharded like the PF-scan
				// enhancement's.
				aOpts.FrameScanCost = scaleByFrames(pfScanCostAt8GB, h.Machine.PageFrames())/
					time.Duration(en.Cfg.RepairCPUs) + parallelScanCoordCost
			}
		}
		rep := audit.Run(h, aOpts)
		cur := &en.Attempts[len(en.Attempts)-1]
		cur.Audit = rep
		en.AuditViolations += len(rep.Violations)
		en.AuditRepaired += rep.Repaired
		en.SacrificedVMs = append(en.SacrificedVMs, rep.Sacrificed...)
		h.Jrn.Audit(h.Clock.Now(), e.CPU, len(rep.Violations), rep.Repaired,
			len(rep.Sacrificed), rep.Escalations)
		if len(rep.Sacrificed) > 0 && en.OnAuditDegraded != nil {
			// The audit accepted degraded service; the correlated
			// re-injection scenario arms itself here.
			en.OnAuditDegraded()
		}
		if parallel {
			en.chargeParallel("Post-recovery state audit and repair (parallel domains)", rep.Timing)
			cur.Timing.Merge(rep.Timing)
		} else {
			cost := auditBaseCost
			if !enh.Has(EnhPFScan) {
				// The audit's own descriptor walk; same cost model as the
				// PF-scan enhancement.
				cost += scaleByFrames(pfScanCostAt8GB, h.Machine.PageFrames())
			}
			en.charge("Post-recovery state audit and repair", cost)
		}
	}

	if !reboot {
		en.charge("Retry bookkeeping and resume setup", resumeSetupCost)
	}

	en.Latency = en.totalLatency()
	h.Tel.Observe(telemetry.HistAttemptLatencyUs, uint64(en.Latency/time.Microsecond))
	cur := &en.Attempts[len(en.Attempts)-1]
	cur.Latency = en.Latency
	cur.Breakdown = en.Breakdown
	if cur.Timing.Units > 0 {
		en.RepairTiming.Merge(cur.Timing)
	}

	// The repair operations above execute while the virtual clock is
	// frozen at the detection instant; the recovery completes — and the
	// system resumes — after the modeled latency. The NetBench sender,
	// being on another host, keeps running and observes the gap.
	h.Clock.After(en.Latency, "recovery-complete", func() { en.complete(mech) })
}

// mergePending folds a fresh discard's interrupted calls into the calls a
// failed previous attempt still owes. A call interrupted again while the
// failed attempt was retrying it appears in both lists; the fresh record
// wins (current step, current poison state). Order stays deterministic:
// stale calls first, in their original order, then the new ones in CPU
// order.
func (en *Engine) mergePending(fresh []*hv.PendingCall) {
	if len(en.pending) == 0 {
		en.pending = fresh
		return
	}
	superseded := make(map[*hypercall.Call]bool, len(fresh))
	for _, p := range fresh {
		superseded[p.Call] = true
	}
	merged := make([]*hv.PendingCall, 0, len(en.pending)+len(fresh))
	for _, p := range en.pending {
		if !superseded[p.Call] {
			merged = append(merged, p)
		}
	}
	en.pending = append(merged, fresh...)
}

// synthesizeSingleDiscardHazards draws the §III-C failure modes that only
// arise when non-detecting CPUs keep their execution threads.
func (en *Engine) synthesizeSingleDiscardHazards(detectCPU int) {
	h := en.H
	if h.NumCPUs() < 2 {
		return
	}
	other := (detectCPU + 1 + h.RNG.IntN(h.NumCPUs()-1)) % h.NumCPUs()
	if h.RNG.Float64() < ipiWaitProb {
		h.AddCrossCPUWait(hv.CrossCPUWait{
			Requester: other,
			Responder: detectCPU,
			Desc:      "remote TLB flush awaiting discarded responder",
		})
	}
	if h.RNG.Float64() < globalClashProb {
		h.PanicAtNextStep(other, "non-discarded thread hit state changed by recovery")
	}
}

// PrivVM restart costs: rebooting Dom0 from its boot image is a guest OS
// boot — orders of magnitude above any hypervisor repair step but far
// below a full host reboot — plus a per-surviving-VM ring re-attach.
const (
	privVMBootCost      = 1500 * time.Millisecond
	privVMReattachPerVM = 40 * time.Millisecond
)

// restartPrivVM performs the PrivVM-restart rung's distinguishing work:
// destroy what remains of Dom0, create a fresh one from the boot image,
// and re-bind every surviving AppVM's I/O ring to it. A re-creation
// failure is stashed for complete() to escalate on.
func (en *Engine) restartPrivVM() {
	n, err := en.H.RestartPrivVM()
	if err != nil {
		en.privRestartErr = err
	}
	en.PrivVMReattached = n
	en.chargeGroup("PrivVM restart",
		LatencyStep{Name: "Reboot PrivVM from boot image", Dur: privVMBootCost},
		LatencyStep{Name: "Re-attach surviving AppVM I/O rings", Dur: time.Duration(n) * privVMReattachPerVM},
	)
}

// rebootStateReinit applies the state effects of booting a new hypervisor
// instance and re-integrating preserved state (§III-B): a fresh heap free
// list, a relinked domain list, re-initialized static scratch state, and
// re-initialized hardware. This is exactly the state microreset reuses in
// place — and the reason microreboot survives some corruptions microreset
// does not (§VII-A).
func (en *Engine) rebootStateReinit(mech Mechanism) {
	h := en.H
	if mech == CheckpointRestore {
		en.chargeCheckpointTable(en.Cfg.Enhancements.Has(EnhPFScan))
	} else {
		en.chargeRebootTable(en.Cfg.Enhancements.Has(EnhPFScan))
	}
	h.Heap.Rebuild()
	h.Domains.Rebuild()
	h.ReinitStaticScratch()
	// The "setup IO APIC" boot step re-programs the redirection table from
	// the boot routes, so reboot rungs repair device corruption inherently.
	if h.Machine.IOAPIC().ReprogramFromBoot() > 0 {
		h.Tel.Inc(telemetry.CtrIOAPICRepairs)
	}
}

// complete finishes a recovery attempt after the latency elapses:
// hardware is re-armed, invariants are enforced, interrupted hypercalls
// are retried or dropped, and the system resumes. Any panic from here on
// is the attempt's failure — with attempts remaining it escalates, else it
// is terminal.
func (en *Engine) complete(mech Mechanism) {
	h := en.H
	att := len(en.Attempts)
	en.recovering = false
	en.completing = true
	enh := en.Cfg.Enhancements
	reboot := mech.Reboots()
	now := h.Clock.Now()

	// A PrivVM re-creation failure during the restart rung is the
	// attempt's failure (typically terminal: this is the last rung).
	if err := en.privRestartErr; err != nil {
		en.privRestartErr = nil
		en.attemptFailed("PrivVM restart failed: " + err.Error())
		return
	}

	// Corruption of state both mechanisms reuse (live heap objects) is
	// fatal regardless of mechanism — §VII-A failure cause 3. The audit
	// repairs AppVM-confinable object damage (sacrificing the VM);
	// whatever damage remains here escalates through the remaining rungs
	// (the reboot preserves allocated pages, so the next attempt hits the
	// same wall) and then fails terminally.
	if len(h.Heap.DamagedObjects()) > 0 {
		en.attemptFailed("post-recovery failure: reused heap object corrupted")
		return
	}
	// Static scratch corruption: the reboot re-initialized it; the
	// microreset reuses it and fails — the escalation case the hybrid
	// ladder exists for (and one the audit repairs in place).
	if len(h.StaticScratchDamage()) > 0 && !reboot {
		en.attemptFailed("post-recovery failure: corrupted static state reused by microreset")
		return
	}

	// FS/GS: the reboot clobbered them; without the detection-time save
	// the affected vCPUs lose their register state (§IV).
	if reboot && !enh.Has(EnhReHypeMechanisms) {
		h.ApplyFSGSLoss()
	}

	// Recurring timer events: reboot re-creates them during hypervisor
	// initialization; microreset reactivates them explicitly (§V-A).
	// Reactivation reprograms the APICs of the CPUs it touches (normal
	// timer-add path).
	if enh.Has(EnhReactivateTimers) || reboot {
		h.Timers.ReactivateRecurring(now)
	}
	// Timer hardware: reboot re-initializes the APICs; microreset must
	// reprogram them explicitly (§V-A).
	if enh.Has(EnhReprogramTimer) || reboot {
		h.ReprogramAllAPICs()
	}

	h.ReenableCPUs()

	if mech == PrivVMRestart && en.OnPrivVMRestart != nil {
		// The fresh Dom0 exists; let the guest world re-arm its
		// management service (housekeeping tick, domctl capability).
		en.OnPrivVMRestart()
	}

	// Post-resume invariants; each violated invariant panics or fails
	// the affected VM (handled inside hv; panics arrive at OnDetection
	// as attempt failures — escalation may already have started a new
	// attempt by the time these return false).
	if !h.EnforceIRQInvariant() {
		return
	}
	if !h.EnforceSchedInvariants() {
		return
	}
	if !h.EnforceCrossCPUWaits() {
		return
	}

	// Interrupted requests: retry (with undo-log rollback) or drop. The
	// engine's carried set is consumed here; a retry interrupted again by
	// a failure stays queued inside hv and is re-captured by the next
	// attempt's discard.
	pending := en.pending
	en.pending = nil
	if enh.Has(EnhReHypeMechanisms) {
		h.RetryPendingCalls(pending)
	} else {
		h.DropPendingCalls(pending)
	}

	if en.Det != nil {
		en.Det.Rearm()
	}
	en.recovered = true
	h.ResumeRunnable()
	if len(en.Attempts) != att {
		// A retried call or re-delivered interrupt failed during resume
		// and escalation already opened the next attempt; this attempt's
		// completion is over.
		return
	}
	en.completing = false
	h.Tel.Counters[telemetry.CtrRecoveries]++
	h.Tel.Record(en.lastEvent.CPU, telemetry.EvRecovered, uint64(att))
	en.graceUntil = h.Clock.Now() + en.Cfg.Escalation.GraceWindow

	// Page-frame descriptors left inconsistent (the scan skipped, or
	// error propagation the repairs missed) confuse the memory-management
	// paths once the system is running again: "This can cause the
	// hypervisor to hang following recovery" (§VII-B). The retried
	// hypercalls above may have healed their own frames; whatever remains
	// is latent damage.
	if failed, _ := h.Failed(); !failed {
		if len(h.Frames.InconsistentFrames()) > 0 && h.RNG.Float64() < pfInconsistencyHangProb {
			en.attemptFailed("post-recovery hang: inconsistent page frame descriptors hit by mm path")
			return
		}
	}
	if failed, _ := h.Failed(); failed {
		return
	}
	// The attempt stably resumed guest execution: stamp the instant that
	// closes its user-visible outage window (a post-resume failure above
	// leaves ResumedAt zero — the outage runs on into the next attempt).
	en.Attempts[att-1].ResumedAt = h.Clock.Now()
	h.Jrn.Resume(h.Clock.Now(), en.lastEvent.CPU)
	if en.OnResume != nil {
		en.OnResume()
	}
	// Stable-recovery hook: immediate for one-shot configurations; for
	// escalating ones, deferred until the grace window passes without a
	// re-detection (a new attempt invalidates the callback).
	if grace := en.Cfg.Escalation.GraceWindow; grace > 0 {
		h.Clock.After(grace, "recovery-grace", func() {
			if len(en.Attempts) != att || !en.Recovered() {
				return
			}
			if en.OnRecovered != nil {
				en.OnRecovered()
			}
		})
	} else if en.OnRecovered != nil {
		en.OnRecovered()
	}
}

// pfInconsistencyHangProb is the chance that a surviving descriptor
// inconsistency is exercised (and hangs the hypervisor) before the run
// ends. Calibrated against the §VII-B claim that skipping the scan costs
// ~4% of recovery rate.
const pfInconsistencyHangProb = 0.5

// Summary formats the engine's outcome for reports.
func (en *Engine) Summary() string {
	switch en.Status() {
	case StatusIdle:
		return "no detection"
	case StatusRecovered:
		if en.Escalated() {
			last := en.Attempts[len(en.Attempts)-1]
			return fmt.Sprintf("%v recovered in %v after %d attempts (detected: %v)",
				last.Mechanism, en.TotalLatency(), len(en.Attempts), en.FirstDetection)
		}
		return fmt.Sprintf("%v recovered in %v (detected: %v)",
			en.Cfg.Mechanism, en.Latency, en.FirstDetection)
	default:
		return fmt.Sprintf("%v failed: %s", en.Cfg.Mechanism, en.FailReason)
	}
}
