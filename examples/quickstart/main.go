// Quickstart: boot the simulated virtualization platform, run a benchmark
// in an AppVM, inject one fail-stop fault into the hypervisor, and watch
// NiLiHype recover it by microreset — all in a few hundred milliseconds of
// virtual time.
package main

import (
	"fmt"
	"log"
	"time"

	"nilihype/internal/core"
	"nilihype/internal/detect"
	"nilihype/internal/guest"
	"nilihype/internal/hv"
	"nilihype/internal/inject"
	"nilihype/internal/prng"
	"nilihype/internal/simclock"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A virtual machine monitor on simulated hardware (8 CPUs, 8 GB).
	clk := simclock.New()
	h, err := hv.New(clk, hv.DefaultConfig())
	if err != nil {
		return err
	}
	if err := h.Boot(); err != nil {
		return err
	}
	h.SetSchedFluxProb(hv.DefaultSchedFluxProb)

	// 2. A guest world: the PrivVM plus one UnixBench AppVM.
	world := guest.NewWorld(h, 42)
	world.StartPrivVM()
	vm, err := world.AddAppVM(guest.Config{
		Kind: guest.UnixBench, Dom: 1, CPU: 1, Duration: 2 * time.Second,
	})
	if err != nil {
		return err
	}

	// 3. NiLiHype: the microreset recovery engine with all Table I
	// enhancements, wired to Xen's panic and watchdog detectors.
	engine := core.NewEngine(h, core.DefaultConfig())
	det := detect.New(h, engine.OnDetection)
	engine.Det = det
	det.Start()

	// 4. One fail-stop fault injected into hypervisor execution between
	// 0.5s and 1s (two-level Gigan-style trigger).
	injector := inject.New(h, world, prng.New(42, 0xfa17), inject.Params{
		Type:     inject.Failstop,
		WindowLo: 500 * time.Millisecond,
		WindowHi: time.Second,
	})
	injector.Schedule()

	// 5. Run the world.
	vm.Start()
	clk.RunUntil(4 * time.Second)

	// 6. What happened?
	fmt.Printf("fault injected at:  %s\n", injector.Point.Activity+" / "+injector.Point.StepName)
	fmt.Printf("detected:           %v\n", engine.FirstDetection)
	fmt.Printf("engine:             %s\n", engine.Summary())
	fmt.Print(engine.FormatBreakdown())
	ok, reason := vm.Verdict()
	fmt.Printf("benchmark verdict:  ok=%v %s (%d ops completed)\n", ok, reason, vm.OpsCompleted)
	if failed, why := h.Failed(); failed {
		return fmt.Errorf("hypervisor failed: %s", why)
	}
	return nil
}
