// Package grant implements Xen-style grant tables: the mechanism by which
// a domain shares individual page frames with a peer (the block and
// network I/O rings' data path).
//
// A domain writes entries into its own grant table (guest memory — no
// hypervisor involvement); the peer then asks the hypervisor to map a
// granted frame, which allocates a maptrack handle and raises the frame's
// mapping count. Those mapping-count updates are exactly the §IV
// non-idempotent state the retry-mitigation logging exists for.
package grant

import (
	"errors"
	"fmt"
	"sort"
)

// Errors.
var (
	ErrBadRef    = errors.New("grant: invalid grant reference")
	ErrNotInUse  = errors.New("grant: entry not in use")
	ErrBusy      = errors.New("grant: entry has active mappings")
	ErrBadHandle = errors.New("grant: invalid maptrack handle")
)

// Entry is one guest-visible grant table entry.
type Entry struct {
	InUse    bool
	Frame    int
	ReadOnly bool
	// MapCount counts active mappings through this entry (maintained by
	// the hypervisor as peers map/unmap).
	MapCount int
}

// Table is a domain's grant table.
type Table struct {
	owner   int
	entries []Entry
}

// DefaultRefs is the default grant table size.
const DefaultRefs = 128

// NewTable builds a grant table for a domain.
func NewTable(owner, size int) *Table {
	if size <= 0 {
		size = DefaultRefs
	}
	return &Table{owner: owner, entries: make([]Entry, size)}
}

// Owner returns the owning domain.
func (t *Table) Owner() int { return t.owner }

// Len returns the table size.
func (t *Table) Len() int { return len(t.entries) }

// Entry returns entry ref for inspection.
func (t *Table) Entry(ref int) (*Entry, error) {
	if ref < 0 || ref >= len(t.entries) {
		return nil, fmt.Errorf("%w: %d", ErrBadRef, ref)
	}
	return &t.entries[ref], nil
}

// Grant publishes frame through ref (a guest-side write to the domain's
// own grant table). Re-granting an in-use entry is allowed while unmapped
// (the guest updating its ring buffers).
func (t *Table) Grant(ref, frame int, readOnly bool) error {
	e, err := t.Entry(ref)
	if err != nil {
		return err
	}
	if e.InUse && e.MapCount > 0 {
		return fmt.Errorf("%w: ref %d", ErrBusy, ref)
	}
	*e = Entry{InUse: true, Frame: frame, ReadOnly: readOnly}
	return nil
}

// Revoke withdraws the grant. It fails while mappings are active — the
// guest must wait for the peer to unmap (Xen's gnttab_end_foreign_access
// busy case).
func (t *Table) Revoke(ref int) error {
	e, err := t.Entry(ref)
	if err != nil {
		return err
	}
	if !e.InUse {
		return fmt.Errorf("%w: ref %d", ErrNotInUse, ref)
	}
	if e.MapCount > 0 {
		return fmt.Errorf("%w: ref %d (%d mappings)", ErrBusy, ref, e.MapCount)
	}
	*e = Entry{}
	return nil
}

// ActiveGrants returns the refs currently in use.
func (t *Table) ActiveGrants() []int {
	var out []int
	for i := range t.entries {
		if t.entries[i].InUse {
			out = append(out, i)
		}
	}
	return out
}

// Handle identifies one active mapping (Xen's maptrack handle).
type Handle int

// Mapping records what a handle maps.
type Mapping struct {
	GranterDom int
	Ref        int
	Frame      int
}

// Maptrack is the hypervisor-side bookkeeping of a mapper domain's active
// grant mappings.
type Maptrack struct {
	owner int
	maps  map[Handle]Mapping
	next  Handle
}

// NewMaptrack builds the maptrack for a mapping domain.
func NewMaptrack(owner int) *Maptrack {
	return &Maptrack{owner: owner, maps: make(map[Handle]Mapping)}
}

// Map maps granted entry ref of the granter's table, returning the handle
// and the granted frame. The frame's descriptor-level reference count is
// the caller's responsibility (the hypercall handler's logged IncUse).
func (m *Maptrack) Map(granter *Table, ref int) (Handle, int, error) {
	e, err := granter.Entry(ref)
	if err != nil {
		return 0, 0, err
	}
	if !e.InUse {
		return 0, 0, fmt.Errorf("%w: ref %d", ErrNotInUse, ref)
	}
	e.MapCount++
	h := m.next
	m.next++
	m.maps[h] = Mapping{GranterDom: granter.owner, Ref: ref, Frame: e.Frame}
	return h, e.Frame, nil
}

// Unmap releases a handle, dropping the granter entry's map count, and
// returns the mapping that was released.
func (m *Maptrack) Unmap(h Handle, granter *Table) (Mapping, error) {
	mp, ok := m.maps[h]
	if !ok {
		return Mapping{}, fmt.Errorf("%w: %d", ErrBadHandle, h)
	}
	e, err := granter.Entry(mp.Ref)
	if err != nil {
		return Mapping{}, err
	}
	if e.MapCount > 0 {
		e.MapCount--
	}
	delete(m.maps, h)
	return mp, nil
}

// HandleForRef finds an active handle mapping (granterDom, ref), or -1.
func (m *Maptrack) HandleForRef(granterDom, ref int) Handle {
	for h, mp := range m.maps {
		if mp.GranterDom == granterDom && mp.Ref == ref {
			return h
		}
	}
	return -1
}

// Active returns the number of active mappings.
func (m *Maptrack) Active() int { return len(m.maps) }

// Mappings returns the active mappings in handle order — the deterministic
// view the audit uses to recompute granter-side map counts.
func (m *Maptrack) Mappings() []Mapping {
	handles := make([]Handle, 0, len(m.maps))
	for h := range m.maps {
		handles = append(handles, h)
	}
	sort.Slice(handles, func(i, j int) bool { return handles[i] < handles[j] })
	out := make([]Mapping, 0, len(handles))
	for _, h := range handles {
		out = append(out, m.maps[h])
	}
	return out
}

// ForceUnmapAll drops every mapping (domain teardown), fixing up the
// granter tables through lookup.
func (m *Maptrack) ForceUnmapAll(lookup func(dom int) *Table) []Mapping {
	var out []Mapping
	for h, mp := range m.maps {
		if t := lookup(mp.GranterDom); t != nil {
			if e, err := t.Entry(mp.Ref); err == nil && e.MapCount > 0 {
				e.MapCount--
			}
		}
		out = append(out, mp)
		delete(m.maps, h)
	}
	return out
}
