// Package detect implements the error-detection mechanisms the paper
// relies on (§VI-B): Xen's built-in panic detector (fatal exceptions and
// failed assertions) and the hang detector — a watchdog built from a
// per-CPU performance-counter NMI every 100 ms of unhalted cycles plus a
// recurring 100 ms software timer event that increments a counter. If the
// NMI handler sees the counter unchanged for three consecutive checks, a
// hang is detected.
package detect

import (
	"fmt"
	"time"

	"nilihype/internal/hv"
	"nilihype/internal/hw"
	"nilihype/internal/telemetry"
	"nilihype/internal/xentime"
)

// Kind is the detection type.
type Kind int

// Detection kinds.
const (
	Panic Kind = iota + 1
	Hang
	// MgmtWatchdog is the management-call watchdog: the PrivVM's
	// housekeeping tick issues a management hypercall every few
	// milliseconds, so an extended silence means the PrivVM has crashed or
	// hung (management calls stall mid-flight). Checked from CPU 0's
	// performance-counter NMI; opt-in via SetCriteria.
	MgmtWatchdog
	// IRQDelivery is the IRQ-delivery criterion: CPU 0's NMI reads back
	// the IO-APIC redirection table against the hypervisor's software copy
	// (divergence = device corruption) and watches for interrupt lines
	// stuck in service (pending-IRQ-route loss). Opt-in via SetCriteria.
	IRQDelivery
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Hang:
		return "hang"
	case MgmtWatchdog:
		return "mgmt-watchdog"
	case IRQDelivery:
		return "irq-delivery"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one detection.
type Event struct {
	CPU    int
	Kind   Kind
	Reason string
	At     time.Duration
}

// String formats the event.
func (e Event) String() string {
	return fmt.Sprintf("%v on cpu%d at %v: %s", e.Kind, e.CPU, e.At, e.Reason)
}

// Period is the watchdog period (both the NMI and the soft tick).
const Period = 100 * time.Millisecond

// StaleChecks is the number of consecutive unchanged-counter NMI checks
// that declare a hang.
const StaleChecks = 3

// MgmtStaleChecks is the number of consecutive NMI checks with no
// completed PrivVM management hypercall before the management-call
// watchdog fires. The PrivVM housekeeping tick completes a call every 5 ms
// in a healthy system, so three silent 100 ms checks is unambiguous.
const MgmtStaleChecks = 3

// IRQStuckChecks is the number of consecutive NMI observations of the same
// interrupt line in service before the IRQ-delivery criterion declares the
// line's pending route lost. Device handlers EOI within microseconds, so
// three 100 ms-spaced observations cannot be a live interrupt.
const IRQStuckChecks = 3

// Detector wires the panic and hang detectors into a hypervisor and
// reports detections through a single hook.
type Detector struct {
	h    *hv.Hypervisor
	hook func(Event)

	softCount []uint64 // incremented by the 100ms software timer event
	lastSeen  []uint64
	stale     []int
	ticks     []*xentime.Timer // per-CPU watchdog soft tick timers

	// Management-call watchdog state (opt-in; checked on CPU 0's NMI).
	mgmtOn    bool
	mgmtLast  uint64
	mgmtStale int

	// IRQ-delivery criterion state (opt-in; checked on CPU 0's NMI).
	irqOn    bool
	svcStuck []int // per-line consecutive in-service observations

	// Detections counts all events reported (including post-recovery
	// re-detections).
	Detections int
}

// New builds a detector for h. Call Start to arm it.
func New(h *hv.Hypervisor, hook func(Event)) *Detector {
	n := h.NumCPUs()
	return &Detector{
		h:         h,
		hook:      hook,
		softCount: make([]uint64, n),
		lastSeen:  make([]uint64, n),
		stale:     make([]int, n),
		svcStuck:  make([]int, h.Machine.IOAPIC().NumLines()+1),
	}
}

// SetCriteria enables or disables the opt-in detection criteria: the
// management-call watchdog and the IRQ-delivery check. Campaigns switch
// them on for runs whose fault surface (PrivVM or device classes) or
// recovery ladder (PrivVM-restart rung) needs them, and off otherwise so
// legacy configurations behave exactly as before. Enabling re-baselines the
// criterion's progress tracking against current state.
func (d *Detector) SetCriteria(mgmt, irq bool) {
	d.mgmtOn = mgmt
	d.irqOn = irq
	d.resetCriteria()
}

// resetCriteria re-baselines the opt-in criteria's progress tracking.
func (d *Detector) resetCriteria() {
	d.mgmtLast = d.h.Tel.Counters[telemetry.CtrMgmtCompletions]
	d.mgmtStale = 0
	for i := range d.svcStuck {
		d.svcStuck[i] = 0
	}
}

// Start arms both detectors: the panic hook, the per-CPU watchdog soft
// timers, and the per-CPU performance-counter NMIs.
func (d *Detector) Start() {
	d.h.SetPanicHook(func(cpu int, reason string) {
		d.fire(Event{CPU: cpu, Kind: Panic, Reason: reason, At: d.h.Clock.Now()})
	})
	d.h.SetNMIHook(d.checkHang)
	now := d.h.Clock.Now()
	d.ticks = make([]*xentime.Timer, d.h.NumCPUs())
	for cpu := 0; cpu < d.h.NumCPUs(); cpu++ {
		cpu := cpu
		d.ticks[cpu] = d.h.Timers.AddTimer(cpu, fmt.Sprintf("watchdog_tick.cpu%d", cpu),
			now+Period, Period, func() { d.softCount[cpu]++ })
		d.h.Timers.ProgramAPIC(cpu)
		d.h.Machine.CPU(cpu).StartPerfNMI(Period)
	}
}

// checkHang is the NMI handler body: compare the CPU's soft counter with
// the last observation, then (on CPU 0) run the opt-in criteria.
func (d *Detector) checkHang(cpu int) {
	if d.softCount[cpu] != d.lastSeen[cpu] {
		d.lastSeen[cpu] = d.softCount[cpu]
		d.stale[cpu] = 0
	} else {
		d.stale[cpu]++
		if d.stale[cpu] >= StaleChecks {
			d.stale[cpu] = 0
			reason := "watchdog: no progress"
			if pc := d.h.PerCPU(cpu); pc.Spinning != nil {
				reason = fmt.Sprintf("watchdog: spinning on lock %q", pc.Spinning.Name())
			} else if pc.Wedged {
				reason = "watchdog: CPU wedged"
			}
			d.fire(Event{CPU: cpu, Kind: Hang, Reason: reason, At: d.h.Clock.Now()})
		}
	}
	if cpu == 0 {
		if d.mgmtOn {
			d.checkMgmt()
		}
		if d.irqOn {
			d.checkIRQDelivery()
		}
	}
}

// checkMgmt is the management-call watchdog: completed PrivVM management
// hypercalls must advance between NMI checks.
func (d *Detector) checkMgmt() {
	cur := d.h.Tel.Counters[telemetry.CtrMgmtCompletions]
	if cur != d.mgmtLast {
		d.mgmtLast = cur
		d.mgmtStale = 0
		return
	}
	d.mgmtStale++
	if d.mgmtStale >= MgmtStaleChecks {
		d.mgmtStale = 0
		d.fire(Event{CPU: 0, Kind: MgmtWatchdog,
			Reason: "mgmt watchdog: no PrivVM management-call completions",
			At:     d.h.Clock.Now()})
	}
}

// checkIRQDelivery reads the IO-APIC redirection table back against the
// hypervisor's software copy and watches for lines stuck in service.
func (d *Detector) checkIRQDelivery() {
	io := d.h.Machine.IOAPIC()
	if io.RouteDamage() > 0 {
		d.fire(Event{CPU: 0, Kind: IRQDelivery,
			Reason: "irq-delivery: IO-APIC redirection table diverges from software copy",
			At:     d.h.Clock.Now()})
		return
	}
	for l := 1; l <= io.NumLines(); l++ {
		if !io.InService(hw.IRQLine(l)) {
			d.svcStuck[l] = 0
			continue
		}
		d.svcStuck[l]++
		if d.svcStuck[l] >= IRQStuckChecks {
			d.svcStuck[l] = 0
			d.fire(Event{CPU: 0, Kind: IRQDelivery,
				Reason: "irq-delivery: interrupt line stuck in service (pending route lost)",
				At:     d.h.Clock.Now()})
		}
	}
}

// ResetProgress clears staleness tracking (recovery resumes fresh).
func (d *Detector) ResetProgress() {
	for cpu := range d.stale {
		d.stale[cpu] = 0
		d.lastSeen[cpu] = d.softCount[cpu]
	}
	d.resetCriteria()
}

// Rearm prepares the detectors for the next recovery attempt: staleness
// tracking resets, and any watchdog source the failed attempt left dead —
// an inactive soft tick timer, a stopped performance-counter NMI — is
// revived. Escalating engines call it after every attempt: re-detection
// (and hence escalation) must work even when the attempt's repairs did not
// extend to the watchdog's own machinery.
func (d *Detector) Rearm() {
	d.ResetProgress()
	now := d.h.Clock.Now()
	for cpu := 0; cpu < d.h.NumCPUs(); cpu++ {
		if cpu < len(d.ticks) && d.ticks[cpu] != nil && !d.ticks[cpu].Active() {
			d.h.Timers.Reactivate(d.ticks[cpu], now)
		}
		if c := d.h.Machine.CPU(cpu); !c.PerfNMIRunning() {
			c.StartPerfNMI(Period)
		}
	}
}

// Reset rewinds the detector to its just-Started state: soft counters,
// NMI observations, staleness tracking and the detection count all return
// to zero. The tick timers and performance-counter NMIs themselves are
// run state restored by the hypervisor snapshot, so only the detector's
// own observations need clearing. Used by the campaign's snapshot-fork
// path between runs.
func (d *Detector) Reset() {
	for cpu := range d.softCount {
		d.softCount[cpu] = 0
		d.lastSeen[cpu] = 0
		d.stale[cpu] = 0
	}
	d.resetCriteria()
	d.Detections = 0
}

func (d *Detector) fire(e Event) {
	d.Detections++
	d.h.Tel.Counters[telemetry.CtrDetections]++
	switch e.Kind {
	case Panic:
		d.h.Tel.Counters[telemetry.CtrDetectPanic]++
	case Hang:
		d.h.Tel.Counters[telemetry.CtrDetectHang]++
	case MgmtWatchdog:
		d.h.Tel.Counters[telemetry.CtrDetectMgmt]++
	case IRQDelivery:
		d.h.Tel.Counters[telemetry.CtrDetectIRQ]++
	}
	d.h.Tel.Record(e.CPU, telemetry.EvDetect, d.h.Tel.Intern(e.Reason))
	d.h.Jrn.Detect(e.At, e.CPU, e.Reason)
	if d.hook != nil {
		d.hook(e)
	}
}
