package traffic

import "nilihype/internal/telemetry"

// SLO is the user-visible outcome of one run (or, after merging, of a whole
// campaign): what the open-loop user population experienced while the
// hypervisor detected, paused, repaired, and resumed. Every field is an
// exact integer so Merge is associative and commutative bit-for-bit —
// campaign shards, workers, and fork-vs-cold paths combine in any order and
// produce identical summaries, the same contract the rest of Summary obeys.
//
// Units: all durations are microseconds (µs). Fixed-point integer µs keep
// a million users × seconds of outage well inside uint64 (and inside the
// 2^53 window that survives a JSON round-trip through the shard protocol).
type SLO struct {
	// Users is the simulated population size (max across merges — every
	// run in a campaign offers the same population, so max == the value).
	Users uint64

	// Offered counts requests issued by the population; Completed the
	// ones that got a response within the timeout. Completed includes
	// Delayed — requests that arrived during an outage and were answered
	// late (but within timeout) at resume. TimedOut requests waited past
	// the timeout before service returned; Failed requests were still
	// unanswered when the run ended (terminal hypervisor failure).
	// Offered == Completed + TimedOut + Failed always holds.
	Offered   uint64
	Completed uint64
	Delayed   uint64
	TimedOut  uint64
	Failed    uint64

	// ExcessWaitUs sums, over all delayed/timed-out requests, the extra
	// µs each user waited beyond the base service latency (timed-out
	// requests charge the full timeout). User-weighted: a cohort of n
	// users waiting w µs adds n·w.
	ExcessWaitUs uint64

	// DegradedUserUs is the headline metric: user-seconds of degradation
	// in µs — for every outage window, population × window length. This
	// is what makes microreset's 2.15 ms vs microreboot's 713 ms vs a
	// PrivVM restart's 2.07 s directly comparable as end-user damage.
	DegradedUserUs uint64

	// Outages counts service-down windows; OutageUs sums their lengths.
	Outages  uint64
	OutageUs uint64

	// Interval accounting: the run is scored in fixed goodput intervals.
	// Intervals counts intervals with any offered load; DegradedIntervals
	// those where more than 10% of offered requests were lost (timed out
	// or failed); WorstIntervalPermille is the worst per-interval goodput
	// in ‰ of offered (1000 = clean; merged by min).
	Intervals             uint64
	DegradedIntervals     uint64
	WorstIntervalPermille uint64

	// Latency is the end-user request latency distribution in µs.
	Latency telemetry.Hist
}

// Merge folds other into s. Counter adds, a max (Users), a guarded min
// (WorstIntervalPermille), and a Hist merge — all exact-integer and
// order-independent. The zero SLO is the merge identity: the min guard
// skips sides with no scored intervals so an empty shard never drags the
// worst-interval figure to zero.
func (s *SLO) Merge(other *SLO) {
	if other.Users > s.Users {
		s.Users = other.Users
	}
	s.Offered += other.Offered
	s.Completed += other.Completed
	s.Delayed += other.Delayed
	s.TimedOut += other.TimedOut
	s.Failed += other.Failed
	s.ExcessWaitUs += other.ExcessWaitUs
	s.DegradedUserUs += other.DegradedUserUs
	s.Outages += other.Outages
	s.OutageUs += other.OutageUs
	if other.Intervals > 0 {
		if s.Intervals == 0 || other.WorstIntervalPermille < s.WorstIntervalPermille {
			s.WorstIntervalPermille = other.WorstIntervalPermille
		}
	}
	s.Intervals += other.Intervals
	s.DegradedIntervals += other.DegradedIntervals
	s.Latency.Merge(&other.Latency)
}

// Lost returns the requests users never got answered in time.
func (s *SLO) Lost() uint64 { return s.TimedOut + s.Failed }

// GoodputPermille returns overall completed/offered in ‰ (1000 if nothing
// was offered).
func (s *SLO) GoodputPermille() uint64 {
	if s.Offered == 0 {
		return 1000
	}
	return s.Completed * 1000 / s.Offered
}

// DegradedUserSeconds converts the headline metric to float seconds for
// display (accounting stays integer µs).
func (s *SLO) DegradedUserSeconds() float64 {
	return float64(s.DegradedUserUs) / 1e6
}
