// Package journal is the causal recovery event journal: a structured,
// deterministic account of every run's recovery story — fault injected,
// detection criterion fired, attempt N paused/repaired/audited/resumed,
// final disposition — with span and cause links tying each attempt to the
// detection that triggered it and the audit verdict that judged it.
//
// Where the telemetry flight recorder answers "what was the system doing?"
// (a high-rate ring of dispatches, IRQs and scheduler events), the journal
// answers "why did the recovery go the way it did?": a low-rate, loss-free
// sequence of recovery-salient events whose links a forensic classifier
// can walk.
//
// Design contract, shared with internal/telemetry:
//
//   - Zero-alloc in steady state: events are fixed-size pointer-free
//     structs appended into a backing array that survives snapshot
//     restores, and variable strings are interned into a table whose
//     truncate-on-restore leaves map buckets and slice capacity in place.
//     A campaign's steady state re-records every run's journal without
//     allocating.
//   - Snapshot/restore-aware: Snapshot captures the boot-time lengths and
//     the causal cursors; Restore truncates back, so a forked run assigns
//     the same sequence numbers and intern IDs a cold boot would and the
//     event stream is bit-identical either way.
//   - Deterministic: the simulation is single-threaded and virtual-time
//     driven, so sequence numbers, timestamps and links depend only on the
//     seed.
//
// journal depends only on the standard library and internal/telemetry
// (itself stdlib-only), so every layer of the simulator can import it
// without cycles.
package journal

import "time"

// Kind classifies journal events — the stations of the recovery story.
type Kind uint8

// Event kinds, in the order the story visits them.
const (
	// KindFault: a fault trigger fired. Detail is the fault description;
	// Aux is the interned trigger name ("primary", "burst",
	// "during-recovery", "correlated").
	KindFault Kind = iota + 1
	// KindCorruption: a latent structural corruption was applied. Detail
	// is the corruption-cell label; caused by the most recent fault.
	KindCorruption
	// KindDetect: a detection criterion fired. Detail is the detection
	// reason; caused by the most recent fault (if any).
	KindDetect
	// KindAttempt: a recovery attempt began. Detail is the mechanism
	// name; Aux is the attempt number (1-based). The event's Seq is the
	// attempt's span ID; its Cause links the detection (or the previous
	// attempt's failure) that started it.
	KindAttempt
	// KindPause: the attempt stopped the world. Span = owning attempt.
	KindPause
	// KindAudit: the attempt's post-recovery audit completed. Span =
	// owning attempt; Aux packs the verdict counts (AuditAux).
	KindAudit
	// KindResume: the attempt stably re-enabled guest execution. Span =
	// owning attempt.
	KindResume
	// KindAttemptFail: the attempt failed. Detail is the reason; Span =
	// owning attempt.
	KindAttemptFail
	// KindEscalate: the ladder moved to its next rung. Detail is the next
	// mechanism; caused by the failed attempt.
	KindEscalate
	// KindDisposition: the run's final disposition. Detail is the engine
	// status ("idle", "recovered", "failed"); Aux is the interned terminal
	// failure reason (0 = none).
	KindDisposition
)

// String returns the kind's short name.
func (k Kind) String() string {
	names := [...]string{
		KindFault: "fault", KindCorruption: "corruption", KindDetect: "detect",
		KindAttempt: "attempt", KindPause: "pause", KindAudit: "audit",
		KindResume: "resume", KindAttemptFail: "attempt-fail",
		KindEscalate: "escalate", KindDisposition: "disposition",
	}
	if int(k) < len(names) && names[k] != "" {
		return names[k]
	}
	return "kind(" + itoa(int(k)) + ")"
}

// Event is one journal entry: fixed-size and pointer-free, so the event
// array is a flat slab the GC never scans into. Strings travel as intern
// IDs resolved through the owning Journal.
type Event struct {
	At     time.Duration // virtual time
	Aux    uint64        // kind-specific payload (see Kind docs)
	Seq    uint32        // 1-based per-run sequence number
	Span   uint32        // owning attempt's Seq (0 = run-scope)
	Cause  uint32        // Seq of the causally-preceding event (0 = none)
	Detail uint32        // interned string ID (Journal.Str)
	CPU    int16
	Kind   Kind
}

// AuditAux packs an audit verdict's counts into an Event.Aux: violations,
// repairs, sacrificed AppVMs, and escalate verdicts, 16 bits each.
func AuditAux(violations, repaired, sacrificed, escalations int) uint64 {
	c := func(v int) uint64 {
		if v < 0 {
			return 0
		}
		if v > 0xffff {
			return 0xffff
		}
		return uint64(v)
	}
	return c(violations)<<48 | c(repaired)<<32 | c(sacrificed)<<16 | c(escalations)
}

// UnpackAuditAux splits an AuditAux payload.
func UnpackAuditAux(aux uint64) (violations, repaired, sacrificed, escalations int) {
	return int(aux >> 48 & 0xffff), int(aux >> 32 & 0xffff),
		int(aux >> 16 & 0xffff), int(aux & 0xffff)
}

// Journal is one simulation's recovery event journal. It is
// single-threaded like the simulation itself; campaign workers each own a
// private instance (inside their hypervisor).
type Journal struct {
	events []Event

	// String interning, mirroring telemetry's: IDs are assigned in
	// first-use order (deterministic because the simulation is), and
	// Restore truncates the table back so forked runs re-assign the same
	// IDs a cold boot would.
	strs   []string
	strIDs map[string]uint32

	// Causal cursors: the Seqs the next event of each kind links back to.
	lastFault   uint32
	lastDetect  uint32
	lastAttempt uint32
	lastFail    uint32
}

// DefaultCapacity pre-sizes the event array for the deepest ladder run:
// a full three-rung escalation with adversarial re-injection stays well
// under 64 events.
const DefaultCapacity = 64

// New builds a journal with room for capacity events before the backing
// array first grows (growth is permanent: restores keep the capacity, so
// a campaign's steady state never re-allocates).
func New(capacity int) *Journal {
	if capacity < 8 {
		capacity = 8
	}
	j := &Journal{
		events: make([]Event, 0, capacity),
		strs:   make([]string, 0, 32),
		strIDs: make(map[string]uint32, 32),
	}
	// ID 0 is reserved so a zero Detail decodes to "".
	j.strs = append(j.strs, "")
	j.strIDs[""] = 0
	return j
}

// Intern returns a stable ID for s, assigning one on first sight.
func (j *Journal) Intern(s string) uint32 {
	if j == nil {
		return 0
	}
	if id, ok := j.strIDs[s]; ok {
		return id
	}
	id := uint32(len(j.strs))
	j.strs = append(j.strs, s)
	j.strIDs[s] = id
	return id
}

// Str resolves an interned ID (empty string for unknown IDs).
func (j *Journal) Str(id uint32) string {
	if j == nil || id >= uint32(len(j.strs)) {
		return ""
	}
	return j.strs[id]
}

// Events returns the recorded events, oldest first. The slice aliases the
// journal's backing array: valid until the next Restore.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	return j.events
}

// Len returns the number of recorded events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	return len(j.events)
}

// record appends one event and returns its Seq.
func (j *Journal) record(e Event) uint32 {
	e.Seq = uint32(len(j.events) + 1)
	j.events = append(j.events, e)
	return e.Seq
}

// Fault records a fault trigger firing. desc describes the fault, trigger
// names which trigger fired ("primary", "burst", ...).
func (j *Journal) Fault(at time.Duration, cpu int, desc, trigger string) {
	if j == nil {
		return
	}
	j.lastFault = j.record(Event{
		At: at, CPU: int16(cpu), Kind: KindFault,
		Detail: j.Intern(desc), Aux: uint64(j.Intern(trigger)),
	})
}

// Corruption records a latent structural corruption landing in the cell
// named by label, caused by the most recent fault.
func (j *Journal) Corruption(at time.Duration, cpu int, label string) {
	if j == nil {
		return
	}
	j.record(Event{
		At: at, CPU: int16(cpu), Kind: KindCorruption,
		Cause: j.lastFault, Detail: j.Intern(label),
	})
}

// Detect records a detection criterion firing, caused by the most recent
// fault (if any — a spurious detection carries Cause 0).
func (j *Journal) Detect(at time.Duration, cpu int, reason string) {
	if j == nil {
		return
	}
	j.lastDetect = j.record(Event{
		At: at, CPU: int16(cpu), Kind: KindDetect,
		Cause: j.lastFault, Detail: j.Intern(reason),
	})
}

// Attempt records recovery attempt n (1-based) beginning with the given
// mechanism. Its cause is whichever came later: the most recent detection
// or the previous attempt's failure (escalations triggered by internal
// completion failures have no fresh detection). The event's own Seq
// becomes the attempt's span ID for the Pause/Audit/Resume/AttemptFail
// events that follow.
func (j *Journal) Attempt(at time.Duration, cpu int, mechanism string, n int) {
	if j == nil {
		return
	}
	cause := j.lastDetect
	if j.lastFail > cause {
		cause = j.lastFail
	}
	seq := j.record(Event{
		At: at, CPU: int16(cpu), Kind: KindAttempt,
		Cause: cause, Detail: j.Intern(mechanism), Aux: uint64(n),
	})
	j.lastAttempt = seq
	// The span root points at itself: events in the span share its Seq.
	j.events[len(j.events)-1].Span = seq
}

// Pause records the current attempt stopping the world.
func (j *Journal) Pause(at time.Duration, cpu int) {
	if j == nil {
		return
	}
	j.record(Event{
		At: at, CPU: int16(cpu), Kind: KindPause,
		Span: j.lastAttempt, Cause: j.lastAttempt,
	})
}

// Audit records the current attempt's audit verdict.
func (j *Journal) Audit(at time.Duration, cpu int, violations, repaired, sacrificed, escalations int) {
	if j == nil {
		return
	}
	j.record(Event{
		At: at, CPU: int16(cpu), Kind: KindAudit,
		Span: j.lastAttempt, Cause: j.lastAttempt,
		Aux: AuditAux(violations, repaired, sacrificed, escalations),
	})
}

// Resume records the current attempt stably re-enabling guest execution.
func (j *Journal) Resume(at time.Duration, cpu int) {
	if j == nil {
		return
	}
	j.record(Event{
		At: at, CPU: int16(cpu), Kind: KindResume,
		Span: j.lastAttempt, Cause: j.lastAttempt,
	})
}

// AttemptFail records the current attempt failing for the given reason.
func (j *Journal) AttemptFail(at time.Duration, cpu int, reason string) {
	if j == nil {
		return
	}
	j.lastFail = j.record(Event{
		At: at, CPU: int16(cpu), Kind: KindAttemptFail,
		Span: j.lastAttempt, Cause: j.lastAttempt, Detail: j.Intern(reason),
	})
}

// Escalate records the ladder moving to its next rung, caused by the
// failed attempt.
func (j *Journal) Escalate(at time.Duration, cpu int, next string) {
	if j == nil {
		return
	}
	j.record(Event{
		At: at, CPU: int16(cpu), Kind: KindEscalate,
		Cause: j.lastFail, Detail: j.Intern(next),
	})
}

// Disposition records the run's final disposition: the engine status and,
// for failed runs, the terminal reason. Its cause is the last recorded
// event — the end of the causal chain.
func (j *Journal) Disposition(at time.Duration, status, reason string) {
	if j == nil {
		return
	}
	var cause uint32
	if n := len(j.events); n > 0 {
		cause = j.events[n-1].Seq
	}
	var aux uint64
	if reason != "" {
		aux = uint64(j.Intern(reason))
	}
	j.record(Event{
		At: at, Kind: KindDisposition,
		Cause: cause, Detail: j.Intern(status), Aux: aux,
	})
}

// Snapshot is captured journal state for later Restore: the boot-time
// lengths plus the causal cursors.
type Snapshot struct {
	events int
	strs   int

	lastFault   uint32
	lastDetect  uint32
	lastAttempt uint32
	lastFail    uint32
}

// Snapshot captures the journal state. The campaign layer snapshots at
// boot-complete (before any fault), so the captured lengths are the
// pristine baseline every forked run truncates back to.
func (j *Journal) Snapshot() *Snapshot {
	return &Snapshot{
		events:      len(j.events),
		strs:        len(j.strs),
		lastFault:   j.lastFault,
		lastDetect:  j.lastDetect,
		lastAttempt: j.lastAttempt,
		lastFail:    j.lastFail,
	}
}

// Restore rewinds to a snapshot taken on this instance without
// allocating: the event array truncates in place and the intern table
// deletes the entries interned since (map buckets and slice capacity stay,
// so the next run re-interns into existing storage).
func (j *Journal) Restore(s *Snapshot) {
	j.events = j.events[:s.events]
	for i := s.strs; i < len(j.strs); i++ {
		delete(j.strIDs, j.strs[i])
		j.strs[i] = ""
	}
	j.strs = j.strs[:s.strs]
	j.lastFault = s.lastFault
	j.lastDetect = s.lastDetect
	j.lastAttempt = s.lastAttempt
	j.lastFail = s.lastFail
}

// itoa is a minimal integer formatter (keeps the name paths free of
// fmt/strconv imports and allocation-predictable).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
