package evtchn

// TableSnapshot is one domain's captured port table (the owner and table
// size are immutable).
type TableSnapshot struct {
	ports []Port
}

// Snapshot captures the table's ports.
func (t *Table) Snapshot() *TableSnapshot {
	return &TableSnapshot{ports: append([]Port(nil), t.ports...)}
}

// Restore rewrites the table's ports from the snapshot (tables never
// resize, so this is a pure copy).
func (t *Table) Restore(s *TableSnapshot) {
	copy(t.ports, s.ports)
}

// BrokerSnapshot captures the broker's registration set. Port contents are
// restored per-table by the domain layer; the broker only tracks which
// tables exist.
type BrokerSnapshot struct {
	tables []*Table // owner order
}

// Snapshot captures the registered tables in owner order.
func (b *Broker) Snapshot() *BrokerSnapshot {
	s := &BrokerSnapshot{tables: make([]*Table, 0, len(b.tables))}
	for _, o := range b.Owners() {
		s.tables = append(s.tables, b.tables[o])
	}
	return s
}

// Restore rewinds the registration set: tables registered after the
// snapshot drop out, snapshot tables are re-registered. The clear-then-
// refill loop reuses the map's buckets, so a steady-state restore does not
// allocate.
func (b *Broker) Restore(s *BrokerSnapshot) {
	for o := range b.tables {
		delete(b.tables, o)
	}
	for _, t := range s.tables {
		b.tables[t.owner] = t
	}
}
