package simclock

import "time"

// savedEvent is one pending event's captured schedule. The *Event pointer
// itself is part of the snapshot: other subsystems hold handles to their
// pending events (APIC one-shots, perf NMIs), so a restore must revive the
// same Event objects in place rather than allocate replacements.
type savedEvent struct {
	ev   *Event
	when time.Duration
	seq  uint64
	fn   Func
	tag  string
}

// Snapshot is a captured clock state: the virtual time, sequence counters,
// and the pending-event queue in heap order. It stays valid for the life
// of the Clock and can be restored any number of times.
type Snapshot struct {
	now        time.Duration
	seq        uint64
	dispatched uint64
	halted     bool
	highWater  int
	events     []savedEvent
}

// Snapshot captures the clock's current state for later Restore.
func (c *Clock) Snapshot() *Snapshot {
	s := &Snapshot{
		now:        c.now,
		seq:        c.seq,
		dispatched: c.dispatched,
		halted:     c.halted,
		highWater:  c.highWater,
		events:     make([]savedEvent, len(c.queue)),
	}
	for i, e := range c.queue {
		s.events[i] = savedEvent{ev: e, when: e.when, seq: e.seq, fn: e.fn, tag: e.tag}
	}
	return s
}

// Restore rewinds the clock to a snapshot taken on this same Clock. The
// snapshot's events are revived in place (same *Event objects, so handles
// captured elsewhere in a machine snapshot stay valid), events scheduled
// after the snapshot are dropped, and the free list is compacted so a
// revived event cannot also be handed out by alloc. Restore does not
// allocate once the queue and free-list backing arrays have grown to
// steady-state size.
func (c *Clock) Restore(s *Snapshot) {
	c.now = s.now
	c.seq = s.seq
	c.dispatched = s.dispatched
	c.halted = s.halted
	c.highWater = s.highWater

	// Revive the snapshot's events in place. Setting index to the saved
	// heap position also marks them "queued", and clearing recycled marks
	// any that sat on the free list as live again.
	for i := range s.events {
		se := &s.events[i]
		e := se.ev
		e.when = se.when
		e.seq = se.seq
		e.fn = se.fn
		e.tag = se.tag
		e.index = i
		e.recycled = false
	}

	// Compact the free list down to the events that are genuinely free:
	// a snapshot event that fired since the snapshot was recycled onto the
	// list, and reviving it above cleared its recycled flag — keeping it
	// here would let alloc hand out a queued event. (alloc's lazy-rescue
	// skip would tolerate stale entries, but compaction keeps the list's
	// length meaningful and the invariant simple.)
	kept := c.free[:0]
	for _, e := range c.free {
		if e.recycled {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(c.free); i++ {
		c.free[i] = nil
	}
	c.free = kept

	// Rebuild the queue in the saved slice order. The saved order was a
	// valid heap when captured, and (when, seq) of the saved events are
	// byte-identical now, so it is a valid heap again — no re-heapify.
	// Events scheduled after the snapshot simply drop out of the queue
	// (and, not being recycled, out of the free list) to the GC.
	if cap(c.queue) < len(s.events) {
		c.queue = make(eventQueue, 0, len(s.events))
	}
	prev := len(c.queue)
	c.queue = c.queue[:len(s.events)]
	for i := range s.events {
		c.queue[i] = s.events[i].ev
	}
	for i := len(s.events); i < prev; i++ {
		c.queue[:prev][i] = nil
	}
}
