// Package xentime models Xen's software timer subsystem: a per-CPU heap of
// software timers driven by the one-shot local APIC timer.
//
// The protocol is the one the paper's "Reprogram hardware timer"
// enhancement exists for (§V-A): the APIC timer fires, the handler pops and
// runs due software timers, and only then reprograms the APIC for the next
// deadline. A fault landing between the fire and the reprogram leaves the
// APIC silent forever. Similarly, a recurring timer that was popped but not
// yet re-armed when all execution threads are discarded never fires again
// ("Reactivate recurring timer events").
//
// The package is pure state: the current virtual time is always passed in
// explicitly and APIC programming goes through the Programmer interface, so
// the subsystem is trivially testable in isolation.
package xentime

import (
	"container/heap"
	"fmt"
	"math/rand/v2"
	"sort"
	"time"
)

// Programmer abstracts the per-CPU one-shot APIC timer.
type Programmer interface {
	// ArmTimer programs cpu's APIC timer to fire at deadline.
	ArmTimer(cpu int, deadline time.Duration)
	// DisarmTimer cancels cpu's pending APIC shot.
	DisarmTimer(cpu int)
}

// Func is a software timer callback.
type Func func()

// Timer is one software timer. Recurring timers (Period > 0) re-arm
// themselves when finished by the interrupt handler.
type Timer struct {
	Name     string
	CPU      int
	Deadline time.Duration
	Period   time.Duration // 0 for one-shot
	Fn       Func

	// Fires counts completed expirations.
	Fires uint64

	active bool
	index  int
	// runLabel/rearmLabel are the per-timer step names the interrupt
	// handler uses every expiration; precomputed so the handler builder
	// does not concatenate strings per tick.
	runLabel   string
	rearmLabel string
}

// RunLabel returns the precomputed "run_timer:<name>" step label.
func (t *Timer) RunLabel() string { return t.runLabel }

// RearmLabel returns the precomputed "rearm:<name>" step label.
func (t *Timer) RearmLabel() string { return t.rearmLabel }

// Active reports whether the timer is queued in its CPU's heap. A
// recurring timer that was popped but not yet re-armed is inactive — the
// hazard state.
func (t *Timer) Active() bool { return t.active }

// Recurring reports whether the timer re-arms after firing.
func (t *Timer) Recurring() bool { return t.Period > 0 }

// Subsystem is the software timer subsystem across all CPUs.
type Subsystem struct {
	apic  Programmer
	heaps []timerHeap
	// all tracks every timer ever added and not stopped, including
	// currently inactive ones; recovery's reactivation scan walks it.
	all map[*Timer]struct{}
	// dueScratch backs PopDue's result between calls.
	dueScratch []*Timer
}

// NewSubsystem creates the subsystem for the given CPU count.
func NewSubsystem(cpus int, apic Programmer) *Subsystem {
	return &Subsystem{
		apic:  apic,
		heaps: make([]timerHeap, cpus),
		all:   make(map[*Timer]struct{}),
	}
}

// AddTimer registers and arms a timer on a CPU's heap. The caller must
// follow with ProgramAPIC(cpu) — that separation mirrors the hypervisor
// code structure and is what creates the injectable window.
func (s *Subsystem) AddTimer(cpu int, name string, deadline, period time.Duration, fn Func) *Timer {
	if cpu < 0 || cpu >= len(s.heaps) {
		panic(fmt.Sprintf("xentime: bad cpu %d", cpu))
	}
	t := &Timer{Name: name, CPU: cpu, Deadline: deadline, Period: period, Fn: fn, active: true,
		runLabel: "run_timer:" + name, rearmLabel: "rearm:" + name}
	heap.Push(&s.heaps[cpu], t)
	s.all[t] = struct{}{}
	return t
}

// NewTimer builds an unregistered timer for later Readd. Callers that set
// the same logical timer over and over (a domain's set_timer_op wakeup
// timer) keep one record — and its precomputed step labels — instead of
// allocating a fresh Timer per set.
func NewTimer(cpu int, name string, fn Func) *Timer {
	return &Timer{Name: name, CPU: cpu, Fn: fn,
		runLabel: "run_timer:" + name, rearmLabel: "rearm:" + name}
}

// Readd registers and arms a reusable timer with a new schedule,
// equivalent to AddTimer with the record recycled. A still-queued timer is
// removed first; the registration check guards against a stale active flag
// on a record that a snapshot restore dropped from the subsystem.
func (s *Subsystem) Readd(t *Timer, cpu int, deadline, period time.Duration) {
	if cpu < 0 || cpu >= len(s.heaps) {
		panic(fmt.Sprintf("xentime: bad cpu %d", cpu))
	}
	if _, registered := s.all[t]; registered && t.active {
		heap.Remove(&s.heaps[t.CPU], t.index)
	}
	t.CPU = cpu
	t.Deadline = deadline
	t.Period = period
	t.active = true
	heap.Push(&s.heaps[cpu], t)
	s.all[t] = struct{}{}
}

// StopTimer deactivates and forgets a timer.
func (s *Subsystem) StopTimer(t *Timer) {
	if t.active {
		heap.Remove(&s.heaps[t.CPU], t.index)
		t.active = false
	}
	delete(s.all, t)
}

// NextDeadline returns the earliest pending deadline on cpu's heap.
func (s *Subsystem) NextDeadline(cpu int) (time.Duration, bool) {
	if s.heaps[cpu].Len() == 0 {
		return 0, false
	}
	return s.heaps[cpu][0].Deadline, true
}

// ProgramAPIC programs cpu's APIC one-shot to the heap's earliest
// deadline, or disarms it if the heap is empty. Recovery's "Reprogram
// hardware timer" enhancement calls this for every CPU.
func (s *Subsystem) ProgramAPIC(cpu int) {
	if d, ok := s.NextDeadline(cpu); ok {
		s.apic.ArmTimer(cpu, d)
	} else {
		s.apic.DisarmTimer(cpu)
	}
}

// PopDue removes and returns the timers on cpu's heap whose deadlines are
// <= now, marking them inactive. The interrupt handler runs each and then
// calls FinishTimer.
// The returned slice is a scratch buffer owned by the Subsystem: it is
// valid until the next PopDue call (the interrupt handler consumes it
// immediately while building its program, so this never escapes).
func (s *Subsystem) PopDue(cpu int, now time.Duration) []*Timer {
	due := s.dueScratch[:0]
	h := &s.heaps[cpu]
	for h.Len() > 0 && (*h)[0].Deadline <= now {
		t := heap.Pop(h).(*Timer)
		t.active = false
		due = append(due, t)
	}
	s.dueScratch = due
	return due
}

// FinishTimer completes one expiration: it counts the fire and re-arms the
// timer if it is recurring. One-shot timers are forgotten.
func (s *Subsystem) FinishTimer(t *Timer, now time.Duration) {
	t.Fires++
	if t.Period > 0 {
		t.Deadline = now + t.Period
		t.active = true
		heap.Push(&s.heaps[t.CPU], t)
		return
	}
	delete(s.all, t)
}

// InactiveRecurring returns recurring timers that are currently not queued
// — popped by an interrupt handler whose execution thread was then
// discarded. Without reactivation these never fire again.
func (s *Subsystem) InactiveRecurring() []*Timer {
	var out []*Timer
	for t := range s.all {
		if t.Recurring() && !t.active {
			out = append(out, t)
		}
	}
	return out
}

// ReactivateRecurring re-arms every inactive recurring timer one period
// from now and returns how many were revived, reprogramming the APIC of
// each affected CPU (re-adding a timer programs the APIC, as on the
// normal add path). This is the "Reactivate recurring timer events"
// enhancement (§V-A).
func (s *Subsystem) ReactivateRecurring(now time.Duration) int {
	n := 0
	touched := make(map[int]bool)
	for t := range s.all {
		if t.Recurring() && !t.active {
			t.Deadline = now + t.Period
			t.active = true
			heap.Push(&s.heaps[t.CPU], t)
			touched[t.CPU] = true
			n++
		}
	}
	for cpu := range touched {
		s.ProgramAPIC(cpu)
	}
	return n
}

// Reactivate re-arms one inactive recurring timer one period from now and
// reprograms its CPU's APIC. Unlike ReactivateRecurring it touches only the
// given timer: the watchdog re-arms its own soft tick between recovery
// attempts without implying the "Reactivate recurring timer events"
// enhancement for the rest of the system. Returns false if the timer is
// one-shot, already active, or no longer registered.
func (s *Subsystem) Reactivate(t *Timer, now time.Duration) bool {
	if !t.Recurring() || t.active {
		return false
	}
	if _, ok := s.all[t]; !ok {
		return false
	}
	t.Deadline = now + t.Period
	t.active = true
	heap.Push(&s.heaps[t.CPU], t)
	s.ProgramAPIC(t.CPU)
	return true
}

// PendingCount returns the number of queued timers on cpu.
func (s *Subsystem) PendingCount(cpu int) int { return s.heaps[cpu].Len() }

// stallDelta is how far into the future CorruptRandom pushes a stalled
// deadline — far beyond any real period, so the timer is effectively dead
// until repaired.
const stallDelta = time.Hour

// queuedRecurring returns the queued recurring timers in deterministic
// (CPU, Name) order. Heap-slice layout is not deterministic across
// identical runs (reactivation pushes in map order), so corruption and
// audit walks must never use it for ordering.
func (s *Subsystem) queuedRecurring() []*Timer {
	var out []*Timer
	for cpu := range s.heaps {
		for _, t := range s.heaps[cpu] {
			if t.Recurring() {
				out = append(out, t)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CPU != out[j].CPU {
			return out[i].CPU < out[j].CPU
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// queuedRecurringOn returns one CPU's queued recurring timers sorted by
// name — the per-CPU slice of queuedRecurring. It reads only cpu's heap,
// so concurrent calls for distinct CPUs are safe.
func (s *Subsystem) queuedRecurringOn(cpu int) []*Timer {
	var out []*Timer
	for _, t := range s.heaps[cpu] {
		if t.Recurring() {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CheckHealthOn audits one CPU's queued recurring timers against their
// liveness bounds — the per-CPU recovery-domain slice of CheckHealth.
// Read-only over cpu's heap; safe to run concurrently for distinct CPUs.
func (s *Subsystem) CheckHealthOn(cpu int, now time.Duration) []string {
	var out []string
	for _, t := range s.queuedRecurringOn(cpu) {
		if t.Deadline > now+t.Period {
			out = append(out, fmt.Sprintf("cpu%d %s stalled (deadline %v, now %v, period %v)", t.CPU, t.Name, t.Deadline, now, t.Period))
		} else if t.Deadline+t.Period < now {
			out = append(out, fmt.Sprintf("cpu%d %s overdue by more than a period (deadline %v, now %v)", t.CPU, t.Name, t.Deadline, now))
		}
	}
	return out
}

// RepairHeapOn clamps cpu's out-of-bounds recurring deadlines to one
// period from now and restores cpu's heap property, returning the number
// of deadlines fixed. Unlike RepairHeaps it does NOT reprogram the APIC:
// APIC programming goes through the shared virtual clock, so the
// partitioned audit reprograms all CPUs in a serialized apply step after
// the concurrent per-CPU repairs join. Writes only cpu's heap and timers
// homed on cpu; safe concurrently for distinct CPUs.
func (s *Subsystem) RepairHeapOn(cpu int, now time.Duration) int {
	fixed := 0
	for _, t := range s.queuedRecurringOn(cpu) {
		if t.Deadline > now+t.Period || t.Deadline+t.Period < now {
			t.Deadline = now + t.Period
			fixed++
		}
	}
	heap.Init(&s.heaps[cpu])
	return fixed
}

// InactiveRecurringOn returns cpu's inactive recurring timers sorted by
// name (InactiveRecurring returns all CPUs' in map order). It reads the
// registration map, which concurrent per-CPU repair units never write.
func (s *Subsystem) InactiveRecurringOn(cpu int) []*Timer {
	var out []*Timer
	for t := range s.all {
		if t.CPU == cpu && t.Recurring() && !t.active {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ReactivateRecurringOn re-arms cpu's inactive recurring timers one period
// from now and returns how many were revived. Like RepairHeapOn it leaves
// APIC programming to the caller's serialized apply step. Writes only
// timers homed on cpu and cpu's heap; safe concurrently for distinct CPUs.
func (s *Subsystem) ReactivateRecurringOn(cpu int, now time.Duration) int {
	n := 0
	for _, t := range s.InactiveRecurringOn(cpu) {
		t.Deadline = now + t.Period
		t.active = true
		heap.Push(&s.heaps[cpu], t)
		n++
	}
	return n
}

// CorruptRandom structurally damages a random queued recurring timer's
// deadline: either stalling it far into the future (the soft tick goes
// silent — liveness violation) or burying it in the past without
// re-heapifying (ordering violation). Returns a short description.
func (s *Subsystem) CorruptRandom(rng *rand.Rand) string {
	cands := s.queuedRecurring()
	if len(cands) == 0 {
		return "no queued recurring timers"
	}
	t := cands[rng.IntN(len(cands))]
	if t.index > 0 && rng.IntN(2) == 0 {
		t.Deadline = 0
		return fmt.Sprintf("cpu%d %s buried in the past", t.CPU, t.Name)
	}
	t.Deadline += stallDelta + time.Duration(rng.Int64N(int64(time.Hour)))
	return fmt.Sprintf("cpu%d %s stalled", t.CPU, t.Name)
}

// CheckHealth audits queued recurring timers against their liveness bounds:
// a healthy queued recurring timer's deadline lies in
// (now-Period, now+Period]. Deadlines beyond now+Period are stalled
// (the timer will not fire when it should); deadlines more than a full
// period in the past are buried (popped order is violated — the timer was
// due long ago). One-shot timers carry guest-chosen deadlines the
// hypervisor cannot bound, so they are not checked. Results are sorted;
// both the count and the contents are deterministic regardless of
// heap-slice layout.
func (s *Subsystem) CheckHealth(now time.Duration) []string {
	var out []string
	for _, t := range s.queuedRecurring() {
		if t.Deadline > now+t.Period {
			out = append(out, fmt.Sprintf("cpu%d %s stalled (deadline %v, now %v, period %v)", t.CPU, t.Name, t.Deadline, now, t.Period))
		} else if t.Deadline+t.Period < now {
			out = append(out, fmt.Sprintf("cpu%d %s overdue by more than a period (deadline %v, now %v)", t.CPU, t.Name, t.Deadline, now))
		}
	}
	return out
}

// RepairHeaps clamps every out-of-bounds recurring deadline to one period
// from now, restores the heap property on every CPU, and reprograms the
// APICs. Returns the number of deadlines fixed. This is the audit-side
// repair for timer-heap corruption; the timers fire again within one
// period of the repair.
func (s *Subsystem) RepairHeaps(now time.Duration) int {
	fixed := 0
	for _, t := range s.queuedRecurring() {
		if t.Deadline > now+t.Period || t.Deadline+t.Period < now {
			t.Deadline = now + t.Period
			fixed++
		}
	}
	for cpu := range s.heaps {
		heap.Init(&s.heaps[cpu])
		s.ProgramAPIC(cpu)
	}
	return fixed
}

// NumCPUs returns the CPU count the subsystem was built for.
func (s *Subsystem) NumCPUs() int { return len(s.heaps) }

// timerHeap orders timers by deadline.
type timerHeap []*Timer

func (h timerHeap) Len() int           { return len(h) }
func (h timerHeap) Less(i, j int) bool { return h[i].Deadline < h[j].Deadline }
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *timerHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}
