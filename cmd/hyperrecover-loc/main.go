// Command hyperrecover-loc applies the paper's implementation-complexity
// methodology (Table IV, CLOC over the recovery changes) to this
// repository: lines of code are counted per category — code executing
// during normal operation to enable recovery, code executing only during
// recovery, and the substrate being recovered.
package main

import (
	"flag"
	"fmt"
	"os"

	"nilihype/internal/cloc"
)

func main() {
	root := flag.String("root", ".", "repository root to scan")
	flag.Parse()

	rep, err := cloc.ScanTree(os.DirFS(*root), nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyperrecover-loc:", err)
		os.Exit(1)
	}
	fmt.Print(rep.Format())
	fmt.Println()
	fmt.Println("Paper's Table IV (Xen patch LOC, for reference): NiLiHype required")
	fmt.Println("under 2200 added/modified lines; ReHype needed slightly more normal-")
	fmt.Println("operation code (IO-APIC and boot-option logging) and significantly")
	fmt.Println("more recovery-only code (state preservation and re-integration).")
}
