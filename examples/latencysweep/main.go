// Latencysweep: recovery latency versus host memory size for both
// mechanisms (§VII-B). NiLiHype's latency is dominated by the page-frame
// descriptor consistency scan and grows linearly with memory; ReHype adds
// the full reboot on top. The crossover story is the paper's headline:
// >30x lower recovery latency for a ~2% lower recovery rate.
package main

import (
	"fmt"
	"log"

	"nilihype/internal/campaign"
	"nilihype/internal/core"
)

func main() {
	sizes := []int{2048, 4096, 8192, 16384, 32768}
	fmt.Printf("%-10s %14s %14s %8s\n", "memory", "NiLiHype", "ReHype", "ratio")
	for _, mb := range sizes {
		nili, err := campaign.MeasureLatency(core.Microreset, mb, 3)
		if err != nil {
			log.Fatal(err)
		}
		re, err := campaign.MeasureLatency(core.Microreboot, mb, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d MB %12.1fms %12.1fms %7.1fx\n",
			mb,
			nili.Total.Seconds()*1000,
			re.Total.Seconds()*1000,
			float64(re.Total)/float64(nili.Total))
	}
	fmt.Println("\nNiLiHype scales with the page-frame scan (21ms at 8GB);")
	fmt.Println("ReHype adds hardware init (412ms) and heap recreation on top.")
}
