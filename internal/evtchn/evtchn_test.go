package evtchn

import (
	"errors"
	"testing"
	"testing/quick"
)

func pair(t *testing.T) (*Broker, *Table, *Table) {
	if t != nil {
		t.Helper()
	}
	b := NewBroker()
	t0 := NewTable(0, 16)
	t1 := NewTable(1, 16)
	b.Register(t0)
	b.Register(t1)
	return b, t0, t1
}

func TestStateStrings(t *testing.T) {
	for _, tt := range []struct {
		s    State
		want string
	}{{Free, "free"}, {Unbound, "unbound"}, {Interdomain, "interdomain"},
		{VIRQBound, "virq"}, {State(9), "state(9)"}} {
		if tt.s.String() != tt.want {
			t.Fatalf("%v != %q", tt.s, tt.want)
		}
	}
}

func TestAllocUnboundSkipsPortZero(t *testing.T) {
	tab := NewTable(1, 8)
	p, err := tab.AllocUnbound(0)
	if err != nil || p != 1 {
		t.Fatalf("p=%d err=%v, want port 1 (port 0 reserved)", p, err)
	}
	if tab.Owner() != 1 || tab.Len() != 8 {
		t.Fatal("accessors wrong")
	}
}

func TestAllocExhaustion(t *testing.T) {
	tab := NewTable(1, 4)
	for i := 0; i < 3; i++ {
		if _, err := tab.AllocUnbound(0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tab.AllocUnbound(0); !errors.Is(err, ErrNoFreePorts) {
		t.Fatalf("err = %v, want ErrNoFreePorts", err)
	}
}

func TestBindInterdomainAndSend(t *testing.T) {
	b, t0, t1 := pair(t)
	// Backend (dom0) offers an unbound port for dom1.
	back, err := t0.AllocUnbound(1)
	if err != nil {
		t.Fatal(err)
	}
	// Frontend (dom1) binds to it.
	front, err := b.BindInterdomain(1, 0, back)
	if err != nil {
		t.Fatal(err)
	}
	// Send from the frontend: the backend's port goes pending.
	who, err := b.Send(1, front)
	if err != nil || who != 0 {
		t.Fatalf("Send -> %d, %v", who, err)
	}
	if got := t0.PendingPorts(); len(got) != 1 || got[0] != back {
		t.Fatalf("backend pending = %v", got)
	}
	// And the reverse direction.
	who, err = b.Send(0, back)
	if err != nil || who != 1 {
		t.Fatalf("reverse Send -> %d, %v", who, err)
	}
	if got := t1.TakePending(); len(got) != 1 || got[0] != front {
		t.Fatalf("frontend pending = %v", got)
	}
	if len(t1.PendingPorts()) != 0 {
		t.Fatal("TakePending did not clear")
	}
}

func TestSendIsIdempotent(t *testing.T) {
	b, t0, _ := pair(t)
	back, _ := t0.AllocUnbound(1)
	front, _ := b.BindInterdomain(1, 0, back)
	for i := 0; i < 5; i++ {
		if _, err := b.Send(1, front); err != nil {
			t.Fatal(err)
		}
	}
	if got := t0.TakePending(); len(got) != 1 {
		t.Fatalf("pending = %v, want single level-triggered bit", got)
	}
}

func TestBindRejectsWrongState(t *testing.T) {
	b, t0, _ := pair(t)
	// Port not unbound.
	if _, err := b.BindInterdomain(1, 0, 3); err == nil {
		t.Fatal("bind to free port succeeded")
	}
	// Unbound for a different domain.
	back, _ := t0.AllocUnbound(5)
	if _, err := b.BindInterdomain(1, 0, back); err == nil {
		t.Fatal("bind to port reserved for another domain succeeded")
	}
	// Missing table.
	if _, err := b.BindInterdomain(9, 0, back); err == nil {
		t.Fatal("bind from unregistered domain succeeded")
	}
}

func TestVIRQBindAndRaise(t *testing.T) {
	b, _, t1 := pair(t)
	p, err := t1.BindVIRQ(VIRQBlock)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.RaiseVIRQ(1, VIRQBlock)
	if err != nil || got != p {
		t.Fatalf("RaiseVIRQ -> %d, %v", got, err)
	}
	if pending := t1.PendingPorts(); len(pending) != 1 || pending[0] != p {
		t.Fatalf("pending = %v", pending)
	}
	if _, err := b.RaiseVIRQ(1, 99); err == nil {
		t.Fatal("raise of unbound virq succeeded")
	}
	// Send on a VIRQ port sets the local bit.
	t1.TakePending()
	if who, err := b.Send(1, p); err != nil || who != 1 {
		t.Fatalf("Send(virq) -> %d, %v", who, err)
	}
}

func TestMaskedPortNotDelivered(t *testing.T) {
	b, t0, _ := pair(t)
	back, _ := t0.AllocUnbound(1)
	front, _ := b.BindInterdomain(1, 0, back)
	port, _ := t0.Port(back)
	port.Masked = true
	if _, err := b.Send(1, front); err != nil {
		t.Fatal(err)
	}
	if got := t0.PendingPorts(); len(got) != 0 {
		t.Fatalf("masked port visible: %v", got)
	}
	port.Masked = false
	if got := t0.PendingPorts(); len(got) != 1 {
		t.Fatal("unmasking did not reveal pending bit")
	}
}

func TestCloseClearsPort(t *testing.T) {
	b, t0, _ := pair(t)
	back, _ := t0.AllocUnbound(1)
	front, _ := b.BindInterdomain(1, 0, back)
	if err := t0.Close(back); err != nil {
		t.Fatal(err)
	}
	if p, _ := t0.Port(back); p.State != Free {
		t.Fatal("closed port not free")
	}
	// Send to the closed peer fails cleanly.
	if _, err := b.Send(1, front); err == nil {
		t.Fatal("send to closed peer succeeded")
	}
	if err := t0.Close(99); err == nil {
		t.Fatal("close of bad port succeeded")
	}
}

func TestUnregisterBreaksRouting(t *testing.T) {
	b, t0, _ := pair(t)
	back, _ := t0.AllocUnbound(1)
	front, _ := b.BindInterdomain(1, 0, back)
	b.Unregister(0)
	if b.Table(0) != nil {
		t.Fatal("table still registered")
	}
	if _, err := b.Send(1, front); err == nil {
		t.Fatal("send to unregistered domain succeeded")
	}
}

func TestSendErrors(t *testing.T) {
	b, _, t1 := pair(t)
	if _, err := b.Send(9, 1); err == nil {
		t.Fatal("send from unregistered domain succeeded")
	}
	if _, err := b.Send(1, 99); !errors.Is(err, ErrBadPort) {
		t.Fatalf("err = %v, want ErrBadPort", err)
	}
	p, _ := t1.AllocUnbound(0)
	if _, err := b.Send(1, p); !errors.Is(err, ErrBadState) {
		t.Fatalf("send on unbound port: %v, want ErrBadState", err)
	}
}

// TestPropertyPendingConservation: any sequence of sends across a bound
// pair leaves each side with at most one pending bit per port, and
// TakePending drains exactly the pending set.
func TestPropertyPendingConservation(t *testing.T) {
	f := func(sends []bool) bool {
		b, t0, t1 := pair(nil)
		back, _ := t0.AllocUnbound(1)
		front, _ := b.BindInterdomain(1, 0, back)
		for _, toBack := range sends {
			if toBack {
				b.Send(1, front)
			} else {
				b.Send(0, back)
			}
		}
		p0 := len(t0.PendingPorts())
		p1 := len(t1.PendingPorts())
		if p0 > 1 || p1 > 1 {
			return false
		}
		t0.TakePending()
		t1.TakePending()
		return len(t0.PendingPorts()) == 0 && len(t1.PendingPorts()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
