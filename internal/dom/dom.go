// Package dom models guest domains as the hypervisor sees them: the
// per-domain structure (Xen's struct domain, heap-allocated with embedded
// spinlocks), the global domain list (a linked list — one of the paper's
// top corruption targets, §VII-A), and per-domain event-channel state.
package dom

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"nilihype/internal/evtchn"
	"nilihype/internal/grant"
	"nilihype/internal/locking"
	"nilihype/internal/mm"
	"nilihype/internal/sched"
	"nilihype/internal/xentime"
)

// Well-known domain IDs.
const (
	PrivVMID = 0 // the privileged VM (Dom0)
)

// ErrListCorrupted is returned when a domain-list traversal hits corrupted
// links. The hypervisor treats it as a fatal error (panic).
var ErrListCorrupted = errors.New("dom: domain list corrupted")

// poisonDomain stands in for a garbage next pointer: a link redirected into
// memory that is not a domain structure. Traversals that reach it have
// followed a corrupted link.
var poisonDomain = &Domain{ID: -1, Name: "<poison>"}

// Domain is the hypervisor's per-domain structure. It is backed by a heap
// object so that its embedded locks participate in the heap-lock release
// mechanism.
type Domain struct {
	ID   int
	Name string

	// IsPriv marks the privileged VM (Dom0).
	IsPriv bool

	// VCPUs are the domain's virtual CPUs (one per domain in the paper's
	// setups, §VI-A).
	VCPUs []*sched.VCPU

	// MemStart/MemCount delimit the domain's physical frame range.
	MemStart, MemCount int

	// TotPages is the accounting counter hypercalls adjust (a critical
	// variable in the paper's sense — logged for undo).
	TotPages int

	// Obj is the backing heap allocation.
	Obj *mm.Object

	// PageAllocLock and GrantLock are the embedded heap spinlocks
	// hypercall handlers take.
	PageAllocLock *locking.Lock
	GrantLock     *locking.Lock

	// Events is the domain's event-channel port table.
	Events *evtchn.Table

	// RingPort is the inter-domain event channel to the PrivVM backend
	// (I/O ring notifications).
	RingPort int

	// GrantTab is the domain's guest-visible grant table; Maptrack is
	// the hypervisor-side bookkeeping of its active mappings.
	GrantTab *grant.Table
	Maptrack *grant.Maptrack

	// WakeupTimer is the domain's singleton set_timer_op timer (Xen
	// keeps one per vCPU; setting it replaces the previous deadline).
	WakeupTimer *xentime.Timer

	// WakeupPool caches the wakeup Timer record across set_timer_op
	// calls: each set replaces the schedule, so the handler re-adds the
	// same record (name, labels and callback are domain-invariant)
	// instead of allocating a timer per call. Allocation state only —
	// never consulted for semantics, so it is not snapshotted.
	WakeupPool *xentime.Timer

	// Failed marks the domain as crashed (its guest kernel died). The
	// campaign layer reads this to classify outcomes.
	Failed bool
	// FailReason records why, for reports.
	FailReason string

	// next chains the domain into the global list (Xen's
	// next_in_list). Corruption damages this link, not a flag.
	next *Domain
}

// Fail marks the domain failed with a reason (first reason wins).
func (d *Domain) Fail(reason string) {
	if d.Failed {
		return
	}
	d.Failed = true
	d.FailReason = reason
}

// UpcallVCPU returns the vCPU that handles event upcalls (vCPU 0; the
// paper's domains are single-vCPU), or nil.
func (d *Domain) UpcallVCPU() *sched.VCPU {
	if len(d.VCPUs) > 0 {
		return d.VCPUs[0]
	}
	return nil
}

// List is the hypervisor's global domain list. Xen chains struct domain
// into a singly linked list; error propagation that corrupts a link makes
// traversals that cross the damage fatal. The domains slice is separate
// bookkeeping — the preserved domain structures themselves (they are heap
// objects and survive recovery) — from which a reboot relinks the list
// (ReHype re-integration).
type List struct {
	domains []*Domain // preserved structures, insertion order
	head    *Domain   // linked-list head (traversal source of truth)
}

// NewList returns an empty domain list.
func NewList() *List { return &List{} }

// Insert appends a domain to the list, linking it after the current tail.
func (l *List) Insert(d *Domain) {
	d.next = nil
	if n := len(l.domains); n > 0 {
		l.domains[n-1].next = d
	} else {
		l.head = d
	}
	l.domains = append(l.domains, d)
}

// Remove unlinks a domain. Domain destruction is a slow path, so the links
// are rebuilt from the preserved structures rather than patched in place.
func (l *List) Remove(d *Domain) {
	for i, dd := range l.domains {
		if dd == d {
			l.domains = append(l.domains[:i], l.domains[i+1:]...)
			l.relink()
			return
		}
	}
}

// ByID walks the linked list for a domain. A traversal that follows a
// corrupted link — a poisoned pointer, a cycle, or a truncation before the
// domain is found — returns ErrListCorrupted (fatal to the caller).
func (l *List) ByID(id int) (*Domain, error) {
	n := 0
	for d := l.head; d != nil; d = d.next {
		if d == poisonDomain || n >= len(l.domains) {
			return nil, ErrListCorrupted
		}
		if d.ID == id {
			return d, nil
		}
		n++
	}
	if n != len(l.domains) {
		return nil, ErrListCorrupted
	}
	return nil, fmt.Errorf("dom: no domain %d", id)
}

// All walks the full linked list and returns the domains in link order, or
// ErrListCorrupted if the walk hits damage.
func (l *List) All() ([]*Domain, error) {
	out := make([]*Domain, 0, len(l.domains))
	for d := l.head; d != nil; d = d.next {
		if d == poisonDomain || len(out) >= len(l.domains) {
			return nil, ErrListCorrupted
		}
		out = append(out, d)
	}
	if len(out) != len(l.domains) {
		return nil, ErrListCorrupted
	}
	return out, nil
}

// Len returns the number of domains (valid even when the links are
// corrupted; the count is separate bookkeeping).
func (l *List) Len() int { return len(l.domains) }

// Preserved returns the domain structures in insertion order without
// touching the links — the view a reboot or audit uses while the list
// itself may be damaged.
func (l *List) Preserved() []*Domain {
	out := make([]*Domain, len(l.domains))
	copy(out, l.domains)
	return out
}

// CheckLinks walks the full linked list and returns ErrListCorrupted if
// the walk hits a poisoned pointer, visits more nodes than are registered
// (a cycle), or ends before visiting them all (a truncation).
func (l *List) CheckLinks() error {
	n := 0
	for d := l.head; d != nil; d = d.next {
		if d == poisonDomain || n >= len(l.domains) {
			return ErrListCorrupted
		}
		n++
	}
	if n != len(l.domains) {
		return ErrListCorrupted
	}
	return nil
}

// CorruptLink structurally damages a random link: poisoning it (garbage
// pointer), truncating the chain, or bending it back to the head (cycle).
// Returns a short description of the damage.
func (l *List) CorruptLink(rng *rand.Rand) string {
	if len(l.domains) == 0 {
		return "domain list empty; nothing to damage"
	}
	d := l.domains[rng.IntN(len(l.domains))]
	mode := rng.IntN(3)
	last := l.domains[len(l.domains)-1]
	if mode == 1 && d == last {
		// The tail's next is already nil; truncation there is a no-op.
		mode = 0
	}
	switch mode {
	case 0:
		d.next = poisonDomain
		return fmt.Sprintf("d%d.next poisoned", d.ID)
	case 1:
		d.next = nil
		return fmt.Sprintf("list truncated after d%d", d.ID)
	default:
		d.next = l.head
		return fmt.Sprintf("d%d.next cycles back to head", d.ID)
	}
}

// relink rebuilds the chain from the preserved structures and returns how
// many links (including the head) it had to fix.
func (l *List) relink() int {
	fixed := 0
	var want *Domain
	if len(l.domains) > 0 {
		want = l.domains[0]
	}
	if l.head != want {
		l.head = want
		fixed++
	}
	for i, d := range l.domains {
		var next *Domain
		if i+1 < len(l.domains) {
			next = l.domains[i+1]
		}
		if d.next != next {
			d.next = next
			fixed++
		}
	}
	return fixed
}

// Rebuild relinks the list from the preserved domain structures, repairing
// any link damage. Microreboot performs this as part of state
// re-integration (ReHype); the audit subsystem uses the same walk as a
// repair, which is what lets microreset survive domain-list corruption.
// Returns the number of links fixed.
func (l *List) Rebuild() int { return l.relink() }
