package traffic

// Hierarchical timing wheel over cohort indices.
//
// The wheel is what lets a million open-loop users cost one simclock event
// per coarse tick instead of one event per request: cohorts (batches of
// users sharing a request period and phase) sit in wheel slots keyed by
// the tick their next request batch is due, and advancing the wheel by one
// tick touches exactly the cohorts due in that tick. Three levels of 256
// slots cover 2^24 ticks of horizon; deadlines beyond a level's range park
// in a coarser level and cascade down when the wheel crosses that level's
// slot boundary — the classic hashed hierarchical wheel, specialized here
// to int32 indices into the engine's cohort slab so that insertion,
// cascade, and advance are pointer-free list splices with zero allocation.
//
// Slot lists are LIFO (push-front). Firing order within a tick therefore
// depends on insertion history — which is fine, because every per-tick
// effect (batch counter adds, histogram bucket adds) is commutative, so
// the SLO stays bit-identical regardless of intra-slot order.

const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits // 256
	wheelMask   = wheelSlots - 1
	wheelLevels = 3
	// wheelHorizon is the farthest future tick the wheel can hold,
	// relative to the current tick.
	wheelHorizon = 1 << (wheelBits * wheelLevels) // 2^24 ticks
)

// none is the empty-slot / end-of-list sentinel.
const none int32 = -1

// cohort is one batch of identical users: all issue one request per period,
// in phase. It is a slab entry; next links it into a wheel slot list.
type cohort struct {
	users uint64
	due   uint64 // absolute tick of the next request batch
	next  int32  // wheel slot list link (none = tail)
}

// wheel is the three-level timing wheel. cur is the next tick to process.
type wheel struct {
	cur   uint64
	slots [wheelLevels][wheelSlots]int32
}

// init readies an all-empty wheel positioned at tick 0.
func (w *wheel) init() {
	w.cur = 0
	for l := range w.slots {
		for i := range w.slots[l] {
			w.slots[l][i] = none
		}
	}
}

// levelSlot returns the level and slot index for a deadline, given the
// current tick. Deadlines within 256 ticks land in level 0 at their exact
// tick slot; farther deadlines land in the level whose slot width covers
// their distance, keyed by the deadline's high bits.
func (w *wheel) levelSlot(due uint64) (int, int) {
	delta := due - w.cur
	switch {
	case delta < wheelSlots:
		return 0, int(due & wheelMask)
	case delta < wheelSlots*wheelSlots:
		return 1, int((due >> wheelBits) & wheelMask)
	default:
		return 2, int((due >> (2 * wheelBits)) & wheelMask)
	}
}

// insert links cohort i into the slot for due. due must be >= cur and
// within the wheel horizon (the engine validates the period bound once at
// configuration time).
func (w *wheel) insert(cs []cohort, i int32, due uint64) {
	co := &cs[i]
	co.due = due
	l, s := w.levelSlot(due)
	co.next = w.slots[l][s]
	w.slots[l][s] = i
}

// advance processes the current tick: cascades coarser levels when the
// tick crosses their slot boundaries, detaches and returns the list of
// cohorts due exactly now, and steps the wheel to the next tick. Every
// returned cohort has due == the processed tick.
func (w *wheel) advance(cs []cohort) int32 {
	t := w.cur
	// Crossing into a new 2^16-tick block: re-distribute that block's
	// level-2 slot (before level 1, so its cohorts can cascade twice).
	if t&(wheelSlots*wheelSlots-1) == 0 && t != 0 {
		w.cascade(cs, 2, int((t>>(2*wheelBits))&wheelMask))
	}
	// Crossing into a new 256-tick block: re-distribute its level-1 slot.
	if t&wheelMask == 0 && t != 0 {
		w.cascade(cs, 1, int((t>>wheelBits)&wheelMask))
	}
	s := int(t & wheelMask)
	head := w.slots[0][s]
	w.slots[0][s] = none
	w.cur = t + 1
	return head
}

// cascade re-inserts every cohort of a coarse slot one level down (or into
// level 0 when the deadline is now near). Deadlines in a coarse slot are
// always >= the tick that triggers the cascade, so re-insertion never goes
// backwards.
func (w *wheel) cascade(cs []cohort, level, slot int) {
	i := w.slots[level][slot]
	w.slots[level][slot] = none
	for i != none {
		next := cs[i].next
		w.insert(cs, i, cs[i].due)
		i = next
	}
}
