package core

import (
	"fmt"
	"strings"
	"time"

	"nilihype/internal/recdomain"
	"nilihype/internal/telemetry"
)

// LatencyStep is one itemized recovery step (Tables II and III). Group
// headers have Group set and their Dur is the sum of their members.
type LatencyStep struct {
	Name  string
	Dur   time.Duration
	Group bool
}

// framesAt8GB is the page-frame count of the paper's 8 GB testbed; the
// memory-size-dependent step costs below are the paper's measurements at
// that size and scale linearly with the frame count (§VII-B: "The latency
// of the operation described above is proportional to the size of the
// host memory").
const framesAt8GB = 8 * 1024 * 1024 * 1024 / 4096

// scaleByFrames scales a cost measured at 8 GB to the actual memory size.
func scaleByFrames(at8GB time.Duration, frames int) time.Duration {
	return time.Duration(int64(at8GB) * int64(frames) / framesAt8GB)
}

// Step costs. The microreset costs itemize Table III's 1 ms "Others"; the
// page-frame scan is Table III's dominant 21 ms entry (at 8 GB).
const (
	pfScanCostAt8GB       = 21 * time.Millisecond
	microresetDiscardCost = 150 * time.Microsecond
	heapLockCost          = 120 * time.Microsecond
	ackIRQCost            = 60 * time.Microsecond
	clearIRQCost          = 10 * time.Microsecond
	schedRepairCost       = 280 * time.Microsecond
	staticLockCost        = 40 * time.Microsecond
	resumeSetupCost       = 340 * time.Microsecond
	// parallelScanCoordCost is the fixed IPI/merge overhead of sharding
	// the page-frame scan across cores (the §VII-B mitigation).
	parallelScanCoordCost = 400 * time.Microsecond
	// auditBaseCost is the fixed cost of the post-recovery audit walk
	// over the non-memory-sized structures (domain list, locks, timers,
	// event channels, grants); the audit's descriptor walk, when the
	// PF-scan enhancement didn't already pay for it, adds the scaled
	// pfScanCostAt8GB on top.
	auditBaseCost = 850 * time.Microsecond
	// reprogramIOAPICCost is the EnhReprogramIOAPIC enhancement's
	// redirection-table rewrite (a handful of MMIO register writes).
	reprogramIOAPICCost = 30 * time.Microsecond
)

// ReHype (microreboot) step costs from Table II, measured at 8 GB / 8
// CPUs. Memory-initialization entries scale with memory size.
const (
	rbEarlyBootCPU = 12 * time.Millisecond
	rbCPUsOnline   = 150 * time.Millisecond
	rbAPICSetup    = 200 * time.Millisecond
	rbTSCCalibrate = 50 * time.Millisecond
	rbRecordAlloc  = 21 * time.Millisecond  // scales with memory
	rbPFRestore    = 21 * time.Millisecond  // scales with memory (the shared scan)
	rbReinitDescs  = 13 * time.Millisecond  // scales with memory
	rbRecreateHeap = 211 * time.Millisecond // scales with memory
	rbSMPInit      = 20 * time.Millisecond
	rbRelocateMods = 2 * time.Millisecond
	rbMiscOthers   = 13 * time.Millisecond
)

// beginLatency resets the breakdown.
func (en *Engine) beginLatency() {
	en.Breakdown = nil
	en.Latency = 0
}

// charge appends one itemized step. The repair work executes while the
// clock is frozen at the detection instant, but the modeled span occupies
// [now+cumulative, +d) of virtual time, so the flight recorder gets the
// span stamped at its computed start — the timeline export then renders
// the phase sequence in chronological order.
func (en *Engine) charge(name string, d time.Duration) {
	at := en.H.Clock.Now() + en.totalLatency()
	en.H.Tel.RecordAt(at, en.lastEvent.CPU, telemetry.EvPhase,
		telemetry.PhaseArg(en.H.Tel.Intern(name), d))
	en.Breakdown = append(en.Breakdown, LatencyStep{Name: name, Dur: d})
}

// chargeParallel appends one breakdown step whose duration is a
// recovery-domain plan's parallel makespan — the max over concurrent
// domains plus the serialized global levels — and records every unit's
// span in the flight recorder at its scheduled offset, so the timeline
// export shows the per-domain phases overlapping where charge would
// render one serialized block.
func (en *Engine) chargeParallel(name string, tm recdomain.Timing) {
	at := en.H.Clock.Now() + en.totalLatency()
	for _, sp := range tm.Spans {
		en.H.Tel.RecordAt(at+sp.Start, en.lastEvent.CPU, telemetry.EvPhase,
			telemetry.PhaseArg(en.H.Tel.Intern(sp.Name), sp.Dur))
	}
	en.Breakdown = append(en.Breakdown, LatencyStep{Name: name, Dur: tm.Parallel})
}

// runRepairPlan executes the rung's IRQ and scheduler repairs as one
// concurrent recovery-domain level: each CPU's local_irq_count clear is a
// per-CPU unit and the scheduler-metadata rewrite a global-domain unit —
// they touch disjoint state, so the level needs no internal order. State
// effects equal the serial blocks exactly; the charged latency is the
// level's makespan on RepairCPUs simulated lanes.
func (en *Engine) runRepairPlan(enh Enhancements) {
	h := en.H
	lv := recdomain.Level{Name: "repair"}
	if enh.Has(EnhClearIRQCount) {
		ncpu := h.NumCPUs()
		per := clearIRQCost / time.Duration(ncpu)
		for cpu := 0; cpu < ncpu; cpu++ {
			cpu := cpu
			lv.Units = append(lv.Units, recdomain.Unit{
				Dom:  recdomain.Domain{Kind: recdomain.PerCPU, ID: cpu},
				Name: fmt.Sprintf("repair.irq.cpu%d", cpu), Cost: per,
				Run:  func() { h.ClearIRQCountOn(cpu) },
			})
		}
	}
	if enh.Has(EnhSchedConsistency) {
		lv.Units = append(lv.Units, recdomain.Unit{
			Dom:  recdomain.Domain{Kind: recdomain.Global},
			Name: "repair.sched", Cost: schedRepairCost,
			Run:  func() { h.Sched.RepairFromPerCPU() },
		})
	}
	workers := en.Cfg.RepairCPUs
	if en.Cfg.SerialRepairExec {
		workers = 1
	}
	tm := recdomain.Plan{Levels: []recdomain.Level{lv}}.Execute(en.Cfg.RepairCPUs, workers)
	en.chargeParallel("Parallel domain repair", tm)
	cur := &en.Attempts[len(en.Attempts)-1]
	cur.Timing.Merge(tm)
}

// chargeGroup appends a group header followed by its members. Only the
// members are recorded as phase spans (the header would double-cover the
// same interval).
func (en *Engine) chargeGroup(name string, members ...LatencyStep) {
	at := en.H.Clock.Now() + en.totalLatency()
	var sum time.Duration
	for _, m := range members {
		en.H.Tel.RecordAt(at, en.lastEvent.CPU, telemetry.EvPhase,
			telemetry.PhaseArg(en.H.Tel.Intern(m.Name), m.Dur))
		at += m.Dur
		sum += m.Dur
	}
	en.Breakdown = append(en.Breakdown, LatencyStep{Name: name, Dur: sum, Group: true})
	en.Breakdown = append(en.Breakdown, members...)
}

// chargeRebootTable charges the microreboot steps of Table II. The
// page-frame scan row is included in the memory-initialization group when
// the engine performs it (EnhPFScan); the scan itself runs in the shared
// path.
func (en *Engine) chargeRebootTable(includeScan bool) {
	frames := en.H.Machine.PageFrames()
	en.chargeGroup("Hardware initialization",
		LatencyStep{Name: "Early initialize of the boot CPU", Dur: rbEarlyBootCPU},
		LatencyStep{Name: "Initialize and wait for other CPUs to come online", Dur: rbCPUsOnline},
		LatencyStep{Name: "Verify, connect and setup local APIC and setup IO APIC", Dur: rbAPICSetup},
		LatencyStep{Name: "Initialize and calibrate TSC timer", Dur: rbTSCCalibrate},
	)
	memSteps := []LatencyStep{
		{Name: "Record allocated pages of old heap", Dur: scaleByFrames(rbRecordAlloc, frames)},
	}
	if includeScan {
		memSteps = append(memSteps, LatencyStep{
			Name: "Restore and check consistency of page frame entries",
			Dur:  scaleByFrames(rbPFRestore, frames),
		})
	}
	memSteps = append(memSteps,
		LatencyStep{Name: "Re-initialize the page frame descriptor for un-preserved pages", Dur: scaleByFrames(rbReinitDescs, frames)},
		LatencyStep{Name: "Recreate the new heap", Dur: scaleByFrames(rbRecreateHeap, frames)},
	)
	en.chargeGroup("Memory initialization", memSteps...)
	en.chargeGroup("Misc",
		LatencyStep{Name: "SMP initialization", Dur: rbSMPInit},
		LatencyStep{Name: "Identify valid page frame, relocate boot up modules", Dur: rbRelocateMods},
		LatencyStep{Name: "Others", Dur: rbMiscOthers},
	)
}

// Checkpoint-restore costs (§II-B alternative): restoring the post-boot
// memory image replaces the hardware initialization, but the state
// re-integration (Table II's memory-initialization block) remains.
const (
	cpImageRestore = 55 * time.Millisecond // copy-in the post-boot image
	cpAPICRevive   = 18 * time.Millisecond // re-arm local APICs / IO-APIC state
	cpMisc         = 12 * time.Millisecond
)

// chargeCheckpointTable charges the checkpoint-rollback variant: no boot,
// but the full memory re-integration of microreboot.
func (en *Engine) chargeCheckpointTable(includeScan bool) {
	frames := en.H.Machine.PageFrames()
	en.chargeGroup("Checkpoint restore (replaces hardware init)",
		LatencyStep{Name: "Restore post-boot memory image", Dur: cpImageRestore},
		LatencyStep{Name: "Revive local APICs and IO-APIC state", Dur: cpAPICRevive},
		LatencyStep{Name: "Misc", Dur: cpMisc},
	)
	memSteps := []LatencyStep{
		{Name: "Record allocated pages of old heap", Dur: scaleByFrames(rbRecordAlloc, frames)},
	}
	if includeScan {
		memSteps = append(memSteps, LatencyStep{
			Name: "Restore and check consistency of page frame entries",
			Dur:  scaleByFrames(rbPFRestore, frames),
		})
	}
	memSteps = append(memSteps,
		LatencyStep{Name: "Re-initialize the page frame descriptor for un-preserved pages", Dur: scaleByFrames(rbReinitDescs, frames)},
		LatencyStep{Name: "Recreate the new heap", Dur: scaleByFrames(rbRecreateHeap, frames)},
	)
	en.chargeGroup("State re-integration (as in microreboot)", memSteps...)
}

// WorstCaseLatency bounds the modeled recovery cost of one fault under c
// at the given page-frame count: every ladder rung's worst-case attempt
// latency (all enhancements, sequential scan) plus the grace windows
// separating the attempts. Campaigns use it to size run horizons so a
// late injection plus a full escalation cannot truncate the post-recovery
// checks.
func (c Config) WorstCaseLatency(frames int) time.Duration {
	var total time.Duration
	n := c.MaxAttempts()
	for i := 0; i < n; i++ {
		total += mechanismWorstLatency(c.MechanismFor(i), frames)
		if c.Escalation.Audit {
			total += auditBaseCost + scaleByFrames(pfScanCostAt8GB, frames)
			if c.RepairCPUs > 1 {
				// The partitioned walk pays fixed per-domain and
				// linkage-apply overheads the monolithic base cost does
				// not; at small memory sizes they can exceed the scan
				// savings.
				total += 2 * parallelScanCoordCost
			}
		}
	}
	total += time.Duration(n-1) * c.Escalation.GraceWindow
	return total
}

// privVMMaxReattachVMs bounds the surviving-AppVM count the worst-case
// PrivVM-restart attempt re-attaches (the campaign setups attach at most a
// handful; the bound leaves slack).
const privVMMaxReattachVMs = 8

// mechanismWorstLatency upper-bounds one attempt's latency for a
// mechanism at a memory size, assuming every enhancement runs.
func mechanismWorstLatency(m Mechanism, frames int) time.Duration {
	// Deliberately excludes the opt-in EnhReprogramIOAPIC's 30 µs: legacy
	// configurations' horizons stay bit-identical, and the slack below
	// absorbs it for configurations that enable the enhancement.
	inPlace := microresetDiscardCost + heapLockCost + ackIRQCost + clearIRQCost +
		schedRepairCost + staticLockCost + resumeSetupCost +
		scaleByFrames(pfScanCostAt8GB, frames)
	switch {
	case m == CheckpointRestore:
		return cpImageRestore + cpAPICRevive + cpMisc +
			scaleByFrames(rbRecordAlloc+rbPFRestore+rbReinitDescs+rbRecreateHeap, frames)
	case m.Reboots():
		return rbEarlyBootCPU + rbCPUsOnline + rbAPICSetup + rbTSCCalibrate +
			rbSMPInit + rbRelocateMods + rbMiscOthers +
			scaleByFrames(rbRecordAlloc+rbPFRestore+rbReinitDescs+rbRecreateHeap, frames)
	case m == PrivVMRestart:
		// The in-place repairs run first, then the Dom0 reboot and the
		// ring re-attach of every surviving AppVM.
		return inPlace + privVMBootCost + privVMMaxReattachVMs*privVMReattachPerVM
	default:
		return inPlace
	}
}

// totalLatency sums the non-group steps.
func (en *Engine) totalLatency() time.Duration {
	var sum time.Duration
	for _, s := range en.Breakdown {
		if !s.Group {
			sum += s.Dur
		}
	}
	return sum
}

// FormatBreakdown renders the latency breakdown as a Table II/III-style
// listing.
func (en *Engine) FormatBreakdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s recovery latency breakdown:\n", en.Cfg.Mechanism)
	for _, s := range en.Breakdown {
		if s.Group {
			fmt.Fprintf(&b, "  %-62s %8.1fms\n", s.Name+":", ms(s.Dur))
			continue
		}
		fmt.Fprintf(&b, "    - %-58s %8.1fms\n", s.Name, ms(s.Dur))
	}
	fmt.Fprintf(&b, "  %-62s %8.1fms\n", "Total:", ms(en.totalLatency()))
	return b.String()
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
