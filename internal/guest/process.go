package guest

// Process models one user process inside a UnixBench guest kernel. Its
// lifecycle is what drives the hypervisor's virtual-memory management
// load (§VI-A: programs "selected for their ability to stress the
// hypervisor's handling of hypercalls, especially those related to
// virtual memory management"): fork pins the new page tables, the running
// process issues system calls, and exit unpins everything.
type Process struct {
	PID int
	// PageTables are the frames pinned (PV) or EPT-mapped (HVM) for this
	// process's address space.
	PageTables []int
}

// procTable is the guest kernel's process accounting.
type procTable struct {
	procs   []*Process
	nextPID int
}

// fork registers a new process with its pinned page-table frames.
func (pt *procTable) fork(frames []int) *Process {
	p := &Process{PID: pt.nextPID, PageTables: frames}
	pt.nextPID++
	pt.procs = append(pt.procs, p)
	return p
}

// oldest returns the longest-lived process, or nil.
func (pt *procTable) oldest() *Process {
	if len(pt.procs) == 0 {
		return nil
	}
	return pt.procs[0]
}

// reap removes the oldest process (after its page tables were unpinned).
func (pt *procTable) reap() {
	if len(pt.procs) > 0 {
		pt.procs = pt.procs[1:]
	}
}

// count returns the live process count.
func (pt *procTable) count() int { return len(pt.procs) }

// livePageTables returns all pinned frames across live processes.
func (pt *procTable) livePageTables() []int {
	var out []int
	for _, p := range pt.procs {
		out = append(out, p.PageTables...)
	}
	return out
}
