package mm

import (
	"errors"
	"fmt"
)

// ErrUseCountUnderflow is returned when a reference count would go
// negative — in Xen this trips an ASSERT and panics the hypervisor. It is
// the post-recovery signature of a retried non-idempotent hypercall whose
// first partial execution already dropped the count (§IV).
var ErrUseCountUnderflow = errors.New("mm: page use count underflow")

// IncUse takes a reference on the frame. This is the non-idempotent state
// update at the heart of the paper's hypercall-retry problem: re-executing
// it after a partial hypercall leaves the count one too high.
func (f *PageFrame) IncUse() { f.UseCount++ }

// DecUse drops a reference, failing on underflow.
func (f *PageFrame) DecUse() error {
	if f.UseCount == 0 {
		return ErrUseCountUnderflow
	}
	f.UseCount--
	return nil
}

// AssignRange hands frames [start, start+count) to domain dom with the
// given type. Boot uses it to carve guest memory out of the machine.
func (ft *FrameTable) AssignRange(start, count, dom int, t FrameType) error {
	if start < 0 || start+count > len(ft.frames) {
		return fmt.Errorf("mm: frame range [%d,%d) out of bounds (table size %d)",
			start, start+count, len(ft.frames))
	}
	for i := start; i < start+count; i++ {
		ft.frames[i] = PageFrame{Type: t, Owner: dom}
	}
	return nil
}

// PinAsPageTable validates the frame as a guest page table. The operation
// has two separately observable steps — take the reference, then set the
// validation bit — because that is exactly the window in which a fault
// leaves the descriptor inconsistent. Callers that model the full
// (uninterrupted) operation call both.
func (f *PageFrame) PinAsPageTable() {
	f.Type = FramePageTable
	f.IncUse()         // step 1: reference taken
	f.Validated = true // step 2: validation completed
}

// UnpinPageTable reverses PinAsPageTable, again as two steps (clear the
// validation bit, then drop the reference).
func (f *PageFrame) UnpinPageTable() error {
	f.Validated = false
	if err := f.DecUse(); err != nil {
		return err
	}
	if f.UseCount == 0 {
		f.Type = FrameGuest
	}
	return nil
}
