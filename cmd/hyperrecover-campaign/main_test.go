package main

import (
	"testing"

	"nilihype/internal/campaign"
	"nilihype/internal/core"
	"nilihype/internal/guest"
	"nilihype/internal/inject"
)

func TestParseMechanism(t *testing.T) {
	tests := []struct {
		in      string
		want    core.Mechanism
		wantErr bool
	}{
		{"nilihype", core.Microreset, false},
		{"MICRORESET", core.Microreset, false},
		{"rehype", core.Microreboot, false},
		{"microreboot", core.Microreboot, false},
		{"checkpoint", core.CheckpointRestore, false},
		{"rehype-cp", core.CheckpointRestore, false},
		{"bogus", 0, true},
	}
	for _, tt := range tests {
		got, err := parseMechanism(tt.in)
		if (err != nil) != tt.wantErr || got != tt.want {
			t.Errorf("parseMechanism(%q) = %v, %v", tt.in, got, err)
		}
	}
}

func TestParseFault(t *testing.T) {
	for in, want := range map[string]inject.FaultType{
		"failstop": inject.Failstop, "Register": inject.Register, "code": inject.Code,
	} {
		if got, err := parseFault(in); err != nil || got != want {
			t.Errorf("parseFault(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseFault("alpha"); err == nil {
		t.Error("parseFault accepted junk")
	}
}

func TestParseSetupAndWorkload(t *testing.T) {
	if s, err := parseSetup("1appvm"); err != nil || s != campaign.OneAppVM {
		t.Errorf("parseSetup = %v, %v", s, err)
	}
	if s, err := parseSetup("3APPVM"); err != nil || s != campaign.ThreeAppVM {
		t.Errorf("parseSetup = %v, %v", s, err)
	}
	if _, err := parseSetup("5appvm"); err == nil {
		t.Error("parseSetup accepted junk")
	}
	for in, want := range map[string]guest.Kind{
		"blkbench": guest.BlkBench, "unixbench": guest.UnixBench, "netbench": guest.NetBench,
	} {
		if got, err := parseWorkload(in); err != nil || got != want {
			t.Errorf("parseWorkload(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseWorkload("webbench"); err == nil {
		t.Error("parseWorkload accepted junk")
	}
}
