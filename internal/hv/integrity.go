package hv

import "math/rand/v2"

// staticScratchWords sizes the static-segment scratch area; each word holds
// a fixed boot-time pattern so damage is detectable by inspection.
const staticScratchWords = 64

// recoveryVectorMagic is the intact value of the recovery-invocation
// vector.
const recoveryVectorMagic = 0x4ec0_7e57_ab1e_0001

func staticScratchPattern(i int) uint64 {
	return 0xa5a5a5a5a5a5a5a5 ^ uint64(i)*0x9e3779b97f4a7c15
}

// CorruptStaticScratchWord flips a random bit in a random static-scratch
// word (error propagation into the static data segment) and returns the
// damaged word's index.
func (h *Hypervisor) CorruptStaticScratchWord(rng *rand.Rand) int {
	i := rng.IntN(len(h.staticScratch))
	h.staticScratch[i] ^= 1 << uint(rng.IntN(64))
	return i
}

// StaticScratchDamage returns the indices of static-scratch words whose
// contents no longer match the boot-time pattern.
func (h *Hypervisor) StaticScratchDamage() []int {
	var out []int
	for i, w := range h.staticScratch {
		if w != staticScratchPattern(i) {
			out = append(out, i)
		}
	}
	return out
}

// ReinitStaticScratch restores the static scratch area to its boot-time
// state. Microreboot gets this as a side effect of re-initializing the
// static data segment; the audit performs it explicitly for microreset.
func (h *Hypervisor) ReinitStaticScratch() {
	for i := range h.staticScratch {
		h.staticScratch[i] = staticScratchPattern(i)
	}
}

// CorruptRecoveryVector damages the recovery-invocation vector: the
// recovery routine can no longer be invoked, which is fatal to every
// mechanism (§VII-A failure cause 1).
func (h *Hypervisor) CorruptRecoveryVector(rng *rand.Rand) {
	h.recoveryVector ^= 1 << uint(rng.IntN(64))
}

// RecoveryPathIntact reports whether the recovery-invocation vector is
// undamaged.
func (h *Hypervisor) RecoveryPathIntact() bool {
	return h.recoveryVector == recoveryVectorMagic
}

// SetPauseHook registers fn to run at every Pause (recovery start). The
// adversarial injector uses this to arm faults during recovery.
func (h *Hypervisor) SetPauseHook(fn func()) { h.pauseHook = fn }
