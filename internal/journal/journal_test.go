package journal

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// emitEpisode writes one representative recovery episode into j.
func emitEpisode(j *Journal) {
	j.Fault(1*time.Millisecond, 0, "Failstop", "primary")
	j.Corruption(1*time.Millisecond, 0, "heap-freelist")
	j.Detect(2*time.Millisecond, 1, "panic: fatal page fault")
	j.Attempt(2*time.Millisecond, 1, "NiLiHype", 1)
	j.Pause(2*time.Millisecond, 1)
	j.Audit(2*time.Millisecond, 1, 3, 2, 1, 0)
	j.Resume(4*time.Millisecond, 1)
	j.Disposition(10*time.Millisecond, "recovered", "")
}

func TestCausalLinks(t *testing.T) {
	j := New(0)
	emitEpisode(j)
	ev := j.Events()
	if len(ev) != 8 {
		t.Fatalf("got %d events, want 8", len(ev))
	}
	fault, corr, det, att := ev[0], ev[1], ev[2], ev[3]
	pause, aud, res, disp := ev[4], ev[5], ev[6], ev[7]

	if corr.Cause != fault.Seq {
		t.Errorf("corruption cause = #%d, want fault #%d", corr.Cause, fault.Seq)
	}
	if det.Cause != fault.Seq {
		t.Errorf("detect cause = #%d, want fault #%d", det.Cause, fault.Seq)
	}
	if att.Cause != det.Seq {
		t.Errorf("attempt cause = #%d, want detect #%d", att.Cause, det.Seq)
	}
	if att.Span != att.Seq {
		t.Errorf("attempt span = #%d, want its own seq #%d", att.Span, att.Seq)
	}
	for _, e := range []Event{pause, aud, res} {
		if e.Span != att.Seq {
			t.Errorf("%v span = #%d, want attempt #%d", e.Kind, e.Span, att.Seq)
		}
	}
	if disp.Cause != res.Seq {
		t.Errorf("disposition cause = #%d, want last event #%d", disp.Cause, res.Seq)
	}
	if v, r, s, esc := UnpackAuditAux(aud.Aux); v != 3 || r != 2 || s != 1 || esc != 0 {
		t.Errorf("audit aux unpacked to %d/%d/%d/%d, want 3/2/1/0", v, r, s, esc)
	}
}

func TestEscalationChain(t *testing.T) {
	j := New(0)
	j.Detect(1*time.Millisecond, 0, "hang")
	j.Attempt(1*time.Millisecond, 0, "NiLiHype", 1)
	j.AttemptFail(3*time.Millisecond, 0, "post-recovery hang")
	j.Escalate(3*time.Millisecond, 0, "ReHype")
	j.Attempt(3*time.Millisecond, 0, "ReHype", 2)
	ev := j.Events()
	det, att1, fail, esc, att2 := ev[0], ev[1], ev[2], ev[3], ev[4]
	if att1.Cause != det.Seq {
		t.Errorf("first attempt cause = #%d, want detect #%d", att1.Cause, det.Seq)
	}
	if fail.Span != att1.Seq {
		t.Errorf("attempt-fail span = #%d, want attempt #%d", fail.Span, att1.Seq)
	}
	if esc.Cause != fail.Seq {
		t.Errorf("escalate cause = #%d, want fail #%d", esc.Cause, fail.Seq)
	}
	if att2.Cause != fail.Seq {
		t.Errorf("second attempt cause = #%d, want fail #%d (not the stale detect)", att2.Cause, fail.Seq)
	}
}

func TestSnapshotRestoreBitIdentical(t *testing.T) {
	j := New(0)
	j.Fault(1*time.Millisecond, 0, "boot-noise", "primary")
	snap := j.Snapshot()
	want := append([]Event(nil), j.Events()...)

	emitEpisode(j)
	first := j.Export()
	j.Restore(snap)
	if !reflect.DeepEqual(j.Events(), want) {
		t.Fatalf("restore did not truncate to snapshot: %v", j.Events())
	}

	// Replaying the same episode after restore must reproduce the export
	// exactly — same seqs, same interned strings, same causal links.
	emitEpisode(j)
	if !reflect.DeepEqual(j.Export(), first) {
		t.Fatalf("post-restore replay diverged:\n%v\nvs\n%v", j.Export(), first)
	}
}

func TestRestoredJournalRecordsAllocationFree(t *testing.T) {
	j := New(0)
	snap := j.Snapshot()
	// Warm up the arrays and intern table.
	emitEpisode(j)
	j.Restore(snap)

	allocs := testing.AllocsPerRun(100, func() {
		emitEpisode(j)
		j.Restore(snap)
	})
	if allocs > 0 {
		t.Errorf("steady-state emit+restore allocates %.1f/op, want 0", allocs)
	}
}

func TestExportJSONL(t *testing.T) {
	j := New(0)
	emitEpisode(j)
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != j.Len() {
		t.Fatalf("got %d JSONL lines, want %d", len(lines), j.Len())
	}
	var first Entry
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not valid JSON: %v", err)
	}
	if first.Kind != "fault" || first.AuxText != "primary" || first.Detail != "Failstop" {
		t.Errorf("unexpected first entry: %+v", first)
	}
}

func TestExportEmptyIsNil(t *testing.T) {
	if got := New(0).Export(); got != nil {
		t.Errorf("empty journal Export = %v, want nil", got)
	}
	var nilJ *Journal
	if got := nilJ.Export(); got != nil {
		t.Errorf("nil journal Export = %v, want nil", got)
	}
}

func TestNilJournalEmittersAreNoOps(t *testing.T) {
	var j *Journal
	// Must not panic.
	emitEpisode(j)
	j.AttemptFail(0, 0, "x")
	j.Escalate(0, 0, "x")
	if j.Len() != 0 {
		t.Error("nil journal has nonzero length")
	}
}

func TestTraceLaneSpans(t *testing.T) {
	j := New(0)
	emitEpisode(j)
	lane := TraceLane(j.Export())
	if lane.TID != TraceLaneTID || lane.Name != "journal" {
		t.Fatalf("unexpected lane identity: %+v", lane)
	}
	if len(lane.Markers) != j.Len() {
		t.Fatalf("got %d markers, want %d", len(lane.Markers), j.Len())
	}
	var spans int
	for _, m := range lane.Markers {
		if m.Dur > 0 {
			spans++
			if m.Dur != 2*time.Millisecond { // attempt at 2ms, resume at 4ms
				t.Errorf("attempt span dur = %v, want 2ms", m.Dur)
			}
		}
	}
	if spans != 1 {
		t.Errorf("got %d spans, want 1 (the attempt)", spans)
	}
}
