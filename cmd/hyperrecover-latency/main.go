// Command hyperrecover-latency reproduces the recovery-latency
// experiments: Table II (ReHype breakdown), Table III (NiLiHype
// breakdown), the sender-observed service interruption of §VII-B, and the
// memory-size sweep demonstrating the page-frame-scan scaling.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nilihype/internal/campaign"
	"nilihype/internal/core"
	"nilihype/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hyperrecover-latency:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mechName  = flag.String("mechanism", "both", "nilihype | rehype | checkpoint | both")
		memoryMB  = flag.Int("memory", 8192, "machine memory in MiB (paper testbed: 8192)")
		sweep     = flag.Bool("sweep", false, "sweep memory sizes 2-64 GB (page-frame-scan scaling)")
		scanCPUs  = flag.Int("scan-cpus", 1, "parallelize the page-frame scan across N cores (§VII-B mitigation)")
		seed      = flag.Uint64("seed", 3, "run seed")
		formatStr = flag.String("format", "text", "sweep output format: text | md | csv")
	)
	flag.Parse()
	format, err := report.ParseFormat(*formatStr)
	if err != nil {
		return err
	}

	var mechs []core.Mechanism
	switch strings.ToLower(*mechName) {
	case "nilihype", "microreset":
		mechs = []core.Mechanism{core.Microreset}
	case "rehype", "microreboot":
		mechs = []core.Mechanism{core.Microreboot}
	case "rehype-cp", "checkpoint":
		mechs = []core.Mechanism{core.CheckpointRestore}
	case "both":
		mechs = []core.Mechanism{core.Microreset, core.Microreboot}
	default:
		return fmt.Errorf("unknown mechanism %q", *mechName)
	}

	if *sweep {
		sizes := []int{2048, 4096, 8192, 16384, 32768, 65536}
		for _, mech := range mechs {
			tbl := report.NewTable(fmt.Sprintf("%s recovery latency vs. memory size", mech),
				"memory_mb", "total_ms", "sender_interruption_ms")
			results, err := campaign.SweepLatency(mech, sizes, *seed)
			if err != nil {
				return err
			}
			for _, r := range results {
				tbl.AddRow(fmt.Sprintf("%d", r.MemoryMB),
					fmt.Sprintf("%.1f", ms(r.Total)),
					fmt.Sprintf("%.1f", ms(r.ServiceInterruption)))
			}
			fmt.Print(tbl.Render(format))
			fmt.Println()
		}
		return nil
	}

	var totals []campaign.LatencyResult
	for _, mech := range mechs {
		r, err := campaign.MeasureLatencyCfg(core.Config{
			Mechanism:    mech,
			Enhancements: core.AllEnhancements,
			ScanCPUs:     *scanCPUs,
		}, *memoryMB, *seed)
		if err != nil {
			return err
		}
		totals = append(totals, r)
		fmt.Print(r.FormattedBreakdown)
		fmt.Printf("  Service interruption observed by NetBench sender: %.2fms\n\n",
			ms(r.ServiceInterruption))
	}
	if len(totals) == 2 {
		fmt.Printf("Latency ratio (ReHype/NiLiHype): %.1fx\n",
			float64(totals[1].Total)/float64(totals[0].Total))
	}
	return nil
}

func ms(d interface{ Seconds() float64 }) float64 { return d.Seconds() * 1000 }
