package audit

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"time"

	"nilihype/internal/hv"
)

// corruptBroadly damages one structure family per recovery-domain kind:
// global (domain list, scratch, free list, locks), per-CPU (timer heaps),
// and per-guest (event-channel linkage, grant counts, the AppVM's heap
// object). The shared rng keeps two targets' damage identical.
func corruptBroadly(t *testing.T, h *hv.Hypervisor, r *rand.Rand) {
	t.Helper()
	h.Domains.CorruptLink(r)
	h.CorruptStaticScratchWord(r)
	h.Heap.CorruptFreeList(r)
	h.Locks.CorruptRandomHold(r)
	h.Broker.CorruptRandomLink(r)
	h.Timers.CorruptRandom(r)
	h.Frames.CorruptRandomDescriptor(r)
	h.Sched.CorruptRandom(r)
	d, err := h.Domain(1)
	if err != nil {
		t.Fatal(err)
	}
	d.Obj.Corrupt(r)
	e, err := d.GrantTab.Entry(3)
	if err != nil {
		t.Fatal(err)
	}
	e.MapCount = 17
}

// TestPartitionedSerialVsParallelExecIdentical is the package-level half
// of the PR's equivalence guarantee: executing the partitioned walk's
// units on one goroutine or on RepairCPUs goroutines yields byte-identical
// Reports — violations in the same order with the same text, the same
// sacrifices, and the same Timing. Run under -race this also proves the
// concurrent level's units touch disjoint state.
func TestPartitionedSerialVsParallelExecIdentical(t *testing.T) {
	build := func(serialExec bool) *Report {
		h, _ := newTarget(t)
		corruptBroadly(t, h, rng())
		return Run(h, Options{
			RepairCPUs:    4,
			SerialExec:    serialExec,
			FrameScanCost: 700 * time.Microsecond,
		})
	}
	serial := build(true)
	for i := 0; i < 5; i++ {
		parallel := build(false)
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("parallel execution %d diverged from serial:\nserial:   %+v\nparallel: %+v", i, serial, parallel)
		}
	}
	if serial.Timing.Units == 0 || serial.Timing.Domains < 3 {
		t.Fatalf("partitioned walk reported no timing: %+v", serial.Timing)
	}
}

// TestPartitionedRepairsConvergeWithMonolithic checks the two walks agree
// on substance for identical damage: same violation classes with the same
// verdict multisets, same sacrifices, and both leave the system clean
// enough that a follow-up monolithic audit finds nothing.
func TestPartitionedRepairsConvergeWithMonolithic(t *testing.T) {
	runWith := func(opts Options) (*Report, *hv.Hypervisor) {
		h, _ := newTarget(t)
		corruptBroadly(t, h, rng())
		return Run(h, opts), h
	}
	mono, hm := runWith(Options{})
	part, hp := runWith(Options{RepairCPUs: 4, FrameScanCost: 700 * time.Microsecond})

	if !reflect.DeepEqual(classes(mono), classes(part)) {
		t.Fatalf("verdicts by class diverge:\nmonolithic:  %v\npartitioned: %v", classes(mono), classes(part))
	}
	if !reflect.DeepEqual(mono.Sacrificed, part.Sacrificed) {
		t.Fatalf("sacrifices diverge: monolithic %v, partitioned %v", mono.Sacrificed, part.Sacrificed)
	}
	for name, h := range map[string]*hv.Hypervisor{"monolithic": hm, "partitioned": hp} {
		if r := Run(h, Options{}); len(r.Violations) != len(leftoverEscalations(r)) {
			t.Fatalf("%s walk left repairable damage: %+v", name, r.Violations)
		}
	}
}

// leftoverEscalations filters a re-audit's violations down to the ones
// neither walk claims to repair (escalation-class damage persists by
// design: the unowned/Priv heap object stays damaged).
func leftoverEscalations(r *Report) []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if v.Verdict == Escalate {
			out = append(out, v)
		}
	}
	return out
}

// TestPartitionedCleanSystem pins the no-damage case: no violations, and
// the timing still accounts for every walked unit (the walk itself is the
// cost, findings are free).
func TestPartitionedCleanSystem(t *testing.T) {
	h, _ := newTarget(t)
	r := Run(h, Options{RepairCPUs: 4, FrameScanCost: 700 * time.Microsecond})
	if len(r.Violations) != 0 || r.Repaired != 0 || len(r.Sacrificed) != 0 || r.MustEscalate() {
		t.Fatalf("clean system produced report %+v", r)
	}
	// 6 global units + sched + 4 CPU timer units + per-guest scans/grants
	// + the linkage apply.
	if r.Timing.Units < 12 {
		t.Fatalf("clean walk scheduled %d units, want the full plan", r.Timing.Units)
	}
	if r.Timing.Parallel >= r.Timing.Serial {
		t.Fatalf("parallel charge %v not below serialized %v", r.Timing.Parallel, r.Timing.Serial)
	}
}

// TestPartitionedTimingScalesWithCPUs: more simulated repair CPUs must
// never increase the charged makespan, and the serialized total must be
// invariant.
func TestPartitionedTimingScalesWithCPUs(t *testing.T) {
	at := func(n int) *Report {
		h, _ := newTarget(t)
		return Run(h, Options{RepairCPUs: n, FrameScanCost: 700 * time.Microsecond})
	}
	r2, r8 := at(2), at(8)
	if r8.Timing.Parallel > r2.Timing.Parallel {
		t.Fatalf("8 repair CPUs charged %v, more than 2 CPUs' %v", r8.Timing.Parallel, r2.Timing.Parallel)
	}
	if r2.Timing.Serial != r8.Timing.Serial {
		t.Fatalf("serialized totals differ with lane count: %v vs %v", r2.Timing.Serial, r8.Timing.Serial)
	}
}
