// Package report renders experiment results as text, Markdown, CSV or
// JSON tables, so the cmd/hyperrecover-* tools can feed plots and
// documents directly.
package report

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Format selects the output representation.
type Format int

// Formats.
const (
	Text Format = iota + 1
	Markdown
	CSV
	JSON
)

// ParseFormat maps a flag value to a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "text", "":
		return Text, nil
	case "md", "markdown":
		return Markdown, nil
	case "csv":
		return CSV, nil
	case "json":
		return JSON, nil
	default:
		return 0, fmt.Errorf("report: unknown format %q", s)
	}
}

// String returns the format name.
func (f Format) String() string {
	switch f {
	case Text:
		return "text"
	case Markdown:
		return "markdown"
	case CSV:
		return "csv"
	case JSON:
		return "json"
	default:
		return fmt.Sprintf("format(%d)", int(f))
	}
}

// Table is a rectangular result table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable builds a table with the given columns.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded, long rows truncated to the
// column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render produces the table in the requested format.
func (t *Table) Render(f Format) string {
	switch f {
	case Markdown:
		return t.renderMarkdown()
	case CSV:
		return t.renderCSV()
	case JSON:
		return t.renderJSON()
	default:
		return t.renderText()
	}
}

func (t *Table) widths() []int {
	w := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		w[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > w[i] {
				w[i] = len(cell)
			}
		}
	}
	return w
}

func (t *Table) renderText() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	w := t.widths()
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

func (t *Table) renderMarkdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.rows {
		escaped := make([]string, len(row))
		for i, cell := range row {
			escaped[i] = strings.ReplaceAll(cell, "|", "\\|")
		}
		fmt.Fprintf(&b, "| %s |\n", strings.Join(escaped, " | "))
	}
	return b.String()
}

func (t *Table) renderCSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		quoted := make([]string, len(cells))
		for i, cell := range cells {
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			quoted[i] = cell
		}
		b.WriteString(strings.Join(quoted, ","))
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// renderJSON emits the table as one self-describing JSON object. Rows are
// arrays (not objects) so duplicate column names cannot silently drop
// cells; the output ends in a newline like the other renderers.
func (t *Table) renderJSON() string {
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	doc := struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}{Title: t.Title, Columns: t.Columns, Rows: rows}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		// A [][]string cannot fail to marshal; keep the renderer total.
		return fmt.Sprintf(`{"error":%q}`, err.Error()) + "\n"
	}
	return string(out) + "\n"
}

// BarChart renders labeled values as horizontal ASCII bars — a terminal
// stand-in for the paper's figures.
type BarChart struct {
	Title string
	// Max is the value corresponding to a full-width bar (0 = auto).
	Max   float64
	Width int // bar width in characters (0 = 40)

	labels []string
	values []float64
	notes  []string
}

// NewBarChart builds an empty chart.
func NewBarChart(title string) *BarChart {
	return &BarChart{Title: title}
}

// AddBar appends one labeled bar with an optional note shown after the
// value.
func (c *BarChart) AddBar(label string, value float64, note string) {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
	c.notes = append(c.notes, note)
}

// Render draws the chart.
func (c *BarChart) Render() string {
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	width := c.Width
	if width <= 0 {
		width = 40
	}
	maxVal := c.Max
	if maxVal <= 0 {
		for _, v := range c.values {
			if v > maxVal {
				maxVal = v
			}
		}
		if maxVal == 0 {
			maxVal = 1
		}
	}
	labelW := 0
	for _, l := range c.labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, l := range c.labels {
		n := int(c.values[i] / maxVal * float64(width))
		if n < 0 {
			n = 0
		}
		if n > width {
			n = width
		}
		fmt.Fprintf(&b, "  %-*s %s%s %6.1f", labelW, l,
			strings.Repeat("█", n), strings.Repeat("·", width-n), c.values[i])
		if c.notes[i] != "" {
			fmt.Fprintf(&b, "  %s", c.notes[i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Pct formats a proportion as a percentage cell.
func Pct(p float64) string { return fmt.Sprintf("%.1f%%", 100*p) }

// PctCI formats a proportion with its confidence half-width.
func PctCI(p, ci float64) string { return fmt.Sprintf("%.1f%% ± %.1f%%", 100*p, 100*ci) }

// Ms formats a duration in milliseconds given seconds.
func Ms(seconds float64) string { return fmt.Sprintf("%.1fms", seconds*1000) }

// Dur formats a time.Duration as a milliseconds cell.
func Dur(d time.Duration) string { return Ms(d.Seconds()) }
