package prng

import (
	"math"
	"testing"
)

func TestScrambleBijectiveish(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 10000; i++ {
		v := Scramble(i)
		if seen[v] {
			t.Fatalf("collision at %d", i)
		}
		seen[v] = true
	}
}

func TestScrambleAvalanche(t *testing.T) {
	// Neighboring inputs must differ in roughly half their output bits.
	for i := uint64(1); i < 100; i++ {
		diff := Scramble(i) ^ Scramble(i+1)
		pop := 0
		for b := 0; b < 64; b++ {
			if diff&(1<<uint(b)) != 0 {
				pop++
			}
		}
		if pop < 16 || pop > 48 {
			t.Fatalf("weak avalanche at %d: %d differing bits", i, pop)
		}
	}
}

// TestSequentialSeedsUncorrelatedFirstDraw is the regression test for the
// campaign bias: the FIRST Float64 drawn from streams seeded 1..N must be
// uniform. (Raw PCG seeding fails this badly.)
func TestSequentialSeedsUncorrelatedFirstDraw(t *testing.T) {
	const n = 4000
	count := 0
	var sum float64
	for seed := uint64(1); seed <= n; seed++ {
		r := New(seed, 0xfa17)
		v := r.Float64()
		sum += v
		if v < 0.5 {
			count++
		}
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("first-draw mean = %.3f, want ~0.5", mean)
	}
	frac := float64(count) / n
	if math.Abs(frac-0.5) > 0.025 {
		t.Fatalf("first-draw P(<0.5) = %.3f, want ~0.5", frac)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, b := New(7, 3), New(7, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(8, 3)
	if New(7, 3).Uint64() == c.Uint64() {
		t.Fatal("different seeds collided on first draw")
	}
}
