package detect

import (
	"testing"
	"time"

	"nilihype/internal/hw"
	"nilihype/internal/telemetry"
)

// TestMgmtWatchdogFiresOnSilence: with the management-call watchdog armed
// and no PrivVM management-call completions, the criterion fires after
// MgmtStaleChecks NMI checks on CPU 0.
func TestMgmtWatchdogFiresOnSilence(t *testing.T) {
	_, clk, events, det := newDetected(t)
	det.SetCriteria(true, false)
	clk.RunUntil(time.Second)
	if len(*events) == 0 {
		t.Fatal("mgmt watchdog never fired on a silent system")
	}
	e := (*events)[0]
	if e.Kind != MgmtWatchdog || e.CPU != 0 {
		t.Fatalf("event = %+v", e)
	}
	// Silence is declared after MgmtStaleChecks+1 NMI periods at most
	// (the first check baselines, the next MgmtStaleChecks accumulate).
	if e.At > time.Duration(MgmtStaleChecks+2)*Period {
		t.Fatalf("fired late: %v", e.At)
	}
}

// TestMgmtWatchdogQuietWhileCallsAdvance: management-call completions
// between checks keep the watchdog silent — no false positives from a
// healthy PrivVM.
func TestMgmtWatchdogQuietWhileCallsAdvance(t *testing.T) {
	h, clk, events, det := newDetected(t)
	det.SetCriteria(true, false)
	// Stand in for the PrivVM housekeeping tick: a completion every 50ms.
	h.Timers.AddTimer(0, "fake_mgmt_tick", clk.Now()+50*time.Millisecond, 50*time.Millisecond,
		func() { h.Tel.Counters[telemetry.CtrMgmtCompletions]++ })
	h.Timers.ProgramAPIC(0)
	clk.RunUntil(2 * time.Second)
	if len(*events) != 0 {
		t.Fatalf("false detections: %v", *events)
	}
}

// TestIRQDeliveryDetectsRouteDivergence: a redirection-table entry that
// diverges from the boot software copy is caught by the next CPU 0 NMI
// read-back.
func TestIRQDeliveryDetectsRouteDivergence(t *testing.T) {
	h, clk, events, det := newDetected(t)
	det.SetCriteria(false, true)
	clk.RunUntil(time.Second)
	if len(*events) != 0 {
		t.Fatalf("false detections on clean table: %v", *events)
	}
	h.Machine.IOAPIC().CorruptRoute(hw.IRQBlock, hw.CorruptVector)
	at := clk.Now()
	clk.RunUntil(at + 500*time.Millisecond)
	if len(*events) == 0 {
		t.Fatal("route divergence never detected")
	}
	e := (*events)[0]
	if e.Kind != IRQDelivery || e.CPU != 0 {
		t.Fatalf("event = %+v", e)
	}
	if e.At > at+2*Period {
		t.Fatalf("detected late: corrupted at %v, event at %v", at, e.At)
	}
}

// TestIRQDeliveryDetectsStuckLine: a line stranded in service is declared
// lost after IRQStuckChecks consecutive NMI observations.
func TestIRQDeliveryDetectsStuckLine(t *testing.T) {
	h, clk, events, det := newDetected(t)
	det.SetCriteria(false, true)
	h.Machine.IOAPIC().StrandLine(hw.IRQNIC)
	at := clk.Now()
	clk.RunUntil(at + time.Second)
	if len(*events) == 0 {
		t.Fatal("stuck line never detected")
	}
	e := (*events)[0]
	if e.Kind != IRQDelivery {
		t.Fatalf("event = %+v", e)
	}
	if e.At > at+time.Duration(IRQStuckChecks+2)*Period {
		t.Fatalf("detected late: %v after strand", e.At-at)
	}
}

// TestCriteriaOffIgnoreDamage: with the opt-in criteria disabled (the
// legacy configuration), neither PrivVM silence nor device damage produces
// events — legacy campaigns see the detector they always had.
func TestCriteriaOffIgnoreDamage(t *testing.T) {
	h, clk, events, det := newDetected(t)
	det.SetCriteria(false, false)
	h.Machine.IOAPIC().CorruptRoute(hw.IRQBlock, hw.CorruptCPU)
	h.Machine.IOAPIC().StrandLine(hw.IRQNIC)
	clk.RunUntil(2 * time.Second)
	if len(*events) != 0 {
		t.Fatalf("criteria fired while disabled: %v", *events)
	}
}

// TestRearmResetsCriteriaProgress: Rearm between escalation attempts
// re-baselines the criteria, so a detection right before recovery does not
// instantly re-fire from stale staleness counters — the grace window
// starts from a clean slate.
func TestRearmResetsCriteriaProgress(t *testing.T) {
	h, clk, events, det := newDetected(t)
	det.SetCriteria(true, true)
	h.Machine.IOAPIC().StrandLine(hw.IRQNIC)
	clk.RunUntil(time.Second)
	if len(*events) == 0 {
		t.Fatal("no initial detection")
	}
	// Recovery clears the latch and re-arms; the accumulated stuck count
	// must not survive into the next observation window.
	h.Machine.IOAPIC().AckAll()
	det.Rearm()
	n := len(*events)
	clk.RunUntil(clk.Now() + time.Second)
	for _, e := range (*events)[n:] {
		if e.Kind == IRQDelivery {
			t.Fatalf("stale stuck-count refired after Rearm: %+v", e)
		}
	}
}

// TestCriteriaKindStrings pins the new kind names used in traces.
func TestCriteriaKindStrings(t *testing.T) {
	if MgmtWatchdog.String() != "mgmt-watchdog" || IRQDelivery.String() != "irq-delivery" {
		t.Fatalf("kind names: %v %v", MgmtWatchdog, IRQDelivery)
	}
}

// TestCriteriaCounters: each criterion increments its own telemetry
// counter on fire.
func TestCriteriaCounters(t *testing.T) {
	h, clk, _, det := newDetected(t)
	det.SetCriteria(true, false)
	clk.RunUntil(time.Second)
	if h.Tel.Counters[telemetry.CtrDetectMgmt] == 0 {
		t.Fatal("mgmt watchdog counter did not advance")
	}
	if h.Tel.Counters[telemetry.CtrDetectIRQ] != 0 {
		t.Fatal("irq counter advanced without the criterion enabled")
	}
}
