package guest

// Process models one user process inside a UnixBench guest kernel. Its
// lifecycle is what drives the hypervisor's virtual-memory management
// load (§VI-A: programs "selected for their ability to stress the
// hypervisor's handling of hypercalls, especially those related to
// virtual memory management"): fork pins the new page tables, the running
// process issues system calls, and exit unpins everything.
type Process struct {
	PID int
	// PageTables are the frames pinned (PV) or EPT-mapped (HVM) for this
	// process's address space. The exit path consumes the slice from the
	// front as each unpin is issued.
	PageTables []int

	// buf is the backing array PageTables started from. Exit trims
	// PageTables from the front, so the original start must be kept
	// separately for the free list to reuse the array on a later fork.
	buf []int
}

// doneFill records the (possibly regrown) backing array once the caller
// has appended all of the process's page-table frames.
func (p *Process) doneFill() { p.buf = p.PageTables[:0] }

// procTable is the guest kernel's process accounting. Reaped Process
// records go to a free list so the fork/exit churn of a benchmark run —
// and of every reseeded forked run after it — reuses the same handful of
// records and page-table arrays.
type procTable struct {
	procs   []*Process
	free    []*Process
	nextPID int
}

// fork registers a new process with an empty page-table list, reusing a
// reaped record when one is free. The caller appends the pinned frames
// directly to p.PageTables and finishes with doneFill.
func (pt *procTable) fork() *Process {
	var p *Process
	if n := len(pt.free); n > 0 {
		p = pt.free[n-1]
		pt.free[n-1] = nil
		pt.free = pt.free[:n-1]
	} else {
		p = &Process{}
	}
	p.PID = pt.nextPID
	p.PageTables = p.buf[:0]
	pt.nextPID++
	pt.procs = append(pt.procs, p)
	return p
}

// oldest returns the longest-lived process, or nil.
func (pt *procTable) oldest() *Process {
	if len(pt.procs) == 0 {
		return nil
	}
	return pt.procs[0]
}

// reap removes the oldest process (after its page tables were unpinned)
// and recycles its record.
func (pt *procTable) reap() {
	if len(pt.procs) == 0 {
		return
	}
	p := pt.procs[0]
	copy(pt.procs, pt.procs[1:])
	last := len(pt.procs) - 1
	pt.procs[last] = nil
	pt.procs = pt.procs[:last]
	p.PageTables = nil
	pt.free = append(pt.free, p)
}

// count returns the live process count.
func (pt *procTable) count() int { return len(pt.procs) }

// reset recycles every live process and rewinds the PID counter (run
// restore); the free list and its page-table arrays carry across runs.
func (pt *procTable) reset() {
	for i, p := range pt.procs {
		p.PageTables = nil
		pt.free = append(pt.free, p)
		pt.procs[i] = nil
	}
	pt.procs = pt.procs[:0]
	pt.nextPID = 0
}

// livePageTables returns all pinned frames across live processes.
func (pt *procTable) livePageTables() []int {
	var out []int
	for _, p := range pt.procs {
		out = append(out, p.PageTables...)
	}
	return out
}
