package campaign

import (
	"time"

	"nilihype/internal/core"
	"nilihype/internal/guest"
	"nilihype/internal/inject"
)

// ThroughputBenchConfig is the fixed run configuration shared by the
// campaign-throughput benchmark (BenchmarkCampaignThroughput) and
// cmd/hyperrecover-bench, so the numbers recorded in BENCH_campaign.json
// stay comparable across changes: a 1AppVM/UnixBench failstop campaign
// under Microreset with all enhancements and logging on — the paper's
// primary configuration, and the hottest realistic simulation path.
func ThroughputBenchConfig() RunConfig {
	return RunConfig{
		Setup:         OneAppVM,
		Fault:         inject.Failstop,
		Workload:      guest.UnixBench,
		Logging:       true,
		Recovery:      core.Config{Mechanism: core.Microreset, Enhancements: core.AllEnhancements},
		BenchDuration: 2 * time.Second,
	}
}
