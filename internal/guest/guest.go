// Package guest models the virtual machines and the synthetic benchmarks
// of the paper's evaluation (§VI-A): BlkBench (block-interface stress),
// UnixBench (hypercall/VM-management stress), and NetBench (a 1 ms UDP
// request/reply service whose sender runs on a separate physical host).
//
// Guests drive the hypervisor exactly the way real PV guests do: through
// hypercalls, forwarded syscalls, grant/event-channel I/O paths, and
// timer-based blocking. Their request mixes are what determine the
// hypervisor-activity occupancy fractions that the recovery experiments
// depend on.
package guest

import (
	"fmt"
	"time"

	"nilihype/internal/evtchn"
	"nilihype/internal/hv"
	"nilihype/internal/hw"
	"nilihype/internal/hypercall"
	"nilihype/internal/prng"
)

// Kind selects a benchmark.
type Kind int

// Benchmarks.
const (
	BlkBench Kind = iota + 1
	UnixBench
	NetBench
)

// String returns the benchmark name.
func (k Kind) String() string {
	switch k {
	case BlkBench:
		return "BlkBench"
	case UnixBench:
		return "UnixBench"
	case NetBench:
		return "NetBench"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Config describes one AppVM and its benchmark.
type Config struct {
	Kind     Kind
	Dom      int
	CPU      int
	MemPages int
	// HVM runs the guest under full hardware virtualization: kernel
	// memory management reaches the hypervisor as EPT-violation VM
	// exits and device accesses as emulated I/O, instead of PV
	// hypercalls and forwarded syscalls. I/O rings (grants, event
	// channels) remain PV, as with Xen PVHVM guests. The paper reports
	// injection results for HVM AppVMs "very similar" to PV (§VI-A).
	HVM bool
	// Duration is the benchmark run length (paper: ~10 s for 1AppVM,
	// ~24 s for 3AppVM; scaled down by default for campaign speed).
	Duration time.Duration
	// IterPeriod is the workload pacing (time between iterations).
	IterPeriod time.Duration
}

// DefaultMemPages is the AppVM memory size (64 MB at 4 KiB pages).
const DefaultMemPages = 16384

// World wires guests, the external host, and the hypervisor together.
type World struct {
	H *hv.Hypervisor

	apps   map[int]*AppVM
	Sender *NetSender

	rng *prng.Stream

	// callFree recycles completed hypercall records (see pool.go).
	callFree []*hypercall.Call

	// privTickFn/privTickBodyFn are the PrivVM housekeeping callbacks
	// cached as method values: the tick fires every 5 ms of virtual time,
	// and rebuilding its closures each period would allocate on every tick.
	privTickFn     func()
	privTickBodyFn func()

	// privHung marks the PrivVM guest as hung: management hypercalls
	// stall (the housekeeping tick goes silent, domctl requests cannot be
	// issued) even though Dom0's hypervisor-side structures are intact.
	privHung bool
	// privTickLive tracks whether the housekeeping tick chain is armed,
	// so ResumePrivVM can re-arm a dead chain without double-scheduling a
	// live one.
	privTickLive bool
}

// NewWorld builds the guest world over a booted hypervisor and registers
// the event and NIC hooks.
func NewWorld(h *hv.Hypervisor, seed uint64) *World {
	w := &World{
		H:    h,
		apps: make(map[int]*AppVM),
		rng:  prng.NewStream(seed, 0x60e57),
	}
	h.SetEventHook(w.onEvent)
	h.SetNICRxHook(w.onPacket)
	w.privTickFn = w.privTick
	w.privTickBodyFn = w.privTickBody
	w.Sender = newNetSender(w)
	return w
}

// Reseed rewinds the world's RNG stream to the position NewWorld(h, seed)
// would start from. On a fresh world it is a no-op; the campaign's
// snapshot-fork path uses it so forked runs draw the same per-VM seeds a
// cold boot would.
func (w *World) Reseed(seed uint64) { w.rng.Reseed(seed, 0x60e57) }

// AddAppVM creates the domain and its workload. Call Start (or StartAll)
// to begin the benchmark.
func (w *World) AddAppVM(cfg Config) (*AppVM, error) {
	vm, err := w.CreateAppVM(cfg)
	if err != nil {
		return nil, err
	}
	w.SeedAppVM(cfg.Dom)
	return vm, nil
}

// CreateAppVM creates the domain and its workload shell without drawing
// any randomness — the shape-only half of AddAppVM. The campaign's
// snapshot-fork path runs it once per image (before the snapshot) and then
// SeedAppVM once per run, so the image is seed-independent.
func (w *World) CreateAppVM(cfg Config) (*AppVM, error) {
	if cfg.MemPages == 0 {
		cfg.MemPages = DefaultMemPages
	}
	if cfg.IterPeriod == 0 {
		cfg.IterPeriod = defaultIterPeriod(cfg.Kind)
	}
	if err := w.H.CreateDomain(cfg.Dom, cfg.Kind.String(), cfg.MemPages, cfg.CPU, false); err != nil {
		return nil, fmt.Errorf("guest: %w", err)
	}
	vm := &AppVM{W: w, Cfg: cfg}
	w.apps[cfg.Dom] = vm
	return vm, nil
}

// SeedAppVM draws domain dom's per-run randomness: the workload RNG and,
// for BlkBench, the file-content seed. The draw order matches AddAppVM
// exactly, so calling CreateAppVM+SeedAppVM for each VM in creation order
// consumes the world stream identically to the legacy combined path.
func (w *World) SeedAppVM(dom int) {
	vm := w.apps[dom]
	if vm == nil {
		return
	}
	vm.rng = prng.New(w.rng.Uint64(), uint64(vm.Cfg.Dom))
	if vm.Cfg.Kind == BlkBench {
		if vm.Files != nil {
			// Forked-run path: the store survives resetForRun so its map
			// is reused instead of reallocated every run.
			vm.Files.Reset(w.rng.Uint64())
		} else {
			vm.Files = NewFileStore(w.rng.Uint64())
		}
	}
}

// AttachAppVM wraps an already-created domain (e.g. one built by a PrivVM
// domctl hypercall after recovery) with a workload.
func (w *World) AttachAppVM(cfg Config) *AppVM {
	if cfg.IterPeriod == 0 {
		cfg.IterPeriod = defaultIterPeriod(cfg.Kind)
	}
	vm := &AppVM{
		W:   w,
		Cfg: cfg,
		rng: prng.New(w.rng.Uint64(), uint64(cfg.Dom)),
	}
	if cfg.Kind == BlkBench {
		vm.Files = NewFileStore(w.rng.Uint64())
	}
	w.apps[cfg.Dom] = vm
	return vm
}

// App returns the AppVM for a domain, or nil.
func (w *World) App(dom int) *AppVM { return w.apps[dom] }

// Apps returns all AppVMs in domain-ID order.
func (w *World) Apps() []*AppVM {
	var out []*AppVM
	for id := 0; id < 1024; id++ {
		if vm, ok := w.apps[id]; ok {
			out = append(out, vm)
		}
	}
	return out
}

// StartAll starts every attached benchmark.
func (w *World) StartAll() {
	for _, vm := range w.Apps() {
		vm.Start()
	}
}

// CorruptGuestData models silent data corruption reaching a guest: its
// benchmark output no longer matches the golden copy (§VI-A failure
// criterion 1). For BlkBench the corruption lands in an actual stored
// file, caught mechanically by the golden comparison; for the other
// benchmarks (whose outputs are syscall logs) the corrupted-output flag
// stands in.
func (w *World) CorruptGuestData(dom int) {
	vm := w.apps[dom]
	if vm == nil {
		return
	}
	if vm.Files != nil {
		vm.Files.Corrupt(w.rng.Uint64())
		return
	}
	vm.OutputCorrupted = true
}

// onEvent routes event-channel notifications to workloads by the port's
// binding: block-completion VIRQ ports drive the BlkBench completion
// path; ring-notification acks are absorbed.
func (w *World) onEvent(domID, port int) {
	vm := w.apps[domID]
	if vm == nil {
		return
	}
	d, err := w.H.Domain(domID)
	if err != nil {
		return
	}
	p, err := d.Events.Port(port)
	if err != nil {
		return
	}
	d.Events.TakePending()
	if p.State == evtchn.VIRQBound && p.VIRQ == evtchn.VIRQBlock {
		vm.onBlockComplete()
	}
}

// onPacket routes NIC receive interrupts to the NetBench receiver.
func (w *World) onPacket(p hw.Packet) {
	vm := w.apps[p.Flow]
	if vm == nil || vm.Cfg.Kind != NetBench {
		return
	}
	vm.onNetPacket(p)
}

func defaultIterPeriod(k Kind) time.Duration {
	switch k {
	case BlkBench:
		return 1500 * time.Microsecond
	case UnixBench:
		return 1200 * time.Microsecond
	default:
		return time.Millisecond
	}
}

// dispatch issues a hypercall from the VM's vCPU.
func (w *World) dispatch(cpu int, call *hypercall.Call) {
	w.H.Dispatch(cpu, call)
}
