package campaign

import (
	"runtime"
	"testing"
	"time"
)

// throughputConfig is the fixed configuration the campaign-throughput
// benchmark and cmd/hyperrecover-bench share, so BENCH_campaign.json
// numbers are comparable across PRs.
func throughputConfig() RunConfig {
	return ThroughputBenchConfig()
}

// BenchmarkCampaignThroughput measures the end-to-end campaign hot path:
// runs/sec and allocations per run. This is the number that bounds
// campaign sizes (and therefore confidence intervals) in CI time.
func BenchmarkCampaignThroughput(b *testing.B) {
	const runs = 24
	c := Campaign{Base: throughputConfig(), Runs: runs}
	var ms1, ms2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms1)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		s := c.Execute()
		if s.Runs != runs {
			b.Fatalf("Runs = %d", s.Runs)
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()
	runtime.ReadMemStats(&ms2)
	total := float64(runs) * float64(b.N)
	b.ReportMetric(total/elapsed.Seconds(), "runs/sec")
	b.ReportMetric(float64(ms2.Mallocs-ms1.Mallocs)/total, "allocs/run")
	b.ReportMetric(float64(ms2.TotalAlloc-ms1.TotalAlloc)/total/1024, "KB/run")
}

// TestForkedRunAllocBudget guards the per-run allocation budget with the
// always-on telemetry active: metric increments and flight-recorder
// writes are array stores, so turning observability on must not add
// per-event allocations. The ceiling sits ~15% above the measured steady
// state (BENCH_campaign.json) — tight enough to catch a stray per-event
// allocation (tens of thousands of events per run), loose enough to
// ignore run-to-run variance in the simulation itself.
func TestForkedRunAllocBudget(t *testing.T) {
	rc := ThroughputBenchConfig()
	img, err := buildImage(rc)
	if err != nil {
		t.Fatalf("buildImage: %v", err)
	}
	seed := uint64(0)
	allocs := testing.AllocsPerRun(5, func() {
		seed++
		rc.Seed = seed
		img.run(rc)
	})
	const budget = 70000
	if allocs > budget {
		t.Fatalf("forked run allocates %.0f objects, budget %d", allocs, budget)
	}
}

// BenchmarkSingleRun measures one fault-injection run in isolation
// (no executor involvement): the per-run floor the executor builds on.
func BenchmarkSingleRun(b *testing.B) {
	rc := throughputConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rc.Seed = uint64(i + 1)
		r := Run(rc)
		if r.Outcome == 0 {
			b.Fatal("no outcome")
		}
	}
}
