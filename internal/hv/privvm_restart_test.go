package hv

import (
	"testing"

	"nilihype/internal/dom"
	"nilihype/internal/telemetry"
)

// TestRestartPrivVMRebuildsDom0AndReattachesRings: the restart tears the
// old Dom0 down, boots a fresh one from the boot image, and re-binds every
// surviving AppVM's I/O ring to the new backend table.
func TestRestartPrivVMRebuildsDom0AndReattachesRings(t *testing.T) {
	h, _ := newBooted(t)
	addAppVM(t, h, 1, 1)
	addAppVM(t, h, 2, 2)
	oldD0, err := h.Domain(dom.PrivVMID)
	if err != nil {
		t.Fatal(err)
	}
	oldStart := oldD0.MemStart
	liveObjs := h.Heap.AllocatedObjects()
	oldD0.Failed = true

	n, err := h.RestartPrivVM()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("reattached %d rings, want 2", n)
	}
	newD0, err := h.Domain(dom.PrivVMID)
	if err != nil {
		t.Fatalf("no Dom0 after restart: %v", err)
	}
	if newD0 == oldD0 || newD0.Failed {
		t.Fatal("restart did not produce a fresh, healthy Dom0")
	}
	// The dead Dom0's guest-frame range is reused — the bump allocator
	// never reclaims, so a fresh carve per restart would leak 64 MB of
	// frames (and strand stale descriptors for the audit to trip over).
	if newD0.MemStart != oldStart {
		t.Fatalf("Dom0 range not reused: old start %d, new start %d", oldStart, newD0.MemStart)
	}
	// Old domain struct freed, new one allocated: net-zero live objects.
	if got := h.Heap.AllocatedObjects(); got != liveObjs {
		t.Fatalf("live heap objects %d, want %d (old Dom0 struct leaked?)", got, liveObjs)
	}
	// Every surviving AppVM holds a live frontend port into the new
	// backend table.
	for _, id := range []int{1, 2} {
		d, err := h.Domain(id)
		if err != nil {
			t.Fatal(err)
		}
		if d.RingPort <= 0 {
			t.Fatalf("domain %d has no ring port", id)
		}
	}
	if err := h.Domains.CheckLinks(); err != nil {
		t.Fatalf("domain list broken after restart: %v", err)
	}
	if h.Tel.Counters[telemetry.CtrPrivVMRestarts] != 1 {
		t.Fatalf("restart counter = %d", h.Tel.Counters[telemetry.CtrPrivVMRestarts])
	}
}

// TestRestartPrivVMSkipsFailedAppVMs: an AppVM already marked Failed gets
// no ring — it is dead, not surviving.
func TestRestartPrivVMSkipsFailedAppVMs(t *testing.T) {
	h, _ := newBooted(t)
	addAppVM(t, h, 1, 1)
	addAppVM(t, h, 2, 2)
	d2, err := h.Domain(2)
	if err != nil {
		t.Fatal(err)
	}
	d2.Failed = true
	n, err := h.RestartPrivVM()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("reattached %d rings, want 1 (failed AppVM skipped)", n)
	}
}

// TestRestartPrivVMTwiceStaysBounded: repeated restarts keep reusing the
// same frame range instead of marching the bump allocator toward
// exhaustion.
func TestRestartPrivVMTwiceStaysBounded(t *testing.T) {
	h, _ := newBooted(t)
	d0, _ := h.Domain(dom.PrivVMID)
	start := d0.MemStart
	for i := 0; i < 3; i++ {
		if _, err := h.RestartPrivVM(); err != nil {
			t.Fatalf("restart %d: %v", i, err)
		}
		d0, err := h.Domain(dom.PrivVMID)
		if err != nil {
			t.Fatal(err)
		}
		if d0.MemStart != start {
			t.Fatalf("restart %d moved Dom0 to frame %d (boot range %d)", i, d0.MemStart, start)
		}
	}
	if h.Tel.Counters[telemetry.CtrPrivVMRestarts] != 3 {
		t.Fatalf("counter = %d", h.Tel.Counters[telemetry.CtrPrivVMRestarts])
	}
}
