// Command hyperrecover-campaign runs fault-injection campaigns and
// reports successful-recovery rates (Figure 2) and injection-outcome
// breakdowns (§VII-A).
//
// Examples:
//
//	hyperrecover-campaign -mechanism nilihype -fault register -runs 700
//	hyperrecover-campaign -mechanism rehype -fault code -runs 400
//	hyperrecover-campaign -all -runs 300          # full Figure 2 grid
//	hyperrecover-campaign -all -paper             # paper-scale campaign sizes
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nilihype/internal/campaign"
	"nilihype/internal/core"
	"nilihype/internal/guest"
	"nilihype/internal/inject"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hyperrecover-campaign:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mechName = flag.String("mechanism", "nilihype", "recovery mechanism: nilihype | rehype | checkpoint")
		faultStr = flag.String("fault", "failstop", "fault type: failstop | register | code")
		setupStr = flag.String("setup", "3appvm", "target system: 1appvm | 3appvm")
		workload = flag.String("workload", "unixbench", "1AppVM benchmark: blkbench | unixbench | netbench")
		runs     = flag.Int("runs", 300, "number of injection runs")
		duration = flag.Duration("duration", 3*time.Second, "benchmark duration (virtual time)")
		logging  = flag.Bool("logging", true, "enable §IV retry-mitigation logging (off = NiLiHype*)")
		hvm      = flag.Bool("hvm", false, "run AppVMs under full hardware virtualization (§VI-A)")
		all      = flag.Bool("all", false, "run the full Figure 2 grid (both mechanisms, all fault types)")
		traceRun = flag.Uint64("trace-run", 0, "run a single seed and print its recovery timeline instead of a campaign")
		paper    = flag.Bool("paper", false, "paper-scale campaigns (1000/5000/2000 runs, 24s benchmarks)")
		parallel = flag.Int("parallel", 0, "concurrent runs (0 = GOMAXPROCS)")
	)
	flag.Parse()

	mech, err := parseMechanism(*mechName)
	if err != nil {
		return err
	}
	setup, err := parseSetup(*setupStr)
	if err != nil {
		return err
	}
	wl, err := parseWorkload(*workload)
	if err != nil {
		return err
	}

	benchDur := *duration
	if *paper {
		benchDur = 24 * time.Second
	}

	execOne := func(m core.Mechanism, ft inject.FaultType, n int) {
		c := campaign.Campaign{
			Base: campaign.RunConfig{
				Setup:         setup,
				Fault:         ft,
				Workload:      wl,
				Logging:       *logging,
				HVM:           *hvm,
				Recovery:      core.Config{Mechanism: m, Enhancements: core.AllEnhancements},
				BenchDuration: benchDur,
			},
			Runs:        n,
			Parallelism: *parallel,
		}
		fmt.Print(c.Execute().Format())
		fmt.Println()
	}

	if *traceRun > 0 {
		ft, err := parseFault(*faultStr)
		if err != nil {
			return err
		}
		r := campaign.Run(campaign.RunConfig{
			Seed:          *traceRun,
			Setup:         setup,
			Fault:         ft,
			Workload:      wl,
			Logging:       *logging,
			HVM:           *hvm,
			Recovery:      core.Config{Mechanism: mech, Enhancements: core.AllEnhancements},
			BenchDuration: benchDur,
			TraceCapacity: 4096,
		})
		fmt.Printf("seed %d: outcome=%v success=%v noVMF=%v fail=%q\n",
			r.Seed, r.Outcome, r.Success, r.NoVMF, r.FailReason)
		fmt.Println("recovery timeline (panic/spin/wedge/discard/retry/drop events):")
		for _, line := range r.Trace {
			for _, kind := range []string{" panic ", " spin ", " wedge ", " discard ", " retry ", " drop "} {
				if strings.Contains(line, kind) {
					fmt.Println(" ", line)
					break
				}
			}
		}
		return nil
	}

	if *all {
		for _, m := range []core.Mechanism{core.Microreset, core.Microreboot} {
			for _, ft := range []inject.FaultType{inject.Failstop, inject.Register, inject.Code} {
				n := *runs
				if *paper {
					n = map[inject.FaultType]int{
						inject.Failstop: 1000, inject.Register: 5000, inject.Code: 2000,
					}[ft]
				}
				execOne(m, ft, n)
			}
		}
		return nil
	}

	ft, err := parseFault(*faultStr)
	if err != nil {
		return err
	}
	n := *runs
	if *paper {
		n = map[inject.FaultType]int{
			inject.Failstop: 1000, inject.Register: 5000, inject.Code: 2000,
		}[ft]
	}
	execOne(mech, ft, n)
	return nil
}

func parseMechanism(s string) (core.Mechanism, error) {
	switch strings.ToLower(s) {
	case "nilihype", "microreset":
		return core.Microreset, nil
	case "rehype", "microreboot":
		return core.Microreboot, nil
	case "rehype-cp", "checkpoint":
		return core.CheckpointRestore, nil
	default:
		return 0, fmt.Errorf("unknown mechanism %q", s)
	}
}

func parseFault(s string) (inject.FaultType, error) {
	switch strings.ToLower(s) {
	case "failstop":
		return inject.Failstop, nil
	case "register":
		return inject.Register, nil
	case "code":
		return inject.Code, nil
	default:
		return 0, fmt.Errorf("unknown fault type %q", s)
	}
}

func parseSetup(s string) (campaign.Setup, error) {
	switch strings.ToLower(s) {
	case "1appvm":
		return campaign.OneAppVM, nil
	case "3appvm":
		return campaign.ThreeAppVM, nil
	default:
		return 0, fmt.Errorf("unknown setup %q", s)
	}
}

func parseWorkload(s string) (guest.Kind, error) {
	switch strings.ToLower(s) {
	case "blkbench":
		return guest.BlkBench, nil
	case "unixbench":
		return guest.UnixBench, nil
	case "netbench":
		return guest.NetBench, nil
	default:
		return 0, fmt.Errorf("unknown workload %q", s)
	}
}
