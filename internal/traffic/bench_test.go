package traffic

import (
	"testing"
	"time"

	"nilihype/internal/simclock"
)

// BenchmarkWheelAdvance measures the bare wheel: 1000 cohorts on a
// 200-tick period, advanced tick by tick with periodic re-insertion —
// the steady-state inner loop of a million-user population.
func BenchmarkWheelAdvance(b *testing.B) {
	const n = 1000
	const period = 200
	cs := make([]cohort, n)
	var w wheel
	w.init()
	for i := range cs {
		cs[i].users = 1000
		w.insert(cs, int32(i), 1+uint64(i*period)/n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		for i := w.advance(cs); i != none; {
			next := cs[i].next
			w.insert(cs, i, cs[i].due+period)
			i = next
		}
	}
}

// BenchmarkTrafficTick measures the full tick path through simclock: event
// dispatch, batch accounting, histogram update, reschedule. One iteration
// is one 5ms tick carrying a 1M-user population.
func BenchmarkTrafficTick(b *testing.B) {
	clk := simclock.New()
	e := New(Config{Users: 1_000_000})
	// Horizon long enough that the tick chain outlives b.N (5ms per tick).
	e.Start(clk, nil, time.Duration(b.N+100)*5*time.Millisecond)
	for i := 0; i < 50; i++ {
		clk.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.Step()
	}
}

// BenchmarkTrafficRun measures a whole armed run: Start, 2s of ticks with
// one 700ms outage (the microreboot shape), Finish.
func BenchmarkTrafficRun(b *testing.B) {
	e := New(Config{Users: 1_000_000})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk := simclock.New()
		e.Start(clk, nil, 2*time.Second)
		clk.At(500*time.Millisecond, "down", e.ServiceDown)
		clk.At(1200*time.Millisecond, "up", e.ServiceUp)
		clk.Run()
		e.Finish()
	}
}
