package grant

// TableSnapshot is one domain's captured grant table (the owner and table
// size are immutable).
type TableSnapshot struct {
	entries []Entry
}

// Snapshot captures the table's entries.
func (t *Table) Snapshot() *TableSnapshot {
	return &TableSnapshot{entries: append([]Entry(nil), t.entries...)}
}

// Restore rewrites the table's entries from the snapshot (tables never
// resize, so this is a pure copy).
func (t *Table) Restore(s *TableSnapshot) {
	copy(t.entries, s.entries)
}

// MaptrackSnapshot captures a mapper domain's active mappings in handle
// order plus the handle counter.
type MaptrackSnapshot struct {
	handles []Handle
	maps    []Mapping
	next    Handle
}

// Snapshot captures the maptrack state.
func (m *Maptrack) Snapshot() *MaptrackSnapshot {
	s := &MaptrackSnapshot{next: m.next}
	handles := make([]Handle, 0, len(m.maps))
	for h := range m.maps {
		handles = append(handles, h)
	}
	sortHandles(handles)
	s.handles = handles
	s.maps = make([]Mapping, len(handles))
	for i, h := range handles {
		s.maps[i] = m.maps[h]
	}
	return s
}

// Restore rewinds the maptrack: mappings created after the snapshot drop
// out, snapshot mappings regain their saved handles, and the handle
// counter rewinds. The clear-then-refill loop reuses the map's buckets, so
// a steady-state restore does not allocate.
func (m *Maptrack) Restore(s *MaptrackSnapshot) {
	for h := range m.maps {
		delete(m.maps, h)
	}
	for i, h := range s.handles {
		m.maps[h] = s.maps[i]
	}
	m.next = s.next
}

// sortHandles is an insertion sort — handle sets are tiny (a few I/O ring
// slots) and this avoids pulling in sort's interface allocations.
func sortHandles(hs []Handle) {
	for i := 1; i < len(hs); i++ {
		for j := i; j > 0 && hs[j] < hs[j-1]; j-- {
			hs[j], hs[j-1] = hs[j-1], hs[j]
		}
	}
}
