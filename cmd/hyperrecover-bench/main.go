// Command hyperrecover-bench measures campaign execution throughput and
// records the result in BENCH_campaign.json, an append-only history of
// measurements (oldest first) so the full optimization trajectory is
// visible in review.
//
// The measurement is the shared fixed configuration from
// campaign.ThroughputBenchConfig (the same one BenchmarkCampaignThroughput
// uses): a 1AppVM/UnixBench failstop campaign under Microreset with all
// enhancements. Reported metrics are runs/sec (wall clock), heap
// allocations per run, and KB allocated per run.
//
// Examples:
//
//	hyperrecover-bench                      # measure, append to BENCH_campaign.json
//	hyperrecover-bench -runs 100 -dry-run   # measure only, print, no file update
//	hyperrecover-bench -cpuprofile cpu.pprof -memprofile mem.pprof -dry-run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"nilihype/internal/campaign"
)

// Measurement is one recorded benchmark result.
type Measurement struct {
	Date         string  `json:"date"`
	GoVersion    string  `json:"go_version"`
	Runs         int     `json:"runs"`
	RunsPerSec   float64 `json:"runs_per_sec"`
	AllocsPerRun int64   `json:"allocs_per_run"`
	KBPerRun     int64   `json:"kb_per_run"`
	Note         string  `json:"note,omitempty"`
}

// File is the on-disk BENCH_campaign.json schema: an append-only history
// of measurements, oldest first. The first entry is the original
// pre-optimization baseline and is preserved forever. Older copies of the
// file used separate "baseline"/"current" slots; those are folded into
// History on first rewrite.
type File struct {
	Benchmark string        `json:"benchmark"`
	Config    string        `json:"config"`
	History   []Measurement `json:"history"`

	// Legacy two-slot fields, read-only for migration.
	LegacyBaseline *Measurement `json:"baseline,omitempty"`
	LegacyCurrent  *Measurement `json:"current,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hyperrecover-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runs       = flag.Int("runs", 24, "injection runs per measurement")
		parallel   = flag.Int("parallel", 0, "concurrent runs (0 = GOMAXPROCS)")
		out        = flag.String("out", "BENCH_campaign.json", "result file to update")
		note       = flag.String("note", "", "annotation stored with the measurement")
		dryRun     = flag.Bool("dry-run", false, "measure and print without updating the file")
		coldBoot   = flag.Bool("cold-boot", false, "disable the boot-image snapshot cache")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the measurement to this file")
		memProfile = flag.String("memprofile", "", "write a post-measurement heap profile to this file")
	)
	flag.Parse()
	if *runs <= 0 {
		return fmt.Errorf("-runs must be positive")
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	m, err := measure(*runs, *parallel, *coldBoot)
	if err != nil {
		return err
	}
	m.Note = *note
	fmt.Printf("campaign-throughput: %d runs, %.2f runs/sec, %d allocs/run, %d KB/run\n",
		m.Runs, m.RunsPerSec, m.AllocsPerRun, m.KBPerRun)

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	if *dryRun {
		return nil
	}

	f := File{
		Benchmark: "campaign-throughput",
		Config:    "1AppVM/UnixBench/Failstop, Microreset+AllEnhancements, logging on, 2s virtual",
	}
	if prev, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(prev, &f); err != nil {
			return fmt.Errorf("parse existing %s: %w", *out, err)
		}
	}
	// Fold a legacy two-slot file into the history, baseline first.
	if len(f.History) == 0 {
		if f.LegacyBaseline != nil {
			f.History = append(f.History, *f.LegacyBaseline)
		}
		if f.LegacyCurrent != nil {
			f.History = append(f.History, *f.LegacyCurrent)
		}
	}
	f.LegacyBaseline, f.LegacyCurrent = nil, nil
	f.History = append(f.History, m)

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	first := f.History[0]
	fmt.Printf("updated %s (%d entries; baseline %.2f runs/sec / %d allocs/run)\n",
		*out, len(f.History), first.RunsPerSec, first.AllocsPerRun)
	return nil
}

// measure executes one fixed-configuration campaign and returns the
// throughput metrics. It mirrors BenchmarkCampaignThroughput: a GC fence
// before and after brackets the MemStats delta so the per-run numbers are
// not polluted by unrelated garbage.
func measure(runs, parallel int, coldBoot bool) (Measurement, error) {
	c := campaign.Campaign{
		Base:        campaign.ThroughputBenchConfig(),
		Runs:        runs,
		Parallelism: parallel,
		ColdBoot:    coldBoot,
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	s := c.Execute()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if s.Runs != runs {
		return Measurement{}, fmt.Errorf("campaign ran %d of %d runs", s.Runs, runs)
	}
	return Measurement{
		Date:         time.Now().UTC().Format("2006-01-02"),
		GoVersion:    runtime.Version(),
		Runs:         runs,
		RunsPerSec:   float64(runs) / elapsed.Seconds(),
		AllocsPerRun: int64(after.Mallocs-before.Mallocs) / int64(runs),
		KBPerRun:     int64(after.TotalAlloc-before.TotalAlloc) / int64(runs) / 1024,
	}, nil
}
