package campaign

import (
	"runtime"
	"testing"
	"time"
)

// throughputConfig is the fixed configuration the campaign-throughput
// benchmark and cmd/hyperrecover-bench share, so BENCH_campaign.json
// numbers are comparable across PRs.
func throughputConfig() RunConfig {
	return ThroughputBenchConfig()
}

// BenchmarkCampaignThroughput measures the end-to-end campaign hot path:
// runs/sec and allocations per run. This is the number that bounds
// campaign sizes (and therefore confidence intervals) in CI time.
func BenchmarkCampaignThroughput(b *testing.B) {
	const runs = 24
	c := Campaign{Base: throughputConfig(), Runs: runs}
	var ms1, ms2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms1)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		s := c.Execute()
		if s.Runs != runs {
			b.Fatalf("Runs = %d", s.Runs)
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()
	runtime.ReadMemStats(&ms2)
	total := float64(runs) * float64(b.N)
	b.ReportMetric(total/elapsed.Seconds(), "runs/sec")
	b.ReportMetric(float64(ms2.Mallocs-ms1.Mallocs)/total, "allocs/run")
	b.ReportMetric(float64(ms2.TotalAlloc-ms1.TotalAlloc)/total/1024, "KB/run")
}

// TestForkedRunAllocBudget guards the per-run allocation budget with the
// always-on telemetry active: metric increments and flight-recorder
// writes are array stores, so turning observability on must not add
// per-event allocations. The ceiling sits ~15% above the measured steady
// state (BENCH_campaign.json) — tight enough to catch a stray per-event
// allocation (tens of thousands of events per run), loose enough to
// ignore run-to-run variance in the simulation itself.
func TestForkedRunAllocBudget(t *testing.T) {
	rc := ThroughputBenchConfig()
	img, err := buildImage(rc)
	if err != nil {
		t.Fatalf("buildImage: %v", err)
	}
	seed := uint64(0)
	allocs := testing.AllocsPerRun(5, func() {
		seed++
		rc.Seed = seed
		img.run(rc)
	})
	// Measured steady state is ~252 allocs/run (scheduler switch records
	// dominate; everything else — guest workloads, IRQ/softirq programs,
	// undo records, Results — runs on recycled storage), rising to ~306
	// under the race detector's instrumentation. The ceiling clears both
	// with ~30% headroom; the sub-10k-allocs/run goal has more than an
	// order of magnitude of slack before this trips.
	const budget = 400
	if allocs > budget {
		t.Fatalf("forked run allocates %.0f objects, budget %d", allocs, budget)
	}
}

// BenchmarkCampaignThroughputTraffic is BenchmarkCampaignThroughput with a
// million-user open-loop population armed: the acceptance gate is that
// runs/sec stays within 10% of the traffic-off number (the timing wheel's
// one-event-per-5ms-tick batching makes the population cost ~400 events
// per run regardless of user count).
func BenchmarkCampaignThroughputTraffic(b *testing.B) {
	const runs = 24
	base := throughputConfig()
	base.Traffic.Users = 1_000_000
	c := Campaign{Base: base, Runs: runs}
	var ms1, ms2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms1)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		s := c.Execute()
		if s.SLORuns != runs {
			b.Fatalf("SLORuns = %d", s.SLORuns)
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()
	runtime.ReadMemStats(&ms2)
	total := float64(runs) * float64(b.N)
	b.ReportMetric(total/elapsed.Seconds(), "runs/sec")
	b.ReportMetric(float64(ms2.Mallocs-ms1.Mallocs)/total, "allocs/run")
	b.ReportMetric(float64(ms2.TotalAlloc-ms1.TotalAlloc)/total/1024, "KB/run")
}

// BenchmarkGuestReseed measures the per-run guest re-arm path in isolation:
// snapshot restore, RNG rewind, and re-seeding every AppVM's workload state
// (file stores, process tables, scratch). This is the path the guest pools
// exist for — allocs/op is the regression signal.
func BenchmarkGuestReseed(b *testing.B) {
	rc := throughputConfig()
	img, err := buildImage(rc)
	if err != nil {
		b.Fatalf("buildImage: %v", err)
	}
	world, h := img.world, img.h
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Restore(img.snap)
		world.Restore(img.wsnap)
		h.ReseedRun(uint64(i + 1))
		world.Reseed(uint64(i+1) ^ 0x5eed)
		for _, cfg := range img.appCfgs {
			world.SeedAppVM(cfg.Dom)
		}
	}
}

// BenchmarkResultRecycle measures the executor-shaped consumption loop:
// forked runs whose Result records are recycled through the image scratch
// and aggregated in place, exactly as Campaign.Execute's workers do.
// allocs/op is the whole per-run budget (TestForkedRunAllocBudget enforces
// the ceiling; this reports the trend).
func BenchmarkResultRecycle(b *testing.B) {
	rc := throughputConfig()
	img, err := buildImage(rc)
	if err != nil {
		b.Fatalf("buildImage: %v", err)
	}
	s := Summary{FailReasons: make(map[string]int), SuccessByAttempt: make(map[int]int)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rc.Seed = uint64(i + 1)
		r := img.run(rc)
		s.add(r)
	}
	if int(s.Runs)+s.NonManifested+s.SDCCount+s.DetectedCount == 0 && b.N > 0 {
		b.Fatal("no outcomes aggregated")
	}
}

// BenchmarkSingleRun measures one fault-injection run in isolation
// (no executor involvement): the per-run floor the executor builds on.
func BenchmarkSingleRun(b *testing.B) {
	rc := throughputConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rc.Seed = uint64(i + 1)
		r := Run(rc)
		if r.Outcome == 0 {
			b.Fatal("no outcome")
		}
	}
}
