package hw

import (
	"testing"
	"time"
)

func routeAll(m *Machine) {
	m.IOAPIC().Route(IRQBlock, 0, VecBlock)
	m.IOAPIC().Route(IRQNIC, 0, VecNIC)
}

func TestIOAPICDelivery(t *testing.T) {
	m, _, sink := newTestMachine(t)
	m.IOAPIC().Route(IRQBlock, 2, VecBlock)
	m.IOAPIC().Raise(IRQBlock)
	if len(sink.delivered) != 1 || sink.delivered[0].cpu != 2 || sink.delivered[0].vec != VecBlock {
		t.Fatalf("delivered = %v", sink.delivered)
	}
	if !m.IOAPIC().InService(IRQBlock) {
		t.Fatal("line not in service after delivery")
	}
}

func TestIOAPICMaskedLineDropsInterrupt(t *testing.T) {
	m, _, sink := newTestMachine(t)
	m.IOAPIC().Route(IRQBlock, 0, VecBlock)
	m.IOAPIC().Mask(IRQBlock)
	m.IOAPIC().Raise(IRQBlock)
	if len(sink.delivered) != 0 {
		t.Fatal("masked line delivered an interrupt")
	}
}

func TestIOAPICInServiceBlocksRedelivery(t *testing.T) {
	m, _, sink := newTestMachine(t)
	m.IOAPIC().Route(IRQBlock, 0, VecBlock)
	m.IOAPIC().Raise(IRQBlock)
	m.IOAPIC().Raise(IRQBlock) // latched pending, not delivered
	if len(sink.delivered) != 1 {
		t.Fatalf("delivered %d, want 1 while in service", len(sink.delivered))
	}
	m.IOAPIC().EOI(IRQBlock)
	if len(sink.delivered) != 2 {
		t.Fatalf("delivered %d after EOI, want 2 (latched assertion)", len(sink.delivered))
	}
}

func TestIOAPICMissingEOISilencesDevice(t *testing.T) {
	// This is the mechanistic basis for the recovery requirement to
	// acknowledge in-service interrupts: without EOI the line stays
	// blocked forever.
	m, _, sink := newTestMachine(t)
	m.IOAPIC().Route(IRQNIC, 1, VecNIC)
	m.IOAPIC().Raise(IRQNIC)
	for i := 0; i < 5; i++ {
		m.IOAPIC().Raise(IRQNIC)
	}
	if len(sink.delivered) != 1 {
		t.Fatalf("delivered %d, want 1 (no EOI)", len(sink.delivered))
	}
	m.IOAPIC().AckAll()
	if m.IOAPIC().InService(IRQNIC) {
		t.Fatal("AckAll left line in service")
	}
	m.IOAPIC().Raise(IRQNIC)
	if len(sink.delivered) != 2 {
		t.Fatal("line still blocked after AckAll")
	}
}

func TestIOAPICLineFor(t *testing.T) {
	m, _, _ := newTestMachine(t)
	routeAll(m)
	if got := m.IOAPIC().LineFor(VecNIC); got != IRQNIC {
		t.Fatalf("LineFor(VecNIC) = %v, want IRQNIC", got)
	}
	if got := m.IOAPIC().LineFor(VecIPI); got != -1 {
		t.Fatalf("LineFor(VecIPI) = %v, want -1", got)
	}
}

func TestIOAPICRedirWriteCounting(t *testing.T) {
	m, _, _ := newTestMachine(t)
	before := m.IOAPIC().RedirWrites
	m.IOAPIC().Route(IRQBlock, 0, VecBlock)
	m.IOAPIC().Mask(IRQBlock)
	if m.IOAPIC().RedirWrites != before+2 {
		t.Fatalf("RedirWrites = %d, want %d", m.IOAPIC().RedirWrites, before+2)
	}
}

func TestBlockDeviceCompletion(t *testing.T) {
	m, clk, sink := newTestMachine(t)
	routeAll(m)
	m.Block().Submit(BlockRequest{Owner: 1, Sectors: 8, Cookie: 42})
	clk.Run()
	if len(sink.delivered) != 1 || sink.delivered[0].vec != VecBlock {
		t.Fatalf("delivered = %v, want one VecBlock", sink.delivered)
	}
	comps := m.Block().DrainCompletions()
	if len(comps) != 1 || comps[0].Req.Cookie != 42 || !comps[0].OK {
		t.Fatalf("completions = %v", comps)
	}
	if m.Block().DrainCompletions() != nil {
		t.Fatal("DrainCompletions not cleared")
	}
}

func TestBlockDeviceFIFOAndTiming(t *testing.T) {
	m, clk, _ := newTestMachine(t)
	routeAll(m)
	var doneAt []time.Duration
	for i := 0; i < 3; i++ {
		m.Block().Submit(BlockRequest{Owner: 1, Sectors: 0, Cookie: uint64(i)})
	}
	// Service time is 100µs each, sequential.
	for i := 1; i <= 3; i++ {
		clk.RunUntil(time.Duration(i) * 100 * time.Microsecond)
		doneAt = append(doneAt, clk.Now())
	}
	clk.Run()
	if m.Block().Completed != 3 {
		t.Fatalf("Completed = %d, want 3", m.Block().Completed)
	}
	if m.Block().QueueDepth() != 0 {
		t.Fatalf("QueueDepth = %d, want 0", m.Block().QueueDepth())
	}
	if m.Block().Submitted != 3 {
		t.Fatalf("Submitted = %d, want 3", m.Block().Submitted)
	}
}

func TestBlockDeviceSectorScaling(t *testing.T) {
	m, clk, _ := newTestMachine(t)
	routeAll(m)
	m.Block().Submit(BlockRequest{Owner: 1, Sectors: 100})
	clk.Run()
	want := 100*time.Microsecond + 100*500*time.Nanosecond
	if clk.Now() != want {
		t.Fatalf("completion at %v, want %v", clk.Now(), want)
	}
}

func TestNICInjectRaisesIRQAfterLatency(t *testing.T) {
	m, clk, sink := newTestMachine(t)
	routeAll(m)
	m.NIC().Inject(Packet{Flow: 1, Seq: 7, SentAt: 0})
	clk.Run()
	if clk.Now() != 10*time.Microsecond {
		t.Fatalf("RX at %v, want 10µs", clk.Now())
	}
	if len(sink.delivered) != 1 || sink.delivered[0].vec != VecNIC {
		t.Fatalf("delivered = %v", sink.delivered)
	}
	rx := m.NIC().DrainRx()
	if len(rx) != 1 || rx[0].Seq != 7 {
		t.Fatalf("rx = %v", rx)
	}
	if m.NIC().RxDepth() != 0 {
		t.Fatal("RX ring not drained")
	}
}

func TestNICTransmitReachesSink(t *testing.T) {
	m, clk, _ := newTestMachine(t)
	var got []Packet
	m.NIC().SetTxSink(func(p Packet) { got = append(got, p) })
	m.NIC().Transmit(Packet{Flow: 2, Seq: 9})
	clk.Run()
	if len(got) != 1 || got[0].Seq != 9 {
		t.Fatalf("tx sink got %v", got)
	}
	if m.NIC().TxCount != 1 {
		t.Fatalf("TxCount = %d", m.NIC().TxCount)
	}
}

func TestNICTransmitWithoutSinkIsDropped(t *testing.T) {
	m, clk, _ := newTestMachine(t)
	m.NIC().Transmit(Packet{Flow: 1})
	clk.Run() // must not panic
}
