package campaign

import (
	"errors"
	"fmt"
	"time"

	"nilihype/internal/core"
	"nilihype/internal/detect"
	"nilihype/internal/guest"
	"nilihype/internal/hv"
	"nilihype/internal/inject"
	"nilihype/internal/prng"
)

// LatencyResult is one recovery-latency measurement (Tables II/III and the
// §VII-B NetBench service-interruption measurement).
type LatencyResult struct {
	Mechanism core.Mechanism
	MemoryMB  int

	// Total is the modeled recovery latency.
	Total time.Duration
	// Breakdown itemizes it (Table II for ReHype, Table III for
	// NiLiHype).
	Breakdown []core.LatencyStep
	// ServiceInterruption is the outage observed by the NetBench sender
	// on the separate host (recovery latency plus up to one send
	// period).
	ServiceInterruption time.Duration
	// FormattedBreakdown is the Table II/III-style rendering.
	FormattedBreakdown string
}

// MeasureLatency runs the §VII-B experiment: NetBench in the 1AppVM setup
// on a machine with the given memory size, one fail-stop fault, recovery
// with the given mechanism, and the service interruption measured at the
// sender. The paper's configuration is 8192 MB.
func MeasureLatency(mech core.Mechanism, memoryMB int, seed uint64) (LatencyResult, error) {
	return MeasureLatencyCfg(core.Config{Mechanism: mech, Enhancements: core.AllEnhancements}, memoryMB, seed)
}

// ErrLatencyRunFailed marks a latency run whose recovery did not succeed;
// MeasureLatencyCfg retries such runs with the next seed.
var ErrLatencyRunFailed = errors.New("campaign: latency run did not recover")

// measureLatencyAttempts caps the seed-bumping retry of MeasureLatencyCfg.
const measureLatencyAttempts = 8

// MeasureLatencyCfg is MeasureLatency with a full recovery configuration
// (e.g. a parallelized page-frame scan via Config.ScanCPUs). A run whose
// recovery fails (the fault drew an unrecoverable effect for this seed) is
// retried with the next seed, up to measureLatencyAttempts seeds, so the
// measurement is of a successful recovery — the paper measures successful
// recoveries. Setup and boot errors are returned immediately; if no seed
// yields a successful recovery the last run's failure is returned.
func MeasureLatencyCfg(cfg core.Config, memoryMB int, seed uint64) (LatencyResult, error) {
	var lastErr error
	for i := uint64(0); i < measureLatencyAttempts; i++ {
		res, err := measureLatencyOnce(cfg, memoryMB, seed+i)
		if err == nil {
			return res, nil
		}
		if !errors.Is(err, ErrLatencyRunFailed) {
			return res, err
		}
		lastErr = err
	}
	return LatencyResult{Mechanism: cfg.Mechanism, MemoryMB: memoryMB},
		fmt.Errorf("campaign: no successful recovery in %d seeds starting at %d: %w",
			measureLatencyAttempts, seed, lastErr)
}

// measureLatencyOnce performs a single latency run with one seed.
func measureLatencyOnce(cfg core.Config, memoryMB int, seed uint64) (LatencyResult, error) {
	res := LatencyResult{Mechanism: cfg.Mechanism, MemoryMB: memoryMB}
	clk, h, err := bootHypervisor(hvConfig(seed, memoryMB, true, true, 0))
	if err != nil {
		return res, fmt.Errorf("campaign: latency %w", err)
	}
	h.SetSchedFluxProb(hv.DefaultSchedFluxProb)
	world := guest.NewWorld(h, seed^0x5eed)
	world.StartPrivVM()

	const benchDuration = 4 * time.Second
	vm, err := world.AddAppVM(guest.Config{
		Kind: guest.NetBench, Dom: unixDom, CPU: unixCPU, Duration: benchDuration,
	})
	if err != nil {
		return res, fmt.Errorf("campaign: latency vm: %w", err)
	}
	if cfg.Enhancements == 0 {
		cfg.Enhancements = core.AllEnhancements
	}
	engine := core.NewEngine(h, cfg)
	det := detect.New(h, engine.OnDetection)
	engine.Det = det
	det.Start()

	vm.Start()
	world.Sender.Start(unixDom, benchDuration)

	// One fail-stop fault mid-run; the caller retries failed recoveries
	// with fresh seeds.
	injector := inject.New(h, world, prng.New(seed, 0xfa17), inject.Params{
		Type:     inject.Failstop,
		WindowLo: time.Second,
		WindowHi: 2 * time.Second,
	})
	injector.Schedule()

	clk.RunUntil(benchDuration + 2*time.Second)

	if engine.Status() != core.StatusRecovered {
		return res, fmt.Errorf("%w (seed %d): %s", ErrLatencyRunFailed, seed, engine.FailReason)
	}
	res.Total = engine.Latency
	res.Breakdown = engine.Breakdown
	res.FormattedBreakdown = engine.FormatBreakdown()
	res.ServiceInterruption = world.Sender.ServiceInterruption()
	return res, nil
}

// SweepLatency measures recovery latency across memory sizes,
// demonstrating the §VII-B scaling of the page-frame scan.
func SweepLatency(mech core.Mechanism, memoryMBs []int, seed uint64) ([]LatencyResult, error) {
	var out []LatencyResult
	for _, mb := range memoryMBs {
		r, err := MeasureLatency(mech, mb, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
