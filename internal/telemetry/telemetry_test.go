package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"
	"time"
)

func newTestTel(capacity int) (*Telemetry, *time.Duration) {
	now := new(time.Duration)
	return New(capacity, func() time.Duration { return *now }), now
}

// --- histogram bucketing -----------------------------------------------------

func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 29, 30}, {1<<30 - 1, 30},
		{1 << 30, 31},                    // first overflow-bucket value
		{1 << 40, 31},                    // deep overflow
		{math.MaxUint64, OverflowBucket}, // widest possible value
	}
	for _, c := range cases {
		if got := BucketIndex(c.v); got != c.want {
			t.Errorf("BucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every boundary pair must straddle: upper bound of bucket i is one
	// less than the smallest value of bucket i+1.
	for i := 1; i < OverflowBucket-1; i++ {
		ub := BucketUpperBound(i)
		if BucketIndex(ub) != i {
			t.Errorf("upper bound %d of bucket %d lands in bucket %d", ub, i, BucketIndex(ub))
		}
		if BucketIndex(ub+1) != i+1 {
			t.Errorf("value %d should land in bucket %d, got %d", ub+1, i+1, BucketIndex(ub+1))
		}
	}
}

func TestHistObserveAndOverflow(t *testing.T) {
	var h Hist
	h.Observe(0)
	h.Observe(1)
	h.Observe(1 << 35) // overflow bucket
	h.Observe(math.MaxUint64)
	if h.Count != 4 {
		t.Fatalf("Count = %d, want 4", h.Count)
	}
	if h.Buckets[0] != 1 || h.Buckets[1] != 1 || h.Buckets[OverflowBucket] != 2 {
		t.Fatalf("bucket distribution wrong: %v", h.Buckets)
	}
	if h.Max != math.MaxUint64 {
		t.Fatalf("Max = %d", h.Max)
	}
	var total uint64
	for _, b := range h.Buckets {
		total += b
	}
	if total != h.Count {
		t.Fatalf("buckets sum to %d, Count is %d — an observation was lost", total, h.Count)
	}
}

func TestHistQuantile(t *testing.T) {
	var h Hist
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("p100 = %d, want exact max 100", got)
	}
	// p50 of 1..100 is rank 50 → value 50, bucket upper bound 63.
	if got := h.Quantile(0.5); got != 63 {
		t.Errorf("p50 = %d, want bucket upper bound 63", got)
	}
	var empty Hist
	if empty.Quantile(0.99) != 0 {
		t.Errorf("quantile of empty hist should be 0")
	}
	var one Hist
	one.Observe(7)
	if got := one.Quantile(0.5); got != 7 {
		t.Errorf("single-observation p50 = %d, want 7 (capped at Max)", got)
	}
}

// TestHistMergeAssociativity is the satellite requirement: merging shards
// in any order (and any grouping) must produce bit-identical histograms.
func TestHistMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	shards := make([]Hist, 8)
	for i := range shards {
		for j := 0; j < 1000; j++ {
			shards[i].Observe(rng.Uint64() >> uint(rng.IntN(64)))
		}
	}

	mergeOrder := func(order []int) Hist {
		var out Hist
		for _, i := range order {
			out.Merge(&shards[i])
		}
		return out
	}
	forward := mergeOrder([]int{0, 1, 2, 3, 4, 5, 6, 7})
	backward := mergeOrder([]int{7, 6, 5, 4, 3, 2, 1, 0})
	shuffled := mergeOrder([]int{3, 0, 7, 1, 5, 2, 6, 4})

	// Grouped: ((0+1)+(2+3)) + ((4+5)+(6+7)) — tests associativity, not
	// just commutativity.
	var left, right Hist
	for i := 0; i < 4; i++ {
		left.Merge(&shards[i])
	}
	for i := 4; i < 8; i++ {
		right.Merge(&shards[i])
	}
	grouped := left
	grouped.Merge(&right)

	for name, got := range map[string]Hist{"backward": backward, "shuffled": shuffled, "grouped": grouped} {
		if got != forward {
			t.Errorf("%s merge order differs from forward: %+v vs %+v", name, got, forward)
		}
	}
}

// --- flight recorder ---------------------------------------------------------

func TestHistQuantileEmpty(t *testing.T) {
	var h Hist
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	if h.Mean() != 0 {
		t.Errorf("empty Mean = %v, want 0", h.Mean())
	}
}

func TestHistMergeEmptyOperand(t *testing.T) {
	var h Hist
	for _, v := range []uint64{3, 17, 1024} {
		h.Observe(v)
	}
	want := h

	var empty Hist
	h.Merge(&empty)
	if !reflect.DeepEqual(h, want) {
		t.Errorf("merging an empty operand changed the histogram:\n%+v\nvs\n%+v", h, want)
	}

	// Merging INTO an empty histogram must reproduce the operand exactly.
	var into Hist
	into.Merge(&want)
	if !reflect.DeepEqual(into, want) {
		t.Errorf("merge into empty diverged:\n%+v\nvs\n%+v", into, want)
	}
}

func TestHistSingleBucketDistribution(t *testing.T) {
	// All mass in one bucket: every quantile resolves to that bucket,
	// capped at the exact Max.
	var h Hist
	h.ObserveN(100, 7) // bucket for 100 spans [64, 127]
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 100 {
			t.Errorf("single-bucket Quantile(%v) = %d, want 100 (capped at Max)", q, got)
		}
	}
	if h.Mean() != 100 {
		t.Errorf("single-bucket Mean = %v, want 100", h.Mean())
	}

	// The zero bucket is its own single-bucket case: value 0 lands in
	// bucket 0 and every quantile is 0.
	var z Hist
	z.ObserveN(0, 5)
	if z.Count != 5 || z.Buckets[0] != 5 {
		t.Fatalf("zero observations landed wrong: %+v", z)
	}
	if got := z.Quantile(0.99); got != 0 {
		t.Errorf("all-zero Quantile(0.99) = %d, want 0", got)
	}
}

func TestRingKeepsMostRecent(t *testing.T) {
	tel, now := newTestTel(16)
	for i := 0; i < 40; i++ {
		*now = time.Duration(i) * time.Millisecond
		tel.Record(0, EvDispatch, uint64(i))
	}
	if tel.Flight.Len() != 16 {
		t.Fatalf("Len = %d, want 16", tel.Flight.Len())
	}
	if tel.Flight.Total() != 40 {
		t.Fatalf("Total = %d, want 40", tel.Flight.Total())
	}
	events := tel.Flight.Events()
	for i, e := range events {
		want := uint64(24 + i) // events 24..39 retained, oldest first
		if e.Arg != want {
			t.Fatalf("event %d has arg %d, want %d", i, e.Arg, want)
		}
	}
	tail := tel.Flight.Tail(nil, 3)
	if len(tail) != 3 || tail[0].Arg != 37 || tail[2].Arg != 39 {
		t.Fatalf("Tail(3) = %+v", tail)
	}
}

func TestRecordIsAllocationFree(t *testing.T) {
	tel, _ := newTestTel(64)
	tel.Intern("warm") // warm the intern path's map
	allocs := testing.AllocsPerRun(1000, func() {
		tel.Inc(CtrDispatches)
		tel.Record(3, EvDispatch, 5)
		tel.Observe(HistProgramSteps, 9)
		tel.Intern("warm")
	})
	if allocs != 0 {
		t.Fatalf("hot-path telemetry allocates %.1f per op, want 0", allocs)
	}
}

func TestNilTelemetryIsSafe(t *testing.T) {
	var tel *Telemetry
	tel.Inc(CtrPanics)
	tel.Add(CtrPanics, 3)
	tel.SetGauge(GaugeHeldLocks, 1)
	tel.Observe(HistProgramSteps, 1)
	tel.Record(0, EvPanic, 0)
	tel.RecordAt(time.Second, 0, EvPanic, 0)
	if tel.Intern("x") != 0 || tel.Str(0) != "" {
		t.Fatal("nil telemetry interning should be inert")
	}
	if tel.FlightTail(5) != nil {
		t.Fatal("nil telemetry tail should be nil")
	}
}

// --- snapshot / restore ------------------------------------------------------

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	tel, now := newTestTel(16)
	bootID := tel.Intern("boot-reason")
	tel.Inc(CtrDispatches)
	tel.Observe(HistProgramSteps, 12)
	*now = time.Millisecond
	tel.Record(0, EvDispatch, 1)
	snap := tel.Snapshot()

	// Run-phase mutations: counters, new interned strings, ring churn.
	for i := 0; i < 50; i++ {
		tel.Inc(CtrPanics)
		*now += time.Millisecond
		tel.Record(1, EvPanic, tel.Intern("late-reason"))
	}
	tel.SetGauge(GaugeHeldLocks, 9)
	tel.Observe(HistAttemptLatencyUs, 22000)

	tel.Restore(snap)

	if tel.Counters[CtrPanics] != 0 || tel.Counters[CtrDispatches] != 1 {
		t.Fatalf("counters not restored: %v", tel.Counters[:4])
	}
	if tel.Gauges[GaugeHeldLocks] != 0 {
		t.Fatal("gauge not restored")
	}
	if tel.Hists[HistAttemptLatencyUs].Count != 0 {
		t.Fatal("histogram not restored")
	}
	if tel.Flight.Total() != 1 || tel.Flight.Len() != 1 {
		t.Fatalf("ring not restored: total=%d len=%d", tel.Flight.Total(), tel.Flight.Len())
	}
	if tel.Str(bootID) != "boot-reason" {
		t.Fatal("boot-time intern lost")
	}
	// The run-phase intern must be forgotten so the next run assigns the
	// same ID a cold boot would.
	if id := tel.Intern("late-reason"); id != bootID+1 {
		t.Fatalf("post-restore intern ID = %d, want %d (table not truncated)", id, bootID+1)
	}
}

func TestRestoreIsAllocationFree(t *testing.T) {
	tel, now := newTestTel(32)
	tel.Intern("boot")
	snap := tel.Snapshot()
	// Prime steady state: one run's worth of mutation + restore so the
	// intern slice regains capacity.
	tel.Intern("run-string")
	tel.Restore(snap)
	allocs := testing.AllocsPerRun(100, func() {
		tel.Inc(CtrDispatches)
		*now += time.Millisecond
		tel.Record(0, EvDispatch, 1)
		tel.Intern("run-string")
		tel.Restore(snap)
	})
	if allocs != 0 {
		t.Fatalf("Restore allocates %.1f per run, want 0", allocs)
	}
}

func TestForkedRunsAreBitIdentical(t *testing.T) {
	run := func(tel *Telemetry, now *time.Duration) {
		for i := 0; i < 100; i++ {
			*now += time.Millisecond
			tel.Inc(CtrDispatches)
			tel.Record(i%4, EvDispatch, uint64(i%13))
			tel.Observe(HistProgramSteps, uint64(i%7))
		}
		tel.Record(0, EvPanic, tel.Intern("panic: injected"))
	}
	tel, now := newTestTel(64)
	tel.Intern("boot")
	base := *now
	snap := tel.Snapshot()

	run(tel, now)
	first := tel.Snapshot()

	tel.Restore(snap)
	*now = base
	run(tel, now)
	second := tel.Snapshot()

	if !reflect.DeepEqual(first, second) {
		t.Fatal("two forked runs of the same workload diverged")
	}
}

// --- interning ---------------------------------------------------------------

func TestInternStability(t *testing.T) {
	tel, _ := newTestTel(16)
	a := tel.Intern("alpha")
	b := tel.Intern("beta")
	if a == 0 || b == 0 || a == b {
		t.Fatalf("bad IDs: %d %d (0 is reserved)", a, b)
	}
	if tel.Intern("alpha") != a {
		t.Fatal("re-interning must return the same ID")
	}
	if tel.Str(a) != "alpha" || tel.Str(999) != "" {
		t.Fatal("Str lookup broken")
	}
}

// --- export ------------------------------------------------------------------

func TestChromeTraceIsValidJSON(t *testing.T) {
	tel, now := newTestTel(64)
	*now = 5 * time.Millisecond
	tel.Record(1, EvInject, tel.Intern("reg-flip rax"))
	*now = 6 * time.Millisecond
	tel.Record(1, EvDetect, tel.Intern("panic: bad pointer"))
	tel.RecordAt(6*time.Millisecond, 1, EvAttemptBegin, tel.Intern("microreset"))
	tel.RecordAt(6*time.Millisecond, 1, EvPhase, PhaseArg(tel.Intern("pf-scan"), 2*time.Millisecond))
	tel.RecordAt(8*time.Millisecond, 1, EvPhase, PhaseArg(tel.Intern("unlock"), time.Millisecond))
	*now = 9 * time.Millisecond
	tel.Record(1, EvRecovered, 1)

	var buf bytes.Buffer
	if err := tel.WriteChromeTrace(&buf, 4); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	var sawInject, sawDetect, sawPhaseSpan bool
	for _, e := range doc.TraceEvents {
		name, _ := e["name"].(string)
		switch {
		case strings.HasPrefix(name, "inject:"):
			sawInject = true
		case strings.HasPrefix(name, "detect:"):
			sawDetect = true
		case e["ph"] == "X" && name == "pf-scan":
			sawPhaseSpan = true
			if e["dur"].(float64) != 2000 {
				t.Errorf("pf-scan span dur = %v µs, want 2000", e["dur"])
			}
		}
	}
	if !sawInject || !sawDetect || !sawPhaseSpan {
		t.Fatalf("trace missing markers: inject=%v detect=%v span=%v", sawInject, sawDetect, sawPhaseSpan)
	}
}

func TestTextTimelineAndMetrics(t *testing.T) {
	tel, now := newTestTel(16)
	*now = time.Millisecond
	tel.Record(2, EvSpin, tel.Intern("page_alloc_lock"))
	tel.Inc(CtrSpins)
	tel.Observe(HistProgramSteps, 5)
	tel.SetGauge(GaugeHeldLocks, 2)

	var tl bytes.Buffer
	if err := tel.WriteTextTimeline(&tl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tl.String(), "page_alloc_lock") || !strings.Contains(tl.String(), "spin") {
		t.Fatalf("timeline missing spin event: %q", tl.String())
	}

	var m bytes.Buffer
	if err := tel.WriteMetrics(&m); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hv.spins 1", "lock.held 2", "hv.program_steps count=1"} {
		if !strings.Contains(m.String(), want) {
			t.Errorf("metrics dump missing %q:\n%s", want, m.String())
		}
	}
}

func TestPhaseArgRoundTrip(t *testing.T) {
	id := uint64(77)
	for _, d := range []time.Duration{0, time.Microsecond, 22 * time.Millisecond, 713 * time.Millisecond, time.Hour} {
		gotID, gotD := UnpackPhaseArg(PhaseArg(id, d))
		if gotID != id || gotD != d.Truncate(time.Microsecond) {
			t.Errorf("PhaseArg(%d, %v) round-trips to (%d, %v)", id, d, gotID, gotD)
		}
	}
}

func TestCounterAndGaugeNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Counter(0); c < Counter(NumCounters); c++ {
		n := c.Name()
		if n == "" || seen[n] {
			t.Errorf("counter %d has empty or duplicate name %q", c, n)
		}
		seen[n] = true
	}
	if CtrOp(3) == CtrOp(4) {
		t.Fatal("op counters must be distinct slots")
	}
}
