package guest

import (
	"fmt"
	"math/rand/v2"
	"time"

	"nilihype/internal/hw"
	"nilihype/internal/hypercall"
)

// AppVM is one application VM running a benchmark workload.
type AppVM struct {
	W   *World
	Cfg Config

	// OpsCompleted counts finished benchmark operations (file ops for
	// BlkBench, iterations for UnixBench, replies for NetBench).
	OpsCompleted int
	// OpsAfterMark counts operations since the last ResetProgressMark
	// (the campaign marks at recovery to verify post-recovery progress).
	OpsAfterMark int

	// Started/Finished bracket the benchmark run.
	Started  bool
	Finished bool

	// OutputCorrupted models failed golden-copy comparison (SDC).
	OutputCorrupted bool

	// Files is BlkBench's file model with its golden-copy comparison.
	Files *FileStore

	rng      *rand.Rand
	finishAt time.Duration
	procs    procTable // UnixBench process lifecycle (pins page tables)
	nextRef  int       // grant ref allocator
	inFlight map[int]int
	reserved int // outstanding memory_op populate pages

	// iterFn/runFn are the iterate entry points cached as method values
	// (set in Start): taking vm.iterate fresh at every reschedule would
	// allocate a closure per benchmark iteration.
	iterFn func()
	runFn  func()
	// pinScratch is reused across iterations for the fork batch's frame
	// exclusion list (never retained past the iteration).
	pinScratch []int
	// gotScratch is reused across HVM iterations for the frames that
	// actually mapped (copied into the forked process's record).
	gotScratch []int
}

// Start launches the benchmark: it runs for Cfg.Duration of virtual time.
func (vm *AppVM) Start() {
	if vm.Started {
		return
	}
	vm.Started = true
	if vm.inFlight == nil {
		vm.inFlight = make(map[int]int)
	}
	vm.finishAt = vm.W.H.Clock.Now() + vm.Cfg.Duration
	if vm.iterFn == nil {
		vm.iterFn = vm.iterate
		vm.runFn = vm.runIteration
	}
	if vm.Cfg.Kind != NetBench {
		vm.scheduleNext()
		return
	}
	// NetBench is purely reactive (the external sender drives it); it
	// finishes by the clock.
	vm.W.H.Clock.After(vm.Cfg.Duration+10*time.Millisecond, "netbench-finish", func() {
		vm.W.H.WhenRunnable(func() {
			if d, err := vm.W.H.Domain(vm.Cfg.Dom); err == nil && !d.Failed {
				vm.Finished = true
			}
		})
	})
}

// Running reports whether the benchmark is between Start and Finish.
func (vm *AppVM) Running() bool { return vm.Started && !vm.Finished }

// ResetProgressMark zeroes the post-mark progress counter.
func (vm *AppVM) ResetProgressMark() { vm.OpsAfterMark = 0 }

// Verdict evaluates the benchmark against the paper's failure criteria
// (§VI-A): golden-output mismatch, guest-visible failures (domain
// failed), or lack of progress.
func (vm *AppVM) Verdict() (ok bool, reason string) {
	d, err := vm.W.H.Domain(vm.Cfg.Dom)
	switch {
	case err != nil:
		return false, "domain destroyed"
	case d.Failed:
		return false, "guest failed: " + d.FailReason
	case vm.OutputCorrupted:
		return false, "output differs from golden copy"
	case vm.Files != nil && len(vm.Files.CompareGolden()) > 0:
		return false, fmt.Sprintf("output differs from golden copy (%d files)", len(vm.Files.CompareGolden()))
	case !vm.Finished:
		return false, "benchmark did not complete"
	case vm.OpsCompleted < vm.minOps():
		return false, "insufficient progress (starved)"
	default:
		return true, ""
	}
}

// minOps is the progress floor: well under the ideal count (pauses and
// scheduling jitter are normal) but high enough that a stalled VM fails.
func (vm *AppVM) minOps() int {
	ideal := int(vm.Cfg.Duration / vm.Cfg.IterPeriod)
	return ideal / 3
}

func (vm *AppVM) scheduleNext() {
	jitter := time.Duration(vm.rng.Int64N(int64(vm.Cfg.IterPeriod) / 4))
	vm.W.H.Clock.After(vm.Cfg.IterPeriod+jitter, vm.Cfg.Kind.String(), vm.iterFn)
}

// iterate runs one benchmark iteration (deferred across recovery pauses).
func (vm *AppVM) iterate() {
	h := vm.W.H
	if failed, _ := h.Failed(); failed {
		return
	}
	h.WhenRunnable(vm.runFn)
}

// runIteration is the body of one iteration, entered once the hypervisor
// is runnable (cached as vm.runFn).
func (vm *AppVM) runIteration() {
	if vm.Finished {
		return
	}
	if vm.W.H.Clock.Now() >= vm.finishAt {
		vm.finish()
		return
	}
	d, err := vm.W.H.Domain(vm.Cfg.Dom)
	if err != nil || d.Failed {
		return // guest dead; no more activity
	}
	switch {
	case vm.Cfg.Kind == BlkBench:
		vm.blkIteration()
	case vm.Cfg.HVM:
		vm.hvmUnixIteration()
	default:
		vm.unixIteration()
	}
	vm.scheduleNext()
}

// finish completes the benchmark if all I/O drained; otherwise it waits a
// little longer for in-flight operations.
func (vm *AppVM) finish() {
	if len(vm.inFlight) > 0 {
		vm.W.H.Clock.After(5*time.Millisecond, "drain", vm.iterFn)
		vm.finishAt = vm.W.H.Clock.Now() // don't start new work
		return
	}
	vm.Finished = true
}

// --- BlkBench ---------------------------------------------------------------

// blkIteration models one file operation: grant the I/O buffers to the
// backend, notify it over an event channel, and submit the disk request
// (1 MB => 2048 sectors; caching in the AppVM is off, so the device is
// always touched). Completion arrives as a block-device interrupt.
func (vm *AppVM) blkIteration() {
	cpu, domID := vm.Cfg.CPU, vm.Cfg.Dom
	frame := vm.pickGuestFrame()
	ref := vm.grantBuffer(frame)
	if ref < 0 {
		return
	}
	vm.W.call(cpu, hypercall.OpGrantTableOp, domID,
		[4]uint64{hypercall.GrantMap, uint64(ref), uint64(frame)})
	vm.W.call(cpu, hypercall.OpEventChannelOp, domID,
		[4]uint64{0, 0, uint64(vm.ringPort())})
	if vm.gone() {
		return
	}
	vm.inFlight[ref] = frame
	vm.W.H.Machine.Block().Submit(hw.BlockRequest{
		Owner:   domID,
		Sectors: 2048,
		Write:   vm.rng.IntN(2) == 0,
		Cookie:  uint64(ref),
	})
}

// onBlockComplete finishes one outstanding file operation: unmap the
// grant and count the op.
func (vm *AppVM) onBlockComplete() {
	if len(vm.inFlight) == 0 || vm.gone() {
		return
	}
	// Complete the oldest outstanding ref (FIFO device).
	ref := -1
	for r := range vm.inFlight {
		if ref < 0 || r < ref {
			ref = r
		}
	}
	frame := vm.inFlight[ref]
	delete(vm.inFlight, ref)
	vm.W.call(vm.Cfg.CPU, hypercall.OpGrantTableOp, vm.Cfg.Dom,
		[4]uint64{hypercall.GrantUnmap, uint64(ref), uint64(frame)})
	vm.revokeBuffer(ref)
	if vm.Files != nil {
		id := vm.Files.WriteNext()
		// The remove phase: keep a bounded working set of files.
		if vm.Files.Len() > 24 {
			vm.Files.Remove(id - 24)
		}
	}
	vm.OpsCompleted++
	vm.OpsAfterMark++
}

// grantBuffer publishes frame through a free grant reference (a
// guest-side write to the domain's own grant table) and returns the ref,
// or -1 if the domain is gone or the table is full.
func (vm *AppVM) grantBuffer(frame int) int {
	d, err := vm.W.H.Domain(vm.Cfg.Dom)
	if err != nil {
		return -1
	}
	for tries := 0; tries < d.GrantTab.Len(); tries++ {
		ref := vm.nextRef % d.GrantTab.Len()
		vm.nextRef++
		if e, err := d.GrantTab.Entry(ref); err == nil && !e.InUse {
			if d.GrantTab.Grant(ref, frame, false) == nil {
				return ref
			}
		}
	}
	return -1
}

// revokeBuffer withdraws the grant once the backend unmapped it.
func (vm *AppVM) revokeBuffer(ref int) {
	d, err := vm.W.H.Domain(vm.Cfg.Dom)
	if err != nil {
		return
	}
	// Busy revokes are left for a later pass (the unmap hypercall may
	// have been interrupted by recovery and not yet retried).
	_ = d.GrantTab.Revoke(ref)
}

// --- UnixBench --------------------------------------------------------------

// unixIteration models one slice of the UnixBench subset: virtual-memory
// management (batched page-table pins/unpins), forwarded syscalls,
// reservation changes, scheduling, and occasional console output — the
// hypercall mix the paper selected the programs for ("stress the
// hypervisor's handling of hypercalls, especially those related to
// virtual memory management").
func (vm *AppVM) unixIteration() {
	cpu, domID := vm.Cfg.CPU, vm.Cfg.Dom
	w := vm.W

	// fork: pin the new process's page tables in one batched hypercall.
	// The frame picks must be distinct within the batch: the counts only
	// change when the batch executes.
	batch := w.getCall()
	batch.Op, batch.Dom = hypercall.OpMulticall, domID
	n := 2 + vm.rng.IntN(4)
	newPins := vm.pinScratch[:0]
	for i := 0; i < n; i++ {
		frame := vm.pickGuestFrameExcluding(newPins)
		newPins = append(newPins, frame)
		c := w.getCall()
		c.Op, c.Dom = hypercall.OpMMUUpdate, domID
		c.Args = [4]uint64{hypercall.MMUPin, uint64(frame)}
		batch.Batch = append(batch.Batch, c)
	}
	vm.pinScratch = newPins
	w.dispatch(cpu, batch)
	w.putBatch(batch)
	if vm.gone() {
		return
	}
	// Record the pins that actually took effect by inspecting the
	// guest's own page tables (not recovery bookkeeping, which stock Xen
	// lacks); they become the new process's address space, appended
	// straight into the (pooled) process record.
	p := vm.procs.fork()
	for _, f := range newPins {
		if vm.W.H.Frames.Frame(f).Validated {
			p.PageTables = append(p.PageTables, f)
		}
	}
	p.doneFill()

	// The running processes issue system calls (x86-64 forwarded path).
	for i := 0; i < 2+vm.rng.IntN(5); i++ {
		w.call(cpu, hypercall.OpSyscallForward, domID, [4]uint64{})
		if vm.gone() {
			return
		}
	}

	// exit: the oldest process dies and its page tables are unpinned.
	// Each frame leaves the process's list before its unpin is issued,
	// so an iteration aborted by recovery never re-unpins.
	for vm.procs.count() > 8 {
		p := vm.procs.oldest()
		for len(p.PageTables) > 0 {
			frame := p.PageTables[0]
			p.PageTables = p.PageTables[1:]
			w.call(cpu, hypercall.OpMMUUpdate, domID,
				[4]uint64{hypercall.MMUUnpin, uint64(frame)})
			if vm.gone() {
				return
			}
		}
		vm.procs.reap()
	}

	// Reservation adjustments (balloon-ish) ~20% of iterations.
	if vm.rng.IntN(5) == 0 {
		if vm.reserved > 0 {
			w.call(cpu, hypercall.OpMemoryOp, domID,
				[4]uint64{hypercall.MemRelease, uint64(vm.reserved)})
			vm.reserved = 0
		} else {
			k := 4 + vm.rng.IntN(8)
			w.call(cpu, hypercall.OpMemoryOp, domID,
				[4]uint64{hypercall.MemPopulate, uint64(k)})
			vm.reserved = k
		}
		if vm.gone() {
			return
		}
	}

	// Scheduling: yield; occasionally a timed block (sleep).
	switch vm.rng.IntN(20) {
	case 0:
		w.call(cpu, hypercall.OpSetTimerOp, domID,
			[4]uint64{0, uint64(2 * time.Millisecond)})
		if vm.gone() {
			return
		}
		w.call(cpu, hypercall.OpSchedOp, domID, [4]uint64{hypercall.SchedBlock})
	case 1, 2:
		w.call(cpu, hypercall.OpSchedOp, domID, [4]uint64{hypercall.SchedYield})
	}
	if vm.gone() {
		return
	}

	// Console output, rare.
	if vm.rng.IntN(50) == 0 {
		w.call(cpu, hypercall.OpConsoleIO, domID, [4]uint64{})
		if vm.gone() {
			return
		}
	}

	vm.OpsCompleted++
	vm.OpsAfterMark++
}

// --- NetBench ---------------------------------------------------------------

// onNetPacket handles one inbound UDP packet: the receiver process wakes,
// the netfront/netback path signals over an event channel, and the reply
// goes back out the NIC.
func (vm *AppVM) onNetPacket(p hw.Packet) {
	if vm.gone() || vm.Finished {
		return
	}
	vm.W.call(vm.Cfg.CPU, hypercall.OpEventChannelOp, vm.Cfg.Dom,
		[4]uint64{0, 0, uint64(vm.ringPort())})
	if vm.gone() {
		return
	}
	// Netfront recycles its RX buffer grants; every few packets a buffer
	// rotates out and the grant is remapped.
	if vm.OpsCompleted%8 == 7 {
		frame := vm.pickGuestFrame()
		ref := vm.grantBuffer(frame)
		if ref < 0 {
			return
		}
		vm.W.call(vm.Cfg.CPU, hypercall.OpGrantTableOp, vm.Cfg.Dom,
			[4]uint64{hypercall.GrantMap, uint64(ref), uint64(frame)})
		if vm.gone() {
			return
		}
		vm.W.call(vm.Cfg.CPU, hypercall.OpGrantTableOp, vm.Cfg.Dom,
			[4]uint64{hypercall.GrantUnmap, uint64(ref), uint64(frame)})
		if vm.gone() {
			return
		}
		vm.revokeBuffer(ref)
	}
	vm.W.H.Machine.NIC().Transmit(hw.Packet{Flow: p.Flow, Seq: p.Seq, SentAt: p.SentAt})
	vm.OpsCompleted++
	vm.OpsAfterMark++
	if vm.W.H.Clock.Now() >= vm.finishAt {
		vm.Finished = true
	}
}

// pickGuestFrame picks a random frame in the domain's memory range that
// is not currently referenced.
func (vm *AppVM) pickGuestFrame() int {
	return vm.pickGuestFrameExcluding(nil)
}

// pickGuestFrameExcluding picks an unreferenced frame not in the
// exclusion list (frames already chosen for the same batch). The list is
// a slice, not a set: batches are a handful of frames, and a linear scan
// beats allocating a map every iteration.
func (vm *AppVM) pickGuestFrameExcluding(exclude []int) int {
	d, err := vm.W.H.Domain(vm.Cfg.Dom)
	if err != nil {
		return 0
	}
	for tries := 0; tries < 64; tries++ {
		f := d.MemStart + vm.rng.IntN(d.MemCount)
		if vm.W.H.Frames.Frame(f).UseCount == 0 && !containsFrame(exclude, f) {
			return f
		}
	}
	return d.MemStart
}

func containsFrame(frames []int, f int) bool {
	for _, x := range frames {
		if x == f {
			return true
		}
	}
	return false
}

// ringPort returns the domain's I/O ring notification port.
func (vm *AppVM) ringPort() int {
	d, err := vm.W.H.Domain(vm.Cfg.Dom)
	if err != nil {
		return 0
	}
	return d.RingPort
}

// gone reports whether further guest activity is impossible (domain or
// hypervisor dead, or recovery pause started mid-iteration). It runs
// after every dispatch in an iteration, so it queries the domain
// directly rather than building a snapshot.
func (vm *AppVM) gone() bool {
	if failed, _ := vm.W.H.Failed(); failed {
		return true
	}
	if vm.W.H.Paused() {
		return true
	}
	d, err := vm.W.H.Domain(vm.Cfg.Dom)
	return err != nil || d.Failed
}

// hvmUnixIteration is the UnixBench slice for an HVM guest (§VI-A): the
// same memory-management pressure arrives as EPT-violation VM exits, and
// device accesses as emulated I/O, while scheduling and reservation
// hypercalls remain (PVHVM).
func (vm *AppVM) hvmUnixIteration() {
	cpu, domID := vm.Cfg.CPU, vm.Cfg.Dom
	w := vm.W

	// fork: the new process's working set faults in as EPT violations.
	// The frames that actually mapped accumulate in a scratch slice — the
	// process record is only registered once the fault loop completes, so
	// an iteration aborted by recovery leaves no half-forked process.
	n := 2 + vm.rng.IntN(4)
	chosen := vm.pinScratch[:0]
	got := vm.gotScratch[:0]
	for i := 0; i < n; i++ {
		frame := vm.pickGuestFrameExcluding(chosen)
		chosen = append(chosen, frame)
		vm.pinScratch = chosen
		w.call(cpu, hypercall.OpEPTViolation, domID,
			[4]uint64{hypercall.EPTPopulate, uint64(frame)})
		if vm.gone() {
			vm.gotScratch = got
			return
		}
		if vm.W.H.Frames.Frame(frame).Validated {
			got = append(got, frame)
		}
	}
	vm.gotScratch = got
	p := vm.procs.fork()
	p.PageTables = append(p.PageTables, got...)
	p.doneFill()

	// Emulated device accesses.
	for i := 0; i < 2+vm.rng.IntN(5); i++ {
		w.call(cpu, hypercall.OpIOEmulation, domID, [4]uint64{})
		if vm.gone() {
			return
		}
	}

	// exit: EPT teardown for the oldest process, trimming the list as
	// each unmap is issued (an aborted exit never re-unmaps).
	for vm.procs.count() > 8 {
		p := vm.procs.oldest()
		for len(p.PageTables) > 0 {
			frame := p.PageTables[0]
			p.PageTables = p.PageTables[1:]
			w.call(cpu, hypercall.OpEPTViolation, domID,
				[4]uint64{hypercall.EPTUnmap, uint64(frame)})
			if vm.gone() {
				return
			}
		}
		vm.procs.reap()
	}

	// Reservation adjustments (PVHVM balloon) ~20% of iterations.
	if vm.rng.IntN(5) == 0 {
		if vm.reserved > 0 {
			w.call(cpu, hypercall.OpMemoryOp, domID,
				[4]uint64{hypercall.MemRelease, uint64(vm.reserved)})
			vm.reserved = 0
		} else {
			k := 4 + vm.rng.IntN(8)
			w.call(cpu, hypercall.OpMemoryOp, domID,
				[4]uint64{hypercall.MemPopulate, uint64(k)})
			vm.reserved = k
		}
		if vm.gone() {
			return
		}
	}

	// HLT exits / yields.
	switch vm.rng.IntN(20) {
	case 0:
		w.call(cpu, hypercall.OpSetTimerOp, domID,
			[4]uint64{0, uint64(2 * time.Millisecond)})
		if vm.gone() {
			return
		}
		w.call(cpu, hypercall.OpSchedOp, domID, [4]uint64{hypercall.SchedBlock})
	case 1, 2:
		w.call(cpu, hypercall.OpSchedOp, domID, [4]uint64{hypercall.SchedYield})
	}
	if vm.gone() {
		return
	}

	vm.OpsCompleted++
	vm.OpsAfterMark++
}
