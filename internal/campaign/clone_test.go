package campaign

import (
	"encoding/json"
	"testing"

	"nilihype/internal/core"
	"nilihype/internal/inject"
)

// TestOnResultCloneSurvivesRecycling pins the copy-on-retain contract on
// Campaign.OnResult: the executor recycles one Result's backing arrays
// across a worker's runs, so a retained Clone must alias none of them. The
// test snapshots each Result (serialized, so the snapshot shares no
// memory) inside the callback while also retaining the delivered Result
// as-is; after the campaign — once recycling has overwritten the shared
// arrays run after run — it scribbles over every slice of the raw copies
// for good measure and checks each Clone still matches its snapshot.
func TestOnResultCloneSurvivesRecycling(t *testing.T) {
	rc := fastCfg(inject.Code, core.Microreset)
	rc.Recovery.Escalation.Audit = true
	rc.TraceCapacity = 256 // keep Trace non-empty so aliasing has somewhere to show
	var raw, clones []Result
	var snaps [][]byte
	c := Campaign{Base: rc, Runs: 4, Parallelism: 1, SeedBase: 11,
		OnResult: func(r Result) {
			snap, err := json.Marshal(r)
			if err != nil {
				t.Errorf("marshal result: %v", err)
			}
			raw = append(raw, r) // contract violation, on purpose
			clones = append(clones, r.Clone())
			snaps = append(snaps, snap)
		}}
	c.Execute()
	if len(clones) != 4 {
		t.Fatalf("observed %d results, want 4", len(clones))
	}

	// The raw copies share backing arrays with the executor's recycled
	// Result; scribble through them the way a later run would.
	for i := range raw {
		for j := range raw[i].VMs {
			raw[i].VMs[j] = VMResult{Reason: "scribbled"}
		}
		for j := range raw[i].Trace {
			raw[i].Trace[j] = "scribbled"
		}
		for j := range raw[i].Phases {
			raw[i].Phases[j] = core.LatencyStep{Name: "scribbled"}
		}
		for j := range raw[i].SacrificedVMs {
			raw[i].SacrificedVMs[j] = -1
		}
	}

	sawTrace := false
	for i, cl := range clones {
		got, err := json.Marshal(cl)
		if err != nil {
			t.Fatalf("marshal clone %d: %v", i, err)
		}
		if string(got) != string(snaps[i]) {
			t.Errorf("clone %d no longer matches its callback-time snapshot:\nwant %s\ngot  %s", i, snaps[i], got)
		}
		sawTrace = sawTrace || len(cl.Trace) > 0
		if len(cl.VMs) == 0 {
			t.Errorf("clone %d has no VM results; the aliasing check needs populated slices", i)
		}
	}
	if !sawTrace {
		t.Error("no clone carried a trace; the aliasing check needs populated slices")
	}
}
