// Package health is the per-host health model: it folds the recovery
// journal's episode outcomes and the telemetry-derived SLO damage into a
// rolling window and collapses them to a Healthy/Degraded/Exhausted state
// machine with deterministic transitions.
//
// This is the exact signal the fleet cordon loop (ROADMAP item 1) will
// consume: a Degraded host is a candidate for workload drain, an
// Exhausted host for cordon/evacuate/replace. Until the fleet layer
// exists, the campaign layer replays a campaign's runs in seed order as
// one host's life — many faults hitting the same host over time — and
// reports the trajectory.
//
// Determinism contract: every input is an exact integer, every rule an
// integer comparison, and the window is a fixed-order ring — observing the
// same episode sequence always produces the same transitions. The model
// holds no clock and no randomness.
package health

import "fmt"

// State is a host's health state.
type State uint8

// States, in increasing order of concern.
const (
	// Healthy: recoveries are succeeding on the cheap rungs with no
	// accumulated service degradation.
	Healthy State = iota + 1
	// Degraded: the host still recovers, but the window shows pressure —
	// depressed success rate, ladder climbing toward its top rung,
	// accumulated degraded verdicts, or excessive SLO damage. A fleet
	// would drain new placements away from it.
	Degraded
	// Exhausted: the recovery ladder failed terminally (or failures
	// accumulated past the limit). Exhausted is sticky: no later quiet
	// window un-exhausts a host — a fleet replaces it.
	Exhausted
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Exhausted:
		return "exhausted"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Sample is one recovery episode's health-relevant outcome, distilled from
// the journal and the run's SLO record. All fields are exact integers, so
// samples JSON-round-trip losslessly and merge-order never matters.
type Sample struct {
	// Recovered reports whether the episode's recovery held (the paper's
	// success criterion); false is a terminal recovery failure.
	Recovered bool `json:"recovered"`
	// Attempts is the ladder depth the episode used; MaxAttempts the
	// ladder's capacity (Attempts == MaxAttempts on a non-recovered
	// episode means the ladder was exhausted outright).
	Attempts    int `json:"attempts"`
	MaxAttempts int `json:"max_attempts"`
	// DegradedVerdicts counts AppVMs the episode's audits sacrificed.
	DegradedVerdicts int `json:"degraded_verdicts,omitempty"`
	// SLODamageUs is the episode's user-microseconds of degradation
	// (traffic.SLO.DegradedUserUs; zero when no traffic was armed).
	SLODamageUs uint64 `json:"slo_damage_us,omitempty"`
}

// Config parameterizes the health model. The zero value gets defaults via
// the model constructor.
type Config struct {
	// Window is the rolling episode window (default 16).
	Window int
	// MinSuccessPermille is the window success-rate floor, in ‰ of the
	// window's episodes (default 900: more than 1-in-10 failing recovery
	// marks the host Degraded even before exhaustion rules fire).
	MinSuccessPermille int
	// MaxDegradedVerdicts bounds accumulated sacrificed-AppVM verdicts in
	// the window before the host is Degraded (default 2).
	MaxDegradedVerdicts int
	// MaxFullLadder bounds window episodes that climbed to the ladder's
	// top rung before the host is Degraded (default 2) — ladder-depth
	// pressure: the cheap rungs are no longer sufficient.
	MaxFullLadder int
	// MaxFailures bounds terminal recovery failures in the window before
	// the host is Exhausted (default 1: one ladder exhaustion on a real
	// host means the hypervisor is down and must be replaced).
	MaxFailures int
	// MaxSLODamageUsPerEpisode bounds the window's mean per-episode SLO
	// damage, in user-microseconds (default 120s of user-degradation per
	// episode — well above a clean microreset episode, below a host that
	// is routinely dragging users through long outages).
	MaxSLODamageUsPerEpisode uint64
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.MinSuccessPermille <= 0 {
		c.MinSuccessPermille = 900
	}
	if c.MaxDegradedVerdicts <= 0 {
		c.MaxDegradedVerdicts = 2
	}
	if c.MaxFullLadder <= 0 {
		c.MaxFullLadder = 2
	}
	if c.MaxFailures <= 0 {
		c.MaxFailures = 1
	}
	if c.MaxSLODamageUsPerEpisode == 0 {
		c.MaxSLODamageUsPerEpisode = 120_000_000
	}
	return c
}

// Transition is one state-machine edge: after observing episode Episode
// (1-based), the host moved From → To because of Reason.
type Transition struct {
	Episode int    `json:"episode"`
	From    string `json:"from"`
	To      string `json:"to"`
	Reason  string `json:"reason"`
}

// Model is one host's health state machine.
type Model struct {
	cfg      Config
	win      []Sample // ring buffer of the last cfg.Window episodes
	episodes int
	state    State
	trans    []Transition
}

// New builds a model starting Healthy.
func New(cfg Config) *Model {
	cfg = cfg.withDefaults()
	return &Model{cfg: cfg, win: make([]Sample, 0, cfg.Window), state: Healthy}
}

// State returns the current state.
func (m *Model) State() State { return m.state }

// Episodes returns how many episodes the model has observed.
func (m *Model) Episodes() int { return m.episodes }

// Transitions returns the recorded state transitions, in order.
func (m *Model) Transitions() []Transition { return m.trans }

// Observe folds one recovery episode into the window and returns the
// resulting state. Rules are evaluated in strict priority order and the
// first match names the transition reason, so the trajectory is a pure
// function of the episode sequence.
func (m *Model) Observe(s Sample) State {
	m.episodes++
	if len(m.win) < m.cfg.Window {
		m.win = append(m.win, s)
	} else {
		copy(m.win, m.win[1:])
		m.win[len(m.win)-1] = s
	}

	next, reason := m.evaluate()
	if m.state == Exhausted {
		// Sticky: a replaced host, not a recovered one.
		next = Exhausted
	}
	if next != m.state {
		m.trans = append(m.trans, Transition{
			Episode: m.episodes,
			From:    m.state.String(), To: next.String(),
			Reason: reason,
		})
		m.state = next
	}
	return m.state
}

// evaluate computes the window's state and the first-matching rule name.
func (m *Model) evaluate() (State, string) {
	var failures, fullLadder, degraded int
	var damageUs uint64
	for _, s := range m.win {
		if !s.Recovered {
			failures++
		}
		if s.MaxAttempts > 1 && s.Attempts >= s.MaxAttempts {
			fullLadder++
		}
		degraded += s.DegradedVerdicts
		damageUs += s.SLODamageUs
	}
	n := len(m.win)
	switch {
	case failures >= m.cfg.MaxFailures:
		return Exhausted, fmt.Sprintf("%d terminal recovery failure(s) in window (limit %d)",
			failures, m.cfg.MaxFailures)
	case failures*1000 > (1000-m.cfg.MinSuccessPermille)*n:
		return Degraded, fmt.Sprintf("window success rate below %d‰ (%d/%d failed)",
			m.cfg.MinSuccessPermille, failures, n)
	case degraded >= m.cfg.MaxDegradedVerdicts:
		return Degraded, fmt.Sprintf("%d degraded verdict(s) accumulated in window (limit %d)",
			degraded, m.cfg.MaxDegradedVerdicts)
	case fullLadder >= m.cfg.MaxFullLadder:
		return Degraded, fmt.Sprintf("%d episode(s) climbed to the top ladder rung (limit %d)",
			fullLadder, m.cfg.MaxFullLadder)
	case n > 0 && damageUs > m.cfg.MaxSLODamageUsPerEpisode*uint64(n):
		return Degraded, fmt.Sprintf("mean SLO damage %dus/episode over limit %dus",
			damageUs/uint64(n), m.cfg.MaxSLODamageUsPerEpisode)
	default:
		return Healthy, "window clear"
	}
}

// Report is a host's health trajectory over an episode sequence.
type Report struct {
	// Final is the state after the last episode; Episodes counts them.
	Final    string `json:"final"`
	Episodes int    `json:"episodes"`
	// Failures/FullLadder/DegradedVerdicts/SLODamageUs total the raw
	// pressure signals over ALL episodes (not just the final window).
	Failures         int    `json:"failures"`
	FullLadder       int    `json:"full_ladder"`
	DegradedVerdicts int    `json:"degraded_verdicts"`
	SLODamageUs      uint64 `json:"slo_damage_us"`
	// Transitions is the full transition history.
	Transitions []Transition `json:"transitions,omitempty"`
}

// Replay runs an episode sequence through a fresh model and reports the
// trajectory. The caller fixes the episode order (the campaign layer uses
// seed order), which makes the report bit-identical however the episodes
// were computed.
func Replay(cfg Config, samples []Sample) Report {
	m := New(cfg)
	rep := Report{Final: Healthy.String()}
	for _, s := range samples {
		m.Observe(s)
		rep.Episodes++
		if !s.Recovered {
			rep.Failures++
		}
		if s.MaxAttempts > 1 && s.Attempts >= s.MaxAttempts {
			rep.FullLadder++
		}
		rep.DegradedVerdicts += s.DegradedVerdicts
		rep.SLODamageUs += s.SLODamageUs
	}
	rep.Final = m.State().String()
	rep.Transitions = m.Transitions()
	return rep
}

// Format renders the report as a short block.
func (r Report) Format() string {
	if r.Episodes == 0 {
		return "host health: healthy (no recovery episodes)\n"
	}
	out := fmt.Sprintf("host health: %s after %d episode(s) — %d failure(s), %d top-rung climb(s), %d degraded verdict(s)",
		r.Final, r.Episodes, r.Failures, r.FullLadder, r.DegradedVerdicts)
	if r.SLODamageUs > 0 {
		out += fmt.Sprintf(", %.1f user-sec SLO damage", float64(r.SLODamageUs)/1e6)
	}
	out += "\n"
	for _, t := range r.Transitions {
		out += fmt.Sprintf("  episode %d: %s → %s (%s)\n", t.Episode, t.From, t.To, t.Reason)
	}
	return out
}
