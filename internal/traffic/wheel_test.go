package traffic

import "testing"

// TestWheelPopsAtExactTick inserts cohorts at deadlines spanning all three
// levels (including slot and block boundaries) and advances tick by tick:
// every cohort must pop exactly at its deadline, after cascading down
// through the coarse levels.
func TestWheelPopsAtExactTick(t *testing.T) {
	dues := []uint64{1, 2, 255, 256, 257, 300, 511, 512, 65535, 65536, 65537, 70000, 131072, 200000}
	cs := make([]cohort, len(dues))
	var w wheel
	w.init()
	for i, d := range dues {
		w.insert(cs, int32(i), d)
	}
	popped := 0
	var max uint64 = 200000
	for tick := uint64(0); tick <= max; tick++ {
		for i := w.advance(cs); i != none; i = cs[i].next {
			if cs[i].due != tick {
				t.Fatalf("cohort %d popped at tick %d, due %d", i, tick, cs[i].due)
			}
			popped++
		}
	}
	if popped != len(dues) {
		t.Fatalf("popped %d cohorts, want %d", popped, len(dues))
	}
}

// TestWheelPeriodicReinsertion drives one cohort through many re-arm
// cycles with a period that crosses the level-0 range (so every cycle
// parks in level 1 and cascades back down): fires must be exactly one
// period apart.
func TestWheelPeriodicReinsertion(t *testing.T) {
	const period = 300
	cs := make([]cohort, 1)
	var w wheel
	w.init()
	w.insert(cs, 0, period)
	var fires []uint64
	for tick := uint64(0); tick <= 100*period; tick++ {
		head := w.advance(cs)
		if head == none {
			continue
		}
		if head != 0 || cs[head].next != none {
			t.Fatalf("tick %d: unexpected pop list", tick)
		}
		fires = append(fires, tick)
		w.insert(cs, 0, cs[0].due+period)
	}
	if len(fires) != 100 {
		t.Fatalf("got %d fires, want 100", len(fires))
	}
	for i, f := range fires {
		if want := uint64(i+1) * period; f != want {
			t.Fatalf("fire %d at tick %d, want %d", i, f, want)
		}
	}
}

// TestWheelManyCohortsPerSlot checks list integrity when many cohorts
// share slots and periods (the campaign shape: ~1000 cohorts, period a
// couple hundred ticks).
func TestWheelManyCohortsPerSlot(t *testing.T) {
	const n = 1000
	const period = 200
	cs := make([]cohort, n)
	var w wheel
	w.init()
	for i := range cs {
		cs[i].users = 1
		w.insert(cs, int32(i), 1+uint64(i*period)/n)
	}
	pops := 0
	for tick := uint64(0); tick <= 10*period; tick++ {
		for i := w.advance(cs); i != none; {
			next := cs[i].next
			if cs[i].due != tick {
				t.Fatalf("cohort %d popped at %d, due %d", i, tick, cs[i].due)
			}
			w.insert(cs, i, cs[i].due+period)
			pops++
			i = next
		}
	}
	if pops != 10*n {
		t.Fatalf("got %d pops over 10 periods of %d cohorts, want %d", pops, n, 10*n)
	}
}
