package guest

import (
	"testing"
	"time"
)

const ms = time.Millisecond

// TestExcludeWindowCoalescing checks that the exclusion set stays sorted,
// disjoint, and coalesced for every insertion pattern recovery produces.
func TestExcludeWindowCoalescing(t *testing.T) {
	cases := []struct {
		name string
		add  []window
		want []window
	}{
		{
			name: "disjoint stay separate",
			add:  []window{{100 * ms, 200 * ms}, {400 * ms, 500 * ms}},
			want: []window{{100 * ms, 200 * ms}, {400 * ms, 500 * ms}},
		},
		{
			name: "disjoint inserted out of order sort",
			add:  []window{{400 * ms, 500 * ms}, {100 * ms, 200 * ms}},
			want: []window{{100 * ms, 200 * ms}, {400 * ms, 500 * ms}},
		},
		{
			name: "adjacent merge",
			add:  []window{{100 * ms, 200 * ms}, {200 * ms, 300 * ms}},
			want: []window{{100 * ms, 300 * ms}},
		},
		{
			name: "nested absorbed",
			add:  []window{{100 * ms, 500 * ms}, {200 * ms, 300 * ms}},
			want: []window{{100 * ms, 500 * ms}},
		},
		{
			name: "nested outward extends",
			add:  []window{{200 * ms, 300 * ms}, {100 * ms, 500 * ms}},
			want: []window{{100 * ms, 500 * ms}},
		},
		{
			// The escalation pattern: each attempt announces a window
			// starting at the same first-detection instant, with a later
			// end per rung. These must collapse to one window.
			name: "shared-start escalation windows collapse",
			add:  []window{{100 * ms, 150 * ms}, {100 * ms, 400 * ms}, {100 * ms, 900 * ms}},
			want: []window{{100 * ms, 900 * ms}},
		},
		{
			name: "bridge joins two neighbors",
			add:  []window{{100 * ms, 200 * ms}, {300 * ms, 400 * ms}, {150 * ms, 350 * ms}},
			want: []window{{100 * ms, 400 * ms}},
		},
		{
			name: "empty window ignored",
			add:  []window{{100 * ms, 200 * ms}, {300 * ms, 300 * ms}},
			want: []window{{100 * ms, 200 * ms}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := &NetSender{}
			for _, w := range tc.add {
				s.ExcludeWindow(w.start, w.end)
			}
			if len(s.exclusions) != len(tc.want) {
				t.Fatalf("got %v windows, want %v", s.exclusions, tc.want)
			}
			for i, w := range tc.want {
				if s.exclusions[i] != w {
					t.Fatalf("window %d: got %v, want %v", i, s.exclusions[i], w)
				}
			}
		})
	}
}

// TestOverlapExact checks the per-interval discount against hand-computed
// coverage, including windows only partially inside the interval.
func TestOverlapExact(t *testing.T) {
	s := &NetSender{}
	s.ExcludeWindow(100*ms, 300*ms)
	s.ExcludeWindow(600*ms, 700*ms)
	s.ExcludeWindow(900*ms, 1200*ms)
	cases := []struct {
		a, b, want time.Duration
	}{
		{0, 1000 * ms, 200*ms + 100*ms + 100*ms},
		{0, 100 * ms, 0},
		{150 * ms, 250 * ms, 100 * ms}, // interval inside a window
		{250 * ms, 650 * ms, 50*ms + 50*ms},
		{1200 * ms, 1500 * ms, 0},
	}
	for _, tc := range cases {
		if got := s.overlap(tc.a, tc.b); got != tc.want {
			t.Errorf("overlap(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

// TestFailedIntervalsNoDoubleDiscount is the regression for the
// double-subtract bug: two announced recovery windows sharing a start
// (an escalating recovery) used to have their overlap counted twice,
// shrinking the interval's expected packet count enough to mask a real
// reception-rate failure.
func TestFailedIntervalsNoDoubleDiscount(t *testing.T) {
	s := &NetSender{period: ms, intervalLen: time.Second}
	s.startAt = 0
	s.stopAt = time.Second

	// Recovery actually covered [400ms, 700ms): attempt 1 announced
	// [400ms, 500ms), the escalated attempt [400ms, 700ms). True usable
	// time is 700ms → expected 700 replies, 10%-drop threshold 630.
	s.ExcludeWindow(400*ms, 500*ms)
	s.ExcludeWindow(400*ms, 700*ms)

	// 580 replies: below the true threshold (failed interval), but above
	// the 540 threshold the double-counted 400ms discount used to give.
	for i := 0; i < 580; i++ {
		s.replyTimes = append(s.replyTimes, time.Duration(i)*ms/2)
	}

	if got := s.FailedIntervals(); got != 1 {
		t.Fatalf("FailedIntervals = %d, want 1 (double-discounted exclusion masks the drop)", got)
	}
}
