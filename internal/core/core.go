// Package core implements the paper's primary contribution: component-
// level recovery of the hypervisor by microreset (NiLiHype) and, as the
// baseline, by microreboot (ReHype).
//
// Both engines drive the same mechanism surface exposed by internal/hv:
// discard execution threads, release locks, retry interrupted hypercalls,
// repair scheduling metadata, scan page-frame descriptors, reprogram the
// hardware timers, and reactivate recurring timer events. The difference
// is which operations each mechanism needs (microreboot gets several "for
// free" from booting a fresh image — at the cost of a >30x longer recovery
// latency, Tables II/III) and which corruptions each survives (the reboot
// re-initializes state microreset reuses — ReHype's small recovery-rate
// edge on non-failstop faults, §VII-A).
package core

import (
	"fmt"
	"time"

	"nilihype/internal/audit"
	"nilihype/internal/detect"
	"nilihype/internal/hv"
	"nilihype/internal/recdomain"
	"nilihype/internal/telemetry"
)

// Mechanism selects the recovery mechanism.
type Mechanism int

// Mechanisms.
const (
	// Microreset is NiLiHype: reset the hypervisor to a quiescent state
	// in place, without reboot (§III-C).
	Microreset Mechanism = iota + 1
	// Microreboot is ReHype: boot a new hypervisor instance and
	// re-integrate preserved state (§III-B).
	Microreboot
	// CheckpointRestore is the §II-B alternative the paper discusses:
	// "replacing the reboot with a rollback to a checkpoint saved right
	// after a previous reboot". The hardware re-initialization largely
	// disappears, but — as the paper argues — "even in this case, there
	// would be significant latency for reintegrating state from the
	// previous instance ... multiple hundreds of milliseconds": the
	// memory re-integration steps (Table II's 266 ms at 8 GB) remain.
	// State effects match microreboot (fresh static image, rebuilt
	// heap/free list) since the checkpoint is a pristine post-boot image.
	CheckpointRestore
	// PrivVMRestart is the ladder's top rung for PrivVM failure: run the
	// in-place (microreset-style) hypervisor repairs, then reboot the
	// PrivVM itself from its boot image and re-attach the surviving
	// AppVMs' I/O rings. No hypervisor-state repair can bring back
	// management service when Dom0 is gone or hung — failure cause 2 of
	// §VII-A — so this rung replaces the PrivVM instead.
	PrivVMRestart
)

// String returns the mechanism's system name.
func (m Mechanism) String() string {
	switch m {
	case Microreset:
		return "NiLiHype"
	case Microreboot:
		return "ReHype"
	case CheckpointRestore:
		return "ReHype-CP"
	case PrivVMRestart:
		return "PrivVM-Restart"
	default:
		return fmt.Sprintf("mechanism(%d)", int(m))
	}
}

// Reboots reports whether the mechanism installs a fresh hypervisor image
// (boot or checkpoint restore) rather than reusing the failed instance's
// state in place.
func (m Mechanism) Reboots() bool {
	return m == Microreboot || m == CheckpointRestore
}

// Enhancements is the recovery-enhancement bitmask — the rungs of the
// Table I ladder.
type Enhancements uint32

// Enhancement bits.
const (
	// EnhClearIRQCount zeroes every CPU's local_irq_count (§V-A).
	EnhClearIRQCount Enhancements = 1 << iota
	// EnhReHypeMechanisms is the bundle of mechanisms inherited from
	// ReHype (§III-B, §IV): heap-lock release, hypercall/syscall retry
	// with undo-log rollback, batched-retry completion logging,
	// acknowledging pending and in-service interrupts, and saving FS/GS
	// at detection.
	EnhReHypeMechanisms
	// EnhSchedConsistency rewrites the per-vCPU scheduling metadata from
	// the per-CPU structures (§V-A).
	EnhSchedConsistency
	// EnhReprogramTimer re-arms every CPU's APIC one-shot (§V-A).
	EnhReprogramTimer
	// EnhUnlockStaticLocks iterates the static-lock segment (§V-A).
	EnhUnlockStaticLocks
	// EnhReactivateTimers re-arms popped recurring timer events (§V-A).
	EnhReactivateTimers
	// EnhPFScan runs the page-frame-descriptor consistency scan — the
	// dominant latency component (Table III) whose removal costs ~4% of
	// recovery rate (§VII-B).
	EnhPFScan
	// EnhReprogramIOAPIC rewrites every diverged IO-APIC redirection
	// entry from the software copy recorded at boot — the device-
	// corruption repair. Not part of AllEnhancements (the paper's ladder
	// predates the device fault surface); the post-recovery audit performs
	// the same repair, and reboot rungs get it from the APIC-setup boot
	// step.
	EnhReprogramIOAPIC
)

// AllEnhancements is the full production configuration.
const AllEnhancements = EnhClearIRQCount | EnhReHypeMechanisms | EnhSchedConsistency |
	EnhReprogramTimer | EnhUnlockStaticLocks | EnhReactivateTimers | EnhPFScan

// Has reports whether e includes bit b.
func (e Enhancements) Has(b Enhancements) bool { return e&b != 0 }

// Ladder returns the cumulative enhancement configurations of Table I, in
// paper order, with display labels.
func Ladder() []struct {
	Label string
	Enh   Enhancements
} {
	return []struct {
		Label string
		Enh   Enhancements
	}{
		{"Basic", 0},
		{"+ Clear IRQ count", EnhClearIRQCount},
		{"+ Enhanced with ReHype mechanisms", EnhClearIRQCount | EnhReHypeMechanisms | EnhPFScan},
		{"+ Ensure consistency within scheduling metadata", EnhClearIRQCount | EnhReHypeMechanisms | EnhPFScan | EnhSchedConsistency},
		{"+ Reprogram hardware timer", EnhClearIRQCount | EnhReHypeMechanisms | EnhPFScan | EnhSchedConsistency | EnhReprogramTimer},
		{"+ Unlock static locks", EnhClearIRQCount | EnhReHypeMechanisms | EnhPFScan | EnhSchedConsistency | EnhReprogramTimer | EnhUnlockStaticLocks},
		{"+ Reactivate recurring timer events", AllEnhancements},
	}
}

// DiscardScope selects which execution threads microreset discards — the
// design-choice ablation of §III-C.
type DiscardScope int

// Scopes.
const (
	// AllThreads discards every CPU's hypervisor execution thread (the
	// NiLiHype design choice).
	AllThreads DiscardScope = iota + 1
	// DetectingOnly discards only the detecting CPU's thread — the
	// rejected alternative: cross-CPU IPI waits and global-state changes
	// doom non-discarded threads (§III-C).
	DetectingOnly
)

// EscalationPolicy turns the engine into a multi-attempt recovery state
// machine: attempt i (0-based) uses Ladder[min(i, len(Ladder)-1)], and a
// failure re-detected during an attempt's completion or within GraceWindow
// of its resume starts the next attempt instead of terminating the run, up
// to MaxAttempts total. The zero value preserves the paper's model of one
// microreset/microreboot per fault.
type EscalationPolicy struct {
	// MaxAttempts caps total recovery attempts per fault. Zero means
	// len(Ladder) when a ladder is set, otherwise 1 (no escalation).
	MaxAttempts int
	// Ladder lists the mechanism used by each attempt, cheapest rung
	// first; attempts beyond its length reuse the last rung. Empty means
	// every attempt uses Config.Mechanism.
	Ladder []Mechanism
	// GraceWindow is how long after an attempt's resume a re-detection
	// still counts as that attempt's failure (and escalates). Detections
	// after the window are terminal post-recovery failures: the recovery
	// itself held, the system broke later.
	GraceWindow time.Duration
	// Audit enables the post-recovery invariant audit + repair pass
	// (internal/audit) after every rung's own repairs: remaining
	// structural damage is repaired in place, confined by sacrificing the
	// affected AppVM, or left to escalate the attempt.
	Audit bool
}

// Config parameterizes a recovery engine.
type Config struct {
	Mechanism    Mechanism
	Enhancements Enhancements
	Scope        DiscardScope

	// ScanCPUs parallelizes the page-frame consistency scan across that
	// many cores (0/1 = sequential). This is the mitigation §VII-B
	// suggests for large-memory hosts, where the scan — proportional to
	// memory size — dominates NiLiHype's recovery latency: "The problem
	// could be mitigated by exploiting parallelism. For example, use
	// multiple cores to perform the operation."
	ScanCPUs int

	// RepairCPUs > 1 partitions the repair and audit phases of non-reboot
	// rungs into recovery domains — per-CPU state, per-guest-domain state,
	// and a global domain with an explicit dependency order — and runs
	// independent domains concurrently, charging the latency as the max
	// over parallel domains plus the serialized global work on that many
	// simulated CPUs. When ScanCPUs is unset it also parallelizes the
	// page-frame scan. 0/1 keeps the historical serial path, bit for bit.
	RepairCPUs int
	// SerialRepairExec executes the partitioned path's units on a single
	// host goroutine while keeping the identical latency model — the
	// equivalence suite's serial baseline. Results and Summaries are
	// bit-identical with or without it; no effect when RepairCPUs <= 1.
	SerialRepairExec bool

	// Escalation enables multi-attempt recovery (zero value = one shot).
	Escalation EscalationPolicy
}

// MaxAttempts returns the total recovery attempts the configuration allows
// per fault (at least 1).
func (c Config) MaxAttempts() int {
	if c.Escalation.MaxAttempts > 0 {
		return c.Escalation.MaxAttempts
	}
	if n := len(c.Escalation.Ladder); n > 1 {
		return n
	}
	return 1
}

// MechanismFor returns the mechanism attempt i (0-based) uses.
func (c Config) MechanismFor(i int) Mechanism {
	lad := c.Escalation.Ladder
	if len(lad) == 0 {
		return c.Mechanism
	}
	if i >= len(lad) {
		i = len(lad) - 1
	}
	return lad[i]
}

// DefaultConfig returns the full NiLiHype configuration.
func DefaultConfig() Config {
	return Config{Mechanism: Microreset, Enhancements: AllEnhancements, Scope: AllThreads}
}

// ParallelRecoveryConfig returns the full NiLiHype configuration with the
// post-recovery audit enabled and the repair and audit phases partitioned
// across n recovery CPUs.
func ParallelRecoveryConfig(n int) Config {
	c := DefaultConfig()
	c.RepairCPUs = n
	c.Escalation.Audit = true
	return c
}

// DefaultGraceWindow covers re-detection of a superficially successful
// attempt: the watchdog needs up to StaleChecks+1 periods (~400 ms) to
// declare a post-resume hang, and latent corruption detections trail
// activation by up to ~50 ms.
const DefaultGraceWindow = 500 * time.Millisecond

// FullLadderConfig returns the broadened-fault-surface escalation ladder:
// microreset first (fast path), microreboot second (re-initializes the
// state classes whose corruption dooms an in-place reset), and PrivVM
// restart last — the only rung that restores management service when the
// PrivVM itself crashed or hung. The post-recovery audit backstops every
// rung, repairing (among others) IO-APIC route damage.
func FullLadderConfig() Config {
	return Config{
		Mechanism:    Microreset,
		Enhancements: AllEnhancements,
		Scope:        AllThreads,
		Escalation: EscalationPolicy{
			MaxAttempts: 3,
			Ladder:      []Mechanism{Microreset, Microreboot, PrivVMRestart},
			GraceWindow: DefaultGraceWindow,
			Audit:       true,
		},
	}
}

// HybridConfig returns the escalating configuration the hybrid experiment
// demonstrates: microreset first (fast path), microreboot if the failure
// is re-detected within the grace window — the reboot re-initializes
// exactly the state classes (static scratch, heap free list, domain list)
// whose corruption dooms an in-place microreset.
func HybridConfig() Config {
	return Config{
		Mechanism:    Microreset,
		Enhancements: AllEnhancements,
		Scope:        AllThreads,
		Escalation: EscalationPolicy{
			MaxAttempts: 2,
			Ladder:      []Mechanism{Microreset, Microreboot},
			GraceWindow: DefaultGraceWindow,
		},
	}
}

// Status describes the engine's terminal state for one run.
type Status int

// Statuses.
const (
	// StatusIdle: no error was ever detected.
	StatusIdle Status = iota + 1
	// StatusRecovered: one recovery completed and the system kept
	// running to the end of the run.
	StatusRecovered
	// StatusFailed: recovery was attempted but the system failed
	// (either during recovery or afterwards).
	StatusFailed
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusIdle:
		return "idle"
	case StatusRecovered:
		return "recovered"
	case StatusFailed:
		return "failed"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Attempt records one recovery attempt of a run. Escalating
// configurations produce one entry per ladder rung tried.
type Attempt struct {
	// Mechanism is the rung this attempt used.
	Mechanism Mechanism
	// Trigger is what started the attempt: the detection event for
	// attempt 1 and re-detection escalations, or the internal completion
	// failure that forced the escalation.
	Trigger string
	// StartedAt is the virtual time the attempt began.
	StartedAt time.Duration
	// ResumedAt is the virtual time the attempt's stable resume re-enabled
	// guest execution (0 if the attempt never got the system back up —
	// its outage window then extends into the next attempt or the end of
	// the run).
	ResumedAt time.Duration
	// Latency/Breakdown are the attempt's modeled recovery cost.
	Latency   time.Duration
	Breakdown []LatencyStep
	// FailReason is why the attempt failed; empty for the attempt that
	// recovered the system (or one still in flight).
	FailReason string
	// Audit is the attempt's audit report (nil unless
	// EscalationPolicy.Audit is set).
	Audit *audit.Report
	// Timing is the attempt's recovery-domain accounting — serial vs
	// parallel modeled latency, unit and domain counts, and per-domain
	// phase spans — combined over the attempt's repair and audit plans.
	// Zero unless Config.RepairCPUs > 1 on a non-reboot rung.
	Timing recdomain.Timing
}

// Engine is one run's recovery engine.
type Engine struct {
	H   *hv.Hypervisor
	Det *detect.Detector
	Cfg Config

	// FirstDetection is the event that triggered recovery (nil if none).
	FirstDetection *detect.Event
	// Attempts records every recovery attempt in order.
	Attempts []Attempt
	// Latency is the modeled recovery latency of the last attempt's
	// performed steps (TotalLatency sums all attempts).
	Latency time.Duration
	// Breakdown itemizes the last attempt's latency (Tables II/III).
	Breakdown []LatencyStep
	// FailReason is set when recovery or the post-recovery system fails
	// terminally (all attempts exhausted, or failure outside the grace
	// window).
	FailReason string
	// PFRepaired counts descriptors fixed by the consistency scan.
	PFRepaired int
	// AuditViolations/AuditRepaired total the audit findings across all
	// attempts; SacrificedVMs lists the domains the audit failed to
	// confine damage (in sacrifice order).
	AuditViolations int
	AuditRepaired   int
	SacrificedVMs   []int
	// RepairTiming accumulates the recovery-domain accounting across every
	// attempt that used the partitioned path (RepairCPUs > 1): what the
	// same repairs would have cost serialized vs what the parallel domains
	// were charged, plus distinct-domain counts and phase spans.
	RepairTiming recdomain.Timing

	// OnPause, if set, is invoked every time an attempt stops the world
	// (every rung pauses at its start, so escalating runs call it once
	// per attempt — consumers must be idempotent). Together with OnResume
	// it brackets the user-visible outage: pause is the instant service
	// stops answering, resume the instant it answers again.
	OnPause func()
	// OnResume, if set, is invoked at the end of every completed attempt
	// when the system resumes (the campaign layer annotates the NetBench
	// sender's exclusion window here — every attempt's outage is an
	// announced recovery gap).
	OnResume func()
	// OnRecovered, if set, is invoked once when recovery is stable: for
	// one-shot configurations immediately at resume; for escalating
	// configurations once the grace window expires with no re-detection
	// (the campaign layer starts the post-recovery VM-creation check
	// here).
	OnRecovered func()
	// OnPrivVMRestart, if set, is invoked when a PrivVM-restart attempt
	// re-enables the CPUs: the guest world re-arms Dom0's management
	// service against the freshly created domain.
	OnPrivVMRestart func()
	// OnAuditDegraded, if set, is invoked when an audit pass accepts one
	// or more degraded verdicts (sacrificed AppVMs) — the hook the
	// correlated fault-while-degraded re-injection arms itself from.
	OnAuditDegraded func()
	// PrivVMReattached counts the AppVM I/O rings the last PrivVM restart
	// re-attached.
	PrivVMReattached int

	recovering bool
	completing bool
	recovered  bool
	// graceUntil is the end of the current attempt's post-resume grace
	// window; a detection at or before it escalates.
	graceUntil time.Duration
	// lastEvent is the most recent detection (escalation attempts
	// triggered by internal completion failures reuse its CPU).
	lastEvent detect.Event
	// pending carries interrupted hypercalls across attempts: calls a
	// failed attempt never got to retry are merged with the next
	// attempt's discards.
	pending []*hv.PendingCall
	// privRestartErr stashes a PrivVM re-creation failure for complete()
	// to turn into an attempt failure (recover() must not recurse into
	// the escalation machinery mid-repair).
	privRestartErr error
}

// Window is one contiguous service outage caused by recovery: guest
// execution stopped at Start (the attempt's stop-the-world pause) and came
// back at End (its stable resume). End == 0 means the outage never closed
// — the run ended with the system down. Mechanism is the rung whose resume
// closed the window (for a still-open window, the last rung tried).
type Window struct {
	Mechanism Mechanism
	Start     time.Duration
	End       time.Duration
}

// RecoveryWindows derives the run's user-visible outage windows from the
// attempt records. An attempt that never resumed (escalation: its rung
// failed before re-enabling guests) does not open a new window — the
// outage simply continues until some later rung's resume, so consecutive
// non-resuming attempts merge into one window attributed to the rung that
// finally brought service back. This is the per-attempt export the traffic
// layer's arithmetic scoring consumes: microreset's ~2 ms, microreboot's
// ~713 ms, and a PrivVM restart's ~2 s become directly comparable
// user-seconds of degradation.
func (en *Engine) RecoveryWindows() []Window {
	var ws []Window
	open := -1 // index into ws of the still-open window, or -1
	for i := range en.Attempts {
		a := &en.Attempts[i]
		if open < 0 {
			ws = append(ws, Window{Mechanism: a.Mechanism, Start: a.StartedAt})
			open = len(ws) - 1
		} else {
			// Outage continues: re-attribute to the rung now trying.
			ws[open].Mechanism = a.Mechanism
		}
		if a.ResumedAt > 0 {
			ws[open].End = a.ResumedAt
			open = -1
		}
	}
	return ws
}

// NewEngine builds an engine over a booted hypervisor. Wire it to a
// detector with:
//
//	en := core.NewEngine(h, cfg)
//	det := detect.New(h, en.OnDetection)
//	en.Det = det
//	det.Start()
func NewEngine(h *hv.Hypervisor, cfg Config) *Engine {
	if cfg.Scope == 0 {
		cfg.Scope = AllThreads
	}
	return &Engine{H: h, Cfg: cfg}
}

// Status reports the engine's terminal state. A run that needed several
// attempts but ended recovered is StatusRecovered; exhausting the ladder
// (or failing outside the grace window) is StatusFailed.
func (en *Engine) Status() Status {
	switch {
	case en.FailReason != "":
		return StatusFailed
	case en.recovered:
		return StatusRecovered
	case len(en.Attempts) > 0:
		return StatusFailed
	default:
		return StatusIdle
	}
}

// Recovered reports whether recovery completed successfully (system
// still running).
func (en *Engine) Recovered() bool { return en.recovered && en.FailReason == "" }

// Escalated reports whether recovery needed more than one attempt.
func (en *Engine) Escalated() bool { return len(en.Attempts) > 1 }

// TotalLatency sums the modeled latency of every attempt — the run's
// total recovery service time (Engine.Latency is the last attempt's).
// Grace-window uptime between attempts is not recovery work and is not
// included.
func (en *Engine) TotalLatency() time.Duration {
	var sum time.Duration
	for i := range en.Attempts {
		sum += en.Attempts[i].Latency
	}
	return sum
}

// OnDetection is the detector hook and the state machine's transition
// function. The first detection starts attempt 1. While an attempt's
// repairs run (recovering) further detections are watchdog noise — the
// soft tick counters are legitimately frozen. A detection during an
// attempt's completion, or within the grace window after its resume, is
// that attempt's failure: the next ladder rung starts, until MaxAttempts
// is exhausted. A detection after the grace window is a terminal
// post-recovery failure (the paper's one-recovery-per-fault model is the
// MaxAttempts=1 special case).
func (en *Engine) OnDetection(e detect.Event) {
	if en.recovering {
		return
	}
	en.lastEvent = e
	if len(en.Attempts) == 0 {
		ev := e
		en.FirstDetection = &ev
		en.beginAttempt(e.String())
		return
	}
	if en.completing || e.At <= en.graceUntil {
		en.attemptFailed("post-recovery failure: " + e.Reason)
		return
	}
	en.fail("post-recovery failure: " + e.Reason)
}

// beginAttempt opens the next Attempt record and runs the recovery
// protocol with its ladder rung.
func (en *Engine) beginAttempt(trigger string) {
	mech := en.Cfg.MechanismFor(len(en.Attempts))
	en.H.Tel.Counters[telemetry.CtrRecoveryAttempts]++
	en.H.Tel.Record(en.lastEvent.CPU, telemetry.EvAttemptBegin, en.H.Tel.Intern(mech.String()))
	en.H.Jrn.Attempt(en.H.Clock.Now(), en.lastEvent.CPU, mech.String(), len(en.Attempts)+1)
	en.Attempts = append(en.Attempts, Attempt{
		Mechanism: mech,
		Trigger:   trigger,
		StartedAt: en.H.Clock.Now(),
	})
	en.recovered = false
	en.completing = false
	en.recover(en.lastEvent, mech)
}

// attemptFailed records the current attempt's failure and escalates to the
// next ladder rung — or fails the run terminally when the ladder is
// exhausted.
func (en *Engine) attemptFailed(reason string) {
	cur := &en.Attempts[len(en.Attempts)-1]
	if cur.FailReason == "" {
		cur.FailReason = reason
	}
	en.H.Tel.Record(en.lastEvent.CPU, telemetry.EvAttemptFail, en.H.Tel.Intern(reason))
	en.H.Jrn.AttemptFail(en.H.Clock.Now(), en.lastEvent.CPU, reason)
	if len(en.Attempts) >= en.Cfg.MaxAttempts() {
		en.fail(reason)
		return
	}
	en.H.Tel.Counters[telemetry.CtrEscalations]++
	en.H.Tel.Record(en.lastEvent.CPU, telemetry.EvEscalate,
		en.H.Tel.Intern(en.Cfg.MechanismFor(len(en.Attempts)).String()))
	en.H.Jrn.Escalate(en.H.Clock.Now(), en.lastEvent.CPU, en.Cfg.MechanismFor(len(en.Attempts)).String())
	// The failed attempt may already have marked the hypervisor failed
	// (e.g. a panic path with no recovery hook); the next rung needs a
	// live simulation to repair.
	if failed, _ := en.H.Failed(); failed {
		en.H.ClearFailed()
	}
	en.beginAttempt(reason)
}

// fail records terminal failure.
func (en *Engine) fail(reason string) {
	if en.FailReason == "" {
		en.FailReason = reason
	}
	if n := len(en.Attempts); n > 0 && en.Attempts[n-1].FailReason == "" {
		en.Attempts[n-1].FailReason = reason
		// Attempt failures routed through attemptFailed already recorded
		// their flight event; this branch covers direct terminal paths.
		en.H.Tel.Record(en.lastEvent.CPU, telemetry.EvAttemptFail, en.H.Tel.Intern(reason))
		en.H.Jrn.AttemptFail(en.H.Clock.Now(), en.lastEvent.CPU, reason)
	}
	en.H.MarkFailed(reason)
}
