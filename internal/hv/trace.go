package hv

import (
	"fmt"
	"time"

	"nilihype/internal/hypercall"
)

// TraceKind classifies hypervisor trace events.
type TraceKind int

// Trace kinds.
const (
	// TraceDispatch: a hypercall/VM exit entered the hypervisor.
	TraceDispatch TraceKind = iota + 1
	// TraceComplete: the in-flight request finished.
	TraceComplete
	// TracePanic: a fatal exception / failed assertion.
	TracePanic
	// TraceSpin: a CPU started spinning on a held lock.
	TraceSpin
	// TraceWedge: a CPU wedged executing garbage.
	TraceWedge
	// TraceDiscard: an execution thread was discarded by recovery.
	TraceDiscard
	// TraceRetry: an interrupted request was re-dispatched.
	TraceRetry
	// TraceDrop: an interrupted request was abandoned (no retry).
	TraceDrop
)

// String returns the kind name.
func (k TraceKind) String() string {
	switch k {
	case TraceDispatch:
		return "dispatch"
	case TraceComplete:
		return "complete"
	case TracePanic:
		return "panic"
	case TraceSpin:
		return "spin"
	case TraceWedge:
		return "wedge"
	case TraceDiscard:
		return "discard"
	case TraceRetry:
		return "retry"
	case TraceDrop:
		return "drop"
	default:
		return fmt.Sprintf("trace(%d)", int(k))
	}
}

// TraceEvent is one hypervisor-level event.
type TraceEvent struct {
	At     time.Duration
	CPU    int
	Kind   TraceKind
	Detail string
}

// String formats the event as a timeline line.
func (e TraceEvent) String() string {
	return fmt.Sprintf("[%10.3fms] cpu%d %-8s %s",
		float64(e.At)/float64(time.Millisecond), e.CPU, e.Kind, e.Detail)
}

// SetTracer installs a trace sink. Nil disables tracing (the default; the
// emit sites cost one nil check each).
func (h *Hypervisor) SetTracer(fn func(TraceEvent)) { h.tracer = fn }

// trace emits an event if a tracer is installed. The detail string must be
// cheap to produce: call sites that would format (fmt/concat) must go
// through traceCall or guard on Tracing() so the zero-tracer hot path does
// no formatting work at all — campaigns run with tracing off, and a
// hypercall dispatch happens hundreds of times per virtual millisecond.
func (h *Hypervisor) trace(cpu int, kind TraceKind, detail string) {
	if h.tracer == nil {
		return
	}
	h.tracer(TraceEvent{At: h.Clock.Now(), CPU: cpu, Kind: kind, Detail: detail})
}

// traceCall emits a call-detail event, formatting the call lazily: with no
// tracer installed this is a nil check and nothing else (no fmt machinery,
// no allocations).
func (h *Hypervisor) traceCall(cpu int, kind TraceKind, call *hypercall.Call) {
	if h.tracer == nil {
		return
	}
	h.tracer(TraceEvent{At: h.Clock.Now(), CPU: cpu, Kind: kind, Detail: call.String()})
}

// Tracing reports whether a tracer is installed. Call sites that build
// non-trivial detail strings guard on it.
func (h *Hypervisor) Tracing() bool { return h.tracer != nil }

// TraceRecorder is a bounded in-memory trace sink. It is a ring: once
// capacity events have been recorded, each new event evicts the oldest, so
// a long run always retains the most recent window — the events that
// matter for a post-mortem — instead of freezing on the first cap events.
type TraceRecorder struct {
	cap    int
	events []TraceEvent
	start  int // index of the oldest retained event once full
	// Dropped counts the oldest events evicted after the buffer filled.
	Dropped int
}

// NewTraceRecorder returns a recorder retaining the most recent capacity
// events.
func NewTraceRecorder(capacity int) *TraceRecorder {
	return &TraceRecorder{cap: capacity}
}

// Record is the sink function (pass to SetTracer).
func (r *TraceRecorder) Record(e TraceEvent) {
	if r.cap <= 0 {
		r.Dropped++
		return
	}
	if len(r.events) < r.cap {
		r.events = append(r.events, e)
		return
	}
	r.events[r.start] = e
	r.start++
	if r.start == r.cap {
		r.start = 0
	}
	r.Dropped++
}

// Events returns the retained events, oldest first, in a fresh slice.
// Render paths that only need to walk the window (the campaign trace dump,
// the escalated-run tail) should use Do instead: it visits the ring in
// place, so an empty recorder — the common case, tracing off or nothing
// recorded — costs nothing.
func (r *TraceRecorder) Events() []TraceEvent {
	out := make([]TraceEvent, 0, len(r.events))
	r.Do(func(e TraceEvent) { out = append(out, e) })
	return out
}

// Do calls fn for each retained event, oldest first, without allocating.
func (r *TraceRecorder) Do(fn func(TraceEvent)) {
	for _, e := range r.events[r.start:] {
		fn(e)
	}
	for _, e := range r.events[:r.start] {
		fn(e)
	}
}

// Len returns the number of retained events.
func (r *TraceRecorder) Len() int { return len(r.events) }

// Filter returns the retained events of the given kinds, oldest first.
func (r *TraceRecorder) Filter(kinds ...TraceKind) []TraceEvent {
	var out []TraceEvent
	r.Do(func(e TraceEvent) {
		for _, k := range kinds {
			if e.Kind == k {
				out = append(out, e)
				break
			}
		}
	})
	return out
}
