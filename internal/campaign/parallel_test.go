package campaign

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"nilihype/internal/core"
	"nilihype/internal/inject"
)

// parallelRepairCfg is the recovery-domain configuration under test: full
// microreset ladder, audit gate on, repair partitioned over the machine's
// 8 CPUs.
func parallelRepairCfg(fault inject.FaultType, setup Setup) RunConfig {
	rc := fastCfg(fault, core.Microreset)
	rc.Setup = setup
	rc.Recovery.RepairCPUs = MachineCPUs
	rc.Recovery.Escalation.Audit = true
	return rc
}

// TestParallelRepairSerialVsParallelExecBitIdentical is the PR's
// equivalence guarantee at campaign level: for every fault class and
// setup, executing the partitioned repair's units serially
// (SerialRepairExec) or concurrently — and at campaign parallelism 1 or 4
// — produces bit-identical Results for every seed and a bit-identical
// Summary. The exec strategy is configuration, not outcome, so it is the
// one Summary.Config field normalized before comparison. CI runs this
// suite under -race with GOMAXPROCS > 1.
func TestParallelRepairSerialVsParallelExecBitIdentical(t *testing.T) {
	collect := func(rc RunConfig, serialExec, par int) (Summary, []Result) {
		rc.Recovery.SerialRepairExec = serialExec == 1
		var results []Result
		c := Campaign{Base: rc, Runs: 4, Parallelism: par, SeedBase: 3,
			OnResult: func(r Result) { results = append(results, r.Clone()) }}
		s := c.Execute()
		s.Config.Recovery.SerialRepairExec = false
		// Parallel campaigns deliver results in completion order; seeds are
		// the stable identity.
		sort.Slice(results, func(i, j int) bool { return results[i].Seed < results[j].Seed })
		return s, results
	}
	for _, fault := range []inject.FaultType{inject.Failstop, inject.Register, inject.Code} {
		for _, setup := range []Setup{OneAppVM, ThreeAppVM} {
			rc := parallelRepairCfg(fault, setup)
			wantS, wantR := collect(rc, 1, 1)
			for _, par := range []int{1, 4} {
				gotS, gotR := collect(rc, 0, par)
				if !reflect.DeepEqual(wantS, gotS) {
					t.Fatalf("%v/%v par=%d: Summary diverges between serial and parallel repair execution:\n serial:   %+v\n parallel: %+v",
						fault, setup, par, wantS, gotS)
				}
				if !reflect.DeepEqual(wantR, gotR) {
					t.Fatalf("%v/%v par=%d: Results diverge between serial and parallel repair execution:\n serial:   %+v\n parallel: %+v",
						fault, setup, par, wantR, gotR)
				}
			}
		}
	}
}

// TestParallelRepairCutsMicroresetLatency is the EXPERIMENTS.md claim:
// partitioning repair over the 8 recovery CPUs cuts mean successful
// microreset latency on the 8-CPU 3AppVM configuration by at least 25%
// against the serial path with the same audit gate.
func TestParallelRepairCutsMicroresetLatency(t *testing.T) {
	run := func(repairCPUs int) Summary {
		rc := fastCfg(inject.Failstop, core.Microreset)
		rc.Recovery.RepairCPUs = repairCPUs
		rc.Recovery.Escalation.Audit = true
		c := Campaign{Base: rc, Runs: 6, Parallelism: 2, SeedBase: 17}
		return c.Execute()
	}
	serial, parallel := run(0), run(MachineCPUs)
	if serial.RecoverySuccess == 0 || parallel.RecoverySuccess == 0 {
		t.Fatalf("no successful recoveries to compare: serial %d, parallel %d",
			serial.RecoverySuccess, parallel.RecoverySuccess)
	}
	sm, pm := serial.MeanSuccessLatency(), parallel.MeanSuccessLatency()
	if pm > sm*3/4 {
		t.Fatalf("parallel mean latency %v is not ≥25%% below serial %v", pm, sm)
	}
}

// TestParallelRepairSummaryFields checks the new campaign accounting: the
// partitioned runs are counted, the domain count covers the per-CPU,
// per-guest and global domains, and the parallel charge beats the
// serialized total. The serial path must leave all of it zero.
func TestParallelRepairSummaryFields(t *testing.T) {
	rc := parallelRepairCfg(inject.Failstop, ThreeAppVM)
	c := Campaign{Base: rc, Runs: 4, Parallelism: 2, SeedBase: 5}
	s := c.Execute()
	if s.ParallelRepairRuns == 0 {
		t.Fatal("no run recorded the parallel repair path")
	}
	// 8 per-CPU domains + the global domain + at least the PrivVM guest
	// domain.
	if s.RepairDomains < MachineCPUs+2 {
		t.Fatalf("RepairDomains = %d, want at least %d", s.RepairDomains, MachineCPUs+2)
	}
	if s.ParallelRepairLatency >= s.SerialRepairLatency {
		t.Fatalf("parallel charge %v not below serialized %v", s.ParallelRepairLatency, s.SerialRepairLatency)
	}
	if out := s.Format(); !strings.Contains(out, "parallel repair:") {
		t.Fatalf("Format lacks the parallel-repair line:\n%s", out)
	}

	rc.Recovery.RepairCPUs = 0
	c2 := Campaign{Base: rc, Runs: 2, Parallelism: 1, SeedBase: 5}
	s2 := c2.Execute()
	if s2.ParallelRepairRuns != 0 || s2.RepairDomains != 0 || s2.SerialRepairLatency != 0 {
		t.Fatalf("serial path populated parallel accounting: %+v", s2)
	}
}

// TestParallelRepairOffMatchesLegacySerialPath: RepairCPUs of 0 and 1
// must both take the historical serial path and produce bit-identical
// Summaries — the partition is strictly opt-in.
func TestParallelRepairOffMatchesLegacySerialPath(t *testing.T) {
	run := func(repairCPUs int) Summary {
		rc := fastCfg(inject.Register, core.Microreset)
		rc.Recovery.Escalation.Audit = true
		rc.Recovery.RepairCPUs = repairCPUs
		c := Campaign{Base: rc, Runs: 4, Parallelism: 2, SeedBase: 9}
		s := c.Execute()
		s.Config.Recovery.RepairCPUs = 0
		return s
	}
	if a, b := run(0), run(1); !reflect.DeepEqual(a, b) {
		t.Fatalf("RepairCPUs=1 diverges from RepairCPUs=0:\n %+v\n %+v", a, b)
	}
}
