// Package hypercall models the hypervisor's request-handling machinery:
// hypercall dispatch, handler programs decomposed into injectable steps,
// the undo log used to mitigate non-idempotent hypercall retry (§IV), and
// multicall batching with per-component completion logging.
//
// Every handler is a Program — an ordered list of Steps, each with an
// instruction cost and a state mutation. The hypervisor core executes
// programs step by step, charging instructions to the CPU; the fault
// injector's second-level trigger fires between steps, so a fault lands at
// a specific point *inside* a handler with exactly the partial state a real
// mid-handler fault would leave. That decomposition is what makes
// hypercall retry, undo logging, and the paper's non-idempotence hazards
// mechanistic rather than statistical.
package hypercall

import "fmt"

// Op identifies a hypercall (or forwarded request) type.
type Op int

// Hypercall operations. SyscallForward is not a hypercall in Xen terms but
// flows through the same entry/retry machinery on x86-64 (§IV "Syscall
// retry"), so it shares the dispatch table.
const (
	OpMMUUpdate Op = iota + 1
	OpMemoryOp
	OpGrantTableOp
	OpEventChannelOp
	OpSchedOp
	OpSetTimerOp
	OpConsoleIO
	OpVCPUOp
	OpMulticall
	OpDomctl
	OpSyscallForward

	// HVM guests (full hardware virtualization, §VI-A) enter the
	// hypervisor through VM exits instead of PV hypercalls. The request
	// machinery — dispatch, instruction accounting, retry — is shared:
	// a VM exit is naturally retryable by re-executing the faulting
	// guest instruction.

	// OpEPTViolation is a nested-paging fault: the hypervisor populates
	// (or tears down) an EPT mapping, updating the frame's mapping
	// count — non-idempotent like mmu_update.
	OpEPTViolation
	// OpIOEmulation is an emulated device access: decode and emulate
	// the instruction (idempotent).
	OpIOEmulation

	numOps = int(OpIOEmulation)
)

// String returns the Xen-style name of the op.
func (o Op) String() string {
	switch o {
	case OpMMUUpdate:
		return "mmu_update"
	case OpMemoryOp:
		return "memory_op"
	case OpGrantTableOp:
		return "grant_table_op"
	case OpEventChannelOp:
		return "event_channel_op"
	case OpSchedOp:
		return "sched_op"
	case OpSetTimerOp:
		return "set_timer_op"
	case OpConsoleIO:
		return "console_io"
	case OpVCPUOp:
		return "vcpu_op"
	case OpMulticall:
		return "multicall"
	case OpDomctl:
		return "domctl"
	case OpSyscallForward:
		return "syscall_forward"
	case OpEPTViolation:
		return "ept_violation"
	case OpIOEmulation:
		return "io_emulation"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Sub-operation argument values (Args[SubOpArg]).
const (
	// mmu_update
	MMUPin   = 1
	MMUUnpin = 2
	// memory_op
	MemPopulate = 1
	MemRelease  = 2
	// grant_table_op
	GrantMap   = 1
	GrantUnmap = 2
	// sched_op
	SchedYield = 1
	SchedBlock = 2
	// domctl
	DomctlCreate  = 1
	DomctlDestroy = 2
	// ept_violation
	EPTPopulate = 1
	EPTUnmap    = 2
)

// SubOpArg is the Args index conventionally holding the sub-operation.
const SubOpArg = 0

// CreateSpec carries domain-creation parameters for OpDomctl/DomctlCreate.
type CreateSpec struct {
	ID       int
	Name     string
	MemPages int
	PinCPU   int
}

// Call is one request from a guest to the hypervisor.
type Call struct {
	Op   Op
	Dom  int // issuing domain
	VCPU int // issuing vCPU index within the domain

	// Args carries op-specific arguments (frame index, port, ...).
	Args [4]uint64

	// Create carries the spec for DomctlCreate.
	Create *CreateSpec

	// Batch holds the component calls of an OpMulticall.
	Batch []*Call

	// Completed is the multicall completion log: the number of component
	// calls that finished. Logged as each component completes so a
	// retried batch skips them ("fine-granularity batched hypercall
	// retry", §IV).
	Completed int

	// Seq is a per-run unique sequence number assigned at dispatch.
	Seq uint64

	// Done is set by the hypervisor core when the call completes cleanly.
	// It is the guest layer's recycling gate: a dispatched call whose Done
	// flag is still false on return is referenced by recovery machinery
	// (pause-deferred dispatch, a pending-retry record) and must not be
	// reused; a Done call is referenced by nothing and goes back to the
	// issuing world's free list. Multicall components are never marked
	// individually — they recycle with their batch when the outer call
	// completes.
	Done bool
}

// String formats the call for diagnostics.
func (c *Call) String() string {
	if c.Op == OpMulticall {
		return fmt.Sprintf("multicall[%d components, %d done] from d%d", len(c.Batch), c.Completed, c.Dom)
	}
	return fmt.Sprintf("%v(sub=%d) from d%dv%d", c.Op, c.Args[SubOpArg], c.Dom, c.VCPU)
}
