package campaign

import (
	"nilihype/internal/inject"
)

// MixedFaultCampaign runs one campaign per fault type over the same seed
// set and merges the shards into a single summary — the workload for the
// hybrid-escalation experiment, which compares mechanisms across the
// paper's full fault mix rather than a single fault type. Each fault type
// uses seeds SeedBase+1..SeedBase+runsPerFault, so two mechanisms given
// the same base configuration face identical fault scenarios.
func MixedFaultCampaign(base RunConfig, faults []inject.FaultType, runsPerFault, parallelism int) Summary {
	total := Summary{Config: base, FailReasons: make(map[string]int), SuccessByAttempt: make(map[int]int)}
	for _, f := range faults {
		rc := base
		rc.Fault = f
		c := Campaign{Base: rc, Runs: runsPerFault, Parallelism: parallelism}
		total.Merge(c.Execute())
	}
	total.Config = base
	return total
}
