package guest

import (
	"time"

	"nilihype/internal/hypercall"
)

// StartPrivVM begins the PrivVM's background management activity: light
// periodic housekeeping hypercalls from Dom0 (vCPU state polls, occasional
// console output). The PrivVM's vCPU is pinned to CPU 0 (§VI-A).
func (w *World) StartPrivVM() {
	w.schedulePrivTick()
}

const privTickPeriod = 5 * time.Millisecond

func (w *World) schedulePrivTick() {
	w.privTickLive = true
	w.H.Clock.After(privTickPeriod, "privvm-tick", w.privTickFn)
}

// privTick fires every housekeeping period (cached as w.privTickFn).
func (w *World) privTick() {
	if failed, _ := w.H.Failed(); failed {
		w.privTickLive = false
		return
	}
	w.H.WhenRunnable(w.privTickBodyFn)
}

// privTickBody is the tick's work, entered once the hypervisor is runnable
// (cached as w.privTickBodyFn).
func (w *World) privTickBody() {
	if w.privHung {
		// The PrivVM guest is hung: the management call that would have
		// been issued this period stalls forever. The tick chain dies
		// here; the management-call watchdog notices the silence.
		w.privTickLive = false
		return
	}
	d, err := w.H.Domain(0)
	if err != nil || d.Failed {
		w.privTickLive = false
		return
	}
	w.call(0, hypercall.OpVCPUOp, 0, [4]uint64{})
	if failed, _ := w.H.Failed(); failed {
		w.privTickLive = false
		return
	}
	// The console daemon drains the hypervisor ring; nothing records the
	// output, so the messages are discarded without rendering.
	w.H.Cons.Discard()
	if w.rng.IntN(20) == 0 {
		w.call(0, hypercall.OpConsoleIO, 0, [4]uint64{})
	}
	if failed, _ := w.H.Failed(); failed {
		w.privTickLive = false
		return
	}
	w.schedulePrivTick()
}

// CrashPrivVM fails Dom0 outright: the domain is gone as a management
// endpoint and every management hypercall fails fast. The PrivVM-crash
// fault class lands here.
func (w *World) CrashPrivVM(reason string) {
	if d, err := w.H.Domain(0); err == nil {
		d.Fail(reason)
	}
}

// HangPrivVM wedges the PrivVM guest: management hypercalls stall
// mid-flight (including during an in-progress recovery) without any
// hypervisor-visible structural damage. The PrivVM-hang fault class lands
// here.
func (w *World) HangPrivVM() { w.privHung = true }

// PrivVMHung reports whether the PrivVM guest is hung.
func (w *World) PrivVMHung() bool { return w.privHung }

// ResumePrivVM restores PrivVM management service after the PrivVM-restart
// recovery rung rebooted Dom0: the hang flag clears and the housekeeping
// tick chain re-arms if the failure killed it. The recovery engine's
// OnPrivVMRestart hook calls this — the world-level half of "reboot the
// PrivVM from its boot image".
func (w *World) ResumePrivVM() {
	w.privHung = false
	if !w.privTickLive {
		w.schedulePrivTick()
	}
}

// PrivCreateDomain issues a domctl domain-creation hypercall from the
// PrivVM — the post-recovery functionality check of the 3AppVM setup ("a
// third AppVM is created and it runs BlkBench", §VI-A). It returns false
// if the PrivVM is unable to issue the request.
func (w *World) PrivCreateDomain(spec hypercall.CreateSpec) bool {
	d, err := w.H.Domain(0)
	if err != nil || d.Failed || w.privHung {
		return false
	}
	w.dispatch(0, &hypercall.Call{
		Op:     hypercall.OpDomctl,
		Dom:    0,
		Args:   [4]uint64{hypercall.DomctlCreate},
		Create: &spec,
	})
	_, err = w.H.Domain(spec.ID)
	return err == nil
}

// PrivVMFailed reports whether Dom0 has failed — one of the paper's top
// three recovery-failure causes (§VII-A). A hung PrivVM guest counts: it
// cannot provide management service even though its hypervisor-side
// structures are intact.
func (w *World) PrivVMFailed() bool {
	if w.privHung {
		return true
	}
	d, err := w.H.Domain(0)
	return err != nil || d.Failed
}
