package campaign

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"nilihype/internal/core"
	"nilihype/internal/inject"
)

// TestRunHorizonCoversLargeMemoryMicroreboot is the regression for the
// fixed BenchDuration+2s horizon: with a microreboot at large memory the
// post-recovery BlkBench check could be cut off mid-run, misclassifying a
// successful recovery as "new VM creation failed". The derived horizon
// must cover the worst-case chain (latest injection + detection + recovery
// + new-VM check) that the old formula did not.
func TestRunHorizonCoversLargeMemoryMicroreboot(t *testing.T) {
	rc := RunConfig{
		Setup:         ThreeAppVM,
		BenchDuration: 6 * time.Second,
		MemoryMB:      64 * 1024,
		Recovery:      core.Config{Mechanism: core.Microreboot, Enhancements: core.AllEnhancements},
	}
	frames := rc.MemoryMB * (1024 * 1024 / 4096)
	// Minimum chain for the BlkBench verdict to land: injection as late
	// as B/2, detection, worst-case recovery, VM creation delay, and the
	// BlkBench run itself.
	required := rc.BenchDuration/2 + detectionSlack +
		rc.Recovery.WorstCaseLatency(frames) + newVMDelay + rc.BenchDuration/3
	old := rc.BenchDuration + legacyHorizonPad
	if old >= required {
		t.Fatalf("old horizon %v already covers the chain %v — regression scenario lost", old, required)
	}
	if h := runHorizon(rc); h < required {
		t.Fatalf("runHorizon = %v, below required chain %v", h, required)
	}
}

// TestRunHorizonKeepsLegacyFloor locks the floor: short-recovery
// configurations keep the exact historical BenchDuration+2s horizon, so
// every previously published timeline is unchanged.
func TestRunHorizonKeepsLegacyFloor(t *testing.T) {
	for _, rc := range []RunConfig{
		{}, // all defaults: 3s bench, 1 GB, microreset
		fastCfg(inject.Failstop, core.Microreset),
		fastCfg(inject.Failstop, core.Microreboot),
	} {
		want := rc.withDefaults().BenchDuration + legacyHorizonPad
		if h := runHorizon(rc); h != want {
			t.Fatalf("runHorizon(%+v) = %v, want legacy floor %v", rc.withDefaults(), h, want)
		}
	}
	// The hybrid ladder at default sizes needs more than the floor: two
	// detections plus both rungs plus a grace window do not fit in 2s of
	// pad alongside the post-recovery check.
	hybrid := RunConfig{Recovery: core.HybridConfig()}
	if h := runHorizon(hybrid); h <= hybrid.withDefaults().BenchDuration+legacyHorizonPad {
		t.Fatalf("hybrid horizon %v not extended past the floor", h)
	}
}

// TestLongBenchMicrorebootRun is the end-to-end half of the horizon
// regression: a BenchDuration >= 6s run under microreboot completes its
// post-recovery checks instead of being cut off by the horizon.
func TestLongBenchMicrorebootRun(t *testing.T) {
	rc := fastCfg(inject.Failstop, core.Microreboot)
	rc.BenchDuration = 6 * time.Second
	r := Run(rc)
	if !r.Detected || !r.Recovered || r.FailReason != "" {
		t.Fatalf("detected=%v recovered=%v fail=%q", r.Detected, r.Recovered, r.FailReason)
	}
	if !r.NewVMOK || !r.Success {
		t.Fatalf("newVMOK=%v success=%v — post-recovery check cut off?", r.NewVMOK, r.Success)
	}
}

// TestClassifyFailureRootCauseWins pins the bucket ordering: a hypervisor
// FailReason is the root cause, and consequence flags (PrivVM down, new VM
// creation failed) must not shadow it.
func TestClassifyFailureRootCauseWins(t *testing.T) {
	tests := []struct {
		name string
		r    Result
		want string
	}{
		{"corruption beats PrivVM", Result{
			FailReason: "post-recovery failure: domain list corrupted", PrivVMFailed: true},
			"corrupted data structure"},
		{"assert beats PrivVM", Result{
			FailReason: "ASSERT !in_irq()", PrivVMFailed: true},
			"post-recovery assertion"},
		{"hang beats PrivVM and NewVM", Result{
			FailReason: "cpu3 waiting forever on lock", PrivVMFailed: true},
			"post-recovery hang"},
		{"other hv failure beats NewVM", Result{
			FailReason: "unexpected state", NewVMOK: false},
			"other hypervisor failure"},
		{"not-invoked beats everything", Result{
			FailReason: "recovery routine failed to be invoked (corrupted path)", PrivVMFailed: true},
			"recovery routine not invoked"},
		{"PrivVM beats NewVM when no FailReason", Result{
			PrivVMFailed: true, NewVMOK: false},
			"PrivVM failed"},
	}
	for _, tt := range tests {
		if got := classifyFailure(tt.r); got != tt.want {
			t.Errorf("%s: classifyFailure = %q, want %q", tt.name, got, tt.want)
		}
	}
}

// TestMeasureLatencyCfgRetrySeedCap: a configuration that can never
// recover must exhaust the seed-bumping retry and report the cap, wrapping
// ErrLatencyRunFailed for callers that match on it.
func TestMeasureLatencyCfgRetrySeedCap(t *testing.T) {
	// A microreset without the IRQ-count enhancement always fails:
	// detection happens in an exception/NMI context, so the stale
	// local_irq_count trips the first post-resume assertion (§V-A). The
	// mask must stay nonzero — Enhancements == 0 is auto-upgraded.
	cfg := core.Config{Mechanism: core.Microreset,
		Enhancements: core.AllEnhancements &^ core.EnhClearIRQCount}
	_, err := MeasureLatencyCfg(cfg, 512, 5)
	if err == nil {
		t.Fatal("unrecoverable configuration reported success")
	}
	if !errors.Is(err, ErrLatencyRunFailed) {
		t.Fatalf("err = %v, want ErrLatencyRunFailed in the chain", err)
	}
	if !strings.Contains(err.Error(), "8 seeds") || !strings.Contains(err.Error(), "starting at 5") {
		t.Fatalf("err = %v, want the retry cap and seed base reported", err)
	}
}

func TestSummaryMergeAccumulates(t *testing.T) {
	a := Summary{
		Runs: 5, DetectedCount: 4, RecoverySuccess: 3, NonManifested: 1,
		EscalatedRuns: 1, SuccessLatency: 60 * time.Millisecond,
		SuccessByAttempt: map[int]int{1: 2, 2: 1},
		FailReasons:      map[string]int{"post-recovery hang": 1},
	}
	b := Summary{
		Runs: 3, DetectedCount: 3, RecoverySuccess: 3, SDCCount: 0,
		EscalatedRuns: 2, SuccessLatency: 40 * time.Millisecond,
		SuccessByAttempt: map[int]int{2: 3},
		FailReasons:      map[string]int{},
	}
	a.Merge(b)
	if a.Runs != 8 || a.DetectedCount != 7 || a.RecoverySuccess != 6 || a.EscalatedRuns != 3 {
		t.Fatalf("counters wrong after merge: %+v", a)
	}
	if a.SuccessLatency != 100*time.Millisecond || a.MeanSuccessLatency() != 100*time.Millisecond/6 {
		t.Fatalf("latency wrong after merge: %v", a.SuccessLatency)
	}
	if !reflect.DeepEqual(a.SuccessByAttempt, map[int]int{1: 2, 2: 4}) {
		t.Fatalf("attempt histogram wrong: %v", a.SuccessByAttempt)
	}
}

// TestHybridCampaignDeterministicAcrossParallelism is the escalation
// determinism regression: a hybrid campaign's Summary — including the
// escalation counters — must be bit-identical at any parallelism level.
func TestHybridCampaignDeterministicAcrossParallelism(t *testing.T) {
	base := fastCfg(inject.Code, core.Microreset)
	base.Recovery = core.HybridConfig()
	var summaries []Summary
	for _, par := range []int{1, 4, 8} {
		c := Campaign{Base: base, Runs: 8, Parallelism: par}
		summaries = append(summaries, c.Execute())
	}
	for i := 1; i < len(summaries); i++ {
		if !reflect.DeepEqual(summaries[0], summaries[i]) {
			t.Fatalf("hybrid summary differs across parallelism:\n par=1: %+v\n other: %+v",
				summaries[0], summaries[i])
		}
	}
}

func TestMixedFaultCampaignMergesShards(t *testing.T) {
	base := fastCfg(inject.Failstop, core.Microreset)
	base.Recovery = core.HybridConfig()
	faults := []inject.FaultType{inject.Failstop, inject.Register}
	s := MixedFaultCampaign(base, faults, 3, 2)
	if s.Runs != len(faults)*3 {
		t.Fatalf("Runs = %d, want %d", s.Runs, len(faults)*3)
	}
	if !reflect.DeepEqual(s.Config, base) {
		t.Fatalf("Config not restored to the base: %+v", s.Config)
	}
	if s.NonManifested+s.SDCCount+s.DetectedCount != s.Runs {
		t.Fatalf("outcome counts do not partition the runs: %+v", s)
	}
	total := 0
	for _, n := range s.SuccessByAttempt {
		total += n
	}
	if total != s.RecoverySuccess {
		t.Fatalf("attempt histogram sums to %d, want RecoverySuccess %d", total, s.RecoverySuccess)
	}
}
