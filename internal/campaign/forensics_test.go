package campaign

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"nilihype/internal/core"
	"nilihype/internal/health"
	"nilihype/internal/inject"
)

func TestCauseFromReason(t *testing.T) {
	for _, tt := range []struct{ reason, want string }{
		{"", ""},
		{"recovery routine failed to be invoked (corrupted hypervisor state)", RootCausePathCorrupted},
		{"PrivVM restart failed: boot image corrupted", RootCausePrivVMLost},
		{"mgmt watchdog: no PrivVM management-call completions", RootCausePrivVMLost},
		{"post-recovery failure: reused heap object corrupted", RootCauseReusedHeapObject},
		{"corrupted static state reused by microreset", RootCauseStaticStateReuse},
		{"post-recovery hang: inconsistent page frame descriptors hit by mm path", RootCausePFDescriptorHang},
		{"irq-delivery: IO-APIC redirection table diverges from software copy", RootCauseDeviceRouteLoss},
		{"ASSERT(frame refcount) failed", RootCausePostRecoveryAssertion},
		{"cpu0 spinning on lock", RootCausePostRecoveryHang},
		{"something unprecedented", RootCauseOtherHypervisorFailure},
	} {
		if got := causeFromReason(tt.reason); got != tt.want {
			t.Errorf("causeFromReason(%q) = %q, want %q", tt.reason, got, tt.want)
		}
	}
}

func TestCleanRunHasNoRootCause(t *testing.T) {
	r := Run(fastCfg(inject.Failstop, core.Microreset))
	if !r.Success {
		t.Fatalf("reference seed no longer succeeds: %+v", r)
	}
	if r.RootCause != "" || r.Journal != nil || r.Windows != nil {
		t.Errorf("clean run carries forensics: cause=%q journal=%d windows=%d",
			r.RootCause, len(r.Journal), len(r.Windows))
	}
	if _, ok := AssembleBundle(r); ok {
		t.Error("clean run assembled a bundle")
	}
}

// TestRootCauseAttribution pins one wrong-run seed per fault class
// (discovered by scanning; re-hunt if the fault distributions drift) and
// asserts the classifier names the class-appropriate root cause.
func TestRootCauseAttribution(t *testing.T) {
	for _, tt := range []struct {
		name string
		rc   RunConfig
		want string
	}{
		{
			// Failstop seed 19 under microreset: the recovery resumes but
			// a post-recovery assertion trips.
			name: "failstop",
			rc: func() RunConfig {
				rc := fastCfg(inject.Failstop, core.Microreset)
				rc.Seed = 19
				return rc
			}(),
			want: RootCausePostRecoveryAssertion,
		},
		{
			// PrivVM crash under the hybrid ladder: no rung restores
			// management service.
			name: "privvm-crash",
			rc: func() RunConfig {
				rc := fastCfg(inject.PrivVMCrash, core.Microreset)
				rc.Recovery = core.HybridConfig()
				rc.Seed = 1
				return rc
			}(),
			want: RootCausePrivVMLost,
		},
		{
			// IO-APIC corruption under plain microreset (no
			// reprogram-from-boot enhancement in the ladder): routes stay
			// lost.
			name: "ioapic",
			rc: func() RunConfig {
				rc := fastCfg(inject.DeviceIOAPIC, core.Microreset)
				rc.Seed = 3
				return rc
			}(),
			want: RootCauseDeviceRouteLoss,
		},
	} {
		r := Run(tt.rc)
		if r.RootCause != tt.want {
			t.Errorf("%s: root cause = %q, want %q (reason %q)", tt.name, r.RootCause, tt.want, r.FailReason)
		}
		if len(r.Journal) == 0 {
			t.Errorf("%s: wrong run has no journal", tt.name)
		}
		last := r.Journal[len(r.Journal)-1]
		if last.Kind != "disposition" {
			t.Errorf("%s: journal does not end in a disposition: %v", tt.name, last)
		}

		b, ok := AssembleBundle(r)
		if !ok {
			t.Fatalf("%s: wrong run assembled no bundle", tt.name)
		}
		if b.RootCause != tt.want || b.Seed != r.Seed || len(b.Journal) != len(r.Journal) {
			t.Errorf("%s: bundle mismatch: %+v", tt.name, b)
		}
		// Bundles must survive JSON (the postmortem tool's export path).
		data, err := json.Marshal(b)
		if err != nil {
			t.Fatalf("%s: bundle not marshalable: %v", tt.name, err)
		}
		var back Bundle
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: bundle not unmarshalable: %v", tt.name, err)
		}
		if back.RootCause != b.RootCause || len(back.Journal) != len(b.Journal) {
			t.Errorf("%s: bundle JSON round-trip lost data", tt.name)
		}
		if !strings.Contains(b.Format(), "root cause: "+tt.want) {
			t.Errorf("%s: formatted bundle missing root cause", tt.name)
		}
	}
}

// TestDegradedRunCapturesForensics is the degraded-verdict capture
// contract: a run that recovers only by sacrificing an AppVM — neither
// failed nor escalated — still carries the flight tail, journal, and a
// degraded-service root cause. Seed 595 is a known degraded-verdict run
// (same hunt region as TestCorrelatedReinjectionIsDeterministic).
func TestDegradedRunCapturesForensics(t *testing.T) {
	var r Result
	found := false
	for seed := uint64(560); seed <= 700 && !found; seed++ {
		rc := adversarialCfg()
		rc.BurstWindow = 0
		rc.BurstFault = 0
		rc.FaultDuringRecovery = false
		rc.CorrelatedReinjection = true
		rc.Seed = seed
		if r = Run(rc); len(r.SacrificedVMs) > 0 && r.Success && !r.Escalated {
			found = true
		}
	}
	if !found {
		t.Skip("no successful unescalated degraded-verdict run in the hunt region")
	}
	if len(r.Flight) == 0 {
		t.Error("degraded run captured no flight tail")
	}
	if len(r.Journal) == 0 {
		t.Error("degraded run captured no journal")
	}
	if r.RootCause != RootCauseDegradedService {
		t.Errorf("degraded run root cause = %q, want %q", r.RootCause, RootCauseDegradedService)
	}
}

// TestCampaignRootCauseAndHealthDeterminism: the new Summary observability
// fields — RootCauses, per-class RootCauses, HealthSamples, and the
// replayed health report — are bit-identical across parallelism.
func TestCampaignRootCauseAndHealthDeterminism(t *testing.T) {
	mk := func(par int) Summary {
		rc := fastCfg(inject.DeviceIOAPIC, core.Microreset)
		c := Campaign{Base: rc, Runs: 12, SeedBase: 0, Parallelism: par}
		return c.Execute()
	}
	a, b := mk(1), mk(4)
	if !reflect.DeepEqual(a.RootCauses, b.RootCauses) {
		t.Fatalf("RootCauses differ: %v vs %v", a.RootCauses, b.RootCauses)
	}
	if !reflect.DeepEqual(a.HealthSamples, b.HealthSamples) {
		t.Fatalf("HealthSamples differ across parallelism")
	}
	if len(a.RootCauses) == 0 {
		t.Fatal("ioapic campaign produced no root causes (distribution drift?)")
	}
	ra, rb := a.HealthReport(health.Config{}), b.HealthReport(health.Config{})
	if !reflect.DeepEqual(ra, rb) {
		t.Fatalf("health reports differ:\n%+v\nvs\n%+v", ra, rb)
	}
	if ra.Episodes == 0 {
		t.Fatal("health report saw no episodes")
	}

	// Root-cause totals reconcile: Summary-level counts equal the sum of
	// the per-class breakdowns.
	classTotals := map[string]int{}
	for _, fc := range a.FaultClasses {
		for k, v := range fc.RootCauses {
			classTotals[k] += v
		}
	}
	if !reflect.DeepEqual(classTotals, a.RootCauses) {
		t.Fatalf("root-cause matrix does not reconcile: classes %v vs total %v", classTotals, a.RootCauses)
	}

	matrix := a.FormatRootCauseMatrix()
	if !strings.Contains(matrix, "root cause") || !strings.Contains(matrix, "ioapic") {
		t.Errorf("unexpected matrix:\n%s", matrix)
	}
}
