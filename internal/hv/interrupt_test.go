package hv

import (
	"strings"
	"testing"
	"time"

	"nilihype/internal/hw"
)

// TestTimerIRQWindowHazard verifies the §V-A structure of the timer
// interrupt handler: from entry until the reprogram step the APIC is
// genuinely unarmed, so a fault there leaves a dead timer; after the
// reprogram step the handler is hazardless.
func TestTimerIRQWindowHazard(t *testing.T) {
	h, clk := newBooted(t)
	type obs struct {
		step  string
		armed bool
	}
	var seen []obs
	h.ArmInjection(1<<40, func(InjectionPoint) (InjectAction, string) { return ActionContinue, "" })
	// Observe the APIC state at every step of the first tick on CPU 3 by
	// wrapping the injector? Simpler: snapshot around RunUntil with a
	// probe: replace injection with a step-level probe via PanicAtNextStep
	// is destructive. Instead drive one IRQ manually.
	h.DisarmInjection()
	cpu := 3
	// Let the tick fire naturally and capture states via a custom probe
	// program: build the IRQ program and execute steps by hand.
	clk.RunUntil(9 * time.Millisecond)
	// Force the APIC to fire now.
	h.Machine.CPU(cpu).ArmTimer(clk.Now())
	// Intercept: build the program directly (the tick is due at 10ms,
	// not yet; so the heap has pending timers and reprogram will re-arm).
	prog := h.buildTimerIRQ(cpu)
	pc := h.PerCPU(cpu)
	_ = pc
	h.Machine.CPU(cpu).DisarmTimer() // the fire consumed the one-shot
	for i := range prog {
		seen = append(seen, obs{prog[i].Name, h.Machine.CPU(cpu).TimerArmed()})
		if err := prog[i].Do(pc.Env, &prog[i]); err != nil {
			t.Fatalf("step %q: %v", prog[i].Name, err)
		}
	}
	reprogrammed := false
	for _, o := range seen {
		switch {
		case o.step == "reprogram_apic":
			if o.armed {
				t.Fatal("APIC armed before the reprogram step (no window)")
			}
			reprogrammed = true
		case reprogrammed && strings.HasPrefix(o.step, "softirq"):
			if !o.armed {
				t.Fatalf("APIC unarmed during %q (softirq must be post-window)", o.step)
			}
		}
	}
	if !reprogrammed {
		t.Fatal("no reprogram step in timer IRQ program")
	}
	if h.IRQCount(cpu) != 0 {
		t.Fatal("irq count unbalanced after manual IRQ run")
	}
}

// TestTimerIRQHousekeepingIsHazardless verifies that the softirq
// housekeeping steps carry no locks and no pending call — the class of
// injection points that recovers with only Clear-IRQ-count (the 16% rung
// of Table I).
func TestTimerIRQHousekeepingIsHazardless(t *testing.T) {
	h, clk := newBooted(t)
	var pt InjectionPoint
	captured := false
	var probe InjectFunc
	probe = func(p InjectionPoint) (InjectAction, string) {
		if strings.HasPrefix(p.StepName, "softirq_") {
			pt = p
			captured = true
			return ActionContinue, ""
		}
		h.ArmInjection(0, probe)
		return ActionContinue, ""
	}
	h.ArmInjection(0, probe)
	clk.RunUntil(clk.Now() + 20*time.Millisecond)
	if !captured {
		t.Fatal("no injection point landed in housekeeping")
	}
	if pt.Call != nil {
		t.Fatal("housekeeping step has a pending call")
	}
	if len(pt.HeldLocks) != 0 {
		t.Fatalf("housekeeping step holds locks: %v", pt.HeldLocks)
	}
	if !pt.InIRQ {
		t.Fatal("housekeeping step not marked in-IRQ")
	}
}

// TestDeviceIRQInServiceWindow verifies that a discard between the device
// read and the EOI leaves the IO-APIC line blocked — the hazard the
// recovery-time AckAll exists for.
func TestDeviceIRQInServiceWindow(t *testing.T) {
	h, clk := newBooted(t)
	addAppVM(t, h, 1, 1)
	h.SetPanicHook(func(int, string) {})
	// A persistent step probe: re-arms itself until it reaches the eoi
	// step of a block-device IRQ, then wedges the CPU there.
	fired := false
	var probe InjectFunc
	probe = func(p InjectionPoint) (InjectAction, string) {
		if p.Activity == "irq:block" && p.StepName == "eoi" {
			fired = true
			return ActionWedge, ""
		}
		h.ArmInjection(0, probe)
		return ActionContinue, ""
	}
	h.ArmInjection(0, probe)
	h.Machine.Block().Submit(hw.BlockRequest{Owner: 1, Sectors: 1})
	clk.RunUntil(clk.Now() + 5*time.Millisecond)
	if !fired {
		t.Fatal("probe never landed on the eoi step")
	}
	if !h.Machine.IOAPIC().InService(hw.IRQBlock) {
		t.Fatal("line not in service after wedge before EOI")
	}
	// The recovery mechanism clears it.
	h.Machine.IOAPIC().AckAll()
	if h.Machine.IOAPIC().InService(hw.IRQBlock) {
		t.Fatal("AckAll did not clear the line")
	}
}
