// Command hyperrecover-bench measures campaign execution throughput and
// records the result in BENCH_campaign.json, keeping the original
// baseline and a history of prior measurements so regressions are visible
// in review.
//
// The measurement is the shared fixed configuration from
// campaign.ThroughputBenchConfig (the same one BenchmarkCampaignThroughput
// uses): a 1AppVM/UnixBench failstop campaign under Microreset with all
// enhancements. Reported metrics are runs/sec (wall clock), heap
// allocations per run, and KB allocated per run.
//
// Examples:
//
//	hyperrecover-bench                      # measure, update BENCH_campaign.json
//	hyperrecover-bench -runs 100 -dry-run   # measure only, print, no file update
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"nilihype/internal/campaign"
)

// Measurement is one recorded benchmark result.
type Measurement struct {
	Date         string  `json:"date"`
	GoVersion    string  `json:"go_version"`
	Runs         int     `json:"runs"`
	RunsPerSec   float64 `json:"runs_per_sec"`
	AllocsPerRun int64   `json:"allocs_per_run"`
	KBPerRun     int64   `json:"kb_per_run"`
	Note         string  `json:"note,omitempty"`
}

// File is the on-disk BENCH_campaign.json schema. Baseline is written
// once (the first recorded measurement) and preserved forever after;
// Current is the latest measurement; History holds the superseded
// Currents in order.
type File struct {
	Benchmark string        `json:"benchmark"`
	Config    string        `json:"config"`
	Baseline  Measurement   `json:"baseline"`
	Current   Measurement   `json:"current"`
	History   []Measurement `json:"history,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hyperrecover-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runs     = flag.Int("runs", 24, "injection runs per measurement")
		parallel = flag.Int("parallel", 0, "concurrent runs (0 = GOMAXPROCS)")
		out      = flag.String("out", "BENCH_campaign.json", "result file to update")
		note     = flag.String("note", "", "annotation stored with the measurement")
		dryRun   = flag.Bool("dry-run", false, "measure and print without updating the file")
	)
	flag.Parse()
	if *runs <= 0 {
		return fmt.Errorf("-runs must be positive")
	}

	m, err := measure(*runs, *parallel)
	if err != nil {
		return err
	}
	m.Note = *note
	fmt.Printf("campaign-throughput: %d runs, %.2f runs/sec, %d allocs/run, %d KB/run\n",
		m.Runs, m.RunsPerSec, m.AllocsPerRun, m.KBPerRun)
	if *dryRun {
		return nil
	}

	f := File{
		Benchmark: "campaign-throughput",
		Config:    "1AppVM/UnixBench/Failstop, Microreset+AllEnhancements, logging on, 2s virtual",
	}
	if prev, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(prev, &f); err != nil {
			return fmt.Errorf("parse existing %s: %w", *out, err)
		}
		// Keep the original baseline; retire the old current to history.
		if f.Current.Date != "" {
			f.History = append(f.History, f.Current)
		}
	} else {
		f.Baseline = m
	}
	f.Current = m

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("updated %s (baseline %.2f runs/sec / %d allocs/run)\n",
		*out, f.Baseline.RunsPerSec, f.Baseline.AllocsPerRun)
	return nil
}

// measure executes one fixed-configuration campaign and returns the
// throughput metrics. It mirrors BenchmarkCampaignThroughput: a GC fence
// before and after brackets the MemStats delta so the per-run numbers are
// not polluted by unrelated garbage.
func measure(runs, parallel int) (Measurement, error) {
	c := campaign.Campaign{
		Base:        campaign.ThroughputBenchConfig(),
		Runs:        runs,
		Parallelism: parallel,
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	s := c.Execute()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if s.Runs != runs {
		return Measurement{}, fmt.Errorf("campaign ran %d of %d runs", s.Runs, runs)
	}
	return Measurement{
		Date:         time.Now().UTC().Format("2006-01-02"),
		GoVersion:    runtime.Version(),
		Runs:         runs,
		RunsPerSec:   float64(runs) / elapsed.Seconds(),
		AllocsPerRun: int64(after.Mallocs-before.Mallocs) / int64(runs),
		KBPerRun:     int64(after.TotalAlloc-before.TotalAlloc) / int64(runs) / 1024,
	}, nil
}
