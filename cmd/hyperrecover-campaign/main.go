// Command hyperrecover-campaign runs fault-injection campaigns and
// reports successful-recovery rates (Figure 2) and injection-outcome
// breakdowns (§VII-A).
//
// Examples:
//
//	hyperrecover-campaign -mechanism nilihype -fault register -runs 700
//	hyperrecover-campaign -mechanism rehype -fault code -runs 400
//	hyperrecover-campaign -all -runs 300          # full Figure 2 grid
//	hyperrecover-campaign -all -paper             # paper-scale campaign sizes
//	hyperrecover-campaign -runs 2000 -shards 8    # 8 worker processes
//
// With -shards N the campaign is split into N contiguous seed-range shards,
// each executed by a worker subprocess (this binary re-execed in a hidden
// -shard-worker mode), and the shard summaries are merged — bit-identical
// to the single-process result, but scaling across cores without sharing a
// Go runtime.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"nilihype/internal/campaign"
	"nilihype/internal/core"
	"nilihype/internal/guest"
	"nilihype/internal/inject"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hyperrecover-campaign:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mechName   = flag.String("mechanism", "nilihype", "recovery mechanism: nilihype | rehype | checkpoint | privvm-restart | hybrid | full-ladder")
		faultStr   = flag.String("fault", "failstop", "fault type: failstop | register | code | privvm-crash | privvm-hang | ioapic")
		setupStr   = flag.String("setup", "3appvm", "target system: 1appvm | 3appvm")
		workload   = flag.String("workload", "unixbench", "1AppVM benchmark: blkbench | unixbench | netbench")
		runs       = flag.Int("runs", 300, "number of injection runs")
		duration   = flag.Duration("duration", 3*time.Second, "benchmark duration (virtual time)")
		logging    = flag.Bool("logging", true, "enable §IV retry-mitigation logging (off = NiLiHype*)")
		hvm        = flag.Bool("hvm", false, "run AppVMs under full hardware virtualization (§VI-A)")
		all        = flag.Bool("all", false, "run the full Figure 2 grid (both mechanisms, all fault types)")
		traceRun   = flag.Uint64("trace-run", 0, "run a single seed and print its recovery timeline instead of a campaign")
		paper      = flag.Bool("paper", false, "paper-scale campaigns (1000/5000/2000 runs, 24s benchmarks)")
		parallel   = flag.Int("parallel", 0, "concurrent runs per process (0 = GOMAXPROCS)")
		repairCPUs = flag.Int("repair-cpus", 0, "partition non-reboot repair+audit into recovery domains over this many CPUs (0/1 = serial; implies audit)")
		serialExec = flag.Bool("serial-repair-exec", false, "execute the partitioned repair plan on one goroutine (equivalence baseline; identical results)")
		shards     = flag.Int("shards", 0, "split the campaign across this many worker processes (0 = in-process)")
		shardTO    = flag.Duration("shard-timeout", 30*time.Minute, "per-shard worker deadline (with -shards)")
		worker     = flag.Bool("shard-worker", false, "internal: run as a shard worker (spec on stdin, summary on stdout)")
		matrix     = flag.Bool("fault-matrix", false, "run the E12 per-fault-class recovery matrix (all classes × hybrid vs full ladder)")
	)
	flag.Parse()

	if *worker {
		return campaign.RunShardWorker(os.Stdin, os.Stdout)
	}

	setup, err := parseSetup(*setupStr)
	if err != nil {
		return err
	}
	wl, err := parseWorkload(*workload)
	if err != nil {
		return err
	}

	benchDur := *duration
	if *paper {
		benchDur = 24 * time.Second
	}

	// recoveryCfg builds the per-run recovery config, folding in the
	// recovery-domain flags: partitioned repair needs the audit gate, since
	// the domain walk is the audit.
	withDomainFlags := func(rc core.Config) core.Config {
		if *repairCPUs > 1 {
			rc.RepairCPUs = *repairCPUs
			rc.SerialRepairExec = *serialExec
			rc.Escalation.Audit = true
		}
		return rc
	}
	recoveryCfg := func(m core.Mechanism) core.Config {
		return withDomainFlags(core.Config{Mechanism: m, Enhancements: core.AllEnhancements})
	}

	if *matrix {
		return execFaultMatrix(setup, wl, *logging, *hvm, benchDur, *runs, *parallel)
	}

	// Ladder presets name a whole escalating Config rather than a single
	// mechanism; resolve them before the single-mechanism parse.
	mechCfg, mechIsLadder := parseLadder(*mechName)
	if mechIsLadder {
		mechCfg = withDomainFlags(mechCfg)
	}
	var mech core.Mechanism
	if !mechIsLadder {
		mech, err = parseMechanism(*mechName)
		if err != nil {
			return err
		}
	}
	cfgFor := func(m core.Mechanism) core.Config {
		if mechIsLadder {
			return mechCfg
		}
		return recoveryCfg(m)
	}

	execOne := func(m core.Mechanism, ft inject.FaultType, n int) error {
		c := campaign.Campaign{
			Base: campaign.RunConfig{
				Setup:         setup,
				Fault:         ft,
				Workload:      wl,
				Logging:       *logging,
				HVM:           *hvm,
				Recovery:      cfgFor(m),
				BenchDuration: benchDur,
			},
			Runs:        n,
			Parallelism: *parallel,
		}
		if *shards > 0 {
			return execSharded(c, *shards, *shardTO)
		}
		fmt.Print(c.Execute().Format())
		fmt.Println()
		return nil
	}

	if *traceRun > 0 {
		ft, err := parseFault(*faultStr)
		if err != nil {
			return err
		}
		r := campaign.Run(campaign.RunConfig{
			Seed:          *traceRun,
			Setup:         setup,
			Fault:         ft,
			Workload:      wl,
			Logging:       *logging,
			HVM:           *hvm,
			Recovery:      cfgFor(mech),
			BenchDuration: benchDur,
			TraceCapacity: 4096,
		})
		fmt.Printf("seed %d: outcome=%v success=%v noVMF=%v fail=%q\n",
			r.Seed, r.Outcome, r.Success, r.NoVMF, r.FailReason)
		fmt.Println("recovery timeline (panic/spin/wedge/discard/retry/drop events):")
		for _, line := range r.Trace {
			for _, kind := range []string{" panic ", " spin ", " wedge ", " discard ", " retry ", " drop "} {
				if strings.Contains(line, kind) {
					fmt.Println(" ", line)
					break
				}
			}
		}
		return nil
	}

	if *all {
		for _, m := range []core.Mechanism{core.Microreset, core.Microreboot} {
			for _, ft := range []inject.FaultType{inject.Failstop, inject.Register, inject.Code} {
				n := *runs
				if *paper {
					n = map[inject.FaultType]int{
						inject.Failstop: 1000, inject.Register: 5000, inject.Code: 2000,
					}[ft]
				}
				if err := execOne(m, ft, n); err != nil {
					return err
				}
			}
		}
		return nil
	}

	ft, err := parseFault(*faultStr)
	if err != nil {
		return err
	}
	n := *runs
	if *paper {
		n = map[inject.FaultType]int{
			inject.Failstop: 1000, inject.Register: 5000, inject.Code: 2000,
		}[ft]
	}
	return execOne(mech, ft, n)
}

// execFaultMatrix runs the E12 per-fault-class recovery matrix: every
// fault class under the hybrid ladder (microreset→microreboot) and the
// full ladder (…→PrivVM restart), then prints one matrix row per
// class×ladder cell plus the PrivVM-fault comparison the full ladder's
// extra rung exists for.
func execFaultMatrix(setup campaign.Setup, wl guest.Kind, logging, hvm bool, benchDur time.Duration, runs, parallel int) error {
	ladders := []struct {
		name string
		cfg  core.Config
	}{
		{"hybrid", core.HybridConfig()},
		{"full-ladder", core.FullLadderConfig()},
	}
	faults := []inject.FaultType{
		inject.Failstop, inject.Register, inject.Code,
		inject.PrivVMCrash, inject.PrivVMHang, inject.DeviceIOAPIC,
	}
	fmt.Printf("== per-fault-class recovery matrix (n=%d per cell) ==\n", runs)
	fmt.Printf("%-14s %-12s %-9s %-9s %-16s %-14s %s\n",
		"class", "ladder", "detected", "success", "rate",
		"mean-latency", "audit r/d/e")
	// privSuccess tallies recovered PrivVM-fault runs per ladder: the
	// full ladder must recover strictly more of them (E12 acceptance).
	privSuccess := map[string]int{}
	for _, ft := range faults {
		for _, lad := range ladders {
			c := campaign.Campaign{
				Base: campaign.RunConfig{
					Setup:         setup,
					Fault:         ft,
					Workload:      wl,
					Logging:       logging,
					HVM:           hvm,
					Recovery:      lad.cfg,
					BenchDuration: benchDur,
				},
				Runs:        runs,
				Parallelism: parallel,
			}
			s := c.Execute()
			for class, fc := range s.FaultClasses {
				rate, ci := fc.SuccessRate()
				fmt.Printf("%-14s %-12s %-9d %-9d %5.1f%% ±%5.1f%%   %-14v %d/%d/%d\n",
					class, lad.name, fc.Detected, fc.Success, 100*rate, 100*ci,
					fc.MeanSuccessLatency().Round(10*time.Microsecond),
					fc.AuditRepaired, fc.AuditDegraded, fc.AuditEscalate)
				if ft == inject.PrivVMCrash || ft == inject.PrivVMHang {
					privSuccess[lad.name] += fc.Success
				}
			}
		}
	}
	fmt.Printf("\nPrivVM faults recovered: hybrid=%d full-ladder=%d",
		privSuccess["hybrid"], privSuccess["full-ladder"])
	if privSuccess["full-ladder"] > privSuccess["hybrid"] {
		fmt.Printf(" (PrivVM-restart rung recovers %d more)\n",
			privSuccess["full-ladder"]-privSuccess["hybrid"])
	} else {
		fmt.Println(" (no gain from PrivVM-restart rung at this n)")
	}
	return nil
}

// execSharded runs the campaign across n worker subprocesses and prints
// the merged report plus the aggregate-throughput line.
func execSharded(c campaign.Campaign, n int, timeout time.Duration) error {
	start := time.Now()
	sum, statuses, err := campaign.ExecuteSharded(c, n, campaign.ShardOptions{
		Spawn:   spawnShard,
		Timeout: timeout,
		OnShardDone: func(st campaign.ShardStatus) {
			if st.Err != "" {
				fmt.Fprintf(os.Stderr, "shard %d: FAILED after %d attempt(s): %s\n",
					st.Index, st.Attempts, st.Err)
				return
			}
			note := ""
			if st.Attempts > 1 {
				note = fmt.Sprintf(" (after %d attempts)", st.Attempts)
			}
			fmt.Fprintf(os.Stderr, "shard %d: done, %d runs%s\n", st.Index, st.Runs, note)
		},
	})
	wall := time.Since(start)
	fmt.Print(sum.Format())
	fmt.Printf("  sharded: %d shard(s), %d runs in %v wall (%.2f runs/sec aggregate)\n\n",
		len(statuses), sum.Runs, wall.Round(time.Millisecond),
		float64(sum.Runs)/wall.Seconds())
	return err
}

// spawnShard launches one shard worker: this binary re-execed with
// -shard-worker, the spec on stdin, the summary envelope on stdout, stderr
// passed through. ctx expiry (the per-shard deadline) kills the worker.
func spawnShard(ctx context.Context, spec campaign.ShardSpec) (campaign.Summary, error) {
	exe, err := os.Executable()
	if err != nil {
		return campaign.Summary{}, fmt.Errorf("shard %d: locate executable: %w", spec.Index, err)
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return campaign.Summary{}, fmt.Errorf("shard %d: encode spec: %w", spec.Index, err)
	}
	cmd := exec.CommandContext(ctx, exe, "-shard-worker")
	cmd.Stdin = bytes.NewReader(specJSON)
	cmd.Stderr = os.Stderr
	var out bytes.Buffer
	cmd.Stdout = &out
	if err := cmd.Run(); err != nil {
		if ctx.Err() != nil {
			return campaign.Summary{}, fmt.Errorf("shard %d: worker killed at deadline: %v", spec.Index, ctx.Err())
		}
		return campaign.Summary{}, fmt.Errorf("shard %d: worker: %w", spec.Index, err)
	}
	return campaign.DecodeShardSummary(&out, spec.Index)
}

func parseMechanism(s string) (core.Mechanism, error) {
	switch strings.ToLower(s) {
	case "nilihype", "microreset":
		return core.Microreset, nil
	case "rehype", "microreboot":
		return core.Microreboot, nil
	case "rehype-cp", "checkpoint":
		return core.CheckpointRestore, nil
	case "privvm-restart":
		return core.PrivVMRestart, nil
	default:
		return 0, fmt.Errorf("unknown mechanism %q", s)
	}
}

// parseLadder resolves the escalating-ladder presets that name a whole
// Config rather than a single mechanism.
func parseLadder(s string) (core.Config, bool) {
	switch strings.ToLower(s) {
	case "hybrid":
		return core.HybridConfig(), true
	case "full-ladder":
		return core.FullLadderConfig(), true
	default:
		return core.Config{}, false
	}
}

func parseFault(s string) (inject.FaultType, error) {
	switch strings.ToLower(s) {
	case "failstop":
		return inject.Failstop, nil
	case "register":
		return inject.Register, nil
	case "code":
		return inject.Code, nil
	case "privvm-crash":
		return inject.PrivVMCrash, nil
	case "privvm-hang":
		return inject.PrivVMHang, nil
	case "ioapic", "device":
		return inject.DeviceIOAPIC, nil
	default:
		return 0, fmt.Errorf("unknown fault type %q", s)
	}
}

func parseSetup(s string) (campaign.Setup, error) {
	switch strings.ToLower(s) {
	case "1appvm":
		return campaign.OneAppVM, nil
	case "3appvm":
		return campaign.ThreeAppVM, nil
	default:
		return 0, fmt.Errorf("unknown setup %q", s)
	}
}

func parseWorkload(s string) (guest.Kind, error) {
	switch strings.ToLower(s) {
	case "blkbench":
		return guest.BlkBench, nil
	case "unixbench":
		return guest.UnixBench, nil
	case "netbench":
		return guest.NetBench, nil
	default:
		return 0, fmt.Errorf("unknown workload %q", s)
	}
}
