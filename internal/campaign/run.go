// Package campaign orchestrates fault-injection runs and campaigns
// (§VI-C): each run boots a fresh target system, starts the benchmarks,
// injects one fault, runs to completion, and classifies the outcome; a
// campaign aggregates many runs into recovery-rate statistics with 95%
// confidence intervals.
package campaign

import (
	"fmt"
	"time"

	"nilihype/internal/core"
	"nilihype/internal/detect"
	"nilihype/internal/guest"
	"nilihype/internal/hv"
	"nilihype/internal/hypercall"
	"nilihype/internal/inject"
	"nilihype/internal/journal"
	"nilihype/internal/prng"
	"nilihype/internal/telemetry"
	"nilihype/internal/traffic"
)

// Setup selects the target system configuration (§VI-A).
type Setup int

// Setups.
const (
	// OneAppVM: PrivVM plus one AppVM. Used for the enhancement ladder
	// (Table I); success means no VM is affected.
	OneAppVM Setup = iota + 1
	// ThreeAppVM: PrivVM plus UnixBench and NetBench AppVMs, with a
	// BlkBench AppVM created after recovery. Used for Figure 2; success
	// means at most one AppVM affected and the hypervisor still works.
	ThreeAppVM
)

// String returns the setup name.
func (s Setup) String() string {
	switch s {
	case OneAppVM:
		return "1AppVM"
	case ThreeAppVM:
		return "3AppVM"
	default:
		return fmt.Sprintf("setup(%d)", int(s))
	}
}

// RunConfig parameterizes a single fault-injection run.
type RunConfig struct {
	Seed     uint64
	Setup    Setup
	Fault    inject.FaultType
	Recovery core.Config

	// Workload is the 1AppVM benchmark (ignored for ThreeAppVM).
	Workload guest.Kind

	// Logging enables the §IV retry-mitigation logging (NiLiHype vs
	// NiLiHype*).
	Logging bool

	// BenchDuration is the benchmark run length. The paper uses ~10 s
	// (1AppVM) and ~24 s (3AppVM); the default here is scaled down for
	// campaign throughput — rates do not depend on the duration because
	// the injection time is uniform within the window.
	BenchDuration time.Duration

	// MemoryMB sizes the machine (campaigns default to 1 GB: recovery
	// rates are memory-independent; the latency experiments use 8 GB).
	MemoryMB int

	// NoInjection runs the workload with no fault (baseline runs for
	// the overhead experiment).
	NoInjection bool

	// BurstWindow, when positive, arms a second fault within that window
	// after the first fires (adversarial burst-fault campaigns).
	BurstWindow time.Duration
	// BurstFault selects the burst fault's type (zero = same as Fault).
	BurstFault inject.FaultType
	// FaultDuringRecovery arms an extra fault trigger when recovery
	// pauses the system, so corruption lands while recovery itself runs.
	FaultDuringRecovery bool
	// DuringFault selects the fault-during-recovery fault's type (zero =
	// same as Fault); e.g. a PrivVM hang beginning while a microreset is
	// already in flight.
	DuringFault inject.FaultType

	// CorrelatedReinjection re-injects into the same structural cell the
	// original latent corruption damaged, shortly after an audit accepts
	// a degraded verdict — the fault-while-degraded scenario.
	CorrelatedReinjection bool

	// HVM runs the AppVMs under full hardware virtualization (§VI-A:
	// injection results for HVM AppVMs are very similar to PV).
	HVM bool

	// CheckInvariants audits the post-run hypervisor state of successful
	// recoveries (no held locks, zero IRQ nesting, consistent scheduler
	// metadata and page-frame descriptors, live recurring timers) and
	// records breaches in Result.InvariantViolations.
	CheckInvariants bool

	// TraceCapacity, when positive, records up to that many hypervisor
	// trace events (dispatches, panics, discards, retries) into
	// Result.Trace — a per-run timeline for debugging and demos.
	TraceCapacity int

	// FlightRecorderCapacity overrides the always-on telemetry flight
	// ring size (0 = hv.DefaultFlightRecorderCapacity). The capacity
	// shapes the boot image, so runs differing in it fork from separate
	// snapshots.
	FlightRecorderCapacity int

	// Traffic, when enabled (Users > 0), arms the open-loop end-user
	// population against the run: Result.SLO then scores what those users
	// experienced through the recovery window. Traffic is armed after the
	// snapshot restore (like the NetBench sender), so it does not shape
	// the boot image and runs differing only in it share one.
	Traffic traffic.Config
}

// Defaults for scaled-down campaign runs.
const (
	defaultBenchDuration = 3 * time.Second
	defaultMemoryMB      = 1024
	heapFrames           = 32768
	privVMCPU            = 0
	unixCPU              = 1
	netCPU               = 2
	blkCPU               = 3
	unixDom              = 1
	netDom               = 2
	blkDom               = 3
)

func (rc RunConfig) withDefaults() RunConfig {
	if rc.Setup == 0 {
		rc.Setup = ThreeAppVM
	}
	if rc.Workload == 0 {
		rc.Workload = guest.UnixBench
	}
	if rc.BenchDuration == 0 {
		rc.BenchDuration = defaultBenchDuration
	}
	if rc.MemoryMB == 0 {
		rc.MemoryMB = defaultMemoryMB
	}
	if rc.Recovery.Mechanism == 0 {
		rc.Recovery = core.DefaultConfig()
	}
	return rc
}

// FaultClass names the run's fault class for the per-fault-class recovery
// matrix: the primary fault type, suffixed with the during-recovery type
// when it differs, and prefixed when the correlated fault-while-degraded
// re-injection is armed. Baseline runs are "none".
func (rc RunConfig) FaultClass() string {
	if rc.NoInjection {
		return "none"
	}
	name := faultClassName(rc.Fault)
	if rc.FaultDuringRecovery && rc.DuringFault != 0 && rc.DuringFault != rc.Fault {
		name += "+during-" + faultClassName(rc.DuringFault)
	}
	if rc.CorrelatedReinjection {
		name = "correlated-" + name
	}
	return name
}

func faultClassName(f inject.FaultType) string {
	switch f {
	case inject.Failstop:
		return "failstop"
	case inject.Register:
		return "register"
	case inject.Code:
		return "code"
	case inject.PrivVMCrash:
		return "privvm-crash"
	case inject.PrivVMHang:
		return "privvm-hang"
	case inject.DeviceIOAPIC:
		return "ioapic"
	default:
		return "other"
	}
}

// isPrivVMFault reports whether f targets the PrivVM (detected by the
// management-call watchdog rather than panics or soft-tick staleness).
func isPrivVMFault(f inject.FaultType) bool {
	return f == inject.PrivVMCrash || f == inject.PrivVMHang
}

// wantsMgmtWatchdog reports whether the run needs the management-call
// watchdog criterion: it injects a PrivVM fault through any trigger, or
// its ladder carries the PrivVM-restart rung (whose escalations are driven
// by that watchdog).
func (rc RunConfig) wantsMgmtWatchdog() bool {
	if isPrivVMFault(rc.Fault) || isPrivVMFault(rc.BurstFault) {
		return true
	}
	if rc.FaultDuringRecovery && isPrivVMFault(rc.DuringFault) {
		return true
	}
	for _, m := range rc.Recovery.Escalation.Ladder {
		if m == core.PrivVMRestart {
			return true
		}
	}
	return false
}

// wantsIRQCriterion reports whether the run needs the IRQ-delivery
// criterion (it injects device/IO-APIC corruption through any trigger).
func (rc RunConfig) wantsIRQCriterion() bool {
	return rc.Fault == inject.DeviceIOAPIC || rc.BurstFault == inject.DeviceIOAPIC ||
		(rc.FaultDuringRecovery && rc.DuringFault == inject.DeviceIOAPIC)
}

// Outcome classifies one run (§VII-A).
type Outcome int

// Outcomes.
const (
	// NonManifested: no abnormal behavior, benchmarks produce correct
	// output, detectors silent.
	NonManifested Outcome = iota + 1
	// SDC: detectors silent but at least one benchmark failed.
	SDC
	// Detected: a detector fired (recovery was attempted).
	Detected
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case NonManifested:
		return "non-manifested"
	case SDC:
		return "SDC"
	case Detected:
		return "detected"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// VMResult is one AppVM's verdict.
type VMResult struct {
	Dom    int
	Kind   guest.Kind
	OK     bool
	Reason string
}

// Result is one run's outcome.
//
// Recycling contract (copy-on-retain): the campaign executor reuses one
// Result's backing arrays per boot image, so a Result delivered through
// Campaign.OnResult — and its slice fields — is valid only until the
// callback returns. Consumers that aggregate in place (the Summary) need
// nothing; consumers that retain a Result past the callback must keep a
// Clone.
type Result struct {
	Seed    uint64
	Outcome Outcome
	// FaultClass is the run's fault-class name (RunConfig.FaultClass) —
	// carried per run because sharded workers aggregate partial Summaries
	// whose Config is zero.
	FaultClass string

	// Detected/Recovered mirror the engine's state.
	Detected  bool
	Recovered bool
	// FailReason is the recovery-failure reason, if any.
	FailReason string

	// VMs are the initial AppVMs' verdicts; AppVMsFailed counts those
	// that failed.
	VMs          []VMResult
	AppVMsFailed int
	// PrivVMFailed reports Dom0 failure (fatal to "operating correctly").
	PrivVMFailed bool
	// NewVMOK reports the post-recovery BlkBench creation check
	// (ThreeAppVM only; true when not applicable).
	NewVMOK bool

	// Success / NoVMF per the paper's definitions (§VII-A).
	Success bool
	NoVMF   bool

	// Attempts counts recovery attempts (0 if none; >1 means the engine
	// escalated); Escalated mirrors Attempts > 1.
	Attempts  int
	Escalated bool

	// Injection diagnostics.
	InjectionFired bool
	FaultEffect    string
	InjectionAt    string
	RecoveryAt     time.Duration
	// Latency is the total modeled recovery latency across all attempts.
	Latency time.Duration

	// Adversarial-injection diagnostics: the burst fault, the
	// fault-during-recovery trigger, and the correlated
	// fault-while-degraded re-injection, when configured and fired.
	BurstFired          bool
	BurstEffect         string
	DuringRecoveryFired bool
	DuringEffect        string
	CorrelatedFired     bool

	// Audit results (EscalationPolicy.Audit): violations found, repairs
	// applied, escalate verdicts, and AppVMs sacrificed across all
	// attempts.
	AuditViolations  int
	AuditRepaired    int
	AuditEscalations int
	SacrificedVMs    []int

	// Recovery-domain accounting (Recovery.RepairCPUs > 1): the distinct
	// domains the partitioned repair and audit phases touched across all
	// attempts, what those phases would have cost fully serialized, and
	// what the parallel schedule actually charged. Zero on the serial
	// path.
	RepairDomains         int
	SerialRepairLatency   time.Duration
	ParallelRepairLatency time.Duration

	// InvariantViolations lists post-recovery system-invariant breaches
	// found when RunConfig.CheckInvariants is set (empty = clean).
	InvariantViolations []string

	// Trace is the recorded event timeline (RunConfig.TraceCapacity > 0).
	Trace []string

	// Phases flattens the recovery attempts' non-group latency steps, in
	// execution order — the per-phase samples the campaign summary
	// histograms aggregate.
	Phases []core.LatencyStep

	// Flight is the telemetry flight-recorder tail, captured for any run
	// that fails recovery, escalates, or accepts degraded service — the
	// forensic record of what the system was doing when the recovery
	// story went sideways.
	Flight []string

	// Journal is the causal recovery journal, exported for the same runs
	// Flight is captured for: the fault → detect → attempt → disposition
	// event chain with span/cause links.
	Journal []journal.Entry

	// Corruptions lists the injector's structural-corruption cells, in
	// the order damaged; captured alongside Journal.
	Corruptions []string

	// Windows are the engine's per-attempt user-visible outage windows;
	// captured alongside Journal.
	Windows []core.Window

	// RootCause is the forensic root-cause classification
	// (classifyRootCause) for failed/escalated/degraded runs; empty for
	// clean runs.
	RootCause string

	// MaxAttempts is the run's escalation-ladder capacity — carried so
	// health scoring can tell a top-rung climb from a short ladder.
	MaxAttempts int

	// SLO is the run's end-user traffic outcome (nil unless
	// RunConfig.Traffic is enabled). Like the slice fields, it points into
	// image-owned scratch — Clone deep-copies it.
	SLO *traffic.SLO
}

// Clone returns a deep copy whose slices alias nothing: the copy to keep
// when retaining a Result past an OnResult callback (the executor recycles
// the original's backing arrays into the next run).
func (r Result) Clone() Result {
	r.VMs = append([]VMResult(nil), r.VMs...)
	r.SacrificedVMs = append([]int(nil), r.SacrificedVMs...)
	r.InvariantViolations = append([]string(nil), r.InvariantViolations...)
	r.Trace = append([]string(nil), r.Trace...)
	r.Phases = append([]core.LatencyStep(nil), r.Phases...)
	r.Flight = append([]string(nil), r.Flight...)
	r.Journal = append([]journal.Entry(nil), r.Journal...)
	r.Corruptions = append([]string(nil), r.Corruptions...)
	r.Windows = append([]core.Window(nil), r.Windows...)
	if r.SLO != nil {
		slo := *r.SLO
		r.SLO = &slo
	}
	return r
}

// reset rewinds r for the next run, retaining the backing arrays grown by
// previous runs. InvariantViolations, Flight, Journal, Corruptions and
// Windows are handed over whole by their producers, so they restart nil
// rather than recycling.
func (r *Result) reset(seed uint64) {
	*r = Result{
		Seed:          seed,
		NewVMOK:       true,
		VMs:           r.VMs[:0],
		SacrificedVMs: r.SacrificedVMs[:0],
		Trace:         r.Trace[:0],
		Phases:        r.Phases[:0],
	}
}

// normalized nils out empty slice fields, so a Result assembled in recycled
// scratch is bit-identical (reflect.DeepEqual) to one assembled cold — a
// leftover non-nil zero-length array from a busier previous run must not
// show through.
func (r Result) normalized() Result {
	if len(r.VMs) == 0 {
		r.VMs = nil
	}
	if len(r.SacrificedVMs) == 0 {
		r.SacrificedVMs = nil
	}
	if len(r.Trace) == 0 {
		r.Trace = nil
	}
	if len(r.Phases) == 0 {
		r.Phases = nil
	}
	return r
}

// Run executes one fault-injection run on a freshly booted system. It is
// the cold-boot path: the campaign executor instead builds one image per
// configuration shape and forks every run from its snapshot, which is
// bit-identical to this (tested by the snapshot-equivalence suite).
func Run(rc RunConfig) Result {
	rc = rc.withDefaults()
	img, err := buildImage(rc)
	if err != nil {
		return Result{Seed: rc.Seed, NewVMOK: true, FailReason: err.Error(), FaultClass: rc.FaultClass()}
	}
	return img.run(rc)
}

// run executes one fault-injection run on the image: restore the pristine
// snapshot (unless this is the first use of a fresh boot), re-arm all
// per-run state (RNG streams, engine, detector, workload seeds, tracer,
// injector), run to completion and classify.
func (img *image) run(rc RunConfig) Result {
	rc = rc.withDefaults()
	res := &img.res
	res.reset(rc.Seed)
	clk, h, world := img.clk, img.h, img.world

	if img.used {
		h.Restore(img.snap)
		world.Restore(img.wsnap)
	}
	img.used = true

	// Rewind both RNG streams to the position a cold boot with this seed
	// would have (no-ops on a fresh boot).
	h.ReseedRun(rc.Seed)
	world.Reseed(rc.Seed ^ 0x5eed)

	engine := core.NewEngine(h, rc.Recovery)
	img.engine = engine
	img.det.Reset()
	// Detection criteria are opt-in per run (images are shared across
	// configurations, so both directions must be set every time). Enabling
	// them adds no clock events and draws no randomness — legacy runs'
	// timelines are untouched.
	img.det.SetCriteria(rc.wantsMgmtWatchdog(), rc.wantsIRQCriterion())
	engine.Det = img.det
	// The PrivVM-restart rung re-created Dom0 inside the hypervisor; the
	// guest world re-arms its management service (housekeeping tick,
	// domctl capability) against the fresh domain.
	engine.OnPrivVMRestart = world.ResumePrivVM

	var recorder *hv.TraceRecorder
	if rc.TraceCapacity > 0 {
		recorder = hv.NewTraceRecorder(rc.TraceCapacity)
		// Per-request dispatch/complete events arrive at hundreds per
		// virtual millisecond and would evict the recovery story; record
		// the fault- and recovery-relevant kinds.
		h.SetTracer(func(e hv.TraceEvent) {
			switch e.Kind {
			case hv.TraceDispatch, hv.TraceComplete:
				return
			}
			recorder.Record(e)
		})
	}

	// Benchmarks: seed each pre-created VM in creation order (consuming
	// the world stream exactly like the legacy boot-per-run path), then
	// start the external sender and the workloads.
	apps := img.apps[:0]
	for _, cfg := range img.appCfgs {
		world.SeedAppVM(cfg.Dom)
		apps = append(apps, world.App(cfg.Dom))
	}
	img.apps = apps
	switch rc.Setup {
	case OneAppVM:
		if rc.Workload == guest.NetBench {
			world.Sender.Start(unixDom, rc.BenchDuration)
		}
	default:
		world.Sender.Start(netDom, rc.BenchDuration)
	}
	world.StartAll()

	// The open-loop user population, armed after the restore like the
	// sender so it is absent from the boot image. Its outage bracket is
	// pause→stable-resume: OnPause fires at every attempt's stop-the-world
	// (ServiceDown is idempotent across escalations), OnResume only when an
	// attempt stably re-enabled guest execution — a rung that failed before
	// resuming leaves service down into the next rung, exactly what its
	// users saw.
	var traf *traffic.Engine
	if rc.Traffic.Enabled() {
		if img.traffic == nil || img.trafficCfg != rc.Traffic {
			img.traffic = traffic.New(rc.Traffic)
			img.trafficCfg = rc.Traffic
		}
		traf = img.traffic
		traf.Start(clk, h.Tel, rc.BenchDuration)
		engine.OnPause = traf.ServiceDown
	}

	// Every attempt's resume extends the announced outage window: the
	// NetBench reception criterion must not penalize the recovery gap,
	// including the grace windows and repair time of escalated attempts.
	engine.OnResume = func() {
		if engine.FirstDetection != nil {
			world.Sender.ExcludeWindow(engine.FirstDetection.At, clk.Now())
		}
		if traf != nil {
			traf.ServiceUp()
		}
	}
	// The post-recovery functionality check (ThreeAppVM): create a new
	// BlkBench AppVM shortly after recovery is stable (for escalating
	// configurations, after the last grace window passes quietly).
	var blkVM *guest.AppVM
	engine.OnRecovered = func() {
		if rc.Setup != ThreeAppVM {
			return
		}
		clk.After(newVMDelay, "create-third-vm", func() {
			if failed, _ := h.Failed(); failed {
				return
			}
			ok := world.PrivCreateDomain(hypercall.CreateSpec{
				ID: blkDom, Name: "BlkBench", MemPages: guest.DefaultMemPages, PinCPU: blkCPU,
			})
			if failed, _ := h.Failed(); failed || !ok {
				res.NewVMOK = false
				return
			}
			blkVM = world.AttachAppVM(guest.Config{
				Kind: guest.BlkBench, Dom: blkDom, CPU: blkCPU,
				Duration: rc.BenchDuration / 3,
			})
			blkVM.Start()
		})
	}
	if rc.Setup == ThreeAppVM {
		res.NewVMOK = false // must be proven by the check
	}

	// Fault injection: the first-level trigger window is "well past the
	// start ... while leaving most of their execution to occur after
	// recovery" (§VI-C), scaled to the benchmark duration.
	var injector *inject.Injector
	if !rc.NoInjection {
		injRNG := prng.New(rc.Seed, 0xfa17)
		injector = inject.New(h, world, injRNG, inject.Params{
			Type:                  rc.Fault,
			WindowLo:              rc.BenchDuration / 10,
			WindowHi:              rc.BenchDuration / 2,
			AppDomains:            appDomains(rc.Setup),
			BurstWindow:           rc.BurstWindow,
			BurstFault:            rc.BurstFault,
			FaultDuringRecovery:   rc.FaultDuringRecovery,
			DuringFault:           rc.DuringFault,
			CorrelatedReinjection: rc.CorrelatedReinjection,
		})
		injector.Schedule()
		if rc.CorrelatedReinjection {
			engine.OnAuditDegraded = injector.OnDegradedVerdict
		}
	}

	// Run to completion.
	clk.RunUntil(runHorizon(rc))

	// --- classification ---------------------------------------------------

	if injector != nil {
		res.InjectionFired = injector.Fired
		res.FaultEffect = injector.FaultEffect.String()
		if injector.Fired {
			res.InjectionAt = fmt.Sprintf("%s @%s", injector.Point.Activity, injector.Point.StepName)
		}
		res.BurstFired = injector.BurstFired
		res.BurstEffect = injector.BurstEffect.String()
		res.DuringRecoveryFired = injector.DuringRecoveryFired
		res.DuringEffect = injector.DuringEffect.String()
		res.CorrelatedFired = injector.CorrelatedFired
	}
	res.FaultClass = rc.FaultClass()
	res.AuditViolations = engine.AuditViolations
	res.AuditRepaired = engine.AuditRepaired
	for i := range engine.Attempts {
		if a := engine.Attempts[i].Audit; a != nil {
			res.AuditEscalations += a.Escalations
		}
	}
	res.SacrificedVMs = append(res.SacrificedVMs, engine.SacrificedVMs...)
	res.RepairDomains = engine.RepairTiming.Domains
	res.SerialRepairLatency = engine.RepairTiming.Serial
	res.ParallelRepairLatency = engine.RepairTiming.Parallel
	res.Detected = engine.FirstDetection != nil
	res.Recovered = engine.Recovered()
	res.FailReason = engine.FailReason
	if failed, reason := h.Failed(); failed && res.FailReason == "" {
		res.FailReason = reason
	}
	if engine.FirstDetection != nil {
		res.RecoveryAt = engine.FirstDetection.At
		res.Latency = engine.TotalLatency()
	}
	res.Attempts = len(engine.Attempts)
	res.Escalated = engine.Escalated()
	res.PrivVMFailed = world.PrivVMFailed()
	for i := range engine.Attempts {
		for _, st := range engine.Attempts[i].Breakdown {
			if !st.Group {
				res.Phases = append(res.Phases, st)
			}
		}
	}

	for _, vm := range apps {
		ok, reason := vm.Verdict()
		if ok && vm.Cfg.Kind == guest.NetBench && world.Sender.FailedIntervals() > 0 {
			ok = false
			reason = fmt.Sprintf("reception rate dropped >10%% in %d interval(s)", world.Sender.FailedIntervals())
		}
		res.VMs = append(res.VMs, VMResult{Dom: vm.Cfg.Dom, Kind: vm.Cfg.Kind, OK: ok, Reason: reason})
		if !ok {
			res.AppVMsFailed++
		}
	}

	if rc.Setup == ThreeAppVM && res.Detected && res.Recovered && blkVM != nil {
		res.NewVMOK, _ = blkVM.Verdict()
	}

	if rc.CheckInvariants && res.Detected && res.Recovered && res.FailReason == "" {
		res.InvariantViolations = auditInvariants(h)
	}
	if recorder != nil {
		recorder.Do(func(e hv.TraceEvent) {
			res.Trace = append(res.Trace, e.String())
		})
	}

	switch {
	case !res.Detected:
		allOK := !res.PrivVMFailed
		for _, v := range res.VMs {
			allOK = allOK && v.OK
		}
		if allOK {
			res.Outcome = NonManifested
		} else {
			res.Outcome = SDC
		}
	default:
		res.Outcome = Detected
		recovered := res.Recovered && res.FailReason == ""
		switch rc.Setup {
		case OneAppVM:
			// 1AppVM: success means no VM affected (§VII-A).
			res.Success = recovered && !res.PrivVMFailed && res.AppVMsFailed == 0
			res.NoVMF = res.Success
		default:
			// 3AppVM: at most one AppVM affected, PrivVM alive, and the
			// hypervisor still able to create and run new VMs.
			res.Success = recovered && !res.PrivVMFailed && res.AppVMsFailed <= 1 && res.NewVMOK
			res.NoVMF = res.Success && res.AppVMsFailed == 0
		}
	}

	// Close the traffic run: a terminal failure means service never came
	// back (the halted clock pins Now() at the failure instant, which is
	// when the population stopped being served), then the purely
	// arithmetic Finish scores everything through the measurement horizon.
	if traf != nil {
		if failed, _ := h.Failed(); failed {
			traf.ServiceDown()
		}
		img.slo = *traf.Finish()
		res.SLO = &img.slo
	}

	// Sample the end-of-run gauges, and for any run whose recovery story
	// went wrong, dump the flight-recorder tail as the forensic record.
	h.Tel.SetGauge(telemetry.GaugeHeldLocks, int64(h.Locks.HeldCount()))
	h.Tel.SetGauge(telemetry.GaugeLiveDomains, int64(h.Domains.Len()))
	h.Tel.SetGauge(telemetry.GaugeClockQueueHighWater, int64(clk.QueueHighWater()))
	h.Tel.SetGauge(telemetry.GaugeHypervisorCycles, int64(h.Machine.HypervisorCycles()))
	res.MaxAttempts = rc.Recovery.MaxAttempts()
	h.Jrn.Disposition(clk.Now(), engine.Status().String(), res.FailReason)
	if res.Detected && (!res.Success || res.Escalated || len(res.SacrificedVMs) > 0) {
		res.Flight = h.Tel.FlightTail(flightTailLen)
		res.Journal = h.Jrn.Export()
		if injector != nil {
			res.Corruptions = append([]string(nil), injector.Corruptions...)
		}
		res.Windows = engine.RecoveryWindows()
		res.RootCause = classifyRootCause(*res)
	}
	return res.normalized()
}

// flightTailLen bounds the flight-recorder tail a failed or escalated run
// carries in its Result — long enough for the injection, detection, the
// recovery phases and the failing aftermath; short enough that campaigns
// with many failures stay cheap.
const flightTailLen = 64

// TraceRun executes one cold-boot run and returns the Result, the final
// telemetry state — the metrics registry, histograms and flight ring the
// trace tooling renders — and the full journal export (the Result only
// carries the journal for wrong runs; the trace view wants it always).
// Callers wanting a deeper ring set rc.FlightRecorderCapacity.
func TraceRun(rc RunConfig) (Result, *telemetry.Telemetry, []journal.Entry) {
	rc = rc.withDefaults()
	img, err := buildImage(rc)
	if err != nil {
		return Result{Seed: rc.Seed, NewVMOK: true, FailReason: err.Error()}, nil, nil
	}
	res := img.run(rc)
	return res, img.h.Tel, img.h.Jrn.Export()
}

// Horizon components: injection can land as late as BenchDuration/2; each
// detection needs up to StaleChecks+2 watchdog periods (hang declaration
// plus phase and latent-activation slack); recovery adds the
// configuration's worst-case latency including escalation grace windows;
// the post-recovery BlkBench VM starts newVMDelay after stable recovery
// and runs BenchDuration/3; postRunSettle covers benchmark verdict
// bookkeeping (block-queue drain, final iterations, sender intervals).
const (
	newVMDelay = 150 * time.Millisecond
	// detectionSlack must cover every watchdog's declaration time: the
	// hang watchdog's StaleChecks and the management-call watchdog's
	// MgmtStaleChecks both count checks at the Period cadence (currently
	// equal, so legacy horizons are bit-identical).
	detectionSlack   = (max(detect.StaleChecks, detect.MgmtStaleChecks) + 2) * detect.Period
	postRunSettle    = 750 * time.Millisecond
	legacyHorizonPad = 2 * time.Second
)

// runHorizon derives the simulation horizon from the run's own timing
// components so the post-recovery checks always fit. The horizon used to
// be a fixed BenchDuration + 2s, which a late injection plus a slow
// recovery (microreboot at large memory, or an escalated hybrid ladder)
// could overrun — the BlkBench check was cut off mid-run and a successful
// recovery was misclassified as "new VM creation failed". The fixed value
// is kept as a floor so short-recovery configurations keep their exact
// historical timelines.
func runHorizon(rc RunConfig) time.Duration {
	rc = rc.withDefaults()
	frames := rc.MemoryMB * (1024 * 1024 / 4096)
	derived := rc.BenchDuration/2 +
		time.Duration(rc.Recovery.MaxAttempts())*detectionSlack +
		rc.Recovery.WorstCaseLatency(frames) +
		newVMDelay + rc.BenchDuration/3 + postRunSettle
	if floor := rc.BenchDuration + legacyHorizonPad; derived < floor {
		return floor
	}
	return derived
}

func appDomains(s Setup) []int {
	if s == OneAppVM {
		return []int{unixDom}
	}
	return []int{unixDom, netDom}
}

// auditInvariants checks the quiescent-system invariants every successful
// recovery must restore.
func auditInvariants(h *hv.Hypervisor) []string {
	var out []string
	if held := h.Locks.HeldLocks(); len(held) != 0 {
		names := make([]string, 0, len(held))
		for _, l := range held {
			names = append(names, l.Name())
		}
		out = append(out, fmt.Sprintf("locks still held: %v", names))
	}
	for cpu := 0; cpu < h.NumCPUs(); cpu++ {
		if n := h.IRQCount(cpu); n != 0 {
			out = append(out, fmt.Sprintf("cpu%d local_irq_count=%d", cpu, n))
		}
		if h.PerCPU(cpu).Stuck() {
			out = append(out, fmt.Sprintf("cpu%d stuck", cpu))
		}
	}
	if incs := h.Sched.CheckConsistency(); len(incs) != 0 {
		out = append(out, fmt.Sprintf("%d scheduler inconsistencies (first: %s)", len(incs), incs[0].Desc))
	}
	if bad := h.Frames.InconsistentFrames(); len(bad) != 0 {
		out = append(out, fmt.Sprintf("%d inconsistent page frame descriptors", len(bad)))
	}
	if inact := h.Timers.InactiveRecurring(); len(inact) != 0 {
		out = append(out, fmt.Sprintf("%d recurring timers inactive", len(inact)))
	}
	return out
}
