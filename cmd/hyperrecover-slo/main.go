// Command hyperrecover-slo scores recovery mechanisms by user-visible
// damage instead of recovery latency: an open-loop population of users
// (default one million) issues requests against the simulated system
// while faults are injected and recovered, and each mechanism is charged
// the user-seconds of degradation, timed-out requests, and degraded
// 1-second intervals its detect→pause→repair→resume window caused.
//
// Examples:
//
//	hyperrecover-slo                               # 1M users, 100 runs/mechanism
//	hyperrecover-slo -users 250000 -runs 300
//	hyperrecover-slo -fault register -timeout 300ms
//	hyperrecover-slo -mechanisms nilihype,rehype
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nilihype/internal/campaign"
	"nilihype/internal/core"
	"nilihype/internal/guest"
	"nilihype/internal/inject"
	"nilihype/internal/traffic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hyperrecover-slo:", err)
		os.Exit(1)
	}
}

// mechanismSpec is one column of the comparison: a named recovery Config.
type mechanismSpec struct {
	name string
	cfg  core.Config
}

func run() error {
	var (
		users    = flag.Uint64("users", 1_000_000, "open-loop user population per run")
		runs     = flag.Int("runs", 100, "injection runs per mechanism")
		duration = flag.Duration("duration", 3*time.Second, "benchmark duration (virtual time)")
		faultStr = flag.String("fault", "failstop", "fault type: failstop | register | code | privvm-crash | privvm-hang | ioapic")
		setupStr = flag.String("setup", "3appvm", "target system: 1appvm | 3appvm")
		timeout  = flag.Duration("timeout", 500*time.Millisecond, "per-request deadline (0 = traffic default)")
		period   = flag.Duration("period", time.Second, "per-user request period (0 = traffic default)")
		parallel = flag.Int("parallel", 0, "concurrent runs per process (0 = GOMAXPROCS)")
		mechList = flag.String("mechanisms", "nilihype,rehype,full-ladder",
			"comma-separated mechanisms to compare: nilihype | rehype | checkpoint | privvm-restart | hybrid | full-ladder")
	)
	flag.Parse()

	fault, err := parseFault(*faultStr)
	if err != nil {
		return err
	}
	setup, err := parseSetup(*setupStr)
	if err != nil {
		return err
	}
	mechs, err := parseMechanisms(*mechList)
	if err != nil {
		return err
	}

	fmt.Printf("== user-visible SLO under recovery: fault=%s users=%d runs=%d/mechanism duration=%v deadline=%v ==\n",
		*faultStr, *users, *runs, *duration, *timeout)
	fmt.Printf("%-14s %-9s %-13s %-12s %-13s %-11s %-10s %-10s %s\n",
		"mechanism", "success", "mean-recovery", "outage/run", "user-sec/run",
		"timed-out", "p99-lat", "degr-ivl", "worst-goodput")

	for _, m := range mechs {
		c := campaign.Campaign{
			Base: campaign.RunConfig{
				Setup:         setup,
				Fault:         fault,
				Workload:      guest.UnixBench,
				Logging:       true,
				Recovery:      m.cfg,
				BenchDuration: *duration,
				Traffic: traffic.Config{
					Users:   *users,
					Timeout: *timeout,
					Period:  *period,
				},
			},
			Runs:        *runs,
			Parallelism: *parallel,
		}
		s := c.Execute()
		printRow(m.name, s)
	}
	fmt.Println()
	fmt.Println("outage/run and user-sec/run are means over scored runs; user-sec is outage × users.")
	fmt.Println("degr-ivl counts 1s intervals that lost >10% of offered requests; worst-goodput is the worst interval's completed/offered.")
	return nil
}

// printRow renders one mechanism's aggregate SLO as a comparison row.
func printRow(name string, s campaign.Summary) {
	if s.SLORuns == 0 {
		fmt.Printf("%-14s no scored runs (%d detected, %d recovered)\n",
			name, s.DetectedCount, s.RecoverySuccess)
		return
	}
	n := uint64(s.SLORuns)
	slo := s.SLO
	outagePerRun := time.Duration(slo.OutageUs/n) * time.Microsecond
	fmt.Printf("%-14s %-9s %-13v %-12v %-13.1f %-11s %-10v %-10s %d‰\n",
		name,
		fmt.Sprintf("%d/%d", s.RecoverySuccess, s.DetectedCount),
		s.MeanSuccessLatency().Round(10*time.Microsecond),
		outagePerRun.Round(10*time.Microsecond),
		slo.DegradedUserSeconds()/float64(n),
		fmt.Sprintf("%d/%d", slo.Lost(), slo.Offered),
		time.Duration(slo.Latency.Quantile(0.99))*time.Microsecond,
		fmt.Sprintf("%d/%d", slo.DegradedIntervals, slo.Intervals),
		slo.WorstIntervalPermille,
	)
}

// parseMechanisms resolves the comma-separated mechanism list into named
// recovery Configs (single rungs get AllEnhancements, matching the
// campaign command's defaults).
func parseMechanisms(list string) ([]mechanismSpec, error) {
	var out []mechanismSpec
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		var cfg core.Config
		switch strings.ToLower(name) {
		case "nilihype", "microreset":
			cfg = core.Config{Mechanism: core.Microreset, Enhancements: core.AllEnhancements}
		case "rehype", "microreboot":
			cfg = core.Config{Mechanism: core.Microreboot, Enhancements: core.AllEnhancements}
		case "rehype-cp", "checkpoint":
			cfg = core.Config{Mechanism: core.CheckpointRestore, Enhancements: core.AllEnhancements}
		case "privvm-restart":
			cfg = core.Config{Mechanism: core.PrivVMRestart, Enhancements: core.AllEnhancements}
		case "hybrid":
			cfg = core.HybridConfig()
		case "full-ladder":
			cfg = core.FullLadderConfig()
		default:
			return nil, fmt.Errorf("unknown mechanism %q", name)
		}
		out = append(out, mechanismSpec{name: strings.ToLower(name), cfg: cfg})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty mechanism list")
	}
	return out, nil
}

func parseFault(s string) (inject.FaultType, error) {
	switch strings.ToLower(s) {
	case "failstop":
		return inject.Failstop, nil
	case "register":
		return inject.Register, nil
	case "code":
		return inject.Code, nil
	case "privvm-crash":
		return inject.PrivVMCrash, nil
	case "privvm-hang":
		return inject.PrivVMHang, nil
	case "ioapic", "device":
		return inject.DeviceIOAPIC, nil
	default:
		return 0, fmt.Errorf("unknown fault type %q", s)
	}
}

func parseSetup(s string) (campaign.Setup, error) {
	switch strings.ToLower(s) {
	case "1appvm":
		return campaign.OneAppVM, nil
	case "3appvm":
		return campaign.ThreeAppVM, nil
	default:
		return 0, fmt.Errorf("unknown setup %q", s)
	}
}
