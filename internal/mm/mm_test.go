package mm

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"nilihype/internal/locking"
)

func TestNewFrameTableAllFree(t *testing.T) {
	ft := NewFrameTable(100)
	if ft.Len() != 100 {
		t.Fatalf("Len() = %d, want 100", ft.Len())
	}
	if got := ft.CountType(FrameFree); got != 100 {
		t.Fatalf("free frames = %d, want 100", got)
	}
	if ft.Frame(0).Owner != NoDomain {
		t.Fatal("new frame has an owner")
	}
}

func TestFrameTypeString(t *testing.T) {
	tests := []struct {
		ft   FrameType
		want string
	}{
		{FrameFree, "free"},
		{FrameHeap, "heap"},
		{FrameGuest, "guest"},
		{FramePageTable, "pagetable"},
		{FrameType(42), "type(42)"},
	}
	for _, tt := range tests {
		if got := tt.ft.String(); got != tt.want {
			t.Errorf("%v.String() = %q, want %q", int(tt.ft), got, tt.want)
		}
	}
}

func TestAssignRange(t *testing.T) {
	ft := NewFrameTable(64)
	if err := ft.AssignRange(16, 8, 3, FrameGuest); err != nil {
		t.Fatal(err)
	}
	for i := 16; i < 24; i++ {
		f := ft.Frame(i)
		if f.Type != FrameGuest || f.Owner != 3 {
			t.Fatalf("frame %d = %+v, want guest owned by dom3", i, *f)
		}
	}
	if err := ft.AssignRange(60, 8, 0, FrameGuest); err == nil {
		t.Fatal("out-of-bounds range accepted")
	}
	if err := ft.AssignRange(-1, 2, 0, FrameGuest); err == nil {
		t.Fatal("negative range accepted")
	}
}

func TestUseCountUnderflow(t *testing.T) {
	ft := NewFrameTable(4)
	f := ft.Frame(0)
	f.IncUse()
	if err := f.DecUse(); err != nil {
		t.Fatal(err)
	}
	if err := f.DecUse(); err != ErrUseCountUnderflow {
		t.Fatalf("err = %v, want ErrUseCountUnderflow", err)
	}
}

func TestPinUnpinPageTable(t *testing.T) {
	ft := NewFrameTable(4)
	f := ft.Frame(1)
	f.Type = FrameGuest
	f.Owner = 1
	f.PinAsPageTable()
	if f.Type != FramePageTable || !f.Validated || f.UseCount != 1 {
		t.Fatalf("after pin: %+v", *f)
	}
	if !f.consistent() {
		t.Fatal("pinned frame inconsistent")
	}
	if err := f.UnpinPageTable(); err != nil {
		t.Fatal(err)
	}
	if f.Type != FrameGuest || f.Validated || f.UseCount != 0 {
		t.Fatalf("after unpin: %+v", *f)
	}
}

func TestScanAndRepairFixesBothDirections(t *testing.T) {
	ft := NewFrameTable(10)
	// Counted but not validated (fault between IncUse and Validated).
	a := ft.Frame(2)
	a.Type = FramePageTable
	a.UseCount = 1
	a.Validated = false
	// Validated but not counted (fault during unpin).
	b := ft.Frame(7)
	b.Type = FramePageTable
	b.UseCount = 0
	b.Validated = true

	if got := ft.InconsistentFrames(); len(got) != 2 {
		t.Fatalf("InconsistentFrames = %v, want 2 entries", got)
	}
	if repaired := ft.ScanAndRepair(); repaired != 2 {
		t.Fatalf("repaired = %d, want 2", repaired)
	}
	if !a.Validated {
		t.Fatal("counted frame not re-validated")
	}
	if b.Validated {
		t.Fatal("uncounted frame still validated")
	}
	if len(ft.InconsistentFrames()) != 0 {
		t.Fatal("inconsistencies remain after scan")
	}
	if ft.ScanAndRepair() != 0 {
		t.Fatal("second scan repaired something")
	}
}

func TestCorruptRandomDescriptorCreatesInconsistency(t *testing.T) {
	ft := NewFrameTable(50)
	rng := rand.New(rand.NewPCG(1, 2))
	i := ft.CorruptRandomDescriptor(rng)
	if ft.Frame(i).consistent() {
		t.Fatal("corrupted descriptor is consistent")
	}
	if len(ft.InconsistentFrames()) != 1 {
		t.Fatal("expected exactly one inconsistency")
	}
}

func newTestHeap(t *testing.T, frames, start, count int) (*Heap, *FrameTable, *locking.Registry) {
	if t != nil {
		t.Helper()
	}
	ft := NewFrameTable(frames)
	reg := locking.NewRegistry()
	return NewHeap(ft, reg, start, count), ft, reg
}

func TestHeapAllocFree(t *testing.T) {
	h, ft, _ := newTestHeap(t, 64, 0, 32)
	if h.FreePages() != 32 {
		t.Fatalf("FreePages = %d, want 32", h.FreePages())
	}
	o := h.Alloc(4, "domain")
	if o == nil {
		t.Fatal("Alloc failed")
	}
	if len(o.Pages) != 4 || h.FreePages() != 28 {
		t.Fatalf("pages=%d free=%d", len(o.Pages), h.FreePages())
	}
	for _, fi := range o.Pages {
		if ft.Frame(fi).Type != FrameHeap {
			t.Fatalf("frame %d type = %v, want heap", fi, ft.Frame(fi).Type)
		}
	}
	if h.AllocatedObjects() != 1 {
		t.Fatalf("AllocatedObjects = %d, want 1", h.AllocatedObjects())
	}
	h.Free(o)
	if h.FreePages() != 32 || h.AllocatedObjects() != 0 {
		t.Fatalf("after free: free=%d objects=%d", h.FreePages(), h.AllocatedObjects())
	}
}

func TestHeapExhaustion(t *testing.T) {
	h, _, _ := newTestHeap(t, 16, 0, 8)
	if o := h.Alloc(9, "big"); o != nil {
		t.Fatal("over-allocation succeeded")
	}
	if o := h.Alloc(8, "exact"); o == nil {
		t.Fatal("exact-fit allocation failed")
	}
	if o := h.Alloc(1, "more"); o != nil {
		t.Fatal("allocation from empty heap succeeded")
	}
}

func TestHeapDoubleFreePanics(t *testing.T) {
	h, _, _ := newTestHeap(t, 16, 0, 8)
	o := h.Alloc(2, "x")
	h.Free(o)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	h.Free(o)
}

func TestHeapLocksRegisteredAndDropped(t *testing.T) {
	h, _, reg := newTestHeap(t, 16, 0, 8)
	o := h.Alloc(2, "domain0")
	l := h.AddLock(o, "page_alloc_lock")
	if l.Kind() != locking.Heap {
		t.Fatalf("lock kind = %v, want heap", l.Kind())
	}
	if _, heapN := reg.Counts(); heapN != 1 {
		t.Fatalf("registry heap count = %d, want 1", heapN)
	}
	if got := o.Locks(); len(got) != 1 || got[0] != l {
		t.Fatalf("object locks = %v", got)
	}
	h.Free(o)
	if _, heapN := reg.Counts(); heapN != 0 {
		t.Fatal("lock not dropped on free")
	}
}

func TestHeapCorruptionBlocksAllocUntilRebuild(t *testing.T) {
	h, _, _ := newTestHeap(t, 16, 0, 8)
	keep := h.Alloc(2, "keep")
	rng := rand.New(rand.NewPCG(9, 9))
	desc := h.CorruptFreeList(rng)
	if err := h.Check(); err == nil {
		t.Fatalf("Check missed free-list damage (%s)", desc)
	}
	if probs := h.ValidateFreeList(); len(probs) == 0 {
		t.Fatalf("ValidateFreeList missed damage (%s)", desc)
	}
	// A request whose peek window covers the damaged entry must refuse.
	if o := h.Alloc(6, "x"); o != nil {
		t.Fatal("allocation through damaged free list succeeded")
	}
	h.Rebuild()
	if err := h.Check(); err != nil {
		t.Fatalf("Check after rebuild: %v", err)
	}
	if probs := h.ValidateFreeList(); len(probs) != 0 {
		t.Fatalf("rebuild left free-list damage: %v", probs)
	}
	if h.AllocatedObjects() != 1 {
		t.Fatal("rebuild lost live objects")
	}
	if o := h.Alloc(1, "x"); o == nil {
		t.Fatal("allocation after rebuild failed")
	}
	// keep's pages must not have been reclaimed.
	for _, fi := range keep.Pages {
		for _, ki := range h.free {
			if fi == ki {
				t.Fatal("rebuild put a live page on the free list")
			}
		}
	}
}

func TestObjectCanaryDamageAndRepair(t *testing.T) {
	h, _, _ := newTestHeap(t, 16, 0, 8)
	o := h.Alloc(1, "victim")
	if o.Damaged() {
		t.Fatal("fresh object reports damage")
	}
	rng := rand.New(rand.NewPCG(4, 4))
	o.Corrupt(rng)
	if !o.Damaged() {
		t.Fatal("corrupted object reports intact canary")
	}
	if got := h.DamagedObjects(); len(got) != 1 || got[0] != o {
		t.Fatalf("DamagedObjects = %v", got)
	}
	o.Repair()
	if o.Damaged() || len(h.DamagedObjects()) != 0 {
		t.Fatal("repair did not restore the canary")
	}
}

func TestCorruptRandomObjectPicksLiveObject(t *testing.T) {
	h, _, _ := newTestHeap(t, 16, 0, 8)
	rng := rand.New(rand.NewPCG(6, 6))
	if desc := h.CorruptRandomObject(rng); desc != "no live objects" {
		t.Fatalf("empty heap CorruptRandomObject = %q", desc)
	}
	h.Alloc(1, "a")
	h.Alloc(1, "b")
	if desc := h.CorruptRandomObject(rng); desc == "no live objects" {
		t.Fatal("CorruptRandomObject found no live objects")
	}
	if len(h.DamagedObjects()) != 1 {
		t.Fatalf("DamagedObjects = %d, want 1", len(h.DamagedObjects()))
	}
}

func TestAllocatedPagesDeterministicOrder(t *testing.T) {
	h, _, _ := newTestHeap(t, 32, 0, 16)
	a := h.Alloc(2, "a")
	b := h.Alloc(3, "b")
	got := h.AllocatedPages()
	want := append(append([]int{}, a.Pages...), b.Pages...)
	if len(got) != len(want) {
		t.Fatalf("AllocatedPages = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AllocatedPages = %v, want %v", got, want)
		}
	}
}

// TestPropertyScanIsIdempotentAndComplete: after arbitrary descriptor
// mutations, one ScanAndRepair pass leaves zero inconsistencies and a
// second pass repairs nothing.
func TestPropertyScanIsIdempotentAndComplete(t *testing.T) {
	f := func(seed uint64, nCorrupt uint8) bool {
		ft := NewFrameTable(256)
		rng := rand.New(rand.NewPCG(seed, 0))
		for i := 0; i < int(nCorrupt%32); i++ {
			ft.CorruptRandomDescriptor(rng)
		}
		ft.ScanAndRepair()
		return len(ft.InconsistentFrames()) == 0 && ft.ScanAndRepair() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyHeapConservation: alloc/free sequences conserve pages.
func TestPropertyHeapConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		h, _, _ := newTestHeap(nil, 128, 0, 64)
		var live []*Object
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				if o := h.Alloc(int(op%7)+1, "p"); o != nil {
					live = append(live, o)
				}
			} else {
				h.Free(live[len(live)-1])
				live = live[:len(live)-1]
			}
		}
		used := 0
		for _, o := range live {
			used += len(o.Pages)
		}
		return used+h.FreePages() == 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
