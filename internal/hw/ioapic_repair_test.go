package hw

import "testing"

// TestIOAPICCorruptRouteDetectedAndRepaired walks every redirection
// corruption mode through the full damage → read-back → reprogram cycle:
// the corruption diverges the table from the boot copy, ReprogramFromBoot
// rewrites it, and delivery works again.
func TestIOAPICCorruptRouteDetectedAndRepaired(t *testing.T) {
	wantLabel := map[int]string{
		CorruptDisable: "ioapic-route:disabled",
		CorruptCPU:     "ioapic-route:cpu",
		CorruptVector:  "ioapic-route:vector",
	}
	for mode, label := range wantLabel {
		m, _, sink := newTestMachine(t)
		routeAll(m)
		io := m.IOAPIC()
		io.RecordBootRoutes()
		if io.RouteDamage() != 0 {
			t.Fatalf("mode %d: pristine table reports damage", mode)
		}
		if got := io.CorruptRoute(IRQBlock, mode); got != label {
			t.Fatalf("mode %d: label %q, want %q", mode, got, label)
		}
		if io.RouteDamage() != 1 {
			t.Fatalf("mode %d: RouteDamage = %d, want 1", mode, io.RouteDamage())
		}
		if fixed := io.ReprogramFromBoot(); fixed != 1 {
			t.Fatalf("mode %d: reprogrammed %d entries, want 1", mode, fixed)
		}
		if io.RouteDamage() != 0 {
			t.Fatalf("mode %d: damage persists after reprogram", mode)
		}
		io.Raise(IRQBlock)
		if len(sink.delivered) != 1 || sink.delivered[0].cpu != 0 || sink.delivered[0].vec != VecBlock {
			t.Fatalf("mode %d: post-repair delivery = %v", mode, sink.delivered)
		}
	}
}

// TestIOAPICCorruptRouteIsNotASoftwareWrite: the corruption models a
// hardware bit-flip, so the software write counter must not advance — that
// is exactly why detection needs the read-back comparison rather than a
// write log.
func TestIOAPICCorruptRouteIsNotASoftwareWrite(t *testing.T) {
	m, _, _ := newTestMachine(t)
	routeAll(m)
	io := m.IOAPIC()
	io.RecordBootRoutes()
	before := io.RedirWrites
	io.CorruptRoute(IRQNIC, CorruptCPU)
	if io.RedirWrites != before {
		t.Fatalf("CorruptRoute advanced RedirWrites %d -> %d", before, io.RedirWrites)
	}
	// The repair IS a software write.
	io.ReprogramFromBoot()
	if io.RedirWrites != before+1 {
		t.Fatalf("ReprogramFromBoot wrote %d entries, want 1", io.RedirWrites-before)
	}
}

// TestIOAPICStrandedLineBlocksDeliveryUntilAckAll: a stranded in-service
// latch suppresses all later assertions (pending-IRQ-route loss); AckAll —
// the recovery path's interrupt-controller reset — restores delivery.
func TestIOAPICStrandedLineBlocksDeliveryUntilAckAll(t *testing.T) {
	m, _, sink := newTestMachine(t)
	routeAll(m)
	io := m.IOAPIC()
	io.RecordBootRoutes()
	if got := io.StrandLine(IRQNIC); got != "ioapic-pending:stranded-in-service" {
		t.Fatalf("label = %q", got)
	}
	if !io.InService(IRQNIC) {
		t.Fatal("line not in service after StrandLine")
	}
	if io.RouteDamage() != 0 {
		t.Fatal("stranded latch must not read as route damage (it is transient state)")
	}
	io.Raise(IRQNIC)
	if len(sink.delivered) != 0 {
		t.Fatalf("stranded line delivered: %v", sink.delivered)
	}
	io.AckAll()
	io.Raise(IRQNIC)
	if len(sink.delivered) != 1 || sink.delivered[0].vec != VecNIC {
		t.Fatalf("post-AckAll delivery = %v", sink.delivered)
	}
}

// TestIOAPICReprogramCleanTableIsFree: an undamaged table costs nothing to
// audit — no rewrites, no counter movement.
func TestIOAPICReprogramCleanTableIsFree(t *testing.T) {
	m, _, _ := newTestMachine(t)
	routeAll(m)
	io := m.IOAPIC()
	io.RecordBootRoutes()
	before := io.RedirWrites
	if fixed := io.ReprogramFromBoot(); fixed != 0 || io.RedirWrites != before {
		t.Fatalf("clean reprogram: fixed=%d writes=%d", fixed, io.RedirWrites-before)
	}
}
