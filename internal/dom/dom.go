// Package dom models guest domains as the hypervisor sees them: the
// per-domain structure (Xen's struct domain, heap-allocated with embedded
// spinlocks), the global domain list (a linked list — one of the paper's
// top corruption targets, §VII-A), and per-domain event-channel state.
package dom

import (
	"errors"
	"fmt"

	"nilihype/internal/evtchn"
	"nilihype/internal/grant"
	"nilihype/internal/locking"
	"nilihype/internal/mm"
	"nilihype/internal/sched"
	"nilihype/internal/xentime"
)

// Well-known domain IDs.
const (
	PrivVMID = 0 // the privileged VM (Dom0)
)

// ErrListCorrupted is returned when a domain-list traversal hits corrupted
// links. The hypervisor treats it as a fatal error (panic).
var ErrListCorrupted = errors.New("dom: domain list corrupted")

// Domain is the hypervisor's per-domain structure. It is backed by a heap
// object so that its embedded locks participate in the heap-lock release
// mechanism.
type Domain struct {
	ID   int
	Name string

	// IsPriv marks the privileged VM (Dom0).
	IsPriv bool

	// VCPUs are the domain's virtual CPUs (one per domain in the paper's
	// setups, §VI-A).
	VCPUs []*sched.VCPU

	// MemStart/MemCount delimit the domain's physical frame range.
	MemStart, MemCount int

	// TotPages is the accounting counter hypercalls adjust (a critical
	// variable in the paper's sense — logged for undo).
	TotPages int

	// Obj is the backing heap allocation.
	Obj *mm.Object

	// PageAllocLock and GrantLock are the embedded heap spinlocks
	// hypercall handlers take.
	PageAllocLock *locking.Lock
	GrantLock     *locking.Lock

	// Events is the domain's event-channel port table.
	Events *evtchn.Table

	// RingPort is the inter-domain event channel to the PrivVM backend
	// (I/O ring notifications).
	RingPort int

	// GrantTab is the domain's guest-visible grant table; Maptrack is
	// the hypervisor-side bookkeeping of its active mappings.
	GrantTab *grant.Table
	Maptrack *grant.Maptrack

	// WakeupTimer is the domain's singleton set_timer_op timer (Xen
	// keeps one per vCPU; setting it replaces the previous deadline).
	WakeupTimer *xentime.Timer

	// Failed marks the domain as crashed (its guest kernel died). The
	// campaign layer reads this to classify outcomes.
	Failed bool
	// FailReason records why, for reports.
	FailReason string
}

// Fail marks the domain failed with a reason (first reason wins).
func (d *Domain) Fail(reason string) {
	if d.Failed {
		return
	}
	d.Failed = true
	d.FailReason = reason
}

// UpcallVCPU returns the vCPU that handles event upcalls (vCPU 0; the
// paper's domains are single-vCPU), or nil.
func (d *Domain) UpcallVCPU() *sched.VCPU {
	if len(d.VCPUs) > 0 {
		return d.VCPUs[0]
	}
	return nil
}

// List is the hypervisor's global domain list. Xen chains struct domain
// into a singly linked list; error propagation that corrupts a link makes
// every traversal fatal. Corrupted models that state; a reboot rebuilds
// the list from preserved domain structures (ReHype re-integration),
// clearing it.
type List struct {
	domains []*Domain

	// Corrupted marks broken links; traversals fail until a rebuild.
	Corrupted bool
}

// NewList returns an empty domain list.
func NewList() *List { return &List{} }

// Insert appends a domain to the list.
func (l *List) Insert(d *Domain) { l.domains = append(l.domains, d) }

// Remove unlinks a domain.
func (l *List) Remove(d *Domain) {
	for i, dd := range l.domains {
		if dd == d {
			l.domains = append(l.domains[:i], l.domains[i+1:]...)
			return
		}
	}
}

// ByID walks the list for a domain. Traversal of a corrupted list returns
// ErrListCorrupted (fatal to the caller).
func (l *List) ByID(id int) (*Domain, error) {
	if l.Corrupted {
		return nil, ErrListCorrupted
	}
	for _, d := range l.domains {
		if d.ID == id {
			return d, nil
		}
	}
	return nil, fmt.Errorf("dom: no domain %d", id)
}

// All returns the domains in insertion order, or ErrListCorrupted.
func (l *List) All() ([]*Domain, error) {
	if l.Corrupted {
		return nil, ErrListCorrupted
	}
	out := make([]*Domain, len(l.domains))
	copy(out, l.domains)
	return out, nil
}

// Len returns the number of domains (valid even when corrupted; the count
// is separate bookkeeping).
func (l *List) Len() int { return len(l.domains) }

// Rebuild relinks the list from the preserved domain structures, clearing
// corruption. Microreboot performs this as part of state re-integration;
// microreset has no equivalent (it reuses the links in place), which is one
// source of ReHype's small recovery-rate edge (§VII-A).
func (l *List) Rebuild() { l.Corrupted = false }
