package hv

import (
	"testing"
	"time"
)

func TestResumeKeepsDeferredWorkAcrossRePause(t *testing.T) {
	// A deferred closure that re-pauses the hypervisor (an escalated
	// recovery attempt starting mid-resume) must leave later closures
	// queued for the next resume rather than dropping them.
	h, _ := newBooted(t)
	var order []string
	h.Pause()
	h.WhenRunnable(func() {
		order = append(order, "first")
		h.Pause()
	})
	h.WhenRunnable(func() { order = append(order, "second") })
	h.ResumeRunnable()
	if len(order) != 1 || order[0] != "first" {
		t.Fatalf("after re-pause ran %v, want [first]", order)
	}
	if !h.Paused() {
		t.Fatal("re-pause inside deferred work did not stick")
	}
	h.ResumeRunnable()
	if len(order) != 2 || order[1] != "second" {
		t.Fatalf("second resume ran %v, want [first second]", order)
	}
}

func TestResumeStopsDeferredWorkOnFailure(t *testing.T) {
	h, _ := newBooted(t)
	var order []string
	h.Pause()
	h.WhenRunnable(func() {
		order = append(order, "first")
		h.MarkFailed("mid-resume fault")
	})
	h.WhenRunnable(func() { order = append(order, "second") })
	h.ResumeRunnable()
	if len(order) != 1 {
		t.Fatalf("deferred work ran past a failure: %v", order)
	}
	// An escalating engine clears the mark; the queued work survives for
	// the next attempt's resume.
	h.ClearFailed()
	h.ResumeRunnable()
	if len(order) != 2 {
		t.Fatalf("queued work lost across ClearFailed: %v", order)
	}
}

func TestClearFailedRevivesSimulation(t *testing.T) {
	h, clk := newBooted(t)
	before := h.Stats.TimerIRQs
	h.MarkFailed("attempt failed")
	clk.RunUntil(clk.Now() + 50*time.Millisecond)
	if h.Stats.TimerIRQs != before {
		t.Fatal("clock advanced events while failed")
	}
	h.ClearFailed()
	if failed, reason := h.Failed(); failed || reason != "" {
		t.Fatalf("still failed: %q", reason)
	}
	clk.RunUntil(clk.Now() + 50*time.Millisecond)
	if h.Stats.TimerIRQs <= before {
		t.Fatal("no timer activity after ClearFailed")
	}
}
