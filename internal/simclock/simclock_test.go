package simclock

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"
)

func TestNewClockStartsAtZero(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", c.Now())
	}
	if c.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", c.Len())
	}
}

func TestAfterFiresAtRightTime(t *testing.T) {
	c := New()
	var firedAt time.Duration = -1
	c.After(5*time.Millisecond, "t", func() { firedAt = c.Now() })
	c.Run()
	if firedAt != 5*time.Millisecond {
		t.Fatalf("fired at %v, want 5ms", firedAt)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	c := New()
	var order []int
	c.After(30*time.Microsecond, "c", func() { order = append(order, 3) })
	c.After(10*time.Microsecond, "a", func() { order = append(order, 1) })
	c.After(20*time.Microsecond, "b", func() { order = append(order, 2) })
	c.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSimultaneousEventsFireFIFO(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.At(time.Millisecond, "same", func() { order = append(order, i) })
	}
	c.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("order = %v, want FIFO 0..9", order)
		}
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	c := New()
	fired := false
	e := c.After(time.Millisecond, "x", func() { fired = true })
	c.Cancel(e)
	c.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Pending() {
		t.Fatal("cancelled event still pending")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	c := New()
	e := c.After(time.Millisecond, "x", func() {})
	c.Cancel(e)
	c.Cancel(e) // must not panic
	c.Cancel(nil)
	c.Run()
}

func TestCancelAfterFireIsNoOp(t *testing.T) {
	c := New()
	e := c.After(time.Millisecond, "x", func() {})
	c.Run()
	c.Cancel(e) // must not panic
}

func TestRescheduleMovesEvent(t *testing.T) {
	c := New()
	var firedAt time.Duration
	e := c.After(time.Millisecond, "x", func() { firedAt = c.Now() })
	c.Reschedule(e, 7*time.Millisecond)
	c.Run()
	if firedAt != 7*time.Millisecond {
		t.Fatalf("fired at %v, want 7ms", firedAt)
	}
}

func TestRescheduleAfterFireRequeues(t *testing.T) {
	c := New()
	count := 0
	e := c.After(time.Millisecond, "x", func() { count++ })
	c.Run()
	c.Reschedule(e, 2*time.Millisecond)
	c.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	c := New()
	fired := false
	c.After(10*time.Millisecond, "late", func() { fired = true })
	c.RunUntil(5 * time.Millisecond)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if c.Now() != 5*time.Millisecond {
		t.Fatalf("Now() = %v, want 5ms", c.Now())
	}
	c.RunUntil(20 * time.Millisecond)
	if !fired {
		t.Fatal("event within horizon did not fire")
	}
}

func TestRunUntilFiresEventExactlyAtHorizon(t *testing.T) {
	c := New()
	fired := false
	c.After(5*time.Millisecond, "edge", func() { fired = true })
	c.RunUntil(5 * time.Millisecond)
	if !fired {
		t.Fatal("event at exact horizon did not fire")
	}
}

func TestHaltStopsDispatch(t *testing.T) {
	c := New()
	count := 0
	for i := 1; i <= 5; i++ {
		c.After(time.Duration(i)*time.Millisecond, "n", func() {
			count++
			if count == 2 {
				c.Halt()
			}
		})
	}
	c.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2 (halt should stop dispatch)", count)
	}
	if !c.Halted() {
		t.Fatal("Halted() = false after Halt")
	}
	c.Resume()
	c.Run()
	if count != 5 {
		t.Fatalf("count = %d after resume, want 5", count)
	}
}

func TestSchedulingInsideEvent(t *testing.T) {
	c := New()
	var times []time.Duration
	c.After(time.Millisecond, "outer", func() {
		c.After(time.Millisecond, "inner", func() {
			times = append(times, c.Now())
		})
	})
	c.Run()
	if len(times) != 1 || times[0] != 2*time.Millisecond {
		t.Fatalf("inner fired at %v, want [2ms]", times)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	c := New()
	c.After(time.Millisecond, "x", func() {})
	c.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At() in the past did not panic")
		}
	}()
	c.At(0, "past", func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	c := New()
	defer func() {
		if recover() == nil {
			t.Fatal("After() with negative delay did not panic")
		}
	}()
	c.After(-time.Millisecond, "neg", func() {})
}

func TestDispatchedCounter(t *testing.T) {
	c := New()
	for i := 0; i < 7; i++ {
		c.After(time.Duration(i)*time.Microsecond, "n", func() {})
	}
	c.Run()
	if c.Dispatched() != 7 {
		t.Fatalf("Dispatched() = %d, want 7", c.Dispatched())
	}
}

func TestEventAccessors(t *testing.T) {
	c := New()
	e := c.After(3*time.Millisecond, "tagged", func() {})
	if e.When() != 3*time.Millisecond {
		t.Fatalf("When() = %v, want 3ms", e.When())
	}
	if e.Tag() != "tagged" {
		t.Fatalf("Tag() = %q, want %q", e.Tag(), "tagged")
	}
	if !e.Pending() {
		t.Fatal("Pending() = false before fire")
	}
	c.Run()
	if e.Pending() {
		t.Fatal("Pending() = true after fire")
	}
}

// TestPropertyDispatchOrderMonotone is a property test: for any set of
// delays, dispatch times are non-decreasing and every event fires exactly
// once.
func TestPropertyDispatchOrderMonotone(t *testing.T) {
	f := func(delays []uint16) bool {
		c := New()
		var fired []time.Duration
		for _, d := range delays {
			c.After(time.Duration(d)*time.Microsecond, "p", func() {
				fired = append(fired, c.Now())
			})
		}
		c.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCancelSubset: cancelling an arbitrary subset fires exactly
// the complement.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(n uint8, cancelMask uint64) bool {
		count := int(n%32) + 1
		c := New()
		events := make([]*Event, count)
		firedCount := 0
		for i := 0; i < count; i++ {
			events[i] = c.After(time.Duration(i)*time.Microsecond, "p", func() { firedCount++ })
		}
		cancelled := 0
		for i := 0; i < count; i++ {
			if cancelMask&(1<<uint(i)) != 0 {
				c.Cancel(events[i])
				cancelled++
			}
		}
		c.Run()
		return firedCount == count-cancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCancelThenRescheduleRecycledEvent: a cancelled event sits on the
// free list; Reschedule must rescue it (re-queue it exactly once), and a
// subsequent At must NOT hand out the same storage while it is queued.
func TestCancelThenRescheduleRecycledEvent(t *testing.T) {
	c := New()
	count := 0
	e := c.After(time.Millisecond, "x", func() { count++ })
	c.Cancel(e)
	if e.Pending() {
		t.Fatal("cancelled event still pending")
	}
	c.Reschedule(e, 2*time.Millisecond)
	if !e.Pending() {
		t.Fatal("rescheduled event not pending")
	}
	// The free list must not hand the rescued event's storage to a new
	// scheduling while it is queued.
	other := c.After(3*time.Millisecond, "y", func() {})
	if other == e {
		t.Fatal("free list reused a queued event")
	}
	c.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
}

// TestCancelledEventIsRecycled: storage of a cancelled event is reused by
// the next scheduling (the free list works), and the reused event carries
// the new callback/tag, not the old ones.
func TestCancelledEventIsRecycled(t *testing.T) {
	c := New()
	oldFired, newFired := false, false
	e := c.After(time.Millisecond, "old", func() { oldFired = true })
	c.Cancel(e)
	e2 := c.After(2*time.Millisecond, "new", func() { newFired = true })
	if e2 != e {
		t.Fatal("cancelled event was not recycled")
	}
	if e2.Tag() != "new" {
		t.Fatalf("recycled tag = %q", e2.Tag())
	}
	c.Run()
	if oldFired || !newFired {
		t.Fatalf("oldFired=%v newFired=%v", oldFired, newFired)
	}
}

// TestPeriodicRescheduleFromOwnCallback: the periodic-timer idiom — an
// event rescheduling itself from its own callback — must never recycle
// the in-flight event.
func TestPeriodicRescheduleFromOwnCallback(t *testing.T) {
	c := New()
	count := 0
	var e *Event
	e = c.After(time.Millisecond, "tick", func() {
		count++
		if count < 5 {
			c.Reschedule(e, c.Now()+time.Millisecond)
		}
	})
	c.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if c.Now() != 5*time.Millisecond {
		t.Fatalf("Now() = %v, want 5ms", c.Now())
	}
}

// TestHaltMidRunUntilPreservesQueue: halting from inside a callback stops
// RunUntil immediately; the remaining events stay queued and fire after
// Resume, in order.
func TestHaltMidRunUntilPreservesQueue(t *testing.T) {
	c := New()
	var order []int
	for i := 1; i <= 6; i++ {
		i := i
		c.After(time.Duration(i)*time.Millisecond, "n", func() {
			order = append(order, i)
			if i == 3 {
				c.Halt()
			}
		})
	}
	c.RunUntil(10 * time.Millisecond)
	if len(order) != 3 {
		t.Fatalf("order = %v, want 3 events before halt", order)
	}
	if c.Len() != 3 {
		t.Fatalf("Len() = %d, want 3 preserved", c.Len())
	}
	if c.Now() != 3*time.Millisecond {
		t.Fatalf("Now() = %v (RunUntil must not advance past the halt)", c.Now())
	}
	c.Resume()
	c.RunUntil(10 * time.Millisecond)
	want := []int{1, 2, 3, 4, 5, 6}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestManySameTimestampEventsFIFO: >4k events at one instant must fire in
// scheduling order — the (when, seq) tie-break must hold across the 4-ary
// heap's sift paths at real depths.
func TestManySameTimestampEventsFIFO(t *testing.T) {
	const n = 5000
	c := New()
	var order []int
	for i := 0; i < n; i++ {
		i := i
		c.At(time.Millisecond, "same", func() { order = append(order, i) })
	}
	c.Run()
	if len(order) != n {
		t.Fatalf("fired %d, want %d", len(order), n)
	}
	for i := 0; i < n; i++ {
		if order[i] != i {
			t.Fatalf("order[%d] = %d, want FIFO", i, order[i])
		}
	}
}

// TestInterleavedCancelRemoveHeapIntegrity: removals from the middle of a
// populated heap (Cancel of arbitrary events) must preserve dispatch
// order for the survivors.
func TestInterleavedCancelRemoveHeapIntegrity(t *testing.T) {
	c := New()
	const n = 1000
	events := make([]*Event, n)
	var fired []time.Duration
	for i := 0; i < n; i++ {
		d := time.Duration((i*7919)%997+1) * time.Microsecond
		events[i] = c.At(d, "p", func() { fired = append(fired, c.Now()) })
	}
	cancelled := 0
	for i := 0; i < n; i += 3 {
		c.Cancel(events[i])
		cancelled++
	}
	c.Run()
	if len(fired) != n-cancelled {
		t.Fatalf("fired %d, want %d", len(fired), n-cancelled)
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("dispatch order regressed at %d: %v < %v", i, fired[i], fired[i-1])
		}
	}
}

// TestSteadyStateScheduleIsAllocationFree: once the pool is primed, the
// schedule+dispatch cycle must not allocate (the campaign hot loop).
func TestSteadyStateScheduleIsAllocationFree(t *testing.T) {
	c := New()
	fn := func() {}
	// Prime the pool and the heap's backing array.
	for i := 0; i < 64; i++ {
		c.After(time.Duration(i+1)*time.Microsecond, "prime", fn)
	}
	c.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		c.After(time.Microsecond, "steady", fn)
		c.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule+dispatch allocates %.1f objects/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		e := c.After(time.Millisecond, "cancelled", fn)
		c.Cancel(e)
	})
	if allocs != 0 {
		t.Fatalf("schedule+cancel allocates %.1f objects/op, want 0", allocs)
	}
}

// TestPropertyDeterminism: two clocks fed the same randomized schedule
// dispatch identical sequences.
func TestPropertyDeterminism(t *testing.T) {
	run := func(seed uint64) []string {
		rng := rand.New(rand.NewPCG(seed, 0))
		c := New()
		var log []string
		var schedule func(depth int)
		schedule = func(depth int) {
			if depth > 3 {
				return
			}
			n := rng.IntN(4) + 1
			for i := 0; i < n; i++ {
				d := time.Duration(rng.IntN(1000)) * time.Microsecond
				tag := string(rune('a' + rng.IntN(26)))
				c.After(d, tag, func() {
					log = append(log, tag)
					if rng.IntN(3) == 0 {
						schedule(depth + 1)
					}
				})
			}
		}
		schedule(0)
		c.Run()
		return log
	}
	for seed := uint64(1); seed <= 20; seed++ {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: lengths differ: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: dispatch %d differs: %q vs %q", seed, i, a[i], b[i])
			}
		}
	}
}
