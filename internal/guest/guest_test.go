package guest

import (
	"testing"
	"time"

	"nilihype/internal/hv"
	"nilihype/internal/hw"
	"nilihype/internal/hypercall"
	"nilihype/internal/simclock"
)

func newWorld(t *testing.T) (*World, *hv.Hypervisor, *simclock.Clock) {
	t.Helper()
	clk := simclock.New()
	h, err := hv.New(clk, hv.Config{
		Machine:        hw.Config{CPUs: 4, MemoryMB: 1024, BlockSvc: 200 * time.Microsecond, NICLat: 30 * time.Microsecond},
		HeapFrames:     8192,
		LoggingEnabled: true,
		RecoveryPrep:   true,
		Seed:           11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	return NewWorld(h, 11), h, clk
}

func TestKindString(t *testing.T) {
	if BlkBench.String() != "BlkBench" || UnixBench.String() != "UnixBench" ||
		NetBench.String() != "NetBench" || Kind(8).String() != "kind(8)" {
		t.Fatal("kind names wrong")
	}
}

func TestBlkBenchCompletesCleanRun(t *testing.T) {
	w, h, clk := newWorld(t)
	vm, err := w.AddAppVM(Config{Kind: BlkBench, Dom: 1, CPU: 1, Duration: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	w.StartPrivVM()
	vm.Start()
	clk.RunUntil(time.Second)
	if failed, reason := h.Failed(); failed {
		t.Fatalf("hypervisor failed: %s", reason)
	}
	ok, reason := vm.Verdict()
	if !ok {
		t.Fatalf("BlkBench failed: %s (ops=%d)", reason, vm.OpsCompleted)
	}
	if vm.OpsCompleted < 50 {
		t.Fatalf("only %d ops in 300ms", vm.OpsCompleted)
	}
	if h.Machine.Block().Completed == 0 {
		t.Fatal("block device never used")
	}
	// Grants must be balanced: every completed op unmapped its grant.
	d, _ := h.Domain(1)
	if n := d.Maptrack.Active(); n > 2 {
		t.Fatalf("%d grant mappings leaked", n)
	}
}

func TestUnixBenchCompletesCleanRun(t *testing.T) {
	w, h, clk := newWorld(t)
	vm, err := w.AddAppVM(Config{Kind: UnixBench, Dom: 1, CPU: 1, Duration: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	vm.Start()
	clk.RunUntil(time.Second)
	if failed, reason := h.Failed(); failed {
		t.Fatalf("hypervisor failed: %s", reason)
	}
	if ok, reason := vm.Verdict(); !ok {
		t.Fatalf("UnixBench failed: %s (ops=%d)", reason, vm.OpsCompleted)
	}
	if h.Stats.Hypercalls < 500 {
		t.Fatalf("only %d hypercalls", h.Stats.Hypercalls)
	}
	// No leaked locks or irq counts in steady state.
	if held := h.Locks.HeldLocks(); len(held) != 0 {
		t.Fatalf("held locks in steady state: %v", held)
	}
	for cpu := 0; cpu < h.NumCPUs(); cpu++ {
		if h.IRQCount(cpu) != 0 {
			t.Fatalf("cpu%d irq count %d", cpu, h.IRQCount(cpu))
		}
	}
}

func TestNetBenchReceiverRepliesToSender(t *testing.T) {
	w, h, clk := newWorld(t)
	vm, err := w.AddAppVM(Config{Kind: NetBench, Dom: 2, CPU: 2, Duration: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	vm.Start()
	w.Sender.Start(2, 200*time.Millisecond)
	clk.RunUntil(time.Second)
	if failed, reason := h.Failed(); failed {
		t.Fatalf("hypervisor failed: %s", reason)
	}
	if w.Sender.Sent < 190 {
		t.Fatalf("sender sent only %d", w.Sender.Sent)
	}
	lossRate := 1 - float64(w.Sender.Received)/float64(w.Sender.Sent)
	if lossRate > 0.05 {
		t.Fatalf("loss rate %.2f", lossRate)
	}
	if ok, reason := vm.Verdict(); !ok {
		t.Fatalf("NetBench failed: %s", reason)
	}
	if w.Sender.FailedIntervals() != 0 {
		t.Fatalf("failed intervals on clean run: %d", w.Sender.FailedIntervals())
	}
	if w.Sender.ServiceInterruption() > 2*time.Millisecond {
		t.Fatalf("interruption %v on clean run", w.Sender.ServiceInterruption())
	}
}

func TestNetSenderGapMeasurement(t *testing.T) {
	w, h, clk := newWorld(t)
	vm, _ := w.AddAppVM(Config{Kind: NetBench, Dom: 2, CPU: 2, Duration: 400 * time.Millisecond})
	vm.Start()
	w.Sender.Start(2, 400*time.Millisecond)
	// Pause the hypervisor for 50ms mid-run (simulated recovery).
	clk.After(100*time.Millisecond, "pause", func() {
		h.Pause()
		start := clk.Now()
		clk.After(50*time.Millisecond, "resume", func() {
			h.ResumeRunnable()
			w.Sender.ExcludeWindow(start, clk.Now())
		})
	})
	clk.RunUntil(time.Second)
	gap := w.Sender.ServiceInterruption()
	if gap < 40*time.Millisecond || gap > 70*time.Millisecond {
		t.Fatalf("measured interruption %v, want ≈50ms", gap)
	}
	if w.Sender.FailedIntervals() != 0 {
		t.Fatalf("excluded window still failed %d intervals", w.Sender.FailedIntervals())
	}
}

func TestNetSenderFailedIntervalsWithoutExclusion(t *testing.T) {
	w, h, clk := newWorld(t)
	vm, _ := w.AddAppVM(Config{Kind: NetBench, Dom: 2, CPU: 2, Duration: 2500 * time.Millisecond})
	vm.Start()
	w.Sender.Start(2, 2500*time.Millisecond)
	// A long unannounced outage (e.g. a starved receiver) must fail the
	// 10%-drop criterion.
	clk.After(1100*time.Millisecond, "pause", func() {
		h.Pause()
		clk.After(400*time.Millisecond, "resume", func() { h.ResumeRunnable() })
	})
	clk.RunUntil(3 * time.Second)
	if w.Sender.FailedIntervals() == 0 {
		t.Fatal("400ms unannounced outage passed the 10% criterion")
	}
}

func TestSDCMarkFailsVerdict(t *testing.T) {
	w, _, clk := newWorld(t)
	vm, _ := w.AddAppVM(Config{Kind: UnixBench, Dom: 1, CPU: 1, Duration: 100 * time.Millisecond})
	vm.Start()
	w.CorruptGuestData(1)
	clk.RunUntil(500 * time.Millisecond)
	ok, reason := vm.Verdict()
	if ok || reason != "output differs from golden copy" {
		t.Fatalf("verdict = %v %q", ok, reason)
	}
}

func TestVerdictFailsWhenDomainFailed(t *testing.T) {
	w, h, clk := newWorld(t)
	vm, _ := w.AddAppVM(Config{Kind: UnixBench, Dom: 1, CPU: 1, Duration: 100 * time.Millisecond})
	vm.Start()
	clk.RunUntil(50 * time.Millisecond)
	d, _ := h.Domain(1)
	d.Fail("test kill")
	clk.RunUntil(500 * time.Millisecond)
	if ok, reason := vm.Verdict(); ok || reason == "" {
		t.Fatal("verdict passed for failed domain")
	}
}

func TestVerdictFailsOnStarvation(t *testing.T) {
	w, _, clk := newWorld(t)
	vm, _ := w.AddAppVM(Config{Kind: UnixBench, Dom: 1, CPU: 1, Duration: 100 * time.Millisecond})
	// Never started: no progress.
	_ = vm
	clk.RunUntil(200 * time.Millisecond)
	if ok, _ := vm.Verdict(); ok {
		t.Fatal("verdict passed with zero progress")
	}
}

func TestPrivVMBackgroundActivity(t *testing.T) {
	w, h, clk := newWorld(t)
	w.StartPrivVM()
	clk.RunUntil(500 * time.Millisecond)
	if h.Stats.Hypercalls < 50 {
		t.Fatalf("PrivVM issued only %d hypercalls", h.Stats.Hypercalls)
	}
	if w.PrivVMFailed() {
		t.Fatal("PrivVM failed on clean run")
	}
}

func TestPrivCreateDomainPostRecoveryCheck(t *testing.T) {
	w, h, clk := newWorld(t)
	clk.RunUntil(50 * time.Millisecond)
	ok := w.PrivCreateDomain(hypercall.CreateSpec{ID: 3, Name: "BlkBench", MemPages: 4096, PinCPU: 3})
	if !ok {
		t.Fatal("domctl create failed")
	}
	vm := w.AttachAppVM(Config{Kind: BlkBench, Dom: 3, CPU: 3, Duration: 200 * time.Millisecond})
	vm.Start()
	clk.RunUntil(time.Second)
	if failed, reason := h.Failed(); failed {
		t.Fatalf("hypervisor failed: %s", reason)
	}
	if ok, reason := vm.Verdict(); !ok {
		t.Fatalf("post-create BlkBench failed: %s", reason)
	}
}

func TestThreeAppVMSetupRunsClean(t *testing.T) {
	// The 3AppVM configuration of §VI-A: UnixBench + NetBench running,
	// PrivVM management in the background.
	w, h, clk := newWorld(t)
	w.StartPrivVM()
	u, err := w.AddAppVM(Config{Kind: UnixBench, Dom: 1, CPU: 1, Duration: 400 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	n, err := w.AddAppVM(Config{Kind: NetBench, Dom: 2, CPU: 2, Duration: 400 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	w.StartAll()
	w.Sender.Start(2, 450*time.Millisecond)
	clk.RunUntil(2 * time.Second)
	if failed, reason := h.Failed(); failed {
		t.Fatalf("hypervisor failed: %s", reason)
	}
	for _, vm := range []*AppVM{u, n} {
		if ok, reason := vm.Verdict(); !ok {
			t.Fatalf("%v failed: %s (ops=%d)", vm.Cfg.Kind, reason, vm.OpsCompleted)
		}
	}
	if got := len(w.Apps()); got != 2 {
		t.Fatalf("Apps() = %d", got)
	}
	if w.App(1) != u || w.App(99) != nil {
		t.Fatal("App lookup wrong")
	}
}

func TestProgressMark(t *testing.T) {
	w, _, clk := newWorld(t)
	vm, _ := w.AddAppVM(Config{Kind: UnixBench, Dom: 1, CPU: 1, Duration: 200 * time.Millisecond})
	vm.Start()
	clk.RunUntil(100 * time.Millisecond)
	vm.ResetProgressMark()
	if vm.OpsAfterMark != 0 {
		t.Fatal("mark not reset")
	}
	clk.RunUntil(300 * time.Millisecond)
	if vm.OpsAfterMark == 0 {
		t.Fatal("no progress after mark")
	}
}
