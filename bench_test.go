// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§VII), plus the design-choice ablations called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark regenerates its artifact's rows/series and reports them
// as custom metrics (success_%, noVMF_%, ms, overhead_%), so the output of
// a -bench run is the reproduced evaluation. Campaign sizes are scaled
// down from the paper's (which used 1000-5000 runs per campaign); the
// cmd/hyperrecover-* tools run the same experiments at any scale.
package nilihype_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"nilihype/internal/campaign"
	"nilihype/internal/cloc"
	"nilihype/internal/core"
	"nilihype/internal/guest"
	"nilihype/internal/inject"
)

// benchRuns is the campaign size per configuration point.
const benchRuns = 120

// BenchmarkTable1EnhancementLadder regenerates Table I: the successful
// recovery rate of microreset as each enhancement is added (1AppVM,
// fail-stop faults). Paper: 0%, 16.0%, 51.8%, 82.2%, 95.0%, 96.1%, (n/a).
func BenchmarkTable1EnhancementLadder(b *testing.B) {
	for _, rung := range core.Ladder() {
		rung := rung
		b.Run(sanitize(rung.Label), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				c := campaign.Campaign{
					Base: campaign.RunConfig{
						Setup:         campaign.OneAppVM,
						Fault:         inject.Failstop,
						Workload:      guest.UnixBench,
						Logging:       true,
						Recovery:      core.Config{Mechanism: core.Microreset, Enhancements: rung.Enh},
						BenchDuration: 2 * time.Second,
					},
					Runs: benchRuns,
				}
				rate, _ = c.Execute().SuccessRate()
			}
			b.ReportMetric(100*rate, "success_%")
		})
	}
}

// BenchmarkFigure2RecoveryRate regenerates Figure 2: successful recovery
// rate (and noVMF) of NiLiHype and ReHype for Failstop, Register and Code
// faults in the 3AppVM setup. Paper shape: the mechanisms tie on
// Failstop; ReHype holds a small edge on Register/Code; Code is lowest;
// NiLiHype stays above 88%.
func BenchmarkFigure2RecoveryRate(b *testing.B) {
	for _, mech := range []core.Mechanism{core.Microreset, core.Microreboot} {
		for _, ft := range []inject.FaultType{inject.Failstop, inject.Register, inject.Code} {
			mech, ft := mech, ft
			b.Run(fmt.Sprintf("%v/%v", mech, ft), func(b *testing.B) {
				var rate, novmf float64
				for i := 0; i < b.N; i++ {
					runs := benchRuns
					if ft != inject.Failstop {
						// Only ~20%/~53% of these manifest as detected.
						runs = benchRuns * 3
					}
					c := campaign.Campaign{
						Base: campaign.RunConfig{
							Setup:         campaign.ThreeAppVM,
							Fault:         ft,
							Logging:       true,
							Recovery:      core.Config{Mechanism: mech, Enhancements: core.AllEnhancements},
							BenchDuration: 3 * time.Second,
						},
						Runs: runs,
					}
					s := c.Execute()
					rate, _ = s.SuccessRate()
					novmf, _ = s.NoVMFRate()
				}
				b.ReportMetric(100*rate, "success_%")
				b.ReportMetric(100*novmf, "noVMF_%")
			})
		}
	}
}

// BenchmarkOutcomeBreakdown regenerates the §VII-A injection-outcome
// breakdowns. Paper: Register 74.8% non-manifested / 5.6% SDC / 19.6%
// detected; Code 35.0% / 12.1% / 52.9%.
func BenchmarkOutcomeBreakdown(b *testing.B) {
	for _, ft := range []inject.FaultType{inject.Register, inject.Code} {
		ft := ft
		b.Run(ft.String(), func(b *testing.B) {
			var nm, sdc, det float64
			for i := 0; i < b.N; i++ {
				c := campaign.Campaign{
					Base: campaign.RunConfig{
						Setup:         campaign.ThreeAppVM,
						Fault:         ft,
						Logging:       true,
						Recovery:      core.DefaultConfig(),
						BenchDuration: 3 * time.Second,
					},
					Runs: benchRuns * 3,
				}
				nm, sdc, det = c.Execute().OutcomeRates()
			}
			b.ReportMetric(100*nm, "nonmanifested_%")
			b.ReportMetric(100*sdc, "SDC_%")
			b.ReportMetric(100*det, "detected_%")
		})
	}
}

// BenchmarkTable2ReHypeLatency regenerates Table II: ReHype's recovery
// latency breakdown at the paper's 8 GB testbed. Paper total: 713 ms.
func BenchmarkTable2ReHypeLatency(b *testing.B) {
	var r campaign.LatencyResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = campaign.MeasureLatency(core.Microreboot, 8192, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Total.Seconds()*1000, "total_ms")
	b.Log("\n" + r.FormattedBreakdown)
}

// BenchmarkTable3NiLiHypeLatency regenerates Table III: NiLiHype's
// recovery latency breakdown at 8 GB. Paper total: 22 ms (21 ms page-frame
// scan + 1 ms others).
func BenchmarkTable3NiLiHypeLatency(b *testing.B) {
	var r campaign.LatencyResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = campaign.MeasureLatency(core.Microreset, 8192, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Total.Seconds()*1000, "total_ms")
	b.Log("\n" + r.FormattedBreakdown)
}

// BenchmarkServiceInterruption regenerates the §VII-B sender-side
// measurement: the NetBench sender on a separate host observes the
// recovery gap. Paper: 22 ms vs 713 ms, a >30x ratio.
func BenchmarkServiceInterruption(b *testing.B) {
	for _, mech := range []core.Mechanism{core.Microreset, core.Microreboot} {
		mech := mech
		b.Run(mech.String(), func(b *testing.B) {
			var gap time.Duration
			for i := 0; i < b.N; i++ {
				r, err := campaign.MeasureLatency(mech, 8192, 3)
				if err != nil {
					b.Fatal(err)
				}
				gap = r.ServiceInterruption
			}
			b.ReportMetric(gap.Seconds()*1000, "interruption_ms")
		})
	}
}

// BenchmarkFigure3Overhead regenerates Figure 3: hypervisor processing
// overhead during normal operation for NiLiHype and NiLiHype* (logging
// off) across the four configurations. Paper shape: logging dominates;
// BlkBench is the worst case, staying under 1% of total CPU at a <5%
// hypervisor share.
func BenchmarkFigure3Overhead(b *testing.B) {
	for _, cfg := range campaign.AllOverheadConfigs() {
		cfg := cfg
		b.Run(cfg.String(), func(b *testing.B) {
			var p campaign.OverheadPoint
			for i := 0; i < b.N; i++ {
				p = campaign.MeasureOverhead(cfg, 2*time.Second, 1)
			}
			b.ReportMetric(p.WithLogging(), "overhead_%")
			b.ReportMetric(p.WithoutLogging(), "overhead_nolog_%")
		})
	}
}

// BenchmarkTable4LOC regenerates the Table IV methodology: LOC of
// recovery-only versus normal-operation code in this implementation.
func BenchmarkTable4LOC(b *testing.B) {
	var rep cloc.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = cloc.ScanTree(os.DirFS("."), nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.PerCategory[cloc.RecoveryOnly].Code), "recovery_loc")
	b.ReportMetric(float64(rep.PerCategory[cloc.NormalOperation].Code), "normal_op_loc")
	b.Log("\n" + rep.Format())
}

// BenchmarkAblationDiscardScope compares discarding all execution threads
// (the NiLiHype design) with discarding only the detecting CPU's thread —
// the §III-C design choice. The all-threads choice must win.
func BenchmarkAblationDiscardScope(b *testing.B) {
	for _, scope := range []core.DiscardScope{core.AllThreads, core.DetectingOnly} {
		scope := scope
		name := "AllThreads"
		if scope == core.DetectingOnly {
			name = "DetectingOnly"
		}
		b.Run(name, func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				c := campaign.Campaign{
					Base: campaign.RunConfig{
						Setup:    campaign.OneAppVM,
						Fault:    inject.Failstop,
						Workload: guest.UnixBench,
						Logging:  true,
						Recovery: core.Config{
							Mechanism:    core.Microreset,
							Enhancements: core.AllEnhancements,
							Scope:        scope,
						},
						BenchDuration: 2 * time.Second,
					},
					Runs: benchRuns,
				}
				rate, _ = c.Execute().SuccessRate()
			}
			b.ReportMetric(100*rate, "success_%")
		})
	}
}

// BenchmarkAblationPFScan toggles the page-frame-descriptor consistency
// scan: skipping it saves ~21 ms of latency but costs recovery rate
// (§VII-B cites a 4% reduction).
func BenchmarkAblationPFScan(b *testing.B) {
	for _, withScan := range []bool{true, false} {
		withScan := withScan
		name := "WithScan"
		enh := core.AllEnhancements
		if !withScan {
			name = "WithoutScan"
			enh &^= core.EnhPFScan
		}
		b.Run(name, func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				c := campaign.Campaign{
					Base: campaign.RunConfig{
						Setup:         campaign.ThreeAppVM,
						Fault:         inject.Register,
						Logging:       true,
						Recovery:      core.Config{Mechanism: core.Microreset, Enhancements: enh},
						BenchDuration: 3 * time.Second,
					},
					Runs: benchRuns * 3,
				}
				rate, _ = c.Execute().SuccessRate()
			}
			b.ReportMetric(100*rate, "success_%")
		})
	}
}

// BenchmarkAblationLogging toggles the §IV retry-mitigation logging:
// NiLiHype* avoids the logging overhead but loses recovery rate (§IV
// cites ~12%: 84% vs 96% on the 1AppVM fail-stop setup).
func BenchmarkAblationLogging(b *testing.B) {
	for _, logging := range []bool{true, false} {
		logging := logging
		name := "NiLiHype"
		if !logging {
			name = "NiLiHypeStar"
		}
		b.Run(name, func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				c := campaign.Campaign{
					Base: campaign.RunConfig{
						Setup:         campaign.OneAppVM,
						Fault:         inject.Failstop,
						Workload:      guest.UnixBench,
						Logging:       logging,
						Recovery:      core.DefaultConfig(),
						BenchDuration: 2 * time.Second,
					},
					Runs: benchRuns,
				}
				rate, _ = c.Execute().SuccessRate()
			}
			b.ReportMetric(100*rate, "success_%")
		})
	}
}

// BenchmarkExtensionParallelScan exercises the §VII-B mitigation for
// large-memory hosts: sharding the page-frame consistency scan across
// cores. At 64 GB the sequential scan alone costs 168 ms; eight cores
// bring recovery latency back near the paper's 8 GB figure.
func BenchmarkExtensionParallelScan(b *testing.B) {
	for _, scanCPUs := range []int{1, 2, 4, 8} {
		scanCPUs := scanCPUs
		b.Run(fmt.Sprintf("64GB/%dcores", scanCPUs), func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				r, err := campaign.MeasureLatencyCfg(core.Config{
					Mechanism:    core.Microreset,
					Enhancements: core.AllEnhancements,
					ScanCPUs:     scanCPUs,
				}, 65536, 3)
				if err != nil {
					b.Fatal(err)
				}
				total = r.Total
			}
			b.ReportMetric(total.Seconds()*1000, "total_ms")
		})
	}
}

// sanitize turns a Table I rung label into a benchmark name.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r == ' ' || r == '+':
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkExtensionHVMvsPV compares recovery rates for paravirtualized
// and fully hardware-virtualized AppVMs. §VI-A: "fault injection results
// obtained with AppVM supported by full hardware virtualization (HVMs)
// are very similar to those obtained with paravirtualized AppVMs" — the
// hazards (non-idempotent mapping counts, held locks) are the same whether
// the request is a hypercall or a VM exit.
func BenchmarkExtensionHVMvsPV(b *testing.B) {
	for _, hvm := range []bool{false, true} {
		hvm := hvm
		name := "PV"
		if hvm {
			name = "HVM"
		}
		b.Run(name, func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				c := campaign.Campaign{
					Base: campaign.RunConfig{
						Setup:         campaign.OneAppVM,
						Fault:         inject.Failstop,
						Workload:      guest.UnixBench,
						Logging:       true,
						HVM:           hvm,
						Recovery:      core.DefaultConfig(),
						BenchDuration: 2 * time.Second,
					},
					Runs: benchRuns,
				}
				rate, _ = c.Execute().SuccessRate()
			}
			b.ReportMetric(100*rate, "success_%")
		})
	}
}
