package guest

import (
	"fmt"

	"nilihype/internal/prng"
)

// FileStore models the files a BlkBench guest creates, copies, reads,
// writes and removes (§VI-A: "multiple 1MB files containing random
// content"), together with the golden copy the paper's failure criterion
// compares against ("one or more files produced by the benchmark are
// different from the ones in a golden copy").
//
// Content is represented by a deterministic 64-bit digest derived from the
// benchmark seed and the operation index — the same function generates the
// golden copy, so a clean run always matches, and any corruption of stored
// content (the SDC path) is caught mechanically by the comparison.
type FileStore struct {
	seed   uint64
	stored map[int]uint64
	nextID int
	// pathCorrupted models damage to the I/O path itself (ring state, a
	// buffer pointer): every subsequent transfer is corrupted, so the
	// damage survives the benchmark's file-removal window.
	pathCorrupted bool
}

// NewFileStore builds a file store for a benchmark seed.
func NewFileStore(seed uint64) *FileStore {
	return &FileStore{seed: seed, stored: make(map[int]uint64)}
}

// Reset rewinds the store to the state NewFileStore(seed) would produce,
// keeping the stored map's capacity — the forked-run path reseeds the same
// store every run instead of reallocating it.
func (fs *FileStore) Reset(seed uint64) {
	fs.seed = seed
	clear(fs.stored)
	fs.nextID = 0
	fs.pathCorrupted = false
}

// contentDigest is the deterministic "random content" of file id.
func (fs *FileStore) contentDigest(id int) uint64 {
	return prng.Scramble(fs.seed ^ uint64(id)*0x9e3779b97f4a7c15)
}

// WriteNext creates the next file with its generated content, returning
// the file ID. BlkBench's create/copy/write operations all funnel here —
// the stored digest models the data that went through the granted buffer
// to the disk.
func (fs *FileStore) WriteNext() int {
	id := fs.nextID
	fs.nextID++
	fs.stored[id] = fs.contentDigest(id)
	if fs.pathCorrupted {
		fs.stored[id] ^= 0x4
	}
	return id
}

// Remove deletes a file (BlkBench's remove phase). Removed files are no
// longer compared.
func (fs *FileStore) Remove(id int) { delete(fs.stored, id) }

// Len returns the number of live files.
func (fs *FileStore) Len() int { return len(fs.stored) }

// Corrupt applies silent data corruption: one stored file's content is
// flipped, and the I/O path is marked corrupted so subsequent transfers
// are damaged too (the corruption persists past the benchmark's remove
// phase). Returns false if there are no files yet.
func (fs *FileStore) Corrupt(pick uint64) bool {
	fs.pathCorrupted = true
	if len(fs.stored) == 0 {
		return false
	}
	// Deterministic pick: k-th live file in ID order.
	ids := make([]int, 0, len(fs.stored))
	for id := range fs.stored {
		ids = append(ids, id)
	}
	minID := ids[0]
	for _, id := range ids {
		if id < minID {
			minID = id
		}
	}
	target := -1
	k := int(pick % uint64(len(fs.stored)))
	for id := minID; ; id++ {
		if _, ok := fs.stored[id]; ok {
			if k == 0 {
				target = id
				break
			}
			k--
		}
	}
	fs.stored[target] ^= 1 << (pick % 64)
	return true
}

// CompareGolden re-generates every live file's expected content and
// returns the IDs that differ (§VI-A failure criterion 1). A clean store
// returns nil.
func (fs *FileStore) CompareGolden() []int {
	var bad []int
	for id, got := range fs.stored {
		if got != fs.contentDigest(id) {
			bad = append(bad, id)
		}
	}
	return bad
}

// Describe summarizes the store for diagnostics.
func (fs *FileStore) Describe() string {
	return fmt.Sprintf("%d files, %d golden mismatches", fs.Len(), len(fs.CompareGolden()))
}
