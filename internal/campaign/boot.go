package campaign

import (
	"fmt"
	"time"

	"nilihype/internal/core"
	"nilihype/internal/detect"
	"nilihype/internal/guest"
	"nilihype/internal/hv"
	"nilihype/internal/hw"
	"nilihype/internal/simclock"
	"nilihype/internal/traffic"
)

// hvConfig is the standard campaign machine configuration — the single
// boot shape shared by fault-injection runs, the latency experiment and
// the overhead experiment (which alone varies logging/prep).
// MachineCPUs is the campaign machine's CPU count (§VI-A testbed shape);
// exported so the trace tooling can label all per-CPU timeline lanes.
const MachineCPUs = 8

func hvConfig(seed uint64, memoryMB int, logging, recoveryPrep bool, flightCap int) hv.Config {
	return hv.Config{
		Machine: hw.Config{
			CPUs:     MachineCPUs,
			MemoryMB: memoryMB,
			BlockSvc: 200 * time.Microsecond,
			NICLat:   30 * time.Microsecond,
		},
		HeapFrames:             heapFrames,
		LoggingEnabled:         logging,
		RecoveryPrep:           recoveryPrep,
		FlightRecorderCapacity: flightCap,
		Seed:                   seed,
	}
}

// bootHypervisor builds and boots a hypervisor on a fresh clock.
func bootHypervisor(cfg hv.Config) (*simclock.Clock, *hv.Hypervisor, error) {
	clk := simclock.New()
	h, err := hv.New(clk, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("setup: %w", err)
	}
	if err := h.Boot(); err != nil {
		return nil, nil, fmt.Errorf("boot: %w", err)
	}
	return clk, h, nil
}

// imageKey identifies the pristine boot image a run forks from: every
// RunConfig field that shapes the pre-injection system, and none that vary
// per run (the seed and all injection parameters are applied after the
// snapshot, so runs differing only in those share one image).
type imageKey struct {
	Setup         Setup
	Workload      guest.Kind
	Logging       bool
	BenchDuration time.Duration
	MemoryMB      int
	HVM           bool
	FlightCap     int
}

func keyOf(rc RunConfig) imageKey {
	rc = rc.withDefaults()
	return imageKey{
		Setup:         rc.Setup,
		Workload:      rc.Workload,
		Logging:       rc.Logging,
		BenchDuration: rc.BenchDuration,
		MemoryMB:      rc.MemoryMB,
		HVM:           rc.HVM,
		FlightCap:     rc.FlightRecorderCapacity,
	}
}

// image is a booted target system captured at its pristine boot-complete
// point. The first run consumes the live state directly (a cold boot and
// a first fork are the same thing); every later run restores the snapshot
// and re-arms the per-run state.
//
// The build phase is carefully RNG-draw-free: domain creation, timers and
// hook wiring consume no randomness, so the image is seed-independent and
// the per-run reseeds put both RNG streams exactly where a cold boot with
// that seed would.
type image struct {
	clk   *simclock.Clock
	h     *hv.Hypervisor
	world *guest.World
	det   *detect.Detector

	// engine is the CURRENT run's recovery engine. The detector is part
	// of the image (its watchdog timers are snapshot state), so its hook
	// dispatches through this slot rather than binding one run's engine.
	engine *core.Engine

	// appCfgs is the AppVM creation order (SeedAppVM must follow it to
	// consume the world stream like the legacy combined path).
	appCfgs []guest.Config

	snap  *hv.Snapshot
	wsnap *guest.WorldSnapshot

	// res and apps are per-run scratch recycled across runs of this image:
	// run() rebuilds them in place and returns a shallow copy of res, so a
	// campaign's steady state appends into already-grown backing arrays
	// instead of reallocating them every run. The copy-on-retain contract
	// (see Result.Clone) is what makes the aliasing safe.
	res  Result
	apps []*guest.AppVM

	// traffic is the open-loop population engine, created lazily on the
	// first traffic-enabled run and re-armed per run (traffic is applied
	// after the snapshot like the sender, so it is not part of the image
	// key — trafficCfg guards against a differently-configured run
	// sharing the image). slo is the per-run scratch Result.SLO points
	// into, under the same copy-on-retain contract as res.
	traffic    *traffic.Engine
	trafficCfg traffic.Config
	slo        traffic.SLO

	// used marks that a run has consumed the pristine state, so the next
	// run must restore first.
	used bool
}

// buildImage boots the target system for rc's shape and snapshots it at
// the boot-complete point: platform up, PrivVM ticking, detectors armed,
// AppVM domains created but no benchmark started, no randomness drawn, no
// clock event dispatched.
func buildImage(rc RunConfig) (*image, error) {
	rc = rc.withDefaults()
	clk, h, err := bootHypervisor(hvConfig(rc.Seed, rc.MemoryMB, rc.Logging, true, rc.FlightRecorderCapacity))
	if err != nil {
		return nil, err
	}
	h.SetSchedFluxProb(hv.DefaultSchedFluxProb)

	world := guest.NewWorld(h, rc.Seed^0x5eed)
	world.StartPrivVM()

	img := &image{clk: clk, h: h, world: world}
	img.det = detect.New(h, func(e detect.Event) {
		if img.engine != nil {
			img.engine.OnDetection(e)
		}
	})
	img.det.Start()

	switch rc.Setup {
	case OneAppVM:
		img.appCfgs = []guest.Config{
			{Kind: rc.Workload, Dom: unixDom, CPU: unixCPU, Duration: rc.BenchDuration, HVM: rc.HVM},
		}
	default:
		img.appCfgs = []guest.Config{
			{Kind: guest.UnixBench, Dom: unixDom, CPU: unixCPU, Duration: rc.BenchDuration, HVM: rc.HVM},
			{Kind: guest.NetBench, Dom: netDom, CPU: netCPU, Duration: rc.BenchDuration},
		}
	}
	for _, cfg := range img.appCfgs {
		if _, err := world.CreateAppVM(cfg); err != nil {
			return nil, fmt.Errorf("setup: %w", err)
		}
	}

	img.snap = h.Snapshot()
	img.wsnap = world.Snapshot()
	return img, nil
}
