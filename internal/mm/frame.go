// Package mm models the hypervisor's memory-management state: the page
// frame descriptor table (Xen's struct page_info array), the hypervisor
// heap allocator, and guest page-table accounting.
//
// Two pieces of this state drive the paper's results directly:
//
//   - Each page frame descriptor holds a validation bit and a use counter
//     that hypercall handlers update separately. A fault between the two
//     updates leaves them inconsistent; the recovery-time consistency scan
//     (both mechanisms run it) walks every descriptor and repairs the
//     mismatch. The scan dominates NiLiHype's 22 ms recovery latency
//     (Table III) and scales with memory size (§VII-B).
//
//   - The heap's allocated-page set is what ReHype must record and
//     re-integrate across reboot (Table II "Memory initialization").
package mm

import (
	"fmt"
	"math/rand/v2"
)

// FrameType classifies a physical page frame.
type FrameType int

// Frame types.
const (
	FrameFree      FrameType = iota + 1 // on the heap free list
	FrameHeap                           // allocated from the hypervisor heap
	FrameGuest                          // owned by a guest as ordinary RAM
	FramePageTable                      // validated as a guest page table
)

// String returns the frame type name.
func (t FrameType) String() string {
	switch t {
	case FrameFree:
		return "free"
	case FrameHeap:
		return "heap"
	case FrameGuest:
		return "guest"
	case FramePageTable:
		return "pagetable"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// NoDomain marks a frame with no owning domain.
const NoDomain = -1

// PageFrame is one page frame descriptor. UseCount and Validated are the
// two components the paper calls out as separately updated and therefore
// vulnerable to being left inconsistent by a partially executed hypercall
// (§VII-B).
type PageFrame struct {
	Type      FrameType
	Owner     int // owning domain, NoDomain if none
	UseCount  int // reference/type count
	Validated bool
}

// consistent reports whether the descriptor satisfies the invariant the
// recovery scan enforces: a validated page-table frame must be referenced,
// and a referenced page-table frame must be validated.
func (f *PageFrame) consistent() bool {
	if f.Type != FramePageTable {
		return true
	}
	return (f.UseCount > 0) == f.Validated
}

// FrameTable is the array of page frame descriptors covering physical
// memory.
type FrameTable struct {
	frames []PageFrame
}

// NewFrameTable builds a table of n free frames.
func NewFrameTable(n int) *FrameTable {
	ft := &FrameTable{frames: make([]PageFrame, n)}
	for i := range ft.frames {
		ft.frames[i] = PageFrame{Type: FrameFree, Owner: NoDomain}
	}
	return ft
}

// Len returns the number of page frames.
func (ft *FrameTable) Len() int { return len(ft.frames) }

// Frame returns descriptor i for inspection or mutation.
func (ft *FrameTable) Frame(i int) *PageFrame { return &ft.frames[i] }

// CountType returns how many frames have the given type.
func (ft *FrameTable) CountType(t FrameType) int {
	n := 0
	for i := range ft.frames {
		if ft.frames[i].Type == t {
			n++
		}
	}
	return n
}

// InconsistentFrames returns the indices of descriptors violating the
// validation-bit/use-counter invariant.
func (ft *FrameTable) InconsistentFrames() []int {
	var out []int
	for i := range ft.frames {
		if !ft.frames[i].consistent() {
			out = append(out, i)
		}
	}
	return out
}

// ScanAndRepair is the recovery-time consistency scan: it visits every
// descriptor and repairs validation-bit/use-counter mismatches, returning
// the number repaired. The caller charges simulated time proportional to
// Len() (Table III: 21 ms for the 2M descriptors of an 8 GB host).
func (ft *FrameTable) ScanAndRepair() int {
	repaired := 0
	for i := range ft.frames {
		f := &ft.frames[i]
		if f.consistent() {
			continue
		}
		// Repair direction mirrors Xen: trust the use counter when it
		// is positive (a reference exists, so finish the validation);
		// otherwise drop the stale validation.
		if f.UseCount > 0 {
			f.Validated = true
		} else {
			f.Validated = false
		}
		repaired++
	}
	return repaired
}

// CorruptRandomDescriptor flips one descriptor into an inconsistent state,
// modeling error propagation into the frame table. It returns the frame
// index.
func (ft *FrameTable) CorruptRandomDescriptor(rng *rand.Rand) int {
	i := rng.IntN(len(ft.frames))
	f := &ft.frames[i]
	f.Type = FramePageTable
	if rng.IntN(2) == 0 {
		f.UseCount = 1 + rng.IntN(3)
		f.Validated = false
	} else {
		f.UseCount = 0
		f.Validated = true
	}
	return i
}
