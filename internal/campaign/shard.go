package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Multi-process sharding: a campaign is split into contiguous seed-range
// shards, each executed by a worker process (the campaign CLI re-execs
// itself in a hidden worker mode), and the per-shard Summaries are merged
// in shard-index order. Because every Summary field is an exact-integer
// counter with a commutative, associative merge — and the worker protocol
// round-trips those integers through JSON losslessly — the merged Summary
// is bit-identical to a single-process Execute over the same seed range,
// whatever the shard count.
//
// The parent/worker split exists for throughput, not semantics: a single
// Go process tops out on GC and scheduler coordination long before a
// multi-core box does, so campaigns shard across processes the same way
// they already shard across worker goroutines within one.

// ShardSpec is the work order for one campaign shard: the campaign fields
// that survive process boundaries (OnResult, being a function, does not)
// plus the shard's identity. It is the JSON message the parent writes to a
// worker's stdin.
type ShardSpec struct {
	// Index is this shard's position (0-based); Shards is the total.
	Index  int
	Shards int

	Base        RunConfig
	Runs        int
	Parallelism int
	SeedBase    uint64
	ColdBoot    bool
}

// Campaign returns the executable campaign this spec describes.
func (sp ShardSpec) Campaign() Campaign {
	return Campaign{
		Base:        sp.Base,
		Runs:        sp.Runs,
		Parallelism: sp.Parallelism,
		SeedBase:    sp.SeedBase,
		ColdBoot:    sp.ColdBoot,
	}
}

// PlanShards partitions c into n contiguous shards. Global run i (0-based)
// uses seed c.SeedBase+i+1; shard k receives a contiguous block of that
// sequence via its own SeedBase offset, so the shards jointly cover
// exactly the single-process seed set with no overlap. Earlier shards take
// the remainder when the split is uneven. Shards beyond the run count are
// dropped (never emitted empty).
func PlanShards(c Campaign, n int) []ShardSpec {
	if n < 1 {
		n = 1
	}
	if n > c.Runs {
		n = c.Runs
	}
	if c.Runs <= 0 {
		return nil
	}
	specs := make([]ShardSpec, 0, n)
	per, rem := c.Runs/n, c.Runs%n
	start := 0
	for k := 0; k < n; k++ {
		runs := per
		if k < rem {
			runs++
		}
		specs = append(specs, ShardSpec{
			Index:       k,
			Shards:      n,
			Base:        c.Base,
			Runs:        runs,
			Parallelism: c.Parallelism,
			SeedBase:    c.SeedBase + uint64(start),
			ColdBoot:    c.ColdBoot,
		})
		start += runs
	}
	return specs
}

// shardEnvelope is the worker→parent result message: the shard's Summary
// tagged with its index so the parent can reject a crossed wire.
type shardEnvelope struct {
	Index   int     `json:"index"`
	Summary Summary `json:"summary"`
}

// RunShardWorker is the worker-process body: decode a ShardSpec from in,
// execute it, and write the result envelope to out. The campaign CLI's
// hidden -shard-worker mode is exactly this over stdin/stdout.
func RunShardWorker(in io.Reader, out io.Writer) error {
	var spec ShardSpec
	if err := json.NewDecoder(in).Decode(&spec); err != nil {
		return fmt.Errorf("shard worker: decode spec: %w", err)
	}
	c := spec.Campaign()
	sum := c.Execute()
	if err := json.NewEncoder(out).Encode(shardEnvelope{Index: spec.Index, Summary: sum}); err != nil {
		return fmt.Errorf("shard worker: encode summary: %w", err)
	}
	return nil
}

// DecodeShardSummary parses a worker's output stream and returns the
// Summary, verifying the envelope answers the expected shard. A truncated
// or malformed stream (worker crashed mid-write) is an error, never a
// silent partial merge.
func DecodeShardSummary(r io.Reader, wantIndex int) (Summary, error) {
	var env shardEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return Summary{}, fmt.Errorf("shard %d: decode summary: %w", wantIndex, err)
	}
	if env.Index != wantIndex {
		return Summary{}, fmt.Errorf("shard %d: summary labeled for shard %d", wantIndex, env.Index)
	}
	return env.Summary, nil
}

// SpawnFunc launches one shard worker and returns its Summary. The
// subprocess implementation lives in the CLI (it needs os.Executable); the
// indirection keeps the driver testable with in-process and misbehaving
// fakes. Implementations must honor ctx cancellation — that is how the
// driver enforces the per-shard deadline on a hung worker.
type SpawnFunc func(ctx context.Context, spec ShardSpec) (Summary, error)

// ShardStatus reports one shard's fate.
type ShardStatus struct {
	Index    int
	Runs     int
	Attempts int    // spawn attempts consumed (1 = clean first try)
	Err      string // terminal error; empty on success
}

// ShardOptions configures ExecuteSharded.
type ShardOptions struct {
	// Spawn launches a worker (required).
	Spawn SpawnFunc
	// Timeout bounds each spawn attempt (0 = unbounded).
	Timeout time.Duration
	// Retries is how many times a failed shard is respawned (a fresh
	// worker over the same spec; the default 1 tolerates one transient
	// crash without doubling a healthy campaign's cost). Negative
	// disables retry.
	Retries int
	// OnShardDone, if non-nil, observes each shard's terminal status in
	// completion order; calls are serialized.
	OnShardDone func(ShardStatus)
}

// DefaultShardRetries is ShardOptions.Retries' zero-value meaning.
const DefaultShardRetries = 1

// ExecuteSharded plans c into n shards, spawns a worker per shard
// concurrently, and merges the per-shard Summaries in shard-index order —
// deterministic, and bit-identical to c.Execute() when every shard
// survives. A shard whose spawn fails (crash, malformed output, deadline)
// is retried per the options; shards that still fail are reported in the
// statuses and in the returned error, and the Summary merges the
// survivors only — callers get a loud signal plus the best available data,
// never a silently short count.
func ExecuteSharded(c Campaign, n int, opt ShardOptions) (Summary, []ShardStatus, error) {
	specs := PlanShards(c, n)
	merged := Summary{Config: c.Base,
		FailReasons: make(map[string]int), SuccessByAttempt: make(map[int]int)}
	if len(specs) == 0 {
		return merged, nil, nil
	}
	retries := opt.Retries
	if retries == 0 {
		retries = DefaultShardRetries
	} else if retries < 0 {
		retries = 0
	}

	sums := make([]Summary, len(specs))
	ok := make([]bool, len(specs))
	statuses := make([]ShardStatus, len(specs))
	var mu sync.Mutex // serializes OnShardDone
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int, spec ShardSpec) {
			defer wg.Done()
			var lastErr error
			attempts := 0
			for attempts <= retries {
				attempts++
				ctx, cancel := context.Background(), context.CancelFunc(func() {})
				if opt.Timeout > 0 {
					ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
				}
				sum, err := opt.Spawn(ctx, spec)
				expired := ctx.Err() == context.DeadlineExceeded
				cancel()
				if err == nil {
					sums[i], ok[i], lastErr = sum, true, nil
					break
				}
				lastErr = err
				if expired {
					// Deadline expiry is terminal, not transient: the shard's
					// work does not shrink on a respawn, so an identical fresh
					// worker would burn another full Timeout reaching the same
					// kill. Retries exist for crashes and protocol faults.
					break
				}
			}
			st := ShardStatus{Index: spec.Index, Runs: spec.Runs, Attempts: attempts}
			if lastErr != nil {
				st.Err = lastErr.Error()
			}
			statuses[i] = st
			if opt.OnShardDone != nil {
				mu.Lock()
				opt.OnShardDone(st)
				mu.Unlock()
			}
		}(i, specs[i])
	}
	wg.Wait()

	var failed []int
	for i := range specs {
		if !ok[i] {
			failed = append(failed, specs[i].Index)
			continue
		}
		merged.Runs += sums[i].Runs
		merged.merge(&sums[i])
	}
	if len(failed) > 0 {
		return merged, statuses, fmt.Errorf(
			"campaign: %d of %d shard(s) failed (first: shard %d: %s); summary covers %d of %d runs",
			len(failed), len(specs), failed[0], statuses[failed[0]].Err, merged.Runs, c.Runs)
	}
	return merged, statuses, nil
}
