module nilihype

go 1.22
