// Package cloc is a small CLOC-equivalent line counter used to reproduce
// the methodology of the paper's implementation-complexity comparison
// (Table IV, §VII-D): lines of code are counted per file, blank lines and
// comments excluded, and bucketed into code that runs during normal
// operation versus code that runs only during recovery.
package cloc

import (
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Counts is one file's line breakdown.
type Counts struct {
	Code    int
	Comment int
	Blank   int
}

// Total returns all lines.
func (c Counts) Total() int { return c.Code + c.Comment + c.Blank }

// Add accumulates.
func (c *Counts) Add(o Counts) {
	c.Code += o.Code
	c.Comment += o.Comment
	c.Blank += o.Blank
}

// CountSource counts Go source lines the way CLOC does: blank lines,
// comment lines (// and /* */ blocks), and code lines. A line holding
// both code and a trailing comment counts as code.
func CountSource(src string) Counts {
	var c Counts
	inBlock := false
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		switch {
		case inBlock:
			c.Comment++
			if strings.Contains(t, "*/") {
				inBlock = false
			}
		case t == "":
			c.Blank++
		case strings.HasPrefix(t, "//"):
			c.Comment++
		case strings.HasPrefix(t, "/*"):
			c.Comment++
			if !strings.Contains(t[2:], "*/") {
				inBlock = true
			}
		default:
			c.Code++
		}
	}
	// Trailing newline produces one phantom blank.
	if strings.HasSuffix(src, "\n") && c.Blank > 0 {
		c.Blank--
	}
	return c
}

// Category buckets a source file per Table IV.
type Category int

// Categories (§VII-D): category 1 is code executing during normal
// operation to enable/enhance recovery; category 2 executes only during
// recovery.
const (
	NormalOperation Category = iota + 1
	RecoveryOnly
	Substrate // everything else (the platform being recovered)
)

// String returns the category label.
func (c Category) String() string {
	switch c {
	case NormalOperation:
		return "normal operation"
	case RecoveryOnly:
		return "recovery only"
	case Substrate:
		return "substrate"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// Report is the per-category tally over a source tree.
type Report struct {
	PerCategory map[Category]Counts
	Files       int
}

// Categorize buckets a repository-relative path. The recovery engines
// (internal/core) are recovery-only; the logging/retry machinery
// (undo log, injection bookkeeping is test machinery) that runs during
// normal operation is category 1; everything else is substrate.
func Categorize(rel string) Category {
	rel = filepath.ToSlash(rel)
	switch {
	case strings.Contains(rel, "internal/core/"):
		return RecoveryOnly
	case strings.HasSuffix(rel, "hv/recovery.go"):
		return RecoveryOnly
	case strings.HasSuffix(rel, "hypercall/undo.go"):
		return NormalOperation
	default:
		return Substrate
	}
}

// ScanTree counts all non-test Go files under root, bucketing with
// categorize (Categorize by default).
func ScanTree(fsys fs.FS, categorize func(string) Category) (Report, error) {
	if categorize == nil {
		categorize = Categorize
	}
	rep := Report{PerCategory: make(map[Category]Counts)}
	err := fs.WalkDir(fsys, ".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := fs.ReadFile(fsys, path)
		if err != nil {
			return err
		}
		c := rep.PerCategory[categorize(path)]
		c.Add(CountSource(string(data)))
		rep.PerCategory[categorize(path)] = c
		rep.Files++
		return nil
	})
	return rep, err
}

// Format renders the report next to the paper's Table IV framing.
func (r Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Implementation complexity (Table IV methodology), %d files:\n", r.Files)
	var cats []Category
	for c := range r.PerCategory {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	for _, cat := range cats {
		c := r.PerCategory[cat]
		fmt.Fprintf(&b, "  %-18s %6d code  %6d comment  %6d blank\n",
			cat.String()+":", c.Code, c.Comment, c.Blank)
	}
	return b.String()
}
