package hypercall

import (
	"fmt"
	"math/rand/v2"
	"time"

	"nilihype/internal/dom"
	"nilihype/internal/evtchn"
	"nilihype/internal/locking"
	"nilihype/internal/mm"
	"nilihype/internal/sched"
	"nilihype/internal/telemetry"
	"nilihype/internal/xentime"
)

// SpinError reports that a step tried to take a spinlock that is already
// held. During normal operation this cannot happen (handlers run to
// completion); after a failed recovery that left a lock held by a
// discarded thread, the acquiring CPU spins forever and the watchdog
// detects a hang.
type SpinError struct {
	Lock *locking.Lock
}

// Error implements error.
func (e *SpinError) Error() string {
	return fmt.Sprintf("hypercall: spinning on held lock %q (owner cpu%d)", e.Lock.Name(), e.Lock.Owner())
}

// Step is one injectable unit of a handler program.
type Step struct {
	// Name identifies the step in traces ("inc_refcount", ...).
	Name string

	// Instrs is the instruction cost; the injector's second-level
	// trigger counts these, so Instrs is also the step's injection
	// occupancy weight.
	Instrs uint64

	// C is the call this step operates on — for a multicall batch, the
	// component call (the completion-log steps bind the outer batch).
	// Build stamps it when instantiating the op's static step template;
	// interrupt-handler steps built by the hypervisor leave it nil. The
	// binding is what lets step bodies be shared package-level functions
	// instead of per-dispatch closures (the campaign-throughput hot path:
	// programs are built at every dispatch and retry).
	C *Call

	// T is the software timer a step operates on — the timer interrupt
	// handler emits a run/rearm step pair per due timer, and binding the
	// timer here (like C above) lets those bodies be shared functions
	// instead of per-tick closures. Nil outside timer-IRQ programs.
	T *xentime.Timer

	// Do performs the step's state mutation against e, reading call
	// arguments from st.C (st is the step itself). A non-nil error is a
	// failed hypervisor assertion (panic). A *SpinError is a spin on a
	// held lock.
	Do func(e *Env, st *Step) error

	// Unmitigated marks the §IV residual window: a retry after a fault
	// in this step fails even with undo logging (the paper: "there are
	// likely to be several infrequently-used non-idempotent hypercall
	// handlers that we have not properly enhanced... the changes do not
	// resolve 100% of the problem").
	Unmitigated bool
}

// Program is an ordered list of steps implementing one handler.
type Program []Step

// Instrs returns the program's total instruction cost.
func (p Program) Instrs() uint64 {
	var n uint64
	for i := range p {
		n += p[i].Instrs
	}
	return n
}

// Statics bundles the hypervisor's well-known static locks (declared via
// the lock macro, so they live in the static-lock segment).
type Statics struct {
	Console  *locking.Lock
	DomList  *locking.Lock
	HeapLock *locking.Lock
}

// NewStatics declares the static locks in the registry.
func NewStatics(reg *locking.Registry) *Statics {
	return &Statics{
		Console:  reg.NewStatic("console_lock"),
		DomList:  reg.NewStatic("domlist_lock"),
		HeapLock: reg.NewStatic("heap_lock"),
	}
}

// Env is the per-CPU execution environment handler programs run against.
// The hypervisor core owns one per CPU and rebinds Call/Domain at dispatch.
type Env struct {
	CPU int

	// Subsystems.
	Frames  *mm.FrameTable
	Heap    *mm.Heap
	Sched   *sched.Scheduler
	Timers  *xentime.Subsystem
	Domains *dom.List
	Broker  *evtchn.Broker
	Statics *Statics
	RNG     *rand.Rand

	// Now returns the current virtual time (bound to the clock).
	Now func() time.Duration

	// Wake makes a vCPU runnable (bound to the hypervisor's wake path).
	Wake func(*sched.VCPU)

	// Notify reports an event-channel delivery to the guest layer (may
	// be nil in unit tests).
	Notify func(domID, port int)

	// ConsoleWrite appends to the hypervisor console ring (may be nil in
	// unit tests).
	ConsoleWrite func(msg string)

	// SwitchContext saves/loads vCPU register contexts on a context
	// switch (bound to the hypervisor's hardware access; may be nil in
	// unit tests).
	SwitchContext func(cpu int, prev, next *sched.VCPU)

	// CreateDomain / DestroyDomain are bound to the hypervisor's domain
	// lifecycle (used by domctl).
	CreateDomain  func(CreateSpec) error
	DestroyDomain func(id int) error

	// Undo is this CPU's undo log.
	Undo *UndoLog

	// LoggingEnabled selects whether critical writes are undo-logged.
	// Disabling it is the NiLiHype* configuration (Figure 3): less
	// overhead, ~12% lower recovery rate (§IV).
	LoggingEnabled bool

	// RecoveryPrep enables the always-on recovery bookkeeping NiLiHype
	// and ReHype share (hypercall-retry setup, multicall completion
	// logging). Disabled only in the stock-Xen baseline used by the
	// overhead experiment (Figure 3).
	RecoveryPrep bool

	// ExtraCycles accumulates logging overhead cycles during a step; the
	// hypervisor core drains it into the CPU's cycle counters after each
	// step. This is the hypervisor-processing overhead Figure 3 measures.
	ExtraCycles uint64

	// Tel, when set, receives lock acquisition/contention counters. Nil
	// (standalone Env construction in tests) disables the counting.
	Tel *telemetry.Telemetry

	// Call is the call currently executing on this CPU.
	Call *Call

	// heldLocks tracks locks the current program acquired, so an
	// abandoned program is known to have leaked them.
	heldLocks []*locking.Lock

	// progBuf is the reusable step buffer Build stamps programs into.
	// At most one program is ever in flight per CPU (interrupts are
	// refused and dispatch is non-reentrant while the CPU is busy), so
	// the buffer is recycled at the next dispatch without copying.
	progBuf Program

	// scr is the per-program scratch state shared between a handler's
	// steps (see progScratch).
	scr progScratch
}

// progScratch holds the per-program mutable state that a handler's steps
// share. Each op's entry step resets the fields it uses, which matches
// the old per-build closure captures exactly: execution (and a rebuild at
// retry time) always starts from the entry step, so the program begins
// with a clean slate.
type progScratch struct {
	// op is the in-flight context switch (sched_op).
	op *sched.SwitchOp
	// notified/notifiedPort carry the event-channel delivery target from
	// set_pending to upcall (-1 = none).
	notified     int
	notifiedPort int
	// bad marks an invalid event-channel port (-EINVAL, not a panic).
	bad bool
	// created marks that domctl_create's insert already ran (its own
	// retry finds the domain present without tripping the assertion).
	created bool
}

// Undo-log write costs in cycles, by record class. Grant-map tracking
// logs full mapping state (page, handle, flags) while page-table refcount
// logging is compact and batched — which is why BlkBench, whose I/O path
// does a grant map/unmap pair per file operation, shows the highest
// hypervisor processing overhead in Figure 3 ("Most of this overhead is
// due to logging").
const (
	LogCostMMU    = 35
	LogCostMemory = 60
	LogCostGrant  = 560
	LogCostDomctl = 300
)

// Acquire takes a lock for the current program, returning a *SpinError if
// it is held.
func (e *Env) Acquire(l *locking.Lock) error {
	if !l.TryAcquire(e.CPU) {
		e.Tel.Inc(telemetry.CtrLockContended)
		return &SpinError{Lock: l}
	}
	e.Tel.Inc(telemetry.CtrLockAcquisitions)
	e.heldLocks = append(e.heldLocks, l)
	return nil
}

// Release drops a lock acquired by the current program.
func (e *Env) Release(l *locking.Lock) {
	l.Release(e.CPU)
	for i, h := range e.heldLocks {
		if h == l {
			e.heldLocks = append(e.heldLocks[:i], e.heldLocks[i+1:]...)
			return
		}
	}
}

// HeldLocks returns the locks the in-flight program currently holds.
func (e *Env) HeldLocks() []*locking.Lock {
	out := make([]*locking.Lock, len(e.heldLocks))
	copy(out, e.heldLocks)
	return out
}

// ResetProgramState clears per-program bookkeeping (held-lock tracking).
// Called by the hypervisor core when a program starts, completes, or is
// discarded by recovery (the locks themselves are NOT released — that is
// precisely the recovery hazard).
func (e *Env) ResetProgramState() {
	// Truncate rather than nil: the Env lives for the whole run and a
	// program's first Acquire should not have to regrow the slice.
	e.heldLocks = e.heldLocks[:0]
	e.ExtraCycles = 0
}

// LogWrite records an undo action for a critical-variable write if logging
// is enabled, charging the class-specific logging overhead. Handlers call
// it immediately before performing the write.
func (e *Env) LogWrite(desc string, cycles uint64, undo func()) {
	if !e.LoggingEnabled {
		return
	}
	e.Undo.Record(desc, undo)
	e.ExtraCycles += cycles
}

// logWriteRecord is LogWrite for data-driven undo records: the hot handlers
// use it so a critical write logs plain data instead of allocating a
// closure capture (the campaign fast path logs tens of thousands of undo
// records per run).
func (e *Env) logWriteRecord(cycles uint64, r UndoRecord) {
	if !e.LoggingEnabled {
		return
	}
	e.Undo.RecordData(r)
	e.ExtraCycles += cycles
}

// SwitchOp returns the in-flight context switch shared between a scheduler
// program's steps. The hypervisor's scheduler-softirq steps read it; the
// program's pick_next entry step assigns it (acting as the reset — every
// execution and every retry rebuild starts there).
func (e *Env) SwitchOp() *sched.SwitchOp { return e.scr.op }

// SetSwitchOp records the in-flight context switch (see SwitchOp).
func (e *Env) SetSwitchOp(op *sched.SwitchOp) { e.scr.op = op }

// targetDomain resolves a domain by ID.
func (e *Env) targetDomain(id int) (*dom.Domain, error) {
	return e.Domains.ByID(id)
}
