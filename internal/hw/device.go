package hw

import (
	"fmt"
	"time"
)

// BlockRequest is one I/O request submitted to the block device.
type BlockRequest struct {
	// Owner identifies the requesting domain; the completion callback
	// receives it back so the hypervisor can post the right event.
	Owner int
	// Sectors is the request size in 512-byte sectors; service time
	// scales mildly with it.
	Sectors int
	// Write distinguishes writes from reads (same timing model; recorded
	// for workload statistics).
	Write bool
	// Cookie is an opaque request tag returned on completion.
	Cookie uint64
}

// BlockCompletion is passed to the completion callback registered with
// SetCompleter.
type BlockCompletion struct {
	Req BlockRequest
	OK  bool
}

// BlockDevice models a single-queue disk: requests are serviced in FIFO
// order, each taking the configured service time (plus a per-sector
// component), and completion raises IRQBlock through the IO-APIC.
type BlockDevice struct {
	machine *Machine
	svc     time.Duration

	queue     []BlockRequest
	busy      bool
	completed []BlockCompletion

	// Stats
	Submitted uint64
	Completed uint64
}

func newBlockDevice(m *Machine, svc time.Duration) *BlockDevice {
	return &BlockDevice{machine: m, svc: svc}
}

// Submit enqueues a request. The device starts servicing immediately if
// idle.
func (b *BlockDevice) Submit(req BlockRequest) {
	b.Submitted++
	b.queue = append(b.queue, req)
	if !b.busy {
		b.startNext()
	}
}

func (b *BlockDevice) startNext() {
	if len(b.queue) == 0 {
		b.busy = false
		return
	}
	b.busy = true
	req := b.queue[0]
	b.queue = b.queue[1:]
	cost := b.svc + time.Duration(req.Sectors)*500*time.Nanosecond
	b.machine.Clock.After(cost, fmt.Sprintf("blk-complete dom%d", req.Owner), func() {
		b.Completed++
		b.completed = append(b.completed, BlockCompletion{Req: req, OK: true})
		b.machine.ioapic.Raise(IRQBlock)
		b.startNext()
	})
}

// DrainCompletions returns and clears the completion ring. The hypervisor's
// block interrupt handler calls this.
func (b *BlockDevice) DrainCompletions() []BlockCompletion {
	out := b.completed
	b.completed = nil
	return out
}

// QueueDepth returns the number of queued (not yet serviced) requests.
func (b *BlockDevice) QueueDepth() int { return len(b.queue) }

// Packet is a network frame arriving at or leaving the NIC.
type Packet struct {
	// Flow identifies the logical flow (e.g. the NetBench session).
	Flow int
	// Seq is the sender's sequence number.
	Seq uint64
	// SentAt is the virtual send timestamp at the origin host; the
	// NetBench sender uses it to measure service interruption.
	SentAt time.Duration
}

// RxRingSlots is the NIC receive ring capacity. While the hypervisor is
// paused (or a CPU is stuck) the ring fills; further packets are dropped —
// which is what makes long outages visible to the NetBench sender as lost
// packets, while a short (NiLiHype-scale) recovery pause fits in the ring.
const RxRingSlots = 64

// NIC models the network interface. Inbound packets (from the external
// sender host) arrive via Inject and raise IRQNIC after the delivery
// latency; outbound packets are handed to the registered transmit sink
// after the same latency.
type NIC struct {
	machine *Machine
	lat     time.Duration

	rxRing []Packet
	txSink func(Packet)

	// Stats
	RxCount   uint64
	RxDropped uint64
	TxCount   uint64
}

func newNIC(m *Machine, lat time.Duration) *NIC {
	return &NIC{machine: m, lat: lat}
}

// SetTxSink registers the callback that receives transmitted packets (the
// simulated external host).
func (n *NIC) SetTxSink(sink func(Packet)) { n.txSink = sink }

// Inject delivers pkt from the wire: after the NIC latency it lands in the
// RX ring and IRQNIC is raised.
func (n *NIC) Inject(pkt Packet) {
	n.machine.Clock.After(n.lat, "nic-rx", func() {
		if len(n.rxRing) >= RxRingSlots {
			n.RxDropped++
			return
		}
		n.RxCount++
		n.rxRing = append(n.rxRing, pkt)
		n.machine.ioapic.Raise(IRQNIC)
	})
}

// DrainRx returns and clears the RX ring.
func (n *NIC) DrainRx() []Packet {
	out := n.rxRing
	n.rxRing = nil
	return out
}

// Transmit sends pkt to the wire; the TX sink sees it after the NIC
// latency.
func (n *NIC) Transmit(pkt Packet) {
	n.TxCount++
	if n.txSink == nil {
		return
	}
	n.machine.Clock.After(n.lat, "nic-tx", func() { n.txSink(pkt) })
}

// RxDepth returns the number of undrained RX packets.
func (n *NIC) RxDepth() int { return len(n.rxRing) }
