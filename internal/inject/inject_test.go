package inject

import (
	"math"
	"strings"
	"testing"
	"time"

	"nilihype/internal/hv"
	"nilihype/internal/hw"
	"nilihype/internal/prng"
	"nilihype/internal/simclock"
)

// corruptRecorder records guest-data corruption requests.
type corruptRecorder struct{ doms []int }

func (c *corruptRecorder) CorruptGuestData(dom int) { c.doms = append(c.doms, dom) }

func newTarget(t *testing.T, seed uint64) (*hv.Hypervisor, *simclock.Clock) {
	t.Helper()
	clk := simclock.New()
	h, err := hv.New(clk, hv.Config{
		Machine:        hw.Config{CPUs: 4, MemoryMB: 256, BlockSvc: 100 * time.Microsecond, NICLat: 10 * time.Microsecond},
		HeapFrames:     4096,
		LoggingEnabled: true,
		RecoveryPrep:   true,
		Seed:           seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := h.CreateDomain(1, "app", 2048, 1, false); err != nil {
		t.Fatal(err)
	}
	return h, clk
}

func TestFaultTypeAndEffectStrings(t *testing.T) {
	if Failstop.String() != "Failstop" || Register.String() != "Register" ||
		Code.String() != "Code" || FaultType(9).String() != "fault(9)" {
		t.Fatal("fault names wrong")
	}
	for _, tt := range []struct {
		e    Effect
		want string
	}{{EffectNone, "none"}, {EffectSDC, "sdc"}, {EffectPanic, "panic"},
		{EffectWedge, "wedge"}, {EffectLatent, "latent"}, {Effect(99), "effect(99)"}} {
		if tt.e.String() != tt.want {
			t.Fatalf("%v != %v", tt.e, tt.want)
		}
	}
}

func TestFailstopAlwaysDetectedImmediately(t *testing.T) {
	h, clk := newTarget(t, 1)
	var panics []string
	h.SetPanicHook(func(cpu int, reason string) { panics = append(panics, reason) })
	inj := New(h, nil, prng.New(1, 2), Params{
		Type: Failstop, WindowLo: 10 * time.Millisecond, WindowHi: 50 * time.Millisecond,
	})
	inj.Schedule()
	clk.RunUntil(500 * time.Millisecond)
	if !inj.Fired {
		t.Fatal("injection never fired")
	}
	if inj.FaultEffect != EffectPanic {
		t.Fatalf("effect = %v", inj.FaultEffect)
	}
	if len(panics) != 1 || !strings.Contains(panics[0], "failstop") {
		t.Fatalf("panics = %v", panics)
	}
}

func TestTriggerFiresInsideWindow(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		h, clk := newTarget(t, seed)
		h.SetPanicHook(func(int, string) {})
		var firedAt time.Duration
		h.SetNMIHook(func(int) {}) // quiet
		inj := New(h, nil, prng.New(seed, 2), Params{
			Type: Failstop, WindowLo: 100 * time.Millisecond, WindowHi: 200 * time.Millisecond,
		})
		origHook := func(cpu int, reason string) { firedAt = clk.Now() }
		h.SetPanicHook(origHook)
		inj.Schedule()
		clk.RunUntil(time.Second)
		if !inj.Fired {
			t.Fatalf("seed %d: never fired", seed)
		}
		// The instruction budget (<=20000) adds at most a few ms beyond
		// the window.
		if firedAt < 100*time.Millisecond || firedAt > 260*time.Millisecond {
			t.Fatalf("seed %d: fired at %v, outside window+slack", seed, firedAt)
		}
	}
}

func TestRegisterFaultFlipsExactlyOneBit(t *testing.T) {
	h, clk := newTarget(t, 3)
	h.SetPanicHook(func(int, string) {})
	var before [hw.NumRegs]uint64
	inj := New(h, &corruptRecorder{}, prng.New(3, 2), Params{
		Type: Register, WindowLo: 10 * time.Millisecond, WindowHi: 20 * time.Millisecond,
		AppDomains: []int{1},
	})
	inj.Schedule()
	// Snapshot registers right before the window opens.
	clk.At(10*time.Millisecond-time.Microsecond, "snap", func() {
		for i := 0; i < 4; i++ {
			before = h.Machine.CPU(1).Regs
			_ = i
		}
	})
	clk.RunUntil(300 * time.Millisecond)
	if !inj.Fired {
		t.Fatal("never fired")
	}
	cpu := h.Machine.CPU(inj.Point.CPU)
	if inj.Point.CPU == 1 {
		diff := cpu.Regs[inj.Reg] ^ before[inj.Reg]
		if diff != 1<<uint(inj.Bit) {
			t.Fatalf("register diff = %x, want single bit %d", diff, inj.Bit)
		}
	}
	if int(inj.Reg) >= hw.NumInjectableRegs {
		t.Fatalf("injected reg %v outside the 19 targets", inj.Reg)
	}
}

// TestManifestationDistributions verifies the drawn effect proportions
// against the paper's outcome breakdowns (§VII-A) over many trials of the
// manifestation draw alone.
func TestManifestationDistributions(t *testing.T) {
	tests := []struct {
		name                string
		d                   manifestDist
		wantDead, wantSDC   float64
		wantDetectedAtLeast float64
	}{
		{"register", registerDist, 0.748, 0.056, 0.19},
		{"code", codeDist, 0.350, 0.121, 0.52},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rng := prng.New(42, 99)
			const n = 20000
			counts := map[string]int{}
			for i := 0; i < n; i++ {
				r := rng.Float64()
				switch {
				case r < tt.d.dead:
					counts["dead"]++
				case r < tt.d.dead+tt.d.sdc:
					counts["sdc"]++
				default:
					counts["detected"]++
				}
			}
			if got := float64(counts["dead"]) / n; math.Abs(got-tt.wantDead) > 0.01 {
				t.Fatalf("dead = %.3f, want %.3f", got, tt.wantDead)
			}
			if got := float64(counts["sdc"]) / n; math.Abs(got-tt.wantSDC) > 0.006 {
				t.Fatalf("sdc = %.3f, want %.3f", got, tt.wantSDC)
			}
			if got := float64(counts["detected"]) / n; got < tt.wantDetectedAtLeast {
				t.Fatalf("detected = %.3f, want >= %.3f", got, tt.wantDetectedAtLeast)
			}
		})
	}
}

func TestSDCCorruptsIssuingDomain(t *testing.T) {
	// Force the SDC path by hunting seeds until one draws it; the
	// corruption must land on an AppVM.
	for seed := uint64(1); seed < 200; seed++ {
		h, clk := newTarget(t, seed)
		h.SetPanicHook(func(int, string) {})
		rec := &corruptRecorder{}
		inj := New(h, rec, prng.New(seed, 7), Params{
			Type: Register, WindowLo: 10 * time.Millisecond, WindowHi: 30 * time.Millisecond,
			AppDomains: []int{1},
		})
		inj.Schedule()
		clk.RunUntil(400 * time.Millisecond)
		if inj.FaultEffect == EffectSDC {
			if len(rec.doms) != 1 {
				t.Fatalf("seed %d: SDC did not corrupt a guest", seed)
			}
			if rec.doms[0] != 1 {
				t.Fatalf("corrupted dom %d, want an AppVM", rec.doms[0])
			}
			return
		}
	}
	t.Fatal("no seed produced SDC in 200 tries")
}

func TestLatentCorruptionIsDetectedLater(t *testing.T) {
	for seed := uint64(1); seed < 400; seed++ {
		h, clk := newTarget(t, seed)
		var panicAt time.Duration
		var reason string
		h.SetPanicHook(func(cpu int, r string) {
			if panicAt == 0 {
				panicAt = clk.Now()
				reason = r
			}
		})
		inj := New(h, &corruptRecorder{}, prng.New(seed, 7), Params{
			Type: Register, WindowLo: 10 * time.Millisecond, WindowHi: 30 * time.Millisecond,
			AppDomains: []int{1},
		})
		inj.Schedule()
		clk.RunUntil(time.Second)
		if inj.FaultEffect != EffectLatent {
			continue
		}
		if len(inj.Corruptions) == 0 {
			t.Fatalf("seed %d: latent effect with no corruption record", seed)
		}
		if panicAt == 0 {
			t.Fatalf("seed %d: latent corruption never detected (%v)", seed, inj.Corruptions)
		}
		if !strings.Contains(reason, "fault") && !strings.Contains(reason, "ASSERT") &&
			!strings.Contains(reason, "corrupted") {
			t.Fatalf("seed %d: unexpected detection reason %q", seed, reason)
		}
		return
	}
	t.Fatal("no seed produced a latent effect in 400 tries")
}

func TestWedgeEffectStopsCPU(t *testing.T) {
	for seed := uint64(1); seed < 600; seed++ {
		h, clk := newTarget(t, seed)
		h.SetPanicHook(func(int, string) {})
		inj := New(h, &corruptRecorder{}, prng.New(seed, 7), Params{
			Type: Code, WindowLo: 10 * time.Millisecond, WindowHi: 30 * time.Millisecond,
			AppDomains: []int{1},
		})
		inj.Schedule()
		clk.RunUntil(50 * time.Millisecond)
		if inj.FaultEffect == EffectWedge {
			if !h.PerCPU(inj.Point.CPU).Wedged {
				t.Fatalf("seed %d: wedge effect but CPU not wedged", seed)
			}
			return
		}
	}
	t.Fatal("no seed produced a wedge in 600 tries")
}

func TestDefaultBudgetApplied(t *testing.T) {
	h, _ := newTarget(t, 1)
	inj := New(h, nil, prng.New(1, 1), Params{Type: Failstop})
	if inj.params.MaxInstrBudget != DefaultMaxInstrBudget {
		t.Fatalf("budget = %d", inj.params.MaxInstrBudget)
	}
}

// TestLatentCorruptionClassesHitRealState hunts seeds until each latent
// corruption class has been observed, and verifies each one damaged the
// state it claims to (the paper's §VII-A failure-cause taxonomy).
func TestLatentCorruptionClassesHitRealState(t *testing.T) {
	seen := make(map[string]bool)
	want := []string{"pf-descriptor", "sched-meta", "heap-freelist", "domain-list",
		"static-scratch", "allocated-object", "privvm", "recovery-path", "scratch",
		"timer-heap", "evtchn", "grant", "lock"}
	for seed := uint64(1); seed < 8000 && len(seen) < len(want); seed++ {
		h, clk := newTarget(t, seed)
		h.SetPanicHook(func(int, string) {})
		inj := New(h, &corruptRecorder{}, prng.New(seed, 7), Params{
			Type: Code, WindowLo: 10 * time.Millisecond, WindowHi: 30 * time.Millisecond,
			AppDomains: []int{1},
		})
		inj.Schedule()
		clk.RunUntil(40 * time.Millisecond)
		if inj.FaultEffect != EffectLatent {
			continue
		}
		for _, c := range inj.Corruptions {
			key := c
			if idx := strings.IndexByte(c, ':'); idx > 0 {
				key = c[:idx]
			}
			if idx := strings.IndexByte(key, '['); idx > 0 {
				key = key[:idx]
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			switch key {
			case "pf-descriptor":
				if len(h.Frames.InconsistentFrames()) == 0 {
					t.Fatal("pf-descriptor corruption left no inconsistency")
				}
			case "sched-meta":
				if len(h.Sched.CheckConsistency()) == 0 {
					t.Fatal("sched-meta corruption left no inconsistency")
				}
			case "heap-freelist":
				if len(h.Heap.ValidateFreeList()) == 0 {
					t.Fatal("heap-freelist corruption left no detectable damage")
				}
			case "domain-list":
				if h.Domains.CheckLinks() == nil {
					t.Fatal("domain-list corruption left intact links")
				}
			case "static-scratch":
				if len(h.StaticScratchDamage()) == 0 {
					t.Fatal("static-scratch corruption left no damaged words")
				}
			case "allocated-object":
				if len(h.Heap.DamagedObjects()) == 0 {
					t.Fatal("allocated-object corruption left no damaged canary")
				}
			case "privvm":
				d, err := h.Domain(0)
				if err != nil || !d.Failed {
					t.Fatal("privvm corruption did not fail Dom0")
				}
			case "recovery-path":
				if h.RecoveryPathIntact() {
					t.Fatal("recovery-path corruption left the vector intact")
				}
			case "timer-heap":
				// A stalled deadline persists (the timer never pops); a
				// buried one fires spuriously and self-heals on the next
				// reactivation, so only the stall is asserted on.
				if strings.Contains(c, "stalled") && len(h.Timers.CheckHealth(clk.Now())) == 0 {
					t.Fatal("stalled timer not flagged by CheckHealth")
				}
			case "evtchn":
				if len(h.Broker.CheckLinks()) == 0 {
					t.Fatal("evtchn corruption left intact linkage")
				}
			case "grant":
				if !grantCountsMismatch(h) {
					t.Fatal("grant corruption left counts matching maptrack")
				}
			case "lock":
				if len(h.Locks.HeldLocks()) == 0 {
					t.Fatal("lock corruption left no lock held")
				}
			}
		}
	}
	for _, w := range want {
		if !seen[w] {
			t.Errorf("corruption class %q never observed in 8000 seeds", w)
		}
	}
}

// TestScheduleNormalizesReversedWindow: a reversed injection window
// (WindowHi < WindowLo) is normalized by swapping the bounds, so the
// trigger still lands inside the intended interval instead of panicking
// in the clock (negative span) or firing at a bogus time.
func TestScheduleNormalizesReversedWindow(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		h, clk := newTarget(t, seed)
		var firedAt time.Duration
		h.SetPanicHook(func(int, string) {
			if firedAt == 0 {
				firedAt = clk.Now()
			}
		})
		inj := New(h, nil, prng.New(seed, 2), Params{
			Type: Failstop, WindowLo: 200 * time.Millisecond, WindowHi: 100 * time.Millisecond,
		})
		inj.Schedule()
		clk.RunUntil(time.Second)
		if !inj.Fired {
			t.Fatalf("seed %d: reversed-window injection never fired", seed)
		}
		// Same slack as TestTriggerFiresInsideWindow: the instruction
		// budget adds a few ms past the (swapped) window.
		if firedAt < 100*time.Millisecond || firedAt > 260*time.Millisecond {
			t.Fatalf("seed %d: fired at %v, outside normalized window+slack", seed, firedAt)
		}
	}
}

// TestScheduleClampsNegativeWindow: negative bounds clamp to zero rather
// than asking the clock to schedule in the past.
func TestScheduleClampsNegativeWindow(t *testing.T) {
	h, clk := newTarget(t, 3)
	h.SetPanicHook(func(int, string) {})
	inj := New(h, nil, prng.New(3, 2), Params{
		Type: Failstop, WindowLo: -30 * time.Millisecond, WindowHi: -10 * time.Millisecond,
	})
	inj.Schedule()
	clk.RunUntil(200 * time.Millisecond)
	if !inj.Fired {
		t.Fatal("clamped-window injection never fired")
	}
}

// TestScheduleDetectionDegenerateBounds: latency bounds with hi <= lo must
// collapse to lo instead of feeding rand.Int64N a non-positive span (which
// panics). Both detections must still fire.
func TestScheduleDetectionDegenerateBounds(t *testing.T) {
	h, clk := newTarget(t, 11)
	var reasons []string
	h.SetPanicHook(func(_ int, r string) { reasons = append(reasons, r) })
	inj := New(h, nil, prng.New(11, 2), Params{Type: Code})
	inj.Corruptions = []string{"synthetic"}
	inj.scheduleDetection(1, 20*time.Millisecond, 20*time.Millisecond) // hi == lo
	inj.scheduleDetection(2, 20*time.Millisecond, 5*time.Millisecond)  // hi < lo
	clk.RunUntil(200 * time.Millisecond)
	if len(reasons) == 0 {
		t.Fatal("degenerate-bounds detections never fired")
	}
	for _, r := range reasons {
		if !strings.Contains(r, "corrupted state hit") {
			t.Fatalf("unexpected detection reason %q", r)
		}
	}
}

// TestBurstFaultFires: with BurstWindow set, a second independent fault is
// armed within the window of the first one's firing, with the configured
// burst type.
func TestBurstFaultFires(t *testing.T) {
	for seed := uint64(1); seed < 100; seed++ {
		h, clk := newTarget(t, seed)
		h.SetPanicHook(func(int, string) {})
		inj := New(h, &corruptRecorder{}, prng.New(seed, 7), Params{
			Type: Register, WindowLo: 10 * time.Millisecond, WindowHi: 30 * time.Millisecond,
			AppDomains: []int{1}, BurstWindow: 50 * time.Millisecond, BurstFault: Failstop,
		})
		inj.Schedule()
		clk.RunUntil(500 * time.Millisecond)
		if !inj.Fired || !inj.BurstFired {
			continue
		}
		if inj.BurstEffect != EffectPanic {
			t.Fatalf("seed %d: burst effect = %v, want panic (Failstop burst)", seed, inj.BurstEffect)
		}
		return
	}
	t.Fatal("no seed produced a burst fault in 100 tries")
}

// TestBurstDefaultsToPrimaryType: a zero BurstFault reuses the primary
// fault type.
func TestBurstDefaultsToPrimaryType(t *testing.T) {
	for seed := uint64(1); seed < 100; seed++ {
		h, clk := newTarget(t, seed)
		h.SetPanicHook(func(int, string) {})
		inj := New(h, &corruptRecorder{}, prng.New(seed, 7), Params{
			Type: Failstop, WindowLo: 10 * time.Millisecond, WindowHi: 30 * time.Millisecond,
			AppDomains: []int{1}, BurstWindow: 50 * time.Millisecond,
		})
		inj.Schedule()
		clk.RunUntil(500 * time.Millisecond)
		if inj.BurstFired {
			if inj.BurstEffect != EffectPanic {
				t.Fatalf("seed %d: burst effect = %v, want the primary's failstop panic", seed, inj.BurstEffect)
			}
			return
		}
	}
	t.Fatal("no seed produced a burst fault in 100 tries")
}

// TestFaultDuringRecoveryArmsAtPause: the FaultDuringRecovery trigger arms
// when recovery pauses the system and fires in the first post-resume
// hypervisor activity — not before any pause happens.
func TestFaultDuringRecoveryArmsAtPause(t *testing.T) {
	h, clk := newTarget(t, 5)
	h.SetPanicHook(func(int, string) {})
	inj := New(h, nil, prng.New(5, 7), Params{
		Type: Failstop, WindowLo: 10 * time.Millisecond, WindowHi: 30 * time.Millisecond,
		FaultDuringRecovery: true,
	})
	inj.Schedule()
	clk.RunUntil(50 * time.Millisecond)
	if !inj.Fired {
		t.Fatal("primary never fired")
	}
	if inj.DuringRecoveryFired {
		t.Fatal("during-recovery trigger fired before any recovery pause")
	}
	// Simulate a recovery attempt: Pause arms the trigger via the pause
	// hook; post-resume activity then hits it.
	h.Pause()
	h.ResumeRunnable()
	clk.RunUntil(300 * time.Millisecond)
	if !inj.DuringRecoveryFired {
		t.Fatal("during-recovery fault never fired after the recovery pause")
	}
	if inj.DuringEffect != EffectPanic {
		t.Fatalf("during-recovery effect = %v, want panic", inj.DuringEffect)
	}
}

// grantCountsMismatch reports whether any grant entry's MapCount disagrees
// with the maptrack tables (the invariant the audit rechecks).
func grantCountsMismatch(h *hv.Hypervisor) bool {
	type key struct{ dom, ref int }
	expected := make(map[key]int)
	doms := h.Domains.Preserved()
	for _, d := range doms {
		if d.Maptrack == nil {
			continue
		}
		for _, mp := range d.Maptrack.Mappings() {
			expected[key{mp.GranterDom, mp.Ref}]++
		}
	}
	for _, d := range doms {
		if d.GrantTab == nil {
			continue
		}
		for ref := 0; ref < d.GrantTab.Len(); ref++ {
			if e, err := d.GrantTab.Entry(ref); err == nil && e.MapCount != expected[key{d.ID, ref}] {
				return true
			}
		}
	}
	return false
}
