// Package inject is the software-implemented fault injector — the
// equivalent of the Gigan injector the paper ports and uses (§VI-C).
//
// Faults are injected through a two-level chained trigger: a first-level
// timer that fires at a random time inside the configured window, and a
// second-level trigger that fires after a uniformly random number of
// instructions (0..20000) have executed in the target hypervisor. Three
// fault types are injected: Failstop (PC := 0), Register (one random bit
// flip in one of the 16 GPRs / SP / FLAGS / PC), and Code (a bit flip in
// the next instruction's bytes, "repaired" on detection so its effects are
// transient).
//
// The architectural consequence of a bit flip (masked / immediate
// exception / wedge / silent corruption with delayed detection / silent
// data corruption) is drawn from per-fault-type manifestation
// distributions whose parameters are the paper's own measured outcome
// breakdowns (§VII-A: Register 74.8/5.6/19.6, Code 35.0/12.1/52.9).
// Latent corruption is structural: the injector damages the real
// simulated structures (heap free list, domain links, timer heaps, lock
// words, event-channel and grant linkage…), and what happens *after* that
// — whether recovery succeeds — is decided mechanistically by the
// simulated hypervisor state.
//
// Two adversarial scenarios stress recovery itself: burst faults (a
// second independent fault within BurstWindow of the first) and
// faults-during-recovery (a second-level trigger armed when a recovery
// attempt pauses the system, landing in the recovery/resume path).
package inject

import (
	"fmt"
	"math/rand/v2"
	"time"

	"nilihype/internal/dom"
	"nilihype/internal/hv"
	"nilihype/internal/hw"
)

// FaultType selects what is injected.
type FaultType int

// Fault types (§VI-C), plus the broadened fault surface of the ReHype tech
// report: PrivVM failure and device (IO-APIC) corruption.
const (
	Failstop FaultType = iota + 1
	Register
	Code
	// PrivVMCrash kills Dom0 outright: the domain is gone and management
	// hypercalls fail fast. Detected by the management-call watchdog.
	PrivVMCrash
	// PrivVMHang wedges the Dom0 guest: management hypercalls stall
	// mid-flight (including during an in-progress recovery) with no
	// hypervisor-visible structural damage. Detected by the
	// management-call watchdog.
	PrivVMHang
	// DeviceIOAPIC corrupts the IO-APIC: a redirection-table entry is
	// scrambled or a line's delivery state machine is wedged
	// (pending-IRQ-route loss). Detected by the IRQ-delivery criterion.
	DeviceIOAPIC
)

// String returns the fault type name.
func (f FaultType) String() string {
	switch f {
	case Failstop:
		return "Failstop"
	case Register:
		return "Register"
	case Code:
		return "Code"
	case PrivVMCrash:
		return "PrivVM-Crash"
	case PrivVMHang:
		return "PrivVM-Hang"
	case DeviceIOAPIC:
		return "IO-APIC"
	default:
		return fmt.Sprintf("fault(%d)", int(f))
	}
}

// GuestCorrupter lets the injector damage guest-visible data (the SDC
// path). Implemented by guest.World.
type GuestCorrupter interface {
	CorruptGuestData(dom int)
}

// PrivVMController is the optional world surface the PrivVM fault classes
// use: crash Dom0 or hang its guest. Implemented by guest.World; a World
// without it silently absorbs PrivVM faults (unit-test corrupters).
type PrivVMController interface {
	CrashPrivVM(reason string)
	HangPrivVM()
}

// Params configures one injection.
type Params struct {
	Type FaultType
	// WindowLo/WindowHi bound the first-level (timer) trigger. A
	// reversed window is normalized at Schedule.
	WindowLo, WindowHi time.Duration
	// MaxInstrBudget bounds the second-level trigger (paper: 20000).
	MaxInstrBudget int64
	// AppDomains are candidate victims for guest-data corruption.
	AppDomains []int

	// BurstWindow, when positive, arms a second independent fault at a
	// uniformly random delay within the window after the first fault
	// fires — the burst-fault adversarial scenario.
	BurstWindow time.Duration
	// BurstFault is the burst fault's type; zero means same as Type.
	BurstFault FaultType

	// FaultDuringRecovery arms a second-level trigger each time a
	// recovery attempt pauses the system (once per run), so the fault
	// lands inside the recovery/resume path.
	FaultDuringRecovery bool
	// DuringFault is the fault-during-recovery fault's type; zero means
	// same as Type. A PrivVM type here models the PrivVM failing while a
	// recovery is already in flight.
	DuringFault FaultType

	// CorrelatedReinjection re-injects into the same structural cell the
	// original latent corruption damaged, shortly after an audit accepts a
	// degraded verdict — the fault-while-degraded adversarial scenario
	// (once per run).
	CorrelatedReinjection bool
}

// DefaultMaxInstrBudget is the paper's second-level trigger bound.
const DefaultMaxInstrBudget = 20000

// Effect describes what the injected fault did architecturally.
type Effect int

// Effects.
const (
	EffectNone   Effect = iota + 1 // masked: dead register/bit
	EffectSDC                      // silently corrupted guest data
	EffectPanic                    // immediate fatal exception
	EffectWedge                    // wild execution, no progress
	EffectLatent                   // corrupted hypervisor state, detected later
)

// String returns the effect name.
func (e Effect) String() string {
	switch e {
	case EffectNone:
		return "none"
	case EffectSDC:
		return "sdc"
	case EffectPanic:
		return "panic"
	case EffectWedge:
		return "wedge"
	case EffectLatent:
		return "latent"
	default:
		return fmt.Sprintf("effect(%d)", int(e))
	}
}

// manifestDist is a manifestation distribution: the probabilities of each
// architectural effect; the remainder is EffectLatent.
type manifestDist struct {
	dead, sdc, immediate, wedge float64
}

// Distributions per fault type. Failstop is deterministic. Register and
// Code reproduce the paper's measured outcome breakdowns (§VII-A):
//   - Register: 74.8% non-manifested, 5.6% SDC, 19.6% detected
//     (immediate + wedge + latent = 0.118 + 0.020 + 0.058 = 0.196).
//   - Code: 35.0% non-manifested, 12.1% SDC, 52.9% detected
//     (0.250 + 0.060 + 0.219 = 0.529).
var (
	registerDist = manifestDist{dead: 0.748, sdc: 0.056, immediate: 0.118, wedge: 0.020}
	codeDist     = manifestDist{dead: 0.350, sdc: 0.121, immediate: 0.250, wedge: 0.060}
)

// Detection-latency bounds for latent corruption. Code faults are
// detected significantly later than register faults (§VII-A "likely due
// to the significantly longer detection latency of these faults"),
// giving errors more time to propagate.
const (
	registerLatencyLo = 200 * time.Microsecond
	registerLatencyHi = 5 * time.Millisecond
	codeLatencyLo     = 1 * time.Millisecond
	codeLatencyHi     = 50 * time.Millisecond
)

// corruptionDist gives the per-class probabilities of what latent
// corruption damages (the rest is scratch state with no further
// consequence). The classes map to the paper's top three recovery-failure
// causes (§VII-A) plus the mechanisms' repairable hazards.
type corruptionDist struct {
	pfDesc       float64 // page-frame descriptor (repaired by the scan)
	schedMeta    float64 // scheduling metadata (repaired by the enhancement)
	heapFreelist float64 // heap free list (reboot rebuilds; microreset keeps)
	domList      float64 // domain links (reboot relinks; microreset keeps)
	staticScr    float64 // static-segment state (reboot re-inits; microreset keeps)
	allocObj     float64 // live heap object (reused by BOTH mechanisms)
	privVM       float64 // PrivVM state (fatal: failure cause 2)
	recovery     float64 // recovery-path state (fatal: failure cause 1)
	timerHeap    float64 // timer deadline/heap damage (audit-repairable)
	evtchnLink   float64 // event-channel peer linkage (audit-repairable)
	grantCount   float64 // grant-entry mapping count (audit-repairable)
	lockTable    float64 // lock word held by a phantom owner (hang)
}

var (
	registerCorruption = corruptionDist{
		pfDesc: 0.28, schedMeta: 0.22, heapFreelist: 0.030, domList: 0.016,
		staticScr: 0.062, allocObj: 0.016, privVM: 0.012, recovery: 0.012,
		timerHeap: 0.020, evtchnLink: 0.010, grantCount: 0.008, lockTable: 0.010,
	}
	// Code faults propagate further before detection: more damage lands
	// in fatal and reboot-only-recoverable state.
	codeCorruption = corruptionDist{
		pfDesc: 0.24, schedMeta: 0.20, heapFreelist: 0.030, domList: 0.016,
		staticScr: 0.045, allocObj: 0.028, privVM: 0.016, recovery: 0.014,
		timerHeap: 0.024, evtchnLink: 0.012, grantCount: 0.010, lockTable: 0.012,
	}
)

// Injector performs one fault injection per run (plus the optional
// adversarial burst / during-recovery faults).
type Injector struct {
	H     *hv.Hypervisor
	World GuestCorrupter

	params Params
	rng    *rand.Rand

	// Fired reports whether the second-level trigger fired.
	Fired bool
	// Point is the execution context the fault landed in.
	Point hv.InjectionPoint
	// FaultEffect records the architectural effect drawn.
	FaultEffect Effect
	// Corruptions lists the latent corruption classes applied.
	Corruptions []string
	// Reg/Bit identify the flipped bit (Register faults).
	Reg hw.Reg
	Bit int

	// BurstFired/BurstEffect record the burst fault's outcome.
	BurstFired  bool
	BurstEffect Effect
	// DuringRecoveryFired/DuringEffect record the fault-during-recovery
	// outcome.
	DuringRecoveryFired bool
	DuringEffect        Effect
	// CorrelatedFired records that the correlated re-injection landed.
	CorrelatedFired bool

	burstScheduled  bool
	duringArmed     bool
	correlatedArmed bool
	// lastClass is the most recent structural-corruption class applied
	// (-1 until one lands); the correlated re-injection targets it.
	lastClass int
}

// New builds an injector. The rng must be a dedicated stream so that
// injection decisions never perturb workload randomness.
func New(h *hv.Hypervisor, world GuestCorrupter, rng *rand.Rand, p Params) *Injector {
	if p.MaxInstrBudget == 0 {
		p.MaxInstrBudget = DefaultMaxInstrBudget
	}
	return &Injector{H: h, World: world, params: p, rng: rng, lastClass: -1}
}

// Schedule arms the two-level trigger: at a random time in the window,
// arm the instruction-count trigger. A reversed window (WindowHi <
// WindowLo) is normalized by swapping the bounds; negative bounds clamp
// to zero (the clock cannot schedule in the past).
func (inj *Injector) Schedule() {
	lo, hi := inj.params.WindowLo, inj.params.WindowHi
	if hi < lo {
		lo, hi = hi, lo
	}
	if lo < 0 {
		lo = 0
	}
	at := lo
	if span := hi - lo; span > 0 {
		at = lo + time.Duration(inj.rng.Int64N(int64(span)))
	}
	inj.H.Clock.At(at, "inject-arm", func() {
		budget := inj.rng.Int64N(inj.params.MaxInstrBudget + 1)
		inj.H.ArmInjection(budget, inj.onInject)
	})
	if inj.params.FaultDuringRecovery {
		inj.H.SetPauseHook(inj.onRecoveryPause)
	}
}

// onInject is invoked by the hypervisor at the triggered step.
func (inj *Injector) onInject(pt hv.InjectionPoint) (hv.InjectAction, string) {
	inj.Fired = true
	inj.Point = pt
	action, reason := inj.applyFault(pt, inj.params.Type, &inj.FaultEffect, "primary")
	if inj.params.BurstWindow > 0 {
		inj.scheduleBurst()
	}
	return action, reason
}

// applyFault injects one fault of the given type at pt, recording the
// architectural effect into *effect. Shared by the primary, burst, and
// during-recovery triggers; trigger names the arming path for the journal.
func (inj *Injector) applyFault(pt hv.InjectionPoint, typ FaultType, effect *Effect, trigger string) (hv.InjectAction, string) {
	// Journal the fault before its effects land, so corruption-cell
	// events chain causally off this one.
	inj.H.Jrn.Fault(inj.H.Clock.Now(), pt.CPU, typ.String(), trigger)
	switch typ {
	case Failstop:
		*effect = EffectPanic
		return hv.ActionPanic, "failstop: PC forced to 0 (fatal page fault)"
	case Register:
		inj.Reg = hw.Reg(inj.rng.IntN(hw.NumInjectableRegs))
		inj.Bit = inj.rng.IntN(64)
		inj.flipRegister(pt.CPU)
		return inj.manifest(pt, effect, registerDist, registerCorruption, registerLatencyLo, registerLatencyHi)
	case Code:
		// The code fault is "repaired" on detection, so like Register
		// faults its effects are transient (§VI-C).
		return inj.manifest(pt, effect, codeDist, codeCorruption, codeLatencyLo, codeLatencyHi)
	case PrivVMCrash:
		// The PrivVM faults always manifest (they target the Dom0 guest
		// directly, not a random hypervisor bit) and leave no panic to
		// catch: only the management-call watchdog notices.
		*effect = EffectLatent
		if pc, ok := inj.World.(PrivVMController); ok {
			pc.CrashPrivVM("PrivVM crashed (injected fault)")
		}
		inj.Corruptions = append(inj.Corruptions, "privvm-crash")
		inj.H.Jrn.Corruption(inj.H.Clock.Now(), pt.CPU, "privvm-crash")
		return hv.ActionContinue, ""
	case PrivVMHang:
		*effect = EffectLatent
		if pc, ok := inj.World.(PrivVMController); ok {
			pc.HangPrivVM()
		}
		inj.Corruptions = append(inj.Corruptions, "privvm-hang")
		inj.H.Jrn.Corruption(inj.H.Clock.Now(), pt.CPU, "privvm-hang")
		return hv.ActionContinue, ""
	case DeviceIOAPIC:
		// Device corruption is pure table/state damage: execution
		// continues and only the IRQ-delivery criterion notices.
		*effect = EffectLatent
		inj.corruptIOAPIC()
		return hv.ActionContinue, ""
	default:
		*effect = EffectNone
		return hv.ActionContinue, ""
	}
}

// scheduleBurst arms the second, independent fault of the burst scenario
// at a random delay within BurstWindow of the first fault's firing.
func (inj *Injector) scheduleBurst() {
	if inj.burstScheduled {
		return
	}
	inj.burstScheduled = true
	var d time.Duration
	if w := int64(inj.params.BurstWindow); w > 0 {
		d = time.Duration(inj.rng.Int64N(w))
	}
	budget := inj.rng.Int64N(inj.params.MaxInstrBudget + 1)
	inj.H.Clock.After(d, "inject-burst", func() {
		if failed, _ := inj.H.Failed(); failed {
			return
		}
		inj.H.ArmInjection(budget, inj.onBurst)
	})
}

func (inj *Injector) onBurst(pt hv.InjectionPoint) (hv.InjectAction, string) {
	inj.BurstFired = true
	typ := inj.params.BurstFault
	if typ == 0 {
		typ = inj.params.Type
	}
	return inj.applyFault(pt, typ, &inj.BurstEffect, "burst")
}

// onRecoveryPause runs from the hypervisor's pause hook: a recovery
// attempt just started. Arm a small-budget trigger so the fault lands in
// the first post-resume hypervisor activity (retried hypercalls,
// re-delivered interrupts) — the recovery/resume path itself.
func (inj *Injector) onRecoveryPause() {
	if inj.duringArmed {
		return
	}
	inj.duringArmed = true
	budget := inj.rng.Int64N(inj.params.MaxInstrBudget/8 + 1)
	inj.H.ArmInjection(budget, inj.onDuringRecovery)
}

func (inj *Injector) onDuringRecovery(pt hv.InjectionPoint) (hv.InjectAction, string) {
	inj.DuringRecoveryFired = true
	typ := inj.params.DuringFault
	if typ == 0 {
		typ = inj.params.Type
	}
	return inj.applyFault(pt, typ, &inj.DuringEffect, "during-recovery")
}

// OnDegradedVerdict is wired to the recovery engine's audit hook when
// CorrelatedReinjection is on: an audit just accepted degraded service.
// Arm a small-budget trigger that re-damages the same structural cell the
// original latent corruption hit, so the fault lands in the first
// post-resume hypervisor activity while the system is still degraded.
func (inj *Injector) OnDegradedVerdict() {
	if !inj.params.CorrelatedReinjection || inj.correlatedArmed || inj.lastClass < 0 {
		return
	}
	inj.correlatedArmed = true
	budget := inj.rng.Int64N(inj.params.MaxInstrBudget/8 + 1)
	inj.H.ArmInjection(budget, inj.onCorrelated)
}

func (inj *Injector) onCorrelated(pt hv.InjectionPoint) (hv.InjectAction, string) {
	inj.CorrelatedFired = true
	inj.H.Jrn.Fault(inj.H.Clock.Now(), pt.CPU, classLabels[inj.lastClass], "correlated")
	inj.corruptClass(inj.lastClass)
	return hv.ActionContinue, ""
}

// corruptIOAPIC applies one device-corruption round: a redirection-table
// corruption (disable / misroute / wrong vector) or a stranded in-service
// line, on one of the two device lines.
func (inj *Injector) corruptIOAPIC() {
	io := inj.H.Machine.IOAPIC()
	line := hw.IRQLine(1 + inj.rng.IntN(2)) // block or NIC line
	var desc string
	if mode := inj.rng.IntN(4); mode == 3 {
		desc = io.StrandLine(line)
	} else {
		desc = io.CorruptRoute(line, mode)
	}
	inj.Corruptions = append(inj.Corruptions, desc)
	inj.H.Jrn.Corruption(inj.H.Clock.Now(), -1, desc)
}

// flipRegister applies the architectural bit flip to the CPU's register
// file (the manifestation model decides its semantic consequence).
func (inj *Injector) flipRegister(cpu int) {
	inj.H.Machine.CPU(cpu).Regs[inj.Reg] ^= 1 << uint(inj.Bit)
}

// manifest draws the architectural effect and applies it.
func (inj *Injector) manifest(pt hv.InjectionPoint, effect *Effect, d manifestDist, cd corruptionDist,
	latLo, latHi time.Duration) (hv.InjectAction, string) {

	r := inj.rng.Float64()
	switch {
	case r < d.dead:
		*effect = EffectNone
		return hv.ActionContinue, ""
	case r < d.dead+d.sdc:
		*effect = EffectSDC
		inj.corruptGuest(pt)
		return hv.ActionContinue, ""
	case r < d.dead+d.sdc+d.immediate:
		*effect = EffectPanic
		return hv.ActionPanic, fmt.Sprintf("%v fault: fatal exception (%v bit %d)",
			inj.params.Type, inj.Reg, inj.Bit)
	case r < d.dead+d.sdc+d.immediate+d.wedge:
		*effect = EffectWedge
		return hv.ActionWedge, ""
	default:
		*effect = EffectLatent
		inj.applyLatentCorruption(pt, cd)
		inj.scheduleDetection(pt.CPU, latLo, latHi)
		return hv.ActionContinue, ""
	}
}

// corruptGuest damages the data of the issuing domain (if the fault hit a
// hypercall on behalf of a guest) or a random AppVM.
func (inj *Injector) corruptGuest(pt hv.InjectionPoint) {
	dom := -1
	if pt.Call != nil && pt.Call.Dom != 0 {
		dom = pt.Call.Dom
	} else if len(inj.params.AppDomains) > 0 {
		dom = inj.params.AppDomains[inj.rng.IntN(len(inj.params.AppDomains))]
	}
	if dom >= 0 && inj.World != nil {
		inj.World.CorruptGuestData(dom)
	}
}

// applyLatentCorruption damages hypervisor state per the corruption
// distribution. Code faults may corrupt more than one structure.
func (inj *Injector) applyLatentCorruption(pt hv.InjectionPoint, cd corruptionDist) {
	rounds := 1
	if inj.params.Type == Code && inj.rng.Float64() < 0.25 {
		rounds = 2
	}
	for i := 0; i < rounds; i++ {
		inj.corruptOnce(pt, cd)
	}
}

// Structural-corruption classes. The ids index classLabels and are stable
// across runs, so the correlated re-injection can target "the same cell"
// and the campaign can aggregate per-class without string parsing.
const (
	classPFDesc = iota
	classSchedMeta
	classHeapFreelist
	classDomList
	classStaticScratch
	classAllocObj
	classPrivVM
	classRecovery
	classTimerHeap
	classEvtchn
	classGrant
	classLock
	classScratch
)

// classLabels are the interned Corruptions labels: one static string per
// class, appended without fmt.Sprintf or concatenation so the hot latent
// path stays within the campaign's allocation ceiling.
var classLabels = [...]string{
	classPFDesc:        "pf-descriptor",
	classSchedMeta:     "sched-meta",
	classHeapFreelist:  "heap-freelist",
	classDomList:       "domain-list",
	classStaticScratch: "static-scratch",
	classAllocObj:      "allocated-object",
	classPrivVM:        "privvm",
	classRecovery:      "recovery-path",
	classTimerHeap:     "timer-heap",
	classEvtchn:        "evtchn",
	classGrant:         "grant",
	classLock:          "lock",
	classScratch:       "scratch",
}

// corruptOnce applies one round of structural damage to a randomly chosen
// class of hypervisor state.
func (inj *Injector) corruptOnce(pt hv.InjectionPoint, cd corruptionDist) {
	r := inj.rng.Float64()
	cum := 0.0
	pick := func(p float64) bool {
		cum += p
		return r < cum
	}
	id := classScratch
	switch {
	case pick(cd.pfDesc):
		id = classPFDesc
	case pick(cd.schedMeta):
		id = classSchedMeta
	case pick(cd.heapFreelist):
		id = classHeapFreelist
	case pick(cd.domList):
		id = classDomList
	case pick(cd.staticScr):
		id = classStaticScratch
	case pick(cd.allocObj):
		id = classAllocObj
	case pick(cd.privVM):
		id = classPrivVM
	case pick(cd.recovery):
		id = classRecovery
	case pick(cd.timerHeap):
		id = classTimerHeap
	case pick(cd.evtchnLink):
		id = classEvtchn
	case pick(cd.grantCount):
		id = classGrant
	case pick(cd.lockTable):
		id = classLock
	}
	inj.corruptClass(id)
}

// corruptClass applies one round of class id's structural damage and
// records the interned label. The correlated re-injection calls it
// directly to hit the same cell again.
func (inj *Injector) corruptClass(id int) {
	h := inj.H
	switch id {
	case classPFDesc:
		h.Frames.CorruptRandomDescriptor(inj.rng)
	case classSchedMeta:
		h.Sched.CorruptRandom(inj.rng)
	case classHeapFreelist:
		h.Heap.CorruptFreeList(inj.rng)
	case classDomList:
		h.Domains.CorruptLink(inj.rng)
	case classStaticScratch:
		h.CorruptStaticScratchWord(inj.rng)
	case classAllocObj:
		h.Heap.CorruptRandomObject(inj.rng)
	case classPrivVM:
		if d, err := h.Domain(0); err == nil {
			d.Fail("PrivVM state corrupted by error propagation")
		}
	case classRecovery:
		h.CorruptRecoveryVector(inj.rng)
	case classTimerHeap:
		h.Timers.CorruptRandom(inj.rng)
	case classEvtchn:
		h.Broker.CorruptRandomLink(inj.rng)
	case classGrant:
		inj.corruptGrantCount()
	case classLock:
		h.Locks.CorruptRandomHold(inj.rng)
	}
	inj.Corruptions = append(inj.Corruptions, classLabels[id])
	inj.H.Jrn.Corruption(h.Clock.Now(), -1, classLabels[id])
	inj.lastClass = id
}

// corruptGrantCount garbles a grant entry's mapping count: an active
// entry's count drifts from the maptrack truth, or a free entry gains a
// phantom count. Either way Revoke wedges (ErrBusy forever) until the
// audit recomputes the count.
func (inj *Injector) corruptGrantCount() {
	doms := inj.H.Domains.Preserved()
	type cand struct {
		d   *dom.Domain
		ref int
	}
	var cands []cand
	for _, d := range doms {
		if d.GrantTab == nil {
			continue
		}
		for _, ref := range d.GrantTab.ActiveGrants() {
			cands = append(cands, cand{d, ref})
		}
	}
	if len(cands) > 0 {
		c := cands[inj.rng.IntN(len(cands))]
		e, _ := c.d.GrantTab.Entry(c.ref)
		e.MapCount += 7 + inj.rng.IntN(93)
		return
	}
	// No active grants: give a free entry a phantom count.
	var tabs []*dom.Domain
	for _, d := range doms {
		if d.GrantTab != nil {
			tabs = append(tabs, d)
		}
	}
	if len(tabs) == 0 {
		return
	}
	d := tabs[inj.rng.IntN(len(tabs))]
	ref := inj.rng.IntN(d.GrantTab.Len())
	e, _ := d.GrantTab.Entry(ref)
	e.MapCount = 7 + inj.rng.IntN(93)
}

// scheduleDetection arranges the delayed detection of latent corruption:
// after the drawn latency, the next hypervisor activity on the faulted CPU
// hits the damage and panics. If recovery already ran (a mechanistic
// assertion found the damage first), the stale detection is dropped.
// Degenerate latency bounds (hi <= lo) collapse to lo rather than feeding
// rand.Int64N a non-positive span.
func (inj *Injector) scheduleDetection(cpu int, lo, hi time.Duration) {
	lat := lo
	if hi > lo {
		lat = lo + time.Duration(inj.rng.Int64N(int64(hi-lo)))
	}
	epoch := inj.H.RecoveryEpoch()
	inj.H.Clock.After(lat, "latent-detect", func() {
		if failed, _ := inj.H.Failed(); failed {
			return
		}
		if inj.H.RecoveryEpoch() != epoch {
			return
		}
		inj.H.PanicAtNextStep(cpu, fmt.Sprintf("%v fault: corrupted state hit (%v)",
			inj.params.Type, inj.Corruptions))
	})
}
