package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nilihype/internal/core"
	"nilihype/internal/inject"
)

// jsonSpawn is the in-process analogue of the CLI's subprocess spawn: the
// spec and the summary both cross a real JSON boundary through the real
// worker body, so the equivalence tests cover the whole wire protocol —
// only the fork/exec plumbing is elided (the CI smoke test covers that).
func jsonSpawn(_ context.Context, spec ShardSpec) (Summary, error) {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return Summary{}, err
	}
	var out bytes.Buffer
	if err := RunShardWorker(bytes.NewReader(specJSON), &out); err != nil {
		return Summary{}, err
	}
	return DecodeShardSummary(&out, spec.Index)
}

func TestPlanShardsPartitionsSeedSpace(t *testing.T) {
	c := Campaign{Base: fastCfg(inject.Failstop, core.Microreset), Runs: 10, SeedBase: 50}
	for _, n := range []int{1, 2, 3, 4, 10, 25} {
		specs := PlanShards(c, n)
		wantShards := n
		if wantShards > c.Runs {
			wantShards = c.Runs
		}
		if len(specs) != wantShards {
			t.Fatalf("n=%d: got %d specs, want %d", n, len(specs), wantShards)
		}
		// The shards' seed ranges must tile SeedBase+1..SeedBase+Runs
		// contiguously and in order.
		next := c.SeedBase
		total := 0
		for i, sp := range specs {
			if sp.Index != i || sp.Shards != wantShards {
				t.Fatalf("n=%d shard %d: identity = (%d of %d)", n, i, sp.Index, sp.Shards)
			}
			if sp.Runs <= 0 {
				t.Fatalf("n=%d shard %d: empty shard", n, i)
			}
			if sp.SeedBase != next {
				t.Fatalf("n=%d shard %d: SeedBase = %d, want %d", n, i, sp.SeedBase, next)
			}
			next += uint64(sp.Runs)
			total += sp.Runs
		}
		if total != c.Runs {
			t.Fatalf("n=%d: shards cover %d runs, want %d", n, total, c.Runs)
		}
	}
	if specs := PlanShards(Campaign{Runs: 0}, 4); specs != nil {
		t.Fatalf("zero-run campaign planned %d shards", len(specs))
	}
}

// TestShardedEquivalence is the tentpole guarantee: -shards 1, -shards 4
// and the in-process executor produce bit-identical Summaries — including
// the phase-latency histograms' quantiles — for the same campaign.
func TestShardedEquivalence(t *testing.T) {
	c := Campaign{
		Base:        fastCfg(inject.Register, core.Microreset),
		Runs:        8,
		Parallelism: 2,
		SeedBase:    7,
	}
	inProc := c.Execute()

	for _, n := range []int{1, 4} {
		sharded, statuses, err := ExecuteSharded(c, n, ShardOptions{Spawn: jsonSpawn})
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		if len(statuses) != n {
			t.Fatalf("shards=%d: %d statuses", n, len(statuses))
		}
		if !reflect.DeepEqual(inProc, sharded) {
			t.Fatalf("shards=%d summary differs from in-process:\n in-proc: %+v\n sharded: %+v",
				n, inProc, sharded)
		}
		// DeepEqual already covers these; assert the report-facing
		// quantiles explicitly so a histogram regression reads as what
		// it is.
		for name, h := range inProc.PhaseHists {
			g := sharded.PhaseHists[name]
			if g == nil {
				t.Fatalf("shards=%d: phase %q missing", n, name)
			}
			if h.Quantile(0.50) != g.Quantile(0.50) || h.Quantile(0.99) != g.Quantile(0.99) || h.Max != g.Max {
				t.Fatalf("shards=%d: phase %q quantiles differ", n, name)
			}
		}
	}
}

// TestShardWorkerRoundTrip pins the wire protocol: a spec in, an
// index-tagged summary out, exact through JSON.
func TestShardWorkerRoundTrip(t *testing.T) {
	c := Campaign{Base: fastCfg(inject.Failstop, core.Microreset), Runs: 2, SeedBase: 3}
	spec := PlanShards(c, 1)[0]
	sc := spec.Campaign()
	want := sc.Execute()

	got, err := jsonSpawn(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("summary changed across the wire:\n want: %+v\n got:  %+v", want, got)
	}
}

func TestShardWorkerRejectsBadSpec(t *testing.T) {
	if err := RunShardWorker(strings.NewReader(`{"Runs": `), &bytes.Buffer{}); err == nil {
		t.Fatal("truncated spec accepted")
	}
}

func TestDecodeShardSummaryFaults(t *testing.T) {
	// Truncated output: worker died mid-write.
	var out bytes.Buffer
	spec := ShardSpec{Index: 0, Shards: 1, Base: fastCfg(inject.Failstop, core.Microreset), Runs: 1}
	specJSON, _ := json.Marshal(spec)
	if err := RunShardWorker(bytes.NewReader(specJSON), &out); err != nil {
		t.Fatal(err)
	}
	trunc := out.Bytes()[:out.Len()/2]
	if _, err := DecodeShardSummary(bytes.NewReader(trunc), 0); err == nil {
		t.Fatal("truncated summary accepted")
	}
	// Crossed wires: an envelope answering a different shard.
	if _, err := DecodeShardSummary(bytes.NewReader(out.Bytes()), 3); err == nil {
		t.Fatal("mislabeled summary accepted")
	}
}

// TestShardTransientFailureRetried checks the one-respawn policy: a worker
// that crashes once is retried and the campaign completes clean.
func TestShardTransientFailureRetried(t *testing.T) {
	c := Campaign{Base: fastCfg(inject.Failstop, core.Microreset), Runs: 4, SeedBase: 11}
	want := c.Execute()

	var calls atomic.Int32
	flaky := func(ctx context.Context, spec ShardSpec) (Summary, error) {
		if spec.Index == 1 && calls.Add(1) == 1 {
			return Summary{}, errors.New("exit status 2")
		}
		return jsonSpawn(ctx, spec)
	}
	var done []ShardStatus
	got, _, err := ExecuteSharded(c, 2, ShardOptions{
		Spawn:       flaky,
		OnShardDone: func(st ShardStatus) { done = append(done, st) },
	})
	if err != nil {
		t.Fatalf("retry did not save the campaign: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("summary differs after respawn:\n want: %+v\n got:  %+v", want, got)
	}
	retried := false
	for _, st := range done {
		if st.Index == 1 && st.Attempts == 2 && st.Err == "" {
			retried = true
		}
	}
	if !retried {
		t.Fatalf("shard 1 not respawned cleanly: %+v", done)
	}
}

// TestShardPermanentFailureIsLoud checks a shard that keeps dying: the
// error names it, the statuses record it, and the summary still merges the
// survivors deterministically.
func TestShardPermanentFailureIsLoud(t *testing.T) {
	c := Campaign{Base: fastCfg(inject.Failstop, core.Microreset), Runs: 4, SeedBase: 11}
	specs := PlanShards(c, 2)
	sc := specs[0].Campaign()
	survivor := sc.Execute()

	broken := func(ctx context.Context, spec ShardSpec) (Summary, error) {
		if spec.Index == 1 {
			return Summary{}, errors.New("exit status 2")
		}
		return jsonSpawn(ctx, spec)
	}
	got, statuses, err := ExecuteSharded(c, 2, ShardOptions{Spawn: broken})
	if err == nil {
		t.Fatal("permanent shard failure reported no error")
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("error does not name the failed shard: %v", err)
	}
	if statuses[1].Err == "" || statuses[1].Attempts != 1+DefaultShardRetries {
		t.Fatalf("shard 1 status = %+v", statuses[1])
	}
	if got.Runs != survivor.Runs {
		t.Fatalf("merged %d runs, want the surviving shard's %d", got.Runs, survivor.Runs)
	}
	// The survivor's contribution must be exactly its standalone summary.
	survivor.Config = c.Base
	if !reflect.DeepEqual(survivor, got) {
		t.Fatalf("survivor merge not deterministic:\n want: %+v\n got:  %+v", survivor, got)
	}
}

// TestShardHangKilledAtDeadline checks the per-shard deadline: a worker
// that never answers is killed via its context, reported, and NOT
// respawned — the shard's work does not shrink on retry, so an identical
// fresh worker would only burn another full Timeout reaching the same
// kill. Retries stay at the default to prove deadline expiry is terminal
// on its own.
func TestShardHangKilledAtDeadline(t *testing.T) {
	c := Campaign{Base: fastCfg(inject.Failstop, core.Microreset), Runs: 2, SeedBase: 11}
	hang := func(ctx context.Context, spec ShardSpec) (Summary, error) {
		<-ctx.Done()
		return Summary{}, fmt.Errorf("worker killed: %w", ctx.Err())
	}
	start := time.Now()
	_, statuses, err := ExecuteSharded(c, 2, ShardOptions{
		Spawn:   hang,
		Timeout: 20 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("hung shards reported no error")
	}
	for _, st := range statuses {
		if !strings.Contains(st.Err, "deadline") {
			t.Fatalf("shard %d error %q does not mention the deadline", st.Index, st.Err)
		}
		if st.Attempts != 1 {
			t.Fatalf("shard %d killed at its deadline was respawned (%d attempts); deadline expiry must be terminal", st.Index, st.Attempts)
		}
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("deadline did not bound the hang (%v)", wall)
	}
}

// TestShardDeadlineTerminalCrashRetried pins the retry policy's split in
// one campaign: a shard that hangs to its deadline consumes exactly one
// attempt, while a shard that crashes is respawned and completes — the
// deadline fix must not take crash retries down with it.
func TestShardDeadlineTerminalCrashRetried(t *testing.T) {
	c := Campaign{Base: fastCfg(inject.Failstop, core.Microreset), Runs: 4, SeedBase: 11}
	var calls atomic.Int32
	spawn := func(ctx context.Context, spec ShardSpec) (Summary, error) {
		if spec.Index == 0 {
			<-ctx.Done()
			return Summary{}, fmt.Errorf("worker killed: %w", ctx.Err())
		}
		if calls.Add(1) == 1 {
			return Summary{}, errors.New("exit status 2")
		}
		return jsonSpawn(ctx, spec)
	}
	_, statuses, err := ExecuteSharded(c, 2, ShardOptions{
		Spawn:   spawn,
		Timeout: 20 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("hung shard reported no error")
	}
	if statuses[0].Attempts != 1 || !strings.Contains(statuses[0].Err, "deadline") {
		t.Fatalf("deadline shard status = %+v, want 1 terminal attempt", statuses[0])
	}
	if statuses[1].Attempts != 2 || statuses[1].Err != "" {
		t.Fatalf("crashed shard status = %+v, want clean completion on attempt 2", statuses[1])
	}
}

// TestPlanShardsProperty sweeps arbitrary (Runs, n) pairs — n greater
// than Runs, Runs of zero, wildly uneven splits — and checks the
// partition invariants: every plan tiles seeds SeedBase+1..SeedBase+Runs
// contiguously with no overlap and no empty shard, and carries the
// campaign fields through unchanged.
func TestPlanShardsProperty(t *testing.T) {
	base := fastCfg(inject.Failstop, core.Microreset)
	for _, runs := range []int{0, 1, 2, 3, 7, 10, 16, 97} {
		for _, n := range []int{-3, 0, 1, 2, 3, 5, 8, 31, 100} {
			c := Campaign{Base: base, Runs: runs, Parallelism: 3, SeedBase: uint64(1000 * (runs + 1)), ColdBoot: runs%2 == 0}
			specs := PlanShards(c, n)
			if runs <= 0 {
				if specs != nil {
					t.Fatalf("runs=%d n=%d: planned %d shards for empty campaign", runs, n, len(specs))
				}
				continue
			}
			want := n
			if want < 1 {
				want = 1
			}
			if want > runs {
				want = runs
			}
			if len(specs) != want {
				t.Fatalf("runs=%d n=%d: %d shards, want %d", runs, n, len(specs), want)
			}
			next := c.SeedBase
			total := 0
			for i, sp := range specs {
				if sp.Index != i || sp.Shards != want {
					t.Fatalf("runs=%d n=%d shard %d: identity (%d of %d)", runs, n, i, sp.Index, sp.Shards)
				}
				if sp.Runs <= 0 {
					t.Fatalf("runs=%d n=%d shard %d: empty", runs, n, i)
				}
				// Uneven remainders go to earlier shards; sizes may differ
				// by at most one and never increase.
				if i > 0 && sp.Runs > specs[i-1].Runs {
					t.Fatalf("runs=%d n=%d shard %d: %d runs after %d", runs, n, i, sp.Runs, specs[i-1].Runs)
				}
				if sp.SeedBase != next {
					t.Fatalf("runs=%d n=%d shard %d: SeedBase %d, want %d (gap or overlap)", runs, n, i, sp.SeedBase, next)
				}
				if sp.Parallelism != c.Parallelism || sp.ColdBoot != c.ColdBoot || !reflect.DeepEqual(sp.Base, c.Base) {
					t.Fatalf("runs=%d n=%d shard %d: campaign fields mutated", runs, n, i)
				}
				next += uint64(sp.Runs)
				total += sp.Runs
			}
			if total != runs {
				t.Fatalf("runs=%d n=%d: shards cover %d runs", runs, n, total)
			}
		}
	}
}

// TestUnevenShardMergeMatchesExecute executes an uneven split (7 runs
// over 3 shards: 3+2+2) through the real wire protocol and checks the
// merged Summary is bit-identical to the unsharded Execute.
func TestUnevenShardMergeMatchesExecute(t *testing.T) {
	c := Campaign{Base: fastCfg(inject.Failstop, core.Microreset), Runs: 7, Parallelism: 2, SeedBase: 23}
	want := c.Execute()
	got, statuses, err := ExecuteSharded(c, 3, ShardOptions{Spawn: jsonSpawn})
	if err != nil {
		t.Fatal(err)
	}
	if len(statuses) != 3 {
		t.Fatalf("%d statuses, want 3", len(statuses))
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("uneven shard merge differs from Execute:\n want: %+v\n got:  %+v", want, got)
	}
}
