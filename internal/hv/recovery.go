package hv

import (
	"fmt"

	"nilihype/internal/hypercall"
	"nilihype/internal/sched"
	"nilihype/internal/telemetry"
)

// This file is the state-inspection and state-repair surface the recovery
// engines (internal/core) drive. The hypervisor core provides mechanisms;
// the engines decide which to apply (that is exactly the enhancement
// ladder of Table I).

// Pause suspends guest activity and device interrupt delivery: VMs are
// paused during recovery (§V "VMs are suspended and interrupts are
// disabled during recovery").
func (h *Hypervisor) Pause() {
	h.paused = true
	h.Tel.Record(0, telemetry.EvPause, 0)
	if h.pauseHook != nil {
		h.pauseHook()
	}
}

// Paused reports whether the hypervisor is paused for recovery.
func (h *Hypervisor) Paused() bool { return h.paused }

// ResumeRunnable ends the pause: deferred guest work runs and pending
// interrupts are re-delivered.
func (h *Hypervisor) ResumeRunnable() {
	h.paused = false
	h.Tel.Record(0, telemetry.EvResume, 0)
	// Drain deferred work by popping from the front: if a deferred action
	// re-enters recovery (pauses the system again) or fails the
	// hypervisor, the remainder stays queued — a later recovery attempt's
	// resume picks it up instead of silently dropping it.
	for len(h.afterResume) > 0 {
		if h.failed || h.paused {
			return
		}
		fn := h.afterResume[0]
		h.afterResume[0] = nil
		h.afterResume = h.afterResume[1:]
		fn()
	}
	for _, cpu := range h.Machine.CPUs() {
		if h.failed || h.paused {
			return
		}
		if !cpu.IntrDisabled {
			cpu.DrainPending()
		}
	}
}

// WhenRunnable runs fn now, or defers it to the end of the pause.
func (h *Hypervisor) WhenRunnable(fn func()) {
	if !h.paused {
		fn()
		return
	}
	h.afterResume = append(h.afterResume, fn)
}

// PendingCall describes a hypercall that was in flight when its execution
// thread was discarded.
type PendingCall struct {
	CPU  int
	Call *hypercall.Call
	// Step is the program step at which execution stopped.
	Step int
	// Poisoned marks an abandonment inside an unmitigated window (§IV
	// residual): the undo log cannot be trusted for this call.
	Poisoned bool
	// CriticalWrites reports whether the partial execution performed
	// non-idempotent state updates (undo records exist if logging).
	CriticalWrites bool
}

// DiscardThread abandons cpu's execution thread: the hypervisor stack is
// reset, spin/wedge states clear, and the in-flight call (if any) becomes
// pending-retry state. Locks the thread held are NOT released — that is a
// separate mechanism. Returns the pending call, if any.
func (h *Hypervisor) DiscardThread(cpu int) *PendingCall {
	pc := h.percpu[cpu]
	h.recoveryEpoch++
	pc.WasBusyAtDiscard = pc.Busy()

	var pending *PendingCall
	if pc.Current != nil {
		poisoned := pc.abandonedUnmitigated
		if pc.CurrentStep < len(pc.CurrentProg) && pc.CurrentProg[pc.CurrentStep].Unmitigated {
			poisoned = true
		}
		pending = &PendingCall{
			CPU:            cpu,
			Call:           pc.Current,
			Step:           pc.CurrentStep,
			Poisoned:       poisoned,
			CriticalWrites: pc.Env.Undo.Len() > 0 || h.partialHadCriticalWrites(pc),
		}
	}
	// Reset the stack: program position and per-program bookkeeping go
	// away. The undo log survives (it is global state, not stack state).
	pc.Current = nil
	pc.CurrentProg = nil
	pc.CurrentStep = 0
	pc.InIRQProgram = false
	pc.IRQActivity = ""
	pc.PendingPanic = ""
	pc.Spinning = nil
	pc.Wedged = false
	pc.abandonedUnmitigated = false
	pc.Env.ResetProgramState()
	h.Machine.CPU(cpu).IntrDisabled = true // held until resume
	h.Tel.Counters[telemetry.CtrDiscards]++
	h.Tel.Record(cpu, telemetry.EvDiscard, uint64(cpu))
	if h.tracer != nil { // lazy: the concat below must not run untraced
		if pending != nil {
			h.trace(cpu, TraceDiscard, "pending "+pending.Call.String())
		} else if pc.WasBusyAtDiscard {
			h.trace(cpu, TraceDiscard, "interrupt context")
		}
	}
	return pending
}

// partialHadCriticalWrites detects non-idempotent partial effects when
// logging is off (no undo records to witness them): any completed step
// whose name marks a critical write counts.
func (h *Hypervisor) partialHadCriticalWrites(pc *PerCPU) bool {
	for i := 0; i < pc.CurrentStep && i < len(pc.CurrentProg); i++ {
		switch pc.CurrentProg[i].Name {
		case "inc_refcount", "dec_refcount", "clear_validated", "validate",
			"adjust_tot_pages", "write_entry", "clear_entry", "inc_mapcount",
			"dec_mapcount", "alloc_and_insert":
			return true
		}
	}
	return false
}

// DiscardAllThreads abandons every CPU's execution thread (the microreset
// core operation) and returns all pending calls in CPU order.
func (h *Hypervisor) DiscardAllThreads() []*PendingCall {
	var out []*PendingCall
	for cpu := range h.percpu {
		if p := h.DiscardThread(cpu); p != nil {
			out = append(out, p)
		}
	}
	h.applySchedFlux()
	return out
}

// SchedFluxProb is the probability that discarding all execution threads
// leaves the scheduling metadata mid-update (§V-A: "Hypervisor failure
// followed by recovery can easily leave this scheduling metadata in an
// inconsistent state").
//
// The event-atomic execution model hides concurrent activity on other
// CPUs: in the real system, at the instant of failure other CPUs are
// mid-way through runstate updates, wakeups and context switches whose
// partial effects the discard freezes in place. This calibrated draw
// restores that occupancy; the *consequences* (assertion panic vs. wrong
// register context restored vs. starved vCPU) and the *repair* remain
// fully mechanistic (sched.CheckConsistency / RepairFromPerCPU). The
// default is calibrated against the Table I ladder (51.8% → 82.2% for the
// scheduling-metadata rung); engines enable it explicitly.
var DefaultSchedFluxProb = 0.37

// SchedFluxProb, when positive, enables the discard-time metadata-flux
// draw. Zero (the default) disables it, keeping unit tests deterministic.
func (h *Hypervisor) SetSchedFluxProb(p float64) { h.schedFluxProb = p }

// applySchedFlux draws the discard-time scheduling-metadata damage.
func (h *Hypervisor) applySchedFlux() {
	if h.schedFluxProb <= 0 || h.RNG.Float64() >= h.schedFluxProb {
		return
	}
	// Pick a random vCPU that is currently on a CPU and freeze one of
	// its redundant copies mid-update.
	var candidates []int
	for cpu := range h.percpu {
		if h.Sched.Curr(cpu) != nil {
			candidates = append(candidates, cpu)
		}
	}
	if len(candidates) == 0 {
		return
	}
	cpu := candidates[h.RNG.IntN(len(candidates))]
	v := h.Sched.Curr(cpu)
	if h.RNG.IntN(2) == 0 {
		v.State = sched.Runnable // percpu.curr disagrees: assertion fodder
	} else {
		v.RunningOn = sched.NoCPU // wrong-context hazard
	}
}

// IRQCount returns cpu's local_irq_count.
func (h *Hypervisor) IRQCount(cpu int) int { return h.percpu[cpu].LocalIRQCount }

// ClearIRQCounts zeroes every CPU's local_irq_count — the "Clear IRQ
// count" enhancement (§V-A).
func (h *Hypervisor) ClearIRQCounts() {
	for _, pc := range h.percpu {
		pc.LocalIRQCount = 0
	}
}

// ClearIRQCountOn zeroes one CPU's local_irq_count — the per-CPU slice of
// ClearIRQCounts the recovery-domain-partitioned repair path schedules as
// an independent unit. It writes only that CPU's private area, so
// concurrent calls for distinct CPUs are safe.
func (h *Hypervisor) ClearIRQCountOn(cpu int) {
	h.percpu[cpu].LocalIRQCount = 0
}

// SaveFSGS captures the guest FS/GS bases on every CPU at detection time
// (§IV "Save FS/GS"). Only microreboot actually clobbers them (the boot
// path reloads segment state); saving makes the post-reboot restore
// possible.
func (h *Hypervisor) SaveFSGS() {
	for _, pc := range h.percpu {
		pc.FSGSSaved = true
	}
}

// ApplyFSGSLoss invalidates the context of vCPUs whose FS/GS were
// clobbered: used by microreboot when the save was not performed.
func (h *Hypervisor) ApplyFSGSLoss() {
	for cpu, pc := range h.percpu {
		if pc.FSGSSaved || !pc.WasBusyAtDiscard {
			continue
		}
		if v := h.Sched.Curr(cpu); v != nil {
			v.ContextValid = false
			if d, err := h.Domains.ByID(v.Domain); err == nil {
				d.Fail("FS/GS lost across recovery")
			}
		}
	}
}

// RetryPendingCalls re-executes interrupted hypercalls (§III-B "for any
// partially executed hypercall, the VM state ... is set up so that the
// hypercall is retried"). For each call: if the undo log is trusted, roll
// it back first so non-idempotent partial effects are reversed; a poisoned
// call (unmitigated window) retries without rollback and generally trips
// the handler's consistency assertions — the §IV residual.
func (h *Hypervisor) RetryPendingCalls(pending []*PendingCall) {
	for _, p := range pending {
		pc := h.percpu[p.CPU]
		if p.Poisoned {
			pc.Env.Undo.Clear()
		} else {
			pc.Env.Undo.Rollback()
		}
		h.Stats.RetriedCalls++
		call := p.Call
		cpu := p.CPU
		h.Tel.Counters[telemetry.CtrRetries]++
		h.Tel.Record(cpu, telemetry.EvRetry, uint64(call.Op))
		h.traceCall(cpu, TraceRetry, call)
		h.WhenRunnable(func() { h.Dispatch(cpu, call) })
	}
}

// DropPendingCalls abandons interrupted hypercalls without retry (the
// configuration without the ReHype retry mechanisms): the issuing guests
// never see their requests complete and fail.
func (h *Hypervisor) DropPendingCalls(pending []*PendingCall) {
	for _, p := range pending {
		h.percpu[p.CPU].Env.Undo.Clear()
		h.Stats.DroppedCalls++
		h.Tel.Counters[telemetry.CtrDrops]++
		h.Tel.Record(p.CPU, telemetry.EvDrop, uint64(p.Call.Op))
		h.traceCall(p.CPU, TraceDrop, p.Call)
		if d, err := h.Domains.ByID(p.Call.Dom); err == nil {
			d.Fail(fmt.Sprintf("hypercall %v lost (no retry)", p.Call.Op))
		}
	}
}

// EnforceIRQInvariant models the first post-resume assertion on each CPU:
// Xen's scheduler and softirq paths ASSERT(!in_irq()). A CPU with a stale
// nonzero local_irq_count panics immediately. Returns false on panic.
func (h *Hypervisor) EnforceIRQInvariant() bool {
	for cpu, pc := range h.percpu {
		if pc.LocalIRQCount != 0 {
			h.Panic(cpu, fmt.Sprintf("ASSERT !in_irq(): local_irq_count=%d on resume", pc.LocalIRQCount))
			return false
		}
	}
	return true
}

// EnforceSchedInvariants models the consequences of resuming with
// inconsistent scheduling metadata (§V-A): state-mismatch and
// queued-while-running trip scheduler assertions (hypervisor panic);
// wrong-CPU mismatches restore the wrong register context (most panic,
// some only kill the affected VM); starved vCPUs silently lose their VM.
// Returns false if the hypervisor panicked.
func (h *Hypervisor) EnforceSchedInvariants() bool {
	incs := h.Sched.CheckConsistency()
	for _, inc := range incs {
		switch inc.Kind {
		case sched.KindStateMismatch, sched.KindQueuedRunning:
			h.Panic(inc.CPU, "ASSERT scheduler: "+inc.Desc)
			return false
		case sched.KindWrongCPU:
			if h.RNG.Float64() < wrongCPUPanicProb {
				h.Panic(inc.CPU, "scheduler restored wrong context: "+inc.Desc)
				return false
			}
			if d, err := h.Domains.ByID(inc.VCPU.Domain); err == nil {
				d.Fail("wrong register context restored: " + inc.Desc)
			}
		case sched.KindStarved:
			if d, err := h.Domains.ByID(inc.VCPU.Domain); err == nil {
				d.Fail("vCPU starved: " + inc.Desc)
			}
		}
	}
	return true
}

// wrongCPUPanicProb is the fraction of wrong-context restores that crash
// the hypervisor outright (vs. only corrupting the affected VM).
const wrongCPUPanicProb = 0.6

// EnforceCrossCPUWaits models §III-C: any surviving cross-CPU wait leaves
// the requester spinning forever; the watchdog then detects a hang. Used
// by the single-thread-discard ablation.
func (h *Hypervisor) EnforceCrossCPUWaits() bool {
	if len(h.crossCPUWaits) == 0 {
		return true
	}
	w := h.crossCPUWaits[0]
	h.Panic(w.Requester, fmt.Sprintf("hang: cpu%d waiting forever for IPI response from cpu%d (%s)",
		w.Requester, w.Responder, w.Desc))
	return false
}

// ReenableCPUs re-enables interrupt delivery on every CPU. Interrupts the
// hardware held pending during recovery are delivered by the subsequent
// ResumeRunnable.
func (h *Hypervisor) ReenableCPUs() {
	for _, cpu := range h.Machine.CPUs() {
		cpu.IntrDisabled = false
		cpu.Halted = false
	}
}

// ReprogramAllAPICs re-arms every CPU's APIC one-shot from its software
// timer heap — the "Reprogram hardware timer" enhancement (§V-A).
func (h *Hypervisor) ReprogramAllAPICs() {
	for cpu := 0; cpu < h.Machine.NumCPUs(); cpu++ {
		h.Timers.ProgramAPIC(cpu)
	}
}

// RecoveryEpoch returns the number of thread-discard events so far.
func (h *Hypervisor) RecoveryEpoch() uint64 { return h.recoveryEpoch }
