package traffic

import (
	"testing"
	"time"

	"nilihype/internal/simclock"
	"nilihype/internal/telemetry"
)

// testCfg is a small, exactly-analyzable population: 10k users in 10
// cohorts, one request per 100ms, 5ms ticks — so over a 1s run every user
// sends exactly 10 requests.
func testCfg() Config {
	return Config{
		Users:       10_000,
		Cohorts:     10,
		Period:      100 * time.Millisecond,
		Timeout:     500 * time.Millisecond,
		BaseLatency: 2 * time.Millisecond,
		SlotWidth:   5 * time.Millisecond,
		Interval:    100 * time.Millisecond,
	}
}

func runEngine(t *testing.T, cfg Config, d time.Duration, arm func(clk *simclock.Clock, e *Engine)) *SLO {
	t.Helper()
	clk := simclock.New()
	e := New(cfg)
	e.Start(clk, nil, d)
	if arm != nil {
		arm(clk, e)
	}
	clk.Run()
	return e.Finish()
}

func TestSteadyStateExactCounts(t *testing.T) {
	cfg := testCfg()
	slo := runEngine(t, cfg, time.Second, nil)

	// 10k users × 10 periods each: every request offered and completed at
	// base latency, zero outage, all intervals clean.
	wantOffered := uint64(100_000)
	if slo.Offered != wantOffered {
		t.Fatalf("Offered = %d, want %d", slo.Offered, wantOffered)
	}
	if slo.Completed != wantOffered || slo.Delayed != 0 || slo.TimedOut != 0 || slo.Failed != 0 {
		t.Fatalf("completed/delayed/timedout/failed = %d/%d/%d/%d, want %d/0/0/0",
			slo.Completed, slo.Delayed, slo.TimedOut, slo.Failed, wantOffered)
	}
	if slo.Outages != 0 || slo.OutageUs != 0 || slo.DegradedUserUs != 0 || slo.ExcessWaitUs != 0 {
		t.Fatalf("outage accounting nonzero on clean run: %+v", slo)
	}
	if slo.Latency.Count != wantOffered || slo.Latency.Sum != wantOffered*2000 || slo.Latency.Max != 2000 {
		t.Fatalf("latency hist = count %d sum %d max %d, want %d/%d/2000",
			slo.Latency.Count, slo.Latency.Sum, slo.Latency.Max, wantOffered, wantOffered*2000)
	}
	if slo.Intervals != 10 || slo.DegradedIntervals != 0 || slo.WorstIntervalPermille != 1000 {
		t.Fatalf("intervals = %d/%d/worst %d‰, want 10/0/1000",
			slo.Intervals, slo.DegradedIntervals, slo.WorstIntervalPermille)
	}
	if slo.GoodputPermille() != 1000 {
		t.Fatalf("goodput = %d‰, want 1000", slo.GoodputPermille())
	}
}

// TestOutageDelayedOnly: a 50ms outage with a 500ms timeout — every held
// request completes late, none time out. The outage window and user-µs of
// degradation are exact.
func TestOutageDelayedOnly(t *testing.T) {
	cfg := testCfg()
	slo := runEngine(t, cfg, time.Second, func(clk *simclock.Clock, e *Engine) {
		clk.At(302*time.Millisecond, "down", e.ServiceDown)
		clk.At(352*time.Millisecond, "up", e.ServiceUp)
	})

	if slo.Outages != 1 {
		t.Fatalf("Outages = %d, want 1", slo.Outages)
	}
	if slo.OutageUs != 50_000 {
		t.Fatalf("OutageUs = %d, want 50000", slo.OutageUs)
	}
	if want := uint64(50_000) * cfg.Users; slo.DegradedUserUs != want {
		t.Fatalf("DegradedUserUs = %d, want %d", slo.DegradedUserUs, want)
	}
	if slo.TimedOut != 0 || slo.Failed != 0 {
		t.Fatalf("timedout/failed = %d/%d, want 0/0 (timeout far above outage)", slo.TimedOut, slo.Failed)
	}
	if slo.Delayed == 0 {
		t.Fatal("no delayed completions through a mid-run outage")
	}
	if slo.Completed != slo.Offered {
		t.Fatalf("Completed = %d, Offered = %d: every request should complete (late at worst)", slo.Completed, slo.Offered)
	}
	if slo.ExcessWaitUs == 0 {
		t.Fatal("delayed completions carried no excess wait")
	}
	// Offered is outage-independent: open-loop users keep sending.
	if slo.Offered != 100_000 {
		t.Fatalf("Offered = %d, want 100000", slo.Offered)
	}
}

// TestOutageTimeouts: a 300ms outage against a 100ms timeout — requests
// arriving early in the outage time out, late arrivals complete late.
func TestOutageTimeouts(t *testing.T) {
	cfg := testCfg()
	cfg.Timeout = 100 * time.Millisecond
	slo := runEngine(t, cfg, time.Second, func(clk *simclock.Clock, e *Engine) {
		clk.At(302*time.Millisecond, "down", e.ServiceDown)
		clk.At(602*time.Millisecond, "up", e.ServiceUp)
	})

	if slo.TimedOut == 0 || slo.Delayed == 0 {
		t.Fatalf("timedout = %d, delayed = %d: want both nonzero", slo.TimedOut, slo.Delayed)
	}
	if slo.Failed != 0 {
		t.Fatalf("Failed = %d, want 0 (service came back)", slo.Failed)
	}
	if slo.Offered != slo.Completed+slo.TimedOut+slo.Failed {
		t.Fatalf("conservation violated: %d != %d+%d+%d", slo.Offered, slo.Completed, slo.TimedOut, slo.Failed)
	}
	if slo.DegradedIntervals == 0 || slo.WorstIntervalPermille == 1000 {
		t.Fatalf("intervals = %d degraded, worst %d‰: a 300ms outage must degrade goodput",
			slo.DegradedIntervals, slo.WorstIntervalPermille)
	}
	// Timed-out requests charge the full timeout as excess wait.
	if slo.ExcessWaitUs < slo.TimedOut*100_000 {
		t.Fatalf("ExcessWaitUs = %d < timedout×timeout = %d", slo.ExcessWaitUs, slo.TimedOut*100_000)
	}
}

// TestFinishWhileDown: service goes down and never returns — the outage is
// charged through the measurement horizon, held requests past the deadline
// are timeouts, younger ones failed.
func TestFinishWhileDown(t *testing.T) {
	cfg := testCfg()
	slo := runEngine(t, cfg, time.Second, func(clk *simclock.Clock, e *Engine) {
		clk.At(302*time.Millisecond, "down", e.ServiceDown)
	})

	wantOutage := uint64((time.Second - 302*time.Millisecond) / time.Microsecond)
	if slo.OutageUs != wantOutage {
		t.Fatalf("OutageUs = %d, want %d", slo.OutageUs, wantOutage)
	}
	if slo.DegradedUserUs != wantOutage*cfg.Users {
		t.Fatalf("DegradedUserUs = %d, want %d", slo.DegradedUserUs, wantOutage*cfg.Users)
	}
	if slo.TimedOut == 0 || slo.Failed == 0 {
		t.Fatalf("timedout = %d, failed = %d: want both nonzero (698ms of arrivals vs 500ms deadline)",
			slo.TimedOut, slo.Failed)
	}
	if slo.Delayed != 0 {
		t.Fatalf("Delayed = %d, want 0 (nothing ever resumed)", slo.Delayed)
	}
	if slo.Offered != 100_000 {
		t.Fatalf("Offered = %d, want 100000 (open-loop arrivals continue while down)", slo.Offered)
	}
	if slo.Offered != slo.Completed+slo.TimedOut+slo.Failed {
		t.Fatalf("conservation violated: %d != %d+%d+%d", slo.Offered, slo.Completed, slo.TimedOut, slo.Failed)
	}
}

// TestHaltedClockSyntheticDrain: the clock halts mid-run (terminal
// hypervisor failure). Finish must still account the full nominal horizon
// — same Offered as a completed run — by draining the remaining wheel
// ticks arithmetically.
func TestHaltedClockSyntheticDrain(t *testing.T) {
	cfg := testCfg()
	clk := simclock.New()
	e := New(cfg)
	e.Start(clk, nil, time.Second)
	clk.At(402*time.Millisecond, "failure", func() {
		clk.Halt()
	})
	clk.Run()
	e.ServiceDown() // the campaign marks terminal failure as service loss
	slo := e.Finish()

	if slo.Offered != 100_000 {
		t.Fatalf("Offered = %d, want 100000 despite the halt at 402ms", slo.Offered)
	}
	if slo.Offered != slo.Completed+slo.TimedOut+slo.Failed {
		t.Fatalf("conservation violated: %d != %d+%d+%d", slo.Offered, slo.Completed, slo.TimedOut, slo.Failed)
	}
	wantOutage := uint64((time.Second - 402*time.Millisecond) / time.Microsecond)
	if slo.OutageUs != wantOutage {
		t.Fatalf("OutageUs = %d, want %d", slo.OutageUs, wantOutage)
	}
	if slo.WorstIntervalPermille != 0 {
		t.Fatalf("worst interval = %d‰, want 0 (post-failure intervals got nothing)", slo.WorstIntervalPermille)
	}
}

// TestEngineReuseAcrossRuns: the campaign re-arms one engine per run.
// Run 2 on a reused engine must produce exactly run 1's SLO.
func TestEngineReuseAcrossRuns(t *testing.T) {
	cfg := testCfg()
	run := func(e *Engine) SLO {
		clk := simclock.New()
		e.Start(clk, nil, time.Second)
		clk.At(302*time.Millisecond, "down", e.ServiceDown)
		clk.At(602*time.Millisecond, "up", e.ServiceUp)
		clk.Run()
		return *e.Finish()
	}
	e := New(cfg)
	first := run(e)
	second := run(e)
	if first != second {
		t.Fatalf("reused engine diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

func TestMergeProperties(t *testing.T) {
	mk := func(seed uint64) SLO {
		s := SLO{
			Users: 1000 * seed, Offered: 100 * seed, Completed: 90 * seed,
			Delayed: 5 * seed, TimedOut: 7 * seed, Failed: 3 * seed,
			ExcessWaitUs: 11 * seed, DegradedUserUs: 13 * seed,
			Outages: seed, OutageUs: 17 * seed,
			Intervals: 2 * seed, DegradedIntervals: seed,
			WorstIntervalPermille: 1000 - 100*seed,
		}
		s.Latency.ObserveN(100*seed, 10*seed)
		return s
	}
	a, b, c := mk(1), mk(2), mk(3)

	// Commutativity.
	ab, ba := a, b
	ab.Merge(&b)
	ba.Merge(&a)
	if ab != ba {
		t.Fatalf("merge not commutative:\na+b = %+v\nb+a = %+v", ab, ba)
	}
	// Associativity.
	abc1 := a
	abc1.Merge(&b)
	abc1.Merge(&c)
	bc := b
	bc.Merge(&c)
	abc2 := a
	abc2.Merge(&bc)
	if abc1 != abc2 {
		t.Fatalf("merge not associative:\n(a+b)+c = %+v\na+(b+c) = %+v", abc1, abc2)
	}
	// The zero SLO is the identity on both sides — in particular the min
	// guard must not let an empty shard zero the worst-interval figure.
	var zero SLO
	za := zero
	za.Merge(&a)
	az := a
	az.Merge(&zero)
	if za != a || az != a {
		t.Fatalf("zero not identity:\n0+a = %+v\na+0 = %+v\na   = %+v", za, az, a)
	}
}

// TestZeroAllocSteadyState: after warmup, ticking (including through an
// outage's pend-batch path) allocates nothing.
func TestZeroAllocSteadyState(t *testing.T) {
	cfg := testCfg()
	clk := simclock.New()
	e := New(cfg)
	e.Start(clk, nil, time.Hour)
	// Warm up: a couple of ticks plus one down/up cycle grows every
	// buffer to steady-state size.
	for i := 0; i < 20; i++ {
		clk.Step()
	}
	e.ServiceDown()
	for i := 0; i < 20; i++ {
		clk.Step()
	}
	e.ServiceUp()

	if avg := testing.AllocsPerRun(200, func() { clk.Step() }); avg != 0 {
		t.Fatalf("steady-state tick allocates %v/op, want 0", avg)
	}
	e.ServiceDown()
	if avg := testing.AllocsPerRun(200, func() { clk.Step() }); avg != 0 {
		t.Fatalf("down-path tick allocates %v/op, want 0", avg)
	}
	e.ServiceUp()
}

// TestTelemetryWiring: the request-latency histogram and traffic gauges
// land in the shared registry at Finish.
func TestTelemetryWiring(t *testing.T) {
	cfg := testCfg()
	clk := simclock.New()
	tel := telemetry.New(16, clk.Now)
	e := New(cfg)
	e.Start(clk, tel, time.Second)
	clk.Run()
	slo := e.Finish()

	if h := &tel.Hists[telemetry.HistRequestLatencyUs]; h.Count != slo.Latency.Count || h.Sum != slo.Latency.Sum {
		t.Fatalf("registry hist = %d/%d, want %d/%d", h.Count, h.Sum, slo.Latency.Count, slo.Latency.Sum)
	}
	if g := tel.Gauges[telemetry.GaugeTrafficUsers]; g != int64(cfg.Users) {
		t.Fatalf("users gauge = %d, want %d", g, cfg.Users)
	}
	if g := tel.Gauges[telemetry.GaugeTrafficGoodput]; g != 1000 {
		t.Fatalf("goodput gauge = %d, want 1000", g)
	}
}

// TestConfigDefaults pins the documented defaults and clamps.
func TestConfigDefaults(t *testing.T) {
	c := Config{Users: 1_000_000}.withDefaults()
	if c.Cohorts != 1000 {
		t.Fatalf("Cohorts = %d, want 1000", c.Cohorts)
	}
	if c.Period != time.Second || c.Timeout != 500*time.Millisecond ||
		c.BaseLatency != 2*time.Millisecond || c.SlotWidth != 5*time.Millisecond ||
		c.Interval != time.Second {
		t.Fatalf("defaults = %+v", c)
	}
	if c := (Config{Users: 10}).withDefaults(); c.Cohorts != 1 {
		t.Fatalf("tiny population Cohorts = %d, want 1 (Users/1000 clamps up to 1)", c.Cohorts)
	}
	if c := (Config{Users: 1, Cohorts: 1 << 20}).withDefaults(); c.Cohorts != 1 {
		t.Fatalf("clamped Cohorts = %d, want 1", c.Cohorts)
	}
}
