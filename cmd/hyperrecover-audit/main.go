// Command hyperrecover-audit runs the state-audit experiment: the hybrid
// escalation ladder with and without the post-recovery invariant audit
// (internal/audit) faces the same mixed-fault seed set, under three
// adversarial injection profiles:
//
//   - single: one fault per run (the paper's §VI-C model)
//   - burst: a second fault is armed within a short window after the first
//     fires, so corruption can land while the first fault is still latent
//     or during the recovery the first fault triggers
//   - during-recovery: an extra fault trigger is armed at the moment
//     recovery pauses the system, so corruption lands while recovery's
//     own repairs run
//
// For each profile the tool reports both configurations' recovery rates,
// the audit's repair/sacrifice totals, and how often the adversarial
// triggers actually fired. The headline: the audit never lowers the
// recovery rate and buys back runs whose residual structural damage the
// ladder's fixed enhancement set misses.
//
// Examples:
//
//	hyperrecover-audit                          # 100 runs per fault type
//	hyperrecover-audit -runs-per-fault 200 -burst 50ms
//	hyperrecover-audit -format markdown
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nilihype/internal/campaign"
	"nilihype/internal/core"
	"nilihype/internal/inject"
	"nilihype/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hyperrecover-audit:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runsPerFault = flag.Int("runs-per-fault", 100, "injection runs per fault type (3 fault types per configuration)")
		duration     = flag.Duration("duration", 3*time.Second, "benchmark duration (virtual time)")
		memoryMB     = flag.Int("memory", 1024, "machine memory in MB")
		burst        = flag.Duration("burst", 100*time.Millisecond, "burst-profile window for the second fault")
		parallel     = flag.Int("parallel", 0, "concurrent runs (0 = GOMAXPROCS)")
		formatStr    = flag.String("format", "text", "output format: text | markdown | csv")
	)
	flag.Parse()

	format, err := report.ParseFormat(*formatStr)
	if err != nil {
		return err
	}

	faults := []inject.FaultType{inject.Failstop, inject.Register, inject.Code}

	profiles := []struct {
		name   string
		mutate func(*campaign.RunConfig)
	}{
		{"single", func(rc *campaign.RunConfig) {}},
		{"burst", func(rc *campaign.RunConfig) { rc.BurstWindow = *burst }},
		{"during-recovery", func(rc *campaign.RunConfig) { rc.FaultDuringRecovery = true }},
	}

	table := report.NewTable(
		fmt.Sprintf("State audit: hybrid ladder ± audit, mixed faults (%d runs each: Failstop/Register/Code), 3AppVM, %d MB",
			3**runsPerFault, *memoryMB),
		"Profile", "Audit", "Detected", "Successful recovery", "Violations", "Repaired", "Sacrificed", "Burst", "During-rec")

	// summaries[profile][0] = audit off, [1] = audit on.
	summaries := make([][2]campaign.Summary, len(profiles))
	for i, p := range profiles {
		for _, auditOn := range []bool{false, true} {
			rec := core.HybridConfig()
			rec.Escalation.Audit = auditOn
			base := campaign.RunConfig{
				Setup:         campaign.ThreeAppVM,
				Recovery:      rec,
				BenchDuration: *duration,
				MemoryMB:      *memoryMB,
			}
			p.mutate(&base)
			s := campaign.MixedFaultCampaign(base, faults, *runsPerFault, *parallel)
			idx := 0
			label := "off"
			if auditOn {
				idx, label = 1, "on"
			}
			summaries[i][idx] = s
			rate, ci := s.SuccessRate()
			table.AddRow(p.name, label,
				fmt.Sprintf("%d", s.DetectedCount),
				report.PctCI(rate, ci),
				fmt.Sprintf("%d", s.AuditViolations),
				fmt.Sprintf("%d", s.AuditRepaired),
				fmt.Sprintf("%d", s.SacrificedVMs),
				fmt.Sprintf("%d", s.BurstFiredRuns),
				fmt.Sprintf("%d", s.DuringRecoveryFiredRuns))
		}
	}
	fmt.Print(table.Render(format))

	fmt.Println()
	for i, p := range profiles {
		off, on := summaries[i][0], summaries[i][1]
		offRate, _ := off.SuccessRate()
		onRate, _ := on.SuccessRate()
		verdict := "audit-on >= audit-off"
		if onRate < offRate {
			verdict = "audit-on BELOW audit-off"
		}
		fmt.Printf("%-16s audit-on %s vs audit-off %s — %s\n",
			p.name+":", report.Pct(onRate), report.Pct(offRate), verdict)
	}
	return nil
}
