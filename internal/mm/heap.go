package mm

import (
	"fmt"
	"math/rand/v2"

	"nilihype/internal/locking"
)

// objectCanarySalt seeds the per-object canary word. The canary models the
// integrity of an allocated heap object's contents: error propagation that
// scribbles over a live object flips canary bits, and the post-recovery
// audit (or the §VII-A failure path) discovers the mismatch.
const objectCanarySalt = 0x9e3779b97f4a7c15

func canaryFor(id uint64) uint64 { return id*objectCanarySalt ^ 0x5ca1ab1e }

// Object is one allocation from the hypervisor heap. Objects may embed
// spinlocks (registered with the lock registry as heap locks), mirroring
// Xen structures such as struct domain.
type Object struct {
	ID    uint64
	Tag   string
	Pages []int // frame indices backing the object

	locks  []*locking.Lock
	freed  bool
	canary uint64
}

// Locks returns the spinlocks embedded in the object.
func (o *Object) Locks() []*locking.Lock { return o.locks }

// Damaged reports whether the object's contents have been corrupted (its
// canary no longer matches). Both microreset and microreboot preserve live
// objects in place, so this damage survives every ladder rung (§VII-A's
// "corrupted allocated object" class) unless the audit repairs it.
func (o *Object) Damaged() bool { return o.canary != canaryFor(o.ID) }

// Corrupt flips a random canary bit, modeling error propagation into the
// object's contents.
func (o *Object) Corrupt(rng *rand.Rand) {
	o.canary ^= 1 << uint(rng.IntN(64))
}

// Repair re-initializes the object's contents to a known-good fixed state.
// The object is no longer damaged, but whatever guest state it encoded is
// gone — callers sacrifice the owning VM when one exists.
func (o *Object) Repair() { o.canary = canaryFor(o.ID) }

// checkWindow is how many entries at the hot (LIFO) end of the free list
// the cheap Check walk validates. Allocator hypercall paths call Check, so
// it must stay O(1)-ish; the full-list walk is ValidateFreeList.
const checkWindow = 8

// corruptDepth bounds how deep from the LIFO end CorruptFreeList damages an
// entry: near-term allocations traverse the damage, so the fault manifests
// within the run rather than lying dormant at the bottom of the list.
const corruptDepth = 16

// Heap is the hypervisor heap allocator over the frame table. Its free
// list is the "linked list or the heap" data structure whose corruption is
// the paper's third leading cause of recovery failure (§VII-A). Corruption
// is structural: CorruptFreeList damages real entries, Check/Alloc validate
// the hot end, and ValidateFreeList performs the full audit walk.
type Heap struct {
	ft    *FrameTable
	locks *locking.Registry

	start, count int // frame range owned by the heap

	free    []int // free frame indices (LIFO free list)
	objects map[uint64]*Object
	nextID  uint64
}

// NewHeap builds a heap owning the frames [start, start+count) of ft.
func NewHeap(ft *FrameTable, locks *locking.Registry, start, count int) *Heap {
	h := &Heap{
		ft:      ft,
		locks:   locks,
		start:   start,
		count:   count,
		objects: make(map[uint64]*Object),
	}
	// LIFO order: push high frames first so low frames allocate first.
	for i := start + count - 1; i >= start; i-- {
		h.free = append(h.free, i)
	}
	return h
}

// FreePages returns the number of frames on the free list.
func (h *Heap) FreePages() int { return len(h.free) }

// AllocatedObjects returns the live object count.
func (h *Heap) AllocatedObjects() int { return len(h.objects) }

// entryValid reports whether the free-list entry at depth i from the LIFO
// end names an in-range frame that is actually free and not a duplicate of
// a shallower entry.
func (h *Heap) entryValid(i int) bool {
	fi := h.free[len(h.free)-1-i]
	if fi < 0 || fi >= h.ft.Len() || h.ft.Frame(fi).Type != FrameFree {
		return false
	}
	for j := 0; j < i; j++ {
		if h.free[len(h.free)-1-j] == fi {
			return false
		}
	}
	return true
}

// Alloc allocates an object of the given page count. It validates the
// free-list entries it is about to hand out and returns nil — without
// popping anything — if the heap is exhausted or an entry is damaged (the
// caller treats nil as a fatal hypervisor error).
func (h *Heap) Alloc(pages int, tag string) *Object {
	if pages > len(h.free) {
		return nil
	}
	for i := 0; i < pages; i++ {
		if !h.entryValid(i) {
			return nil
		}
	}
	o := &Object{ID: h.nextID, Tag: tag}
	o.canary = canaryFor(o.ID)
	h.nextID++
	for i := 0; i < pages; i++ {
		fi := h.free[len(h.free)-1]
		h.free = h.free[:len(h.free)-1]
		h.ft.Frame(fi).Type = FrameHeap
		o.Pages = append(o.Pages, fi)
	}
	h.objects[o.ID] = o
	return o
}

// AddLock embeds a new heap spinlock in the object.
func (h *Heap) AddLock(o *Object, name string) *locking.Lock {
	l := h.locks.NewHeap(fmt.Sprintf("%s.%s", o.Tag, name))
	o.locks = append(o.locks, l)
	return l
}

// Free releases the object's pages back to the free list and drops its
// locks from the registry. Double-free panics (hypervisor bug).
func (h *Heap) Free(o *Object) {
	if o.freed {
		panic(fmt.Sprintf("mm: double free of object %d (%s)", o.ID, o.Tag))
	}
	o.freed = true
	delete(h.objects, o.ID)
	for _, fi := range o.Pages {
		h.ft.Frame(fi).Type = FrameFree
		h.free = append(h.free, fi)
	}
	for _, l := range o.locks {
		h.locks.DropHeap(l)
	}
}

// AllocatedPages returns the frame indices of every live object, in object
// ID order. ReHype's "record allocated pages of old heap" step walks this
// set so the reboot can preserve their contents (Table II).
func (h *Heap) AllocatedPages() []int {
	var out []int
	// Deterministic order: iterate IDs from 0 to nextID.
	for id := uint64(0); id < h.nextID; id++ {
		if o, ok := h.objects[id]; ok {
			out = append(out, o.Pages...)
		}
	}
	return out
}

// Rebuild reconstructs the free list from the frame table, preserving live
// objects. This is ReHype's "recreate the new heap" step (Table II, 211 ms
// at 8 GB); rebuilding discards any free-list damage — the reason
// microreboot survives some heap-corrupting faults that microreset does
// not.
func (h *Heap) Rebuild() {
	h.free = h.free[:0]
	allocated := make(map[int]bool)
	for _, o := range h.objects {
		for _, fi := range o.Pages {
			allocated[fi] = true
		}
	}
	// Walk only the heap's own range: free frames elsewhere in the
	// machine (unallocated guest memory) are not the heap's to hand out.
	for i := h.start + h.count - 1; i >= h.start; i-- {
		f := h.ft.Frame(i)
		if f.Type == FrameHeap && !allocated[i] {
			f.Type = FrameFree
		}
		if f.Type == FrameFree {
			h.free = append(h.free, i)
		}
	}
}

// Check validates the hot end of the free list — the entries the allocator
// will hand out next. Hypervisor code paths that touch the allocator call
// this; the error becomes a panic (detected failure) in the hypervisor
// model. O(checkWindow), so allocator hot paths stay cheap.
func (h *Heap) Check() error {
	k := len(h.free)
	if k > checkWindow {
		k = checkWindow
	}
	for i := 0; i < k; i++ {
		if !h.entryValid(i) {
			fi := h.free[len(h.free)-1-i]
			return fmt.Errorf("mm: heap free list corrupted: entry %d (frame %d)", i, fi)
		}
	}
	return nil
}

// CorruptFreeList structurally damages a free-list entry within
// corruptDepth of the LIFO end: out-of-range garbage, a cross-link to an
// allocated frame, or a duplicate of another entry. It returns a short
// description of the damage, or a note when the list is empty.
func (h *Heap) CorruptFreeList(rng *rand.Rand) string {
	if len(h.free) == 0 {
		return "free list empty; nothing to damage"
	}
	span := len(h.free)
	if span > corruptDepth {
		span = corruptDepth
	}
	idx := len(h.free) - 1 - rng.IntN(span)
	switch rng.IntN(3) {
	case 0: // out-of-range garbage pointer
		h.free[idx] = h.ft.Len() + 1 + rng.IntN(1024)
		return fmt.Sprintf("entry %d points out of range (%d)", idx, h.free[idx])
	case 1: // cross-link to a frame that is still allocated
		if pages := h.AllocatedPages(); len(pages) > 0 {
			h.free[idx] = pages[rng.IntN(len(pages))]
			return fmt.Sprintf("entry %d cross-linked to allocated frame %d", idx, h.free[idx])
		}
		h.free[idx] = -1
		return fmt.Sprintf("entry %d points out of range (-1)", idx)
	default: // duplicate another entry
		other := idx - 1
		if other < 0 {
			other = idx + 1
		}
		if other >= len(h.free) {
			h.free[idx] = -1
			return fmt.Sprintf("entry %d points out of range (-1)", idx)
		}
		h.free[idx] = h.free[other]
		return fmt.Sprintf("entry %d duplicates frame %d", idx, h.free[idx])
	}
}

// ValidateFreeList performs the full free-list audit walk: every entry must
// be an in-range free frame, no frame may appear twice, and every free
// frame in the heap's range must be on the list (no leaks). It returns one
// description per violation, empty when the list is intact.
func (h *Heap) ValidateFreeList() []string {
	var out []string
	seen := make(map[int]bool, len(h.free))
	for i := len(h.free) - 1; i >= 0; i-- {
		fi := h.free[i]
		if fi < 0 || fi >= h.ft.Len() {
			out = append(out, fmt.Sprintf("entry %d out of range (%d)", i, fi))
			continue
		}
		if seen[fi] {
			out = append(out, fmt.Sprintf("frame %d on free list twice", fi))
			continue
		}
		seen[fi] = true
		if h.ft.Frame(fi).Type != FrameFree {
			out = append(out, fmt.Sprintf("frame %d on free list but not free (%v)", fi, h.ft.Frame(fi).Type))
		}
	}
	for i := h.start; i < h.start+h.count; i++ {
		if h.ft.Frame(i).Type == FrameFree && !seen[i] {
			out = append(out, fmt.Sprintf("free frame %d leaked off the list", i))
		}
	}
	return out
}

// CorruptRandomObject flips a canary bit in a random live object (picked in
// ID order for determinism), modeling error propagation into an allocated
// heap object's contents. Returns the victim's tag, or a note when no
// objects are live.
func (h *Heap) CorruptRandomObject(rng *rand.Rand) string {
	var live []*Object
	for id := uint64(0); id < h.nextID; id++ {
		if o, ok := h.objects[id]; ok {
			live = append(live, o)
		}
	}
	if len(live) == 0 {
		return "no live objects"
	}
	o := live[rng.IntN(len(live))]
	o.Corrupt(rng)
	return o.Tag
}

// DamagedObjects returns the live objects whose canaries no longer match,
// in ID order.
func (h *Heap) DamagedObjects() []*Object {
	var out []*Object
	for id := uint64(0); id < h.nextID; id++ {
		if o, ok := h.objects[id]; ok && o.Damaged() {
			out = append(out, o)
		}
	}
	return out
}
