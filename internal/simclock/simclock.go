// Package simclock provides the discrete-event simulation kernel used by
// every other subsystem: a virtual clock, a deterministic event queue, and
// cancellable timers.
//
// All simulated components schedule work on a single Clock. Virtual time
// only advances when the next event is dispatched, so a simulated second
// costs only as many event dispatches as there are events in it. Events
// scheduled for the same instant fire in scheduling order (FIFO), which
// makes runs bit-for-bit reproducible for a fixed seed.
//
// The kernel is the hottest loop of a fault-injection campaign (hundreds
// of dispatches per virtual millisecond per run), so it is built to be
// allocation-free in steady state: the queue is an intrusive 4-ary
// min-heap specialized to *Event (no interface boxing, shallower
// sift-down paths than a binary heap), and fired or cancelled events are
// recycled through a per-Clock free list instead of being handed to the
// garbage collector.
package simclock

import (
	"fmt"
	"time"
)

// Func is the callback invoked when an event fires.
type Func func()

// Event is a scheduled callback. It is returned by At and After so that the
// caller can cancel or reschedule it. The zero value is not usable; events
// are created only by Clock.
//
// Handle lifetime: a handle is unconditionally valid while its event is
// pending. Once the event fires or is cancelled, the Clock recycles the
// Event through a free list, so the handle remains valid only until the
// next At/After call reuses the storage. Rescheduling a fired event from
// inside its own callback (the periodic-timer idiom) or immediately after
// Run/Step returns is therefore safe; holding a handle across unrelated
// scheduling activity and then cancelling or rescheduling it is not —
// drop handles when their events fire (as the event's own callback is the
// natural place to do).
type Event struct {
	when time.Duration
	seq  uint64
	fn   Func
	tag  string
	// index is the position in the clock's heap; -1 when not queued.
	index int
	// recycled marks the event as sitting on the clock's free list.
	recycled bool
}

// When reports the virtual time at which the event is scheduled to fire.
func (e *Event) When() time.Duration { return e.when }

// Tag returns the diagnostic label the event was scheduled with.
func (e *Event) Tag() string { return e.tag }

// Pending reports whether the event is still queued.
func (e *Event) Pending() bool { return e.index >= 0 }

// Clock is a discrete-event virtual clock. It is not safe for concurrent
// use; the whole simulation is single-threaded by design (determinism).
type Clock struct {
	now        time.Duration
	seq        uint64
	queue      eventQueue
	free       []*Event
	halted     bool
	dispatched uint64
	// highWater is the peak pending-event queue depth — a passive
	// telemetry gauge sampled by the campaign layer.
	highWater int
}

// New returns a Clock positioned at virtual time zero.
func New() *Clock {
	return &Clock{}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Dispatched returns the number of events dispatched so far. It is useful
// for bounding runaway simulations in tests.
func (c *Clock) Dispatched() uint64 { return c.dispatched }

// Len returns the number of pending events.
func (c *Clock) Len() int { return len(c.queue) }

// QueueHighWater returns the peak pending-event queue depth observed so
// far (since construction or the last Restore).
func (c *Clock) QueueHighWater() int { return c.highWater }

// alloc takes an Event from the free list, or allocates a fresh one.
// Events rescued from the free list by Reschedule are skipped lazily here
// rather than unlinked eagerly there.
func (c *Clock) alloc() *Event {
	for n := len(c.free); n > 0; n = len(c.free) {
		e := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		if e.recycled {
			e.recycled = false
			return e
		}
	}
	return &Event{index: -1}
}

// recycle returns a fired or cancelled event to the free list. The fn and
// tag fields are kept (Reschedule of a fired event must preserve them);
// they are overwritten on reuse.
func (c *Clock) recycle(e *Event) {
	e.recycled = true
	c.free = append(c.free, e)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is a programming error and panics: allowing it would silently reorder
// time and break determinism.
func (c *Clock) At(t time.Duration, tag string, fn Func) *Event {
	if t < c.now {
		panic(fmt.Sprintf("simclock: scheduling %q at %v before now %v", tag, t, c.now))
	}
	e := c.alloc()
	e.when = t
	e.seq = c.seq
	e.fn = fn
	e.tag = tag
	c.seq++
	c.queue.push(e)
	if len(c.queue) > c.highWater {
		c.highWater = len(c.queue)
	}
	return e
}

// After schedules fn to run d after the current virtual time.
func (c *Clock) After(d time.Duration, tag string, fn Func) *Event {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative delay %v for %q", d, tag))
	}
	return c.At(c.now+d, tag, fn)
}

// Cancel removes a pending event. Cancelling an event that already fired or
// was already cancelled is a no-op, so callers need not track event state.
func (c *Clock) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	c.queue.remove(e.index)
	c.recycle(e)
}

// Reschedule moves a pending event to a new absolute time, preserving its
// callback and tag. If the event already fired (or was cancelled) it is
// re-queued, reclaiming it from the free list if necessary.
func (c *Clock) Reschedule(e *Event, t time.Duration) {
	if t < c.now {
		panic(fmt.Sprintf("simclock: rescheduling %q at %v before now %v", e.tag, t, c.now))
	}
	if e.index >= 0 {
		c.queue.remove(e.index)
	}
	e.recycled = false // rescue from the free list; alloc skips it lazily
	e.when = t
	e.seq = c.seq
	c.seq++
	c.queue.push(e)
	if len(c.queue) > c.highWater {
		c.highWater = len(c.queue)
	}
}

// Step dispatches the single next event and returns true, or returns false
// if the queue is empty or the clock has been halted.
func (c *Clock) Step() bool {
	if c.halted || len(c.queue) == 0 {
		return false
	}
	e := c.queue.pop()
	c.now = e.when
	c.dispatched++
	e.fn()
	// The callback may have rescheduled e (periodic timers); recycle only
	// if it is still unqueued.
	if e.index < 0 && !e.recycled {
		c.recycle(e)
	}
	return true
}

// RunUntil dispatches events until virtual time would pass t, the queue
// empties, or the clock halts. On return Now() == t unless halted earlier.
func (c *Clock) RunUntil(t time.Duration) {
	for !c.halted && len(c.queue) > 0 && c.queue[0].when <= t {
		c.Step()
	}
	if !c.halted && c.now < t {
		c.now = t
	}
}

// Run dispatches events until the queue empties or the clock halts.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// Halt stops dispatching. Pending events are preserved; Resume re-enables
// dispatching. Halt is how a simulation terminates early (e.g. on an
// unrecoverable hypervisor failure).
func (c *Clock) Halt() { c.halted = true }

// Resume re-enables dispatching after Halt.
func (c *Clock) Resume() { c.halted = false }

// Halted reports whether the clock is halted.
func (c *Clock) Halted() bool { return c.halted }

// eventQueue is an intrusive 4-ary min-heap of *Event ordered by
// (when, seq). Compared to container/heap it avoids the heap.Interface
// `any` boxing and its indirect calls, and the 4-ary layout halves the
// tree depth: sift-down touches fewer cache lines because the four
// children of a node are adjacent in the backing slice.
//
// Tie-break on seq makes the order total (seq is unique per scheduling),
// so equal-timestamp events fire strictly FIFO regardless of heap shape.
type eventQueue []*Event

// less orders events by (when, seq).
func (eventQueue) less(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// push appends e and restores the heap property upward.
func (q *eventQueue) push(e *Event) {
	*q = append(*q, e)
	q.siftUp(len(*q) - 1)
}

// pop removes and returns the minimum event.
func (q *eventQueue) pop() *Event {
	h := *q
	e := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	h = h[:n]
	*q = h
	e.index = -1
	if n > 0 {
		h[0] = last
		last.index = 0
		h.siftDown(0)
	}
	return e
}

// remove deletes the event at heap index i.
func (q *eventQueue) remove(i int) {
	h := *q
	e := h[i]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	h = h[:n]
	*q = h
	e.index = -1
	if i == n {
		return
	}
	h[i] = last
	last.index = i
	if i > 0 && h.less(last, h[(i-1)/4]) {
		h.siftUp(i)
	} else {
		h.siftDown(i)
	}
}

// siftUp moves the event at index i toward the root. The hole-shifting
// form (move parents down, place once) does one store per level instead
// of a three-store swap.
func (q eventQueue) siftUp(i int) {
	e := q[i]
	for i > 0 {
		p := (i - 1) / 4
		if !q.less(e, q[p]) {
			break
		}
		q[i] = q[p]
		q[i].index = i
		i = p
	}
	q[i] = e
	e.index = i
}

// siftDown moves the event at index i toward the leaves.
func (q eventQueue) siftDown(i int) {
	n := len(q)
	e := q[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		m := first
		end := first + 4
		if end > n {
			end = n
		}
		for j := first + 1; j < end; j++ {
			if q.less(q[j], q[m]) {
				m = j
			}
		}
		if !q.less(q[m], e) {
			break
		}
		q[i] = q[m]
		q[i].index = i
		i = m
	}
	q[i] = e
	e.index = i
}
