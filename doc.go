// Package nilihype is a simulation-based reproduction of "Fast Hypervisor
// Recovery Without Reboot" (Zhou & Tamir, DSN 2018): component-level
// recovery of a Xen-like hypervisor by microreset (NiLiHype) compared with
// microreboot (ReHype).
//
// The public surface lives in the example programs (examples/), the
// experiment tools (cmd/), and the benchmark harness (bench_test.go); the
// library packages are under internal/ — see DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-versus-measured results.
package nilihype
