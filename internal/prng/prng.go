// Package prng provides seeded random streams for the simulation.
//
// math/rand/v2's PCG generator uses its two seed words as raw state, so
// streams created from sequential seeds (run 1, run 2, ...) produce
// correlated early outputs — enough to visibly bias campaign-level
// proportions. New scrambles the seed words through SplitMix64 before
// seeding, which decorrelates neighboring streams.
package prng

import "math/rand/v2"

// Scramble applies the SplitMix64 finalizer, a bijective avalanche mix.
func Scramble(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// seedWords derives the two scrambled PCG state words for (seed, stream).
// New and Stream.Reseed must agree exactly: a reseeded stream has to be
// indistinguishable from a freshly constructed one.
func seedWords(seed, stream uint64) (uint64, uint64) {
	return Scramble(seed), Scramble(stream ^ seed<<1 | 1)
}

// New returns a PCG stream for (seed, stream), decorrelated across
// neighboring seeds and streams.
func New(seed, stream uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seedWords(seed, stream)))
}

// Stream is a seeded random stream that can be re-seeded in place.
// math/rand/v2's Rand keeps no buffered state beyond its source, so
// re-seeding the retained PCG puts the stream in exactly the state a fresh
// New(seed, stream) would have — which is what lets a snapshot-forked run
// reuse the same *rand.Rand aliased throughout a live object graph.
type Stream struct {
	*rand.Rand
	pcg *rand.PCG
}

// NewStream returns a reseedable stream for (seed, stream), generating the
// identical sequence to New(seed, stream).
func NewStream(seed, stream uint64) *Stream {
	pcg := rand.NewPCG(seedWords(seed, stream))
	return &Stream{Rand: rand.New(pcg), pcg: pcg}
}

// Reseed resets the stream in place to the state of a fresh
// NewStream(seed, stream). Existing aliases of the embedded Rand observe
// the new sequence immediately.
func (s *Stream) Reseed(seed, stream uint64) {
	s.pcg.Seed(seedWords(seed, stream))
}
