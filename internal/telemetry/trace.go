package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// chromeEvent is one entry of the Chrome trace_event format
// (chrome://tracing, Perfetto "legacy JSON"). ts/dur are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace_event JSON document.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// recoveryLaneOffset places recovery-engine spans on their own lanes,
// above the per-CPU lanes, in the chrome trace.
const recoveryLaneOffset = 1000

// TraceMarker is one externally-supplied trace entry merged into the
// Chrome trace view via WriteChromeTraceLanes — an instant when Dur is
// zero, a span otherwise.
type TraceMarker struct {
	Name   string
	At     time.Duration
	Dur    time.Duration
	Detail string
}

// ExtraLane is an additional named lane of externally-supplied markers
// (e.g. the recovery journal) merged into the Chrome trace view.
type ExtraLane struct {
	TID     int
	Name    string
	Markers []TraceMarker
}

// WriteChromeTrace renders the flight recorder's retained events as a
// Chrome trace_event JSON document: per-CPU instant lanes for hypervisor
// activity, span ("X") events for recovery phases, and instant markers for
// injection, detection, and recovery milestones. Load the output in
// chrome://tracing or https://ui.perfetto.dev.
func (t *Telemetry) WriteChromeTrace(w io.Writer, numCPUs int) error {
	return t.WriteChromeTraceLanes(w, numCPUs)
}

// WriteChromeTraceLanes is WriteChromeTrace with extra lanes merged in —
// the recovery journal's causal event stream renders alongside the flight
// recorder's raw activity on its own named lane.
func (t *Telemetry) WriteChromeTraceLanes(w io.Writer, numCPUs int, lanes ...ExtraLane) error {
	events := t.Flight.Events()
	doc := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(events)+numCPUs+4)}

	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "process_name", Phase: "M", PID: 1,
		Args: map[string]any{"name": "hyperrecover"},
	})
	for cpu := 0; cpu < numCPUs; cpu++ {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: cpu,
			Args: map[string]any{"name": fmt.Sprintf("cpu%d", cpu)},
		})
	}
	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "thread_name", Phase: "M", PID: 1, TID: recoveryLaneOffset,
		Args: map[string]any{"name": "recovery"},
	})

	for _, e := range events {
		ts := float64(e.At) / float64(time.Microsecond)
		switch e.Code {
		case EvPhase:
			nameID, d := UnpackPhaseArg(e.Arg)
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: t.Str(nameID), Phase: "X",
				TS: ts, Dur: float64(d) / float64(time.Microsecond),
				PID: 1, TID: recoveryLaneOffset,
				Args: map[string]any{"cpu": int(e.CPU)},
			})
		case EvAttemptBegin, EvAttemptFail, EvEscalate, EvRecovered,
			EvPause, EvResume, EvAudit, EvDetect:
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: t.markerName(e), Phase: "i", TS: ts,
				PID: 1, TID: recoveryLaneOffset, Scope: "p",
				Args: map[string]any{"cpu": int(e.CPU), "detail": t.EventDetail(e)},
			})
		case EvInject, EvPanic, EvSpin, EvWedge, EvNMI:
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: t.markerName(e), Phase: "i", TS: ts,
				PID: 1, TID: int(e.CPU), Scope: "t",
				Args: map[string]any{"detail": t.EventDetail(e)},
			})
		default:
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: t.markerName(e), Phase: "i", TS: ts,
				PID: 1, TID: int(e.CPU), Scope: "t",
			})
		}
	}

	for _, lane := range lanes {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: lane.TID,
			Args: map[string]any{"name": lane.Name},
		})
		for _, m := range lane.Markers {
			ev := chromeEvent{
				Name: m.Name, TS: float64(m.At) / float64(time.Microsecond),
				PID: 1, TID: lane.TID,
			}
			if m.Detail != "" {
				ev.Args = map[string]any{"detail": m.Detail}
			}
			if m.Dur > 0 {
				ev.Phase = "X"
				ev.Dur = float64(m.Dur) / float64(time.Microsecond)
			} else {
				ev.Phase = "i"
				ev.Scope = "p"
			}
			doc.TraceEvents = append(doc.TraceEvents, ev)
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// markerName builds the display name for a non-span event.
func (t *Telemetry) markerName(e Event) string {
	switch e.Code {
	case EvDispatch, EvComplete, EvRetry, EvDrop:
		return e.Code.String() + ":" + t.opName(e.Arg)
	case EvInject:
		return "inject:" + t.Str(e.Arg)
	case EvDetect:
		return "detect:" + t.Str(e.Arg)
	case EvAttemptBegin:
		return "attempt:" + t.Str(e.Arg)
	case EvEscalate:
		return "escalate:" + t.Str(e.Arg)
	case EvIRQEnter:
		return "irq:" + t.Str(e.Arg)
	default:
		return e.Code.String()
	}
}

// WriteTextTimeline renders the retained flight events as plain timeline
// lines, one per event, oldest first.
func (t *Telemetry) WriteTextTimeline(w io.Writer) error {
	for _, e := range t.Flight.Events() {
		if _, err := fmt.Fprintln(w, t.FormatEvent(e)); err != nil {
			return err
		}
	}
	return nil
}

// WriteMetrics renders every non-zero counter, gauge, and histogram as
// "name value" lines, sorted by name — a stable, diffable metrics dump.
func (t *Telemetry) WriteMetrics(w io.Writer) error {
	var lines []string
	for c := Counter(0); c < Counter(ctrOpBase); c++ {
		if t.Counters[c] != 0 {
			lines = append(lines, fmt.Sprintf("%s %d", c.Name(), t.Counters[c]))
		}
	}
	for op := 0; op < MaxOps; op++ {
		v := t.Counters[CtrOp(op)]
		if v == 0 {
			continue
		}
		name := "hypercall.op." + t.opName(uint64(op))
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for g := Gauge(0); g < NumGauges; g++ {
		if t.Gauges[g] != 0 {
			lines = append(lines, fmt.Sprintf("%s %d", g.Name(), t.Gauges[g]))
		}
	}
	for id := HistID(0); id < NumHists; id++ {
		h := &t.Hists[id]
		if h.Count == 0 {
			continue
		}
		lines = append(lines, fmt.Sprintf("%s count=%d mean=%.1f p50=%d p99=%d max=%d",
			id.Name(), h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
