package locking

import (
	"testing"
	"testing/quick"
)

func TestTryAcquireRelease(t *testing.T) {
	r := NewRegistry()
	l := r.NewStatic("timer_lock")
	if l.Held() {
		t.Fatal("new lock is held")
	}
	if l.Owner() != NoOwner {
		t.Fatal("new lock has an owner")
	}
	if !l.TryAcquire(2) {
		t.Fatal("TryAcquire on free lock failed")
	}
	if !l.Held() || l.Owner() != 2 {
		t.Fatalf("held=%v owner=%d, want held by cpu2", l.Held(), l.Owner())
	}
	if l.TryAcquire(3) {
		t.Fatal("TryAcquire on held lock succeeded")
	}
	l.Release(2)
	if l.Held() || l.Owner() != NoOwner {
		t.Fatal("lock still held after release")
	}
	if l.Acquisitions != 1 {
		t.Fatalf("Acquisitions = %d, want 1", l.Acquisitions)
	}
}

func TestReleaseFreeLockPanics(t *testing.T) {
	r := NewRegistry()
	l := r.NewHeap("pgd_lock")
	defer func() {
		if recover() == nil {
			t.Fatal("release of free lock did not panic")
		}
	}()
	l.Release(0)
}

func TestReleaseByWrongOwnerPanics(t *testing.T) {
	r := NewRegistry()
	l := r.NewHeap("pgd_lock")
	l.TryAcquire(1)
	defer func() {
		if recover() == nil {
			t.Fatal("release by non-owner did not panic")
		}
	}()
	l.Release(2)
}

func TestForceReleaseIgnoresOwner(t *testing.T) {
	r := NewRegistry()
	l := r.NewHeap("domain_lock")
	l.TryAcquire(5)
	l.ForceRelease()
	if l.Held() {
		t.Fatal("still held after ForceRelease")
	}
	l.ForceRelease() // idempotent
}

func TestStaticSegmentOrder(t *testing.T) {
	r := NewRegistry()
	names := []string{"console_lock", "timer_lock", "domlist_lock"}
	for _, n := range names {
		r.NewStatic(n)
	}
	seg := r.StaticSegment()
	if len(seg) != 3 {
		t.Fatalf("segment size = %d, want 3", len(seg))
	}
	for i, l := range seg {
		if l.Name() != names[i] {
			t.Fatalf("segment[%d] = %q, want %q (declaration order)", i, l.Name(), names[i])
		}
		if l.Kind() != Static {
			t.Fatalf("segment[%d] kind = %v, want static", i, l.Kind())
		}
	}
}

func TestUnlockStaticSegmentReleasesOnlyStatic(t *testing.T) {
	r := NewRegistry()
	s1 := r.NewStatic("a")
	s2 := r.NewStatic("b")
	h := r.NewHeap("c")
	s1.TryAcquire(0)
	h.TryAcquire(1)
	if n := r.UnlockStaticSegment(); n != 1 {
		t.Fatalf("released %d static locks, want 1", n)
	}
	if s1.Held() || s2.Held() {
		t.Fatal("static lock still held")
	}
	if !h.Held() {
		t.Fatal("heap lock was released by static unlock")
	}
}

func TestUnlockHeapLocksReleasesOnlyHeap(t *testing.T) {
	r := NewRegistry()
	s := r.NewStatic("a")
	h1 := r.NewHeap("b")
	h2 := r.NewHeap("c")
	s.TryAcquire(0)
	h1.TryAcquire(1)
	h2.TryAcquire(2)
	if n := r.UnlockHeapLocks(); n != 2 {
		t.Fatalf("released %d heap locks, want 2", n)
	}
	if h1.Held() || h2.Held() {
		t.Fatal("heap lock still held")
	}
	if !s.Held() {
		t.Fatal("static lock was released by heap unlock")
	}
}

func TestReinitStatic(t *testing.T) {
	r := NewRegistry()
	s := r.NewStatic("a")
	s.TryAcquire(3)
	r.ReinitStatic()
	if s.Held() {
		t.Fatal("static lock held after reinit")
	}
}

func TestHeldLocksFiltersByKind(t *testing.T) {
	r := NewRegistry()
	s := r.NewStatic("s")
	h := r.NewHeap("h")
	s.TryAcquire(0)
	h.TryAcquire(0)
	if got := r.HeldLocks(Static); len(got) != 1 || got[0] != s {
		t.Fatalf("HeldLocks(Static) = %v", got)
	}
	if got := r.HeldLocks(Heap); len(got) != 1 || got[0] != h {
		t.Fatalf("HeldLocks(Heap) = %v", got)
	}
	if got := r.HeldLocks(); len(got) != 2 {
		t.Fatalf("HeldLocks() = %d locks, want 2", len(got))
	}
}

func TestDropHeap(t *testing.T) {
	r := NewRegistry()
	h1 := r.NewHeap("a")
	h2 := r.NewHeap("b")
	r.DropHeap(h1)
	if _, heapN := r.Counts(); heapN != 1 {
		t.Fatalf("heap count = %d, want 1", heapN)
	}
	if locks := r.HeapLocks(); len(locks) != 1 || locks[0] != h2 {
		t.Fatalf("HeapLocks() = %v", locks)
	}
	r.DropHeap(h1) // dropping again is a no-op
}

func TestCounts(t *testing.T) {
	r := NewRegistry()
	r.NewStatic("a")
	r.NewStatic("b")
	r.NewHeap("c")
	s, h := r.Counts()
	if s != 2 || h != 1 {
		t.Fatalf("Counts() = (%d, %d), want (2, 1)", s, h)
	}
}

func TestKindString(t *testing.T) {
	if Static.String() != "static" || Heap.String() != "heap" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Error("unknown kind formatting wrong")
	}
}

// TestPropertyUnlockAllLeavesNothingHeld: after acquiring an arbitrary
// subset of an arbitrary lock population, running both recovery unlock
// mechanisms leaves no lock held.
func TestPropertyUnlockAllLeavesNothingHeld(t *testing.T) {
	f := func(staticN, heapN uint8, mask uint32) bool {
		r := NewRegistry()
		var all []*Lock
		for i := 0; i < int(staticN%16); i++ {
			all = append(all, r.NewStatic("s"))
		}
		for i := 0; i < int(heapN%16); i++ {
			all = append(all, r.NewHeap("h"))
		}
		for i, l := range all {
			if mask&(1<<uint(i)) != 0 {
				l.TryAcquire(i % 8)
			}
		}
		r.UnlockStaticSegment()
		r.UnlockHeapLocks()
		return len(r.HeldLocks()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAcquireReleaseRoundTrip: any sequence of valid
// acquire/release pairs leaves the lock free with matching acquisition
// count.
func TestPropertyAcquireReleaseRoundTrip(t *testing.T) {
	f := func(cpus []uint8) bool {
		r := NewRegistry()
		l := r.NewHeap("rt")
		for _, c := range cpus {
			cpu := int(c % 8)
			if !l.TryAcquire(cpu) {
				return false
			}
			l.Release(cpu)
		}
		return !l.Held() && l.Acquisitions == uint64(len(cpus))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
