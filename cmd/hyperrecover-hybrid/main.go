// Command hyperrecover-hybrid runs the escalating-recovery experiment:
// NiLiHype (microreset only), ReHype (microreboot only) and the Hybrid
// ladder (microreset, escalate to microreboot on re-detection within the
// grace window) face the same mixed-fault seed set, and the tool reports
// each configuration's recovery rate, mean successful-recovery latency and
// success-by-attempt histogram.
//
// The headline: the hybrid matches ReHype's recovery rate while keeping
// mean latency near NiLiHype's, because most recoveries still succeed on
// the first microreset attempt — escalation pays the reboot latency only
// for the rare corruptions (static scratch, heap free list, domain list)
// that an in-place microreset cannot survive.
//
// Examples:
//
//	hyperrecover-hybrid                         # 300 runs per mechanism
//	hyperrecover-hybrid -runs-per-fault 200     # 600 runs per mechanism
//	hyperrecover-hybrid -grace 250ms -format markdown
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"nilihype/internal/campaign"
	"nilihype/internal/core"
	"nilihype/internal/inject"
	"nilihype/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hyperrecover-hybrid:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runsPerFault = flag.Int("runs-per-fault", 100, "injection runs per fault type (3 fault types per mechanism)")
		duration     = flag.Duration("duration", 3*time.Second, "benchmark duration (virtual time)")
		memoryMB     = flag.Int("memory", 8192, "machine memory in MB (the paper's latency testbed is 8192)")
		grace        = flag.Duration("grace", core.DefaultGraceWindow, "hybrid post-recovery grace window for re-detection")
		parallel     = flag.Int("parallel", 0, "concurrent runs (0 = GOMAXPROCS)")
		seedBase     = flag.Uint64("seed-base", 0, "seed-space offset (same base => same fault scenarios)")
		formatStr    = flag.String("format", "text", "output format: text | markdown | csv")
	)
	flag.Parse()

	format, err := report.ParseFormat(*formatStr)
	if err != nil {
		return err
	}

	hybrid := core.HybridConfig()
	hybrid.Escalation.GraceWindow = *grace
	configs := []struct {
		name string
		rec  core.Config
	}{
		{"NiLiHype", core.DefaultConfig()},
		{"ReHype", core.Config{Mechanism: core.Microreboot, Enhancements: core.AllEnhancements}},
		{"Hybrid", hybrid},
	}
	faults := []inject.FaultType{inject.Failstop, inject.Register, inject.Code}

	table := report.NewTable(
		fmt.Sprintf("Escalating recovery: mixed faults (%d runs each: Failstop/Register/Code), 3AppVM, %d MB",
			3**runsPerFault, *memoryMB),
		"Config", "Detected", "Successful recovery", "Mean latency", "Escalated", "Success by attempt")

	summaries := make([]campaign.Summary, len(configs))
	for i, cfg := range configs {
		base := campaign.RunConfig{
			Setup:         campaign.ThreeAppVM,
			Recovery:      cfg.rec,
			BenchDuration: *duration,
			MemoryMB:      *memoryMB,
		}
		s := campaign.MixedFaultCampaign(base, faults, *runsPerFault, *parallel)
		// MixedFaultCampaign shards by fault type internally; apply the
		// seed-space offset by re-running shards when requested.
		if *seedBase != 0 {
			s = mixedWithSeedBase(base, faults, *runsPerFault, *parallel, *seedBase)
		}
		summaries[i] = s
		rate, ci := s.SuccessRate()
		table.AddRow(cfg.name,
			fmt.Sprintf("%d", s.DetectedCount),
			report.PctCI(rate, ci),
			report.Dur(s.MeanSuccessLatency()),
			fmt.Sprintf("%d", s.EscalatedRuns),
			histogram(s.SuccessByAttempt))
	}
	fmt.Print(table.Render(format))

	nili, rehype, hyb := summaries[0], summaries[1], summaries[2]
	hr, hci := hyb.SuccessRate()
	nr, _ := nili.SuccessRate()
	rr, _ := rehype.SuccessRate()
	fmt.Printf("\nHybrid recovery rate %s vs NiLiHype %s and ReHype %s",
		report.Pct(hr), report.Pct(nr), report.Pct(rr))
	if hr+hci >= nr && hr+hci >= rr {
		fmt.Printf(" — matches the best single mechanism (within the 95%% CI).\n")
	} else {
		fmt.Printf(" — BELOW a single mechanism beyond the 95%% CI.\n")
	}
	fmt.Printf("Hybrid mean successful-recovery latency %s vs NiLiHype %s (%.1fx) and ReHype %s (%.2fx)\n",
		report.Dur(hyb.MeanSuccessLatency()), report.Dur(nili.MeanSuccessLatency()),
		ratio(hyb.MeanSuccessLatency(), nili.MeanSuccessLatency()),
		report.Dur(rehype.MeanSuccessLatency()),
		ratio(hyb.MeanSuccessLatency(), rehype.MeanSuccessLatency()))
	return nil
}

// mixedWithSeedBase is MixedFaultCampaign with a seed-space offset.
func mixedWithSeedBase(base campaign.RunConfig, faults []inject.FaultType, runsPerFault, parallelism int, seedBase uint64) campaign.Summary {
	total := campaign.Summary{Config: base}
	first := true
	for _, f := range faults {
		rc := base
		rc.Fault = f
		c := campaign.Campaign{Base: rc, Runs: runsPerFault, Parallelism: parallelism, SeedBase: seedBase}
		s := c.Execute()
		if first {
			total = s
			first = false
			continue
		}
		total.Merge(s)
	}
	total.Config = base
	return total
}

// histogram renders a SuccessByAttempt map as "1:131 2:1".
func histogram(m map[int]int) string {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%d:%d", k, m[k]))
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

func ratio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
