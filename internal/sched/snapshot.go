package sched

import "nilihype/internal/hw"

// vcpuState is one vCPU's captured fields (Domain/ID are immutable).
type vcpuState struct {
	vcpu         *VCPU
	state        State
	processor    int
	runningOn    int
	context      [hw.NumRegs]uint64
	contextValid bool
	credit       int
	queued       bool
}

// percpuState captures one per-CPU structure (the schedule lock pointer is
// boot-time wiring and restored by the lock registry's own snapshot).
type percpuState struct {
	curr *VCPU
	runq []*VCPU
}

// Snapshot captures the scheduler: the registered vCPU set in registration
// order, every vCPU's redundant metadata copies, and the per-CPU current
// pointers and runqueues.
type Snapshot struct {
	vcpus []vcpuState
	cpus  []percpuState
}

// Snapshot captures the scheduler state.
func (s *Scheduler) Snapshot() *Snapshot {
	snap := &Snapshot{
		vcpus: make([]vcpuState, len(s.vcpus)),
		cpus:  make([]percpuState, len(s.cpus)),
	}
	for i, v := range s.vcpus {
		snap.vcpus[i] = vcpuState{
			vcpu:         v,
			state:        v.State,
			processor:    v.Processor,
			runningOn:    v.RunningOn,
			context:      v.Context,
			contextValid: v.ContextValid,
			credit:       v.Credit,
			queued:       v.queued,
		}
	}
	for c := range s.cpus {
		snap.cpus[c] = percpuState{
			curr: s.cpus[c].curr,
			runq: append([]*VCPU(nil), s.cpus[c].runq...),
		}
	}
	return snap
}

// Restore rewinds the scheduler: the vCPU registration order, every
// vCPU's fields, and every per-CPU curr/runqueue regain their saved
// values. vCPUs registered after the snapshot drop out.
func (s *Scheduler) Restore(snap *Snapshot) {
	s.vcpus = s.vcpus[:0]
	for i := range snap.vcpus {
		st := &snap.vcpus[i]
		v := st.vcpu
		v.State = st.state
		v.Processor = st.processor
		v.RunningOn = st.runningOn
		v.Context = st.context
		v.ContextValid = st.contextValid
		v.Credit = st.credit
		v.queued = st.queued
		s.vcpus = append(s.vcpus, v)
	}
	for c := range s.cpus {
		s.cpus[c].curr = snap.cpus[c].curr
		s.cpus[c].runq = append(s.cpus[c].runq[:0], snap.cpus[c].runq...)
	}
}
