package hv

import (
	"errors"
	"fmt"

	"nilihype/internal/dom"
	"nilihype/internal/hypercall"
	"nilihype/internal/locking"
	"nilihype/internal/telemetry"
)

// InjectionPoint describes where in hypervisor execution a fault landed.
// It is handed to the armed InjectFunc, which decides the fault's effect.
type InjectionPoint struct {
	CPU       int
	Activity  string // "hypercall:mmu_update", "irq:timer", ...
	Call      *hypercall.Call
	StepName  string
	StepIndex int
	InIRQ     bool
	// Unmitigated marks a §IV residual window at the injection point.
	Unmitigated bool
	HeldLocks   []*locking.Lock
}

// InjectAction is the immediate architectural effect of an injected fault.
type InjectAction int

// Injection actions.
const (
	// ActionContinue resumes execution: the fault was masked or only
	// corrupted state silently (the injector mutates state itself).
	ActionContinue InjectAction = iota + 1
	// ActionPanic raises an immediate fatal exception at the injection
	// point (detection fires now; the in-flight program is abandoned).
	ActionPanic
	// ActionWedge leaves the CPU executing garbage: no progress, IRQs
	// effectively off, until the watchdog detects the hang.
	ActionWedge
)

// InjectFunc decides a fault's effect at an injection point.
type InjectFunc func(pt InjectionPoint) (InjectAction, string)

// ArmInjection arms the instruction-count trigger: after budget further
// hypervisor instructions (across all CPUs — the injector targets the
// hypervisor, not a CPU), fn is invoked at the step where the budget ran
// out. This is Gigan's second-level trigger (§VI-C).
func (h *Hypervisor) ArmInjection(budget int64, fn InjectFunc) {
	h.injectArmed = true
	h.injectBudget = budget
	h.injectFn = fn
}

// DisarmInjection cancels a pending trigger.
func (h *Hypervisor) DisarmInjection() { h.injectArmed = false }

// InjectionArmed reports whether the trigger is still pending.
func (h *Hypervisor) InjectionArmed() bool { return h.injectArmed }

// RetrySetupCycles is the per-hypercall bookkeeping cost of the retry
// machinery (recording the request so it can be retried after recovery).
const RetrySetupCycles = 12

// Dispatch runs a hypercall (or forwarded syscall) on cpu. Execution is
// synchronous within the current clock event unless a fault injection, a
// panic, or a spin interrupts it. While the hypervisor is paused for
// recovery, dispatches are deferred to resume.
func (h *Hypervisor) Dispatch(cpu int, call *hypercall.Call) {
	if h.failed {
		return
	}
	if h.paused {
		h.afterResume = append(h.afterResume, func() { h.Dispatch(cpu, call) })
		return
	}
	pc := h.percpu[cpu]
	if pc.Stuck() {
		return // the CPU is gone; the guest makes no progress
	}
	if pc.Busy() {
		// Cannot happen in the event-atomic model; guard for misuse.
		h.Panic(cpu, fmt.Sprintf("re-entrant dispatch of %v", call))
		return
	}
	call.Seq = h.callSeq
	call.Done = false
	h.callSeq++
	h.Stats.Hypercalls++
	h.Tel.Counters[telemetry.CtrDispatches]++
	h.Tel.Counters[telemetry.CtrOp(int(call.Op))]++
	h.Tel.Record(cpu, telemetry.EvDispatch, uint64(call.Op))

	pc.Env.Call = call
	pc.Env.ResetProgramState()
	prog, err := hypercall.Build(pc.Env, call)
	if err != nil {
		h.Panic(cpu, err.Error())
		return
	}
	h.Tel.Hists[telemetry.HistProgramSteps].Observe(uint64(len(prog)))
	if pc.Env.RecoveryPrep {
		h.Machine.CPU(cpu).ChargeHypervisor(RetrySetupCycles, RetrySetupCycles)
	}
	pc.Current = call
	pc.CurrentProg = prog
	pc.CurrentStep = 0
	pc.abandonedUnmitigated = false
	h.traceCall(cpu, TraceDispatch, call)
	h.runProgram(cpu)
}

// runProgram executes the in-flight program on cpu from its current step.
func (h *Hypervisor) runProgram(cpu int) {
	pc := h.percpu[cpu]
	for pc.CurrentStep < len(pc.CurrentProg) {
		step := &pc.CurrentProg[pc.CurrentStep]

		if pc.PendingPanic != "" {
			reason := pc.PendingPanic
			pc.PendingPanic = ""
			h.abandonAt(pc, step.Unmitigated)
			h.Panic(cpu, reason)
			return
		}

		if h.injectArmed {
			if h.injectBudget < int64(step.Instrs) {
				h.injectArmed = false
				h.Stats.InjectionFired = true
				action, reason := h.injectFn(h.injectionPoint(pc, step))
				h.Tel.Counters[telemetry.CtrInjections]++
				h.Tel.Record(cpu, telemetry.EvInject, h.Tel.Intern(reason))
				switch action {
				case ActionPanic:
					h.abandonAt(pc, step.Unmitigated)
					h.Panic(cpu, reason)
					return
				case ActionWedge:
					h.abandonAt(pc, step.Unmitigated)
					h.wedge(cpu)
					return
				}
				// ActionContinue: fall through and execute the step.
			} else {
				h.injectBudget -= int64(step.Instrs)
			}
		}

		h.Machine.CPU(cpu).ChargeHypervisor(step.Instrs, step.Instrs)
		err := step.Do(pc.Env, step)
		if extra := pc.Env.ExtraCycles; extra > 0 {
			h.Machine.CPU(cpu).ChargeHypervisor(extra, 0)
			pc.Env.ExtraCycles = 0
		}
		if err != nil {
			var spin *hypercall.SpinError
			if errors.As(err, &spin) {
				h.spin(cpu, spin.Lock)
				return
			}
			h.abandonAt(pc, step.Unmitigated)
			h.Panic(cpu, err.Error())
			return
		}
		pc.CurrentStep++
	}
	if pc.InIRQProgram {
		h.completeIRQ(cpu)
		return
	}
	h.completeCall(cpu)
}

// completeIRQ finishes an interrupt handler program cleanly.
func (h *Hypervisor) completeIRQ(cpu int) {
	pc := h.percpu[cpu]
	pc.Env.ResetProgramState()
	pc.InIRQProgram = false
	pc.IRQActivity = ""
	pc.CurrentProg = nil
	pc.CurrentStep = 0
	h.drainCPU(cpu)
}

// drainCPU re-delivers interrupts that arrived while the CPU was inside a
// handler (the hardware holds them until iret).
func (h *Hypervisor) drainCPU(cpu int) {
	if h.failed || h.paused {
		return
	}
	c := h.Machine.CPU(cpu)
	if c.IntrDisabled || h.percpu[cpu].Stuck() {
		return
	}
	c.DrainPending()
}

// injectionPoint snapshots the current execution context for the injector.
func (h *Hypervisor) injectionPoint(pc *PerCPU, step *hypercall.Step) InjectionPoint {
	activity := "irq"
	if pc.Current != nil {
		activity = "hypercall:" + pc.Current.Op.String()
	} else if pc.IRQActivity != "" {
		activity = "irq:" + pc.IRQActivity
	}
	return InjectionPoint{
		CPU:         pc.ID,
		Activity:    activity,
		Call:        pc.Current,
		StepName:    step.Name,
		StepIndex:   pc.CurrentStep,
		InIRQ:       pc.LocalIRQCount > 0 || pc.InIRQProgram,
		Unmitigated: step.Unmitigated,
		HeldLocks:   pc.Env.HeldLocks(),
	}
}

// abandonAt records that the in-flight program stops at the current step.
func (h *Hypervisor) abandonAt(pc *PerCPU, unmitigated bool) {
	if pc.Current != nil && unmitigated {
		pc.abandonedUnmitigated = true
	}
}

// completeCall finishes the in-flight hypercall cleanly.
func (h *Hypervisor) completeCall(cpu int) {
	pc := h.percpu[cpu]
	call := pc.Current
	pc.Env.Undo.Clear()
	pc.Env.ResetProgramState()
	pc.Current = nil
	pc.CurrentProg = nil
	pc.CurrentStep = 0
	h.clearCrossWaitsRequestedBy(cpu)
	if call != nil {
		call.Done = true
		h.Tel.Counters[telemetry.CtrCompletions]++
		if call.Dom == dom.PrivVMID {
			// Management-call liveness signal: the detect package's
			// management-call watchdog reads this counter from the NMI path.
			h.Tel.Counters[telemetry.CtrMgmtCompletions]++
		}
		h.Tel.Record(cpu, telemetry.EvComplete, uint64(call.Op))
		h.traceCall(cpu, TraceComplete, call)
		if h.callDoneHook != nil {
			h.callDoneHook(call, nil)
		}
	}
	h.drainCPU(cpu)
}

// spin wedges cpu spinning on a held lock. Spinlocks are taken with
// interrupts disabled (spin_lock_irqsave), so the CPU's software timers
// stall; only the perf-counter NMI still fires, which is how the watchdog
// detects the hang.
func (h *Hypervisor) spin(cpu int, l *locking.Lock) {
	pc := h.percpu[cpu]
	pc.Spinning = l
	h.Machine.CPU(cpu).IntrDisabled = true
	h.Stats.Spins++
	h.Tel.Counters[telemetry.CtrSpins]++
	h.Tel.Record(cpu, telemetry.EvSpin, h.Tel.Intern(l.Name()))
	h.trace(cpu, TraceSpin, l.Name())
}

// wedge marks cpu as executing garbage (wild jump): no progress, no
// interrupt handling, until the watchdog notices.
func (h *Hypervisor) wedge(cpu int) {
	pc := h.percpu[cpu]
	pc.Wedged = true
	h.Machine.CPU(cpu).IntrDisabled = true
	h.Tel.Counters[telemetry.CtrWedges]++
	h.Tel.Record(cpu, telemetry.EvWedge, 0)
	h.trace(cpu, TraceWedge, "no further progress")
}

// Panic models a hypervisor panic: a fatal exception or failed assertion.
// Exception entry raises the interrupt nesting level — which is why the
// detecting CPU always has a nonzero local_irq_count at recovery time
// (the mechanistic root of the "Clear IRQ count" enhancement, §V-A).
func (h *Hypervisor) Panic(cpu int, reason string) {
	if h.failed {
		return
	}
	h.Stats.Panics++
	h.percpu[cpu].LocalIRQCount++
	h.Tel.Counters[telemetry.CtrPanics]++
	h.Tel.Record(cpu, telemetry.EvPanic, h.Tel.Intern(reason))
	h.Cons.Write(fmt.Sprintf("(XEN) cpu%d panic: %s", cpu, reason))
	h.trace(cpu, TracePanic, reason)
	if h.panicHook != nil {
		h.panicHook(cpu, reason)
		return
	}
	h.MarkFailed("panic: " + reason)
}

// PanicAtNextStep arranges for a panic to fire when cpu next executes a
// program step — used by the injector to model detections that land inside
// subsequent hypervisor activity (error propagation with latency).
func (h *Hypervisor) PanicAtNextStep(cpu int, reason string) {
	h.percpu[cpu].PendingPanic = reason
}

// --- cross-CPU synchronous operations --------------------------------------

// AddCrossCPUWait records an in-flight synchronous cross-CPU operation
// (e.g. a remote TLB-flush IPI the requester is spinning on).
func (h *Hypervisor) AddCrossCPUWait(w CrossCPUWait) {
	h.crossCPUWaits = append(h.crossCPUWaits, w)
}

// CrossCPUWaits returns the in-flight waits.
func (h *Hypervisor) CrossCPUWaits() []CrossCPUWait {
	out := make([]CrossCPUWait, len(h.crossCPUWaits))
	copy(out, h.crossCPUWaits)
	return out
}

// ClearCrossCPUWaits drops all waits (all requester threads discarded).
func (h *Hypervisor) ClearCrossCPUWaits() { h.crossCPUWaits = nil }

// clearCrossWaitsRequestedBy drops waits whose requester completed.
func (h *Hypervisor) clearCrossWaitsRequestedBy(cpu int) {
	var keep []CrossCPUWait
	for _, w := range h.crossCPUWaits {
		if w.Requester != cpu {
			keep = append(keep, w)
		}
	}
	h.crossCPUWaits = keep
}
