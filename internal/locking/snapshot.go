package locking

// lockState is one lock's captured word. The *Lock pointer is part of the
// snapshot: locks are referenced from heap objects, domains, the scheduler
// and the static segment, so restore revives the same objects in place.
type lockState struct {
	lock         *Lock
	held         bool
	owner        int
	acquisitions uint64
}

// Snapshot captures both lock populations: the static segment (fixed
// membership, mutable words) and the heap population (mutable membership —
// locks are added and dropped with their containing objects — in
// declaration order, which CorruptRandomHold's victim selection depends
// on).
type Snapshot struct {
	static []lockState
	heap   []lockState
}

// Snapshot captures the registry.
func (r *Registry) Snapshot() *Snapshot {
	capture := func(locks []*Lock) []lockState {
		out := make([]lockState, len(locks))
		for i, l := range locks {
			out[i] = lockState{lock: l, held: l.held, owner: l.owner, acquisitions: l.Acquisitions}
		}
		return out
	}
	return &Snapshot{static: capture(r.static), heap: capture(r.heap)}
}

// Restore rewinds the registry: every snapshot lock regains its saved
// word, and the heap population regains its exact saved order (locks
// registered since the snapshot drop out).
func (r *Registry) Restore(s *Snapshot) {
	restore := func(dst []*Lock, saved []lockState) []*Lock {
		dst = dst[:0]
		for i := range saved {
			st := &saved[i]
			st.lock.held = st.held
			st.lock.owner = st.owner
			st.lock.Acquisitions = st.acquisitions
			dst = append(dst, st.lock)
		}
		return dst
	}
	r.static = restore(r.static, s.static)
	r.heap = restore(r.heap, s.heap)
}
