package detect

import (
	"strings"
	"testing"
	"time"

	"nilihype/internal/hv"
	"nilihype/internal/hw"
	"nilihype/internal/hypercall"
	"nilihype/internal/simclock"
)

func newDetected(t *testing.T) (*hv.Hypervisor, *simclock.Clock, *[]Event, *Detector) {
	t.Helper()
	clk := simclock.New()
	h, err := hv.New(clk, hv.Config{
		Machine:        hw.Config{CPUs: 4, MemoryMB: 512, BlockSvc: 100 * time.Microsecond, NICLat: 10 * time.Microsecond},
		HeapFrames:     4096,
		LoggingEnabled: true,
		RecoveryPrep:   true,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	events := &[]Event{}
	det := New(h, func(e Event) { *events = append(*events, e) })
	det.Start()
	return h, clk, events, det
}

func TestNoFalseDetectionsDuringNormalOperation(t *testing.T) {
	h, clk, events, _ := newDetected(t)
	if err := h.CreateDomain(1, "app", 2048, 1, false); err != nil {
		t.Fatal(err)
	}
	clk.RunUntil(2 * time.Second)
	if len(*events) != 0 {
		t.Fatalf("false detections: %v", *events)
	}
	if failed, reason := h.Failed(); failed {
		t.Fatalf("hypervisor failed: %s", reason)
	}
}

func TestPanicDetectedImmediately(t *testing.T) {
	h, clk, events, _ := newDetected(t)
	clk.RunUntil(50 * time.Millisecond)
	h.Panic(2, "test fatal exception")
	if len(*events) != 1 {
		t.Fatalf("events = %v", *events)
	}
	e := (*events)[0]
	if e.Kind != Panic || e.CPU != 2 || e.At != clk.Now() {
		t.Fatalf("event = %+v", e)
	}
	if !strings.Contains(e.String(), "panic on cpu2") {
		t.Fatalf("String() = %q", e.String())
	}
}

func TestHangDetectedWithinWatchdogWindow(t *testing.T) {
	h, clk, events, _ := newDetected(t)
	if err := h.CreateDomain(1, "app", 2048, 1, false); err != nil {
		t.Fatal(err)
	}
	clk.RunUntil(time.Second)
	// Wedge CPU 1: a held console lock spins the next console hypercall.
	h.Statics.Console.TryAcquire(3)
	h.Dispatch(1, &hypercall.Call{Op: hypercall.OpConsoleIO, Dom: 1})
	if !h.PerCPU(1).Stuck() {
		t.Fatal("CPU 1 not stuck")
	}
	start := clk.Now()
	clk.RunUntil(start + time.Second)
	if len(*events) == 0 {
		t.Fatal("hang not detected")
	}
	e := (*events)[0]
	if e.Kind != Hang || e.CPU != 1 {
		t.Fatalf("event = %+v", e)
	}
	if !strings.Contains(e.Reason, "console_lock") {
		t.Fatalf("reason = %q", e.Reason)
	}
	// Detection latency: between 3 and ~5 watchdog periods.
	lat := e.At - start
	if lat < 2*Period || lat > 6*Period {
		t.Fatalf("detection latency = %v, want a few watchdog periods", lat)
	}
}

func TestWedgedCPUDetected(t *testing.T) {
	h, clk, events, _ := newDetected(t)
	if err := h.CreateDomain(1, "app", 2048, 1, false); err != nil {
		t.Fatal(err)
	}
	h.ArmInjection(100, func(hv.InjectionPoint) (hv.InjectAction, string) {
		return hv.ActionWedge, "wild jump"
	})
	h.Dispatch(1, &hypercall.Call{Op: hypercall.OpVCPUOp, Dom: 1})
	clk.RunUntil(time.Second)
	if len(*events) == 0 {
		t.Fatal("wedge not detected")
	}
	if (*events)[0].Kind != Hang || !strings.Contains((*events)[0].Reason, "wedged") {
		t.Fatalf("event = %+v", (*events)[0])
	}
}

func TestDeadAPICTimerDetectedAsHang(t *testing.T) {
	// The §V-A "Reprogram hardware timer" hazard: a CPU whose APIC
	// one-shot is never re-armed stops running its soft tick; the
	// watchdog NMI still fires and detects the silence.
	h, clk, events, _ := newDetected(t)
	clk.RunUntil(time.Second)
	h.Machine.CPU(3).DisarmTimer()
	// Drain the timer heap so nothing re-arms it: simulate the handler
	// dying between APIC fire and reprogram by just never reprogramming.
	start := clk.Now()
	clk.RunUntil(start + 2*time.Second)
	found := false
	for _, e := range *events {
		if e.Kind == Hang && e.CPU == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("dead APIC not detected: %v", *events)
	}
}

func TestResetProgressClearsStaleness(t *testing.T) {
	h, clk, events, det := newDetected(t)
	clk.RunUntil(time.Second)
	h.Machine.CPU(3).DisarmTimer()
	clk.RunUntil(clk.Now() + 250*time.Millisecond) // two stale checks
	det.ResetProgress()
	h.ReprogramAllAPICs()
	clk.RunUntil(clk.Now() + 2*time.Second)
	if len(*events) != 0 {
		t.Fatalf("detections after reset+revive: %v", *events)
	}
}

func TestKindString(t *testing.T) {
	if Panic.String() != "panic" || Hang.String() != "hang" || Kind(9).String() != "kind(9)" {
		t.Fatal("kind names wrong")
	}
}

func TestDetectionsCounter(t *testing.T) {
	h, _, _, det := newDetected(t)
	h.Panic(0, "a")
	if det.Detections != 1 {
		t.Fatalf("Detections = %d", det.Detections)
	}
}

func TestRearmRevivesWatchdogSources(t *testing.T) {
	h, clk, events, det := newDetected(t)
	clk.RunUntil(time.Second)
	// Strand CPU 3's timers in the popped-not-rearmed hazard state and
	// cancel its watchdog NMI — the shape a failed recovery attempt
	// leaves the detector's inputs in when its execution threads are
	// discarded mid-handler.
	h.Machine.CPU(3).DisarmTimer()
	h.Machine.CPU(3).StopPerfNMI()
	clk.RunUntil(clk.Now() + 250*time.Millisecond)
	h.Timers.PopDue(3, clk.Now())
	if det.ticks[3].Active() {
		t.Fatal("setup: watchdog tick still active after PopDue")
	}
	det.Rearm()
	if !det.ticks[3].Active() {
		t.Fatal("Rearm did not reactivate the watchdog tick")
	}
	if !h.Machine.CPU(3).PerfNMIRunning() {
		t.Fatal("Rearm did not restart the perf NMI")
	}
	// Progress cleared and sources revived: no detections afterwards.
	h.Timers.ReactivateRecurring(clk.Now())
	h.ReprogramAllAPICs()
	clk.RunUntil(clk.Now() + 2*time.Second)
	if len(*events) != 0 {
		t.Fatalf("detections after Rearm: %v", *events)
	}
}

func TestRearmIsIdempotentOnHealthySystem(t *testing.T) {
	h, clk, events, det := newDetected(t)
	clk.RunUntil(time.Second)
	det.Rearm()
	for cpu := 0; cpu < h.NumCPUs(); cpu++ {
		if !det.ticks[cpu].Active() {
			t.Fatalf("cpu %d tick deactivated by Rearm", cpu)
		}
		if !h.Machine.CPU(cpu).PerfNMIRunning() {
			t.Fatalf("cpu %d perf NMI stopped by Rearm", cpu)
		}
	}
	clk.RunUntil(clk.Now() + 2*time.Second)
	if len(*events) != 0 {
		t.Fatalf("false detections after no-op Rearm: %v", *events)
	}
}
