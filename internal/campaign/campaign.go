package campaign

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Campaign is a batch of identical runs differing only in seed.
type Campaign struct {
	Base RunConfig
	Runs int
	// Parallelism bounds concurrent runs (0 = GOMAXPROCS).
	Parallelism int
}

// Summary aggregates a campaign.
type Summary struct {
	Config RunConfig
	Runs   int

	// Outcome breakdown (§VII-A).
	NonManifested int
	SDCCount      int
	DetectedCount int

	// Recovery statistics over detected runs.
	RecoverySuccess int
	NoVMFCount      int

	// FailReasons histograms recovery-failure causes.
	FailReasons map[string]int
}

// Execute runs the campaign with seeds 1..Runs.
func (c *Campaign) Execute() Summary {
	s := Summary{Config: c.Base, Runs: c.Runs, FailReasons: make(map[string]int)}
	par := c.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	results := make([]Result, c.Runs)
	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	for i := 0; i < c.Runs; i++ {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			rc := c.Base
			rc.Seed = uint64(i + 1)
			results[i] = Run(rc)
		}()
	}
	wg.Wait()
	for i := range results {
		s.add(results[i])
	}
	return s
}

func (s *Summary) add(r Result) {
	switch r.Outcome {
	case NonManifested:
		s.NonManifested++
	case SDC:
		s.SDCCount++
	case Detected:
		s.DetectedCount++
		if r.Success {
			s.RecoverySuccess++
		} else {
			s.FailReasons[classifyFailure(r)]++
		}
		if r.NoVMF {
			s.NoVMFCount++
		}
	}
}

// classifyFailure buckets a failed run into the paper's failure-cause
// categories (§VII-A).
func classifyFailure(r Result) string {
	switch {
	case strings.Contains(r.FailReason, "failed to be invoked"):
		return "recovery routine not invoked"
	case r.PrivVMFailed:
		return "PrivVM failed"
	case strings.Contains(r.FailReason, "corrupted"):
		return "corrupted data structure"
	case strings.Contains(r.FailReason, "ASSERT"):
		return "post-recovery assertion"
	case strings.Contains(r.FailReason, "hang") || strings.Contains(r.FailReason, "spinning") ||
		strings.Contains(r.FailReason, "watchdog") || strings.Contains(r.FailReason, "waiting forever"):
		return "post-recovery hang"
	case r.FailReason != "":
		return "other hypervisor failure"
	case !r.NewVMOK:
		return "new VM creation failed"
	case r.AppVMsFailed > 1:
		return "multiple AppVMs lost"
	default:
		return "AppVM lost (1AppVM criterion)"
	}
}

// SuccessRate returns the successful recovery rate over detected runs,
// with its 95% confidence half-width.
func (s Summary) SuccessRate() (rate, ci float64) {
	return proportion(s.RecoverySuccess, s.DetectedCount)
}

// NoVMFRate returns the no-VM-failures rate over detected runs.
func (s Summary) NoVMFRate() (rate, ci float64) {
	return proportion(s.NoVMFCount, s.DetectedCount)
}

// OutcomeRates returns the non-manifested/SDC/detected fractions.
func (s Summary) OutcomeRates() (nonManifested, sdc, detected float64) {
	if s.Runs == 0 {
		return 0, 0, 0
	}
	n := float64(s.Runs)
	return float64(s.NonManifested) / n, float64(s.SDCCount) / n, float64(s.DetectedCount) / n
}

// proportion computes k/n and the normal-approximation 95% CI half-width
// (the paper sizes campaigns so this is within ±2%).
func proportion(k, n int) (rate, ci float64) {
	if n == 0 {
		return 0, 0
	}
	p := float64(k) / float64(n)
	return p, 1.96 * math.Sqrt(p*(1-p)/float64(n))
}

// Format renders the summary as a report block.
func (s Summary) Format() string {
	var b strings.Builder
	rate, ci := s.SuccessRate()
	nrate, nci := s.NoVMFRate()
	fmt.Fprintf(&b, "%s %s %v, %d runs\n", s.Config.Recovery.Mechanism, s.Config.Setup, s.Config.Fault, s.Runs)
	nm, sdc, det := s.OutcomeRates()
	fmt.Fprintf(&b, "  outcomes: %.1f%% non-manifested, %.1f%% SDC, %.1f%% detected\n",
		100*nm, 100*sdc, 100*det)
	fmt.Fprintf(&b, "  successful recovery: %.1f%% ± %.1f%%  (noVMF %.1f%% ± %.1f%%)\n",
		100*rate, 100*ci, 100*nrate, 100*nci)
	if len(s.FailReasons) > 0 {
		fmt.Fprintf(&b, "  failure causes:\n")
		type kv struct {
			k string
			v int
		}
		var sorted []kv
		for k, v := range s.FailReasons {
			sorted = append(sorted, kv{k, v})
		}
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].v != sorted[j].v {
				return sorted[i].v > sorted[j].v
			}
			return sorted[i].k < sorted[j].k
		})
		for _, e := range sorted {
			fmt.Fprintf(&b, "    %-40s %d\n", e.k, e.v)
		}
	}
	return b.String()
}
