// Package locking models the hypervisor's spinlocks.
//
// Xen has two populations of spinlocks: locks embedded in heap-allocated
// objects ("heap locks") and locks in the static data segment ("static
// locks"). Recovery must release both populations, because every thread of
// execution that might have held them is discarded (§V-A "Unlock static
// locks"):
//
//   - Heap locks: ReHype already includes a mechanism that walks the
//     preserved heap and releases them; NiLiHype reuses it.
//   - Static locks: ReHype gets these for free (boot re-initializes the
//     static data segment); NiLiHype instead relies on the linker-script
//     trick — all static locks are declared through one macro and placed in
//     a dedicated segment, effectively one array the recovery CPU can
//     iterate.
//
// The Registry reifies both populations so both recovery mechanisms can be
// implemented faithfully.
package locking

import (
	"fmt"
	"math/rand/v2"
)

// Kind distinguishes the two spinlock populations.
type Kind int

// Lock kinds.
const (
	Static Kind = iota + 1 // resides in the static data segment
	Heap                   // embedded in a heap-allocated object
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Static:
		return "static"
	case Heap:
		return "heap"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// NoOwner is the owner value of a released lock.
const NoOwner = -1

// Lock is one spinlock with owner tracking. It is not a synchronization
// primitive — the simulation is single-threaded — it is a model of the
// lock's state machine, including the failure mode where the owner thread
// is discarded while holding it.
type Lock struct {
	name  string
	kind  Kind
	held  bool
	owner int // CPU that holds it, NoOwner when free

	// Acquisitions counts successful acquisitions (for tests and
	// instruction-weight calibration).
	Acquisitions uint64
}

// Name returns the lock's diagnostic name.
func (l *Lock) Name() string { return l.name }

// Kind returns whether the lock is static or heap-allocated.
func (l *Lock) Kind() Kind { return l.kind }

// Held reports whether the lock is currently held.
func (l *Lock) Held() bool { return l.held }

// Owner returns the CPU holding the lock, or NoOwner.
func (l *Lock) Owner() int {
	if !l.held {
		return NoOwner
	}
	return l.owner
}

// TryAcquire attempts to take the lock for cpu. It returns false if the
// lock is already held — the caller then models a spin (which, if the owner
// is gone, ends in a watchdog-detected hang).
func (l *Lock) TryAcquire(cpu int) bool {
	if l.held {
		return false
	}
	l.held = true
	l.owner = cpu
	l.Acquisitions++
	return true
}

// Release frees the lock. Releasing a free lock is a programming error in
// the hypervisor model and panics so tests catch it immediately.
func (l *Lock) Release(cpu int) {
	if !l.held {
		panic(fmt.Sprintf("locking: release of free lock %q by cpu%d", l.name, cpu))
	}
	if l.owner != cpu {
		panic(fmt.Sprintf("locking: cpu%d releasing lock %q owned by cpu%d", cpu, l.name, l.owner))
	}
	l.held = false
	l.owner = NoOwner
}

// ForceRelease frees the lock regardless of owner. Recovery uses this: the
// owning execution thread has been discarded, so ownership checks no longer
// apply.
func (l *Lock) ForceRelease() {
	l.held = false
	l.owner = NoOwner
}

// Registry tracks every lock in the hypervisor image, separated by
// population.
type Registry struct {
	static []*Lock
	heap   []*Lock
}

// NewRegistry returns an empty lock registry.
func NewRegistry() *Registry {
	return &Registry{}
}

// NewStatic declares a static lock (the macro + linker-script path: the
// lock lands in the iterable static-lock segment).
func (r *Registry) NewStatic(name string) *Lock {
	l := &Lock{name: name, kind: Static, owner: NoOwner}
	r.static = append(r.static, l)
	return l
}

// NewHeap declares a lock embedded in a heap object.
func (r *Registry) NewHeap(name string) *Lock {
	l := &Lock{name: name, kind: Heap, owner: NoOwner}
	r.heap = append(r.heap, l)
	return l
}

// DropHeap removes a heap lock from the registry (its containing object was
// freed).
func (r *Registry) DropHeap(l *Lock) {
	for i, h := range r.heap {
		if h == l {
			r.heap = append(r.heap[:i], r.heap[i+1:]...)
			return
		}
	}
}

// StaticSegment returns the static-lock segment in declaration order —
// exactly what the NiLiHype recovery CPU iterates over.
func (r *Registry) StaticSegment() []*Lock {
	out := make([]*Lock, len(r.static))
	copy(out, r.static)
	return out
}

// HeapLocks returns the current heap-lock population.
func (r *Registry) HeapLocks() []*Lock {
	out := make([]*Lock, len(r.heap))
	copy(out, r.heap)
	return out
}

// HeldLocks returns every held lock of the given kinds.
func (r *Registry) HeldLocks(kinds ...Kind) []*Lock {
	var out []*Lock
	want := func(k Kind) bool {
		for _, kk := range kinds {
			if kk == k {
				return true
			}
		}
		return len(kinds) == 0
	}
	for _, l := range r.static {
		if l.held && want(Static) {
			out = append(out, l)
		}
	}
	for _, l := range r.heap {
		if l.held && want(Heap) {
			out = append(out, l)
		}
	}
	return out
}

// HeldCount returns how many registered locks are currently held. Unlike
// HeldLocks it allocates nothing — it exists for telemetry gauge sampling
// on the campaign's per-run path.
func (r *Registry) HeldCount() int {
	n := 0
	for _, l := range r.static {
		if l.held {
			n++
		}
	}
	for _, l := range r.heap {
		if l.held {
			n++
		}
	}
	return n
}

// UnlockStaticSegment force-releases every held static lock, returning the
// number released. This is the "Unlock static locks" enhancement (§V-A).
func (r *Registry) UnlockStaticSegment() int {
	n := 0
	for _, l := range r.static {
		if l.held {
			l.ForceRelease()
			n++
		}
	}
	return n
}

// UnlockHeapLocks force-releases every held heap lock, returning the number
// released. This is the heap-walking release mechanism ReHype introduced
// and NiLiHype reuses (§III-B, §V-A).
func (r *Registry) UnlockHeapLocks() int {
	n := 0
	for _, l := range r.heap {
		if l.held {
			l.ForceRelease()
			n++
		}
	}
	return n
}

// ReinitStatic restores every static lock to its boot-time (released)
// state. Microreboot gets this as a side effect of booting a fresh image.
func (r *Registry) ReinitStatic() {
	for _, l := range r.static {
		l.ForceRelease()
	}
}

// Counts returns the population sizes (static, heap).
func (r *Registry) Counts() (staticN, heapN int) {
	return len(r.static), len(r.heap)
}

// CorruptRandomHold marks a random free lock as held by a phantom CPU —
// error propagation into a lock word. No thread will ever release it, so
// the next acquirer spins until the watchdog declares a hang; recovery's
// unlock mechanisms (or the audit) force-release it. Returns the victim
// lock's name, or a note when every lock is already held.
func (r *Registry) CorruptRandomHold(rng *rand.Rand) string {
	var free []*Lock // static then heap, declaration order (deterministic)
	for _, l := range r.static {
		if !l.held {
			free = append(free, l)
		}
	}
	for _, l := range r.heap {
		if !l.held {
			free = append(free, l)
		}
	}
	if len(free) == 0 {
		return "no free locks"
	}
	l := free[rng.IntN(len(free))]
	l.held = true
	l.owner = 1000 + rng.IntN(1000) // phantom CPU
	return l.name
}
