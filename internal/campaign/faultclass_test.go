package campaign

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"nilihype/internal/core"
	"nilihype/internal/inject"
)

// ladderCfg builds a RunConfig for the new fault classes under the full
// escalation ladder (the configuration the fault-matrix experiment runs).
func ladderCfg(fault inject.FaultType) RunConfig {
	rc := fastCfg(fault, core.Microreset)
	rc.Recovery = core.FullLadderConfig()
	return rc
}

func TestFaultClassNames(t *testing.T) {
	for _, tt := range []struct {
		rc   RunConfig
		want string
	}{
		{RunConfig{Fault: inject.Failstop}, "failstop"},
		{RunConfig{Fault: inject.PrivVMCrash}, "privvm-crash"},
		{RunConfig{Fault: inject.PrivVMHang}, "privvm-hang"},
		{RunConfig{Fault: inject.DeviceIOAPIC}, "ioapic"},
		{RunConfig{NoInjection: true}, "none"},
		{RunConfig{Fault: inject.Failstop, FaultDuringRecovery: true, DuringFault: inject.PrivVMHang},
			"failstop+during-privvm-hang"},
		{RunConfig{Fault: inject.Code, CorrelatedReinjection: true}, "correlated-code"},
	} {
		if got := tt.rc.FaultClass(); got != tt.want {
			t.Errorf("FaultClass(%+v) = %q, want %q", tt.rc.Fault, got, tt.want)
		}
	}
}

// TestPrivVMFaultsRecoverOnlyWithRestartRung is the PR's acceptance
// demonstration in miniature: PrivVM crash and hang runs fail under the
// microreset→microreboot hybrid (neither rung restores management
// service), and recover under the full ladder's PrivVM-restart rung —
// strictly more recoveries from the extra rung.
func TestPrivVMFaultsRecoverOnlyWithRestartRung(t *testing.T) {
	for _, fault := range []inject.FaultType{inject.PrivVMCrash, inject.PrivVMHang} {
		hybridWins, fullWins := 0, 0
		for seed := uint64(1); seed <= 4; seed++ {
			rc := fastCfg(fault, core.Microreset)
			rc.Recovery = core.HybridConfig()
			rc.Seed = seed
			rh := Run(rc)
			if rh.Outcome != Detected {
				t.Fatalf("%v seed %d: hybrid run not detected (mgmt watchdog dead?): %+v", fault, seed, rh)
			}
			if rh.Success {
				hybridWins++
			}

			rcFull := ladderCfg(fault)
			rcFull.Seed = seed
			rf := Run(rcFull)
			if rf.Success {
				fullWins++
				if rf.Attempts != 3 {
					t.Fatalf("%v seed %d: recovered in %d attempts, want escalation to rung 3", fault, seed, rf.Attempts)
				}
				if rf.Latency < 1500*time.Millisecond {
					t.Fatalf("%v seed %d: latency %v below the PrivVM boot cost — restart not charged", fault, seed, rf.Latency)
				}
			}
		}
		if fullWins <= hybridWins {
			t.Fatalf("%v: full ladder recovered %d vs hybrid %d — the extra rung must win strictly more",
				fault, fullWins, hybridWins)
		}
	}
}

// TestIOAPICFaultDetectedAndRepaired: device corruption is caught by the
// IRQ-delivery criterion and repaired without ever reaching the
// PrivVM-restart rung.
func TestIOAPICFaultDetectedAndRepaired(t *testing.T) {
	recovered := 0
	for seed := uint64(1); seed <= 4; seed++ {
		rc := ladderCfg(inject.DeviceIOAPIC)
		rc.Seed = seed
		r := Run(rc)
		if r.Outcome != Detected {
			t.Fatalf("seed %d: IO-APIC damage not detected: %+v", seed, r)
		}
		if r.Success {
			recovered++
			if r.Latency >= 1500*time.Millisecond {
				t.Fatalf("seed %d: IO-APIC repair cost %v — escalated to PrivVM restart?", seed, r.Latency)
			}
		}
	}
	if recovered == 0 {
		t.Fatal("no IO-APIC run recovered")
	}
}

// TestPrivVMHangDuringRecoveryEscalates covers the fault-while-degraded
// surface: the primary fault starts a microreset, the PrivVM hangs while
// that recovery is in flight, and the re-armed management watchdog must
// still catch it and escalate the ladder to the restart rung. Run with
// -race this also exercises the detector re-arm path under the parallel
// executor.
func TestPrivVMHangDuringRecoveryEscalates(t *testing.T) {
	sawEscalatedSuccess := false
	for seed := uint64(1); seed <= 10 && !sawEscalatedSuccess; seed++ {
		rc := fastCfg(inject.Failstop, core.Microreset)
		rc.Recovery = core.FullLadderConfig()
		rc.FaultDuringRecovery = true
		rc.DuringFault = inject.PrivVMHang
		rc.Seed = seed
		r := Run(rc)
		if r.DuringRecoveryFired && r.Success && r.Attempts == 3 {
			sawEscalatedSuccess = true
		}
	}
	if !sawEscalatedSuccess {
		t.Fatal("no seed produced hang-during-recovery → escalation → restart → success")
	}
}

// TestCorrelatedReinjectionIsDeterministic: the fault-while-degraded
// re-injection (same structural cell, re-armed after a degraded audit
// verdict) fires on some seed, is reported on the Result, and replays
// bit-identically.
func TestCorrelatedReinjectionIsDeterministic(t *testing.T) {
	// Degraded verdicts need heap-object damage that lands in an AppVM's
	// struct domain — a few runs per thousand. The hunt starts at a seed
	// region known to contain one (595 at the time of writing) but scans
	// broadly enough to survive distribution drift.
	var fired *RunConfig
	for seed := uint64(560); seed <= 700 && fired == nil; seed++ {
		rc := adversarialCfg()
		rc.BurstWindow = 0
		rc.BurstFault = 0
		rc.FaultDuringRecovery = false
		rc.CorrelatedReinjection = true
		rc.Seed = seed
		if r := Run(rc); r.CorrelatedFired {
			if !strings.HasPrefix(r.FaultClass, "correlated-") {
				t.Fatalf("seed %d: fired but class %q", seed, r.FaultClass)
			}
			fired = &rc
		}
	}
	if fired == nil {
		t.Fatal("correlated re-injection never fired in 120 seeds")
	}
	a, b := Run(*fired), Run(*fired)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("correlated run is nondeterministic:\n a: %+v\n b: %+v", a, b)
	}
}

// TestFaultClassSummariesBitIdenticalAcrossExecution extends the
// execution-strategy equivalence bar to the per-fault-class matrix: for
// every new fault class, the Summary (FaultClasses map included) is
// bit-identical across parallelism 1 vs 4 and snapshot-fork vs cold boot.
func TestFaultClassSummariesBitIdenticalAcrossExecution(t *testing.T) {
	during := fastCfg(inject.Failstop, core.Microreset)
	during.Recovery = core.FullLadderConfig()
	during.FaultDuringRecovery = true
	during.DuringFault = inject.PrivVMHang

	correlated := adversarialCfg()
	correlated.CorrelatedReinjection = true

	bases := []RunConfig{
		ladderCfg(inject.PrivVMCrash),
		ladderCfg(inject.PrivVMHang),
		ladderCfg(inject.DeviceIOAPIC),
		during,
		correlated,
	}
	for _, base := range bases {
		var ref Summary
		first := true
		for _, par := range []int{1, 4} {
			for _, coldBoot := range []bool{false, true} {
				c := Campaign{Base: base, Runs: 6, Parallelism: par, ColdBoot: coldBoot}
				s := c.Execute()
				if first {
					if len(s.FaultClasses) == 0 {
						t.Fatalf("%s: summary has no fault-class stats", base.FaultClass())
					}
					ref, first = s, false
					continue
				}
				if !reflect.DeepEqual(ref, s) {
					t.Fatalf("%s: summary differs (par=%d coldBoot=%v):\n ref: %+v\n got: %+v",
						base.FaultClass(), par, coldBoot, ref, s)
				}
			}
		}
	}
}

// TestFaultClassShardedEquivalence: the per-class stats survive the shard
// wire protocol (JSON round-trip through the real worker body) and merge
// back bit-identical to the in-process run at any shard count.
func TestFaultClassShardedEquivalence(t *testing.T) {
	for _, base := range []RunConfig{
		ladderCfg(inject.PrivVMHang),
		ladderCfg(inject.DeviceIOAPIC),
	} {
		c := Campaign{Base: base, Runs: 8, Parallelism: 2, SeedBase: 3}
		inProc := c.Execute()
		if len(inProc.FaultClasses) == 0 {
			t.Fatalf("%s: no fault-class stats", base.FaultClass())
		}
		for _, n := range []int{1, 4} {
			sharded, _, err := ExecuteSharded(c, n, ShardOptions{Spawn: jsonSpawn})
			if err != nil {
				t.Fatalf("%s shards=%d: %v", base.FaultClass(), n, err)
			}
			if !reflect.DeepEqual(inProc, sharded) {
				t.Fatalf("%s shards=%d: summary differs:\n in-proc: %+v\n sharded: %+v",
					base.FaultClass(), n, inProc, sharded)
			}
		}
	}
}

// TestSnapshotForkMatchesColdBootNewFaultClasses extends the per-run
// fork-equivalence bar to every new fault class, including the
// fault-while-degraded shapes.
func TestSnapshotForkMatchesColdBootNewFaultClasses(t *testing.T) {
	during := fastCfg(inject.Failstop, core.Microreset)
	during.Recovery = core.FullLadderConfig()
	during.FaultDuringRecovery = true
	during.DuringFault = inject.PrivVMHang

	assertForkMatchesCold(t, ladderCfg(inject.PrivVMCrash), []uint64{1, 2})
	assertForkMatchesCold(t, ladderCfg(inject.PrivVMHang), []uint64{1, 2})
	assertForkMatchesCold(t, ladderCfg(inject.DeviceIOAPIC), []uint64{1, 2, 3})
	assertForkMatchesCold(t, during, []uint64{1, 2})
}

// TestSummaryFormatShowsFaultClasses: the matrix is part of the report.
func TestSummaryFormatShowsFaultClasses(t *testing.T) {
	c := Campaign{Base: ladderCfg(inject.PrivVMCrash), Runs: 3}
	out := c.Execute().Format()
	if !strings.Contains(out, "fault classes:") || !strings.Contains(out, "privvm-crash") {
		t.Fatalf("Format missing fault-class section:\n%s", out)
	}
}

// TestFaultClassCountersConsistent: per-class counters must tie out with
// the summary-level totals when a campaign runs a single class.
func TestFaultClassCountersConsistent(t *testing.T) {
	c := Campaign{Base: ladderCfg(inject.PrivVMHang), Runs: 6}
	s := c.Execute()
	fc := s.FaultClasses["privvm-hang"]
	if fc == nil {
		t.Fatalf("no privvm-hang stats: %+v", s.FaultClasses)
	}
	if fc.Runs != s.Runs || fc.Detected != s.DetectedCount || fc.Success != s.RecoverySuccess {
		t.Fatalf("class counters diverge from summary: class %+v vs summary runs=%d detected=%d success=%d",
			fc, s.Runs, s.DetectedCount, s.RecoverySuccess)
	}
	if fc.Success > 0 && fc.MeanSuccessLatency() <= 0 {
		t.Fatal("mean success latency not accumulated")
	}
}
