// Package prng provides seeded random streams for the simulation.
//
// math/rand/v2's PCG generator uses its two seed words as raw state, so
// streams created from sequential seeds (run 1, run 2, ...) produce
// correlated early outputs — enough to visibly bias campaign-level
// proportions. New scrambles the seed words through SplitMix64 before
// seeding, which decorrelates neighboring streams.
package prng

import "math/rand/v2"

// Scramble applies the SplitMix64 finalizer, a bijective avalanche mix.
func Scramble(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// New returns a PCG stream for (seed, stream), decorrelated across
// neighboring seeds and streams.
func New(seed, stream uint64) *rand.Rand {
	return rand.New(rand.NewPCG(Scramble(seed), Scramble(stream^seed<<1|1)))
}
