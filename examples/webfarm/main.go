// Webfarm: the paper's 3AppVM scenario end to end (§VI-A). A small host
// runs a UnixBench VM and a NetBench VM (its UDP sender on a separate
// physical host), the hypervisor takes a register fault mid-run, NiLiHype
// microresets it, and the PrivVM then proves the hypervisor still works by
// creating and running a third (BlkBench) VM.
//
// This is the deployment story from the introduction: without recovery, a
// single transient fault in the hypervisor takes down every VM on the
// host; with microreset, the outage is ~22 ms and at most one VM is lost.
package main

import (
	"fmt"
	"log"
	"time"

	"nilihype/internal/core"
	"nilihype/internal/detect"
	"nilihype/internal/guest"
	"nilihype/internal/hv"
	"nilihype/internal/hypercall"
	"nilihype/internal/inject"
	"nilihype/internal/prng"
	"nilihype/internal/simclock"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const benchDuration = 4 * time.Second
	clk := simclock.New()
	h, err := hv.New(clk, hv.DefaultConfig())
	if err != nil {
		return err
	}
	if err := h.Boot(); err != nil {
		return err
	}
	h.SetSchedFluxProb(hv.DefaultSchedFluxProb)

	world := guest.NewWorld(h, 7)
	world.StartPrivVM()
	unix, err := world.AddAppVM(guest.Config{Kind: guest.UnixBench, Dom: 1, CPU: 1, Duration: benchDuration})
	if err != nil {
		return err
	}
	net, err := world.AddAppVM(guest.Config{Kind: guest.NetBench, Dom: 2, CPU: 2, Duration: benchDuration})
	if err != nil {
		return err
	}

	engine := core.NewEngine(h, core.DefaultConfig())
	det := detect.New(h, engine.OnDetection)
	engine.Det = det
	det.Start()

	// Post-recovery functionality check: the PrivVM creates a BlkBench VM.
	var blk *guest.AppVM
	engine.OnRecovered = func() {
		fmt.Printf("[%8.1fms] recovery complete (latency %v); sender saw the gap\n",
			ms(clk.Now()), engine.Latency)
		world.Sender.ExcludeWindow(engine.FirstDetection.At, clk.Now())
		clk.After(150*time.Millisecond, "create-blk", func() {
			ok := world.PrivCreateDomain(hypercall.CreateSpec{
				ID: 3, Name: "BlkBench", MemPages: guest.DefaultMemPages, PinCPU: 3,
			})
			fmt.Printf("[%8.1fms] PrivVM created BlkBench VM: %v\n", ms(clk.Now()), ok)
			if ok {
				blk = world.AttachAppVM(guest.Config{Kind: guest.BlkBench, Dom: 3, CPU: 3, Duration: benchDuration / 3})
				blk.Start()
			}
		})
	}

	// A fail-stop fault lands mid-run (deterministically detected; try
	// inject.Register for the masked/SDC/detected outcome spread).
	injector := inject.New(h, world, prng.New(7, 0xfa17), inject.Params{
		Type:       inject.Failstop,
		WindowLo:   time.Second,
		WindowHi:   2 * time.Second,
		AppDomains: []int{1, 2},
	})
	injector.Schedule()

	world.StartAll()
	world.Sender.Start(2, benchDuration)
	clk.RunUntil(benchDuration + 3*time.Second)

	fmt.Println()
	fmt.Printf("fault: %v in %s (effect: %v)\n",
		inject.Failstop, injector.Point.Activity, injector.FaultEffect)
	if engine.FirstDetection != nil {
		fmt.Printf("detection: %v\n", engine.FirstDetection)
	} else {
		fmt.Println("detection: none (fault masked or SDC)")
	}
	for _, vm := range []*guest.AppVM{unix, net} {
		ok, reason := vm.Verdict()
		fmt.Printf("%-10s ok=%-5v ops=%-5d %s\n", vm.Cfg.Kind, ok, vm.OpsCompleted, reason)
	}
	if blk != nil {
		ok, reason := blk.Verdict()
		fmt.Printf("%-10s ok=%-5v ops=%-5d %s (created after recovery)\n",
			blk.Cfg.Kind, ok, blk.OpsCompleted, reason)
	}
	fmt.Printf("NetBench sender: %d sent, %d replies, max gap %v, failed intervals %d\n",
		world.Sender.Sent, world.Sender.Received, world.Sender.MaxGap(), world.Sender.FailedIntervals())
	if failed, why := h.Failed(); failed {
		fmt.Printf("HYPERVISOR FAILED: %s\n", why)
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
