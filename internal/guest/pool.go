package guest

import "nilihype/internal/hypercall"

// The world's hypercall free list. Guests issue tens of thousands of calls
// per run; almost all complete synchronously within the dispatch, so the
// records can be recycled immediately instead of allocated fresh each time.
// The recycling gate is Call.Done: the hypervisor core sets it only when a
// call completes cleanly, so a call retained by recovery machinery (a
// pause-deferred dispatch, a pending-retry record) is simply abandoned to
// the garbage collector — rare, and never double-used.
//
// Worlds are confined to one campaign worker goroutine, so the free list
// needs no locking.

// getCall returns a zeroed call record, reusing a recycled one when
// available. A recycled multicall's Batch keeps its capacity.
func (w *World) getCall() *hypercall.Call {
	if n := len(w.callFree); n > 0 {
		c := w.callFree[n-1]
		w.callFree[n-1] = nil
		w.callFree = w.callFree[:n-1]
		return c
	}
	return &hypercall.Call{}
}

// putCall recycles a dispatched call if the hypervisor marked it Done.
func (w *World) putCall(c *hypercall.Call) {
	if !c.Done {
		return
	}
	resetCall(c)
	w.callFree = append(w.callFree, c)
}

// putBatch recycles a dispatched multicall and its components. Components
// are never marked Done individually — they live and die with the outer
// batch, so the outer Done flag gates the whole group.
func (w *World) putBatch(b *hypercall.Call) {
	if !b.Done {
		return
	}
	for i, c := range b.Batch {
		resetCall(c)
		w.callFree = append(w.callFree, c)
		b.Batch[i] = nil
	}
	resetCall(b)
	w.callFree = append(w.callFree, b)
}

// resetCall zeroes a call, keeping its Batch capacity.
func resetCall(c *hypercall.Call) {
	batch := c.Batch[:0]
	*c = hypercall.Call{}
	c.Batch = batch
}

// call dispatches a simple (non-batched, spec-free) hypercall from a
// pooled record and recycles it on completion — the guest fast path.
func (w *World) call(cpu int, op hypercall.Op, domID int, args [4]uint64) {
	c := w.getCall()
	c.Op = op
	c.Dom = domID
	c.Args = args
	w.H.Dispatch(cpu, c)
	w.putCall(c)
}
