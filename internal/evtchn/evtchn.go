// Package evtchn implements Xen-style event channels: the asynchronous
// notification primitive connecting domains to each other and to the
// hypervisor (device interrupts, ring notifications).
//
// Each domain owns a port table. Ports are allocated unbound (waiting for
// a peer), bound inter-domain (send on one side sets pending on the
// other), or bound to a virtual IRQ source (device completions). Pending
// bits survive recovery in place — event channels are part of the state
// microreset reuses and microreboot re-integrates; their delivery
// semantics (set-pending is idempotent) are what makes the event path
// safely retryable.
package evtchn

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
)

// State is a port's binding state.
type State int

// Port states.
const (
	// Free: unallocated.
	Free State = iota
	// Unbound: allocated, waiting for a remote domain to bind.
	Unbound
	// Interdomain: connected to a (domain, port) peer.
	Interdomain
	// VIRQBound: bound to a virtual interrupt source (device class).
	VIRQBound
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Free:
		return "free"
	case Unbound:
		return "unbound"
	case Interdomain:
		return "interdomain"
	case VIRQBound:
		return "virq"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Errors.
var (
	ErrNoFreePorts = errors.New("evtchn: no free ports")
	ErrBadPort     = errors.New("evtchn: invalid port")
	ErrBadState    = errors.New("evtchn: port in wrong state")
)

// Port is one event channel endpoint.
type Port struct {
	State      State
	RemoteDom  int // Interdomain: the peer domain
	RemotePort int // Interdomain: the peer port
	VIRQ       int // VIRQBound: the virtual IRQ number
	Pending    bool
	Masked     bool
}

// Table is a domain's event channel table.
type Table struct {
	owner int
	ports []Port
}

// DefaultPorts is the per-domain port table size.
const DefaultPorts = 64

// NewTable builds a port table for a domain.
func NewTable(owner, size int) *Table {
	if size <= 0 {
		size = DefaultPorts
	}
	return &Table{owner: owner, ports: make([]Port, size)}
}

// Owner returns the owning domain ID.
func (t *Table) Owner() int { return t.owner }

// Len returns the table size.
func (t *Table) Len() int { return len(t.ports) }

// Port returns port p for inspection.
func (t *Table) Port(p int) (*Port, error) {
	if p < 0 || p >= len(t.ports) {
		return nil, fmt.Errorf("%w: %d", ErrBadPort, p)
	}
	return &t.ports[p], nil
}

// allocFree finds the lowest free port (port 0 is reserved, as in Xen).
func (t *Table) allocFree() (int, error) {
	for p := 1; p < len(t.ports); p++ {
		if t.ports[p].State == Free {
			return p, nil
		}
	}
	return 0, ErrNoFreePorts
}

// AllocUnbound allocates a port awaiting a bind from remoteDom.
func (t *Table) AllocUnbound(remoteDom int) (int, error) {
	p, err := t.allocFree()
	if err != nil {
		return 0, err
	}
	t.ports[p] = Port{State: Unbound, RemoteDom: remoteDom}
	return p, nil
}

// BindVIRQ allocates a port bound to a virtual IRQ source.
func (t *Table) BindVIRQ(virq int) (int, error) {
	p, err := t.allocFree()
	if err != nil {
		return 0, err
	}
	t.ports[p] = Port{State: VIRQBound, VIRQ: virq}
	return p, nil
}

// Close frees a port, clearing any pending state.
func (t *Table) Close(p int) error {
	port, err := t.Port(p)
	if err != nil {
		return err
	}
	*port = Port{}
	return nil
}

// PendingPorts returns the pending, unmasked ports in order.
func (t *Table) PendingPorts() []int {
	var out []int
	for p := 1; p < len(t.ports); p++ {
		if t.ports[p].Pending && !t.ports[p].Masked {
			out = append(out, p)
		}
	}
	return out
}

// TakePending clears and returns the pending, unmasked ports (the guest's
// upcall handler consuming its pending bitmap).
func (t *Table) TakePending() []int {
	out := t.PendingPorts()
	for _, p := range out {
		t.ports[p].Pending = false
	}
	return out
}

// setPending marks a port pending; idempotent (a level-style bit, which is
// why retried sends are harmless).
func (t *Table) setPending(p int) error {
	port, err := t.Port(p)
	if err != nil {
		return err
	}
	if port.State == Free {
		return fmt.Errorf("%w: port %d free", ErrBadState, p)
	}
	port.Pending = true
	return nil
}

// Broker connects domains' tables and routes sends. The hypervisor owns
// one broker; its routing state is part of the reused recovery state.
type Broker struct {
	tables map[int]*Table
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return &Broker{tables: make(map[int]*Table)}
}

// Register adds a domain's table.
func (b *Broker) Register(t *Table) { b.tables[t.owner] = t }

// Unregister removes a domain's table (domain destruction).
func (b *Broker) Unregister(owner int) { delete(b.tables, owner) }

// Table returns a domain's table, or nil.
func (b *Broker) Table(owner int) *Table { return b.tables[owner] }

// BindInterdomain connects localDom's new port to remoteDom's unbound
// port remotePort. Both ends become Interdomain.
func (b *Broker) BindInterdomain(localDom, remoteDom, remotePort int) (int, error) {
	lt, rt := b.tables[localDom], b.tables[remoteDom]
	if lt == nil || rt == nil {
		return 0, fmt.Errorf("%w: domain table missing", ErrBadState)
	}
	rp, err := rt.Port(remotePort)
	if err != nil {
		return 0, err
	}
	if rp.State != Unbound || rp.RemoteDom != localDom {
		return 0, fmt.Errorf("%w: remote port %d not unbound for d%d", ErrBadState, remotePort, localDom)
	}
	lp, err := lt.allocFree()
	if err != nil {
		return 0, err
	}
	lt.ports[lp] = Port{State: Interdomain, RemoteDom: remoteDom, RemotePort: remotePort}
	rp.State = Interdomain
	rp.RemotePort = lp
	return lp, nil
}

// Send delivers a notification from (dom, port): for an inter-domain
// port, the peer's pending bit is set and the peer domain ID returned;
// for a VIRQ port, the local pending bit is set.
func (b *Broker) Send(dom, port int) (notifiedDom int, err error) {
	t := b.tables[dom]
	if t == nil {
		return -1, fmt.Errorf("%w: no table for d%d", ErrBadState, dom)
	}
	p, err := t.Port(port)
	if err != nil {
		return -1, err
	}
	switch p.State {
	case Interdomain:
		rt := b.tables[p.RemoteDom]
		if rt == nil {
			return -1, fmt.Errorf("%w: peer d%d gone", ErrBadState, p.RemoteDom)
		}
		if err := rt.setPending(p.RemotePort); err != nil {
			return -1, err
		}
		return p.RemoteDom, nil
	case VIRQBound:
		if err := t.setPending(port); err != nil {
			return -1, err
		}
		return dom, nil
	default:
		return -1, fmt.Errorf("%w: port %d is %v", ErrBadState, port, p.State)
	}
}

// RaiseVIRQ sets pending on dom's port bound to virq (device completion
// delivery). Returns the port, or an error if none is bound.
func (b *Broker) RaiseVIRQ(dom, virq int) (int, error) {
	t := b.tables[dom]
	if t == nil {
		return -1, fmt.Errorf("%w: no table for d%d", ErrBadState, dom)
	}
	for p := 1; p < len(t.ports); p++ {
		if t.ports[p].State == VIRQBound && t.ports[p].VIRQ == virq {
			t.ports[p].Pending = true
			return p, nil
		}
	}
	return -1, fmt.Errorf("%w: d%d has no port for virq %d", ErrBadState, dom, virq)
}

// Owners returns the registered table owners in ascending order — the
// deterministic iteration order corruption and audit walks must use (the
// broker's table map has no stable order of its own).
func (b *Broker) Owners() []int {
	out := make([]int, 0, len(b.tables))
	for o := range b.tables {
		out = append(out, o)
	}
	sort.Ints(out)
	return out
}

// CheckLinks validates inter-domain port linkage: every Interdomain port's
// peer must exist, be Interdomain, and link back. Returns one description
// per broken port in (owner, port) order; empty when the mesh is intact.
func (b *Broker) CheckLinks() []string {
	var out []string
	for _, o := range b.Owners() {
		t := b.tables[o]
		for p := 1; p < len(t.ports); p++ {
			port := &t.ports[p]
			if port.State != Interdomain {
				continue
			}
			rt := b.tables[port.RemoteDom]
			if rt == nil {
				out = append(out, fmt.Sprintf("d%d port %d: peer domain d%d has no table", o, p, port.RemoteDom))
				continue
			}
			rp, err := rt.Port(port.RemotePort)
			if err != nil || rp.State != Interdomain || rp.RemoteDom != o || rp.RemotePort != p {
				out = append(out, fmt.Sprintf("d%d port %d: peer d%d port %d does not link back", o, p, port.RemoteDom, port.RemotePort))
			}
		}
	}
	return out
}

// FindBacklink searches every table for the Interdomain port whose peer
// fields name (dom, port), returning its (owner, port). The audit uses
// this to re-derive a damaged port's peer from the surviving half of the
// link. ok is false when no port links back.
func (b *Broker) FindBacklink(dom, port int) (peerDom, peerPort int, ok bool) {
	for _, o := range b.Owners() {
		t := b.tables[o]
		for p := 1; p < len(t.ports); p++ {
			pp := &t.ports[p]
			if pp.State == Interdomain && pp.RemoteDom == dom && pp.RemotePort == port {
				return o, p, true
			}
		}
	}
	return 0, 0, false
}

// CorruptRandomLink structurally damages a random inter-domain port's peer
// linkage — garbage in its remote port or remote domain field. Sends over
// the damaged port fail (detected) and the peer's backlink no longer
// matches. Returns a short description.
func (b *Broker) CorruptRandomLink(rng *rand.Rand) string {
	type cand struct{ dom, port int }
	var cands []cand
	for _, o := range b.Owners() {
		t := b.tables[o]
		for p := 1; p < len(t.ports); p++ {
			if t.ports[p].State == Interdomain {
				cands = append(cands, cand{o, p})
			}
		}
	}
	if len(cands) == 0 {
		return "no interdomain ports"
	}
	c := cands[rng.IntN(len(cands))]
	port := &b.tables[c.dom].ports[c.port]
	if rng.IntN(2) == 0 {
		port.RemotePort += 7 + rng.IntN(50)
		return fmt.Sprintf("d%d port %d remote-port garbled to %d", c.dom, c.port, port.RemotePort)
	}
	port.RemoteDom += 700 + rng.IntN(300)
	return fmt.Sprintf("d%d port %d remote-dom garbled to d%d", c.dom, c.port, port.RemoteDom)
}

// Well-known virtual IRQ numbers.
const (
	VIRQBlock = 1 // block device completions
	VIRQNet   = 2 // network RX
)
