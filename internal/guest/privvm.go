package guest

import (
	"time"

	"nilihype/internal/hypercall"
)

// StartPrivVM begins the PrivVM's background management activity: light
// periodic housekeeping hypercalls from Dom0 (vCPU state polls, occasional
// console output). The PrivVM's vCPU is pinned to CPU 0 (§VI-A).
func (w *World) StartPrivVM() {
	w.schedulePrivTick()
}

const privTickPeriod = 5 * time.Millisecond

func (w *World) schedulePrivTick() {
	w.H.Clock.After(privTickPeriod, "privvm-tick", w.privTickFn)
}

// privTick fires every housekeeping period (cached as w.privTickFn).
func (w *World) privTick() {
	if failed, _ := w.H.Failed(); failed {
		return
	}
	w.H.WhenRunnable(w.privTickBodyFn)
}

// privTickBody is the tick's work, entered once the hypervisor is runnable
// (cached as w.privTickBodyFn).
func (w *World) privTickBody() {
	d, err := w.H.Domain(0)
	if err != nil || d.Failed {
		return
	}
	w.call(0, hypercall.OpVCPUOp, 0, [4]uint64{})
	if failed, _ := w.H.Failed(); failed {
		return
	}
	// The console daemon drains the hypervisor ring; nothing records the
	// output, so the messages are discarded without rendering.
	w.H.Cons.Discard()
	if w.rng.IntN(20) == 0 {
		w.call(0, hypercall.OpConsoleIO, 0, [4]uint64{})
	}
	if failed, _ := w.H.Failed(); failed {
		return
	}
	w.schedulePrivTick()
}

// PrivCreateDomain issues a domctl domain-creation hypercall from the
// PrivVM — the post-recovery functionality check of the 3AppVM setup ("a
// third AppVM is created and it runs BlkBench", §VI-A). It returns false
// if the PrivVM is unable to issue the request.
func (w *World) PrivCreateDomain(spec hypercall.CreateSpec) bool {
	d, err := w.H.Domain(0)
	if err != nil || d.Failed {
		return false
	}
	w.dispatch(0, &hypercall.Call{
		Op:     hypercall.OpDomctl,
		Dom:    0,
		Args:   [4]uint64{hypercall.DomctlCreate},
		Create: &spec,
	})
	_, err = w.H.Domain(spec.ID)
	return err == nil
}

// PrivVMFailed reports whether Dom0 has failed — one of the paper's top
// three recovery-failure causes (§VII-A).
func (w *World) PrivVMFailed() bool {
	d, err := w.H.Domain(0)
	return err != nil || d.Failed
}
