package core

import (
	"math/rand/v2"
	"strings"
	"testing"
	"time"

	"nilihype/internal/detect"
	"nilihype/internal/hv"
	"nilihype/internal/hw"
	"nilihype/internal/hypercall"
	"nilihype/internal/simclock"
)

// testRNG drives the structural-corruption helpers in tests; the seed is
// fixed so failures reproduce.
func testRNG() *rand.Rand { return rand.New(rand.NewPCG(7, 7)) }

// rig is a minimal full stack: hypervisor + detector + engine + one AppVM
// domain issuing no workload (tests drive hypercalls directly).
type rig struct {
	h      *hv.Hypervisor
	clk    *simclock.Clock
	det    *detect.Detector
	engine *Engine
}

func newRig(t *testing.T, cfg Config, memoryMB int) *rig {
	t.Helper()
	clk := simclock.New()
	h, err := hv.New(clk, hv.Config{
		Machine:        hw.Config{CPUs: 8, MemoryMB: memoryMB, BlockSvc: 200 * time.Microsecond, NICLat: 30 * time.Microsecond},
		HeapFrames:     4096,
		LoggingEnabled: true,
		RecoveryPrep:   true,
		Seed:           99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := h.CreateDomain(1, "app", 4096, 1, false); err != nil {
		t.Fatal(err)
	}
	engine := NewEngine(h, cfg)
	det := detect.New(h, engine.OnDetection)
	engine.Det = det
	det.Start()
	return &rig{h: h, clk: clk, det: det, engine: engine}
}

// injectPanic arms a failstop injection that fires inside the next
// mmu_update pin dispatched on CPU 1.
func (r *rig) injectPanicAtBudget(t *testing.T, budget int64) {
	t.Helper()
	r.h.ArmInjection(budget, func(hv.InjectionPoint) (hv.InjectAction, string) {
		return hv.ActionPanic, "failstop"
	})
	d, err := r.h.Domain(1)
	if err != nil {
		t.Fatal(err)
	}
	r.h.Dispatch(1, &hypercall.Call{Op: hypercall.OpMMUUpdate, Dom: 1,
		Args: [4]uint64{hypercall.MMUPin, uint64(d.MemStart + 7)}})
}

func TestMechanismAndStatusStrings(t *testing.T) {
	if Microreset.String() != "NiLiHype" || Microreboot.String() != "ReHype" {
		t.Fatal("mechanism names wrong")
	}
	if Mechanism(9).String() != "mechanism(9)" {
		t.Fatal("unknown mechanism formatting")
	}
	for _, tt := range []struct {
		s    Status
		want string
	}{{StatusIdle, "idle"}, {StatusRecovered, "recovered"}, {StatusFailed, "failed"}, {Status(9), "status(9)"}} {
		if tt.s.String() != tt.want {
			t.Fatalf("%v != %v", tt.s, tt.want)
		}
	}
}

func TestLadderIsCumulative(t *testing.T) {
	rungs := Ladder()
	if len(rungs) != 7 {
		t.Fatalf("ladder has %d rungs, want 7 (Table I)", len(rungs))
	}
	if rungs[0].Enh != 0 {
		t.Fatal("first rung must be Basic")
	}
	for i := 1; i < len(rungs); i++ {
		if rungs[i].Enh&rungs[i-1].Enh != rungs[i-1].Enh {
			t.Fatalf("rung %d does not include rung %d", i, i-1)
		}
	}
	if rungs[len(rungs)-1].Enh != AllEnhancements {
		t.Fatal("final rung must be AllEnhancements")
	}
}

func TestMicroresetRecoversFromFailstop(t *testing.T) {
	r := newRig(t, DefaultConfig(), 512)
	r.clk.RunUntil(100 * time.Millisecond)
	recovered := false
	r.engine.OnRecovered = func() { recovered = true }
	r.injectPanicAtBudget(t, 250)
	r.clk.RunUntil(500 * time.Millisecond)
	if r.engine.Status() != StatusRecovered {
		t.Fatalf("status = %v (%s)", r.engine.Status(), r.engine.FailReason)
	}
	if !recovered || !r.engine.Recovered() {
		t.Fatal("OnRecovered not invoked")
	}
	if failed, reason := r.h.Failed(); failed {
		t.Fatalf("hypervisor failed: %s", reason)
	}
	// System keeps running: timer IRQs continue on all CPUs.
	before := r.h.Stats.TimerIRQs
	r.clk.RunUntil(time.Second)
	if r.h.Stats.TimerIRQs <= before {
		t.Fatal("no timer activity after recovery")
	}
	if !strings.Contains(r.engine.Summary(), "recovered") {
		t.Fatalf("Summary() = %q", r.engine.Summary())
	}
}

func TestMicroresetLatencyMatchesTable3(t *testing.T) {
	// At the paper's 8 GB the total must be ~22 ms, dominated by the
	// 21 ms page-frame scan (Table III).
	r := newRig(t, DefaultConfig(), 8192)
	r.clk.RunUntil(50 * time.Millisecond)
	r.injectPanicAtBudget(t, 250)
	r.clk.RunUntil(2 * time.Second)
	if r.engine.Status() != StatusRecovered {
		t.Fatalf("status = %v (%s)", r.engine.Status(), r.engine.FailReason)
	}
	lat := r.engine.Latency
	if lat < 21*time.Millisecond || lat > 23*time.Millisecond {
		t.Fatalf("NiLiHype latency = %v, want ~22ms (Table III)", lat)
	}
	var scan time.Duration
	for _, s := range r.engine.Breakdown {
		if strings.Contains(s.Name, "page frame") {
			scan = s.Dur
		}
	}
	if scan != 21*time.Millisecond {
		t.Fatalf("page-frame scan = %v, want 21ms", scan)
	}
	if !strings.Contains(r.engine.FormatBreakdown(), "Total") {
		t.Fatal("FormatBreakdown missing total")
	}
}

func TestMicrorebootLatencyMatchesTable2(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mechanism = Microreboot
	r := newRig(t, cfg, 8192)
	r.clk.RunUntil(50 * time.Millisecond)
	r.injectPanicAtBudget(t, 250)
	r.clk.RunUntil(3 * time.Second)
	if r.engine.Status() != StatusRecovered {
		t.Fatalf("status = %v (%s)", r.engine.Status(), r.engine.FailReason)
	}
	lat := r.engine.Latency
	if lat < 700*time.Millisecond || lat > 730*time.Millisecond {
		t.Fatalf("ReHype latency = %v, want ~713ms (Table II)", lat)
	}
}

func TestLatencyRatioExceeds30x(t *testing.T) {
	// §VII-B: NiLiHype recovers more than 30x faster than ReHype.
	run := func(mech Mechanism) time.Duration {
		cfg := DefaultConfig()
		cfg.Mechanism = mech
		r := newRig(t, cfg, 8192)
		r.clk.RunUntil(50 * time.Millisecond)
		r.injectPanicAtBudget(t, 250)
		r.clk.RunUntil(3 * time.Second)
		if r.engine.Status() != StatusRecovered {
			t.Fatalf("%v status = %v", mech, r.engine.Status())
		}
		return r.engine.Latency
	}
	nili, rehype := run(Microreset), run(Microreboot)
	if ratio := float64(rehype) / float64(nili); ratio < 30 {
		t.Fatalf("latency ratio = %.1f, want > 30", ratio)
	}
}

func TestMicroresetLatencyScalesWithMemory(t *testing.T) {
	// §VII-B: the page-frame scan is proportional to host memory.
	lat := func(memMB int) time.Duration {
		r := newRig(t, DefaultConfig(), memMB)
		r.clk.RunUntil(50 * time.Millisecond)
		r.injectPanicAtBudget(t, 250)
		r.clk.RunUntil(2 * time.Second)
		if r.engine.Status() != StatusRecovered {
			t.Fatalf("status = %v", r.engine.Status())
		}
		return r.engine.Latency
	}
	l2, l8 := lat(2048), lat(8192)
	scanGrowth := (l8 - l2).Seconds()
	wantGrowth := (21.0 * 3 / 4) / 1000 // 3/4 of the 21ms scan
	if scanGrowth < wantGrowth*0.8 || scanGrowth > wantGrowth*1.2 {
		t.Fatalf("scan growth 2->8GB = %.4fs, want ~%.4fs (linear scaling)", scanGrowth, wantGrowth)
	}
}

func TestParallelScanReducesLatency(t *testing.T) {
	// The §VII-B mitigation: sharding the page-frame scan across cores
	// cuts the dominant latency component near-linearly.
	lat := func(scanCPUs int) time.Duration {
		cfg := DefaultConfig()
		cfg.ScanCPUs = scanCPUs
		r := newRig(t, cfg, 8192)
		r.clk.RunUntil(50 * time.Millisecond)
		r.injectPanicAtBudget(t, 250)
		r.clk.RunUntil(2 * time.Second)
		if r.engine.Status() != StatusRecovered {
			t.Fatalf("status = %v (%s)", r.engine.Status(), r.engine.FailReason)
		}
		return r.engine.Latency
	}
	seq, par := lat(1), lat(8)
	if par >= seq/3 {
		t.Fatalf("8-core scan latency %v not much below sequential %v", par, seq)
	}
	if par < 3*time.Millisecond {
		t.Fatalf("parallel latency %v implausibly low (coordination cost missing)", par)
	}
}

func TestBasicMicroresetAlwaysFails(t *testing.T) {
	// §V-A: "With the basic NiLiHype mechanism, recovery never succeeds"
	// — detection always happens in an exception/NMI context, so the
	// stale local_irq_count trips the first post-resume assertion.
	for seed := 0; seed < 5; seed++ {
		cfg := Config{Mechanism: Microreset, Enhancements: 0}
		r := newRig(t, cfg, 512)
		r.clk.RunUntil(50 * time.Millisecond)
		r.injectPanicAtBudget(t, 250+int64(seed)*37)
		r.clk.RunUntil(time.Second)
		if r.engine.Status() != StatusFailed {
			t.Fatalf("basic recovery succeeded (must never, §V-A)")
		}
		if !strings.Contains(r.engine.FailReason, "in_irq") {
			t.Fatalf("FailReason = %q, want the !in_irq assertion", r.engine.FailReason)
		}
	}
}

func TestRecoveryPathCorruptionAbortsRecovery(t *testing.T) {
	r := newRig(t, DefaultConfig(), 512)
	r.clk.RunUntil(50 * time.Millisecond)
	r.h.CorruptRecoveryVector(testRNG())
	r.injectPanicAtBudget(t, 250)
	if r.engine.Status() != StatusFailed {
		t.Fatalf("status = %v", r.engine.Status())
	}
	if !strings.Contains(r.engine.FailReason, "failed to be invoked") {
		t.Fatalf("FailReason = %q", r.engine.FailReason)
	}
}

func TestStaticScratchCorruption(t *testing.T) {
	// Microreset reuses the corrupted static state and fails;
	// microreboot re-initializes it during boot and survives — the
	// §VII-A mechanism advantage.
	run := func(mech Mechanism) *Engine {
		cfg := DefaultConfig()
		cfg.Mechanism = mech
		r := newRig(t, cfg, 512)
		r.clk.RunUntil(50 * time.Millisecond)
		r.h.CorruptStaticScratchWord(testRNG())
		r.injectPanicAtBudget(t, 250)
		r.clk.RunUntil(3 * time.Second)
		return r.engine
	}
	if en := run(Microreset); en.Status() != StatusFailed {
		t.Fatal("microreset survived static-scratch corruption")
	}
	if en := run(Microreboot); en.Status() != StatusRecovered {
		t.Fatalf("microreboot failed static-scratch corruption: %s", en.FailReason)
	} else if len(en.H.StaticScratchDamage()) != 0 {
		t.Fatal("reboot did not re-initialize the static scratch area")
	}
}

func TestAllocatedObjectCorruptionFailsBoth(t *testing.T) {
	for _, mech := range []Mechanism{Microreset, Microreboot} {
		cfg := DefaultConfig()
		cfg.Mechanism = mech
		r := newRig(t, cfg, 512)
		r.clk.RunUntil(50 * time.Millisecond)
		if tag := r.h.Heap.CorruptRandomObject(testRNG()); tag == "no live objects" {
			t.Fatal("no live heap object to corrupt")
		}
		r.injectPanicAtBudget(t, 250)
		r.clk.RunUntil(3 * time.Second)
		if r.engine.Status() != StatusFailed {
			t.Fatalf("%v survived live-object corruption (reused by both)", mech)
		}
	}
}

func TestHeapFreelistCorruption(t *testing.T) {
	// Microreboot rebuilds the free list; microreset keeps it corrupted
	// (a later allocator path fails).
	cfg := DefaultConfig()
	cfg.Mechanism = Microreboot
	r := newRig(t, cfg, 512)
	r.clk.RunUntil(50 * time.Millisecond)
	r.h.Heap.CorruptFreeList(testRNG())
	if len(r.h.Heap.ValidateFreeList()) == 0 {
		t.Fatal("CorruptFreeList produced no detectable damage")
	}
	r.injectPanicAtBudget(t, 250)
	r.clk.RunUntil(3 * time.Second)
	if r.engine.Status() != StatusRecovered {
		t.Fatalf("microreboot failed: %s", r.engine.FailReason)
	}
	if len(r.h.Heap.ValidateFreeList()) != 0 {
		t.Fatal("reboot did not rebuild the heap free list")
	}

	r2 := newRig(t, DefaultConfig(), 512)
	r2.clk.RunUntil(50 * time.Millisecond)
	r2.h.Heap.CorruptFreeList(testRNG())
	r2.injectPanicAtBudget(t, 250)
	r2.clk.RunUntil(time.Second)
	if len(r2.h.Heap.ValidateFreeList()) == 0 {
		t.Fatal("microreset rebuilt the heap free list (it must not)")
	}
}

func TestDomainListCorruption(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mechanism = Microreboot
	r := newRig(t, cfg, 512)
	r.clk.RunUntil(50 * time.Millisecond)
	d, err := r.h.Domain(1)
	if err != nil {
		t.Fatal(err)
	}
	r.h.Domains.CorruptLink(testRNG())
	if r.h.Domains.CheckLinks() == nil {
		t.Fatal("CorruptLink produced no detectable damage")
	}
	r.h.ArmInjection(250, func(hv.InjectionPoint) (hv.InjectAction, string) {
		return hv.ActionPanic, "failstop"
	})
	r.h.Dispatch(1, &hypercall.Call{Op: hypercall.OpMMUUpdate, Dom: 1,
		Args: [4]uint64{hypercall.MMUPin, uint64(d.MemStart + 7)}})
	r.clk.RunUntil(3 * time.Second)
	if err := r.h.Domains.CheckLinks(); err != nil {
		t.Fatalf("reboot did not relink the domain list: %v", err)
	}
}

func TestPoisonedRetryFailsRecovery(t *testing.T) {
	r := newRig(t, DefaultConfig(), 512)
	r.clk.RunUntil(50 * time.Millisecond)
	// Land the fault in the unmitigated window of mmu_pin:
	// entry(150)+lock(40)+inc(60)+pte(120)+validate(80) = 450.
	r.h.ArmInjection(455, func(pt hv.InjectionPoint) (hv.InjectAction, string) {
		if !pt.Unmitigated {
			return hv.ActionContinue, ""
		}
		return hv.ActionPanic, "failstop in window"
	})
	d, _ := r.h.Domain(1)
	r.h.Dispatch(1, &hypercall.Call{Op: hypercall.OpMMUUpdate, Dom: 1,
		Args: [4]uint64{hypercall.MMUPin, uint64(d.MemStart + 7)}})
	r.clk.RunUntil(time.Second)
	if r.engine.Status() != StatusFailed {
		t.Fatal("poisoned retry recovered (the §IV residual must fail)")
	}
	if !strings.Contains(r.engine.FailReason, "refcount") {
		t.Fatalf("FailReason = %q", r.engine.FailReason)
	}
}

func TestReprogramTimerEnhancementRevivesAPIC(t *testing.T) {
	// Without the enhancement, a dead APIC (fault inside the timer IRQ
	// window) leads to a post-recovery watchdog hang; with it, the CPU
	// revives.
	enhAll := DefaultConfig()
	r := newRig(t, enhAll, 512)
	r.clk.RunUntil(95 * time.Millisecond)
	// Inject inside the timer IRQ pre-reprogram window on some CPU: arm
	// a tiny budget right before the next tick wave (ticks at 100ms).
	fired := false
	r.h.ArmInjection(300, func(pt hv.InjectionPoint) (hv.InjectAction, string) {
		if !strings.HasPrefix(pt.Activity, "irq:timer") || pt.StepName == "exit_irq" {
			return hv.ActionContinue, ""
		}
		fired = true
		return hv.ActionPanic, "failstop in timer irq"
	})
	r.clk.RunUntil(3 * time.Second)
	if !fired {
		t.Skip("injection missed the timer window")
	}
	if r.engine.Status() != StatusRecovered {
		t.Fatalf("status = %v (%s)", r.engine.Status(), r.engine.FailReason)
	}
	for cpu := 0; cpu < r.h.NumCPUs(); cpu++ {
		if !r.h.Machine.CPU(cpu).TimerArmed() {
			t.Fatalf("cpu%d APIC dead after recovery with reprogram enhancement", cpu)
		}
	}
}

func TestDetectingOnlyScopeIsWorse(t *testing.T) {
	// §III-C ablation: discarding only the detecting CPU's thread leaves
	// cross-CPU waits and global-state clashes; across seeds it must
	// fail at least sometimes while all-threads succeeds.
	failures := 0
	const tries = 30
	for seed := 0; seed < tries; seed++ {
		cfg := DefaultConfig()
		cfg.Scope = DetectingOnly
		r := newRig(t, cfg, 512)
		// Decorrelate the hazard draws across iterations (the rig's
		// hypervisor seed is fixed).
		for k := 0; k < seed; k++ {
			r.h.RNG.Uint64()
		}
		r.clk.RunUntil(50 * time.Millisecond)
		r.injectPanicAtBudget(t, 250+int64(seed)*61)
		r.clk.RunUntil(2 * time.Second)
		if r.engine.Status() == StatusFailed {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("DetectingOnly scope never failed across seeds (hazards not modeled)")
	}
	if failures == tries {
		t.Fatal("DetectingOnly scope always failed (hazards overmodeled)")
	}
}

func TestDetectionDuringRecoveryWindowIgnored(t *testing.T) {
	// Watchdog noise while VMs are paused must not abort the recovery.
	cfg := DefaultConfig()
	cfg.Mechanism = Microreboot // long 713ms window: watchdog fires inside
	r := newRig(t, cfg, 512)
	r.clk.RunUntil(50 * time.Millisecond)
	r.injectPanicAtBudget(t, 250)
	r.clk.RunUntil(3 * time.Second)
	if r.engine.Status() != StatusRecovered {
		t.Fatalf("status = %v (%s) — in-window detections must be ignored",
			r.engine.Status(), r.engine.FailReason)
	}
}

func TestSecondFaultAfterRecoveryFails(t *testing.T) {
	r := newRig(t, DefaultConfig(), 512)
	r.clk.RunUntil(50 * time.Millisecond)
	r.injectPanicAtBudget(t, 250)
	r.clk.RunUntil(500 * time.Millisecond)
	if r.engine.Status() != StatusRecovered {
		t.Fatalf("first recovery failed: %s", r.engine.FailReason)
	}
	r.h.Panic(2, "second fault")
	if r.engine.Status() != StatusFailed {
		t.Fatal("second detection did not fail the run")
	}
	if !strings.Contains(r.engine.FailReason, "post-recovery") {
		t.Fatalf("FailReason = %q", r.engine.FailReason)
	}
}

func TestStatusIdleWithoutDetection(t *testing.T) {
	r := newRig(t, DefaultConfig(), 512)
	r.clk.RunUntil(500 * time.Millisecond)
	if r.engine.Status() != StatusIdle {
		t.Fatalf("status = %v", r.engine.Status())
	}
	if r.engine.Summary() != "no detection" {
		t.Fatalf("Summary = %q", r.engine.Summary())
	}
}

func TestEnhancementsHas(t *testing.T) {
	e := EnhClearIRQCount | EnhPFScan
	if !e.Has(EnhClearIRQCount) || !e.Has(EnhPFScan) || e.Has(EnhReprogramTimer) {
		t.Fatal("Has() wrong")
	}
}

func TestNetBenchSenderSeesRecoveryGap(t *testing.T) {
	// §VII-B: recovery latency is measured as the service interruption
	// seen by the NetBench sender. This is covered end-to-end in the
	// benchmark harness; here we verify the pause window blocks and
	// resumes dispatching.
	r := newRig(t, DefaultConfig(), 8192)
	r.clk.RunUntil(50 * time.Millisecond)
	r.injectPanicAtBudget(t, 250)
	start := r.clk.Now()
	if !r.h.Paused() {
		t.Fatal("hypervisor not paused during recovery")
	}
	r.clk.RunUntil(start + 21*time.Millisecond)
	if !r.h.Paused() {
		t.Fatal("pause ended before the modeled latency")
	}
	r.clk.RunUntil(start + 30*time.Millisecond)
	if r.h.Paused() {
		t.Fatal("pause did not end after the modeled latency")
	}
}

func TestCheckpointRestoreMechanism(t *testing.T) {
	// The §II-B alternative: no reboot, but the state re-integration
	// remains — "multiple hundreds of milliseconds" even so.
	cfg := DefaultConfig()
	cfg.Mechanism = CheckpointRestore
	r := newRig(t, cfg, 8192)
	r.clk.RunUntil(50 * time.Millisecond)
	r.injectPanicAtBudget(t, 250)
	r.clk.RunUntil(3 * time.Second)
	if r.engine.Status() != StatusRecovered {
		t.Fatalf("status = %v (%s)", r.engine.Status(), r.engine.FailReason)
	}
	lat := r.engine.Latency
	if lat < 300*time.Millisecond || lat > 400*time.Millisecond {
		t.Fatalf("checkpoint-restore latency = %v, want multiple hundreds of ms (§II-B)", lat)
	}
	if !strings.Contains(r.engine.FormatBreakdown(), "Checkpoint restore") {
		t.Fatal("breakdown missing checkpoint group")
	}
	if !Microreboot.Reboots() || !CheckpointRestore.Reboots() || Microreset.Reboots() {
		t.Fatal("Reboots() classification wrong")
	}
	if CheckpointRestore.String() != "ReHype-CP" {
		t.Fatalf("name = %q", CheckpointRestore.String())
	}
}

func TestCheckpointRestoreSurvivesStaticCorruption(t *testing.T) {
	// The checkpoint image re-initializes static state, matching the
	// microreboot advantage.
	cfg := DefaultConfig()
	cfg.Mechanism = CheckpointRestore
	r := newRig(t, cfg, 512)
	r.clk.RunUntil(50 * time.Millisecond)
	r.h.CorruptStaticScratchWord(testRNG())
	r.h.Heap.CorruptFreeList(testRNG())
	r.injectPanicAtBudget(t, 250)
	r.clk.RunUntil(3 * time.Second)
	if r.engine.Status() != StatusRecovered {
		t.Fatalf("status = %v (%s)", r.engine.Status(), r.engine.FailReason)
	}
	if len(r.h.Heap.ValidateFreeList()) != 0 || len(r.h.StaticScratchDamage()) != 0 {
		t.Fatal("checkpoint restore did not re-initialize image state")
	}
}
