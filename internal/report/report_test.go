package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func sample() *Table {
	t := NewTable("Recovery rates", "mechanism", "fault", "success")
	t.AddRow("NiLiHype", "failstop", "96.8%")
	t.AddRow("ReHype", "failstop", "96.8%")
	return t
}

func TestParseFormat(t *testing.T) {
	tests := []struct {
		in      string
		want    Format
		wantErr bool
	}{
		{"text", Text, false}, {"", Text, false},
		{"md", Markdown, false}, {"markdown", Markdown, false},
		{"CSV", CSV, false}, {"json", JSON, false}, {"JSON", JSON, false},
		{"xml", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseFormat(tt.in)
		if (err != nil) != tt.wantErr || got != tt.want {
			t.Errorf("ParseFormat(%q) = %v, %v", tt.in, got, err)
		}
	}
	if Text.String() != "text" || Markdown.String() != "markdown" ||
		CSV.String() != "csv" || JSON.String() != "json" || Format(9).String() != "format(9)" {
		t.Fatal("format names wrong")
	}
}

func TestRenderText(t *testing.T) {
	out := sample().Render(Text)
	if !strings.Contains(out, "Recovery rates") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	// Columns aligned: "mechanism" padded to the widest cell.
	if !strings.HasPrefix(lines[1], "mechanism  fault") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "NiLiHype ") {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestRenderMarkdown(t *testing.T) {
	out := sample().Render(Markdown)
	if !strings.Contains(out, "### Recovery rates") {
		t.Fatalf("missing title: %q", out)
	}
	if !strings.Contains(out, "| mechanism | fault | success |") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "| --- | --- | --- |") {
		t.Fatalf("missing separator: %q", out)
	}
	// Pipes escaped.
	tb := NewTable("", "a")
	tb.AddRow("x|y")
	if !strings.Contains(tb.Render(Markdown), `x\|y`) {
		t.Fatal("pipe not escaped")
	}
}

func TestRenderCSV(t *testing.T) {
	out := sample().Render(CSV)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "mechanism,fault,success" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "NiLiHype,failstop,96.8%" {
		t.Fatalf("row = %q", lines[1])
	}
	// Quoting.
	tb := NewTable("", "a", "b")
	tb.AddRow(`with,comma`, `with"quote`)
	got := tb.Render(CSV)
	if !strings.Contains(got, `"with,comma","with""quote"`) {
		t.Fatalf("quoting wrong: %q", got)
	}
}

func TestRenderJSON(t *testing.T) {
	out := sample().Render(JSON)
	var doc struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("Render(JSON) is not valid JSON: %v\n%s", err, out)
	}
	if doc.Title != "Recovery rates" {
		t.Fatalf("title = %q", doc.Title)
	}
	if len(doc.Columns) != 3 || doc.Columns[0] != "mechanism" {
		t.Fatalf("columns = %v", doc.Columns)
	}
	if len(doc.Rows) != 2 || doc.Rows[1][2] != "96.8%" {
		t.Fatalf("rows = %v", doc.Rows)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("JSON output must end in a newline like the other renderers")
	}
	// Cells needing escaping survive the round trip.
	tb := NewTable("t", "a")
	tb.AddRow("quote\" and\nnewline")
	var doc2 struct {
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(tb.Render(JSON)), &doc2); err != nil {
		t.Fatalf("escaped cell broke JSON: %v", err)
	}
	if doc2.Rows[0][0] != "quote\" and\nnewline" {
		t.Fatalf("cell round trip = %q", doc2.Rows[0][0])
	}
	// An empty table still renders an array, not null.
	empty := NewTable("e", "a")
	if s := empty.Render(JSON); strings.Contains(s, `"rows": null`) {
		t.Fatalf("empty table rows must be [], got:\n%s", s)
	}
}

func TestAddRowPadding(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("1")
	tb.AddRow("1", "2", "3", "4")
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	out := tb.Render(CSV)
	if !strings.Contains(out, "1,,\n") {
		t.Fatalf("short row not padded: %q", out)
	}
	if strings.Contains(out, "4") {
		t.Fatalf("long row not truncated: %q", out)
	}
}

func TestHelpers(t *testing.T) {
	if Pct(0.968) != "96.8%" {
		t.Fatalf("Pct = %q", Pct(0.968))
	}
	if PctCI(0.5, 0.02) != "50.0% ± 2.0%" {
		t.Fatalf("PctCI = %q", PctCI(0.5, 0.02))
	}
	if Ms(0.022) != "22.0ms" {
		t.Fatalf("Ms = %q", Ms(0.022))
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("Figure 2")
	c.Width = 10
	c.Max = 100
	c.AddBar("NiLiHype/Failstop", 96.5, "±1.8")
	c.AddBar("ReHype/Failstop", 96.5, "")
	c.AddBar("zero", 0, "")
	out := c.Render()
	if !strings.Contains(out, "Figure 2") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], "█████████") || !strings.Contains(lines[1], "96.5") ||
		!strings.Contains(lines[1], "±1.8") {
		t.Fatalf("bar line = %q", lines[1])
	}
	if !strings.Contains(lines[3], "··········") {
		t.Fatalf("zero bar = %q", lines[3])
	}
}

func TestBarChartAutoMax(t *testing.T) {
	c := NewBarChart("")
	c.Width = 4
	c.AddBar("a", 2, "")
	c.AddBar("b", 4, "")
	out := c.Render()
	if !strings.Contains(out, "██··") || !strings.Contains(out, "████") {
		t.Fatalf("auto-max scaling wrong: %q", out)
	}
	empty := NewBarChart("")
	empty.AddBar("z", 0, "")
	if !strings.Contains(empty.Render(), "·") {
		t.Fatal("all-zero chart broke")
	}
}
