// Package hv is the hypervisor core: it owns every subsystem (memory,
// locks, timers, scheduler, domains), executes handler programs step by
// step with instruction accounting, dispatches interrupts, and exposes the
// state-inspection and state-repair surface the recovery engines
// (internal/core) operate on.
//
// Execution model: the simulation is event-driven; a handler program runs
// to completion within one clock event unless a fault injection or a
// spinlock spin interrupts it. Because programs are decomposed into steps
// with instruction costs, the fault injector's instruction-count trigger
// lands between two specific steps — leaving exactly the partial state
// (held locks, half-updated refcounts, un-reprogrammed APIC, inconsistent
// scheduler metadata) that drives the paper's recovery-rate results.
package hv

import (
	"fmt"
	"math/rand/v2"
	"time"

	"nilihype/internal/dom"
	"nilihype/internal/evtchn"
	"nilihype/internal/grant"
	"nilihype/internal/hw"
	"nilihype/internal/hypercall"
	"nilihype/internal/journal"
	"nilihype/internal/locking"
	"nilihype/internal/mm"
	"nilihype/internal/prng"
	"nilihype/internal/sched"
	"nilihype/internal/simclock"
	"nilihype/internal/telemetry"
	"nilihype/internal/xentime"
)

// Config parameterizes the hypervisor.
type Config struct {
	Machine hw.Config

	// HeapFrames is the number of page frames reserved for the
	// hypervisor heap (Xen's xenheap/domheap).
	HeapFrames int

	// LoggingEnabled selects the §IV retry-mitigation logging. Disabling
	// it is the NiLiHype* configuration of Figure 3.
	LoggingEnabled bool

	// RecoveryPrep enables the always-on recovery bookkeeping shared by
	// NiLiHype and ReHype (retry setup, multicall completion logging).
	// Disabled only for the stock-Xen overhead baseline.
	RecoveryPrep bool

	// Seed drives all randomness in the run.
	Seed uint64

	// FlightRecorderCapacity sizes the always-on telemetry flight ring
	// (rounded up to a power of two). Zero selects
	// DefaultFlightRecorderCapacity. The capacity shapes the boot image,
	// so campaign image caching keys on it.
	FlightRecorderCapacity int
}

// DefaultFlightRecorderCapacity is the always-on flight-ring size: big
// enough to hold a full detection→recovery→resume sequence plus the
// activity leading into it, small enough that the per-image footprint
// (24 bytes/event) stays negligible.
const DefaultFlightRecorderCapacity = 256

// DefaultConfig returns the paper's testbed configuration.
func DefaultConfig() Config {
	return Config{
		Machine:        hw.DefaultConfig(),
		HeapFrames:     32768, // 128 MB hypervisor heap
		LoggingEnabled: true,
		RecoveryPrep:   true,
		Seed:           1,
	}
}

// Hypervisor is the simulated Xen-like hypervisor.
type Hypervisor struct {
	Clock   *simclock.Clock
	Machine *hw.Machine
	Locks   *locking.Registry
	Frames  *mm.FrameTable
	Heap    *mm.Heap
	Sched   *sched.Scheduler
	Timers  *xentime.Subsystem
	Domains *dom.List
	Statics *hypercall.Statics
	RNG     *rand.Rand

	// Tel is the always-on telemetry instance: metrics registry plus
	// flight recorder. Never nil on a constructed hypervisor.
	Tel *telemetry.Telemetry

	// Jrn is the causal recovery journal: the structured fault → detect →
	// attempt → disposition event stream. Never nil on a constructed
	// hypervisor.
	Jrn *journal.Journal

	// rngStream is RNG's underlying reseedable stream (see ReseedRun).
	rngStream *prng.Stream

	percpu []*PerCPU

	// Broker routes event-channel notifications between domains.
	Broker *evtchn.Broker

	// Cons is the hypervisor console ring (guarded by the console static
	// lock on the hypercall path).
	Cons *Console

	// nextGuestFrame is the bump allocator for guest memory regions.
	nextGuestFrame int

	// schedTicks marks the standing per-CPU scheduler-tick timers, whose
	// expiry expands into preemption steps inside the timer IRQ program.
	schedTicks map[*xentime.Timer]bool

	// crossCPUWaits tracks in-flight synchronous cross-CPU operations
	// (remote TLB-flush IPIs). See §III-C: with single-thread discard, a
	// requester waiting on a discarded responder blocks forever.
	crossCPUWaits []CrossCPUWait

	// injection
	injectArmed  bool
	injectBudget int64
	injectFn     InjectFunc

	// failure state
	failed       bool
	failReason   string
	panicHook    func(cpu int, reason string)
	nmiHook      func(cpu int)
	callDoneHook func(*hypercall.Call, error)
	eventHook    func(domID, port int)
	nicRxHook    func(hw.Packet)

	// recoveryEpoch increments whenever execution contexts are
	// discarded, letting interrupted entry/exit paths detect that their
	// context is gone.
	recoveryEpoch uint64

	// schedFluxProb is the discard-time metadata-flux probability (see
	// SetSchedFluxProb).
	schedFluxProb float64

	// tracer, when non-nil, receives hypervisor trace events.
	tracer func(TraceEvent)

	// paused is set while recovery is in progress: guest activity defers
	// and device interrupts stay pending.
	paused      bool
	afterResume []func()
	// pauseHook, when set, is invoked at every Pause — the adversarial
	// injector uses it to arm a fault-during-recovery trigger.
	pauseHook func()

	callSeq uint64

	// Structural corruption targets for the paper's remaining
	// recovery-failure causes (§VII-A); the others live in the real
	// subsystem structures (heap free list, domain links, timer heaps…).
	//
	// staticScratch models static-segment working state that microreboot
	// re-initializes during boot but microreset keeps in place — the
	// source of ReHype's small recovery-rate edge on non-failstop
	// faults. It holds a fixed boot-time pattern; flipped bits are
	// detectable damage (StaticScratchDamage) and ReinitStaticScratch
	// restores the pattern.
	//
	// recoveryVector models the state needed to even invoke the recovery
	// routine ("the recovery routine fails to be invoked due to the
	// corrupted hypervisor state" — failure cause 1, fatal to both
	// mechanisms). A damaged vector means recovery never starts, so no
	// audit or ladder rung can help.
	staticScratch  []uint64
	recoveryVector uint64

	// Stats accumulates counters for reports and tests.
	Stats Stats
}

// Stats holds run counters.
type Stats struct {
	Hypercalls     uint64
	Interrupts     uint64
	Panics         uint64
	Spins          uint64
	RetriedCalls   uint64
	DroppedCalls   uint64
	TimerIRQs      uint64
	DeviceIRQs     uint64
	InjectionFired bool
}

// CrossCPUWait is one in-flight synchronous cross-CPU operation.
type CrossCPUWait struct {
	Requester int
	Responder int
	Desc      string
}

// New constructs a hypervisor on a fresh machine and boots nothing yet;
// call Boot to bring up the platform and the PrivVM.
func New(clock *simclock.Clock, cfg Config) (*Hypervisor, error) {
	machine, err := hw.NewMachine(clock, cfg.Machine)
	if err != nil {
		return nil, fmt.Errorf("hv: %w", err)
	}
	if cfg.HeapFrames <= 0 || cfg.HeapFrames > machine.PageFrames() {
		return nil, fmt.Errorf("hv: invalid heap size %d frames", cfg.HeapFrames)
	}
	rngStream := prng.NewStream(cfg.Seed, 0xce11)
	h := &Hypervisor{
		Clock:          clock,
		Machine:        machine,
		Locks:          locking.NewRegistry(),
		Domains:        dom.NewList(),
		RNG:            rngStream.Rand,
		rngStream:      rngStream,
		schedTicks:     make(map[*xentime.Timer]bool),
		nextGuestFrame: cfg.HeapFrames,
	}
	flightCap := cfg.FlightRecorderCapacity
	if flightCap <= 0 {
		flightCap = DefaultFlightRecorderCapacity
	}
	h.Tel = telemetry.New(flightCap, clock.Now)
	h.Jrn = journal.New(journal.DefaultCapacity)
	opNames := make([]string, int(hypercall.OpIOEmulation)+1)
	for op := 1; op < len(opNames); op++ {
		opNames[op] = hypercall.Op(op).String()
	}
	h.Tel.OpNames = opNames
	h.staticScratch = make([]uint64, staticScratchWords)
	for i := range h.staticScratch {
		h.staticScratch[i] = staticScratchPattern(i)
	}
	h.recoveryVector = recoveryVectorMagic
	h.Broker = evtchn.NewBroker()
	h.Cons = NewConsole(256)
	h.Frames = mm.NewFrameTable(machine.PageFrames())
	h.Heap = mm.NewHeap(h.Frames, h.Locks, 0, cfg.HeapFrames)
	h.Sched = sched.NewScheduler(machine.NumCPUs(), h.Locks)
	h.Sched.SetTelemetry(h.Tel)
	h.Timers = xentime.NewSubsystem(machine.NumCPUs(), apicAdapter{machine})
	h.Statics = hypercall.NewStatics(h.Locks)

	for i := 0; i < machine.NumCPUs(); i++ {
		pc := &PerCPU{ID: i}
		pc.Env = &hypercall.Env{
			CPU:            i,
			Frames:         h.Frames,
			Heap:           h.Heap,
			Sched:          h.Sched,
			Timers:         h.Timers,
			Domains:        h.Domains,
			Broker:         h.Broker,
			Statics:        h.Statics,
			RNG:            h.RNG,
			Now:            clock.Now,
			Wake:           h.WakeVCPU,
			CreateDomain:   h.createDomainFromSpec,
			DestroyDomain:  h.DestroyDomain,
			Undo:           hypercall.NewUndoLog(),
			LoggingEnabled: cfg.LoggingEnabled,
			RecoveryPrep:   cfg.RecoveryPrep,
			Tel:            h.Tel,
		}
		pc.Env.Notify = func(domID, port int) {
			if h.eventHook != nil {
				h.eventHook(domID, port)
			}
		}
		pc.Env.ConsoleWrite = h.Cons.Write
		pc.Env.SwitchContext = h.switchRegisterContext
		h.percpu = append(h.percpu, pc)
	}
	machine.SetSink(h)
	return h, nil
}

// apicAdapter adapts hw CPUs to xentime.Programmer.
type apicAdapter struct{ m *hw.Machine }

func (a apicAdapter) ArmTimer(cpu int, d time.Duration) { a.m.CPU(cpu).ArmTimer(d) }
func (a apicAdapter) DisarmTimer(cpu int)               { a.m.CPU(cpu).DisarmTimer() }

// Boot brings up the platform: IO-APIC routing, standing timers (scheduler
// ticks, time sync), and the PrivVM (Dom0).
func (h *Hypervisor) Boot() error {
	h.Machine.IOAPIC().Route(hw.IRQBlock, 0, hw.VecBlock)
	h.Machine.IOAPIC().Route(hw.IRQNIC, 0, hw.VecNIC)
	// Record the software copy of the redirection table (the irq_desc
	// bookkeeping the IRQ-delivery detector reads back against).
	h.Machine.IOAPIC().RecordBootRoutes()

	for cpu := 0; cpu < h.Machine.NumCPUs(); cpu++ {
		t := h.Timers.AddTimer(cpu, fmt.Sprintf("sched_tick.cpu%d", cpu),
			h.Clock.Now()+schedTickPeriod, schedTickPeriod, nil)
		h.schedTicks[t] = true
		h.Timers.ProgramAPIC(cpu)
	}
	// Global time-calibration event (Xen's recurring time sync).
	h.Timers.AddTimer(0, "time_sync", h.Clock.Now()+timeSyncPeriod, timeSyncPeriod, func() {})
	h.Timers.ProgramAPIC(0)

	// PrivVM: Dom0 with one vCPU pinned to CPU 0.
	if err := h.CreateDomain(dom.PrivVMID, "Domain-0", privVMPages, 0, true); err != nil {
		return fmt.Errorf("hv: booting PrivVM: %w", err)
	}
	return nil
}

// Timing constants.
const (
	schedTickPeriod = 10 * time.Millisecond
	timeSyncPeriod  = time.Second
	privVMPages     = 16384 // 64 MB
)

// CreateDomain builds a domain: heap-backed struct with embedded locks, a
// guest memory region, and one vCPU pinned to pinCPU.
func (h *Hypervisor) CreateDomain(id int, name string, memPages, pinCPU int, priv bool) error {
	if err := h.Domains.CheckLinks(); err != nil {
		return err
	}
	if _, err := h.Domains.ByID(id); err == nil {
		return fmt.Errorf("hv: domain %d already exists", id)
	}
	if pinCPU < 0 || pinCPU >= h.Machine.NumCPUs() {
		return fmt.Errorf("hv: bad pin CPU %d", pinCPU)
	}
	if h.nextGuestFrame+memPages > h.Frames.Len() {
		return fmt.Errorf("hv: out of guest memory for domain %d", id)
	}
	obj := h.Heap.Alloc(domStructPages, fmt.Sprintf("domain%d", id))
	if obj == nil {
		return fmt.Errorf("hv: heap allocation failed for domain %d", id)
	}
	d := &dom.Domain{
		ID:       id,
		Name:     name,
		IsPriv:   priv,
		MemStart: h.nextGuestFrame,
		MemCount: memPages,
		TotPages: memPages / 2,
		Obj:      obj,
		Events:   evtchn.NewTable(id, evtchn.DefaultPorts),
		GrantTab: grant.NewTable(id, grant.DefaultRefs),
		Maptrack: grant.NewMaptrack(id),
	}
	h.Broker.Register(d.Events)
	// Every domain binds a port for block-device completions.
	if _, err := d.Events.BindVIRQ(evtchn.VIRQBlock); err != nil {
		h.Broker.Unregister(id)
		h.Heap.Free(obj)
		return fmt.Errorf("hv: domain %d evtchn: %w", id, err)
	}
	// Non-privileged domains get an I/O ring channel to the PrivVM
	// backend (allocated unbound on the PrivVM side, bound here).
	if !priv {
		if priv0 := h.Broker.Table(dom.PrivVMID); priv0 != nil {
			back, err := priv0.AllocUnbound(id)
			if err != nil {
				h.Broker.Unregister(id)
				h.Heap.Free(obj)
				return fmt.Errorf("hv: domain %d ring: %w", id, err)
			}
			front, err := h.Broker.BindInterdomain(id, dom.PrivVMID, back)
			if err != nil {
				h.Broker.Unregister(id)
				h.Heap.Free(obj)
				return fmt.Errorf("hv: domain %d ring: %w", id, err)
			}
			d.RingPort = front
		}
	}
	d.PageAllocLock = h.Heap.AddLock(obj, "page_alloc_lock")
	d.GrantLock = h.Heap.AddLock(obj, "grant_lock")
	if err := h.Frames.AssignRange(d.MemStart, d.MemCount, id, mm.FrameGuest); err != nil {
		h.Heap.Free(obj)
		return fmt.Errorf("hv: domain %d memory: %w", id, err)
	}
	h.nextGuestFrame += memPages
	d.VCPUs = append(d.VCPUs, h.Sched.AddVCPU(id, 0, pinCPU))
	h.Domains.Insert(d)
	// If the pinned CPU is idle, run the new vCPU immediately (the
	// paper's configurations pin one vCPU per physical CPU).
	if h.Sched.Curr(pinCPU) == nil {
		if op := h.Sched.BeginSwitch(pinCPU); op != nil {
			op.Complete()
		}
		h.Machine.CPU(pinCPU).Halted = false
	}
	return nil
}

const domStructPages = 2

// createDomainFromSpec adapts CreateDomain for domctl.
func (h *Hypervisor) createDomainFromSpec(spec hypercall.CreateSpec) error {
	return h.CreateDomain(spec.ID, spec.Name, spec.MemPages, spec.PinCPU, false)
}

// DestroyDomain tears a domain down: vCPU removal, heap free, list unlink.
// Guest frames are left assigned (scrubbing is lazy in Xen too).
func (h *Hypervisor) DestroyDomain(id int) error {
	d, err := h.Domains.ByID(id)
	if err != nil {
		return err
	}
	for _, v := range d.VCPUs {
		h.Sched.RemoveVCPU(v)
	}
	if d.Obj != nil {
		h.Heap.Free(d.Obj)
	}
	h.Broker.Unregister(id)
	h.Domains.Remove(d)
	return nil
}

// Domain returns a domain by ID (hard lookup for internal wiring; does not
// model a hypervisor code path).
func (h *Hypervisor) Domain(id int) (*dom.Domain, error) { return h.Domains.ByID(id) }

// RestartPrivVM reboots the PrivVM from its boot image: the old Dom0 (dead
// or hung) is torn down, a fresh Dom0 is created exactly as Boot creates
// it, and every surviving AppVM's I/O ring channel is re-bound to the new
// backend's event-channel table. Returns the number of AppVM rings
// re-attached. This is the state-manipulation half of the PrivVM-restart
// recovery rung; the engine charges its latency separately.
//
// The old Dom0 is located through the preserved domain pointers rather
// than the linked list (the list may be damaged in the same run), and
// Remove/Insert relink the list as a side effect.
func (h *Hypervisor) RestartPrivVM() (int, error) {
	var d0 *dom.Domain
	for _, d := range h.Domains.Preserved() {
		if d.ID == dom.PrivVMID {
			d0 = d
			break
		}
	}
	reuseStart := -1
	if d0 != nil {
		if d0.MemCount > 0 {
			reuseStart = d0.MemStart
		}
		for _, v := range d0.VCPUs {
			h.Sched.RemoveVCPU(v)
		}
		if d0.Obj != nil {
			h.Heap.Free(d0.Obj)
		}
		h.Broker.Unregister(dom.PrivVMID)
		h.Domains.Remove(d0)
	}
	// Reuse the dead Dom0's guest-frame range: the bump allocator never
	// reclaims, so carving a fresh 64 MB per restart would leak the old
	// range's descriptors and eventually exhaust guest memory.
	if reuseStart >= 0 {
		saved := h.nextGuestFrame
		h.nextGuestFrame = reuseStart
		err := h.CreateDomain(dom.PrivVMID, "Domain-0", privVMPages, 0, true)
		if h.nextGuestFrame < saved {
			h.nextGuestFrame = saved
		}
		if err != nil {
			return 0, fmt.Errorf("hv: PrivVM restart: %w", err)
		}
	} else if err := h.CreateDomain(dom.PrivVMID, "Domain-0", privVMPages, 0, true); err != nil {
		return 0, fmt.Errorf("hv: PrivVM restart: %w", err)
	}
	priv0 := h.Broker.Table(dom.PrivVMID)
	reattached := 0
	for _, d := range h.Domains.Preserved() {
		if d.IsPriv || d.Failed {
			continue
		}
		// Drop the frontend port that pointed into the destroyed backend
		// table, then rebind against the new one — the same wiring
		// CreateDomain performs for a fresh AppVM.
		if d.RingPort > 0 {
			_ = d.Events.Close(d.RingPort)
			d.RingPort = 0
		}
		back, err := priv0.AllocUnbound(d.ID)
		if err != nil {
			continue
		}
		front, err := h.Broker.BindInterdomain(d.ID, dom.PrivVMID, back)
		if err != nil {
			continue
		}
		d.RingPort = front
		reattached++
	}
	h.Tel.Counters[telemetry.CtrPrivVMRestarts]++
	return reattached, nil
}

// WakeVCPU makes a vCPU runnable and un-halts its CPU.
func (h *Hypervisor) WakeVCPU(v *sched.VCPU) {
	h.Sched.Wake(v)
	if v.Processor >= 0 && v.Processor < len(h.percpu) {
		h.Machine.CPU(v.Processor).Halted = false
	}
}

// Failed reports whether the hypervisor has failed terminally (a panic
// with no recovery hook, or a declared unrecoverable state).
func (h *Hypervisor) Failed() (bool, string) { return h.failed, h.failReason }

// MarkFailed records terminal hypervisor failure and halts the simulation.
func (h *Hypervisor) MarkFailed(reason string) {
	if h.failed {
		return
	}
	h.failed = true
	h.failReason = reason
	h.Clock.Halt()
}

// ClearFailed un-marks a failure and resumes event dispatching. MarkFailed
// is no longer unconditionally terminal: a recovery engine whose escalation
// ladder still has a rung clears the failed attempt's mark so the next
// mechanism gets a live simulation to repair. Only engines call this, and
// only when another attempt is about to start.
func (h *Hypervisor) ClearFailed() {
	h.failed = false
	h.failReason = ""
	h.Clock.Resume()
}

// SetPanicHook installs the detection callback invoked on hypervisor
// panic (assertion failure / fatal exception).
func (h *Hypervisor) SetPanicHook(fn func(cpu int, reason string)) { h.panicHook = fn }

// SetNMIHook installs the watchdog NMI callback.
func (h *Hypervisor) SetNMIHook(fn func(cpu int)) { h.nmiHook = fn }

// SetCallDoneHook installs the guest-completion callback.
func (h *Hypervisor) SetCallDoneHook(fn func(*hypercall.Call, error)) { h.callDoneHook = fn }

// PerCPU returns CPU i's hypervisor-private state.
func (h *Hypervisor) PerCPU(i int) *PerCPU { return h.percpu[i] }

// NumCPUs returns the physical CPU count.
func (h *Hypervisor) NumCPUs() int { return len(h.percpu) }
