package xentime

import (
	"testing"
	"testing/quick"
	"time"
)

// fakeAPIC records programming operations.
type fakeAPIC struct {
	armed    map[int]bool
	deadline map[int]time.Duration
}

func newFakeAPIC() *fakeAPIC {
	return &fakeAPIC{armed: make(map[int]bool), deadline: make(map[int]time.Duration)}
}

func (f *fakeAPIC) ArmTimer(cpu int, d time.Duration) {
	f.armed[cpu] = true
	f.deadline[cpu] = d
}

func (f *fakeAPIC) DisarmTimer(cpu int) { f.armed[cpu] = false }

func TestAddTimerAndProgramAPIC(t *testing.T) {
	apic := newFakeAPIC()
	s := NewSubsystem(2, apic)
	s.AddTimer(0, "a", 10*time.Millisecond, 0, nil)
	s.AddTimer(0, "b", 5*time.Millisecond, 0, nil)
	s.ProgramAPIC(0)
	if !apic.armed[0] || apic.deadline[0] != 5*time.Millisecond {
		t.Fatalf("APIC: armed=%v deadline=%v, want armed at 5ms", apic.armed[0], apic.deadline[0])
	}
	if d, ok := s.NextDeadline(0); !ok || d != 5*time.Millisecond {
		t.Fatalf("NextDeadline = %v,%v", d, ok)
	}
	if s.PendingCount(0) != 2 {
		t.Fatalf("PendingCount = %d, want 2", s.PendingCount(0))
	}
}

func TestProgramAPICDisarmsWhenEmpty(t *testing.T) {
	apic := newFakeAPIC()
	apic.armed[1] = true
	s := NewSubsystem(2, apic)
	s.ProgramAPIC(1)
	if apic.armed[1] {
		t.Fatal("APIC still armed with empty heap")
	}
}

func TestAddTimerBadCPUPanics(t *testing.T) {
	s := NewSubsystem(1, newFakeAPIC())
	defer func() {
		if recover() == nil {
			t.Fatal("bad CPU did not panic")
		}
	}()
	s.AddTimer(3, "x", 0, 0, nil)
}

func TestPopDueReturnsOnlyDueInOrder(t *testing.T) {
	s := NewSubsystem(1, newFakeAPIC())
	s.AddTimer(0, "late", 20*time.Millisecond, 0, nil)
	s.AddTimer(0, "first", 5*time.Millisecond, 0, nil)
	s.AddTimer(0, "second", 10*time.Millisecond, 0, nil)
	due := s.PopDue(0, 10*time.Millisecond)
	if len(due) != 2 || due[0].Name != "first" || due[1].Name != "second" {
		t.Fatalf("due = %v", due)
	}
	for _, d := range due {
		if d.Active() {
			t.Fatalf("popped timer %q still active", d.Name)
		}
	}
	if s.PendingCount(0) != 1 {
		t.Fatalf("PendingCount = %d, want 1", s.PendingCount(0))
	}
}

func TestFinishTimerOneShotForgotten(t *testing.T) {
	s := NewSubsystem(1, newFakeAPIC())
	tm := s.AddTimer(0, "once", time.Millisecond, 0, nil)
	due := s.PopDue(0, time.Millisecond)
	s.FinishTimer(due[0], time.Millisecond)
	if tm.Fires != 1 {
		t.Fatalf("Fires = %d, want 1", tm.Fires)
	}
	if tm.Active() {
		t.Fatal("one-shot re-armed")
	}
	if len(s.InactiveRecurring()) != 0 {
		t.Fatal("one-shot appears in InactiveRecurring")
	}
}

func TestFinishTimerRecurringRearms(t *testing.T) {
	s := NewSubsystem(1, newFakeAPIC())
	tm := s.AddTimer(0, "tick", 100*time.Millisecond, 100*time.Millisecond, nil)
	due := s.PopDue(0, 100*time.Millisecond)
	s.FinishTimer(due[0], 100*time.Millisecond)
	if !tm.Active() {
		t.Fatal("recurring timer not re-armed")
	}
	if tm.Deadline != 200*time.Millisecond {
		t.Fatalf("Deadline = %v, want 200ms", tm.Deadline)
	}
}

func TestInactiveRecurringDetectsDiscardedHandler(t *testing.T) {
	// Models the §V-A hazard: the handler popped the recurring timer and
	// was then discarded before FinishTimer.
	s := NewSubsystem(1, newFakeAPIC())
	s.AddTimer(0, "timesync", 50*time.Millisecond, time.Second, nil)
	s.PopDue(0, 50*time.Millisecond)
	// ... execution thread discarded here ...
	inact := s.InactiveRecurring()
	if len(inact) != 1 || inact[0].Name != "timesync" {
		t.Fatalf("InactiveRecurring = %v", inact)
	}
	if n := s.ReactivateRecurring(60 * time.Millisecond); n != 1 {
		t.Fatalf("reactivated %d, want 1", n)
	}
	if inact[0].Deadline != 60*time.Millisecond+time.Second {
		t.Fatalf("reactivated deadline = %v", inact[0].Deadline)
	}
	if len(s.InactiveRecurring()) != 0 {
		t.Fatal("still inactive after reactivation")
	}
}

func TestReactivateRecurringIgnoresActive(t *testing.T) {
	s := NewSubsystem(1, newFakeAPIC())
	s.AddTimer(0, "tick", 10*time.Millisecond, 10*time.Millisecond, nil)
	if n := s.ReactivateRecurring(0); n != 0 {
		t.Fatalf("reactivated %d active timers", n)
	}
}

func TestStopTimer(t *testing.T) {
	s := NewSubsystem(1, newFakeAPIC())
	tm := s.AddTimer(0, "x", 10*time.Millisecond, time.Second, nil)
	s.StopTimer(tm)
	if s.PendingCount(0) != 0 {
		t.Fatal("stopped timer still queued")
	}
	if len(s.InactiveRecurring()) != 0 {
		t.Fatal("stopped timer still tracked")
	}
	s.StopTimer(tm) // idempotent
}

func TestStopInactiveTimerForgotten(t *testing.T) {
	s := NewSubsystem(1, newFakeAPIC())
	tm := s.AddTimer(0, "x", time.Millisecond, time.Second, nil)
	s.PopDue(0, time.Millisecond)
	s.StopTimer(tm)
	if len(s.InactiveRecurring()) != 0 {
		t.Fatal("stopped inactive timer still tracked")
	}
}

func TestPerCPUIsolation(t *testing.T) {
	s := NewSubsystem(4, newFakeAPIC())
	s.AddTimer(2, "only-cpu2", time.Millisecond, 0, nil)
	if s.PendingCount(0) != 0 || s.PendingCount(2) != 1 {
		t.Fatal("timer leaked across CPUs")
	}
	if due := s.PopDue(0, time.Second); len(due) != 0 {
		t.Fatal("PopDue on wrong CPU returned timers")
	}
}

func TestNumCPUs(t *testing.T) {
	if got := NewSubsystem(7, newFakeAPIC()).NumCPUs(); got != 7 {
		t.Fatalf("NumCPUs = %d, want 7", got)
	}
}

// TestPropertyPopDueMonotone: popped deadlines are sorted and all <= now;
// remaining heap deadlines are > now.
func TestPropertyPopDueMonotone(t *testing.T) {
	f := func(deadlinesMS []uint16, nowMS uint16) bool {
		s := NewSubsystem(1, newFakeAPIC())
		for _, d := range deadlinesMS {
			s.AddTimer(0, "p", time.Duration(d)*time.Millisecond, 0, nil)
		}
		now := time.Duration(nowMS) * time.Millisecond
		due := s.PopDue(0, now)
		for i, d := range due {
			if d.Deadline > now {
				return false
			}
			if i > 0 && due[i-1].Deadline > d.Deadline {
				return false
			}
		}
		if d, ok := s.NextDeadline(0); ok && d <= now {
			return false
		}
		return len(due)+s.PendingCount(0) == len(deadlinesMS)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRecurringNeverLostWithReactivation: regardless of where the
// pop/finish sequence is abandoned, ReactivateRecurring restores every
// recurring timer to the heap.
func TestPropertyRecurringNeverLostWithReactivation(t *testing.T) {
	f := func(nTimers uint8, finishMask uint16) bool {
		s := NewSubsystem(1, newFakeAPIC())
		count := int(nTimers%8) + 1
		for i := 0; i < count; i++ {
			s.AddTimer(0, "r", time.Millisecond, 50*time.Millisecond, nil)
		}
		due := s.PopDue(0, time.Millisecond)
		for i, tm := range due {
			if finishMask&(1<<uint(i)) != 0 {
				s.FinishTimer(tm, time.Millisecond)
			}
			// else: abandoned mid-handler
		}
		s.ReactivateRecurring(2 * time.Millisecond)
		return s.PendingCount(0) == count && len(s.InactiveRecurring()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReactivateSingleTimer(t *testing.T) {
	apic := newFakeAPIC()
	s := NewSubsystem(2, apic)
	tick := s.AddTimer(1, "watchdog-tick", 10*time.Millisecond, 10*time.Millisecond, nil)
	bystander := s.AddTimer(1, "sched-tick", 10*time.Millisecond, 10*time.Millisecond, nil)

	// Pop both into the hazard state (inactive but still registered), as
	// a discarded interrupt-handler thread leaves them.
	if due := s.PopDue(1, 10*time.Millisecond); len(due) != 2 {
		t.Fatalf("popped %d timers, want 2", len(due))
	}
	if tick.Active() || bystander.Active() {
		t.Fatal("popped timers still active")
	}

	// Reactivate revives exactly the given timer, one period from now.
	if !s.Reactivate(tick, 25*time.Millisecond) {
		t.Fatal("Reactivate refused an inactive recurring timer")
	}
	if !tick.Active() || tick.Deadline != 35*time.Millisecond {
		t.Fatalf("tick: active=%v deadline=%v, want active at 35ms", tick.Active(), tick.Deadline)
	}
	if bystander.Active() {
		t.Fatal("Reactivate revived a timer it was not given")
	}
	if !apic.armed[1] || apic.deadline[1] != 35*time.Millisecond {
		t.Fatalf("APIC not reprogrammed: armed=%v deadline=%v", apic.armed[1], apic.deadline[1])
	}

	// Already-active, one-shot and stopped timers are all refused.
	if s.Reactivate(tick, 40*time.Millisecond) {
		t.Fatal("Reactivate accepted an active timer")
	}
	oneShot := s.AddTimer(0, "once", 5*time.Millisecond, 0, nil)
	s.PopDue(0, 5*time.Millisecond)
	if s.Reactivate(oneShot, 10*time.Millisecond) {
		t.Fatal("Reactivate accepted a one-shot timer")
	}
	s.StopTimer(bystander)
	if s.Reactivate(bystander, 40*time.Millisecond) {
		t.Fatal("Reactivate accepted a stopped (unregistered) timer")
	}
}

// TestReaddStaleActiveFlagGuard is the regression test for the Readd
// registration guard: a reusable timer can carry a stale active flag and
// heap index from a subsystem a snapshot restore has since discarded.
// Readd into the restored subsystem must key its "still queued" check on
// registration in s.all, not the record's flag alone — otherwise it
// heap.Removes whatever innocent timer sits at the stale index (or panics
// on a shorter heap).
func TestReaddStaleActiveFlagGuard(t *testing.T) {
	// Arm the timer in a pre-restore subsystem so it carries a live flag
	// and index.
	old := NewSubsystem(2, newFakeAPIC())
	stale := NewTimer(0, "wakeup", nil)
	old.Readd(stale, 0, 10*time.Millisecond, 0)
	if !stale.Active() {
		t.Fatal("setup: timer not armed in the old subsystem")
	}

	// The restored subsystem never heard of it, but has its own timer at
	// the same heap position.
	s := NewSubsystem(2, newFakeAPIC())
	innocent := s.AddTimer(0, "victim", 20*time.Millisecond, 0, nil)

	s.Readd(stale, 0, 15*time.Millisecond, 0)

	if !innocent.Active() {
		t.Fatal("Readd of a stale-active unregistered timer evicted a registered one")
	}
	if d, ok := s.NextDeadline(0); !ok || d != 15*time.Millisecond {
		t.Fatalf("NextDeadline = %v,%v, want 15ms from the re-added timer", d, ok)
	}
	due := s.PopDue(0, 20*time.Millisecond)
	if len(due) != 2 || due[0] != stale || due[1] != innocent {
		t.Fatalf("PopDue returned %d timer(s), want stale then innocent", len(due))
	}

	// Same guard on the empty-heap shape: must not panic reaching for a
	// stale index past the heap's end.
	empty := NewSubsystem(1, newFakeAPIC())
	orphan := NewTimer(0, "orphan", nil)
	old.Readd(orphan, 0, 5*time.Millisecond, 0)
	empty.Readd(orphan, 0, 5*time.Millisecond, 0)
	if n := empty.heaps[0].Len(); n != 1 {
		t.Fatalf("empty-subsystem Readd queued %d timers, want 1", n)
	}
}
