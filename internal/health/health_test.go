package health

import (
	"reflect"
	"testing"
)

func clean() Sample {
	return Sample{Recovered: true, Attempts: 1, MaxAttempts: 3}
}

func TestHealthyStaysHealthy(t *testing.T) {
	m := New(Config{})
	for i := 0; i < 100; i++ {
		if st := m.Observe(clean()); st != Healthy {
			t.Fatalf("episode %d: state = %v, want healthy", i+1, st)
		}
	}
	if len(m.Transitions()) != 0 {
		t.Errorf("clean host recorded transitions: %v", m.Transitions())
	}
}

func TestTerminalFailureExhaustsAndSticks(t *testing.T) {
	m := New(Config{})
	m.Observe(clean())
	if st := m.Observe(Sample{Recovered: false, Attempts: 3, MaxAttempts: 3}); st != Exhausted {
		t.Fatalf("state after terminal failure = %v, want exhausted", st)
	}
	// Sticky: a long quiet stretch (window fully refilled with clean
	// episodes) must not resurrect the host.
	for i := 0; i < 40; i++ {
		if st := m.Observe(clean()); st != Exhausted {
			t.Fatalf("exhausted un-stuck after %d clean episodes: %v", i+1, st)
		}
	}
	tr := m.Transitions()
	if len(tr) != 1 || tr[0].To != "exhausted" || tr[0].Episode != 2 {
		t.Errorf("unexpected transitions: %v", tr)
	}
}

func TestDegradedVerdictPressure(t *testing.T) {
	m := New(Config{})
	s := clean()
	s.DegradedVerdicts = 1
	if st := m.Observe(s); st != Healthy {
		t.Fatalf("one degraded verdict already degrades: %v", st)
	}
	if st := m.Observe(s); st != Degraded { // default MaxDegradedVerdicts=2
		t.Fatalf("two degraded verdicts in window: state = %v, want degraded", st)
	}
	// The window rolls: once the degraded episodes age out, the host
	// returns to healthy (degradation, unlike exhaustion, is recoverable).
	for i := 0; i < 16; i++ {
		m.Observe(clean())
	}
	if st := m.State(); st != Healthy {
		t.Errorf("state after verdicts aged out = %v, want healthy", st)
	}
	tr := m.Transitions()
	if len(tr) != 2 || tr[0].To != "degraded" || tr[1].To != "healthy" {
		t.Errorf("unexpected transitions: %v", tr)
	}
}

func TestLadderDepthPressure(t *testing.T) {
	m := New(Config{})
	top := Sample{Recovered: true, Attempts: 3, MaxAttempts: 3}
	m.Observe(top)
	if st := m.Observe(top); st != Degraded { // default MaxFullLadder=2
		t.Fatalf("two top-rung climbs: state = %v, want degraded", st)
	}
}

func TestSingleRungLadderIsNotDepthPressure(t *testing.T) {
	m := New(Config{})
	// MaxAttempts=1 means every recovery "uses the whole ladder"; that
	// must not count as ladder-depth pressure.
	for i := 0; i < 20; i++ {
		if st := m.Observe(Sample{Recovered: true, Attempts: 1, MaxAttempts: 1}); st != Healthy {
			t.Fatalf("single-rung ladder degraded at episode %d: %v", i+1, st)
		}
	}
}

func TestSLODamagePressure(t *testing.T) {
	m := New(Config{MaxSLODamageUsPerEpisode: 1_000_000})
	s := clean()
	s.SLODamageUs = 2_000_000
	if st := m.Observe(s); st != Degraded {
		t.Fatalf("mean damage 2x limit: state = %v, want degraded", st)
	}
}

func TestSuccessRateFloor(t *testing.T) {
	// MaxFailures=3 keeps the exhaustion rule out of the way so the
	// permille floor fires first.
	m := New(Config{MinSuccessPermille: 900, MaxFailures: 3})
	for i := 0; i < 9; i++ {
		m.Observe(clean())
	}
	// 1 failure in a 10-episode window is exactly the 900‰ floor — still
	// healthy; the rule is strict.
	if st := m.Observe(Sample{Recovered: false, Attempts: 1, MaxAttempts: 3}); st != Healthy {
		t.Fatalf("exactly at 900‰ floor: state = %v, want healthy", st)
	}
	// A second failure (2/12) drops the window below the floor.
	m.Observe(clean())
	if st := m.Observe(Sample{Recovered: false, Attempts: 1, MaxAttempts: 3}); st != Degraded {
		t.Fatalf("2/12 failed (below 900‰ floor): state = %v, want degraded", st)
	}
}

func TestReplayDeterminism(t *testing.T) {
	samples := []Sample{
		clean(),
		{Recovered: true, Attempts: 3, MaxAttempts: 3, DegradedVerdicts: 1},
		{Recovered: true, Attempts: 3, MaxAttempts: 3, DegradedVerdicts: 1},
		clean(),
		{Recovered: false, Attempts: 3, MaxAttempts: 3},
	}
	a := Replay(Config{}, samples)
	b := Replay(Config{}, samples)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay not deterministic:\n%+v\nvs\n%+v", a, b)
	}
	if a.Final != "exhausted" || a.Episodes != 5 || a.Failures != 1 ||
		a.FullLadder != 3 || a.DegradedVerdicts != 2 {
		t.Errorf("unexpected report: %+v", a)
	}
	if len(a.Transitions) == 0 || a.Transitions[len(a.Transitions)-1].To != "exhausted" {
		t.Errorf("unexpected transitions: %v", a.Transitions)
	}
}

func TestReplayEmpty(t *testing.T) {
	rep := Replay(Config{}, nil)
	if rep.Final != "healthy" || rep.Episodes != 0 || rep.Transitions != nil {
		t.Errorf("unexpected empty report: %+v", rep)
	}
	if got := rep.Format(); got != "host health: healthy (no recovery episodes)\n" {
		t.Errorf("unexpected format: %q", got)
	}
}
