package dom

import (
	"errors"
	"math/rand/v2"
	"testing"

	"nilihype/internal/locking"
	"nilihype/internal/sched"
)

func TestFailFirstReasonWins(t *testing.T) {
	d := &Domain{ID: 1}
	d.Fail("first")
	d.Fail("second")
	if !d.Failed || d.FailReason != "first" {
		t.Fatalf("failed=%v reason=%q", d.Failed, d.FailReason)
	}
}

func TestUpcallVCPU(t *testing.T) {
	reg := locking.NewRegistry()
	s := sched.NewScheduler(1, reg)
	v := s.AddVCPU(1, 0, 0)
	d := &Domain{ID: 1, VCPUs: []*sched.VCPU{v}}
	if got := d.UpcallVCPU(); got != v {
		t.Fatalf("UpcallVCPU = %v, want vcpu", got)
	}
	empty := &Domain{ID: 2}
	if got := empty.UpcallVCPU(); got != nil {
		t.Fatal("UpcallVCPU with no vCPUs returned a vCPU")
	}
}

func TestListInsertRemoveByID(t *testing.T) {
	l := NewList()
	a := &Domain{ID: 0, IsPriv: true}
	b := &Domain{ID: 1}
	l.Insert(a)
	l.Insert(b)
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	got, err := l.ByID(1)
	if err != nil || got != b {
		t.Fatalf("ByID(1) = %v, %v", got, err)
	}
	if _, err := l.ByID(9); err == nil {
		t.Fatal("ByID(9) succeeded")
	}
	l.Remove(a)
	if l.Len() != 1 {
		t.Fatalf("Len after remove = %d", l.Len())
	}
	l.Remove(a) // idempotent
	all, err := l.All()
	if err != nil || len(all) != 1 || all[0] != b {
		t.Fatalf("All = %v, %v", all, err)
	}
}

func TestListCorruptionFailsTraversals(t *testing.T) {
	// Exercise every structural damage mode against the traversals that
	// must detect it; Rebuild must repair each one from the preserved
	// structures.
	damage := []struct {
		name  string
		apply func(l *List, a, b, c *Domain)
	}{
		{"poisoned link", func(l *List, a, b, c *Domain) { a.next = poisonDomain }},
		{"truncation", func(l *List, a, b, c *Domain) { a.next = nil }},
		{"cycle", func(l *List, a, b, c *Domain) { b.next = l.head }},
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			l := NewList()
			a, b, c := &Domain{ID: 0}, &Domain{ID: 1}, &Domain{ID: 2}
			l.Insert(a)
			l.Insert(b)
			l.Insert(c)
			d.apply(l, a, b, c)
			if err := l.CheckLinks(); !errors.Is(err, ErrListCorrupted) {
				t.Fatalf("CheckLinks err = %v, want ErrListCorrupted", err)
			}
			// The walk fails when it crosses the damage point: domain 2
			// sits past every damage site above.
			if _, err := l.ByID(2); !errors.Is(err, ErrListCorrupted) {
				t.Fatalf("ByID err = %v, want ErrListCorrupted", err)
			}
			if _, err := l.All(); !errors.Is(err, ErrListCorrupted) {
				t.Fatalf("All err = %v, want ErrListCorrupted", err)
			}
			if l.Len() != 3 {
				t.Fatal("Len must work on corrupted list (separate bookkeeping)")
			}
			if got := len(l.Preserved()); got != 3 {
				t.Fatalf("Preserved = %d domains, want 3", got)
			}
			if fixed := l.Rebuild(); fixed == 0 {
				t.Fatal("Rebuild fixed no links on a damaged list")
			}
			if err := l.CheckLinks(); err != nil {
				t.Fatalf("CheckLinks after rebuild: %v", err)
			}
			if _, err := l.ByID(2); err != nil {
				t.Fatalf("ByID after rebuild: %v", err)
			}
		})
	}
}

func TestCorruptLinkIsDetectable(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for i := 0; i < 50; i++ {
		l := NewList()
		l.Insert(&Domain{ID: 0})
		l.Insert(&Domain{ID: 1})
		l.Insert(&Domain{ID: 2})
		desc := l.CorruptLink(rng)
		if err := l.CheckLinks(); !errors.Is(err, ErrListCorrupted) {
			t.Fatalf("iteration %d (%s): CheckLinks err = %v, want ErrListCorrupted", i, desc, err)
		}
		l.Rebuild()
		if err := l.CheckLinks(); err != nil {
			t.Fatalf("iteration %d (%s): rebuild left damage: %v", i, desc, err)
		}
	}
	empty := NewList()
	if desc := empty.CorruptLink(rng); desc != "domain list empty; nothing to damage" {
		t.Fatalf("empty-list CorruptLink = %q", desc)
	}
}
