package hv

import (
	"strings"
	"testing"
	"time"

	"nilihype/internal/hw"
	"nilihype/internal/hypercall"
	"nilihype/internal/sched"
	"nilihype/internal/simclock"
)

func testConfig() Config {
	return Config{
		Machine:        hw.Config{CPUs: 4, MemoryMB: 512, BlockSvc: 100 * time.Microsecond, NICLat: 10 * time.Microsecond},
		HeapFrames:     4096,
		LoggingEnabled: true,
		RecoveryPrep:   true,
		Seed:           42,
	}
}

func newBooted(t *testing.T) (*Hypervisor, *simclock.Clock) {
	t.Helper()
	clk := simclock.New()
	h, err := New(clk, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	return h, clk
}

// addAppVM creates a 16MB app domain pinned to cpu.
func addAppVM(t *testing.T, h *Hypervisor, id, cpu int) {
	t.Helper()
	if err := h.CreateDomain(id, "app", 4096, cpu, false); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidatesConfig(t *testing.T) {
	clk := simclock.New()
	cfg := testConfig()
	cfg.HeapFrames = 0
	if _, err := New(clk, cfg); err == nil {
		t.Fatal("accepted zero heap")
	}
	cfg = testConfig()
	cfg.Machine.CPUs = 0
	if _, err := New(clk, cfg); err == nil {
		t.Fatal("accepted zero CPUs")
	}
	cfg = testConfig()
	cfg.HeapFrames = 1 << 30
	if _, err := New(clk, cfg); err == nil {
		t.Fatal("accepted heap larger than memory")
	}
}

func TestBootCreatesPrivVMAndTimers(t *testing.T) {
	h, _ := newBooted(t)
	d, err := h.Domain(0)
	if err != nil {
		t.Fatalf("no PrivVM: %v", err)
	}
	if !d.IsPriv || len(d.VCPUs) != 1 {
		t.Fatalf("PrivVM = %+v", d)
	}
	// PrivVM's vCPU runs on CPU 0 immediately.
	if v := h.Sched.Curr(0); v == nil || v.Domain != 0 {
		t.Fatalf("Curr(0) = %v, want PrivVM vCPU", v)
	}
	// Every CPU has a sched tick, CPU0 also the time sync.
	for cpu := 0; cpu < h.NumCPUs(); cpu++ {
		if h.Timers.PendingCount(cpu) == 0 {
			t.Fatalf("cpu%d has no standing timers", cpu)
		}
		if !h.Machine.CPU(cpu).TimerArmed() {
			t.Fatalf("cpu%d APIC not armed after boot", cpu)
		}
	}
}

func TestCreateDomainValidation(t *testing.T) {
	h, _ := newBooted(t)
	if err := h.CreateDomain(0, "dup", 128, 1, false); err == nil {
		t.Fatal("duplicate domain ID accepted")
	}
	if err := h.CreateDomain(5, "badcpu", 128, 99, false); err == nil {
		t.Fatal("bad pin CPU accepted")
	}
	if err := h.CreateDomain(6, "toobig", 1<<28, 1, false); err == nil {
		t.Fatal("oversized domain accepted")
	}
}

func TestCreateDestroyDomainLifecycle(t *testing.T) {
	h, _ := newBooted(t)
	heapBefore := h.Heap.FreePages()
	addAppVM(t, h, 1, 1)
	if h.Heap.FreePages() >= heapBefore {
		t.Fatal("domain struct not heap-allocated")
	}
	if v := h.Sched.Curr(1); v == nil || v.Domain != 1 {
		t.Fatal("new domain's vCPU not running on its pinned CPU")
	}
	if err := h.DestroyDomain(1); err != nil {
		t.Fatal(err)
	}
	if h.Heap.FreePages() != heapBefore {
		t.Fatal("domain struct not freed")
	}
	if _, err := h.Domain(1); err == nil {
		t.Fatal("domain still listed")
	}
	if v := h.Sched.Curr(1); v != nil {
		t.Fatal("destroyed vCPU still current")
	}
}

func TestDispatchCompletesAndNotifies(t *testing.T) {
	h, _ := newBooted(t)
	addAppVM(t, h, 1, 1)
	var done []*hypercall.Call
	h.SetCallDoneHook(func(c *hypercall.Call, err error) { done = append(done, c) })
	d, _ := h.Domain(1)
	frame := uint64(d.MemStart + 10)
	h.Dispatch(1, &hypercall.Call{Op: hypercall.OpMMUUpdate, Dom: 1, Args: [4]uint64{hypercall.MMUPin, frame}})
	if len(done) != 1 {
		t.Fatalf("done = %v, want 1 completion", done)
	}
	if h.Stats.Hypercalls != 1 {
		t.Fatalf("Stats.Hypercalls = %d", h.Stats.Hypercalls)
	}
	f := h.Frames.Frame(int(frame))
	if f.UseCount != 1 || !f.Validated {
		t.Fatalf("frame after pin: %+v", *f)
	}
	if h.Machine.CPU(1).Cycles.Hypervisor == 0 || h.Machine.CPU(1).HypInstrs == 0 {
		t.Fatal("no hypervisor cycles charged")
	}
}

func TestDispatchAssertionPanics(t *testing.T) {
	h, _ := newBooted(t)
	addAppVM(t, h, 1, 1)
	var panics []string
	h.SetPanicHook(func(cpu int, reason string) { panics = append(panics, reason) })
	// Pin an out-of-range frame: the handler asserts.
	h.Dispatch(1, &hypercall.Call{Op: hypercall.OpMMUUpdate, Dom: 1, Args: [4]uint64{hypercall.MMUPin, 1 << 40}})
	if len(panics) != 1 || !strings.Contains(panics[0], "ASSERT") {
		t.Fatalf("panics = %v", panics)
	}
	if h.IRQCount(1) == 0 {
		t.Fatal("panic did not raise local_irq_count (exception context)")
	}
}

func TestPanicWithoutHookFailsTerminally(t *testing.T) {
	h, clk := newBooted(t)
	h.Panic(0, "unhandled")
	failed, reason := h.Failed()
	if !failed || !strings.Contains(reason, "unhandled") {
		t.Fatalf("failed=%v reason=%q", failed, reason)
	}
	if !clk.Halted() {
		t.Fatal("clock not halted on terminal failure")
	}
}

func TestTimerIRQDrivesStandingTimers(t *testing.T) {
	h, clk := newBooted(t)
	clk.RunUntil(100 * time.Millisecond)
	if h.Stats.TimerIRQs == 0 {
		t.Fatal("no timer IRQs fired")
	}
	// Standing timers keep recurring: APICs stay armed.
	for cpu := 0; cpu < h.NumCPUs(); cpu++ {
		if !h.Machine.CPU(cpu).TimerArmed() {
			t.Fatalf("cpu%d APIC dead after timer processing", cpu)
		}
	}
	if n := len(h.Timers.InactiveRecurring()); n != 0 {
		t.Fatalf("%d recurring timers left inactive", n)
	}
	if failed, reason := h.Failed(); failed {
		t.Fatalf("hypervisor failed: %s", reason)
	}
}

func TestSchedTickKeepsIRQCountBalanced(t *testing.T) {
	h, clk := newBooted(t)
	addAppVM(t, h, 1, 1)
	clk.RunUntil(500 * time.Millisecond)
	for cpu := 0; cpu < h.NumCPUs(); cpu++ {
		if got := h.IRQCount(cpu); got != 0 {
			t.Fatalf("cpu%d local_irq_count = %d between interrupts", cpu, got)
		}
	}
	if got := h.Sched.CheckConsistency(); len(got) != 0 {
		t.Fatalf("sched inconsistencies in normal operation: %v", got)
	}
}

func TestBlockDeviceIRQPostsEvent(t *testing.T) {
	h, clk := newBooted(t)
	addAppVM(t, h, 1, 1)
	var events [][2]int
	h.SetEventHook(func(domID, port int) { events = append(events, [2]int{domID, port}) })
	h.Machine.Block().Submit(hw.BlockRequest{Owner: 1, Sectors: 8})
	clk.RunUntil(time.Millisecond)
	if len(events) == 0 {
		t.Fatal("no event posted for block completion")
	}
	if events[0][0] != 1 {
		t.Fatalf("event for domain %d, want 1", events[0][0])
	}
	if h.Machine.IOAPIC().InService(hw.IRQBlock) {
		t.Fatal("block line not EOI'd")
	}
}

func TestNICRxReachesHook(t *testing.T) {
	h, clk := newBooted(t)
	var pkts []hw.Packet
	h.SetNICRxHook(func(p hw.Packet) { pkts = append(pkts, p) })
	h.Machine.NIC().Inject(hw.Packet{Flow: 1, Seq: 3})
	clk.RunUntil(time.Millisecond)
	if len(pkts) != 1 || pkts[0].Seq != 3 {
		t.Fatalf("pkts = %v", pkts)
	}
}

func TestInjectionFiresAtInstructionBudget(t *testing.T) {
	h, _ := newBooted(t)
	addAppVM(t, h, 1, 1)
	var pt InjectionPoint
	h.ArmInjection(200, func(p InjectionPoint) (InjectAction, string) {
		pt = p
		return ActionContinue, ""
	})
	d, _ := h.Domain(1)
	h.Dispatch(1, &hypercall.Call{Op: hypercall.OpMMUUpdate, Dom: 1,
		Args: [4]uint64{hypercall.MMUPin, uint64(d.MemStart + 5)}})
	if !h.Stats.InjectionFired {
		t.Fatal("injection did not fire")
	}
	if pt.CPU != 1 || !strings.HasPrefix(pt.Activity, "hypercall:mmu_update") {
		t.Fatalf("injection point = %+v", pt)
	}
	// 200 instrs: entry(150) consumed, lock(40) consumed => 190; next
	// step inc_refcount(60) overruns => injection at inc_refcount.
	if pt.StepName != "inc_refcount" {
		t.Fatalf("StepName = %q, want inc_refcount", pt.StepName)
	}
	if len(pt.HeldLocks) != 1 {
		t.Fatalf("HeldLocks = %v, want the page_alloc lock", pt.HeldLocks)
	}
	// ActionContinue: the call still completed.
	if h.PerCPU(1).Current != nil {
		t.Fatal("call not completed after ActionContinue")
	}
}

func TestInjectionPanicAbandonsCall(t *testing.T) {
	h, _ := newBooted(t)
	addAppVM(t, h, 1, 1)
	detected := ""
	h.SetPanicHook(func(cpu int, reason string) { detected = reason })
	h.ArmInjection(200, func(p InjectionPoint) (InjectAction, string) {
		return ActionPanic, "failstop"
	})
	d, _ := h.Domain(1)
	h.Dispatch(1, &hypercall.Call{Op: hypercall.OpMMUUpdate, Dom: 1,
		Args: [4]uint64{hypercall.MMUPin, uint64(d.MemStart + 5)}})
	if detected != "failstop" {
		t.Fatalf("detected = %q", detected)
	}
	pc := h.PerCPU(1)
	if pc.Current == nil {
		t.Fatal("abandoned call lost (needed for retry)")
	}
	// The lock acquired before the injection point is still held.
	if got := len(pc.Env.HeldLocks()); got != 1 {
		t.Fatalf("held locks = %d, want 1", got)
	}
}

func TestInjectionWedgeStopsCPU(t *testing.T) {
	h, clk := newBooted(t)
	addAppVM(t, h, 1, 1)
	h.ArmInjection(200, func(p InjectionPoint) (InjectAction, string) {
		return ActionWedge, "wild jump"
	})
	d, _ := h.Domain(1)
	h.Dispatch(1, &hypercall.Call{Op: hypercall.OpMMUUpdate, Dom: 1,
		Args: [4]uint64{hypercall.MMUPin, uint64(d.MemStart + 5)}})
	pc := h.PerCPU(1)
	if !pc.Wedged || !pc.Stuck() {
		t.Fatal("CPU not wedged")
	}
	if !h.Machine.CPU(1).IntrDisabled {
		t.Fatal("wedged CPU still takes interrupts")
	}
	// Its timer interrupts stay pending; other CPUs keep running.
	clk.RunUntil(200 * time.Millisecond)
	if failed, _ := h.Failed(); failed {
		t.Fatal("wedge alone must not fail the hypervisor (watchdog's job)")
	}
}

func TestSpinOnHeldLockDisablesInterrupts(t *testing.T) {
	h, _ := newBooted(t)
	addAppVM(t, h, 1, 1)
	h.Statics.Console.TryAcquire(3) // some discarded context holds it
	h.Dispatch(1, &hypercall.Call{Op: hypercall.OpConsoleIO, Dom: 1})
	pc := h.PerCPU(1)
	if pc.Spinning == nil || pc.Spinning != h.Statics.Console {
		t.Fatalf("Spinning = %v", pc.Spinning)
	}
	if !h.Machine.CPU(1).IntrDisabled {
		t.Fatal("spinning CPU has interrupts enabled")
	}
	if h.Stats.Spins != 1 {
		t.Fatalf("Stats.Spins = %d", h.Stats.Spins)
	}
}

func TestDiscardThreadPreservesPendingCall(t *testing.T) {
	h, _ := newBooted(t)
	addAppVM(t, h, 1, 1)
	h.SetPanicHook(func(int, string) {})
	h.ArmInjection(250, func(InjectionPoint) (InjectAction, string) { return ActionPanic, "x" })
	d, _ := h.Domain(1)
	frame := d.MemStart + 5
	h.Dispatch(1, &hypercall.Call{Op: hypercall.OpMMUUpdate, Dom: 1,
		Args: [4]uint64{hypercall.MMUPin, uint64(frame)}})
	pending := h.DiscardAllThreads()
	if len(pending) != 1 {
		t.Fatalf("pending = %v, want 1", pending)
	}
	p := pending[0]
	if p.CPU != 1 || p.Call.Op != hypercall.OpMMUUpdate {
		t.Fatalf("pending = %+v", p)
	}
	if !p.CriticalWrites {
		t.Fatal("partial pin after inc_refcount must report critical writes")
	}
	if p.Poisoned {
		t.Fatal("abandonment at inc_refcount is not an unmitigated window")
	}
	pc := h.PerCPU(1)
	if pc.Current != nil || pc.Busy() {
		t.Fatal("thread not discarded")
	}
	if !pc.WasBusyAtDiscard {
		t.Fatal("WasBusyAtDiscard not recorded")
	}
	// Discard does NOT release locks.
	if !d.PageAllocLock.Held() {
		t.Fatal("discard released the held lock (must be a separate mechanism)")
	}
}

func TestRetryAfterRollbackSucceeds(t *testing.T) {
	h, _ := newBooted(t)
	addAppVM(t, h, 1, 1)
	h.SetPanicHook(func(int, string) {})
	var done int
	h.SetCallDoneHook(func(*hypercall.Call, error) { done++ })
	h.ArmInjection(250, func(InjectionPoint) (InjectAction, string) { return ActionPanic, "x" })
	d, _ := h.Domain(1)
	frame := d.MemStart + 5
	h.Dispatch(1, &hypercall.Call{Op: hypercall.OpMMUUpdate, Dom: 1,
		Args: [4]uint64{hypercall.MMUPin, uint64(frame)}})
	pending := h.DiscardAllThreads()
	h.Locks.UnlockHeapLocks()
	h.Locks.UnlockStaticSegment()
	h.ClearIRQCounts()
	h.ReenableCPUs()
	h.RetryPendingCalls(pending)
	if done != 1 {
		t.Fatalf("done = %d, want 1 (retried call completed)", done)
	}
	f := h.Frames.Frame(frame)
	if f.UseCount != 1 || !f.Validated {
		t.Fatalf("frame after retry: %+v", *f)
	}
	if failed, reason := h.Failed(); failed {
		t.Fatalf("failed: %s", reason)
	}
}

func TestRetryPoisonedCallAsserts(t *testing.T) {
	h, _ := newBooted(t)
	addAppVM(t, h, 1, 1)
	var panics []string
	h.SetPanicHook(func(cpu int, reason string) { panics = append(panics, reason) })
	// Inject inside the unmitigated window: entry+lock+inc+write+validate
	// = 150+40+60+120+80 = 450; budget 455 lands in "window" (8).
	h.ArmInjection(455, func(pt InjectionPoint) (InjectAction, string) {
		if !pt.Unmitigated {
			return ActionContinue, ""
		}
		return ActionPanic, "in window"
	})
	d, _ := h.Domain(1)
	frame := d.MemStart + 5
	h.Dispatch(1, &hypercall.Call{Op: hypercall.OpMMUUpdate, Dom: 1,
		Args: [4]uint64{hypercall.MMUPin, uint64(frame)}})
	if len(panics) != 1 {
		t.Fatalf("panics = %v (injection missed the window)", panics)
	}
	pending := h.DiscardAllThreads()
	if len(pending) != 1 || !pending[0].Poisoned {
		t.Fatalf("pending = %+v, want poisoned", pending)
	}
	h.Locks.UnlockHeapLocks()
	h.ClearIRQCounts()
	h.ReenableCPUs()
	h.RetryPendingCalls(pending)
	// Poisoned retry: no rollback, the pin re-executes on an
	// already-pinned frame and the validate assertion fires.
	if len(panics) != 2 || !strings.Contains(panics[1], "refcount 2") {
		t.Fatalf("panics = %v, want post-retry refcount assertion", panics)
	}
}

func TestDropPendingCallsFailsGuest(t *testing.T) {
	h, _ := newBooted(t)
	addAppVM(t, h, 1, 1)
	h.SetPanicHook(func(int, string) {})
	h.ArmInjection(250, func(InjectionPoint) (InjectAction, string) { return ActionPanic, "x" })
	d, _ := h.Domain(1)
	h.Dispatch(1, &hypercall.Call{Op: hypercall.OpMMUUpdate, Dom: 1,
		Args: [4]uint64{hypercall.MMUPin, uint64(d.MemStart + 5)}})
	pending := h.DiscardAllThreads()
	h.DropPendingCalls(pending)
	if !d.Failed {
		t.Fatal("guest not failed after dropped hypercall")
	}
	if h.Stats.DroppedCalls != 1 {
		t.Fatalf("DroppedCalls = %d", h.Stats.DroppedCalls)
	}
}

func TestEnforceIRQInvariant(t *testing.T) {
	h, _ := newBooted(t)
	var panics []string
	h.SetPanicHook(func(cpu int, reason string) { panics = append(panics, reason) })
	h.PerCPU(2).LocalIRQCount = 1
	if h.EnforceIRQInvariant() {
		t.Fatal("invariant passed with stale irq count")
	}
	if len(panics) != 1 || !strings.Contains(panics[0], "!in_irq") {
		t.Fatalf("panics = %v", panics)
	}
	h.ClearIRQCounts()
	if !h.EnforceIRQInvariant() {
		t.Fatal("invariant failed after clear")
	}
}

func TestEnforceSchedInvariantsPanicOrVMFail(t *testing.T) {
	h, _ := newBooted(t)
	addAppVM(t, h, 1, 1)
	var panics []string
	h.SetPanicHook(func(cpu int, reason string) { panics = append(panics, reason) })
	d, _ := h.Domain(1)
	// State mismatch => deterministic panic.
	v := d.VCPUs[0]
	v.State = sched.Blocked // while still percpu.curr
	if h.EnforceSchedInvariants() {
		t.Fatal("invariants passed with state mismatch")
	}
	if len(panics) != 1 {
		t.Fatalf("panics = %v", panics)
	}
}

func TestEnforceSchedInvariantsStarvedFailsVM(t *testing.T) {
	h, _ := newBooted(t)
	addAppVM(t, h, 1, 1)
	h.SetPanicHook(func(int, string) {})
	d, _ := h.Domain(1)
	v := d.VCPUs[0]
	// Make the vCPU runnable-but-unqueued: discard it from curr without
	// queueing (simulates an abandoned switch).
	h.Sched.Block(1)
	v.State = sched.Runnable // but Block left it off the runqueue
	if !h.EnforceSchedInvariants() {
		t.Fatal("starvation must not panic the hypervisor")
	}
	if !d.Failed || !strings.Contains(d.FailReason, "starved") {
		t.Fatalf("domain fail = %v %q", d.Failed, d.FailReason)
	}
}

func TestEnforceCrossCPUWaits(t *testing.T) {
	h, _ := newBooted(t)
	var panics []string
	h.SetPanicHook(func(cpu int, reason string) { panics = append(panics, reason) })
	if !h.EnforceCrossCPUWaits() {
		t.Fatal("empty wait list failed")
	}
	h.AddCrossCPUWait(CrossCPUWait{Requester: 2, Responder: 1, Desc: "tlb flush"})
	if got := len(h.CrossCPUWaits()); got != 1 {
		t.Fatalf("waits = %d", got)
	}
	if h.EnforceCrossCPUWaits() {
		t.Fatal("surviving wait passed")
	}
	if len(panics) != 1 || !strings.Contains(panics[0], "waiting forever") {
		t.Fatalf("panics = %v", panics)
	}
	h.ClearCrossCPUWaits()
	if len(h.CrossCPUWaits()) != 0 {
		t.Fatal("waits not cleared")
	}
}

func TestPauseDefersDispatchAndInterrupts(t *testing.T) {
	h, clk := newBooted(t)
	addAppVM(t, h, 1, 1)
	var done int
	h.SetCallDoneHook(func(*hypercall.Call, error) { done++ })
	h.Pause()
	if !h.Paused() {
		t.Fatal("not paused")
	}
	h.Dispatch(1, &hypercall.Call{Op: hypercall.OpVCPUOp, Dom: 1})
	if done != 0 {
		t.Fatal("dispatch ran while paused")
	}
	// Device interrupt during pause stays pending.
	h.Machine.Block().Submit(hw.BlockRequest{Owner: 1})
	clk.RunUntil(clk.Now() + time.Millisecond)
	if h.Stats.DeviceIRQs != 0 {
		t.Fatal("device IRQ ran while paused")
	}
	var ran bool
	h.WhenRunnable(func() { ran = true })
	h.ResumeRunnable()
	if done != 1 || !ran {
		t.Fatalf("deferred work not run: done=%d ran=%v", done, ran)
	}
	// Pending device interrupt delivered after resume.
	if h.Stats.DeviceIRQs == 0 {
		t.Fatal("pending device IRQ not delivered after resume")
	}
}

func TestNMIHookRunsEvenWhenInterruptsDisabled(t *testing.T) {
	h, clk := newBooted(t)
	var nmis []int
	h.SetNMIHook(func(cpu int) { nmis = append(nmis, cpu) })
	h.Machine.CPU(2).IntrDisabled = true
	h.Machine.CPU(2).StartPerfNMI(100 * time.Millisecond)
	clk.RunUntil(150 * time.Millisecond)
	if len(nmis) != 1 || nmis[0] != 2 {
		t.Fatalf("nmis = %v", nmis)
	}
	if h.IRQCount(2) != 0 {
		t.Fatal("NMI exit did not restore irq count")
	}
}

func TestReprogramAllAPICsRevivesDeadTimer(t *testing.T) {
	h, _ := newBooted(t)
	h.Machine.CPU(3).DisarmTimer() // the §V-A hazard state
	if h.Machine.CPU(3).TimerArmed() {
		t.Fatal("disarm failed")
	}
	h.ReprogramAllAPICs()
	if !h.Machine.CPU(3).TimerArmed() {
		t.Fatal("APIC not re-armed")
	}
}

func TestPanicAtNextStep(t *testing.T) {
	h, _ := newBooted(t)
	addAppVM(t, h, 1, 1)
	var panics []string
	h.SetPanicHook(func(cpu int, reason string) { panics = append(panics, reason) })
	h.PanicAtNextStep(1, "latent corruption")
	h.Dispatch(1, &hypercall.Call{Op: hypercall.OpVCPUOp, Dom: 1})
	if len(panics) != 1 || panics[0] != "latent corruption" {
		t.Fatalf("panics = %v", panics)
	}
	if h.PerCPU(1).Current == nil {
		t.Fatal("call not left pending at delayed detection")
	}
}

func TestMulticallDispatchAndRetrySkipsCompleted(t *testing.T) {
	h, _ := newBooted(t)
	addAppVM(t, h, 1, 1)
	h.SetPanicHook(func(int, string) {})
	d, _ := h.Domain(1)
	base := d.MemStart + 20
	batch := &hypercall.Call{Op: hypercall.OpMulticall, Dom: 1}
	for i := 0; i < 3; i++ {
		batch.Batch = append(batch.Batch, &hypercall.Call{
			Op: hypercall.OpMMUUpdate, Dom: 1,
			Args: [4]uint64{hypercall.MMUPin, uint64(base + i)},
		})
	}
	// Inject during the second component (first completed):
	// component prog = 508 instrs + 15 log; entry 60.
	h.ArmInjection(60+508+15+200, func(InjectionPoint) (InjectAction, string) {
		return ActionPanic, "mid-batch"
	})
	h.Dispatch(1, batch)
	if batch.Completed != 1 {
		t.Fatalf("Completed = %d, want 1", batch.Completed)
	}
	pending := h.DiscardAllThreads()
	h.Locks.UnlockHeapLocks()
	h.ClearIRQCounts()
	h.ReenableCPUs()
	h.RetryPendingCalls(pending)
	if batch.Completed != 3 {
		t.Fatalf("Completed = %d after retry, want 3", batch.Completed)
	}
	for i := 0; i < 3; i++ {
		if got := h.Frames.Frame(base + i).UseCount; got != 1 {
			t.Fatalf("frame %d UseCount = %d, want 1 (no double pin)", base+i, got)
		}
	}
}

func TestIPIDelivery(t *testing.T) {
	h, _ := newBooted(t)
	before := h.IRQCount(2)
	h.Machine.CPU(0).SendIPI(2)
	if h.Stats.Interrupts == 0 {
		t.Fatal("IPI not counted")
	}
	if h.IRQCount(2) != before {
		t.Fatal("IPI program left irq count unbalanced")
	}
}

func TestFSGSLossOnRebootWithoutSave(t *testing.T) {
	// §IV "Save FS/GS": the reboot clobbers the guest FS/GS bases; if
	// they were not saved at detection, the vCPU on a busy CPU loses its
	// register state and its domain fails.
	h, _ := newBooted(t)
	addAppVM(t, h, 1, 1)
	h.SetPanicHook(func(int, string) {})
	d, _ := h.Domain(1)
	h.ArmInjection(250, func(hv InjectionPoint) (InjectAction, string) { return ActionPanic, "x" })
	h.Dispatch(1, &hypercall.Call{Op: hypercall.OpMMUUpdate, Dom: 1,
		Args: [4]uint64{hypercall.MMUPin, uint64(d.MemStart + 7)}})
	h.DiscardAllThreads()
	// No SaveFSGS (the mechanisms bundle is off): the reboot loses them.
	h.ApplyFSGSLoss()
	if !d.Failed || !strings.Contains(d.FailReason, "FS/GS") {
		t.Fatalf("domain fail = %v %q", d.Failed, d.FailReason)
	}
	v := d.VCPUs[0]
	if v.ContextValid {
		t.Fatal("vCPU context still valid after FS/GS loss")
	}

	// With the save, nothing is lost.
	h2, _ := newBooted(t)
	addAppVM(t, h2, 1, 1)
	h2.SetPanicHook(func(int, string) {})
	d2, _ := h2.Domain(1)
	h2.ArmInjection(250, func(hv InjectionPoint) (InjectAction, string) { return ActionPanic, "x" })
	h2.Dispatch(1, &hypercall.Call{Op: hypercall.OpMMUUpdate, Dom: 1,
		Args: [4]uint64{hypercall.MMUPin, uint64(d2.MemStart + 7)}})
	h2.DiscardAllThreads()
	h2.SaveFSGS()
	h2.ApplyFSGSLoss()
	if d2.Failed {
		t.Fatalf("domain failed despite FS/GS save: %s", d2.FailReason)
	}
}

func TestSchedFluxDraw(t *testing.T) {
	// With probability 1, discarding all threads must leave detectable
	// scheduling-metadata damage that RepairFromPerCPU fixes.
	h, _ := newBooted(t)
	addAppVM(t, h, 1, 1)
	h.SetSchedFluxProb(1.0)
	h.DiscardAllThreads()
	if len(h.Sched.CheckConsistency()) == 0 {
		t.Fatal("flux draw at p=1 produced no inconsistency")
	}
	h.Sched.RepairFromPerCPU()
	if len(h.Sched.CheckConsistency()) != 0 {
		t.Fatal("repair did not fix flux damage")
	}
	if h.RecoveryEpoch() == 0 {
		t.Fatal("recovery epoch not advanced by discard")
	}
}

func TestRegisterContextFollowsVCPUs(t *testing.T) {
	// Two vCPUs time-sharing CPU 1 must each see their own register file
	// across context switches.
	h, clk := newBooted(t)
	addAppVM(t, h, 1, 1)
	addAppVM(t, h, 2, 1)
	d1, _ := h.Domain(1)
	d2, _ := h.Domain(2)
	v1, v2 := d1.VCPUs[0], d2.VCPUs[0]
	v1.Context[hw.RAX] = 0x1111
	v2.Context[hw.RAX] = 0x2222
	// v1 is running (created first): its context is live on the CPU only
	// after a switch loads it; force one full rotation via yields.
	h.Dispatch(1, &hypercall.Call{Op: hypercall.OpSchedOp, Dom: 1, Args: [4]uint64{hypercall.SchedYield}})
	// Now v2 runs with its context loaded.
	if h.Sched.Curr(1) == v2 && h.Machine.CPU(1).Regs[hw.RAX] != 0x2222 {
		t.Fatalf("v2 scheduled but RAX = %#x", h.Machine.CPU(1).Regs[hw.RAX])
	}
	// Let the guest-visible register change while v2 runs.
	h.Machine.CPU(1).Regs[hw.RBX] = 0xbeef
	h.Dispatch(2, &hypercall.Call{Op: hypercall.OpSchedOp, Dom: 2, Args: [4]uint64{hypercall.SchedYield}})
	// v1 back: RAX restored; v2's saved context captured RBX.
	if h.Sched.Curr(1) == v1 {
		if h.Machine.CPU(1).Regs[hw.RAX] != 0x1111 {
			t.Fatalf("v1 context not restored: RAX = %#x", h.Machine.CPU(1).Regs[hw.RAX])
		}
		if v2.Context[hw.RBX] != 0xbeef {
			t.Fatalf("v2 context not saved: RBX = %#x", v2.Context[hw.RBX])
		}
	}
	clk.RunUntil(clk.Now() + 50*time.Millisecond)
	if failed, reason := h.Failed(); failed {
		t.Fatal(reason)
	}
}

func TestDefaultConfigAndAccessors(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Machine.CPUs != 8 || cfg.Machine.MemoryMB != 8192 {
		t.Fatalf("DefaultConfig machine = %+v, want the paper's testbed", cfg.Machine)
	}
	if !cfg.LoggingEnabled || !cfg.RecoveryPrep || cfg.HeapFrames <= 0 {
		t.Fatalf("DefaultConfig = %+v", cfg)
	}
	h, _ := newBooted(t)
	h.ArmInjection(100, func(InjectionPoint) (InjectAction, string) { return ActionContinue, "" })
	if !h.InjectionArmed() {
		t.Fatal("InjectionArmed false after arm")
	}
	h.DisarmInjection()
	if h.InjectionArmed() {
		t.Fatal("InjectionArmed true after disarm")
	}
}

func TestDomctlCreateThroughHypervisor(t *testing.T) {
	// The domctl path wires through hv.createDomainFromSpec: the created
	// domain gets the full substrate (evtchn table, grant table, ring).
	h, _ := newBooted(t)
	h.Dispatch(0, &hypercall.Call{
		Op: hypercall.OpDomctl, Dom: 0,
		Args:   [4]uint64{hypercall.DomctlCreate},
		Create: &hypercall.CreateSpec{ID: 5, Name: "created", MemPages: 1024, PinCPU: 2},
	})
	d, err := h.Domain(5)
	if err != nil {
		t.Fatalf("domain not created: %v", err)
	}
	if d.Events == nil || d.GrantTab == nil || d.Maptrack == nil {
		t.Fatal("created domain missing substrate tables")
	}
	if d.RingPort == 0 {
		t.Fatal("created domain has no ring channel to the PrivVM")
	}
	if v := h.Sched.Curr(2); v == nil || v.Domain != 5 {
		t.Fatal("created domain's vCPU not running on its pinned CPU")
	}
}
