package hv

import (
	"nilihype/internal/dom"
	"nilihype/internal/evtchn"
	"nilihype/internal/hw"
	"nilihype/internal/hypercall"
	"nilihype/internal/sched"
	"nilihype/internal/telemetry"
)

// DeliverInterrupt implements hw.InterruptSink. NMIs are always taken
// (that is how hangs with interrupts disabled get detected); everything
// else is refused — and therefore held pending by the hardware — while the
// CPU has interrupts disabled, the hypervisor is paused for recovery, or
// the hypervisor has failed.
func (h *Hypervisor) DeliverInterrupt(cpu int, vec hw.Vector) bool {
	if vec == hw.VecNMI {
		h.handleNMI(cpu)
		return true
	}
	if h.failed || h.paused {
		return false
	}
	pc := h.percpu[cpu]
	if h.Machine.CPU(cpu).IntrDisabled || pc.Stuck() {
		return false
	}
	if pc.Busy() {
		// Event-atomicity means a CPU is never observed mid-program at
		// interrupt time; keep the interrupt pending if it happens.
		return false
	}
	h.Machine.CPU(cpu).Halted = false
	h.Stats.Interrupts++
	switch vec {
	case hw.VecTimer:
		h.Stats.TimerIRQs++
		h.Tel.Counters[telemetry.CtrTimerIRQs]++
		h.startIRQProgram(cpu, "timer", h.buildTimerIRQ(cpu))
	case hw.VecBlock:
		h.Stats.DeviceIRQs++
		h.Tel.Counters[telemetry.CtrDeviceIRQs]++
		h.startIRQProgram(cpu, "block", h.buildDeviceIRQ(cpu, hw.IRQBlock))
	case hw.VecNIC:
		h.Stats.DeviceIRQs++
		h.Tel.Counters[telemetry.CtrDeviceIRQs]++
		h.startIRQProgram(cpu, "nic", h.buildDeviceIRQ(cpu, hw.IRQNIC))
	case hw.VecIPI:
		h.startIRQProgram(cpu, "ipi", h.buildIPIProgram(cpu))
	default:
		return false
	}
	return true
}

// handleNMI runs the performance-counter NMI path: entry raises the IRQ
// nesting level, the watchdog hook runs, and — unless recovery was
// triggered inside the hook and discarded this context — the level drops
// again on exit.
func (h *Hypervisor) handleNMI(cpu int) {
	if h.failed {
		return
	}
	pc := h.percpu[cpu]
	pc.LocalIRQCount++
	h.Tel.Counters[telemetry.CtrNMIs]++
	h.Machine.CPU(cpu).ChargeHypervisor(nmiHandlerInstrs, nmiHandlerInstrs)
	epoch := h.recoveryEpoch
	if h.nmiHook != nil {
		h.nmiHook(cpu)
	}
	if h.recoveryEpoch == epoch && !h.failed {
		pc.LocalIRQCount--
	}
}

const nmiHandlerInstrs = 120

// startIRQProgram begins executing an interrupt handler program on cpu.
func (h *Hypervisor) startIRQProgram(cpu int, activity string, prog hypercall.Program) {
	pc := h.percpu[cpu]
	pc.Env.Call = nil
	pc.Env.ResetProgramState()
	pc.InIRQProgram = true
	pc.IRQActivity = activity
	h.Tel.Record(cpu, telemetry.EvIRQEnter, h.Tel.Intern(activity))
	pc.CurrentProg = prog
	pc.CurrentStep = 0
	h.runProgram(cpu)
}

// Timer-IRQ step bodies. These are package-level functions, not closures:
// the handler is rebuilt on every tick, and per-build closures were the
// campaign's single largest allocation source. Per-invocation state rides
// on the step itself (Step.T carries the due timer) or in the per-CPU Env
// (the pending context switch). The clock does not advance inside a
// handler program (event-atomic execution), so e.Now() in the rearm step
// equals the time the handler was built at — the same value the old
// closures captured.

func doIRQNop(*hypercall.Env, *hypercall.Step) error { return nil }

func doIRQRunTimer(_ *hypercall.Env, st *hypercall.Step) error {
	if st.T.Fn != nil {
		st.T.Fn()
	}
	return nil
}

func doIRQRearmTimer(e *hypercall.Env, st *hypercall.Step) error {
	e.Timers.FinishTimer(st.T, e.Now())
	return nil
}

func doSoftirqPickNext(e *hypercall.Env, _ *hypercall.Step) error {
	e.SetSwitchOp(e.Sched.BeginSwitch(e.CPU))
	return nil
}

func doSoftirqDequeueNext(e *hypercall.Env, _ *hypercall.Step) error {
	if op := e.SwitchOp(); op != nil {
		op.StepDequeueNext()
	}
	return nil
}

func doSoftirqRequeuePrev(e *hypercall.Env, _ *hypercall.Step) error {
	if op := e.SwitchOp(); op != nil {
		op.StepRequeuePrev()
	}
	return nil
}

func doSoftirqSetCurr(e *hypercall.Env, _ *hypercall.Step) error {
	if op := e.SwitchOp(); op != nil {
		op.StepSetCurr()
	}
	return nil
}

func doSoftirqSetVCPU(e *hypercall.Env, _ *hypercall.Step) error {
	if op := e.SwitchOp(); op != nil {
		op.StepSetVCPU()
	}
	return nil
}

func doSoftirqContextSwitch(e *hypercall.Env, _ *hypercall.Step) error {
	if op := e.SwitchOp(); op != nil && e.SwitchContext != nil {
		e.SwitchContext(e.CPU, op.Prev(), op.Next())
	}
	return nil
}

// Fixed timer-IRQ steps that carry no state at all.
var (
	// Walking the software timer heap and reading the hardware clock
	// dominate the handler body; the APIC stays unarmed throughout (the
	// §V-A window).
	stepScanTimerHeap = hypercall.Step{Name: "scan_timer_heap", Instrs: 1500, Do: doIRQNop}
	stepAckLAPIC      = hypercall.Step{Name: "ack_lapic", Instrs: 260, Do: doIRQNop}
	// RCU, time calibration, accounting audits: substantial hypervisor
	// work that holds no locks and leaves no partial state — faults
	// landing here are the recoverable-with-few-enhancements cases of the
	// Table I ladder.
	stepSoftirqTimerAccounting = hypercall.Step{Name: "softirq_timer_accounting", Instrs: 1850, Do: doIRQNop}
	stepSoftirqRCU             = hypercall.Step{Name: "softirq_rcu", Instrs: 1850, Do: doIRQNop}
	stepSoftirqTimeCalibration = hypercall.Step{Name: "softirq_time_calibration", Instrs: 1750, Do: doIRQNop}

	stepPickNext      = hypercall.Step{Name: "pick_next", Instrs: 90, Do: doSoftirqPickNext}
	stepDequeueNext   = hypercall.Step{Name: "dequeue_next", Instrs: 50, Do: doSoftirqDequeueNext}
	stepRequeuePrev   = hypercall.Step{Name: "requeue_prev", Instrs: 50, Do: doSoftirqRequeuePrev}
	stepSetCurr       = hypercall.Step{Name: "set_curr", Instrs: 40, Do: doSoftirqSetCurr}
	stepSetVCPUState  = hypercall.Step{Name: "set_vcpu_state", Instrs: 70, Do: doSoftirqSetVCPU}
	stepContextSwitch = hypercall.Step{Name: "context_switch", Instrs: 90, Do: doSoftirqContextSwitch}
)

// buildTimerIRQ constructs the timer interrupt handler for cpu, following
// Xen's structure: the interrupt handler itself pops due software timers,
// re-arms the recurring ones, and reprograms the APIC one-shot; the bulk
// of the follow-on work (the credit scheduler, RCU and time-calibration
// housekeeping) runs afterwards in softirq context. The window between
// entry and the reprogram step is the §V-A "Reprogram hardware timer"
// hazard; the windows between a timer's run and re-arm steps are the
// "Reactivate recurring timer events" hazard.
//
// The program is stamped into the CPU's reusable step buffer (see
// PerCPU.irqProg for why that is safe).
func (h *Hypervisor) buildTimerIRQ(cpu int) hypercall.Program {
	pc := h.percpu[cpu]
	fx := h.irqFixed(cpu)
	due := h.Timers.PopDue(cpu, h.Clock.Now())
	prog := append(pc.irqProg[:0], fx.enterIRQ, stepScanTimerHeap)
	runSched := false
	for _, t := range due {
		if h.schedTicks[t] {
			runSched = true
			prog = append(prog, hypercall.Step{Name: t.RearmLabel(), Instrs: 30, T: t, Do: doIRQRearmTimer})
			continue
		}
		prog = append(prog,
			hypercall.Step{Name: t.RunLabel(), Instrs: 30, T: t, Do: doIRQRunTimer},
			hypercall.Step{Name: t.RearmLabel(), Instrs: 18, T: t, Do: doIRQRearmTimer},
		)
	}
	prog = append(prog, stepAckLAPIC, fx.reprogramAPIC)
	// Softirq context: the APIC is re-armed from here on.
	if runSched {
		prog = h.appendSchedSoftirq(cpu, prog)
	}
	prog = append(prog,
		stepSoftirqTimerAccounting,
		stepSoftirqRCU,
		stepSoftirqTimeCalibration,
		fx.exitIRQ,
	)
	pc.irqProg = prog
	return prog
}

// irqFixed returns cpu's cached fixed IRQ steps, building their closures
// on first use. Only steps whose behavior depends on nothing but the CPU
// identity live here; see the PerCPU field comment.
func (h *Hypervisor) irqFixed(cpu int) *irqFixedSteps {
	pc := h.percpu[cpu]
	fx := &pc.irqFixedSteps
	if fx.enterIRQ.Do == nil {
		fx.enterIRQ = hypercall.Step{Name: "enter_irq", Instrs: 100, Do: func(*hypercall.Env, *hypercall.Step) error {
			pc.LocalIRQCount++
			return nil
		}}
		fx.reprogramAPIC = hypercall.Step{Name: "reprogram_apic", Instrs: 160, Do: func(*hypercall.Env, *hypercall.Step) error {
			h.Timers.ProgramAPIC(cpu)
			return nil
		}}
		fx.exitIRQ = hypercall.Step{Name: "exit_irq", Instrs: 30, Do: func(*hypercall.Env, *hypercall.Step) error {
			pc.LocalIRQCount--
			return nil
		}}
		fx.lockRunq = hypercall.Step{Name: "lock_runq", Instrs: 30, Do: func(*hypercall.Env, *hypercall.Step) error {
			return pc.Env.Acquire(h.Sched.RunqueueLock(cpu))
		}}
		fx.creditTick = hypercall.Step{Name: "credit_tick", Instrs: 40, Do: func(*hypercall.Env, *hypercall.Step) error {
			if v := h.Sched.Curr(cpu); v != nil {
				v.Credit -= 10
			}
			return nil
		}}
		fx.unlockRunq = hypercall.Step{Name: "unlock_runq", Instrs: 30, Do: func(*hypercall.Env, *hypercall.Step) error {
			pc.Env.Release(h.Sched.RunqueueLock(cpu))
			return nil
		}}
	}
	return fx
}

// appendSchedSoftirq appends the scheduler softirq to a timer-IRQ program:
// credit accounting and, when another vCPU is waiting, a context switch
// decomposed into the metadata steps of §V-A. The runqueue lock is held
// throughout. The switch steps share the in-flight SwitchOp through the
// CPU's Env scratch (pick_next assigns it), mirroring the hypercall
// sched_op program.
func (h *Hypervisor) appendSchedSoftirq(cpu int, prog hypercall.Program) hypercall.Program {
	fx := h.irqFixed(cpu)
	prog = append(prog, fx.lockRunq, fx.creditTick)
	if h.Sched.RunqueueLen(cpu) > 0 {
		prog = append(prog,
			stepPickNext,
			stepDequeueNext,
			stepRequeuePrev,
			stepSetCurr,
			stepSetVCPUState,
			stepContextSwitch,
		)
	}
	return append(prog, fx.unlockRunq)
}

// switchRegisterContext saves the outgoing vCPU's architectural registers
// from the physical CPU and loads the incoming vCPU's saved context. When
// scheduling metadata is inconsistent, this is the step that literally
// "restore[s] the register context of one vCPU when another is scheduled"
// (§V-A).
func (h *Hypervisor) switchRegisterContext(cpu int, prev, next *sched.VCPU) {
	c := h.Machine.CPU(cpu)
	if prev != nil {
		prev.Context = c.Regs
	}
	if next != nil {
		c.Regs = next.Context
	}
}

// buildDeviceIRQ constructs the device interrupt handler: read the device,
// post event channels to the owning domains, and acknowledge the IO-APIC.
// A fault between reading and the EOI leaves the line in service — the
// reason recovery must acknowledge all pending and in-service interrupts
// (§III-B).
func (h *Hypervisor) buildDeviceIRQ(cpu int, line hw.IRQLine) hypercall.Program {
	pc := h.percpu[cpu]
	prog := hypercall.Program{
		{Name: "enter_irq", Instrs: 40, Do: func(*hypercall.Env, *hypercall.Step) error {
			pc.LocalIRQCount++
			return nil
		}},
	}
	switch line {
	case hw.IRQBlock:
		comps := h.Machine.Block().DrainCompletions()
		for _, c := range comps {
			c := c
			prog = append(prog, hypercall.Step{
				Name: "post_blk_event", Instrs: 60,
				Do: func(*hypercall.Env, *hypercall.Step) error {
					d, err := h.Domains.ByID(c.Req.Owner)
					if err != nil {
						return err
					}
					return h.RaiseVIRQ(d, evtchn.VIRQBlock)
				},
			})
		}
	case hw.IRQNIC:
		pkts := h.Machine.NIC().DrainRx()
		for _, p := range pkts {
			p := p
			prog = append(prog, hypercall.Step{
				Name: "post_nic_event", Instrs: 60,
				Do: func(*hypercall.Env, *hypercall.Step) error {
					if h.nicRxHook != nil {
						h.nicRxHook(p)
					}
					return nil
				},
			})
		}
	}
	prog = append(prog,
		hypercall.Step{Name: "eoi", Instrs: 30, Do: func(*hypercall.Env, *hypercall.Step) error {
			h.Machine.IOAPIC().EOI(line)
			return nil
		}},
		hypercall.Step{Name: "exit_irq", Instrs: 30, Do: func(*hypercall.Env, *hypercall.Step) error {
			pc.LocalIRQCount--
			return nil
		}},
	)
	return prog
}

// buildIPIProgram acknowledges an inter-processor interrupt.
func (h *Hypervisor) buildIPIProgram(cpu int) hypercall.Program {
	pc := h.percpu[cpu]
	return hypercall.Program{
		{Name: "enter_irq", Instrs: 40, Do: func(*hypercall.Env, *hypercall.Step) error {
			pc.LocalIRQCount++
			return nil
		}},
		{Name: "ack_ipi", Instrs: 50, Do: func(*hypercall.Env, *hypercall.Step) error { return nil }},
		{Name: "exit_irq", Instrs: 30, Do: func(*hypercall.Env, *hypercall.Step) error {
			pc.LocalIRQCount--
			return nil
		}},
	}
}

// RaiseVIRQ posts a virtual-IRQ event to the domain's bound port, wakes
// its upcall vCPU, and informs the guest layer.
func (h *Hypervisor) RaiseVIRQ(d *dom.Domain, virq int) error {
	port, err := h.Broker.RaiseVIRQ(d.ID, virq)
	if err != nil {
		return err
	}
	h.NotifyEvent(d.ID, port)
	return nil
}

// NotifyEvent wakes the target domain's upcall vCPU and informs the guest
// layer that port went pending on domID.
func (h *Hypervisor) NotifyEvent(domID, port int) {
	if d, err := h.Domains.ByID(domID); err == nil {
		if v := d.UpcallVCPU(); v != nil {
			h.WakeVCPU(v)
		}
	}
	if h.eventHook != nil {
		h.eventHook(domID, port)
	}
}

// SetEventHook installs the guest-layer event notification callback.
func (h *Hypervisor) SetEventHook(fn func(domID, port int)) { h.eventHook = fn }

// SetNICRxHook installs the guest-layer packet receive callback.
func (h *Hypervisor) SetNICRxHook(fn func(hw.Packet)) { h.nicRxHook = fn }
