// Package audit implements the post-recovery invariant auditor and repair
// engine. After a recovery attempt's state repairs (and before the system
// resumes), the auditor walks the real simulated hypervisor structures —
// frame descriptors, heap free list and live objects, scheduler runqueues,
// the lock table, timer heaps, event-channel and grant-table linkage, and
// the domain list — and classifies every invariant violation it finds:
//
//   - Repaired: fixed in place, in the spirit of the paper's Table I
//     recovery enhancements (rewrite from a reliable source, or
//     re-initialize to a fixed valid value).
//   - Degraded: the damage is confined to one AppVM's state; the repair
//     sacrifices that VM (fails its guest) and the system keeps going.
//   - Escalate: the damage cannot be repaired or confined; the attempt
//     must fall through to the next ladder rung (or fail terminally).
//
// The auditor is deliberately deterministic: every walk iterates in a
// stable order (domain insertion order, sorted table owners, timer
// (CPU, name) order) and it consumes no random numbers, so enabling it
// never perturbs the simulation's random sequences — campaign summaries
// stay bit-identical at any parallelism.
package audit

import (
	"fmt"
	"sort"
	"time"

	"nilihype/internal/dom"
	"nilihype/internal/evtchn"
	"nilihype/internal/hv"
	"nilihype/internal/recdomain"
	"nilihype/internal/telemetry"
)

// Verdict classifies one violation's disposition.
type Verdict int

// Verdicts.
const (
	// Repaired: fixed in place; no guest-visible loss.
	Repaired Verdict = iota + 1
	// Degraded: repaired by sacrificing the affected AppVM.
	Degraded
	// Escalate: not repairable at this rung; the attempt must escalate.
	Escalate
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case Repaired:
		return "repaired"
	case Degraded:
		return "degraded"
	case Escalate:
		return "escalate"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Violation classes, one per audited structure family.
const (
	ClassDomainList    = "domain-list"
	ClassStaticScratch = "static-scratch"
	ClassHeapFreeList  = "heap-freelist"
	ClassHeapObject    = "heap-object"
	ClassFrames        = "pf-descriptor"
	ClassSched         = "sched-meta"
	ClassLocks         = "lock-table"
	ClassTimers        = "timer-heap"
	ClassEvtchn        = "evtchn-link"
	ClassGrant         = "grant-count"
	ClassIOAPIC        = "ioapic-route"
)

// Violation is one invariant violation the auditor found.
type Violation struct {
	Class   string
	Detail  string
	Verdict Verdict
}

// Report is the outcome of one audit pass.
type Report struct {
	Violations []Violation
	// Repaired counts Repaired verdicts; Escalations counts Escalate
	// verdicts. Degraded verdicts appear in Sacrificed.
	Repaired    int
	Escalations int
	// Sacrificed lists the domain IDs failed by degradation.
	Sacrificed []int
	// Timing is the recovery-domain latency accounting of the
	// partitioned walk (Options.RepairCPUs > 1); zero for the monolithic
	// walk.
	Timing recdomain.Timing
}

func (r *Report) add(class, detail string, v Verdict) {
	r.Violations = append(r.Violations, Violation{Class: class, Detail: detail, Verdict: v})
	switch v {
	case Repaired:
		r.Repaired++
	case Escalate:
		r.Escalations++
	}
}

// MustEscalate reports whether any violation requires escalation.
func (r *Report) MustEscalate() bool { return r.Escalations > 0 }

// Options tunes one audit pass.
type Options struct {
	// SkipFrames skips the page-frame descriptor walk — the engine sets
	// it when the attempt's EnhPFScan enhancement already performed (and
	// paid for) that scan.
	SkipFrames bool
	// SkipSched skips the scheduler-consistency walk, likewise for
	// EnhSchedRepair.
	SkipSched bool

	// RepairCPUs > 1 selects the recovery-domain-partitioned walk: the
	// audit is decomposed into per-CPU, per-guest-domain and global
	// units, independent units run concurrently, and Report.Timing
	// charges each phase as the max over parallel domains plus the
	// serialized global work on that many simulated CPUs. 0/1 keeps the
	// historical monolithic serial walk.
	RepairCPUs int
	// SerialExec executes the partitioned walk's units sequentially
	// while keeping the identical parallel latency model — the
	// equivalence suite's serial baseline. Reports are bit-identical
	// either way; only host-side goroutine use differs.
	SerialExec bool
	// FrameScanCost is the modeled cost of the partitioned walk's
	// page-frame unit (the engine computes it from memory size and scan
	// parallelism). Ignored by the monolithic walk, which derives the
	// cost in the engine.
	FrameScanCost time.Duration
}

// Run audits the paused hypervisor and repairs what it can. It must be
// called while recovery holds the system paused, after the attempt's own
// repair enhancements have run.
func Run(h *hv.Hypervisor, opts Options) *Report {
	if opts.RepairCPUs > 1 {
		return runPartitioned(h, opts)
	}
	r := &Report{}
	now := h.Clock.Now()
	doms := h.Domains.Preserved()

	// Domain list first: later walks want a traversable list.
	if err := h.Domains.CheckLinks(); err != nil {
		fixed := h.Domains.Rebuild()
		r.add(ClassDomainList, fmt.Sprintf("relinked from %d preserved structures (%d links fixed)", len(doms), fixed), Repaired)
	}

	// Static scratch: rewrite damaged words to the boot-time pattern.
	if damaged := h.StaticScratchDamage(); len(damaged) > 0 {
		for _, w := range damaged {
			r.add(ClassStaticScratch, fmt.Sprintf("scratch word %d does not match boot pattern", w), Repaired)
		}
		h.ReinitStaticScratch()
	}

	// Heap free list: the frame table is the reliable source; rebuild.
	if probs := h.Heap.ValidateFreeList(); len(probs) > 0 {
		for _, p := range probs {
			r.add(ClassHeapFreeList, p, Repaired)
		}
		h.Heap.Rebuild()
	}

	// Live heap objects: damage confined to an AppVM's struct domain is
	// degradable (re-initialize the object, sacrifice the VM); anything
	// else — PrivVM or a non-domain object — escalates, because both
	// mechanisms reuse live objects in place (§VII-A failure cause 3).
	for _, o := range h.Heap.DamagedObjects() {
		var owner *dom.Domain
		for _, d := range doms {
			if d.Obj == o {
				owner = d
				break
			}
		}
		if owner != nil && !owner.IsPriv {
			o.Repair()
			owner.Fail("heap object corrupted; VM sacrificed by recovery audit")
			r.Sacrificed = append(r.Sacrificed, owner.ID)
			r.add(ClassHeapObject, fmt.Sprintf("object %q re-initialized; d%d sacrificed", o.Tag, owner.ID), Degraded)
			continue
		}
		r.add(ClassHeapObject, fmt.Sprintf("object %q damaged and not confinable", o.Tag), Escalate)
	}

	// Page-frame descriptors (unless the PF-scan enhancement already ran).
	if !opts.SkipFrames {
		if bad := h.Frames.InconsistentFrames(); len(bad) > 0 {
			fixed := h.Frames.ScanAndRepair()
			r.add(ClassFrames, fmt.Sprintf("%d inconsistent descriptors rewritten", fixed), Repaired)
		}
	}

	// Scheduler metadata (unless the sched-repair enhancement already ran).
	if !opts.SkipSched {
		if incs := h.Sched.CheckConsistency(); len(incs) > 0 {
			fixed := h.Sched.RepairFromPerCPU()
			r.add(ClassSched, fmt.Sprintf("%d inconsistencies; %d fields rewritten from per-CPU state", len(incs), fixed), Repaired)
		}
	}

	// Lock table: every owner thread was discarded, so any held lock is a
	// leak. The basic ladder rungs may have released these already; the
	// audit is the backstop.
	for _, l := range h.Locks.HeldLocks() {
		l.ForceRelease()
		r.add(ClassLocks, fmt.Sprintf("%s lock %q held by discarded thread", l.Kind(), l.Name()), Repaired)
	}

	// Timer heaps: deadline bounds, heap order, and soft-tick liveness.
	if probs := h.Timers.CheckHealth(now); len(probs) > 0 {
		fixed := h.Timers.RepairHeaps(now)
		for _, p := range probs {
			r.add(ClassTimers, fmt.Sprintf("%s (clamped; %d deadlines fixed)", p, fixed), Repaired)
		}
	}
	if inactive := h.Timers.InactiveRecurring(); len(inactive) > 0 {
		sort.Slice(inactive, func(i, j int) bool {
			if inactive[i].CPU != inactive[j].CPU {
				return inactive[i].CPU < inactive[j].CPU
			}
			return inactive[i].Name < inactive[j].Name
		})
		names := make([]string, len(inactive))
		for i, t := range inactive {
			names[i] = t.Name
		}
		h.Timers.ReactivateRecurring(now)
		r.add(ClassTimers, fmt.Sprintf("%d recurring timers dead (%v); reactivated", len(inactive), names), Repaired)
	}

	auditIOAPIC(h, r)

	auditEvtchn(h, doms, r)
	auditGrants(h, doms, r)

	degraded := len(r.Violations) - r.Repaired - r.Escalations
	h.Tel.Inc(telemetry.CtrAuditRuns)
	h.Tel.Add(telemetry.CtrAuditViolations, uint64(len(r.Violations)))
	h.Tel.Add(telemetry.CtrAuditRepairs, uint64(r.Repaired))
	h.Tel.Add(telemetry.CtrAuditDegraded, uint64(degraded))
	h.Tel.Add(telemetry.CtrAuditEscalate, uint64(r.Escalations))
	h.Tel.Record(0, telemetry.EvAudit, telemetry.AuditArg(len(r.Violations), r.Repaired, r.Escalations))
	return r
}

// auditIOAPIC compares the IO-APIC redirection table against the software
// copy recorded at boot and reprograms any diverged entry — the
// device-corruption repair. (A stranded in-service line is cleared by the
// attempt's interrupt-acknowledge mechanism, not here: the audit only
// touches route state it can check against a reliable source.)
func auditIOAPIC(h *hv.Hypervisor, r *Report) {
	io := h.Machine.IOAPIC()
	if n := io.RouteDamage(); n > 0 {
		fixed := io.ReprogramFromBoot()
		h.Tel.Inc(telemetry.CtrIOAPICRepairs)
		r.add(ClassIOAPIC, fmt.Sprintf("%d redirection entries diverged from boot routes; %d reprogrammed", n, fixed), Repaired)
	}
}

// auditEvtchn validates inter-domain event-channel linkage in two passes.
// Pass 1 repairs damaged ports from the surviving half of the link: a port
// whose peer field is garbled is found via whichever port still points at
// it, and rewritten. The close decision waits for pass 2 — a broken port
// may be the intact half of a pair whose other half pass 1 has yet to
// repair, and closing it first would destroy the only reliable source.
// Pass 2 closes ports that are still broken; losing an I/O ring channel
// this way is fatal to the owning AppVM, which is sacrificed.
func auditEvtchn(h *hv.Hypervisor, doms []*dom.Domain, r *Report) {
	domByID := make(map[int]*dom.Domain, len(doms))
	for _, d := range doms {
		domByID[d.ID] = d
	}
	for _, o := range h.Broker.Owners() {
		t := h.Broker.Table(o)
		for p := 1; p < t.Len(); p++ {
			port, _ := t.Port(p)
			if port.State != evtchn.Interdomain || linkIntact(h, o, p, port) {
				continue
			}
			if qd, q, ok := h.Broker.FindBacklink(o, p); ok {
				port.RemoteDom, port.RemotePort = qd, q
				r.add(ClassEvtchn, fmt.Sprintf("d%d port %d relinked to d%d port %d via backlink", o, p, qd, q), Repaired)
			}
		}
	}
	for _, o := range h.Broker.Owners() {
		t := h.Broker.Table(o)
		for p := 1; p < t.Len(); p++ {
			port, _ := t.Port(p)
			if port.State != evtchn.Interdomain || linkIntact(h, o, p, port) {
				continue
			}
			_ = t.Close(p)
			d := domByID[o]
			if d != nil && !d.IsPriv && d.RingPort == p {
				d.Fail("I/O ring event channel lost; VM sacrificed by recovery audit")
				r.Sacrificed = append(r.Sacrificed, d.ID)
				r.add(ClassEvtchn, fmt.Sprintf("d%d ring port %d unrecoverable; closed, d%d sacrificed", o, p, d.ID), Degraded)
				continue
			}
			r.add(ClassEvtchn, fmt.Sprintf("d%d port %d unrecoverable; closed", o, p), Repaired)
		}
	}
}

// linkIntact reports whether an Interdomain port's peer exists and links
// back.
func linkIntact(h *hv.Hypervisor, owner, p int, port *evtchn.Port) bool {
	rt := h.Broker.Table(port.RemoteDom)
	if rt == nil {
		return false
	}
	rp, err := rt.Port(port.RemotePort)
	if err != nil {
		return false
	}
	return rp.State == evtchn.Interdomain && rp.RemoteDom == owner && rp.RemotePort == p
}

// auditGrants recomputes every grant entry's mapping count from the
// maptrack tables (the hypervisor-side reliable source) and rewrites any
// entry that disagrees.
func auditGrants(h *hv.Hypervisor, doms []*dom.Domain, r *Report) {
	type key struct{ dom, ref int }
	expected := make(map[key]int)
	for _, d := range doms {
		if d.Maptrack == nil {
			continue
		}
		for _, mp := range d.Maptrack.Mappings() {
			expected[key{mp.GranterDom, mp.Ref}]++
		}
	}
	for _, d := range doms {
		if d.GrantTab == nil {
			continue
		}
		for ref := 0; ref < d.GrantTab.Len(); ref++ {
			e, err := d.GrantTab.Entry(ref)
			if err != nil {
				continue
			}
			want := expected[key{d.ID, ref}]
			if e.MapCount != want {
				r.add(ClassGrant, fmt.Sprintf("d%d grant ref %d map count %d, maptrack says %d; rewritten", d.ID, ref, e.MapCount, want), Repaired)
				e.MapCount = want
			}
		}
	}
}
