package hv

import (
	"strings"
	"testing"

	"nilihype/internal/hypercall"
)

func TestConsoleRingBasics(t *testing.T) {
	c := NewConsole(3)
	c.Write("a")
	c.Write("b")
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	got := c.Drain()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Drain = %v", got)
	}
	if c.Len() != 0 {
		t.Fatal("ring not cleared")
	}
}

func TestConsoleRingOverwritesOldest(t *testing.T) {
	c := NewConsole(3)
	for _, m := range []string{"1", "2", "3", "4", "5"} {
		c.Write(m)
	}
	got := c.Drain()
	if len(got) != 3 || got[0] != "3" || got[2] != "5" {
		t.Fatalf("Drain = %v, want oldest overwritten", got)
	}
	if c.Written != 5 || c.Dropped != 2 {
		t.Fatalf("written=%d dropped=%d", c.Written, c.Dropped)
	}
}

func TestConsoleDefaultCapacity(t *testing.T) {
	c := NewConsole(0)
	if c.cap != 256 {
		t.Fatalf("cap = %d", c.cap)
	}
}

func TestConsoleIOLandsInRing(t *testing.T) {
	h, _ := newBooted(t)
	addAppVM(t, h, 1, 1)
	h.Dispatch(1, &hypercall.Call{Op: hypercall.OpConsoleIO, Dom: 1})
	msgs := h.Cons.Drain()
	if len(msgs) != 1 || !strings.Contains(msgs[0], "d1") {
		t.Fatalf("console = %v", msgs)
	}
}

func TestPanicLogsToConsole(t *testing.T) {
	h, _ := newBooted(t)
	h.SetPanicHook(func(int, string) {})
	h.Panic(2, "something broke")
	msgs := h.Cons.Drain()
	found := false
	for _, m := range msgs {
		if strings.Contains(m, "cpu2 panic: something broke") {
			found = true
		}
	}
	if !found {
		t.Fatalf("panic not logged: %v", msgs)
	}
}
