package core

import (
	"strings"
	"testing"
	"time"

	"nilihype/internal/hv"
	"nilihype/internal/hypercall"
)

func TestConfigMaxAttemptsAndMechanismFor(t *testing.T) {
	for _, tt := range []struct {
		name     string
		cfg      Config
		wantMax  int
		wantMech []Mechanism // per attempt index 0..len-1
	}{
		{"one-shot zero value", Config{Mechanism: Microreset}, 1,
			[]Mechanism{Microreset, Microreset}},
		{"ladder implies attempts", Config{Mechanism: Microreset,
			Escalation: EscalationPolicy{Ladder: []Mechanism{Microreset, Microreboot}}}, 2,
			[]Mechanism{Microreset, Microreboot, Microreboot}},
		{"max beyond ladder reuses last rung", Config{Mechanism: Microreset,
			Escalation: EscalationPolicy{MaxAttempts: 3, Ladder: []Mechanism{Microreset, Microreboot}}}, 3,
			[]Mechanism{Microreset, Microreboot, Microreboot}},
		{"max without ladder repeats mechanism", Config{Mechanism: Microreboot,
			Escalation: EscalationPolicy{MaxAttempts: 2}}, 2,
			[]Mechanism{Microreboot, Microreboot}},
	} {
		if got := tt.cfg.MaxAttempts(); got != tt.wantMax {
			t.Errorf("%s: MaxAttempts = %d, want %d", tt.name, got, tt.wantMax)
		}
		for i, want := range tt.wantMech {
			if got := tt.cfg.MechanismFor(i); got != want {
				t.Errorf("%s: MechanismFor(%d) = %v, want %v", tt.name, i, got, want)
			}
		}
	}
}

func TestHybridFirstAttemptSuffices(t *testing.T) {
	r := newRig(t, HybridConfig(), 512)
	r.clk.RunUntil(50 * time.Millisecond)
	r.injectPanicAtBudget(t, 250)
	r.clk.RunUntil(2 * time.Second)
	if r.engine.Status() != StatusRecovered {
		t.Fatalf("status = %v (%s)", r.engine.Status(), r.engine.FailReason)
	}
	if len(r.engine.Attempts) != 1 || r.engine.Escalated() {
		t.Fatalf("attempts = %d, want 1 (no escalation for a plain failstop)", len(r.engine.Attempts))
	}
	if r.engine.Attempts[0].Mechanism != Microreset {
		t.Fatalf("first rung = %v, want Microreset", r.engine.Attempts[0].Mechanism)
	}
	if r.engine.TotalLatency() != r.engine.Latency {
		t.Fatalf("TotalLatency %v != Latency %v for a single attempt",
			r.engine.TotalLatency(), r.engine.Latency)
	}
	// Microreset territory: far below any reboot latency.
	if r.engine.TotalLatency() > 25*time.Millisecond {
		t.Fatalf("latency %v not in microreset territory", r.engine.TotalLatency())
	}
}

func TestHybridEscalatesStaticScratchCorruption(t *testing.T) {
	// Microreset alone fails on corrupted static scratch state
	// (TestStaticScratchCorruption); the hybrid ladder escalates to a
	// microreboot, which re-initializes it during boot. The reboot window
	// (~450 ms at 512 MB) is longer than the watchdog hang declaration,
	// so this also exercises the detection-suppression during an
	// escalated attempt's recovery window.
	r := newRig(t, HybridConfig(), 512)
	r.clk.RunUntil(50 * time.Millisecond)
	r.h.CorruptStaticScratchWord(testRNG())
	r.injectPanicAtBudget(t, 250)
	r.clk.RunUntil(5 * time.Second)
	if r.engine.Status() != StatusRecovered {
		t.Fatalf("hybrid did not recover: %v (%s)", r.engine.Status(), r.engine.FailReason)
	}
	if !r.engine.Escalated() || len(r.engine.Attempts) != 2 {
		t.Fatalf("attempts = %d, want exactly 2", len(r.engine.Attempts))
	}
	a0, a1 := r.engine.Attempts[0], r.engine.Attempts[1]
	if a0.Mechanism != Microreset || a1.Mechanism != Microreboot {
		t.Fatalf("ladder rungs = %v, %v", a0.Mechanism, a1.Mechanism)
	}
	if !strings.Contains(a0.FailReason, "static") {
		t.Fatalf("attempt 1 FailReason = %q, want static-scratch cause", a0.FailReason)
	}
	if a1.FailReason != "" {
		t.Fatalf("successful attempt has FailReason %q", a1.FailReason)
	}
	if got := a0.Latency + a1.Latency; r.engine.TotalLatency() != got {
		t.Fatalf("TotalLatency %v != attempt sum %v", r.engine.TotalLatency(), got)
	}
	if r.engine.Latency != a1.Latency {
		t.Fatalf("Engine.Latency %v != last attempt %v", r.engine.Latency, a1.Latency)
	}
	if len(a0.Breakdown) == 0 || len(a1.Breakdown) == 0 {
		t.Fatal("per-attempt breakdowns missing")
	}
	if len(r.h.StaticScratchDamage()) != 0 {
		t.Fatal("escalated reboot did not re-initialize static scratch")
	}
}

func TestEscalationExhaustionAllocObject(t *testing.T) {
	// Live heap objects are reused by both rungs: attempt 1 (microreset)
	// and attempt 2 (microreboot) both fail, the ladder is exhausted, and
	// the run fails terminally with per-attempt records.
	r := newRig(t, HybridConfig(), 512)
	r.clk.RunUntil(50 * time.Millisecond)
	if tag := r.h.Heap.CorruptRandomObject(testRNG()); tag == "no live objects" {
		t.Fatal("no live heap object to corrupt")
	}
	r.injectPanicAtBudget(t, 250)
	r.clk.RunUntil(5 * time.Second)
	if r.engine.Status() != StatusFailed {
		t.Fatalf("status = %v, want failed", r.engine.Status())
	}
	if len(r.engine.Attempts) != 2 {
		t.Fatalf("attempts = %d, want MaxAttempts = 2", len(r.engine.Attempts))
	}
	for i, a := range r.engine.Attempts {
		if a.FailReason == "" {
			t.Fatalf("attempt %d has no FailReason", i+1)
		}
	}
	if failed, _ := r.h.Failed(); !failed {
		t.Fatal("hypervisor not marked failed after exhaustion")
	}
	if !strings.Contains(r.engine.FailReason, "heap object") {
		t.Fatalf("FailReason = %q", r.engine.FailReason)
	}
}

// recoverOnce drives a failstop through the rig and returns the virtual
// time at which the first attempt's system resumed.
func recoverOnce(t *testing.T, r *rig) time.Duration {
	t.Helper()
	r.clk.RunUntil(50 * time.Millisecond)
	r.injectPanicAtBudget(t, 250)
	r.clk.RunUntil(200 * time.Millisecond)
	if !r.engine.recovered {
		t.Fatalf("first attempt did not complete: %v (%s)", r.engine.Status(), r.engine.FailReason)
	}
	return r.engine.Attempts[0].StartedAt + r.engine.Attempts[0].Latency
}

// injectPanicAtPage is injectPanicAtBudget on a distinct page, so a
// re-injection after a completed recovery does not double-pin the page
// the first retry already pinned.
func (r *rig) injectPanicAtPage(t *testing.T, budget int64, pageOff uint64) {
	t.Helper()
	r.h.ArmInjection(budget, func(hv.InjectionPoint) (hv.InjectAction, string) {
		return hv.ActionPanic, "failstop"
	})
	d, err := r.h.Domain(1)
	if err != nil {
		t.Fatal(err)
	}
	r.h.Dispatch(1, &hypercall.Call{Op: hypercall.OpMMUUpdate, Dom: 1,
		Args: [4]uint64{hypercall.MMUPin, uint64(d.MemStart) + pageOff}})
}

func TestDetectionDuringGraceWindowEscalates(t *testing.T) {
	r := newRig(t, HybridConfig(), 512)
	resumedAt := recoverOnce(t, r)
	// Re-detect inside the grace window: a second panic well before
	// resume + 500 ms.
	r.clk.RunUntil(resumedAt + 100*time.Millisecond)
	r.injectPanicAtPage(t, 250, 11)
	r.clk.RunUntil(resumedAt + 3*time.Second)
	if r.engine.Status() != StatusRecovered {
		t.Fatalf("escalation did not recover: %v (%s)", r.engine.Status(), r.engine.FailReason)
	}
	if len(r.engine.Attempts) != 2 || r.engine.Attempts[1].Mechanism != Microreboot {
		t.Fatalf("attempts = %+v, want microreboot second attempt", r.engine.Attempts)
	}
	if !strings.Contains(r.engine.Attempts[0].FailReason, "post-recovery failure") {
		t.Fatalf("attempt 1 FailReason = %q", r.engine.Attempts[0].FailReason)
	}
}

func TestDetectionAfterGraceWindowIsTerminal(t *testing.T) {
	r := newRig(t, HybridConfig(), 512)
	resumedAt := recoverOnce(t, r)
	// Past the grace window the recovery is considered stable: a later
	// failure is terminal even though a ladder rung remains.
	r.clk.RunUntil(resumedAt + DefaultGraceWindow + 200*time.Millisecond)
	r.injectPanicAtBudget(t, 250)
	if r.engine.Status() != StatusFailed {
		t.Fatalf("status = %v, want terminal failure", r.engine.Status())
	}
	if len(r.engine.Attempts) != 1 {
		t.Fatalf("attempts = %d, want 1 (no escalation after grace)", len(r.engine.Attempts))
	}
	if !strings.Contains(r.engine.FailReason, "post-recovery failure") {
		t.Fatalf("FailReason = %q", r.engine.FailReason)
	}
	if failed, _ := r.h.Failed(); !failed {
		t.Fatal("hypervisor not failed")
	}
}

func TestGraceWindowDefersOnRecovered(t *testing.T) {
	r := newRig(t, HybridConfig(), 512)
	var resumes int
	var recoveredAt time.Duration
	r.engine.OnResume = func() { resumes++ }
	r.engine.OnRecovered = func() { recoveredAt = r.clk.Now() }
	resumedAt := recoverOnce(t, r)
	if resumes != 1 {
		t.Fatalf("OnResume fired %d times, want 1", resumes)
	}
	if recoveredAt != 0 {
		t.Fatal("OnRecovered fired before the grace window passed")
	}
	r.clk.RunUntil(resumedAt + DefaultGraceWindow + 100*time.Millisecond)
	if recoveredAt == 0 {
		t.Fatal("OnRecovered never fired after a quiet grace window")
	}
	if got := recoveredAt - resumedAt; got < DefaultGraceWindow {
		t.Fatalf("OnRecovered fired %v after resume, want >= grace window", got)
	}
}

func TestOnRecoveredImmediateWithoutEscalation(t *testing.T) {
	// One-shot configurations keep the historical semantics: OnRecovered
	// fires at resume, with no grace delay.
	r := newRig(t, DefaultConfig(), 512)
	var resumes, recoveries int
	r.engine.OnResume = func() { resumes++ }
	r.engine.OnRecovered = func() { recoveries++ }
	recoverOnce(t, r)
	if resumes != 1 || recoveries != 1 {
		t.Fatalf("resumes=%d recoveries=%d, want 1/1 at resume", resumes, recoveries)
	}
}

func TestEscalatedOnResumeFiresPerAttempt(t *testing.T) {
	r := newRig(t, HybridConfig(), 512)
	var resumes, recoveries int
	r.engine.OnResume = func() { resumes++ }
	r.engine.OnRecovered = func() { recoveries++ }
	r.clk.RunUntil(50 * time.Millisecond)
	r.h.CorruptStaticScratchWord(testRNG())
	r.injectPanicAtBudget(t, 250)
	r.clk.RunUntil(5 * time.Second)
	if r.engine.Status() != StatusRecovered {
		t.Fatalf("status = %v (%s)", r.engine.Status(), r.engine.FailReason)
	}
	// The static-scratch failure aborts attempt 1 before its resume, so
	// only the successful reboot attempt resumes; OnRecovered fires once.
	if resumes != 1 || recoveries != 1 {
		t.Fatalf("resumes=%d recoveries=%d, want 1/1", resumes, recoveries)
	}
}

// TestAuditRepairsStaticScratchWithoutEscalation: with the audit gate on,
// the damage that forces TestHybridEscalatesStaticScratchCorruption
// through a full microreboot is instead repaired in place during the first
// microreset attempt — the whole point of the audit rung.
func TestAuditRepairsStaticScratchWithoutEscalation(t *testing.T) {
	cfg := HybridConfig()
	cfg.Escalation.Audit = true
	r := newRig(t, cfg, 512)
	r.clk.RunUntil(50 * time.Millisecond)
	r.h.CorruptStaticScratchWord(testRNG())
	r.injectPanicAtBudget(t, 250)
	r.clk.RunUntil(2 * time.Second)
	if r.engine.Status() != StatusRecovered {
		t.Fatalf("status = %v (%s)", r.engine.Status(), r.engine.FailReason)
	}
	if r.engine.Escalated() || len(r.engine.Attempts) != 1 {
		t.Fatalf("attempts = %d, want 1 (audit repairs in place)", len(r.engine.Attempts))
	}
	a := r.engine.Attempts[0]
	if a.Mechanism != Microreset || a.FailReason != "" {
		t.Fatalf("attempt = %v fail=%q, want a clean microreset", a.Mechanism, a.FailReason)
	}
	if a.Audit == nil || len(a.Audit.Violations) == 0 {
		t.Fatal("attempt carries no audit report despite damage")
	}
	if r.engine.AuditViolations == 0 || r.engine.AuditRepaired == 0 {
		t.Fatalf("engine audit counters = %d/%d, want nonzero",
			r.engine.AuditViolations, r.engine.AuditRepaired)
	}
	if len(r.h.StaticScratchDamage()) != 0 {
		t.Fatal("audit did not repair the static scratch damage")
	}
	// The audit pass is charged to the latency breakdown.
	var charged bool
	for _, item := range a.Breakdown {
		if strings.Contains(item.Name, "audit") {
			charged = true
		}
	}
	if !charged {
		t.Fatalf("audit cost missing from breakdown: %+v", a.Breakdown)
	}
}

// TestAuditEngineKeepsDeferredWorkAcrossEscalation: a deferred action that
// trips fresh damage during the first attempt's resume re-enters recovery
// (re-pausing the system mid-drain); the remaining deferred work must stay
// queued and run only when the escalated attempt — audit gate included —
// resumes.
func TestAuditEngineKeepsDeferredWorkAcrossEscalation(t *testing.T) {
	cfg := HybridConfig()
	cfg.Escalation.Audit = true
	r := newRig(t, cfg, 512)
	r.clk.RunUntil(50 * time.Millisecond)
	r.injectPanicAtBudget(t, 250) // detection: attempt 1 starts, system pauses
	if !r.h.Paused() {
		t.Fatal("recovery did not pause the system")
	}
	var order []string
	var tailAttempts int
	r.h.WhenRunnable(func() {
		order = append(order, "re-detect")
		// The deferred action hits fresh damage: a new panic mid-resume
		// opens the escalated attempt (budget 0 = first step).
		r.injectPanicAtPage(t, 0, 13)
	})
	r.h.WhenRunnable(func() {
		order = append(order, "tail")
		tailAttempts = len(r.engine.Attempts)
	})
	r.clk.RunUntil(5 * time.Second)
	if r.engine.Status() != StatusRecovered {
		t.Fatalf("status = %v (%s)", r.engine.Status(), r.engine.FailReason)
	}
	if len(r.engine.Attempts) != 2 || r.engine.Attempts[1].Mechanism != Microreboot {
		t.Fatalf("attempts = %+v, want escalation to microreboot", r.engine.Attempts)
	}
	if len(order) != 2 || order[0] != "re-detect" || order[1] != "tail" {
		t.Fatalf("deferred work ran %v, want [re-detect tail]", order)
	}
	if tailAttempts != 2 {
		t.Fatalf("tail ran with %d attempts open, want 2 (after the escalated resume)", tailAttempts)
	}
	// Both attempts ran the audit gate.
	for i, a := range r.engine.Attempts {
		if a.Audit == nil {
			t.Fatalf("attempt %d has no audit report", i+1)
		}
	}
}

func TestMergePendingPrefersFreshRecords(t *testing.T) {
	en := &Engine{}
	c1, c2, c3 := &hypercall.Call{Op: 1}, &hypercall.Call{Op: 2}, &hypercall.Call{Op: 3}
	en.pending = []*hv.PendingCall{
		{CPU: 1, Call: c1, Step: 2},
		{CPU: 2, Call: c2, Step: 1},
	}
	// c2 was re-discarded mid-retry with fresher state; c3 is new.
	en.mergePending([]*hv.PendingCall{
		{CPU: 2, Call: c2, Step: 4, Poisoned: true},
		{CPU: 3, Call: c3, Step: 0},
	})
	if len(en.pending) != 3 {
		t.Fatalf("merged %d calls, want 3", len(en.pending))
	}
	if en.pending[0].Call != c1 || en.pending[1].Call != c2 || en.pending[2].Call != c3 {
		t.Fatalf("merge order wrong: %+v", en.pending)
	}
	if en.pending[1].Step != 4 || !en.pending[1].Poisoned {
		t.Fatal("stale record for re-discarded call survived the merge")
	}
}

func TestWorstCaseLatencyBoundsMeasured(t *testing.T) {
	const frames512MB = 512 * 1024 * 1024 / 4096
	for _, tt := range []struct {
		name string
		cfg  Config
	}{
		{"microreset", DefaultConfig()},
		{"microreboot", Config{Mechanism: Microreboot, Enhancements: AllEnhancements}},
		{"checkpoint", Config{Mechanism: CheckpointRestore, Enhancements: AllEnhancements}},
	} {
		r := newRig(t, tt.cfg, 512)
		r.clk.RunUntil(50 * time.Millisecond)
		r.injectPanicAtBudget(t, 250)
		r.clk.RunUntil(3 * time.Second)
		if r.engine.Status() != StatusRecovered {
			t.Fatalf("%s: %v (%s)", tt.name, r.engine.Status(), r.engine.FailReason)
		}
		if wc := tt.cfg.WorstCaseLatency(frames512MB); r.engine.TotalLatency() > wc {
			t.Fatalf("%s: measured %v exceeds WorstCaseLatency %v",
				tt.name, r.engine.TotalLatency(), wc)
		}
	}
	// The hybrid bound covers both rungs plus the grace window between.
	hybrid := HybridConfig()
	single := DefaultConfig().WorstCaseLatency(frames512MB)
	reboot := Config{Mechanism: Microreboot}.WorstCaseLatency(frames512MB)
	if wc := hybrid.WorstCaseLatency(frames512MB); wc < single+reboot+hybrid.Escalation.GraceWindow {
		t.Fatalf("hybrid worst case %v below rung sum", wc)
	}
}
