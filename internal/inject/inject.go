// Package inject is the software-implemented fault injector — the
// equivalent of the Gigan injector the paper ports and uses (§VI-C).
//
// Faults are injected through a two-level chained trigger: a first-level
// timer that fires at a random time inside the configured window, and a
// second-level trigger that fires after a uniformly random number of
// instructions (0..20000) have executed in the target hypervisor. Three
// fault types are injected: Failstop (PC := 0), Register (one random bit
// flip in one of the 16 GPRs / SP / FLAGS / PC), and Code (a bit flip in
// the next instruction's bytes, "repaired" on detection so its effects are
// transient).
//
// The architectural consequence of a bit flip (masked / immediate
// exception / wedge / silent corruption with delayed detection / silent
// data corruption) is drawn from per-fault-type manifestation
// distributions whose parameters are the paper's own measured outcome
// breakdowns (§VII-A: Register 74.8/5.6/19.6, Code 35.0/12.1/52.9);
// what happens *after* that — whether recovery succeeds — is decided
// mechanistically by the simulated hypervisor state.
package inject

import (
	"fmt"
	"math/rand/v2"
	"time"

	"nilihype/internal/hv"
	"nilihype/internal/hw"
)

// FaultType selects what is injected.
type FaultType int

// Fault types (§VI-C).
const (
	Failstop FaultType = iota + 1
	Register
	Code
)

// String returns the fault type name.
func (f FaultType) String() string {
	switch f {
	case Failstop:
		return "Failstop"
	case Register:
		return "Register"
	case Code:
		return "Code"
	default:
		return fmt.Sprintf("fault(%d)", int(f))
	}
}

// GuestCorrupter lets the injector damage guest-visible data (the SDC
// path). Implemented by guest.World.
type GuestCorrupter interface {
	CorruptGuestData(dom int)
}

// Params configures one injection.
type Params struct {
	Type FaultType
	// WindowLo/WindowHi bound the first-level (timer) trigger.
	WindowLo, WindowHi time.Duration
	// MaxInstrBudget bounds the second-level trigger (paper: 20000).
	MaxInstrBudget int64
	// AppDomains are candidate victims for guest-data corruption.
	AppDomains []int
}

// DefaultMaxInstrBudget is the paper's second-level trigger bound.
const DefaultMaxInstrBudget = 20000

// Effect describes what the injected fault did architecturally.
type Effect int

// Effects.
const (
	EffectNone   Effect = iota + 1 // masked: dead register/bit
	EffectSDC                      // silently corrupted guest data
	EffectPanic                    // immediate fatal exception
	EffectWedge                    // wild execution, no progress
	EffectLatent                   // corrupted hypervisor state, detected later
)

// String returns the effect name.
func (e Effect) String() string {
	switch e {
	case EffectNone:
		return "none"
	case EffectSDC:
		return "sdc"
	case EffectPanic:
		return "panic"
	case EffectWedge:
		return "wedge"
	case EffectLatent:
		return "latent"
	default:
		return fmt.Sprintf("effect(%d)", int(e))
	}
}

// manifestDist is a manifestation distribution: the probabilities of each
// architectural effect; the remainder is EffectLatent.
type manifestDist struct {
	dead, sdc, immediate, wedge float64
}

// Distributions per fault type. Failstop is deterministic. Register and
// Code reproduce the paper's measured outcome breakdowns (§VII-A):
//   - Register: 74.8% non-manifested, 5.6% SDC, 19.6% detected
//     (immediate + wedge + latent = 0.118 + 0.020 + 0.058 = 0.196).
//   - Code: 35.0% non-manifested, 12.1% SDC, 52.9% detected
//     (0.250 + 0.060 + 0.219 = 0.529).
var (
	registerDist = manifestDist{dead: 0.748, sdc: 0.056, immediate: 0.118, wedge: 0.020}
	codeDist     = manifestDist{dead: 0.350, sdc: 0.121, immediate: 0.250, wedge: 0.060}
)

// Detection-latency bounds for latent corruption. Code faults are
// detected significantly later than register faults (§VII-A "likely due
// to the significantly longer detection latency of these faults"),
// giving errors more time to propagate.
const (
	registerLatencyLo = 200 * time.Microsecond
	registerLatencyHi = 5 * time.Millisecond
	codeLatencyLo     = 1 * time.Millisecond
	codeLatencyHi     = 50 * time.Millisecond
)

// corruptionDist gives the per-class probabilities of what latent
// corruption damages (the rest is scratch state with no further
// consequence). The classes map to the paper's top three recovery-failure
// causes (§VII-A) plus the mechanisms' repairable hazards.
type corruptionDist struct {
	pfDesc       float64 // page-frame descriptor (repaired by the scan)
	schedMeta    float64 // scheduling metadata (repaired by the enhancement)
	heapFreelist float64 // heap free list (reboot rebuilds; microreset keeps)
	domList      float64 // domain list (reboot relinks; microreset keeps)
	staticScr    float64 // static-segment state (reboot re-inits; microreset keeps)
	allocObj     float64 // live heap object (reused by BOTH mechanisms)
	privVM       float64 // PrivVM state (fatal: failure cause 2)
	recovery     float64 // recovery-path state (fatal: failure cause 1)
}

var (
	registerCorruption = corruptionDist{
		pfDesc: 0.28, schedMeta: 0.22, heapFreelist: 0.030, domList: 0.016,
		staticScr: 0.062, allocObj: 0.016, privVM: 0.012, recovery: 0.012,
	}
	// Code faults propagate further before detection: more damage lands
	// in fatal and reboot-only-recoverable state.
	codeCorruption = corruptionDist{
		pfDesc: 0.24, schedMeta: 0.20, heapFreelist: 0.030, domList: 0.016,
		staticScr: 0.045, allocObj: 0.028, privVM: 0.016, recovery: 0.014,
	}
)

// Injector performs one fault injection per run.
type Injector struct {
	H     *hv.Hypervisor
	World GuestCorrupter

	params Params
	rng    *rand.Rand

	// Fired reports whether the second-level trigger fired.
	Fired bool
	// Point is the execution context the fault landed in.
	Point hv.InjectionPoint
	// FaultEffect records the architectural effect drawn.
	FaultEffect Effect
	// Corruptions lists the latent corruption classes applied.
	Corruptions []string
	// Reg/Bit identify the flipped bit (Register faults).
	Reg hw.Reg
	Bit int
}

// New builds an injector. The rng must be a dedicated stream so that
// injection decisions never perturb workload randomness.
func New(h *hv.Hypervisor, world GuestCorrupter, rng *rand.Rand, p Params) *Injector {
	if p.MaxInstrBudget == 0 {
		p.MaxInstrBudget = DefaultMaxInstrBudget
	}
	return &Injector{H: h, World: world, params: p, rng: rng}
}

// Schedule arms the two-level trigger: at a random time in the window,
// arm the instruction-count trigger.
func (inj *Injector) Schedule() {
	span := inj.params.WindowHi - inj.params.WindowLo
	var at time.Duration
	if span > 0 {
		at = inj.params.WindowLo + time.Duration(inj.rng.Int64N(int64(span)))
	} else {
		at = inj.params.WindowLo
	}
	inj.H.Clock.At(at, "inject-arm", func() {
		budget := inj.rng.Int64N(inj.params.MaxInstrBudget + 1)
		inj.H.ArmInjection(budget, inj.onInject)
	})
}

// onInject is invoked by the hypervisor at the triggered step.
func (inj *Injector) onInject(pt hv.InjectionPoint) (hv.InjectAction, string) {
	inj.Fired = true
	inj.Point = pt

	switch inj.params.Type {
	case Failstop:
		inj.FaultEffect = EffectPanic
		return hv.ActionPanic, "failstop: PC forced to 0 (fatal page fault)"
	case Register:
		inj.Reg = hw.Reg(inj.rng.IntN(hw.NumInjectableRegs))
		inj.Bit = inj.rng.IntN(64)
		inj.flipRegister(pt.CPU)
		return inj.manifest(pt, registerDist, registerCorruption, registerLatencyLo, registerLatencyHi)
	case Code:
		// The code fault is "repaired" on detection, so like Register
		// faults its effects are transient (§VI-C).
		return inj.manifest(pt, codeDist, codeCorruption, codeLatencyLo, codeLatencyHi)
	default:
		inj.FaultEffect = EffectNone
		return hv.ActionContinue, ""
	}
}

// flipRegister applies the architectural bit flip to the CPU's register
// file (the manifestation model decides its semantic consequence).
func (inj *Injector) flipRegister(cpu int) {
	inj.H.Machine.CPU(cpu).Regs[inj.Reg] ^= 1 << uint(inj.Bit)
}

// manifest draws the architectural effect and applies it.
func (inj *Injector) manifest(pt hv.InjectionPoint, d manifestDist, cd corruptionDist,
	latLo, latHi time.Duration) (hv.InjectAction, string) {

	r := inj.rng.Float64()
	switch {
	case r < d.dead:
		inj.FaultEffect = EffectNone
		return hv.ActionContinue, ""
	case r < d.dead+d.sdc:
		inj.FaultEffect = EffectSDC
		inj.corruptGuest(pt)
		return hv.ActionContinue, ""
	case r < d.dead+d.sdc+d.immediate:
		inj.FaultEffect = EffectPanic
		return hv.ActionPanic, fmt.Sprintf("%v fault: fatal exception (%v bit %d)",
			inj.params.Type, inj.Reg, inj.Bit)
	case r < d.dead+d.sdc+d.immediate+d.wedge:
		inj.FaultEffect = EffectWedge
		return hv.ActionWedge, ""
	default:
		inj.FaultEffect = EffectLatent
		inj.applyLatentCorruption(pt, cd)
		inj.scheduleDetection(pt.CPU, latLo, latHi)
		return hv.ActionContinue, ""
	}
}

// corruptGuest damages the data of the issuing domain (if the fault hit a
// hypercall on behalf of a guest) or a random AppVM.
func (inj *Injector) corruptGuest(pt hv.InjectionPoint) {
	dom := -1
	if pt.Call != nil && pt.Call.Dom != 0 {
		dom = pt.Call.Dom
	} else if len(inj.params.AppDomains) > 0 {
		dom = inj.params.AppDomains[inj.rng.IntN(len(inj.params.AppDomains))]
	}
	if dom >= 0 && inj.World != nil {
		inj.World.CorruptGuestData(dom)
	}
}

// applyLatentCorruption damages hypervisor state per the corruption
// distribution. Code faults may corrupt more than one structure.
func (inj *Injector) applyLatentCorruption(pt hv.InjectionPoint, cd corruptionDist) {
	rounds := 1
	if inj.params.Type == Code && inj.rng.Float64() < 0.25 {
		rounds = 2
	}
	for i := 0; i < rounds; i++ {
		inj.corruptOnce(pt, cd)
	}
}

func (inj *Injector) corruptOnce(pt hv.InjectionPoint, cd corruptionDist) {
	h := inj.H
	r := inj.rng.Float64()
	cum := 0.0
	pick := func(p float64) bool {
		cum += p
		return r < cum
	}
	switch {
	case pick(cd.pfDesc):
		i := h.Frames.CorruptRandomDescriptor(inj.rng)
		inj.Corruptions = append(inj.Corruptions, fmt.Sprintf("pf-descriptor[%d]", i))
	case pick(cd.schedMeta):
		desc := h.Sched.CorruptRandom(inj.rng)
		inj.Corruptions = append(inj.Corruptions, "sched-meta:"+desc)
	case pick(cd.heapFreelist):
		h.Heap.Corrupted = true
		inj.Corruptions = append(inj.Corruptions, "heap-freelist")
	case pick(cd.domList):
		h.Domains.Corrupted = true
		inj.Corruptions = append(inj.Corruptions, "domain-list")
	case pick(cd.staticScr):
		h.CorruptStaticScratch = true
		inj.Corruptions = append(inj.Corruptions, "static-scratch")
	case pick(cd.allocObj):
		h.CorruptAllocatedObject = true
		inj.Corruptions = append(inj.Corruptions, "allocated-object")
	case pick(cd.privVM):
		if d, err := h.Domain(0); err == nil {
			d.Fail("PrivVM state corrupted by error propagation")
		}
		inj.Corruptions = append(inj.Corruptions, "privvm")
	case pick(cd.recovery):
		h.CorruptRecoveryPath = true
		inj.Corruptions = append(inj.Corruptions, "recovery-path")
	default:
		inj.Corruptions = append(inj.Corruptions, "scratch")
	}
}

// scheduleDetection arranges the delayed detection of latent corruption:
// after the drawn latency, the next hypervisor activity on the faulted CPU
// hits the damage and panics. If recovery already ran (a mechanistic
// assertion found the damage first), the stale detection is dropped.
func (inj *Injector) scheduleDetection(cpu int, lo, hi time.Duration) {
	lat := lo + time.Duration(inj.rng.Int64N(int64(hi-lo)))
	epoch := inj.H.RecoveryEpoch()
	inj.H.Clock.After(lat, "latent-detect", func() {
		if failed, _ := inj.H.Failed(); failed {
			return
		}
		if inj.H.RecoveryEpoch() != epoch {
			return
		}
		inj.H.PanicAtNextStep(cpu, fmt.Sprintf("%v fault: corrupted state hit (%v)",
			inj.params.Type, inj.Corruptions))
	})
}
