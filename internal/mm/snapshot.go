package mm

import "nilihype/internal/locking"

// FrameTableSnapshot is a full copy of the page frame descriptor array.
// At 1 GB (262144 descriptors) the copy is a few MB of memmove per
// restore — far cheaper than re-running boot, and allocation-free after
// the first capture.
type FrameTableSnapshot struct {
	frames []PageFrame
}

// Snapshot captures every descriptor.
func (ft *FrameTable) Snapshot() *FrameTableSnapshot {
	s := &FrameTableSnapshot{frames: make([]PageFrame, len(ft.frames))}
	copy(s.frames, ft.frames)
	return s
}

// Restore rewrites every descriptor from the snapshot.
func (ft *FrameTable) Restore(s *FrameTableSnapshot) {
	copy(ft.frames, s.frames)
}

// objectState is one live heap object's captured contents. The *Object
// pointer is part of the snapshot: domains and other structures hold
// references to their objects, so restore revives the same objects in
// place.
type objectState struct {
	obj    *Object
	tag    string
	pages  []int
	locks  []*locking.Lock
	canary uint64
}

// HeapSnapshot captures the heap allocator: the free list in LIFO order,
// the live-object set with each object's contents, and the ID counter.
type HeapSnapshot struct {
	free    []int
	objects []objectState
	nextID  uint64
}

// Snapshot captures the heap state. Objects are saved in ID order so a
// restore rebuilds the map deterministically (map iteration order is
// irrelevant to behavior, but the snapshot itself should not depend on
// it).
func (h *Heap) Snapshot() *HeapSnapshot {
	s := &HeapSnapshot{
		free:   append([]int(nil), h.free...),
		nextID: h.nextID,
	}
	for id := uint64(0); id < h.nextID; id++ {
		o, ok := h.objects[id]
		if !ok {
			continue
		}
		s.objects = append(s.objects, objectState{
			obj:    o,
			tag:    o.Tag,
			pages:  append([]int(nil), o.Pages...),
			locks:  append([]*locking.Lock(nil), o.locks...),
			canary: o.canary,
		})
	}
	return s
}

// Restore rewinds the heap to the snapshot: the free list regains its
// saved LIFO order (allocation order after a restore is bit-identical to
// allocation order after a fresh boot), objects allocated since the
// snapshot drop out of the object map, and snapshot objects — freed,
// corrupted, or mutated since — are revived in place with their saved
// contents.
func (h *Heap) Restore(s *HeapSnapshot) {
	h.free = append(h.free[:0], s.free...)
	h.nextID = s.nextID
	for id := range h.objects {
		delete(h.objects, id)
	}
	for i := range s.objects {
		st := &s.objects[i]
		o := st.obj
		o.Tag = st.tag
		o.Pages = append(o.Pages[:0], st.pages...)
		o.locks = append(o.locks[:0], st.locks...)
		o.freed = false
		o.canary = st.canary
		h.objects[o.ID] = o
	}
}
