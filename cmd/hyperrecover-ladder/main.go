// Command hyperrecover-ladder reproduces Table I: the incremental
// development of the NiLiHype enhancements, measured as the successful
// recovery rate with fail-stop faults in the 1AppVM setup.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nilihype/internal/campaign"
	"nilihype/internal/core"
	"nilihype/internal/guest"
	"nilihype/internal/inject"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hyperrecover-ladder:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runs     = flag.Int("runs", 400, "injection runs per ladder rung")
		duration = flag.Duration("duration", 2*time.Second, "benchmark duration (virtual time)")
		paper    = flag.Bool("paper", false, "paper-scale (10s benchmark)")
		parallel = flag.Int("parallel", 0, "concurrent runs (0 = GOMAXPROCS)")
	)
	flag.Parse()
	benchDur := *duration
	if *paper {
		benchDur = 10 * time.Second
	}

	fmt.Println("Table I — NiLiHype enhancement ladder (1AppVM, fail-stop faults)")
	fmt.Printf("%-52s %s\n", "Mechanism", "Successful Recovery Rate")
	for _, rung := range core.Ladder() {
		c := campaign.Campaign{
			Base: campaign.RunConfig{
				Setup:         campaign.OneAppVM,
				Fault:         inject.Failstop,
				Workload:      guest.UnixBench,
				Logging:       true,
				Recovery:      core.Config{Mechanism: core.Microreset, Enhancements: rung.Enh},
				BenchDuration: benchDur,
			},
			Runs:        *runs,
			Parallelism: *parallel,
		}
		s := c.Execute()
		rate, ci := s.SuccessRate()
		fmt.Printf("%-52s %5.1f%% ± %.1f%%\n", rung.Label, 100*rate, 100*ci)
	}
	return nil
}
