package telemetry

import (
	"fmt"
	"time"
)

// EventCode classifies flight-recorder events.
type EventCode uint16

// Flight-recorder event codes. Arg semantics per code are documented
// inline; "interned" means the arg is an Intern ID resolved via Str.
const (
	EvDispatch     EventCode = iota + 1 // arg: hypercall op code
	EvComplete                          // arg: hypercall op code
	EvIRQEnter                          // arg: interned activity ("timer", "nic", ...)
	EvPanic                             // arg: interned reason
	EvSpin                              // arg: interned lock name
	EvWedge                             // arg: unused
	EvInject                            // arg: interned fault description
	EvDetect                            // arg: interned detection reason
	EvPause                             // arg: unused (recovery paused the hypervisor)
	EvDiscard                           // arg: CPU whose thread was discarded
	EvAttemptBegin                      // arg: interned mechanism name
	EvPhase                             // arg: interned phase name <<40 | duration µs
	EvAttemptFail                       // arg: interned failure reason
	EvEscalate                          // arg: interned next mechanism name
	EvResume                            // arg: unused (guests resumed)
	EvRetry                             // arg: hypercall op code of the retried call
	EvDrop                              // arg: hypercall op code of the dropped call
	EvRecovered                         // arg: attempt number
	EvAudit                             // arg: violations <<16 | repairs <<8 | verdict
	EvNMI                               // arg: unused (watchdog NMI delivered)
)

// String returns the code's short name.
func (c EventCode) String() string {
	names := [...]string{
		EvDispatch: "dispatch", EvComplete: "complete", EvIRQEnter: "irq",
		EvPanic: "panic", EvSpin: "spin", EvWedge: "wedge",
		EvInject: "inject", EvDetect: "detect", EvPause: "pause",
		EvDiscard: "discard", EvAttemptBegin: "attempt", EvPhase: "phase",
		EvAttemptFail: "attempt-fail", EvEscalate: "escalate",
		EvResume: "resume", EvRetry: "retry", EvDrop: "drop",
		EvRecovered: "recovered", EvAudit: "audit", EvNMI: "nmi",
	}
	if int(c) < len(names) && names[c] != "" {
		return names[c]
	}
	return "ev." + itoa(int(c))
}

// PhaseArg packs a phase-span flight argument: the interned phase name and
// the span duration. Durations cap at 2^40-1 µs (~13 days of simulated
// time), far beyond any recovery latency.
func PhaseArg(nameID uint64, d time.Duration) uint64 {
	us := uint64(d / time.Microsecond)
	if us >= 1<<40 {
		us = 1<<40 - 1
	}
	return nameID<<40 | us
}

// UnpackPhaseArg splits a PhaseArg back into name ID and duration.
func UnpackPhaseArg(arg uint64) (nameID uint64, d time.Duration) {
	return arg >> 40, time.Duration(arg&(1<<40-1)) * time.Microsecond
}

// AuditArg packs an audit-report flight argument.
func AuditArg(violations, repairs, verdict int) uint64 {
	clamp := func(v, max int) uint64 {
		if v < 0 {
			return 0
		}
		if v > max {
			return uint64(max)
		}
		return uint64(v)
	}
	return clamp(violations, 0xffff)<<16 | clamp(repairs, 0xff)<<8 | clamp(verdict, 0xff)
}

// Event is one flight-recorder entry: 24 bytes, no pointers, so the ring
// is a flat slab the GC never scans into.
type Event struct {
	At   int64 // simulated time, ns
	Arg  uint64
	Code EventCode
	CPU  int16
}

// Ring is the flight recorder's fixed-size power-of-two event ring. next
// counts every event ever recorded; next & mask indexes the slot, so the
// ring always holds the most recent len(buf) events.
type Ring struct {
	buf  []Event
	mask uint64
	next uint64
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Total returns how many events were recorded over the ring's lifetime
// (including those since overwritten).
func (r *Ring) Total() uint64 { return r.next }

// Len returns how many events the ring currently holds.
func (r *Ring) Len() int {
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Tail appends the newest n events (oldest-first) to dst and returns it.
// n larger than the ring's contents yields everything retained.
func (r *Ring) Tail(dst []Event, n int) []Event {
	held := uint64(r.Len())
	if uint64(n) < held {
		held = uint64(n)
	}
	for i := r.next - held; i < r.next; i++ {
		dst = append(dst, r.buf[i&r.mask])
	}
	return dst
}

// Events returns all retained events, oldest-first.
func (r *Ring) Events() []Event {
	return r.Tail(make([]Event, 0, r.Len()), r.Len())
}

// FormatEvent renders a flight event as a timeline line, resolving
// interned args through the telemetry instance that recorded it.
func (t *Telemetry) FormatEvent(e Event) string {
	return fmt.Sprintf("[%10.3fms] cpu%-2d %-12s %s",
		float64(e.At)/float64(time.Millisecond), e.CPU, e.Code, t.EventDetail(e))
}

// EventDetail decodes an event's arg into human-readable detail.
func (t *Telemetry) EventDetail(e Event) string {
	switch e.Code {
	case EvDispatch, EvComplete, EvRetry, EvDrop:
		return t.opName(e.Arg)
	case EvIRQEnter, EvPanic, EvSpin, EvInject, EvDetect, EvAttemptBegin,
		EvAttemptFail, EvEscalate:
		return t.Str(e.Arg)
	case EvPhase:
		nameID, d := UnpackPhaseArg(e.Arg)
		return fmt.Sprintf("%s (%.3fms)", t.Str(nameID), float64(d)/float64(time.Millisecond))
	case EvDiscard:
		return "cpu" + itoa(int(e.Arg))
	case EvRecovered:
		return "attempt " + itoa(int(e.Arg))
	case EvAudit:
		return fmt.Sprintf("violations=%d repairs=%d verdict=%d",
			e.Arg>>16&0xffff, e.Arg>>8&0xff, e.Arg&0xff)
	default:
		if e.Arg != 0 {
			return "arg=" + itoa(int(e.Arg))
		}
		return ""
	}
}

// opName resolves a hypercall op code through the boot-installed name
// table.
func (t *Telemetry) opName(op uint64) string {
	if t != nil && op < uint64(len(t.OpNames)) && t.OpNames[op] != "" {
		return t.OpNames[op]
	}
	return "op." + itoa(int(op))
}

// FlightTail formats the newest n flight events as timeline lines —
// the forensic record a failed campaign run carries in its Result.
func (t *Telemetry) FlightTail(n int) []string {
	if t == nil {
		return nil
	}
	events := t.Flight.Tail(make([]Event, 0, n), n)
	out := make([]string, len(events))
	for i, e := range events {
		out[i] = t.FormatEvent(e)
	}
	return out
}
