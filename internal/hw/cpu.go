package hw

import (
	"fmt"
	"time"

	"nilihype/internal/simclock"
)

// Reg identifies a CPU register in the simulated x86-64 register file.
// The fault injector flips bits in these (paper §VI-C: "16 general-purpose
// registers, the stack pointer, the flag register, and the program
// counter").
type Reg int

// Register file layout. RAX..R16 are the 16 general-purpose registers;
// RSP, RFLAGS and RIP complete the injector's 19 targets (paper §VI-C).
// FSBase/GSBase are not injection targets but matter for the "Save FS/GS"
// enhancement (§IV): Xen on x86-64 does not save them on hypervisor entry,
// so recovery loses them unless they are saved at detection time.
const (
	RAX Reg = iota
	RBX
	RCX
	RDX
	RSI
	RDI
	RBP
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16 // 16th GPR slot
	RSP // stack pointer
	RFLAGS
	RIP // program counter
	FSBase
	GSBase
)

// Register-file sizing derived from the layout above.
const (
	// NumInjectableRegs is the number of registers the fault injector
	// may target: 16 GPRs + RSP + RFLAGS + RIP.
	NumInjectableRegs = int(RIP) + 1
	// NumRegs is the full register-file size including FS/GS bases.
	NumRegs = int(GSBase) + 1
)

// String returns the conventional register name.
func (r Reg) String() string {
	names := [...]string{
		"rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp",
		"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15", "r16",
		"rsp", "rflags", "rip", "fsbase", "gsbase",
	}
	if int(r) < len(names) {
		return names[r]
	}
	return fmt.Sprintf("reg(%d)", int(r))
}

// CycleCounters accumulates simulated unhalted cycles, split by where the
// CPU was executing. The hypervisor-processing-overhead experiment
// (Figure 3) is computed from Hypervisor counts.
type CycleCounters struct {
	Guest      uint64 // cycles spent executing guest code
	Hypervisor uint64 // cycles spent executing hypervisor code
}

// Total returns all unhalted cycles.
func (c CycleCounters) Total() uint64 { return c.Guest + c.Hypervisor }

// CPU is one simulated physical processor.
type CPU struct {
	ID int

	// Regs is the architectural register file. Values are symbolic (the
	// simulation does not interpret machine code) but bit-flips in them
	// drive the fault-manifestation model.
	Regs [NumRegs]uint64

	// IntrDisabled mirrors RFLAGS.IF: when true, maskable interrupts are
	// held pending. NMIs are always delivered.
	IntrDisabled bool

	// Halted is set while the CPU waits in a HLT idle loop.
	Halted bool

	// Cycles is the per-CPU unhalted cycle accounting.
	Cycles CycleCounters

	// HypInstrs counts instructions retired while executing hypervisor
	// code. The fault injector's second-level trigger counts these.
	HypInstrs uint64

	machine *Machine
	apic    localAPIC
	perf    perfCounter
	pending []Vector
}

func newCPU(m *Machine, id int) *CPU {
	c := &CPU{ID: id, machine: m}
	c.apic.cpu = c
	c.perf.cpu = c
	// Precompute the timer tags and fire callbacks once: arming happens on
	// every timer reprogram (thousands of times per simulated second), and
	// building a fmt.Sprintf tag or a fresh closure there would put the
	// allocator on the simulation's hottest path.
	c.apic.tag = fmt.Sprintf("apic-timer cpu%d", id)
	c.apic.fire = c.apicFire
	c.perf.tag = fmt.Sprintf("perf-nmi cpu%d", id)
	c.perf.fire = c.perfFire
	return c
}

// --- local APIC one-shot timer -------------------------------------------

// localAPIC models the one-shot local APIC timer. Xen programs it to fire
// at the deadline of the earliest entry in the CPU's software timer heap;
// the window between the timer firing and being reprogrammed is the hazard
// the "Reprogram hardware timer" enhancement closes (§V-A).
type localAPIC struct {
	cpu      *CPU
	armed    bool
	deadline time.Duration
	event    *simclock.Event
	tag      string
	fire     simclock.Func
}

// ArmTimer programs the local APIC timer to fire at the absolute virtual
// time deadline. Re-arming replaces any previous deadline.
func (c *CPU) ArmTimer(deadline time.Duration) {
	clk := c.machine.Clock
	if c.apic.event != nil {
		clk.Cancel(c.apic.event)
	}
	if deadline < clk.Now() {
		deadline = clk.Now()
	}
	c.apic.armed = true
	c.apic.deadline = deadline
	c.apic.event = clk.At(deadline, c.apic.tag, c.apic.fire)
}

// apicFire is the APIC timer expiry callback (precomputed in newCPU).
func (c *CPU) apicFire() {
	c.apic.armed = false
	c.apic.event = nil
	c.raise(VecTimer)
}

// DisarmTimer cancels a pending APIC timer shot.
func (c *CPU) DisarmTimer() {
	if c.apic.event != nil {
		c.machine.Clock.Cancel(c.apic.event)
		c.apic.event = nil
	}
	c.apic.armed = false
}

// TimerArmed reports whether the APIC timer currently has a pending shot.
// After the timer fires and before it is reprogrammed, this is false: if
// recovery does not re-arm it, the CPU will never receive another timer
// interrupt (the hazard of §V-A).
func (c *CPU) TimerArmed() bool { return c.apic.armed }

// TimerDeadline returns the pending shot's deadline (valid when armed).
func (c *CPU) TimerDeadline() time.Duration { return c.apic.deadline }

// --- performance-counter NMI (watchdog source) ----------------------------

// perfCounter models the hardware performance counter programmed to raise
// an NMI every 100 ms of unhalted cycles (paper §VI-B). In the simulation,
// unhalted time approximates unhalted cycles.
type perfCounter struct {
	cpu     *CPU
	period  time.Duration
	running bool
	event   *simclock.Event
	tag     string
	fire    simclock.Func
}

// StartPerfNMI arms the recurring performance-counter NMI with the given
// period. Each expiry delivers VecNMI to this CPU regardless of the
// interrupt-disable state.
func (c *CPU) StartPerfNMI(period time.Duration) {
	c.StopPerfNMI()
	c.perf.period = period
	c.perf.running = true
	c.schedulePerfNMI()
}

// StopPerfNMI cancels the recurring NMI.
func (c *CPU) StopPerfNMI() {
	if c.perf.event != nil {
		c.machine.Clock.Cancel(c.perf.event)
		c.perf.event = nil
	}
	c.perf.running = false
}

// PerfNMIRunning reports whether the watchdog NMI source is armed.
func (c *CPU) PerfNMIRunning() bool { return c.perf.running }

func (c *CPU) schedulePerfNMI() {
	c.perf.event = c.machine.Clock.After(c.perf.period, c.perf.tag, c.perf.fire)
}

// perfFire is the perf-NMI expiry callback (precomputed in newCPU). It
// drops the event handle before doing anything else: the clock recycles
// fired events, so a stale handle must never survive past the callback.
func (c *CPU) perfFire() {
	c.perf.event = nil
	if !c.perf.running {
		return
	}
	// NMI: delivered even with interrupts disabled.
	c.machine.deliver(c.ID, VecNMI)
	if c.perf.running {
		c.schedulePerfNMI()
	}
}

// --- interrupt delivery ----------------------------------------------------

// raise attempts to deliver vec to this CPU, queueing it as pending if the
// sink refuses (interrupts disabled).
func (c *CPU) raise(vec Vector) {
	if c.machine.deliver(c.ID, vec) {
		return
	}
	for _, p := range c.pending {
		if p == vec {
			return // level-style collapse of duplicate pending vectors
		}
	}
	c.pending = append(c.pending, vec)
}

// SendIPI sends an inter-processor interrupt from this CPU to target.
// Delivery is immediate in virtual time (sub-microsecond on real hardware).
func (c *CPU) SendIPI(target int) {
	c.machine.cpus[target].raise(VecIPI)
}

// DrainPending re-attempts delivery of pending interrupts. The hypervisor
// calls this after re-enabling interrupts on the CPU.
func (c *CPU) DrainPending() {
	pend := c.pending
	c.pending = nil
	for _, vec := range pend {
		c.raise(vec)
	}
}

// PendingVectors returns a copy of the queued-but-undelivered vectors.
func (c *CPU) PendingVectors() []Vector {
	out := make([]Vector, len(c.pending))
	copy(out, c.pending)
	return out
}

// ClearPending drops all pending interrupts. Recovery uses this when it
// acknowledges "all pending and in-service interrupts" (§III-B).
func (c *CPU) ClearPending() { c.pending = nil }

// --- cycle / instruction accounting ---------------------------------------

// ChargeGuest accounts cycles executed in guest context.
func (c *CPU) ChargeGuest(cycles uint64) { c.Cycles.Guest += cycles }

// ChargeHypervisor accounts cycles and instructions executed in hypervisor
// context.
func (c *CPU) ChargeHypervisor(cycles, instrs uint64) {
	c.Cycles.Hypervisor += cycles
	c.HypInstrs += instrs
}

// ResetCounters zeroes the cycle and instruction counters (used at the
// synchronized start of an overhead measurement, §VII-C).
func (c *CPU) ResetCounters() {
	c.Cycles = CycleCounters{}
	c.HypInstrs = 0
}
