package campaign

import (
	"reflect"
	"testing"

	"nilihype/internal/core"
	"nilihype/internal/guest"
	"nilihype/internal/inject"
)

// assertForkMatchesCold runs rc once cold-booted and once forked from a
// shared boot image for every seed, and requires bit-identical Results.
// The first img.run consumes the fresh boot and the later ones restore the
// snapshot, so both image paths are exercised.
func assertForkMatchesCold(t *testing.T, rc RunConfig, seeds []uint64) {
	t.Helper()
	img, err := buildImage(rc)
	if err != nil {
		t.Fatalf("buildImage: %v", err)
	}
	for _, seed := range seeds {
		rc.Seed = seed
		cold := Run(rc)
		forked := img.run(rc)
		if !reflect.DeepEqual(cold, forked) {
			t.Fatalf("seed %d: forked run differs from cold boot:\n cold:   %+v\n forked: %+v",
				seed, cold, forked)
		}
	}
}

func TestSnapshotForkMatchesColdBoot1AppVMFailstop(t *testing.T) {
	rc := fastCfg(inject.Failstop, core.Microreset)
	rc.Setup = OneAppVM
	rc.Workload = guest.UnixBench
	assertForkMatchesCold(t, rc, []uint64{1, 2, 3})
}

func TestSnapshotForkMatchesColdBoot1AppVMRegisterNetBench(t *testing.T) {
	rc := fastCfg(inject.Register, core.Microreset)
	rc.Setup = OneAppVM
	rc.Workload = guest.NetBench
	assertForkMatchesCold(t, rc, []uint64{1, 2, 3})
}

func TestSnapshotForkMatchesColdBoot3AppVMFailstop(t *testing.T) {
	assertForkMatchesCold(t, fastCfg(inject.Failstop, core.Microreset), []uint64{1, 2, 3})
}

func TestSnapshotForkMatchesColdBoot3AppVMRegister(t *testing.T) {
	assertForkMatchesCold(t, fastCfg(inject.Register, core.Microreset), []uint64{1, 2, 3})
}

func TestSnapshotForkMatchesColdBootMicroreboot(t *testing.T) {
	assertForkMatchesCold(t, fastCfg(inject.Code, core.Microreboot), []uint64{1, 2})
}

// The adversarial shape covers burst faults, fault-during-recovery, the
// hybrid escalation ladder and the audit walks — the densest consumers of
// restored state.
func TestSnapshotForkMatchesColdBootAdversarial(t *testing.T) {
	assertForkMatchesCold(t, adversarialCfg(), []uint64{1, 2, 3})
}

func TestSnapshotForkMatchesColdBootHVM(t *testing.T) {
	rc := fastCfg(inject.Register, core.Microreset)
	rc.Setup = OneAppVM
	rc.HVM = true
	assertForkMatchesCold(t, rc, []uint64{1, 2})
}

// TestCampaignSummaryIdenticalSnapshotVsColdBoot is the tentpole's
// correctness bar: the campaign Summary must be bit-identical with the
// snapshot cache on and off, at any parallelism.
func TestCampaignSummaryIdenticalSnapshotVsColdBoot(t *testing.T) {
	oneVM := fastCfg(inject.Failstop, core.Microreset)
	oneVM.Setup = OneAppVM
	bases := []RunConfig{
		oneVM,
		fastCfg(inject.Register, core.Microreset),
		adversarialCfg(),
	}
	for _, base := range bases {
		var ref Summary
		first := true
		for _, par := range []int{1, 4} {
			for _, coldBoot := range []bool{false, true} {
				c := Campaign{Base: base, Runs: 6, Parallelism: par, ColdBoot: coldBoot}
				s := c.Execute()
				if first {
					ref, first = s, false
					continue
				}
				if !reflect.DeepEqual(ref, s) {
					t.Fatalf("%v %v: summary differs (par=%d coldBoot=%v):\n ref: %+v\n got: %+v",
						base.Setup, base.Fault, par, coldBoot, ref, s)
				}
			}
		}
	}
}

// TestForkedRunTelemetryMatchesColdBoot extends the fork-equivalence bar
// to the always-on telemetry: a forked run must produce bit-identical
// metric values (counters, gauges, histograms) AND bit-identical
// flight-recorder contents to a cold boot with the same seed — i.e. the
// snapshot restore rewinds the registry and ring to pristine, and the
// replayed run re-fills them identically (including intern IDs, which the
// flight events' string arguments embed).
func TestForkedRunTelemetryMatchesColdBoot(t *testing.T) {
	rc := adversarialCfg()
	img, err := buildImage(rc)
	if err != nil {
		t.Fatalf("buildImage: %v", err)
	}
	for _, seed := range []uint64{1, 2, 3} {
		rc.Seed = seed
		_, coldTel, _ := TraceRun(rc) // fresh image every call = cold boot
		forkedRes := img.run(rc)
		forkTel := img.h.Tel
		if forkTel.Counters != coldTel.Counters {
			t.Fatalf("seed %d: counters differ:\n cold:   %v\n forked: %v",
				seed, coldTel.Counters, forkTel.Counters)
		}
		if forkTel.Gauges != coldTel.Gauges {
			t.Fatalf("seed %d: gauges differ:\n cold:   %v\n forked: %v",
				seed, coldTel.Gauges, forkTel.Gauges)
		}
		if forkTel.Hists != coldTel.Hists {
			t.Fatalf("seed %d: histograms differ", seed)
		}
		if !reflect.DeepEqual(forkTel.Flight.Events(), coldTel.Flight.Events()) {
			t.Fatalf("seed %d: flight-recorder contents differ:\n cold:\n%v\n forked:\n%v",
				seed, coldTel.FlightTail(coldTel.Flight.Len()), forkTel.FlightTail(forkTel.Flight.Len()))
		}
		// The rendered tails (which resolve intern IDs to strings) must
		// agree too — a mismatch here with matching events would mean the
		// intern table drifted between the paths.
		if !reflect.DeepEqual(forkTel.FlightTail(forkTel.Flight.Len()), coldTel.FlightTail(coldTel.Flight.Len())) {
			t.Fatalf("seed %d: rendered flight tails differ", seed)
		}
		if forkedRes.Detected && !forkedRes.Success && len(forkedRes.Flight) == 0 {
			t.Fatalf("seed %d: failed run carried no flight tail", seed)
		}
	}
}

// TestRestoreIsAllocationFree guards the fork path's whole point: rolling
// a dirty post-run system back to pristine must reuse the pooled arenas,
// not allocate fresh ones.
func TestRestoreIsAllocationFree(t *testing.T) {
	rc := fastCfg(inject.Register, core.Microreset)
	img, err := buildImage(rc)
	if err != nil {
		t.Fatalf("buildImage: %v", err)
	}
	for seed := uint64(1); seed <= 2; seed++ {
		rc.Seed = seed
		img.run(rc)
	}
	allocs := testing.AllocsPerRun(10, func() {
		img.h.Restore(img.snap)
		img.world.Restore(img.wsnap)
	})
	if allocs > 2 {
		t.Fatalf("Restore allocates %.1f objects/run, want ~0", allocs)
	}
}

// BenchmarkSnapshotRestore times a bare snapshot restore (dominated by the
// page-frame table memmove).
func BenchmarkSnapshotRestore(b *testing.B) {
	rc := ThroughputBenchConfig()
	img, err := buildImage(rc)
	if err != nil {
		b.Fatalf("buildImage: %v", err)
	}
	rc.Seed = 1
	img.run(rc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img.h.Restore(img.snap)
		img.world.Restore(img.wsnap)
	}
}

// BenchmarkSnapshotForkRun times a full forked run (restore + reseed +
// benchmark + fault + recovery + classification).
func BenchmarkSnapshotForkRun(b *testing.B) {
	rc := ThroughputBenchConfig()
	img, err := buildImage(rc)
	if err != nil {
		b.Fatalf("buildImage: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc.Seed = uint64(i + 1)
		img.run(rc)
	}
}
