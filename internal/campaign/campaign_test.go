package campaign

import (
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"nilihype/internal/core"
	"nilihype/internal/guest"
	"nilihype/internal/hv"
	"nilihype/internal/hw"
	"nilihype/internal/inject"
	"nilihype/internal/mm"
	"nilihype/internal/sched"
	"nilihype/internal/simclock"
)

func fastCfg(fault inject.FaultType, mech core.Mechanism) RunConfig {
	return RunConfig{
		Seed:          1,
		Setup:         ThreeAppVM,
		Fault:         fault,
		Logging:       true,
		Recovery:      core.Config{Mechanism: mech, Enhancements: core.AllEnhancements},
		BenchDuration: 2 * time.Second,
	}
}

func TestSetupAndOutcomeStrings(t *testing.T) {
	if OneAppVM.String() != "1AppVM" || ThreeAppVM.String() != "3AppVM" || Setup(9).String() != "setup(9)" {
		t.Fatal("setup names wrong")
	}
	if NonManifested.String() != "non-manifested" || SDC.String() != "SDC" ||
		Detected.String() != "detected" || Outcome(9).String() != "outcome(9)" {
		t.Fatal("outcome names wrong")
	}
}

func TestFailstopRunRecoversAndCreatesThirdVM(t *testing.T) {
	r := Run(fastCfg(inject.Failstop, core.Microreset))
	if !r.InjectionFired || !r.Detected {
		t.Fatalf("fired=%v detected=%v", r.InjectionFired, r.Detected)
	}
	if r.Outcome != Detected {
		t.Fatalf("outcome = %v", r.Outcome)
	}
	if !r.Recovered || r.FailReason != "" {
		t.Fatalf("recovered=%v fail=%q", r.Recovered, r.FailReason)
	}
	if !r.NewVMOK {
		t.Fatal("post-recovery BlkBench creation check failed")
	}
	if !r.Success || !r.NoVMF {
		t.Fatalf("success=%v noVMF=%v vms=%v", r.Success, r.NoVMF, r.VMs)
	}
	if r.Latency == 0 || r.RecoveryAt == 0 {
		t.Fatal("latency/recovery time not recorded")
	}
}

func TestRunIsDeterministicPerSeed(t *testing.T) {
	a := Run(fastCfg(inject.Register, core.Microreset))
	b := Run(fastCfg(inject.Register, core.Microreset))
	if a.Outcome != b.Outcome || a.Success != b.Success || a.FaultEffect != b.FaultEffect ||
		a.InjectionAt != b.InjectionAt || a.RecoveryAt != b.RecoveryAt {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestOneAppVMRun(t *testing.T) {
	cfg := fastCfg(inject.Failstop, core.Microreset)
	cfg.Setup = OneAppVM
	cfg.Workload = guest.UnixBench
	r := Run(cfg)
	if r.Outcome != Detected {
		t.Fatalf("outcome = %v (%s)", r.Outcome, r.FailReason)
	}
	if len(r.VMs) != 1 {
		t.Fatalf("VMs = %v", r.VMs)
	}
	if r.Success != (r.AppVMsFailed == 0 && r.Recovered && !r.PrivVMFailed) {
		t.Fatal("1AppVM success definition violated")
	}
}

func TestBasicConfigRunFails(t *testing.T) {
	cfg := fastCfg(inject.Failstop, core.Microreset)
	cfg.Recovery = core.Config{Mechanism: core.Microreset, Enhancements: 0}
	r := Run(cfg)
	if r.Success {
		t.Fatal("basic microreset run succeeded (must never, §V-A)")
	}
	if !strings.Contains(r.FailReason, "in_irq") {
		t.Fatalf("FailReason = %q", r.FailReason)
	}
}

func TestNoInjectionRunIsClean(t *testing.T) {
	cfg := fastCfg(inject.Failstop, core.Microreset)
	cfg.NoInjection = true
	r := Run(cfg)
	if r.InjectionFired || r.Detected {
		t.Fatalf("fired=%v detected=%v on no-injection run", r.InjectionFired, r.Detected)
	}
	if r.Outcome != NonManifested {
		t.Fatalf("outcome = %v, VMs = %v, fail=%q", r.Outcome, r.VMs, r.FailReason)
	}
}

func TestCampaignExecuteAggregates(t *testing.T) {
	c := Campaign{Base: fastCfg(inject.Failstop, core.Microreset), Runs: 6, Parallelism: 2}
	s := c.Execute()
	if s.Runs != 6 || s.DetectedCount != 6 {
		t.Fatalf("runs=%d detected=%d", s.Runs, s.DetectedCount)
	}
	rate, ci := s.SuccessRate()
	if rate < 0 || rate > 1 || ci < 0 {
		t.Fatalf("rate=%v ci=%v", rate, ci)
	}
	out := s.Format()
	if !strings.Contains(out, "successful recovery") {
		t.Fatalf("Format = %q", out)
	}
}

// TestCampaignDeterministicAcrossParallelism is the determinism
// regression for the streaming executor: the same campaign must produce
// a byte-identical Summary whether runs execute serially or spread over
// many workers, and re-executing must reproduce it exactly.
func TestCampaignDeterministicAcrossParallelism(t *testing.T) {
	base := fastCfg(inject.Register, core.Microreset)
	serial := Campaign{Base: base, Runs: 8, Parallelism: 1}
	wide := Campaign{Base: base, Runs: 8, Parallelism: 8}
	s1 := serial.Execute()
	s2 := wide.Execute()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("summary differs across parallelism:\n par=1: %+v\n par=8: %+v", s1, s2)
	}
	s3 := serial.Execute()
	if !reflect.DeepEqual(s1, s3) {
		t.Fatalf("summary not reproducible:\n first: %+v\n again: %+v", s1, s3)
	}
}

// TestCampaignSeedBaseShiftsSeeds checks sharding: SeedBase offsets the
// seed sequence, and streamed Results carry exactly those seeds.
func TestCampaignSeedBaseShiftsSeeds(t *testing.T) {
	var seeds []uint64
	c := Campaign{
		Base:        fastCfg(inject.Failstop, core.Microreset),
		Runs:        4,
		Parallelism: 2,
		SeedBase:    100,
		OnResult:    func(r Result) { seeds = append(seeds, r.Seed) },
	}
	s := c.Execute()
	if s.Runs != 4 {
		t.Fatalf("Runs = %d", s.Runs)
	}
	if len(seeds) != 4 {
		t.Fatalf("OnResult saw %d results, want 4", len(seeds))
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	want := []uint64{101, 102, 103, 104}
	if !reflect.DeepEqual(seeds, want) {
		t.Fatalf("seeds = %v, want %v", seeds, want)
	}
	// A sharded pair of campaigns must aggregate like one big one.
	shard2 := Campaign{Base: c.Base, Runs: 4, Parallelism: 2, SeedBase: 104}
	whole := Campaign{Base: c.Base, Runs: 8, Parallelism: 2, SeedBase: 100}
	merged := c.Execute()
	merged.merge(shard2ToPartial(shard2.Execute()))
	merged.Runs = 8
	if got := whole.Execute(); !reflect.DeepEqual(merged, got) {
		t.Fatalf("sharded != whole:\n sharded: %+v\n whole:   %+v", merged, got)
	}
}

// shard2ToPartial adapts a Summary for merge (merge takes a partial).
func shard2ToPartial(s Summary) *Summary { return &s }

// TestCampaignOnResultStreamsEveryRun checks the streaming hook fires
// once per run and that Execute keeps no per-run state of its own.
func TestCampaignOnResultStreamsEveryRun(t *testing.T) {
	var detected int
	c := Campaign{
		Base:        fastCfg(inject.Failstop, core.Microreset),
		Runs:        6,
		Parallelism: 3,
		OnResult: func(r Result) {
			if r.Detected {
				detected++
			}
		},
	}
	s := c.Execute()
	if detected != s.DetectedCount {
		t.Fatalf("streamed detected = %d, summary says %d", detected, s.DetectedCount)
	}
}

// TestCampaignZeroRuns checks the empty-campaign edge.
func TestCampaignZeroRuns(t *testing.T) {
	c := Campaign{Base: fastCfg(inject.Failstop, core.Microreset), Runs: 0}
	s := c.Execute()
	if s.Runs != 0 || s.DetectedCount != 0 || s.FailReasons == nil {
		t.Fatalf("zero-run summary = %+v", s)
	}
}

func TestProportionCI(t *testing.T) {
	// Reference values computed independently from the Wilson score
	// interval with z=1.96; wantCI is the larger half-width
	// max(p-lower, upper-p).
	tests := []struct {
		k, n     int
		wantRate float64
		wantCI   float64
	}{
		{90, 100, 0.9, 0.074367304367665},
		{50, 100, 0.5, 0.096170171409853},
		{450, 500, 0.9, 0.029422508200003},
		{1, 10, 0.1, 0.304156385497572},
		// The boundary cases that motivated Wilson over the normal
		// approximation: at k=0 and k=n the normal CI collapses to
		// zero width, Wilson does not.
		{100, 100, 1.0, 0.036994807476002},
		{0, 100, 0.0, 0.036994807476002},
	}
	for _, tt := range tests {
		rate, ci := proportion(tt.k, tt.n)
		if math.Abs(rate-tt.wantRate) > 1e-12 {
			t.Errorf("proportion(%d,%d) rate = %v, want %v", tt.k, tt.n, rate, tt.wantRate)
		}
		if math.Abs(ci-tt.wantCI) > 1e-9 {
			t.Errorf("proportion(%d,%d) ci = %v, want %v", tt.k, tt.n, ci, tt.wantCI)
		}
	}
	if r, c := proportion(0, 0); r != 0 || c != 0 {
		t.Fatal("empty proportion not zero")
	}
}

func TestClassifyFailure(t *testing.T) {
	tests := []struct {
		r    Result
		want string
	}{
		{Result{FailReason: "recovery routine failed to be invoked (x)"}, "recovery routine not invoked"},
		{Result{PrivVMFailed: true}, "PrivVM failed"},
		{Result{FailReason: "post-recovery failure: reused heap object corrupted"}, "corrupted data structure"},
		{Result{FailReason: "ASSERT !in_irq()"}, "post-recovery assertion"},
		{Result{FailReason: "watchdog: spinning on lock"}, "post-recovery hang"},
		{Result{FailReason: "something else"}, "other hypervisor failure"},
		{Result{NewVMOK: false}, "new VM creation failed"},
		{Result{NewVMOK: true, AppVMsFailed: 2}, "multiple AppVMs lost"},
		{Result{NewVMOK: true, AppVMsFailed: 1}, "AppVM lost (1AppVM criterion)"},
	}
	for _, tt := range tests {
		if got := classifyFailure(tt.r); got != tt.want {
			t.Errorf("classifyFailure(%+v) = %q, want %q", tt.r, got, tt.want)
		}
	}
}

func TestOverheadConfigStrings(t *testing.T) {
	if OverheadBlk.String() != "BlkBench" || Overhead3AppVM.String() != "3AppVM" ||
		OverheadConfig(9).String() != "overhead(9)" {
		t.Fatal("overhead config names wrong")
	}
	if len(AllOverheadConfigs()) != 4 {
		t.Fatal("Figure 3 has 4 configurations")
	}
}

func TestOverheadLoggingDominates(t *testing.T) {
	// §VII-C: most of the overhead is due to logging — NiLiHype* must be
	// far below NiLiHype, and all overheads must be positive.
	p := MeasureOverhead(OverheadBlk, 500*time.Millisecond, 1)
	if p.WithLogging() <= 0 {
		t.Fatalf("overhead with logging = %v", p.WithLogging())
	}
	if p.WithoutLogging() >= p.WithLogging()/3 {
		t.Fatalf("logging does not dominate: with=%v without=%v",
			p.WithLogging(), p.WithoutLogging())
	}
	if p.WithoutLogging() < 0 {
		t.Fatalf("NiLiHype* overhead negative: %v", p.WithoutLogging())
	}
	out := FormatOverhead([]OverheadPoint{p})
	if !strings.Contains(out, "BlkBench") {
		t.Fatalf("FormatOverhead = %q", out)
	}
}

func TestMeasureLatencyMatchesPaper(t *testing.T) {
	nili, err := MeasureLatency(core.Microreset, 8192, 3)
	if err != nil {
		t.Fatal(err)
	}
	if nili.Total != 22*time.Millisecond {
		t.Fatalf("NiLiHype latency = %v, want 22ms (Table III)", nili.Total)
	}
	// The sender-observed interruption brackets the latency (±1 send
	// period).
	if d := nili.ServiceInterruption - nili.Total; d < -2*time.Millisecond || d > 2*time.Millisecond {
		t.Fatalf("interruption %v vs latency %v", nili.ServiceInterruption, nili.Total)
	}
	re, err := MeasureLatency(core.Microreboot, 8192, 3)
	if err != nil {
		t.Fatal(err)
	}
	if re.Total != 713*time.Millisecond {
		t.Fatalf("ReHype latency = %v, want 713ms (Table II)", re.Total)
	}
	if ratio := float64(re.Total) / float64(nili.Total); ratio < 30 {
		t.Fatalf("ratio %.1f, want >30 (§VII-B)", ratio)
	}
}

func TestSweepLatencyScalesLinearly(t *testing.T) {
	res, err := SweepLatency(core.Microreset, []int{2048, 8192}, 3)
	if err != nil {
		t.Fatal(err)
	}
	growth := res[1].Total - res[0].Total
	// The scan grows by 3/4 of 21ms between 2 and 8 GB.
	want := 21 * time.Millisecond * 3 / 4
	if growth < want-2*time.Millisecond || growth > want+2*time.Millisecond {
		t.Fatalf("latency growth = %v, want ~%v", growth, want)
	}
}

// TestPaperCalibration is the headline regression test: the reproduction
// must stay within tolerance of the paper's published results. It runs
// moderate-size campaigns (several CPU-minutes); skipped with -short.
func TestPaperCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration campaigns are slow; run without -short")
	}
	const runs = 250
	ladderTargets := []struct {
		rung      int
		want      float64
		tolerance float64
	}{
		{0, 0.0, 0.001}, // Basic never succeeds (mechanistic)
		{1, 0.16, 0.06}, // + Clear IRQ count
		{2, 0.518, 0.07},
		{3, 0.822, 0.06},
		{4, 0.950, 0.04},
		{5, 0.961, 0.035},
		{6, 0.965, 0.03},
	}
	rungs := core.Ladder()
	for _, tt := range ladderTargets {
		c := Campaign{
			Base: RunConfig{
				Setup:         OneAppVM,
				Fault:         inject.Failstop,
				Workload:      guest.UnixBench,
				Logging:       true,
				Recovery:      core.Config{Mechanism: core.Microreset, Enhancements: rungs[tt.rung].Enh},
				BenchDuration: 2 * time.Second,
			},
			Runs: runs,
		}
		rate, _ := c.Execute().SuccessRate()
		if math.Abs(rate-tt.want) > tt.tolerance {
			t.Errorf("Table I rung %q: rate %.3f, want %.3f ± %.3f",
				rungs[tt.rung].Label, rate, tt.want, tt.tolerance)
		}
	}
}

func TestHVMRunRecovers(t *testing.T) {
	cfg := fastCfg(inject.Failstop, core.Microreset)
	cfg.Setup = OneAppVM
	cfg.HVM = true
	r := Run(cfg)
	if r.Outcome != Detected {
		t.Fatalf("outcome = %v (%s)", r.Outcome, r.FailReason)
	}
	if !r.Success {
		t.Fatalf("HVM run failed: %s vms=%v", r.FailReason, r.VMs)
	}
}

func TestHVMvsPVRecoveryRatesSimilar(t *testing.T) {
	// §VI-A: HVM injection results are very similar to PV.
	if testing.Short() {
		t.Skip("campaign comparison is slow; run without -short")
	}
	rate := func(hvm bool) float64 {
		c := Campaign{
			Base: RunConfig{
				Setup: OneAppVM, Fault: inject.Failstop, Workload: guest.UnixBench,
				Logging: true, HVM: hvm, Recovery: core.DefaultConfig(),
				BenchDuration: 2 * time.Second,
			},
			Runs: 250,
		}
		r, _ := c.Execute().SuccessRate()
		return r
	}
	pv, hvm := rate(false), rate(true)
	if diff := math.Abs(pv - hvm); diff > 0.06 {
		t.Fatalf("PV %.3f vs HVM %.3f differ by %.3f (> 6 points)", pv, hvm, diff)
	}
}

// TestPostRecoveryInvariantSoak runs many independent faults and audits
// the quiescent-system invariants after every successful recovery: no
// held locks, zero interrupt nesting, consistent scheduler metadata and
// page-frame descriptors, and live recurring timers.
func TestPostRecoveryInvariantSoak(t *testing.T) {
	faults := []inject.FaultType{inject.Failstop, inject.Register, inject.Code}
	checked := 0
	for _, ft := range faults {
		for seed := uint64(1); seed <= 12; seed++ {
			cfg := fastCfg(ft, core.Microreset)
			cfg.Seed = seed
			cfg.CheckInvariants = true
			r := Run(cfg)
			if !r.Detected || !r.Recovered || r.FailReason != "" {
				continue
			}
			checked++
			if len(r.InvariantViolations) != 0 {
				t.Fatalf("%v seed %d: invariant violations after recovery: %v",
					ft, seed, r.InvariantViolations)
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d successful recoveries audited", checked)
	}
}

func TestRunTraceTimeline(t *testing.T) {
	cfg := fastCfg(inject.Failstop, core.Microreset)
	cfg.TraceCapacity = 512
	r := Run(cfg)
	if len(r.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	var hasPanic, hasDiscard bool
	for _, line := range r.Trace {
		if strings.Contains(line, "panic") {
			hasPanic = true
		}
		if strings.Contains(line, "discard") {
			hasDiscard = true
		}
	}
	if !hasPanic || !hasDiscard {
		t.Fatalf("timeline missing recovery events: %v", r.Trace)
	}
}

func TestSummaryFormatWithFailures(t *testing.T) {
	s := Summary{
		Config: RunConfig{
			Setup: ThreeAppVM, Fault: inject.Register,
			Recovery: core.Config{Mechanism: core.Microreset},
		},
		Runs: 100, NonManifested: 70, SDCCount: 5, DetectedCount: 25,
		RecoverySuccess: 20, NoVMFCount: 18,
		FailReasons: map[string]int{
			"post-recovery hang":       3,
			"corrupted data structure": 2,
		},
	}
	out := s.Format()
	for _, want := range []string{"NiLiHype", "Register", "80.0%", "failure causes",
		"post-recovery hang", "corrupted data structure", "70.0% non-manifested"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

// adversarialCfg is the fully loaded configuration: audit gate on, burst
// faults, and the fault-during-recovery trigger.
func adversarialCfg() RunConfig {
	base := fastCfg(inject.Code, core.Microreset)
	base.Recovery = core.HybridConfig()
	base.Recovery.Escalation.Audit = true
	base.BurstWindow = 100 * time.Millisecond
	base.BurstFault = inject.Register
	base.FaultDuringRecovery = true
	return base
}

// TestSummaryMergeShardOrderInvariant: sharded campaigns fold their
// per-shard Summaries with Merge; the result — including the latency and
// per-phase histograms — must be bit-identical regardless of the order
// the shards arrive in. Every Summary field must therefore merge
// commutatively and associatively.
func TestSummaryMergeShardOrderInvariant(t *testing.T) {
	base := adversarialCfg()
	shards := make([]Summary, 4)
	for i := range shards {
		c := Campaign{Base: base, Runs: 3, SeedBase: uint64(i * 3), Parallelism: 2}
		shards[i] = c.Execute()
	}
	mergeAll := func(order ...int) Summary {
		s := Summary{Config: base,
			FailReasons: make(map[string]int), SuccessByAttempt: make(map[int]int)}
		for _, i := range order {
			s.Merge(shards[i])
		}
		return s
	}
	ref := mergeAll(0, 1, 2, 3)
	if ref.Runs != 12 {
		t.Fatalf("merged Runs = %d, want 12", ref.Runs)
	}
	if ref.LatencyHist.Count == 0 || len(ref.PhaseHists) == 0 {
		t.Fatalf("merged summary has empty histograms: latency n=%d phases=%d",
			ref.LatencyHist.Count, len(ref.PhaseHists))
	}
	for _, order := range [][]int{{3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}} {
		if got := mergeAll(order...); !reflect.DeepEqual(ref, got) {
			t.Fatalf("shard order %v produced a different summary:\n ref: %+v\n got: %+v",
				order, ref, got)
		}
	}
}

// TestCampaignAuditAdversarialBitIdentity: the audit walks and adversarial
// triggers must not perturb determinism — the same campaign produces a
// byte-identical Summary at parallelism 1, 4, and 8.
func TestCampaignAuditAdversarialBitIdentity(t *testing.T) {
	base := adversarialCfg()
	var ref Summary
	for i, par := range []int{1, 4, 8} {
		c := Campaign{Base: base, Runs: 8, Parallelism: par}
		s := c.Execute()
		if i == 0 {
			ref = s
			continue
		}
		if !reflect.DeepEqual(ref, s) {
			t.Fatalf("summary differs at parallelism %d:\n par=1: %+v\n par=%d: %+v", par, ref, par, s)
		}
	}
}

// TestCampaignSurfacesAdversarialOutcomes: over enough adversarial runs,
// the burst and during-recovery triggers fire and the counters reach the
// Summary.
func TestCampaignSurfacesAdversarialOutcomes(t *testing.T) {
	c := Campaign{Base: adversarialCfg(), Runs: 12, Parallelism: 4}
	s := c.Execute()
	if s.BurstFiredRuns == 0 {
		t.Fatal("no run recorded a burst fault in 12 adversarial runs")
	}
	out := s.Format()
	if !strings.Contains(out, "adversarial: burst fired") {
		t.Fatalf("Format missing adversarial line:\n%s", out)
	}
}

// TestAuditOnNeverWorseThanOff is the miniature of the hyperrecover-audit
// comparison: with everything else identical (same seeds, same fault mix),
// enabling the audit gate must not lower the recovery success count, and
// audit-off campaigns must report zero audit activity.
func TestAuditOnNeverWorseThanOff(t *testing.T) {
	run := func(auditOn bool) Summary {
		base := fastCfg(inject.Code, core.Microreset)
		base.Recovery = core.HybridConfig()
		base.Recovery.Escalation.Audit = auditOn
		c := Campaign{Base: base, Runs: 25, Parallelism: 4}
		return c.Execute()
	}
	on, off := run(true), run(false)
	if on.Runs != off.Runs || on.DetectedCount == 0 {
		t.Fatalf("arms diverged: on=%d/%d off=%d/%d detected",
			on.DetectedCount, on.Runs, off.DetectedCount, off.Runs)
	}
	if on.RecoverySuccess < off.RecoverySuccess {
		t.Fatalf("audit-on success %d below audit-off %d", on.RecoverySuccess, off.RecoverySuccess)
	}
	if off.AuditViolations != 0 || off.AuditRepaired != 0 || off.SacrificedVMs != 0 {
		t.Fatalf("audit-off campaign reports audit activity: %d/%d/%d",
			off.AuditViolations, off.AuditRepaired, off.SacrificedVMs)
	}
}

func TestAuditInvariantsReportsViolations(t *testing.T) {
	// Build a deliberately damaged hypervisor and verify every audit
	// branch reports.
	clk := simclock.New()
	h, err := hv.New(clk, hv.Config{
		Machine:        hw.Config{CPUs: 2, MemoryMB: 256, BlockSvc: time.Millisecond, NICLat: time.Millisecond},
		HeapFrames:     2048,
		LoggingEnabled: true, RecoveryPrep: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	if got := auditInvariants(h); len(got) != 0 {
		t.Fatalf("clean system reported violations: %v", got)
	}
	// Damage: held lock, irq count, sched inconsistency, pf descriptor,
	// inactive recurring timer, wedged CPU.
	h.Statics.Console.TryAcquire(0)
	h.PerCPU(1).LocalIRQCount = 2
	d, _ := h.Domain(0)
	d.VCPUs[0].RunningOn = sched.NoCPU
	h.Frames.Frame(100).Type = mm.FramePageTable
	h.Frames.Frame(100).UseCount = 1
	h.Timers.PopDue(0, clk.Now()+time.Hour) // pops recurring without rearm
	got := auditInvariants(h)
	if len(got) < 5 {
		t.Fatalf("violations = %v, want >= 5 classes", got)
	}
}
