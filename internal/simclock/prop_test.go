package simclock

import (
	"math/rand/v2"
	"sort"
	"testing"
	"time"
)

// propEvent mirrors one live event in the model: the time it should fire
// at and a stamp that tracks the clock's internal seq. Every At and every
// Reschedule bumps both the clock's seq and the model's stamp in lockstep,
// so sorting the model by (when, stamp) predicts the exact dispatch order
// the FIFO-at-equal-timestamp guarantee promises.
type propEvent struct {
	when  time.Duration
	stamp uint64
	ev    *Event
}

type propModel struct {
	c       *Clock
	stamp   uint64
	pending []*propEvent
	fired   []struct {
		when  time.Duration
		stamp uint64
	}
}

func newPropModel() *propModel { return &propModel{c: New()} }

func (m *propModel) schedule(when time.Duration) {
	p := &propEvent{when: when, stamp: m.stamp}
	m.stamp++
	p.ev = m.c.At(when, "prop", func() {
		m.fired = append(m.fired, struct {
			when  time.Duration
			stamp uint64
		}{p.when, p.stamp})
	})
	m.pending = append(m.pending, p)
}

func (m *propModel) cancel(i int) {
	m.c.Cancel(m.pending[i].ev)
	m.pending = append(m.pending[:i], m.pending[i+1:]...)
}

func (m *propModel) reschedule(i int, when time.Duration) {
	p := m.pending[i]
	p.when = when
	p.stamp = m.stamp
	m.stamp++
	m.c.Reschedule(p.ev, when)
}

// verify drains the clock and checks the dispatch order against the model:
// nondecreasing timestamps, and FIFO (scheduling order) among events that
// share a timestamp.
func (m *propModel) verify(t *testing.T) {
	t.Helper()
	if got, want := m.c.Len(), len(m.pending); got != want {
		t.Fatalf("clock holds %d events, model says %d", got, want)
	}
	expected := append([]*propEvent(nil), m.pending...)
	sort.SliceStable(expected, func(i, j int) bool {
		if expected[i].when != expected[j].when {
			return expected[i].when < expected[j].when
		}
		return expected[i].stamp < expected[j].stamp
	})
	m.c.Run()
	if len(m.fired) != len(expected) {
		t.Fatalf("fired %d events, want %d", len(m.fired), len(expected))
	}
	for i, f := range m.fired {
		if f.when != expected[i].when || f.stamp != expected[i].stamp {
			t.Fatalf("dispatch %d fired (when=%v stamp=%d), want (when=%v stamp=%d)",
				i, f.when, f.stamp, expected[i].when, expected[i].stamp)
		}
		if i > 0 && f.when < m.fired[i-1].when {
			t.Fatalf("time ran backwards: dispatch %d at %v after %v", i, f.when, m.fired[i-1].when)
		}
	}
	if m.c.Len() != 0 {
		t.Fatalf("%d events left after Run", m.c.Len())
	}
}

// TestRandomScheduleCancelRescheduleOrdering is the kernel's ordering
// property test: any random interleaving of schedule, cancel, and
// reschedule must dispatch in (timestamp, scheduling-order) order. The
// timestamp universe is deliberately tiny (40 distinct values for ~400
// events) so equal-timestamp collisions — the FIFO tie-break — dominate.
func TestRandomScheduleCancelRescheduleOrdering(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed^0x51dc))
		m := newPropModel()
		randWhen := func() time.Duration {
			return time.Duration(rng.IntN(40)) * time.Millisecond
		}
		for i := 0; i < 400; i++ {
			switch op := rng.IntN(10); {
			case op < 6 || len(m.pending) == 0:
				m.schedule(randWhen())
			case op < 8:
				m.cancel(rng.IntN(len(m.pending)))
			default:
				m.reschedule(rng.IntN(len(m.pending)), randWhen())
			}
		}
		m.verify(t)
	}
}

// FuzzScheduleOrdering drives the same property from a fuzzer-controlled
// op stream. Each byte is one operation: the low two bits pick the op
// (schedule is twice as likely), the high six bits pick the timestamp.
func FuzzScheduleOrdering(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 250, 7, 0, 0, 128, 64})
	f.Add([]byte{9, 9, 9, 9, 9, 9})
	f.Add([]byte{255, 254, 253, 2, 2, 2, 3, 3, 3})
	f.Fuzz(func(t *testing.T, ops []byte) {
		m := newPropModel()
		for i, b := range ops {
			when := time.Duration(b>>2) * time.Millisecond
			switch {
			case b&3 <= 1 || len(m.pending) == 0:
				m.schedule(when)
			case b&3 == 2:
				m.cancel(i % len(m.pending))
			default:
				m.reschedule(i%len(m.pending), when)
			}
		}
		m.verify(t)
	})
}
