// Package recdomain partitions post-detection repair and audit work into
// recovery domains — per-CPU state (timer heaps, IRQ nesting, local
// APICs), per-guest-domain state (event-channel and grant linkage), and
// the global domain (heap, static locks, scheduler, IO-APIC) — and
// schedules the resulting units over simulated CPUs.
//
// A Plan is an ordered list of Levels; the level order is the dependency
// graph: every unit of level k completes before any unit of level k+1
// starts (global repairs such as the domain-list relink must land before
// the per-domain linkage fix-ups that traverse it). Units within a
// non-serial level own disjoint state by construction and may execute
// concurrently; serial levels express cross-domain writes that must not.
//
// The executor keeps the simulation deterministic by separating the two
// notions of time: unit closures run on real goroutines (bounded by
// workers), but the charged latency comes from a deterministic schedule —
// longest-processing-time-first over simCPUs lanes, ties broken by unit
// order — computed from the modeled costs alone. Running a plan with 1
// worker or 16 therefore yields bit-identical state, spans, and latency;
// only host wall-clock differs.
package recdomain

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a recovery domain by the state it owns.
type Kind int

// Kinds.
const (
	// Global: state shared by the whole hypervisor (heap, static locks,
	// scheduler metadata, IO-APIC, cross-guest linkage).
	Global Kind = iota + 1
	// PerCPU: one CPU's private state (timer heap, local_irq_count,
	// local APIC).
	PerCPU
	// PerGuest: one guest domain's state (event-channel table, grant
	// table, pending hypercalls).
	PerGuest
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Global:
		return "global"
	case PerCPU:
		return "per-cpu"
	case PerGuest:
		return "per-guest"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Domain identifies one recovery domain. ID is the CPU number (PerCPU) or
// the guest domain ID (PerGuest); Global domains ignore it.
type Domain struct {
	Kind Kind
	ID   int
}

// String returns a short label: "global", "cpu3", "d2".
func (d Domain) String() string {
	switch d.Kind {
	case PerCPU:
		return fmt.Sprintf("cpu%d", d.ID)
	case PerGuest:
		return fmt.Sprintf("d%d", d.ID)
	default:
		return "global"
	}
}

// Unit is one schedulable piece of audit or repair work, bound to the
// single recovery domain whose state it mutates.
type Unit struct {
	Dom  Domain
	Name string
	// Cost is the unit's modeled duration on one simulated CPU.
	Cost time.Duration
	// Run performs the state mutation; nil for latency-model-only units.
	// Units sharing a non-serial level must touch disjoint state — and
	// must not touch shared infrastructure (the virtual clock, telemetry,
	// RNG streams): those belong in serial levels or to the caller.
	Run func()
}

// Level is one rung of the dependency graph. Units within a level may run
// concurrently unless Serial is set; levels always run in order.
type Level struct {
	Name   string
	Serial bool
	Units  []Unit
}

// Plan is an ordered sequence of levels.
type Plan struct {
	Levels []Level
}

// Span is one unit's interval in the simulated parallel timeline, offset
// from the plan's start. Spans are reported in plan (unit) order.
type Span struct {
	Name  string
	Dom   Domain
	Start time.Duration
	Dur   time.Duration
	Lane  int
}

// Timing is the latency accounting of one executed plan.
type Timing struct {
	// Serial is the sum of every unit's cost — what the fully sequential
	// walk would charge for the same work.
	Serial time.Duration
	// Parallel charges each non-serial level as its makespan over the
	// simulated CPU lanes (serial levels as their plain sum) and sums the
	// levels — the max-over-parallel-phases-plus-global model.
	Parallel time.Duration
	// Units counts schedulable units; Domains counts distinct recovery
	// domains across the plan.
	Units   int
	Domains int
	// Spans is every unit's scheduled interval, in plan order.
	Spans []Span
}

// Merge folds another plan's timing into tm (an attempt runs one repair
// plan and one audit plan; the attempt's totals combine both). Domains
// counts distinct domains across both span sets.
func (tm *Timing) Merge(o Timing) {
	tm.Serial += o.Serial
	tm.Parallel += o.Parallel
	tm.Units += o.Units
	tm.Spans = append(tm.Spans, o.Spans...)
	seen := make(map[Domain]struct{}, tm.Units)
	for _, sp := range tm.Spans {
		seen[sp.Dom] = struct{}{}
	}
	tm.Domains = len(seen)
}

// Execute runs every level in order — units within a non-serial level
// concurrently on up to workers goroutines — and returns the plan's
// deterministic timing on simCPUs simulated lanes. State effects, spans,
// and charged latency are independent of workers.
func (p Plan) Execute(simCPUs, workers int) Timing {
	if simCPUs < 1 {
		simCPUs = 1
	}
	if workers < 1 {
		workers = 1
	}
	tm := Timing{}
	domains := make(map[Domain]struct{})
	var offset time.Duration
	for _, lv := range p.Levels {
		units := lv.Units
		for i := range units {
			domains[units[i].Dom] = struct{}{}
			tm.Serial += units[i].Cost
		}
		tm.Units += len(units)
		if lv.Serial || workers == 1 || len(units) < 2 {
			for i := range units {
				if fn := units[i].Run; fn != nil {
					fn()
				}
			}
		} else {
			runConcurrent(units, workers)
		}
		lanes := simCPUs
		if lv.Serial {
			lanes = 1
		}
		spans, makespan := schedule(units, lanes, offset)
		tm.Spans = append(tm.Spans, spans...)
		tm.Parallel += makespan
		offset += makespan
	}
	tm.Domains = len(domains)
	return tm
}

// runConcurrent drains the unit list with a worker pool. Order within the
// level is unconstrained — the level's disjointness contract makes any
// interleaving equivalent.
func runConcurrent(units []Unit, workers int) {
	if workers > len(units) {
		workers = len(units)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(units) {
					return
				}
				if fn := units[i].Run; fn != nil {
					fn()
				}
			}
		}()
	}
	wg.Wait()
}

// schedule assigns units to lanes and returns each unit's span (indexed in
// unit order) plus the level makespan. One lane schedules in unit order
// (the serialized walk); multiple lanes use longest-processing-time-first
// onto the least-loaded lane, with all ties broken by unit order, so the
// schedule is a pure function of the costs.
func schedule(units []Unit, lanes int, offset time.Duration) ([]Span, time.Duration) {
	spans := make([]Span, len(units))
	if lanes <= 1 {
		var at time.Duration
		for i := range units {
			spans[i] = Span{Name: units[i].Name, Dom: units[i].Dom, Start: offset + at, Dur: units[i].Cost}
			at += units[i].Cost
		}
		return spans, at
	}
	idx := make([]int, len(units))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return units[idx[a]].Cost > units[idx[b]].Cost
	})
	loads := make([]time.Duration, lanes)
	for _, i := range idx {
		lane := 0
		for l := 1; l < lanes; l++ {
			if loads[l] < loads[lane] {
				lane = l
			}
		}
		spans[i] = Span{Name: units[i].Name, Dom: units[i].Dom,
			Start: offset + loads[lane], Dur: units[i].Cost, Lane: lane}
		loads[lane] += units[i].Cost
	}
	var makespan time.Duration
	for _, l := range loads {
		if l > makespan {
			makespan = l
		}
	}
	return spans, makespan
}
