package audit

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"time"

	"nilihype/internal/hv"
	"nilihype/internal/hw"
	"nilihype/internal/simclock"
)

// newTarget boots a hypervisor with a PrivVM and one AppVM, runs the clock
// a little, and pauses the system — the state the auditor sees.
func newTarget(t *testing.T) (*hv.Hypervisor, *simclock.Clock) {
	t.Helper()
	clk := simclock.New()
	h, err := hv.New(clk, hv.Config{
		Machine:        hw.Config{CPUs: 4, MemoryMB: 256, BlockSvc: 100 * time.Microsecond, NICLat: 10 * time.Microsecond},
		HeapFrames:     4096,
		LoggingEnabled: true,
		RecoveryPrep:   true,
		Seed:           42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := h.CreateDomain(1, "app", 2048, 1, false); err != nil {
		t.Fatal(err)
	}
	clk.RunUntil(30 * time.Millisecond)
	h.Pause()
	return h, clk
}

func rng() *rand.Rand { return rand.New(rand.NewPCG(21, 42)) }

// classes returns the violation classes present in the report.
func classes(r *Report) map[string][]Verdict {
	out := make(map[string][]Verdict)
	for _, v := range r.Violations {
		out[v.Class] = append(out[v.Class], v.Verdict)
	}
	return out
}

func TestCleanSystemReportsNothing(t *testing.T) {
	h, _ := newTarget(t)
	r := Run(h, Options{})
	if len(r.Violations) != 0 || r.Repaired != 0 || len(r.Sacrificed) != 0 || r.MustEscalate() {
		t.Fatalf("clean system produced report %+v", r)
	}
}

func TestDomainListRepaired(t *testing.T) {
	h, _ := newTarget(t)
	h.Domains.CorruptLink(rng())
	if h.Domains.CheckLinks() == nil {
		t.Fatal("corruption not detectable")
	}
	r := Run(h, Options{})
	vs := classes(r)[ClassDomainList]
	if len(vs) != 1 || vs[0] != Repaired {
		t.Fatalf("domain-list verdicts = %v, want one Repaired", vs)
	}
	if err := h.Domains.CheckLinks(); err != nil {
		t.Fatalf("audit left the list damaged: %v", err)
	}
}

func TestStaticScratchRepaired(t *testing.T) {
	h, _ := newTarget(t)
	h.CorruptStaticScratchWord(rng())
	r := Run(h, Options{})
	vs := classes(r)[ClassStaticScratch]
	if len(vs) != 1 || vs[0] != Repaired {
		t.Fatalf("static-scratch verdicts = %v, want one Repaired", vs)
	}
	if len(h.StaticScratchDamage()) != 0 {
		t.Fatal("audit left scratch damage")
	}
}

func TestHeapFreeListRepaired(t *testing.T) {
	h, _ := newTarget(t)
	h.Heap.CorruptFreeList(rng())
	r := Run(h, Options{})
	vs := classes(r)[ClassHeapFreeList]
	if len(vs) == 0 || vs[0] != Repaired {
		t.Fatalf("heap-freelist verdicts = %v, want Repaired", vs)
	}
	if probs := h.Heap.ValidateFreeList(); len(probs) != 0 {
		t.Fatalf("audit left free-list damage: %v", probs)
	}
}

func TestAppVMObjectDamageDegrades(t *testing.T) {
	h, _ := newTarget(t)
	d, err := h.Domain(1)
	if err != nil {
		t.Fatal(err)
	}
	d.Obj.Corrupt(rng())
	r := Run(h, Options{})
	vs := classes(r)[ClassHeapObject]
	if len(vs) != 1 || vs[0] != Degraded {
		t.Fatalf("heap-object verdicts = %v, want one Degraded", vs)
	}
	if len(r.Sacrificed) != 1 || r.Sacrificed[0] != 1 {
		t.Fatalf("Sacrificed = %v, want [1]", r.Sacrificed)
	}
	if !d.Failed {
		t.Fatal("sacrificed AppVM not failed")
	}
	if r.MustEscalate() {
		t.Fatal("confinable damage must not escalate")
	}
	if len(h.Heap.DamagedObjects()) != 0 {
		t.Fatal("audit left the object damaged")
	}
}

func TestUnownedObjectDamageEscalates(t *testing.T) {
	h, _ := newTarget(t)
	o := h.Heap.Alloc(1, "anon-metadata")
	if o == nil {
		t.Fatal("alloc failed")
	}
	o.Corrupt(rng())
	r := Run(h, Options{})
	vs := classes(r)[ClassHeapObject]
	if len(vs) != 1 || vs[0] != Escalate {
		t.Fatalf("heap-object verdicts = %v, want one Escalate", vs)
	}
	if !r.MustEscalate() {
		t.Fatal("MustEscalate = false for unconfinable damage")
	}
	// The damage is deliberately left in place: complete() re-detects it
	// and the engine escalates to the next rung.
	if len(h.Heap.DamagedObjects()) != 1 {
		t.Fatal("escalation-class object was repaired")
	}
}

func TestPrivVMObjectDamageEscalates(t *testing.T) {
	h, _ := newTarget(t)
	d0, err := h.Domain(0)
	if err != nil {
		t.Fatal(err)
	}
	d0.Obj.Corrupt(rng())
	r := Run(h, Options{})
	vs := classes(r)[ClassHeapObject]
	if len(vs) != 1 || vs[0] != Escalate {
		t.Fatalf("heap-object verdicts = %v, want one Escalate", vs)
	}
	if d0.Failed {
		t.Fatal("audit sacrificed the PrivVM")
	}
}

func TestFrameDescriptorsRepairedUnlessSkipped(t *testing.T) {
	h, _ := newTarget(t)
	h.Frames.CorruptRandomDescriptor(rng())
	r := Run(h, Options{SkipFrames: true})
	if len(classes(r)[ClassFrames]) != 0 {
		t.Fatal("SkipFrames still walked the frame table")
	}
	r = Run(h, Options{})
	vs := classes(r)[ClassFrames]
	if len(vs) != 1 || vs[0] != Repaired {
		t.Fatalf("pf-descriptor verdicts = %v, want one Repaired", vs)
	}
	if len(h.Frames.InconsistentFrames()) != 0 {
		t.Fatal("audit left inconsistent descriptors")
	}
}

func TestSchedMetadataRepairedUnlessSkipped(t *testing.T) {
	h, _ := newTarget(t)
	h.Sched.CorruptRandom(rng())
	if len(h.Sched.CheckConsistency()) == 0 {
		t.Skip("corruption landed on a self-consistent value")
	}
	r := Run(h, Options{SkipSched: true})
	if len(classes(r)[ClassSched]) != 0 {
		t.Fatal("SkipSched still walked the scheduler")
	}
	r = Run(h, Options{})
	vs := classes(r)[ClassSched]
	if len(vs) != 1 || vs[0] != Repaired {
		t.Fatalf("sched-meta verdicts = %v, want one Repaired", vs)
	}
	if len(h.Sched.CheckConsistency()) != 0 {
		t.Fatal("audit left scheduler inconsistencies")
	}
}

func TestPhantomLockHoldReleased(t *testing.T) {
	h, _ := newTarget(t)
	name := h.Locks.CorruptRandomHold(rng())
	if name == "no free locks" {
		t.Fatal("no lock to corrupt")
	}
	r := Run(h, Options{})
	vs := classes(r)[ClassLocks]
	if len(vs) != 1 || vs[0] != Repaired {
		t.Fatalf("lock-table verdicts = %v, want one Repaired", vs)
	}
	if len(h.Locks.HeldLocks()) != 0 {
		t.Fatal("audit left locks held")
	}
}

func TestTimerStallRepaired(t *testing.T) {
	h, clk := newTarget(t)
	var desc string
	r := rng()
	for i := 0; i < 32; i++ {
		desc = h.Timers.CorruptRandom(r)
		if len(h.Timers.CheckHealth(clk.Now())) > 0 {
			break
		}
	}
	if len(h.Timers.CheckHealth(clk.Now())) == 0 {
		t.Fatalf("no detectable timer damage (%s)", desc)
	}
	rep := Run(h, Options{})
	vs := classes(rep)[ClassTimers]
	if len(vs) == 0 || vs[0] != Repaired {
		t.Fatalf("timer-heap verdicts = %v, want Repaired", vs)
	}
	if probs := h.Timers.CheckHealth(clk.Now()); len(probs) != 0 {
		t.Fatalf("audit left timer damage: %v", probs)
	}
}

func TestEvtchnLinkRepairedViaBacklink(t *testing.T) {
	h, _ := newTarget(t)
	if desc := h.Broker.CorruptRandomLink(rng()); desc == "no interdomain ports" {
		t.Fatal("no port to corrupt")
	}
	if len(h.Broker.CheckLinks()) == 0 {
		t.Fatal("corruption not detectable")
	}
	r := Run(h, Options{})
	vs := classes(r)[ClassEvtchn]
	if len(vs) == 0 {
		t.Fatal("no evtchn violations reported")
	}
	for _, v := range vs {
		if v != Repaired {
			t.Fatalf("evtchn verdicts = %v, want all Repaired (backlink survives)", vs)
		}
	}
	if probs := h.Broker.CheckLinks(); len(probs) != 0 {
		t.Fatalf("audit left linkage damage: %v", probs)
	}
	d, _ := h.Domain(1)
	if d.Failed {
		t.Fatal("repairable link damage sacrificed the VM")
	}
}

func TestRingPortLossSacrificesVM(t *testing.T) {
	h, _ := newTarget(t)
	d, err := h.Domain(1)
	if err != nil {
		t.Fatal(err)
	}
	t1 := h.Broker.Table(1)
	port, err := t1.Port(d.RingPort)
	if err != nil {
		t.Fatal(err)
	}
	// Destroy both halves: garble the AppVM's ring port and close the
	// PrivVM backend port it pointed at, so no backlink survives.
	peerDom, peerPort := port.RemoteDom, port.RemotePort
	if err := h.Broker.Table(peerDom).Close(peerPort); err != nil {
		t.Fatal(err)
	}
	port.RemotePort += 13
	r := Run(h, Options{})
	found := false
	for _, v := range r.Violations {
		if v.Class == ClassEvtchn && v.Verdict == Degraded {
			found = true
		}
	}
	if !found {
		t.Fatalf("no Degraded evtchn violation in %+v", r.Violations)
	}
	if !d.Failed {
		t.Fatal("AppVM with lost ring port not sacrificed")
	}
	if len(r.Sacrificed) == 0 || r.Sacrificed[0] != 1 {
		t.Fatalf("Sacrificed = %v, want [1]", r.Sacrificed)
	}
}

func TestGrantCountRewritten(t *testing.T) {
	h, _ := newTarget(t)
	d, err := h.Domain(1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := d.GrantTab.Entry(3)
	if err != nil {
		t.Fatal(err)
	}
	e.MapCount = 17 // phantom count with no maptrack backing
	r := Run(h, Options{})
	vs := classes(r)[ClassGrant]
	if len(vs) != 1 || vs[0] != Repaired {
		t.Fatalf("grant-count verdicts = %v, want one Repaired", vs)
	}
	if e.MapCount != 0 {
		t.Fatalf("MapCount = %d after audit, want 0", e.MapCount)
	}
}

func TestAuditIsDeterministic(t *testing.T) {
	// Two identical systems with identical multi-class damage must produce
	// byte-identical reports: the auditor consumes no randomness and walks
	// in stable order.
	build := func() *Report {
		h, _ := newTarget(t)
		r := rng()
		h.Domains.CorruptLink(r)
		h.CorruptStaticScratchWord(r)
		h.Heap.CorruptFreeList(r)
		h.Locks.CorruptRandomHold(r)
		h.Broker.CorruptRandomLink(r)
		d, _ := h.Domain(1)
		d.Obj.Corrupt(r)
		return Run(h, Options{})
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("reports differ:\n%+v\n%+v", a, b)
	}
	if len(a.Violations) < 5 {
		t.Fatalf("expected >=5 violations, got %d", len(a.Violations))
	}
}
