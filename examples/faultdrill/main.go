// Faultdrill: a microscope on one fault. It injects a fail-stop fault at
// a precisely chosen point — inside an mmu_update pin, after the page
// reference count was incremented but before the hypercall completed — and
// shows the hazard state the recovery engine faces (held locks, stale IRQ
// count, the half-updated descriptor), then walks the microreset and the
// hypercall retry to completion.
//
// This is the paper's §IV non-idempotent-hypercall example made visible.
package main

import (
	"fmt"
	"log"
	"time"

	"nilihype/internal/core"
	"nilihype/internal/detect"
	"nilihype/internal/guest"
	"nilihype/internal/hv"
	"nilihype/internal/hypercall"
	"nilihype/internal/simclock"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	clk := simclock.New()
	h, err := hv.New(clk, hv.DefaultConfig())
	if err != nil {
		return err
	}
	if err := h.Boot(); err != nil {
		return err
	}
	world := guest.NewWorld(h, 1)
	if _, err := world.AddAppVM(guest.Config{Kind: guest.UnixBench, Dom: 1, CPU: 1,
		Duration: 2 * time.Second}); err != nil {
		return err
	}
	engine := core.NewEngine(h, core.DefaultConfig())
	det := detect.New(h, engine.OnDetection)
	engine.Det = det
	det.Start()
	clk.RunUntil(100 * time.Millisecond)

	d, err := h.Domain(1)
	if err != nil {
		return err
	}
	frame := d.MemStart + 123

	// Arm the trigger to land inside the pin, right after inc_refcount:
	// entry(150) + lock(40) + inc(60) = 250 instructions consumed, so
	// the fault hits the next step (write_pte) with the count already
	// bumped but the hypercall incomplete.
	f := h.Frames.Frame(frame)
	h.ArmInjection(260, func(pt hv.InjectionPoint) (hv.InjectAction, string) {
		fmt.Printf("fault lands in %s at step %q\n", pt.Activity, pt.StepName)
		fmt.Printf("\nhazard state at the instant of the fault:\n")
		fmt.Printf("  frame %d: UseCount=%d Validated=%v  <- half-updated (§IV)\n",
			frame, f.UseCount, f.Validated)
		fmt.Printf("  locks held by the dying thread:\n")
		for _, l := range pt.HeldLocks {
			fmt.Printf("    - %s (%v)\n", l.Name(), l.Kind())
		}
		fmt.Printf("  undo log records pending: %d\n", h.PerCPU(1).Env.Undo.Len())
		return hv.ActionPanic, "failstop (drill)"
	})

	fmt.Printf("dispatching mmu_update pin of frame %d...\n", frame)
	h.Dispatch(1, &hypercall.Call{Op: hypercall.OpMMUUpdate, Dom: 1,
		Args: [4]uint64{hypercall.MMUPin, uint64(frame)}})

	fmt.Printf("\nstate after the microreset repairs (resume pending):\n")
	fmt.Printf("  frame %d: UseCount=%d Validated=%v  <- consistency scan ran\n",
		frame, f.UseCount, f.Validated)
	fmt.Printf("  page_alloc lock held: %v  <- heap-lock release ran\n", d.PageAllocLock.Held())
	fmt.Printf("  local_irq_count: %d  <- cleared\n", h.IRQCount(1))

	fmt.Printf("\nmicroreset completes (%d descriptors scanned)...\n", h.Frames.Len())
	clk.RunUntil(clk.Now() + 500*time.Millisecond)

	fmt.Printf("\nafter recovery (+retry):\n")
	fmt.Printf("  engine: %s\n", engine.Summary())
	fmt.Printf("  frame %d: UseCount=%d Validated=%v  <- rolled back and re-pinned\n",
		frame, f.UseCount, f.Validated)
	fmt.Printf("  page_alloc lock held: %v\n", d.PageAllocLock.Held())
	fmt.Printf("  local_irq_count: %d\n", h.IRQCount(1))
	fmt.Printf("  hypercalls retried: %d\n", h.Stats.RetriedCalls)
	if failed, why := h.Failed(); failed {
		return fmt.Errorf("hypervisor failed: %s", why)
	}
	return nil
}
