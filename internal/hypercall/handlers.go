package hypercall

import (
	"fmt"
	"time"

	"nilihype/internal/evtchn"
	"nilihype/internal/mm"
	"nilihype/internal/sched"
)

// Build constructs the handler program for a call. Programs are built at
// dispatch time (and again at retry time), so a retried multicall skips
// already-completed components via the completion log.
//
// Step instruction weights are calibrated: together with the workload mix
// they determine what fraction of hypervisor execution holds locks, is
// mid-non-idempotent-update, is inside the scheduler, etc. — the occupancy
// fractions that the paper's Table I recovery ladder reflects.
func Build(env *Env, call *Call) (Program, error) {
	switch call.Op {
	case OpMMUUpdate:
		return buildMMUUpdate(env, call), nil
	case OpMemoryOp:
		return buildMemoryOp(env, call), nil
	case OpGrantTableOp:
		return buildGrantTableOp(env, call), nil
	case OpEventChannelOp:
		return buildEventChannel(env, call), nil
	case OpSchedOp:
		return buildSchedOp(env, call), nil
	case OpSetTimerOp:
		return buildSetTimer(env, call), nil
	case OpConsoleIO:
		return buildConsoleIO(env, call), nil
	case OpVCPUOp:
		return buildVCPUOp(env, call), nil
	case OpMulticall:
		return buildMulticall(env, call)
	case OpDomctl:
		return buildDomctl(env, call), nil
	case OpSyscallForward:
		return buildSyscallForward(env, call), nil
	case OpEPTViolation:
		return buildEPTViolation(env, call), nil
	case OpIOEmulation:
		return buildIOEmulation(env, call), nil
	default:
		return nil, fmt.Errorf("hypercall: unknown op %v", call.Op)
	}
}

// assertf returns an assertion-failure error (hypervisor ASSERT).
func assertf(format string, args ...any) error {
	return fmt.Errorf("ASSERT: "+format, args...)
}

// buildMMUUpdate models page-table pin/unpin: the canonical non-idempotent
// hypercall. The reference count and the validation bit are updated in
// separate steps; re-executing the count update after a partial run trips
// the validation assertion — exactly the paper's §IV example.
func buildMMUUpdate(env *Env, call *Call) Program {
	frame := int(call.Args[1])
	pin := call.Args[SubOpArg] == MMUPin
	var d = func() (*mm.PageFrame, error) {
		if frame < 0 || frame >= env.Frames.Len() {
			return nil, assertf("mmu_update: bad frame %d", frame)
		}
		return env.Frames.Frame(frame), nil
	}
	domLock := func() error {
		dm, err := env.targetDomain(call.Dom)
		if err != nil {
			return err
		}
		return env.Acquire(dm.PageAllocLock)
	}
	domUnlock := func() error {
		dm, err := env.targetDomain(call.Dom)
		if err != nil {
			return err
		}
		env.Release(dm.PageAllocLock)
		return nil
	}
	if pin {
		return Program{
			{Name: "entry", Instrs: 150, Do: func() error { return nil }},
			{Name: "lock_page_alloc", Instrs: 40, Do: domLock},
			{Name: "inc_refcount", Instrs: 60, Do: func() error {
				f, err := d()
				if err != nil {
					return err
				}
				env.LogWrite("mmu_pin: undo inc_refcount", LogCostMMU, func() { f.UseCount-- })
				f.Type = mm.FramePageTable
				f.IncUse()
				return nil
			}},
			{Name: "write_pte", Instrs: 120, Do: func() error { return nil }},
			{Name: "validate", Instrs: 80, Do: func() error {
				f, err := d()
				if err != nil {
					return err
				}
				if f.UseCount != 1 {
					return assertf("mmu_pin: refcount %d on validate (retry of partial hypercall?)", f.UseCount)
				}
				// The validation bit itself is not logged: a rollback
				// that leaves it stale is exactly the inconsistency the
				// recovery-time page-frame scan repairs.
				f.Validated = true
				return nil
			}},
			{Name: "window", Instrs: 38, Unmitigated: true, Do: func() error { return nil }},
			{Name: "unlock_page_alloc", Instrs: 30, Do: domUnlock},
			{Name: "complete", Instrs: 20, Do: func() error { return nil }},
		}
	}
	return Program{
		{Name: "entry", Instrs: 150, Do: func() error { return nil }},
		{Name: "lock_page_alloc", Instrs: 40, Do: domLock},
		{Name: "clear_validated", Instrs: 50, Do: func() error {
			f, err := d()
			if err != nil {
				return err
			}
			if !f.Validated {
				return assertf("mmu_unpin: frame %d not validated (retry of partial hypercall?)", frame)
			}
			env.LogWrite("mmu_unpin: undo clear_validated", LogCostMMU, func() { f.Validated = true })
			f.Validated = false
			return nil
		}},
		{Name: "dec_refcount", Instrs: 60, Do: func() error {
			f, err := d()
			if err != nil {
				return err
			}
			env.LogWrite("mmu_unpin: undo dec_refcount", LogCostMMU, func() { f.UseCount++ })
			if err := f.DecUse(); err != nil {
				return assertf("mmu_unpin: %v", err)
			}
			if f.UseCount == 0 {
				f.Type = mm.FrameGuest
			}
			return nil
		}},
		{Name: "window", Instrs: 38, Unmitigated: true, Do: func() error { return nil }},
		{Name: "unlock_page_alloc", Instrs: 30, Do: domUnlock},
		{Name: "complete", Instrs: 20, Do: func() error { return nil }},
	}
}

// buildMemoryOp models increase/decrease reservation: adjusts the domain's
// page accounting under the static heap lock. Non-idempotent via TotPages.
func buildMemoryOp(env *Env, call *Call) Program {
	delta := int(int64(call.Args[1]))
	if call.Args[SubOpArg] == MemRelease {
		delta = -delta
	}
	return Program{
		{Name: "entry", Instrs: 120, Do: func() error { return nil }},
		{Name: "lock_heap", Instrs: 40, Do: func() error { return env.Acquire(env.Statics.HeapLock) }},
		{Name: "adjust_tot_pages", Instrs: 110, Do: func() error {
			dm, err := env.targetDomain(call.Dom)
			if err != nil {
				return err
			}
			env.LogWrite("memory_op: undo tot_pages", LogCostMemory, func() { dm.TotPages -= delta })
			dm.TotPages += delta
			if dm.TotPages < 0 || dm.TotPages > dm.MemCount {
				return assertf("memory_op: tot_pages %d out of [0,%d] for d%d (retry of partial hypercall?)",
					dm.TotPages, dm.MemCount, dm.ID)
			}
			return nil
		}},
		{Name: "update_heap", Instrs: 260, Do: func() error { return env.Heap.Check() }},
		{Name: "window", Instrs: 32, Unmitigated: true, Do: func() error { return nil }},
		{Name: "unlock_heap", Instrs: 30, Do: func() error { env.Release(env.Statics.HeapLock); return nil }},
		{Name: "complete", Instrs: 20, Do: func() error { return nil }},
	}
}

// buildGrantTableOp models grant map/unmap: the block I/O path's mechanism
// for sharing pages, again with a non-idempotent map count.
func buildGrantTableOp(env *Env, call *Call) Program {
	ref := int(call.Args[1])
	frame := int(call.Args[2])
	mapOp := call.Args[SubOpArg] == GrantMap
	if mapOp {
		return Program{
			{Name: "entry", Instrs: 130, Do: func() error { return nil }},
			{Name: "lock_grant", Instrs: 40, Do: func() error {
				dm, err := env.targetDomain(call.Dom)
				if err != nil {
					return err
				}
				return env.Acquire(dm.GrantLock)
			}},
			{Name: "map_track", Instrs: 50, Do: func() error {
				dm, err := env.targetDomain(call.Dom)
				if err != nil {
					return err
				}
				e, err := dm.GrantTab.Entry(ref)
				if err != nil {
					return assertf("grant_map: %v", err)
				}
				if !e.InUse || e.Frame != frame {
					return assertf("grant_map: ref %d not granted for frame %d in d%d", ref, frame, dm.ID)
				}
				// The I/O rings map each granted buffer exactly once;
				// a second mapping is the §IV signature of a retried
				// partial hypercall.
				if e.MapCount != 0 {
					return assertf("grant_map: ref %d already mapped in d%d (retry of partial hypercall?)", ref, dm.ID)
				}
				h, _, err := dm.Maptrack.Map(dm.GrantTab, ref)
				if err != nil {
					return assertf("grant_map: %v", err)
				}
				env.LogWrite("grant_map: undo map_track", LogCostGrant, func() {
					dm.Maptrack.Unmap(h, dm.GrantTab)
				})
				return nil
			}},
			{Name: "inc_mapcount", Instrs: 50, Do: func() error {
				if frame < 0 || frame >= env.Frames.Len() {
					return assertf("grant_map: bad frame %d", frame)
				}
				f := env.Frames.Frame(frame)
				env.LogWrite("grant_map: undo inc_mapcount", LogCostGrant, func() { f.UseCount-- })
				f.IncUse()
				return nil
			}},
			{Name: "unlock_grant", Instrs: 30, Do: func() error {
				dm, err := env.targetDomain(call.Dom)
				if err != nil {
					return err
				}
				env.Release(dm.GrantLock)
				return nil
			}},
			{Name: "complete", Instrs: 20, Do: func() error { return nil }},
		}
	}
	return Program{
		{Name: "entry", Instrs: 130, Do: func() error { return nil }},
		{Name: "lock_grant", Instrs: 40, Do: func() error {
			dm, err := env.targetDomain(call.Dom)
			if err != nil {
				return err
			}
			return env.Acquire(dm.GrantLock)
		}},
		{Name: "unmap_track", Instrs: 50, Do: func() error {
			dm, err := env.targetDomain(call.Dom)
			if err != nil {
				return err
			}
			h := dm.Maptrack.HandleForRef(dm.ID, ref)
			if h < 0 {
				return assertf("grant_unmap: ref %d not mapped in d%d (retry of partial hypercall?)", ref, dm.ID)
			}
			mp, err := dm.Maptrack.Unmap(h, dm.GrantTab)
			if err != nil {
				return assertf("grant_unmap: %v", err)
			}
			env.LogWrite("grant_unmap: undo unmap_track", LogCostGrant, func() {
				dm.Maptrack.Map(dm.GrantTab, mp.Ref)
			})
			return nil
		}},
		{Name: "dec_mapcount", Instrs: 50, Do: func() error {
			if frame < 0 || frame >= env.Frames.Len() {
				return assertf("grant_unmap: bad frame %d", frame)
			}
			f := env.Frames.Frame(frame)
			env.LogWrite("grant_unmap: undo dec_mapcount", LogCostGrant, func() { f.UseCount++ })
			if err := f.DecUse(); err != nil {
				return assertf("grant_unmap: %v", err)
			}
			return nil
		}},
		{Name: "window", Instrs: 44, Unmitigated: true, Do: func() error { return nil }},
		{Name: "unlock_grant", Instrs: 30, Do: func() error {
			dm, err := env.targetDomain(call.Dom)
			if err != nil {
				return err
			}
			env.Release(dm.GrantLock)
			return nil
		}},
		{Name: "complete", Instrs: 20, Do: func() error { return nil }},
	}
}

// buildEventChannel models event-channel send: idempotent (the pending
// bit is level-triggered), so retry is always safe. Setting the peer's
// pending bit and delivering the upcall are separate steps (an abandoned
// upcall leaves a pending-but-sleeping vCPU; the scheduling-metadata
// repair re-enqueues it).
func buildEventChannel(env *Env, call *Call) Program {
	port := int(call.Args[2])
	notified := -1
	notifiedPort := -1
	bad := false // invalid port: -EINVAL to the guest, not a panic
	return Program{
		{Name: "entry", Instrs: 100, Do: func() error { return nil }},
		{Name: "lookup_port", Instrs: 60, Do: func() error {
			// The send path walks the caller's domain structure.
			dm, err := env.targetDomain(call.Dom)
			if err != nil {
				return err
			}
			if p, err := dm.Events.Port(port); err != nil || p.State == evtchn.Free || p.State == evtchn.Unbound {
				bad = true
			}
			return nil
		}},
		{Name: "set_pending", Instrs: 40, Do: func() error {
			if bad {
				return nil
			}
			who, err := env.Broker.Send(call.Dom, port)
			if err != nil {
				return assertf("evtchn_send: %v", err)
			}
			notified = who
			dm, err := env.targetDomain(who)
			if err != nil {
				return err
			}
			if ports := dm.Events.PendingPorts(); len(ports) > 0 {
				notifiedPort = ports[len(ports)-1]
			}
			return nil
		}},
		{Name: "upcall", Instrs: 50, Do: func() error {
			if notified < 0 {
				return nil
			}
			dm, err := env.targetDomain(notified)
			if err != nil {
				return err
			}
			if v := dm.UpcallVCPU(); v != nil {
				env.Wake(v)
			}
			if env.Notify != nil && notifiedPort >= 0 {
				env.Notify(notified, notifiedPort)
			}
			return nil
		}},
		{Name: "complete", Instrs: 20, Do: func() error { return nil }},
	}
}

// buildSchedOp models yield/block: the guest gives up the CPU and the
// scheduler context-switches. The switch is decomposed into the metadata
// steps whose windows produce the paper's scheduling inconsistencies.
func buildSchedOp(env *Env, call *Call) Program {
	blockOp := call.Args[SubOpArg] == SchedBlock
	var op *sched.SwitchOp
	cpu := env.CPU
	return Program{
		{Name: "entry", Instrs: 100, Do: func() error { return nil }},
		{Name: "lock_runq", Instrs: 30, Do: func() error {
			return env.Acquire(env.Sched.RunqueueLock(cpu))
		}},
		{Name: "update_runstate", Instrs: 60, Do: func() error {
			if blockOp {
				env.Sched.Block(cpu)
			}
			return nil
		}},
		{Name: "pick_next", Instrs: 90, Do: func() error {
			op = env.Sched.BeginSwitch(cpu)
			return nil
		}},
		{Name: "dequeue_next", Instrs: 50, Do: func() error {
			if op != nil {
				op.StepDequeueNext()
			}
			return nil
		}},
		{Name: "requeue_prev", Instrs: 50, Do: func() error {
			if op != nil && !blockOp {
				op.StepRequeuePrev()
			}
			return nil
		}},
		{Name: "set_curr", Instrs: 40, Do: func() error {
			if op != nil {
				op.StepSetCurr()
			}
			return nil
		}},
		{Name: "set_vcpu_state", Instrs: 70, Do: func() error {
			if op != nil {
				op.StepSetVCPU()
			}
			return nil
		}},
		{Name: "unlock_runq", Instrs: 30, Do: func() error {
			env.Release(env.Sched.RunqueueLock(cpu))
			return nil
		}},
		{Name: "context_restore", Instrs: 110, Do: func() error {
			if op != nil && env.SwitchContext != nil {
				env.SwitchContext(cpu, op.Prev(), op.Next())
			}
			return nil
		}},
		{Name: "complete", Instrs: 20, Do: func() error { return nil }},
	}
}

// buildSetTimer models set_timer_op: replace the vCPU's wakeup timer and
// reprogram the APIC (separate steps — the add/reprogram window).
func buildSetTimer(env *Env, call *Call) Program {
	delta := time.Duration(call.Args[1])
	cpu := env.CPU
	return Program{
		{Name: "entry", Instrs: 100, Do: func() error { return nil }},
		{Name: "stop_old_timer", Instrs: 30, Do: func() error {
			dm, err := env.targetDomain(call.Dom)
			if err != nil {
				return err
			}
			if dm.WakeupTimer != nil {
				env.Timers.StopTimer(dm.WakeupTimer)
				dm.WakeupTimer = nil
			}
			return nil
		}},
		{Name: "add_timer", Instrs: 60, Do: func() error {
			dm, err := env.targetDomain(call.Dom)
			if err != nil {
				return err
			}
			var v *sched.VCPU
			if len(dm.VCPUs) > 0 {
				v = dm.VCPUs[0]
			}
			dm.WakeupTimer = env.Timers.AddTimer(cpu, fmt.Sprintf("d%d-wakeup", call.Dom),
				env.Now()+delta, 0, func() {
					if v != nil {
						env.Wake(v)
					}
				})
			return nil
		}},
		{Name: "reprogram_apic", Instrs: 40, Do: func() error {
			env.Timers.ProgramAPIC(cpu)
			return nil
		}},
		{Name: "complete", Instrs: 20, Do: func() error { return nil }},
	}
}

// buildConsoleIO models console output: the message lands in the
// hypervisor console ring under the console static lock.
func buildConsoleIO(env *Env, call *Call) Program {
	return Program{
		{Name: "entry", Instrs: 80, Do: func() error { return nil }},
		{Name: "lock_console", Instrs: 30, Do: func() error { return env.Acquire(env.Statics.Console) }},
		{Name: "emit", Instrs: 100, Do: func() error {
			if env.ConsoleWrite != nil {
				env.ConsoleWrite(fmt.Sprintf("d%d: console output (call %d)", call.Dom, call.Seq))
			}
			return nil
		}},
		{Name: "unlock_console", Instrs: 30, Do: func() error { env.Release(env.Statics.Console); return nil }},
		{Name: "complete", Instrs: 10, Do: func() error { return nil }},
	}
}

// buildVCPUOp models lightweight vCPU state queries (idempotent).
func buildVCPUOp(env *Env, call *Call) Program {
	return Program{
		{Name: "entry", Instrs: 80, Do: func() error { return nil }},
		{Name: "read_state", Instrs: 60, Do: func() error {
			_, err := env.targetDomain(call.Dom)
			return err
		}},
		{Name: "complete", Instrs: 20, Do: func() error { return nil }},
	}
}

// buildMulticall flattens the batch's component programs, inserting a
// completion-log step after each component. Components already marked
// complete (retry of a partial batch) are skipped — the fine-granularity
// logCompletionLabels covers every batch size the workload generates;
// multicall programs are rebuilt on each dispatch and retry, so the
// common labels must not be re-formatted every time.
var logCompletionLabels = [...]string{
	"log_completion[0]", "log_completion[1]", "log_completion[2]",
	"log_completion[3]", "log_completion[4]", "log_completion[5]",
	"log_completion[6]", "log_completion[7]", "log_completion[8]",
	"log_completion[9]", "log_completion[10]", "log_completion[11]",
	"log_completion[12]", "log_completion[13]", "log_completion[14]",
	"log_completion[15]",
}

func logCompletionLabel(i int) string {
	if i >= 0 && i < len(logCompletionLabels) {
		return logCompletionLabels[i]
	}
	return fmt.Sprintf("log_completion[%d]", i)
}

// batched-retry enhancement of §IV.
func buildMulticall(env *Env, call *Call) (Program, error) {
	prog := Program{
		{Name: "multicall_entry", Instrs: 60, Do: func() error { return nil }},
	}
	for i := call.Completed; i < len(call.Batch); i++ {
		comp := call.Batch[i]
		sub, err := Build(env, comp)
		if err != nil {
			return nil, err
		}
		prog = append(prog, sub...)
		if env.RecoveryPrep {
			// Completion logging is recovery machinery (§IV): stock Xen
			// does not track per-component completion.
			prog = append(prog, Step{
				Name:   logCompletionLabel(i),
				Instrs: 15,
				Do: func() error {
					call.Completed++
					// Commit: a completed component is never rolled
					// back or re-executed, so its undo records are
					// discarded here, not at batch completion.
					env.Undo.Clear()
					return nil
				},
			})
		}
	}
	prog = append(prog, Step{Name: "multicall_exit", Instrs: 30, Do: func() error { return nil }})
	return prog, nil
}

// buildDomctl models PrivVM management operations: domain creation and
// destruction. Creation inserts into the global domain list — a logged
// critical write, since a retried partial create would double-insert.
func buildDomctl(env *Env, call *Call) Program {
	sub := call.Args[SubOpArg]
	if sub == DomctlCreate {
		spec := call.Create
		created := false
		return Program{
			{Name: "entry", Instrs: 200, Do: func() error {
				if spec == nil {
					return assertf("domctl_create: nil spec")
				}
				return nil
			}},
			{Name: "lock_domlist", Instrs: 40, Do: func() error { return env.Acquire(env.Statics.DomList) }},
			{Name: "check_exists", Instrs: 60, Do: func() error {
				if err := env.Domains.CheckLinks(); err != nil {
					return assertf("domctl_create: %v", err)
				}
				if _, err := env.Domains.ByID(spec.ID); err == nil {
					if created {
						return nil // our own retry already created it
					}
					return assertf("domctl_create: domain %d already exists", spec.ID)
				}
				return nil
			}},
			{Name: "alloc_and_insert", Instrs: 350, Do: func() error {
				if created {
					return nil
				}
				env.LogWrite("domctl_create: undo insert", LogCostDomctl, func() {
					if d, err := env.Domains.ByID(spec.ID); err == nil {
						_ = env.DestroyDomain(d.ID)
					}
					created = false
				})
				if err := env.CreateDomain(*spec); err != nil {
					return assertf("domctl_create: %v", err)
				}
				created = true
				return nil
			}},
			{Name: "window", Instrs: 30, Unmitigated: true, Do: func() error { return nil }},
			{Name: "unlock_domlist", Instrs: 30, Do: func() error { env.Release(env.Statics.DomList); return nil }},
			{Name: "complete", Instrs: 40, Do: func() error { return nil }},
		}
	}
	target := int(call.Args[1])
	return Program{
		{Name: "entry", Instrs: 150, Do: func() error { return nil }},
		{Name: "lock_domlist", Instrs: 40, Do: func() error { return env.Acquire(env.Statics.DomList) }},
		{Name: "unlink_and_free", Instrs: 300, Do: func() error {
			if _, err := env.Domains.ByID(target); err != nil {
				return assertf("domctl_destroy: %v", err)
			}
			return env.DestroyDomain(target)
		}},
		{Name: "unlock_domlist", Instrs: 30, Do: func() error { env.Release(env.Statics.DomList); return nil }},
		{Name: "complete", Instrs: 40, Do: func() error { return nil }},
	}
}

// buildSyscallForward models the x86-64 syscall path: system calls from
// guest processes trap into the hypervisor, which forwards them to the
// guest kernel (§IV "Syscall retry"). No locks, no critical writes —
// but a fault mid-forward loses the syscall unless it is retried.
func buildSyscallForward(env *Env, call *Call) Program {
	return Program{
		{Name: "entry", Instrs: 90, Do: func() error { return nil }},
		{Name: "forward", Instrs: 120, Do: func() error {
			_, err := env.targetDomain(call.Dom)
			return err
		}},
		{Name: "complete", Instrs: 20, Do: func() error { return nil }},
	}
}

// buildEPTViolation models an HVM nested-paging fault (§VI-A): populate
// or tear down an EPT mapping. Structurally the pin/unpin twin of
// mmu_update — a mapping count plus a present bit updated in separate
// steps — which is why the paper found HVM and PV injection results "very
// similar": the hazards are the same.
func buildEPTViolation(env *Env, call *Call) Program {
	frame := int(call.Args[1])
	populate := call.Args[SubOpArg] == EPTPopulate
	fr := func() (*mm.PageFrame, error) {
		if frame < 0 || frame >= env.Frames.Len() {
			return nil, assertf("ept_violation: bad frame %d", frame)
		}
		return env.Frames.Frame(frame), nil
	}
	lock := func() error {
		dm, err := env.targetDomain(call.Dom)
		if err != nil {
			return err
		}
		return env.Acquire(dm.PageAllocLock)
	}
	unlock := func() error {
		dm, err := env.targetDomain(call.Dom)
		if err != nil {
			return err
		}
		env.Release(dm.PageAllocLock)
		return nil
	}
	if populate {
		return Program{
			{Name: "vmexit_entry", Instrs: 180, Do: func() error { return nil }},
			{Name: "lock_p2m", Instrs: 40, Do: lock},
			{Name: "inc_mapcount", Instrs: 60, Do: func() error {
				f, err := fr()
				if err != nil {
					return err
				}
				env.LogWrite("ept_populate: undo inc_mapcount", LogCostMMU, func() { f.UseCount-- })
				f.Type = mm.FramePageTable
				f.IncUse()
				return nil
			}},
			{Name: "write_ept_entry", Instrs: 110, Do: func() error { return nil }},
			{Name: "set_present", Instrs: 70, Do: func() error {
				f, err := fr()
				if err != nil {
					return err
				}
				if f.UseCount != 1 {
					return assertf("ept_populate: mapcount %d on set_present (retry of partial exit?)", f.UseCount)
				}
				f.Validated = true
				return nil
			}},
			{Name: "window", Instrs: 34, Unmitigated: true, Do: func() error { return nil }},
			{Name: "unlock_p2m", Instrs: 30, Do: unlock},
			{Name: "vmenter", Instrs: 120, Do: func() error { return nil }},
		}
	}
	return Program{
		{Name: "vmexit_entry", Instrs: 180, Do: func() error { return nil }},
		{Name: "lock_p2m", Instrs: 40, Do: lock},
		{Name: "clear_present", Instrs: 50, Do: func() error {
			f, err := fr()
			if err != nil {
				return err
			}
			if !f.Validated {
				return assertf("ept_unmap: frame %d not present (retry of partial exit?)", frame)
			}
			env.LogWrite("ept_unmap: undo clear_present", LogCostMMU, func() { f.Validated = true })
			f.Validated = false
			return nil
		}},
		{Name: "dec_mapcount", Instrs: 60, Do: func() error {
			f, err := fr()
			if err != nil {
				return err
			}
			env.LogWrite("ept_unmap: undo dec_mapcount", LogCostMMU, func() { f.UseCount++ })
			if err := f.DecUse(); err != nil {
				return assertf("ept_unmap: %v", err)
			}
			if f.UseCount == 0 {
				f.Type = mm.FrameGuest
			}
			return nil
		}},
		{Name: "window", Instrs: 34, Unmitigated: true, Do: func() error { return nil }},
		{Name: "unlock_p2m", Instrs: 30, Do: unlock},
		{Name: "vmenter", Instrs: 120, Do: func() error { return nil }},
	}
}

// buildIOEmulation models an emulated device access by an HVM guest:
// decode the instruction, emulate the device register, re-enter. No
// locks, no critical writes — the exit is simply re-executed after
// recovery.
func buildIOEmulation(env *Env, call *Call) Program {
	return Program{
		{Name: "vmexit_entry", Instrs: 180, Do: func() error { return nil }},
		{Name: "decode", Instrs: 140, Do: func() error {
			_, err := env.targetDomain(call.Dom)
			return err
		}},
		{Name: "emulate", Instrs: 160, Do: func() error { return nil }},
		{Name: "vmenter", Instrs: 120, Do: func() error { return nil }},
	}
}
