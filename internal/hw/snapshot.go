package hw

import (
	"time"

	"nilihype/internal/simclock"
)

// cpuState is one CPU's captured state. Event handles are part of the
// snapshot: the clock snapshot revives the same *simclock.Event objects in
// place, so saving the pointers keeps the APIC/perf linkage intact across
// a restore.
type cpuState struct {
	regs         [NumRegs]uint64
	intrDisabled bool
	halted       bool
	cycles       CycleCounters
	hypInstrs    uint64
	pending      []Vector

	apicArmed    bool
	apicDeadline time.Duration
	apicEvent    *simclock.Event

	perfPeriod  time.Duration
	perfRunning bool
	perfEvent   *simclock.Event
}

// Snapshot is a captured machine state (everything mutable below the
// hypervisor: register files, interrupt state, device queues, counters).
// It pairs with a simclock.Snapshot taken at the same instant.
type Snapshot struct {
	cpus  []cpuState
	lines [numIRQLines + 1]lineState

	redirWrites uint64

	blkQueue     []BlockRequest
	blkBusy      bool
	blkCompleted []BlockCompletion
	blkSubmitted uint64
	blkDone      uint64

	rxRing    []Packet
	rxCount   uint64
	rxDropped uint64
	txCount   uint64
}

// Snapshot captures the machine's mutable hardware state.
func (m *Machine) Snapshot() *Snapshot {
	s := &Snapshot{
		cpus:        make([]cpuState, len(m.cpus)),
		lines:       m.ioapic.lines,
		redirWrites: m.ioapic.RedirWrites,

		blkQueue:     append([]BlockRequest(nil), m.block.queue...),
		blkBusy:      m.block.busy,
		blkCompleted: append([]BlockCompletion(nil), m.block.completed...),
		blkSubmitted: m.block.Submitted,
		blkDone:      m.block.Completed,

		rxRing:    append([]Packet(nil), m.nic.rxRing...),
		rxCount:   m.nic.RxCount,
		rxDropped: m.nic.RxDropped,
		txCount:   m.nic.TxCount,
	}
	for i, c := range m.cpus {
		s.cpus[i] = cpuState{
			regs:         c.Regs,
			intrDisabled: c.IntrDisabled,
			halted:       c.Halted,
			cycles:       c.Cycles,
			hypInstrs:    c.HypInstrs,
			pending:      append([]Vector(nil), c.pending...),
			apicArmed:    c.apic.armed,
			apicDeadline: c.apic.deadline,
			apicEvent:    c.apic.event,
			perfPeriod:   c.perf.period,
			perfRunning:  c.perf.running,
			perfEvent:    c.perf.event,
		}
	}
	return s
}

// Restore rewinds the machine to a snapshot taken on this same Machine.
// The interrupt sink and TX sink registrations are left untouched (they
// are boot-time wiring, not run state). Restore must be paired with
// restoring the clock snapshot taken at the same instant, since the saved
// APIC/perf event handles reference events the clock restore revives.
func (m *Machine) Restore(s *Snapshot) {
	for i, c := range m.cpus {
		st := &s.cpus[i]
		c.Regs = st.regs
		c.IntrDisabled = st.intrDisabled
		c.Halted = st.halted
		c.Cycles = st.cycles
		c.HypInstrs = st.hypInstrs
		c.pending = append(c.pending[:0], st.pending...)
		c.apic.armed = st.apicArmed
		c.apic.deadline = st.apicDeadline
		c.apic.event = st.apicEvent
		c.perf.period = st.perfPeriod
		c.perf.running = st.perfRunning
		c.perf.event = st.perfEvent
	}
	m.ioapic.lines = s.lines
	m.ioapic.RedirWrites = s.redirWrites

	m.block.queue = append(m.block.queue[:0], s.blkQueue...)
	m.block.busy = s.blkBusy
	m.block.completed = append(m.block.completed[:0], s.blkCompleted...)
	m.block.Submitted = s.blkSubmitted
	m.block.Completed = s.blkDone

	m.nic.rxRing = append(m.nic.rxRing[:0], s.rxRing...)
	m.nic.RxCount = s.rxCount
	m.nic.RxDropped = s.rxDropped
	m.nic.TxCount = s.txCount
}
