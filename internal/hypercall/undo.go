package hypercall

// UndoRecord is one logged critical-variable write.
type UndoRecord struct {
	Desc string
	Undo func()
}

// UndoLog holds the undo records of the call currently executing on one
// CPU. The mitigation protocol (§IV) is:
//
//   - During a hypercall, each critical write is logged just before it is
//     performed.
//   - If the hypercall completes, the log is discarded — nothing to undo.
//   - If recovery interrupts the hypercall, the records are applied in
//     reverse order *before* the hypercall is retried, so the retry starts
//     from consistent state instead of re-applying non-idempotent updates.
type UndoLog struct {
	records []UndoRecord

	// Writes counts records ever logged (overhead accounting/tests).
	Writes uint64
	// Rollbacks counts recovery-time rollbacks performed.
	Rollbacks uint64
}

// NewUndoLog returns an empty log.
func NewUndoLog() *UndoLog { return &UndoLog{} }

// Record appends an undo action.
func (u *UndoLog) Record(desc string, undo func()) {
	u.records = append(u.records, UndoRecord{Desc: desc, Undo: undo})
	u.Writes++
}

// Len returns the number of pending records.
func (u *UndoLog) Len() int { return len(u.records) }

// Clear discards all records (call completed successfully).
func (u *UndoLog) Clear() { u.records = u.records[:0] }

// Rollback applies all records in reverse order and clears the log.
// Returns the number of records applied.
func (u *UndoLog) Rollback() int {
	n := len(u.records)
	for i := n - 1; i >= 0; i-- {
		u.records[i].Undo()
	}
	u.records = u.records[:0]
	if n > 0 {
		u.Rollbacks++
	}
	return n
}
