package guest

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestFileStoreCleanRunMatchesGolden(t *testing.T) {
	fs := NewFileStore(42)
	for i := 0; i < 50; i++ {
		fs.WriteNext()
	}
	if bad := fs.CompareGolden(); bad != nil {
		t.Fatalf("clean store differs from golden: %v", bad)
	}
	if fs.Len() != 50 {
		t.Fatalf("Len = %d", fs.Len())
	}
	fs.Remove(10)
	if fs.Len() != 49 {
		t.Fatalf("Len after remove = %d", fs.Len())
	}
	if !strings.Contains(fs.Describe(), "49 files") {
		t.Fatalf("Describe = %q", fs.Describe())
	}
}

func TestFileStoreCorruptionDetected(t *testing.T) {
	fs := NewFileStore(42)
	for i := 0; i < 10; i++ {
		fs.WriteNext()
	}
	if !fs.Corrupt(7) {
		t.Fatal("Corrupt failed with files present")
	}
	bad := fs.CompareGolden()
	if len(bad) != 1 {
		t.Fatalf("golden mismatches = %v, want exactly 1", bad)
	}
}

func TestFileStoreCorruptEmpty(t *testing.T) {
	fs := NewFileStore(1)
	if fs.Corrupt(3) {
		t.Fatal("Corrupt succeeded on empty store")
	}
}

func TestFileStoreSeedsDiffer(t *testing.T) {
	a, b := NewFileStore(1), NewFileStore(2)
	if a.contentDigest(0) == b.contentDigest(0) {
		t.Fatal("different seeds produced identical content")
	}
}

// TestPropertyFileStoreDetectsAnyCorruption: whatever the pick value and
// store population, a corruption is always caught by the golden check and
// never more than one file is affected.
func TestPropertyFileStoreDetectsAnyCorruption(t *testing.T) {
	f := func(seed uint64, writes uint8, removes uint8, pick uint64) bool {
		fs := NewFileStore(seed)
		n := int(writes%40) + 1
		for i := 0; i < n; i++ {
			fs.WriteNext()
		}
		for i := 0; i < int(removes%10) && fs.Len() > 1; i++ {
			fs.Remove(i)
		}
		if len(fs.CompareGolden()) != 0 {
			return false
		}
		if !fs.Corrupt(pick) {
			return false
		}
		return len(fs.CompareGolden()) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBlkBenchSDCCaughtByGoldenComparison(t *testing.T) {
	// End to end: corruption injected into a running BlkBench guest's
	// files fails the verdict via the mechanical golden comparison.
	w, _, clk := newWorld(t)
	vm, _ := w.AddAppVM(Config{Kind: BlkBench, Dom: 1, CPU: 1, Duration: 300 * time.Millisecond})
	vm.Start()
	clk.RunUntil(150 * time.Millisecond)
	w.CorruptGuestData(1)
	if vm.OutputCorrupted {
		t.Fatal("BlkBench SDC used the flag instead of the file store")
	}
	clk.RunUntil(time.Second)
	ok, reason := vm.Verdict()
	if ok || !strings.Contains(reason, "golden") {
		t.Fatalf("verdict = %v %q", ok, reason)
	}
}
