package mm

import (
	"fmt"

	"nilihype/internal/locking"
)

// Object is one allocation from the hypervisor heap. Objects may embed
// spinlocks (registered with the lock registry as heap locks), mirroring
// Xen structures such as struct domain.
type Object struct {
	ID    uint64
	Tag   string
	Pages []int // frame indices backing the object

	locks []*locking.Lock
	freed bool
}

// Locks returns the spinlocks embedded in the object.
func (o *Object) Locks() []*locking.Lock { return o.locks }

// Heap is the hypervisor heap allocator over the frame table. Its free
// list is the "linked list or the heap" data structure whose corruption is
// the paper's third leading cause of recovery failure (§VII-A); the
// Corrupted flag models that state, and Check surfaces it.
type Heap struct {
	ft    *FrameTable
	locks *locking.Registry

	free    []int // free frame indices (LIFO free list)
	objects map[uint64]*Object
	nextID  uint64

	// Corrupted marks the free list as damaged by error propagation.
	// Allocations from a corrupted heap fail (panic signal to the
	// caller); a reboot rebuilds the free list and clears it, which is
	// precisely the microreboot advantage over microreset.
	Corrupted bool
}

// NewHeap builds a heap owning the frames [start, start+count) of ft.
func NewHeap(ft *FrameTable, locks *locking.Registry, start, count int) *Heap {
	h := &Heap{
		ft:      ft,
		locks:   locks,
		objects: make(map[uint64]*Object),
	}
	// LIFO order: push high frames first so low frames allocate first.
	for i := start + count - 1; i >= start; i-- {
		h.free = append(h.free, i)
	}
	return h
}

// FreePages returns the number of frames on the free list.
func (h *Heap) FreePages() int { return len(h.free) }

// AllocatedObjects returns the live object count.
func (h *Heap) AllocatedObjects() int { return len(h.objects) }

// Alloc allocates an object of the given page count. It returns nil if the
// heap is exhausted or its free list is corrupted (the caller treats that
// as a fatal hypervisor error).
func (h *Heap) Alloc(pages int, tag string) *Object {
	if h.Corrupted || pages > len(h.free) {
		return nil
	}
	o := &Object{ID: h.nextID, Tag: tag}
	h.nextID++
	for i := 0; i < pages; i++ {
		fi := h.free[len(h.free)-1]
		h.free = h.free[:len(h.free)-1]
		h.ft.Frame(fi).Type = FrameHeap
		o.Pages = append(o.Pages, fi)
	}
	h.objects[o.ID] = o
	return o
}

// AddLock embeds a new heap spinlock in the object.
func (h *Heap) AddLock(o *Object, name string) *locking.Lock {
	l := h.locks.NewHeap(fmt.Sprintf("%s.%s", o.Tag, name))
	o.locks = append(o.locks, l)
	return l
}

// Free releases the object's pages back to the free list and drops its
// locks from the registry. Double-free panics (hypervisor bug).
func (h *Heap) Free(o *Object) {
	if o.freed {
		panic(fmt.Sprintf("mm: double free of object %d (%s)", o.ID, o.Tag))
	}
	o.freed = true
	delete(h.objects, o.ID)
	for _, fi := range o.Pages {
		h.ft.Frame(fi).Type = FrameFree
		h.free = append(h.free, fi)
	}
	for _, l := range o.locks {
		h.locks.DropHeap(l)
	}
}

// AllocatedPages returns the frame indices of every live object, in object
// ID order. ReHype's "record allocated pages of old heap" step walks this
// set so the reboot can preserve their contents (Table II).
func (h *Heap) AllocatedPages() []int {
	var out []int
	// Deterministic order: iterate IDs from 0 to nextID.
	for id := uint64(0); id < h.nextID; id++ {
		if o, ok := h.objects[id]; ok {
			out = append(out, o.Pages...)
		}
	}
	return out
}

// Rebuild reconstructs the free list from the frame table, preserving live
// objects. This is ReHype's "recreate the new heap" step (Table II, 211 ms
// at 8 GB); it also clears free-list corruption — the reason microreboot
// survives some heap-corrupting faults that microreset does not.
func (h *Heap) Rebuild() {
	h.free = h.free[:0]
	allocated := make(map[int]bool)
	for _, o := range h.objects {
		for _, fi := range o.Pages {
			allocated[fi] = true
		}
	}
	for i := h.ft.Len() - 1; i >= 0; i-- {
		f := h.ft.Frame(i)
		if f.Type == FrameHeap && !allocated[i] {
			f.Type = FrameFree
		}
		if f.Type == FrameFree {
			h.free = append(h.free, i)
		}
	}
	h.Corrupted = false
}

// Check reports an error if the heap's free list is corrupted. Hypervisor
// code paths that touch the allocator call this; the error becomes a panic
// (detected failure) in the hypervisor model.
func (h *Heap) Check() error {
	if h.Corrupted {
		return fmt.Errorf("mm: heap free list corrupted")
	}
	return nil
}
