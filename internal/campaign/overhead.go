package campaign

import (
	"fmt"
	"strings"
	"time"

	"nilihype/internal/guest"
)

// OverheadConfig names one target-system configuration of the Figure 3
// experiment (§VII-C): the three 1AppVM benchmarks plus the synchronized
// 3AppVM configuration (all three AppVMs created at the same time and
// running throughout — recovery is not exercised).
type OverheadConfig int

// Overhead configurations.
const (
	OverheadBlk OverheadConfig = iota + 1
	OverheadUnix
	OverheadNet
	Overhead3AppVM
)

// String returns the configuration name.
func (o OverheadConfig) String() string {
	switch o {
	case OverheadBlk:
		return "BlkBench"
	case OverheadUnix:
		return "UnixBench"
	case OverheadNet:
		return "NetBench"
	case Overhead3AppVM:
		return "3AppVM"
	default:
		return fmt.Sprintf("overhead(%d)", int(o))
	}
}

// AllOverheadConfigs lists the Figure 3 configurations in paper order.
func AllOverheadConfigs() []OverheadConfig {
	return []OverheadConfig{OverheadBlk, OverheadUnix, OverheadNet, Overhead3AppVM}
}

// OverheadPoint is one bar pair of Figure 3.
type OverheadPoint struct {
	Config OverheadConfig
	// CyclesStock/CyclesNiLiHype/CyclesNoLogging are the summed
	// unhalted-in-hypervisor cycle counts over all CPUs for the
	// synchronized benchmark window.
	CyclesStock     uint64
	CyclesNiLiHype  uint64
	CyclesNoLogging uint64
}

// WithLogging returns the NiLiHype hypervisor processing overhead: the
// percent increase in hypervisor cycles relative to stock Xen.
func (p OverheadPoint) WithLogging() float64 {
	return pctIncrease(p.CyclesNiLiHype, p.CyclesStock)
}

// WithoutLogging returns the NiLiHype* overhead (logging disabled).
func (p OverheadPoint) WithoutLogging() float64 {
	return pctIncrease(p.CyclesNoLogging, p.CyclesStock)
}

func pctIncrease(with, base uint64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (float64(with) - float64(base)) / float64(base)
}

// MeasureOverhead runs one Figure 3 configuration in its three variants —
// NiLiHype (logging on), NiLiHype* (logging off), and stock Xen (no
// recovery machinery at all) — with identical seeds and workloads, and
// reports the hypervisor cycle counts. The measurement window is the
// synchronized benchmark execution (§VII-C: counters reset when all
// benchmarks are ready, read when all complete).
func MeasureOverhead(cfg OverheadConfig, duration time.Duration, seed uint64) OverheadPoint {
	p := OverheadPoint{Config: cfg}
	p.CyclesNiLiHype = overheadRun(cfg, duration, seed, true, true)
	p.CyclesNoLogging = overheadRun(cfg, duration, seed, false, true)
	p.CyclesStock = overheadRun(cfg, duration, seed, false, false)
	return p
}

// overheadRun executes one variant and returns hypervisor cycles summed
// over all CPUs for the benchmark window.
func overheadRun(cfg OverheadConfig, duration time.Duration, seed uint64, logging, prep bool) uint64 {
	clk, h, err := bootHypervisor(hvConfig(seed, defaultMemoryMB, logging, prep, 0))
	if err != nil {
		panic("campaign: overhead " + err.Error())
	}
	world := guest.NewWorld(h, seed^0x5eed)
	world.StartPrivVM()

	addVM := func(k guest.Kind, dom, cpu int) {
		if _, err := world.AddAppVM(guest.Config{Kind: k, Dom: dom, CPU: cpu, Duration: duration}); err != nil {
			panic("campaign: overhead vm: " + err.Error())
		}
	}
	netFlow := -1
	switch cfg {
	case OverheadBlk:
		addVM(guest.BlkBench, unixDom, unixCPU)
	case OverheadUnix:
		addVM(guest.UnixBench, unixDom, unixCPU)
	case OverheadNet:
		addVM(guest.NetBench, unixDom, unixCPU)
		netFlow = unixDom
	default: // 3AppVM: all three created at the same time (§VII-C)
		addVM(guest.UnixBench, unixDom, unixCPU)
		addVM(guest.NetBench, netDom, netCPU)
		addVM(guest.BlkBench, blkDom, blkCPU)
		netFlow = netDom
	}

	// Synchronized measurement start: reset the counters as the
	// benchmarks begin.
	for _, cpu := range h.Machine.CPUs() {
		cpu.ResetCounters()
	}
	world.StartAll()
	if netFlow >= 0 {
		world.Sender.Start(netFlow, duration)
	}
	clk.RunUntil(duration + 200*time.Millisecond)

	var total uint64
	for _, cpu := range h.Machine.CPUs() {
		total += cpu.Cycles.Hypervisor
	}
	return total
}

// FormatOverhead renders Figure 3 as a text table.
func FormatOverhead(points []OverheadPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hypervisor processing overhead in normal operation (Figure 3):\n")
	fmt.Fprintf(&b, "  %-12s %12s %12s\n", "config", "NiLiHype", "NiLiHype*")
	for _, p := range points {
		fmt.Fprintf(&b, "  %-12s %11.1f%% %11.1f%%\n", p.Config, p.WithLogging(), p.WithoutLogging())
	}
	return b.String()
}
