// Command hyperrecover-overhead reproduces Figure 3: the hypervisor
// processing overhead during normal operation, for NiLiHype and for
// NiLiHype* (retry-mitigation logging disabled), across the four target
// system configurations.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nilihype/internal/campaign"
	"nilihype/internal/report"
)

func main() {
	var (
		duration  = flag.Duration("duration", 2*time.Second, "synchronized benchmark window (virtual time)")
		paper     = flag.Bool("paper", false, "paper-scale window (21s)")
		seed      = flag.Uint64("seed", 1, "run seed")
		hypShare  = flag.Float64("hyp-share", 0.05, "assumed hypervisor share of total CPU cycles (§VII-C: <5%)")
		formatStr = flag.String("format", "text", "output format: text | md | csv")
	)
	flag.Parse()
	format, err := report.ParseFormat(*formatStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyperrecover-overhead:", err)
		os.Exit(1)
	}
	dur := *duration
	if *paper {
		dur = 21 * time.Second
	}

	var pts []campaign.OverheadPoint
	for _, cfg := range campaign.AllOverheadConfigs() {
		pts = append(pts, campaign.MeasureOverhead(cfg, dur, *seed))
	}
	tbl := report.NewTable("Hypervisor processing overhead in normal operation (Figure 3)",
		"config", "NiLiHype", "NiLiHype*")
	for _, p := range pts {
		tbl.AddRow(p.Config.String(),
			fmt.Sprintf("%.1f%%", p.WithLogging()),
			fmt.Sprintf("%.1f%%", p.WithoutLogging()))
	}
	fmt.Print(tbl.Render(format))

	worst := 0.0
	for _, p := range pts {
		if o := p.WithLogging(); o > worst {
			worst = o
		}
	}
	fmt.Printf("\nWorst-case total-CPU impact at %.0f%% hypervisor share: %.2f%% (paper: <1%%)\n",
		100**hypShare, worst**hypShare)
	_ = os.Stdout
}
