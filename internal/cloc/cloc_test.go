package cloc

import (
	"strings"
	"testing"
	"testing/fstest"
)

func TestCountSource(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want Counts
	}{
		{"empty", "", Counts{Blank: 1}},
		{"code only", "package x\nfunc f() {}\n", Counts{Code: 2}},
		{"line comments", "// a\n// b\ncode()\n", Counts{Comment: 2, Code: 1}},
		{"blank lines", "a()\n\n\nb()\n", Counts{Code: 2, Blank: 2}},
		{"block comment", "/*\nhello\n*/\ncode()\n", Counts{Comment: 3, Code: 1}},
		{"one-line block", "/* x */\ncode()\n", Counts{Comment: 1, Code: 1}},
		{"trailing comment is code", "x := 1 // note\n", Counts{Code: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := CountSource(tt.src)
			if got != tt.want {
				t.Fatalf("CountSource = %+v, want %+v", got, tt.want)
			}
		})
	}
}

func TestCountsTotalAndAdd(t *testing.T) {
	a := Counts{Code: 1, Comment: 2, Blank: 3}
	b := Counts{Code: 10, Comment: 20, Blank: 30}
	a.Add(b)
	if a.Total() != 66 {
		t.Fatalf("Total = %d", a.Total())
	}
}

func TestCategorize(t *testing.T) {
	tests := []struct {
		path string
		want Category
	}{
		{"internal/core/recover.go", RecoveryOnly},
		{"internal/core/latency.go", RecoveryOnly},
		{"internal/hv/recovery.go", RecoveryOnly},
		{"internal/hypercall/undo.go", NormalOperation},
		{"internal/hv/exec.go", Substrate},
		{"internal/guest/appvm.go", Substrate},
	}
	for _, tt := range tests {
		if got := Categorize(tt.path); got != tt.want {
			t.Errorf("Categorize(%q) = %v, want %v", tt.path, got, tt.want)
		}
	}
}

func TestScanTree(t *testing.T) {
	fsys := fstest.MapFS{
		"internal/core/a.go":      {Data: []byte("package core\nvar x = 1\n")},
		"internal/hv/exec.go":     {Data: []byte("package hv\n// c\nvar y = 1\n")},
		"internal/hv/a_test.go":   {Data: []byte("package hv\nfunc TestX() {}\n")},
		"internal/other/notes.md": {Data: []byte("# not go\n")},
	}
	rep, err := ScanTree(fsys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Files != 2 {
		t.Fatalf("Files = %d, want 2 (tests and non-Go skipped)", rep.Files)
	}
	if got := rep.PerCategory[RecoveryOnly].Code; got != 2 {
		t.Fatalf("recovery code = %d, want 2", got)
	}
	if got := rep.PerCategory[Substrate].Comment; got != 1 {
		t.Fatalf("substrate comments = %d, want 1", got)
	}
	out := rep.Format()
	if !strings.Contains(out, "recovery only") || !strings.Contains(out, "substrate") {
		t.Fatalf("Format() = %q", out)
	}
}

func TestCategoryString(t *testing.T) {
	if NormalOperation.String() != "normal operation" || RecoveryOnly.String() != "recovery only" ||
		Substrate.String() != "substrate" || Category(9).String() != "category(9)" {
		t.Fatal("category names wrong")
	}
}
