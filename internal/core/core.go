// Package core implements the paper's primary contribution: component-
// level recovery of the hypervisor by microreset (NiLiHype) and, as the
// baseline, by microreboot (ReHype).
//
// Both engines drive the same mechanism surface exposed by internal/hv:
// discard execution threads, release locks, retry interrupted hypercalls,
// repair scheduling metadata, scan page-frame descriptors, reprogram the
// hardware timers, and reactivate recurring timer events. The difference
// is which operations each mechanism needs (microreboot gets several "for
// free" from booting a fresh image — at the cost of a >30x longer recovery
// latency, Tables II/III) and which corruptions each survives (the reboot
// re-initializes state microreset reuses — ReHype's small recovery-rate
// edge on non-failstop faults, §VII-A).
package core

import (
	"fmt"
	"time"

	"nilihype/internal/detect"
	"nilihype/internal/hv"
)

// Mechanism selects the recovery mechanism.
type Mechanism int

// Mechanisms.
const (
	// Microreset is NiLiHype: reset the hypervisor to a quiescent state
	// in place, without reboot (§III-C).
	Microreset Mechanism = iota + 1
	// Microreboot is ReHype: boot a new hypervisor instance and
	// re-integrate preserved state (§III-B).
	Microreboot
	// CheckpointRestore is the §II-B alternative the paper discusses:
	// "replacing the reboot with a rollback to a checkpoint saved right
	// after a previous reboot". The hardware re-initialization largely
	// disappears, but — as the paper argues — "even in this case, there
	// would be significant latency for reintegrating state from the
	// previous instance ... multiple hundreds of milliseconds": the
	// memory re-integration steps (Table II's 266 ms at 8 GB) remain.
	// State effects match microreboot (fresh static image, rebuilt
	// heap/free list) since the checkpoint is a pristine post-boot image.
	CheckpointRestore
)

// String returns the mechanism's system name.
func (m Mechanism) String() string {
	switch m {
	case Microreset:
		return "NiLiHype"
	case Microreboot:
		return "ReHype"
	case CheckpointRestore:
		return "ReHype-CP"
	default:
		return fmt.Sprintf("mechanism(%d)", int(m))
	}
}

// Reboots reports whether the mechanism installs a fresh hypervisor image
// (boot or checkpoint restore) rather than reusing the failed instance's
// state in place.
func (m Mechanism) Reboots() bool {
	return m == Microreboot || m == CheckpointRestore
}

// Enhancements is the recovery-enhancement bitmask — the rungs of the
// Table I ladder.
type Enhancements uint32

// Enhancement bits.
const (
	// EnhClearIRQCount zeroes every CPU's local_irq_count (§V-A).
	EnhClearIRQCount Enhancements = 1 << iota
	// EnhReHypeMechanisms is the bundle of mechanisms inherited from
	// ReHype (§III-B, §IV): heap-lock release, hypercall/syscall retry
	// with undo-log rollback, batched-retry completion logging,
	// acknowledging pending and in-service interrupts, and saving FS/GS
	// at detection.
	EnhReHypeMechanisms
	// EnhSchedConsistency rewrites the per-vCPU scheduling metadata from
	// the per-CPU structures (§V-A).
	EnhSchedConsistency
	// EnhReprogramTimer re-arms every CPU's APIC one-shot (§V-A).
	EnhReprogramTimer
	// EnhUnlockStaticLocks iterates the static-lock segment (§V-A).
	EnhUnlockStaticLocks
	// EnhReactivateTimers re-arms popped recurring timer events (§V-A).
	EnhReactivateTimers
	// EnhPFScan runs the page-frame-descriptor consistency scan — the
	// dominant latency component (Table III) whose removal costs ~4% of
	// recovery rate (§VII-B).
	EnhPFScan
)

// AllEnhancements is the full production configuration.
const AllEnhancements = EnhClearIRQCount | EnhReHypeMechanisms | EnhSchedConsistency |
	EnhReprogramTimer | EnhUnlockStaticLocks | EnhReactivateTimers | EnhPFScan

// Has reports whether e includes bit b.
func (e Enhancements) Has(b Enhancements) bool { return e&b != 0 }

// Ladder returns the cumulative enhancement configurations of Table I, in
// paper order, with display labels.
func Ladder() []struct {
	Label string
	Enh   Enhancements
} {
	return []struct {
		Label string
		Enh   Enhancements
	}{
		{"Basic", 0},
		{"+ Clear IRQ count", EnhClearIRQCount},
		{"+ Enhanced with ReHype mechanisms", EnhClearIRQCount | EnhReHypeMechanisms | EnhPFScan},
		{"+ Ensure consistency within scheduling metadata", EnhClearIRQCount | EnhReHypeMechanisms | EnhPFScan | EnhSchedConsistency},
		{"+ Reprogram hardware timer", EnhClearIRQCount | EnhReHypeMechanisms | EnhPFScan | EnhSchedConsistency | EnhReprogramTimer},
		{"+ Unlock static locks", EnhClearIRQCount | EnhReHypeMechanisms | EnhPFScan | EnhSchedConsistency | EnhReprogramTimer | EnhUnlockStaticLocks},
		{"+ Reactivate recurring timer events", AllEnhancements},
	}
}

// DiscardScope selects which execution threads microreset discards — the
// design-choice ablation of §III-C.
type DiscardScope int

// Scopes.
const (
	// AllThreads discards every CPU's hypervisor execution thread (the
	// NiLiHype design choice).
	AllThreads DiscardScope = iota + 1
	// DetectingOnly discards only the detecting CPU's thread — the
	// rejected alternative: cross-CPU IPI waits and global-state changes
	// doom non-discarded threads (§III-C).
	DetectingOnly
)

// Config parameterizes a recovery engine.
type Config struct {
	Mechanism    Mechanism
	Enhancements Enhancements
	Scope        DiscardScope

	// ScanCPUs parallelizes the page-frame consistency scan across that
	// many cores (0/1 = sequential). This is the mitigation §VII-B
	// suggests for large-memory hosts, where the scan — proportional to
	// memory size — dominates NiLiHype's recovery latency: "The problem
	// could be mitigated by exploiting parallelism. For example, use
	// multiple cores to perform the operation."
	ScanCPUs int
}

// DefaultConfig returns the full NiLiHype configuration.
func DefaultConfig() Config {
	return Config{Mechanism: Microreset, Enhancements: AllEnhancements, Scope: AllThreads}
}

// Status describes the engine's terminal state for one run.
type Status int

// Statuses.
const (
	// StatusIdle: no error was ever detected.
	StatusIdle Status = iota + 1
	// StatusRecovered: one recovery completed and the system kept
	// running to the end of the run.
	StatusRecovered
	// StatusFailed: recovery was attempted but the system failed
	// (either during recovery or afterwards).
	StatusFailed
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusIdle:
		return "idle"
	case StatusRecovered:
		return "recovered"
	case StatusFailed:
		return "failed"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Engine is one run's recovery engine.
type Engine struct {
	H   *hv.Hypervisor
	Det *detect.Detector
	Cfg Config

	// FirstDetection is the event that triggered recovery (nil if none).
	FirstDetection *detect.Event
	// Latency is the modeled recovery latency of the performed steps.
	Latency time.Duration
	// Breakdown itemizes the latency (Tables II/III).
	Breakdown []LatencyStep
	// FailReason is set when recovery or the post-recovery system fails.
	FailReason string
	// PFRepaired counts descriptors fixed by the consistency scan.
	PFRepaired int

	// OnRecovered, if set, is invoked once when a recovery completes and
	// the system resumes (the campaign layer uses it to start the
	// post-recovery VM-creation check and to annotate the NetBench
	// sender's exclusion window).
	OnRecovered func()

	recovering bool
	completing bool
	recovered  bool
	used       bool
}

// NewEngine builds an engine over a booted hypervisor. Wire it to a
// detector with:
//
//	en := core.NewEngine(h, cfg)
//	det := detect.New(h, en.OnDetection)
//	en.Det = det
//	det.Start()
func NewEngine(h *hv.Hypervisor, cfg Config) *Engine {
	if cfg.Scope == 0 {
		cfg.Scope = AllThreads
	}
	return &Engine{H: h, Cfg: cfg}
}

// Status reports the engine's terminal state.
func (en *Engine) Status() Status {
	switch {
	case en.FailReason != "":
		return StatusFailed
	case en.recovered:
		return StatusRecovered
	case en.used:
		return StatusFailed
	default:
		return StatusIdle
	}
}

// Recovered reports whether one recovery completed successfully (system
// still running).
func (en *Engine) Recovered() bool { return en.recovered && en.FailReason == "" }

// OnDetection is the detector hook: the first detection triggers recovery;
// any detection after (or during completion of) a recovery is a recovery
// failure — the paper's model allows one microreset/microreboot per fault.
func (en *Engine) OnDetection(e detect.Event) {
	if en.recovering {
		// Watchdog noise while VMs are paused for recovery: the soft
		// tick counters are legitimately frozen.
		return
	}
	if en.used {
		en.fail("post-recovery failure: " + e.Reason)
		return
	}
	en.used = true
	ev := e
	en.FirstDetection = &ev
	en.recover(e)
}

// fail records terminal failure.
func (en *Engine) fail(reason string) {
	if en.FailReason == "" {
		en.FailReason = reason
	}
	en.H.MarkFailed(reason)
}
