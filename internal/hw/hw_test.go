package hw

import (
	"testing"
	"time"

	"nilihype/internal/simclock"
)

// recordingSink records delivered interrupts and can refuse delivery to a
// set of CPUs (simulating interrupts-disabled).
type recordingSink struct {
	delivered []struct {
		cpu int
		vec Vector
	}
	refuse map[int]bool
}

func (s *recordingSink) DeliverInterrupt(cpu int, vec Vector) bool {
	if s.refuse[cpu] {
		return false
	}
	s.delivered = append(s.delivered, struct {
		cpu int
		vec Vector
	}{cpu, vec})
	return true
}

func newTestMachine(t *testing.T) (*Machine, *simclock.Clock, *recordingSink) {
	t.Helper()
	clk := simclock.New()
	m, err := NewMachine(clk, Config{CPUs: 4, MemoryMB: 1024, BlockSvc: 100 * time.Microsecond, NICLat: 10 * time.Microsecond})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	sink := &recordingSink{refuse: make(map[int]bool)}
	m.SetSink(sink)
	return m, clk, sink
}

func TestNewMachineValidation(t *testing.T) {
	clk := simclock.New()
	tests := []struct {
		name string
		cfg  Config
	}{
		{"zero cpus", Config{CPUs: 0, MemoryMB: 1024}},
		{"negative cpus", Config{CPUs: -1, MemoryMB: 1024}},
		{"zero memory", Config{CPUs: 2, MemoryMB: 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewMachine(clk, tt.cfg); err == nil {
				t.Fatal("want error, got nil")
			}
		})
	}
}

func TestDefaultConfigMatchesPaperTestbed(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.CPUs != 8 {
		t.Errorf("CPUs = %d, want 8 (Nehalem 8-core, §VI-A)", cfg.CPUs)
	}
	if cfg.MemoryMB != 8192 {
		t.Errorf("MemoryMB = %d, want 8192 (8GB, §VII-B)", cfg.MemoryMB)
	}
}

func TestPageFrameCount(t *testing.T) {
	m, _, _ := newTestMachine(t)
	want := 1024 * 1024 * 1024 / PageSize
	if m.PageFrames() != want {
		t.Fatalf("PageFrames() = %d, want %d", m.PageFrames(), want)
	}
	if m.MemoryBytes() != int64(want)*PageSize {
		t.Fatalf("MemoryBytes() = %d, want %d", m.MemoryBytes(), int64(want)*PageSize)
	}
}

func TestAPICTimerFiresAtDeadline(t *testing.T) {
	m, clk, sink := newTestMachine(t)
	cpu := m.CPU(1)
	cpu.ArmTimer(3 * time.Millisecond)
	if !cpu.TimerArmed() {
		t.Fatal("TimerArmed() = false after ArmTimer")
	}
	clk.Run()
	if len(sink.delivered) != 1 || sink.delivered[0].cpu != 1 || sink.delivered[0].vec != VecTimer {
		t.Fatalf("delivered = %v, want one VecTimer on cpu1", sink.delivered)
	}
	if cpu.TimerArmed() {
		t.Fatal("TimerArmed() = true after the one-shot fired (the §V-A hazard window)")
	}
}

func TestAPICTimerRearmReplacesDeadline(t *testing.T) {
	m, clk, sink := newTestMachine(t)
	cpu := m.CPU(0)
	cpu.ArmTimer(5 * time.Millisecond)
	cpu.ArmTimer(2 * time.Millisecond)
	clk.Run()
	if len(sink.delivered) != 1 {
		t.Fatalf("delivered %d interrupts, want 1 (re-arm replaces)", len(sink.delivered))
	}
	if clk.Now() != 2*time.Millisecond {
		t.Fatalf("fired at %v, want 2ms", clk.Now())
	}
}

func TestAPICTimerDisarm(t *testing.T) {
	m, clk, sink := newTestMachine(t)
	cpu := m.CPU(0)
	cpu.ArmTimer(time.Millisecond)
	cpu.DisarmTimer()
	clk.Run()
	if len(sink.delivered) != 0 {
		t.Fatalf("delivered = %v, want none after disarm", sink.delivered)
	}
}

func TestAPICTimerPastDeadlineClamped(t *testing.T) {
	m, clk, sink := newTestMachine(t)
	clk.After(10*time.Millisecond, "advance", func() {
		m.CPU(0).ArmTimer(time.Millisecond) // already past
	})
	clk.Run()
	if len(sink.delivered) != 1 {
		t.Fatalf("delivered %d, want 1 (past deadline fires immediately)", len(sink.delivered))
	}
}

func TestPerfNMIRecursEveryPeriod(t *testing.T) {
	m, clk, sink := newTestMachine(t)
	cpu := m.CPU(2)
	cpu.StartPerfNMI(100 * time.Millisecond)
	clk.RunUntil(350 * time.Millisecond)
	if len(sink.delivered) != 3 {
		t.Fatalf("delivered %d NMIs in 350ms, want 3", len(sink.delivered))
	}
	for _, d := range sink.delivered {
		if d.vec != VecNMI || d.cpu != 2 {
			t.Fatalf("unexpected delivery %v", d)
		}
	}
	cpu.StopPerfNMI()
	sink.delivered = nil
	clk.RunUntil(time.Second)
	if len(sink.delivered) != 0 {
		t.Fatalf("NMIs after stop: %d", len(sink.delivered))
	}
}

func TestPerfNMIDeliveredEvenWhenRefused(t *testing.T) {
	// The sink refusing delivery models interrupts-disabled; NMIs do not
	// queue at the CPU pending list via StartPerfNMI (they go straight to
	// the sink, which in the real hypervisor handles NMIs regardless).
	// Here we verify the NMI source keeps ticking even if refused.
	m, clk, sink := newTestMachine(t)
	sink.refuse[0] = true
	m.CPU(0).StartPerfNMI(100 * time.Millisecond)
	clk.RunUntil(250 * time.Millisecond)
	if !m.CPU(0).PerfNMIRunning() {
		t.Fatal("perf NMI source stopped after refused delivery")
	}
}

func TestPendingInterruptQueuedWhenRefused(t *testing.T) {
	m, clk, sink := newTestMachine(t)
	sink.refuse[1] = true
	m.CPU(1).ArmTimer(time.Millisecond)
	clk.Run()
	if len(sink.delivered) != 0 {
		t.Fatal("interrupt delivered despite refusal")
	}
	pend := m.CPU(1).PendingVectors()
	if len(pend) != 1 || pend[0] != VecTimer {
		t.Fatalf("pending = %v, want [timer]", pend)
	}
	sink.refuse[1] = false
	m.CPU(1).DrainPending()
	if len(sink.delivered) != 1 {
		t.Fatalf("delivered %d after drain, want 1", len(sink.delivered))
	}
	if len(m.CPU(1).PendingVectors()) != 0 {
		t.Fatal("pending not cleared after drain")
	}
}

func TestPendingDuplicateVectorsCollapse(t *testing.T) {
	m, clk, sink := newTestMachine(t)
	sink.refuse[0] = true
	m.CPU(0).ArmTimer(time.Millisecond)
	clk.Run()
	m.CPU(0).ArmTimer(2 * time.Millisecond)
	clk.Run()
	if n := len(m.CPU(0).PendingVectors()); n != 1 {
		t.Fatalf("pending count = %d, want 1 (duplicates collapse)", n)
	}
}

func TestClearPending(t *testing.T) {
	m, clk, sink := newTestMachine(t)
	sink.refuse[0] = true
	m.CPU(0).ArmTimer(time.Millisecond)
	clk.Run()
	m.CPU(0).ClearPending()
	if len(m.CPU(0).PendingVectors()) != 0 {
		t.Fatal("ClearPending left pending vectors")
	}
}

func TestSendIPI(t *testing.T) {
	m, _, sink := newTestMachine(t)
	m.CPU(0).SendIPI(3)
	if len(sink.delivered) != 1 || sink.delivered[0].cpu != 3 || sink.delivered[0].vec != VecIPI {
		t.Fatalf("delivered = %v, want VecIPI on cpu3", sink.delivered)
	}
}

func TestCycleAccounting(t *testing.T) {
	m, _, _ := newTestMachine(t)
	cpu := m.CPU(0)
	cpu.ChargeGuest(1000)
	cpu.ChargeHypervisor(200, 50)
	if cpu.Cycles.Guest != 1000 || cpu.Cycles.Hypervisor != 200 {
		t.Fatalf("cycles = %+v", cpu.Cycles)
	}
	if cpu.Cycles.Total() != 1200 {
		t.Fatalf("Total() = %d, want 1200", cpu.Cycles.Total())
	}
	if cpu.HypInstrs != 50 {
		t.Fatalf("HypInstrs = %d, want 50", cpu.HypInstrs)
	}
	cpu.ResetCounters()
	if cpu.Cycles.Total() != 0 || cpu.HypInstrs != 0 {
		t.Fatal("ResetCounters did not zero counters")
	}
}

func TestRegisterNames(t *testing.T) {
	tests := []struct {
		reg  Reg
		want string
	}{
		{RAX, "rax"},
		{RSP, "rsp"},
		{RFLAGS, "rflags"},
		{RIP, "rip"},
		{FSBase, "fsbase"},
		{GSBase, "gsbase"},
	}
	for _, tt := range tests {
		if got := tt.reg.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.reg, got, tt.want)
		}
	}
	if NumInjectableRegs != 19 {
		t.Errorf("NumInjectableRegs = %d, want 19 (16 GPRs + SP + FLAGS + PC, §VI-C)", NumInjectableRegs)
	}
}

func TestVectorAndIRQStrings(t *testing.T) {
	if VecTimer.String() != "timer" || VecNMI.String() != "nmi" {
		t.Error("vector names wrong")
	}
	if Vector(99).String() != "vec(99)" {
		t.Error("unknown vector formatting wrong")
	}
	if IRQBlock.String() != "irq-block" || IRQLine(77).String() != "irq(77)" {
		t.Error("irq line names wrong")
	}
}

func TestMachineAccessors(t *testing.T) {
	m, _, _ := newTestMachine(t)
	if m.NumCPUs() != 4 || len(m.CPUs()) != 4 {
		t.Fatalf("NumCPUs=%d CPUs=%d", m.NumCPUs(), len(m.CPUs()))
	}
	cpu := m.CPU(1)
	cpu.ArmTimer(7 * time.Millisecond)
	if cpu.TimerDeadline() != 7*time.Millisecond {
		t.Fatalf("TimerDeadline = %v", cpu.TimerDeadline())
	}
}
