package campaign

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"nilihype/internal/journal"
	"nilihype/internal/traffic"
)

// Root-cause classes. Each wrong run (failed, escalated, or degraded)
// gets exactly one, from a deterministic rule chain over the run's
// failure reason, journal and outcome fields — the buckets §VII-A's
// failure-cause discussion enumerates, plus the broadened fault surface's
// additions.
const (
	// RootCausePathCorrupted: the corrupted state prevented the recovery
	// routine from being invoked at all (failure cause 1 of §VII-A).
	RootCausePathCorrupted = "recovery-path-corrupted"
	// RootCauseReusedHeapObject: microreset reused a corrupted live heap
	// object (failure cause 2).
	RootCauseReusedHeapObject = "reused-heap-object"
	// RootCauseStaticStateReuse: microreset reused corrupted static
	// variables that a reboot rung would have re-initialized.
	RootCauseStaticStateReuse = "static-state-reuse"
	// RootCausePFDescriptorHang: the post-recovery mm path hit
	// inconsistent page frame descriptors and hung (§VII-B).
	RootCausePFDescriptorHang = "pf-descriptor-hang"
	// RootCausePrivVMLost: Dom0 was lost and could not be brought back
	// (the PrivVM-Restart rung failed, or the ladder never reached it).
	RootCausePrivVMLost = "privvm-lost"
	// RootCauseDeviceRouteLoss: device interrupt routes diverged or a
	// pending route was lost (the IO-APIC corruption surface).
	RootCauseDeviceRouteLoss = "device-route-loss"
	// RootCausePostRecoveryHang: the system hung after resume (watchdog
	// re-detection, stuck retried calls).
	RootCausePostRecoveryHang = "post-recovery-hang"
	// RootCausePostRecoveryAssertion: a hypervisor assertion tripped
	// after resume.
	RootCausePostRecoveryAssertion = "post-recovery-assertion"
	// RootCauseWorkloadCollateral: the hypervisor recovered but too many
	// AppVMs (or the new-VM check) failed — guest-side collateral.
	RootCauseWorkloadCollateral = "workload-collateral"
	// RootCauseDegradedService: recovery held only by sacrificing AppVMs
	// (an audit degraded-service verdict).
	RootCauseDegradedService = "degraded-service"
	// RootCauseTransientEscalation: a lower rung failed but a higher one
	// recovered cleanly — transient cost, no lasting damage.
	RootCauseTransientEscalation = "transient-escalation"
	// RootCauseOtherHypervisorFailure: a terminal hypervisor failure that
	// matches no more specific rule.
	RootCauseOtherHypervisorFailure = "other-hypervisor-failure"
)

// causeFromReason maps a terminal or attempt failure reason onto a root
// cause. Rules are ordered most-specific-first; returns "" when the
// reason matches nothing (or is empty).
func causeFromReason(reason string) string {
	switch {
	case reason == "":
		return ""
	case strings.Contains(reason, "failed to be invoked"):
		return RootCausePathCorrupted
	case strings.Contains(reason, "PrivVM restart failed"),
		strings.Contains(reason, "PrivVM state corrupted"),
		strings.Contains(reason, "management-call"):
		return RootCausePrivVMLost
	case strings.Contains(reason, "reused heap object"):
		return RootCauseReusedHeapObject
	case strings.Contains(reason, "corrupted static state reused"):
		return RootCauseStaticStateReuse
	case strings.Contains(reason, "inconsistent page frame descriptors"):
		return RootCausePFDescriptorHang
	case strings.Contains(reason, "irq-delivery"),
		strings.Contains(reason, "redirection table"),
		strings.Contains(reason, "pending route lost"):
		return RootCauseDeviceRouteLoss
	case strings.Contains(reason, "ASSERT"):
		return RootCausePostRecoveryAssertion
	case strings.Contains(reason, "hang"), strings.Contains(reason, "spinning"),
		strings.Contains(reason, "watchdog"), strings.Contains(reason, "waiting forever"),
		strings.Contains(reason, "stuck"):
		return RootCausePostRecoveryHang
	default:
		return RootCauseOtherHypervisorFailure
	}
}

// classifyRootCause assigns one root-cause class to a wrong run — a run
// that failed recovery, escalated, or accepted degraded service. The
// classification is a pure function of the Result, so it is bit-identical
// however the run was computed (forked or cold, any parallelism, any
// shard). Clean runs return "".
func classifyRootCause(r Result) string {
	wrong := r.Detected && (!r.Success || r.Escalated || len(r.SacrificedVMs) > 0)
	if !wrong {
		return ""
	}

	// Terminal failure reason first: it names the mechanism that ended
	// the run.
	if c := causeFromReason(r.FailReason); c != "" {
		return c
	}

	// No terminal reason: the run ended recovered but still wrong.
	// Hypervisor-state causes beat workload-collateral ones.
	if r.PrivVMFailed {
		return RootCausePrivVMLost
	}
	// A re-detection on the irq-delivery criterion after a resume means
	// device routes were lost across an attempt.
	seenResume := false
	for _, e := range r.Journal {
		switch e.Kind {
		case "resume":
			seenResume = true
		case "detect":
			if seenResume && strings.Contains(e.Detail, "irq-delivery") {
				return RootCauseDeviceRouteLoss
			}
		}
	}
	if !r.Success {
		// Recovered hypervisor, failed run: the workload verdicts decide.
		return RootCauseWorkloadCollateral
	}
	// Successful but escalated and/or degraded.
	if len(r.SacrificedVMs) > 0 {
		return RootCauseDegradedService
	}
	// Escalated and clean: attribute the transient to the first attempt
	// failure's own cause when it has a specific one.
	for _, e := range r.Journal {
		if e.Kind == "attempt-fail" {
			if c := causeFromReason(e.Detail); c != "" && c != RootCauseOtherHypervisorFailure {
				return c
			}
			break
		}
	}
	return RootCauseTransientEscalation
}

// Bundle is one wrong run's post-mortem record: everything the forensics
// tooling needs to reconstruct the failure, detached from the executor's
// recycled scratch.
type Bundle struct {
	Seed       uint64          `json:"seed"`
	FaultClass string          `json:"fault_class"`
	Outcome    string          `json:"outcome"`
	RootCause  string          `json:"root_cause"`
	FailReason string          `json:"fail_reason,omitempty"`
	Attempts   int             `json:"attempts"`
	Journal    []journal.Entry `json:"journal,omitempty"`
	// Corruptions are the injector's damaged structural cells; Windows
	// the user-visible outage windows; Flight the raw flight-recorder
	// tail.
	Corruptions []string      `json:"corruptions,omitempty"`
	Windows     []WindowJSON  `json:"windows,omitempty"`
	Flight      []string      `json:"flight,omitempty"`
	Sacrificed  []int         `json:"sacrificed,omitempty"`
	SLO         *traffic.SLO  `json:"slo,omitempty"`
	Latency     time.Duration `json:"latency_ns,omitempty"`
}

// WindowJSON is a core.Window in exportable form.
type WindowJSON struct {
	Mechanism string        `json:"mechanism"`
	Start     time.Duration `json:"start_ns"`
	End       time.Duration `json:"end_ns,omitempty"`
}

// AssembleBundle builds a wrong run's post-mortem bundle. The Result is
// deep-copied, so the bundle stays valid after the executor recycles the
// run's scratch. Returns ok=false for clean runs (nothing to bundle).
func AssembleBundle(r Result) (Bundle, bool) {
	if r.RootCause == "" {
		return Bundle{}, false
	}
	r = r.Clone()
	b := Bundle{
		Seed:        r.Seed,
		FaultClass:  r.FaultClass,
		Outcome:     r.Outcome.String(),
		RootCause:   r.RootCause,
		FailReason:  r.FailReason,
		Attempts:    r.Attempts,
		Journal:     r.Journal,
		Corruptions: r.Corruptions,
		Flight:      r.Flight,
		Sacrificed:  r.SacrificedVMs,
		SLO:         r.SLO,
		Latency:     r.Latency,
	}
	for _, w := range r.Windows {
		b.Windows = append(b.Windows, WindowJSON{
			Mechanism: w.Mechanism.String(), Start: w.Start, End: w.End,
		})
	}
	return b, true
}

// Format renders the bundle as a human-readable post-mortem block.
func (b Bundle) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "seed %d  class=%s  outcome=%s  attempts=%d\n",
		b.Seed, b.FaultClass, b.Outcome, b.Attempts)
	fmt.Fprintf(&sb, "root cause: %s\n", b.RootCause)
	if b.FailReason != "" {
		fmt.Fprintf(&sb, "fail reason: %s\n", b.FailReason)
	}
	if len(b.Corruptions) > 0 {
		fmt.Fprintf(&sb, "corrupted cells: %s\n", strings.Join(b.Corruptions, ", "))
	}
	if len(b.Sacrificed) > 0 {
		fmt.Fprintf(&sb, "sacrificed AppVMs: %v\n", b.Sacrificed)
	}
	for _, w := range b.Windows {
		if w.End > 0 {
			fmt.Fprintf(&sb, "outage window: %s  %.3fms → %.3fms (%.3fms)\n", w.Mechanism,
				float64(w.Start)/1e6, float64(w.End)/1e6, float64(w.End-w.Start)/1e6)
		} else {
			fmt.Fprintf(&sb, "outage window: %s  %.3fms → never resumed\n", w.Mechanism,
				float64(w.Start)/1e6)
		}
	}
	if b.SLO != nil {
		fmt.Fprintf(&sb, "SLO: offered=%d completed=%d timed-out=%d degraded-user-sec=%.1f\n",
			b.SLO.Offered, b.SLO.Completed, b.SLO.TimedOut, float64(b.SLO.DegradedUserUs)/1e6)
	}
	if len(b.Journal) > 0 {
		sb.WriteString("journal:\n")
		for _, e := range b.Journal {
			sb.WriteString("  " + e.String() + "\n")
		}
	}
	if len(b.Flight) > 0 {
		sb.WriteString("flight tail:\n")
		for _, l := range b.Flight {
			sb.WriteString("  " + l + "\n")
		}
	}
	return sb.String()
}

// FormatRootCauseMatrix renders the summary's per-fault-class root-cause
// breakdown as an aligned matrix, classes and causes sorted.
func (s *Summary) FormatRootCauseMatrix() string {
	if len(s.RootCauses) == 0 {
		return "no wrong runs: no root causes to report\n"
	}
	causes := make([]string, 0, len(s.RootCauses))
	for c := range s.RootCauses {
		causes = append(causes, c)
	}
	sort.Strings(causes)
	classes := make([]string, 0, len(s.FaultClasses))
	for name, fc := range s.FaultClasses {
		if len(fc.RootCauses) > 0 {
			classes = append(classes, name)
		}
	}
	sort.Strings(classes)

	var sb strings.Builder
	w := 0
	for _, c := range causes {
		if len(c) > w {
			w = len(c)
		}
	}
	fmt.Fprintf(&sb, "%-*s  %6s", w, "root cause", "total")
	for _, cl := range classes {
		fmt.Fprintf(&sb, "  %*s", max(len(cl), 5), cl)
	}
	sb.WriteString("\n")
	for _, c := range causes {
		fmt.Fprintf(&sb, "%-*s  %6d", w, c, s.RootCauses[c])
		for _, cl := range classes {
			fmt.Fprintf(&sb, "  %*d", max(len(cl), 5), s.FaultClasses[cl].RootCauses[c])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
