package guest

import (
	"testing"
	"time"

	"nilihype/internal/hypercall"
)

func TestNetfrontGrantRecycling(t *testing.T) {
	// Every few packets the receiver remaps an RX buffer grant; the
	// grants must be balanced (map followed by unmap).
	w, h, clk := newWorld(t)
	vm, _ := w.AddAppVM(Config{Kind: NetBench, Dom: 2, CPU: 2, Duration: 300 * time.Millisecond})
	vm.Start()
	w.Sender.Start(2, 300*time.Millisecond)
	clk.RunUntil(time.Second)
	if failed, reason := h.Failed(); failed {
		t.Fatalf("hypervisor failed: %s", reason)
	}
	d, _ := h.Domain(2)
	if n := d.Maptrack.Active(); n != 0 {
		t.Fatalf("%d grant mappings leaked by netfront recycling", n)
	}
	if n := len(d.GrantTab.ActiveGrants()); n != 0 {
		t.Fatalf("%d grant entries leaked by netfront recycling", n)
	}
	// Grant traffic actually happened (ops > 32 => at least 4 remaps).
	if vm.OpsCompleted < 200 {
		t.Fatalf("ops = %d", vm.OpsCompleted)
	}
}

func TestBlkBenchDrainsInFlightAtFinish(t *testing.T) {
	w, h, clk := newWorld(t)
	vm, _ := w.AddAppVM(Config{Kind: BlkBench, Dom: 1, CPU: 1, Duration: 100 * time.Millisecond})
	vm.Start()
	clk.RunUntil(2 * time.Second)
	if !vm.Finished {
		t.Fatal("BlkBench never finished")
	}
	if failed, _ := h.Failed(); failed {
		t.Fatal("hypervisor failed")
	}
	d, _ := h.Domain(1)
	if got := d.Maptrack.Active(); got != 0 {
		t.Fatalf("%d grants still mapped after drain", got)
	}
}

func TestIterationsDeferDuringPause(t *testing.T) {
	w, h, clk := newWorld(t)
	vm, _ := w.AddAppVM(Config{Kind: UnixBench, Dom: 1, CPU: 1, Duration: 500 * time.Millisecond})
	vm.Start()
	clk.RunUntil(100 * time.Millisecond)
	opsBefore := vm.OpsCompleted
	h.Pause()
	clk.RunUntil(200 * time.Millisecond)
	if vm.OpsCompleted != opsBefore {
		t.Fatal("iterations ran while paused")
	}
	h.ResumeRunnable()
	clk.RunUntil(time.Second)
	if vm.OpsCompleted <= opsBefore {
		t.Fatal("iterations did not resume after pause")
	}
	if ok, reason := vm.Verdict(); !ok {
		t.Fatalf("verdict: %s", reason)
	}
}

func TestUnixBenchBalancesReservations(t *testing.T) {
	w, h, clk := newWorld(t)
	vm, _ := w.AddAppVM(Config{Kind: UnixBench, Dom: 1, CPU: 1, Duration: 400 * time.Millisecond})
	vm.Start()
	clk.RunUntil(time.Second)
	d, _ := h.Domain(1)
	// TotPages drifts by at most one outstanding populate batch.
	base := d.MemCount / 2
	if d.TotPages < base || d.TotPages > base+16 {
		t.Fatalf("TotPages = %d, want near %d", d.TotPages, base)
	}
}

func TestAttachAppVMWithoutDomainFailsVerdict(t *testing.T) {
	w, _, clk := newWorld(t)
	vm := w.AttachAppVM(Config{Kind: BlkBench, Dom: 9, CPU: 3, Duration: 100 * time.Millisecond})
	clk.RunUntil(50 * time.Millisecond)
	if ok, reason := vm.Verdict(); ok || reason != "domain destroyed" {
		t.Fatalf("verdict = %v %q", ok, reason)
	}
}

func TestPinnedTrackingSurvivesRecoveryStyleRetry(t *testing.T) {
	// Pins tracked via the guest's own page tables stay balanced even
	// when a batch is interrupted and retried: no frame is ever pinned
	// twice.
	w, h, clk := newWorld(t)
	vm, _ := w.AddAppVM(Config{Kind: UnixBench, Dom: 1, CPU: 1, Duration: 500 * time.Millisecond})
	vm.Start()
	clk.RunUntil(time.Second)
	d, _ := h.Domain(1)
	for _, f := range vm.procs.livePageTables() {
		fr := h.Frames.Frame(f)
		if fr.UseCount != 1 || !fr.Validated {
			t.Fatalf("tracked pin frame %d has count=%d validated=%v", f, fr.UseCount, fr.Validated)
		}
		if f < d.MemStart || f >= d.MemStart+d.MemCount {
			t.Fatalf("pinned frame %d outside domain range", f)
		}
	}
	if vm.procs.count() < 1 || vm.procs.count() > 9 {
		t.Fatalf("process count = %d, want bounded working set", vm.procs.count())
	}
}

func TestEventRoutingIgnoresUnknownDomainsAndPorts(t *testing.T) {
	w, h, clk := newWorld(t)
	vm, _ := w.AddAppVM(Config{Kind: BlkBench, Dom: 1, CPU: 1, Duration: 100 * time.Millisecond})
	vm.Start()
	// An event for an unknown domain or a non-block port must be benign.
	w.onEvent(42, 2)
	w.onEvent(1, 99)
	h.Dispatch(1, &hypercall.Call{Op: hypercall.OpEventChannelOp, Dom: 1, Args: [4]uint64{0, 1, 7}})
	clk.RunUntil(50 * time.Millisecond)
	if failed, _ := h.Failed(); failed {
		t.Fatal("benign events failed the hypervisor")
	}
}

func TestHVMUnixBenchCleanRun(t *testing.T) {
	// The HVM variant of the UnixBench slice: memory management arrives
	// as EPT-violation exits; grants/evtchn stay PV (PVHVM).
	w, h, clk := newWorld(t)
	vm, err := w.AddAppVM(Config{Kind: UnixBench, Dom: 1, CPU: 1, HVM: true,
		Duration: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	vm.Start()
	clk.RunUntil(time.Second)
	if failed, reason := h.Failed(); failed {
		t.Fatalf("hypervisor failed: %s", reason)
	}
	if ok, reason := vm.Verdict(); !ok {
		t.Fatalf("HVM UnixBench failed: %s (ops=%d)", reason, vm.OpsCompleted)
	}
	if !vm.Running() && !vm.Finished {
		t.Fatal("Running/Finished inconsistent")
	}
	// EPT pins are balanced like PV pins: every live process's page
	// tables are mapped exactly once.
	d, _ := h.Domain(1)
	for _, f := range vm.procs.livePageTables() {
		fr := h.Frames.Frame(f)
		if fr.UseCount != 1 || !fr.Validated {
			t.Fatalf("EPT-mapped frame %d: count=%d validated=%v", f, fr.UseCount, fr.Validated)
		}
	}
	if vm.procs.count() == 0 {
		t.Fatal("no live processes at benchmark end")
	}
	_ = d
	if held := h.Locks.HeldLocks(); len(held) != 0 {
		t.Fatalf("held locks after HVM run: %v", held)
	}
}

func TestSenderAccessors(t *testing.T) {
	w, _, clk := newWorld(t)
	if w.Sender.Period() != time.Millisecond {
		t.Fatalf("Period = %v, want 1ms (§VI-A)", w.Sender.Period())
	}
	vm, _ := w.AddAppVM(Config{Kind: NetBench, Dom: 2, CPU: 2, Duration: 100 * time.Millisecond})
	vm.Start()
	w.Sender.Start(2, 100*time.Millisecond)
	clk.RunUntil(500 * time.Millisecond)
	if w.Sender.MaxGap() <= 0 || w.Sender.MaxGap() > 5*time.Millisecond {
		t.Fatalf("MaxGap = %v on clean run", w.Sender.MaxGap())
	}
}

func TestBlkBenchFinishWaitsForInFlight(t *testing.T) {
	// A very short run ends with I/O still in flight; finish must wait
	// for the drain rather than declare completion with grants mapped.
	w, h, clk := newWorld(t)
	vm, _ := w.AddAppVM(Config{Kind: BlkBench, Dom: 1, CPU: 1,
		Duration: 3 * time.Millisecond, IterPeriod: time.Millisecond})
	vm.Start()
	clk.RunUntil(2 * time.Second)
	if !vm.Finished {
		t.Fatal("BlkBench never finished")
	}
	d, _ := h.Domain(1)
	if got := d.Maptrack.Active(); got != 0 {
		t.Fatalf("%d mappings still active at finish", got)
	}
}
