// Package telemetry is the always-on observability layer: a metrics
// registry (counters, gauges, power-of-two histograms) and a flight
// recorder (fixed-size ring of compact binary events), both designed so
// the hot path is a plain array write with no allocation, no locking, and
// no formatting. Every identifier is pre-registered at boot: recording a
// counter is Counters[id]++, recording a flight event is one struct store
// into a power-of-two ring.
//
// The package is simulated-time-native — timestamps come from an installed
// now() function (the simulation clock), never the wall clock — and
// snapshot/restore-aware: a campaign that forks runs from a boot snapshot
// restores the telemetry state captured at boot, so forked runs produce
// bit-identical metrics and flight-recorder contents to cold-booted ones.
//
// telemetry deliberately depends only on the standard library so that
// every layer of the simulator (simclock, hw, hv, hypercall, sched,
// detect, core, audit, campaign) can import it without cycles.
package telemetry

import "time"

// Counter identifies a pre-registered counter. Counters are plain uint64
// adds — commutative and associative, so per-shard telemetry merges to the
// same totals regardless of worker count or completion order.
type Counter int

// Counter registry. The order is append-only: snapshots store raw arrays,
// and reordering would silently remap restored values.
const (
	CtrDispatches Counter = iota // hypercalls/VM exits entering the hypervisor
	CtrCompletions
	CtrPanics
	CtrSpins
	CtrWedges
	CtrDiscards // execution threads discarded by recovery
	CtrRetries  // interrupted requests re-dispatched after recovery
	CtrDrops    // interrupted requests abandoned
	CtrTimerIRQs
	CtrDeviceIRQs
	CtrNMIs
	CtrInjections // fault-injection triggers that fired
	CtrDetections
	CtrDetectPanic
	CtrDetectHang
	CtrRecoveryAttempts
	CtrEscalations
	CtrRecoveries
	CtrAuditRuns
	CtrAuditViolations
	CtrAuditRepairs
	CtrAuditDegraded
	CtrAuditEscalate
	CtrSchedWakes
	CtrSchedSwitches
	CtrSchedBlocks
	CtrLockAcquisitions
	CtrLockContended
	CtrMgmtCompletions // completed management hypercalls issued by the PrivVM
	CtrDetectMgmt      // management-call watchdog firings
	CtrDetectIRQ       // IRQ-delivery criterion firings
	CtrPrivVMRestarts  // PrivVM-restart rung executions
	CtrIOAPICRepairs   // IO-APIC redirection entries reprogrammed in recovery

	// ctrOpBase starts the per-hypercall-op block: CtrOp(op) for op in
	// [0, MaxOps). Keep this block last so new scalar counters can be
	// appended before it without disturbing the op slots.
	ctrOpBase

	// NumCounters sizes the counter array.
	NumCounters = int(ctrOpBase) + MaxOps
)

// MaxOps bounds the per-op counter block (hypercall op codes are small).
const MaxOps = 16

// CtrOp returns the counter slot for a hypercall op code.
func CtrOp(op int) Counter { return ctrOpBase + Counter(op&(MaxOps-1)) }

// counterNames maps scalar counters to stable export names.
var counterNames = [...]string{
	CtrDispatches:       "hv.dispatches",
	CtrCompletions:      "hv.completions",
	CtrPanics:           "hv.panics",
	CtrSpins:            "hv.spins",
	CtrWedges:           "hv.wedges",
	CtrDiscards:         "recovery.discards",
	CtrRetries:          "recovery.retries",
	CtrDrops:            "recovery.drops",
	CtrTimerIRQs:        "irq.timer",
	CtrDeviceIRQs:       "irq.device",
	CtrNMIs:             "irq.nmi",
	CtrInjections:       "inject.fired",
	CtrDetections:       "detect.firings",
	CtrDetectPanic:      "detect.panic",
	CtrDetectHang:       "detect.hang",
	CtrRecoveryAttempts: "recovery.attempts",
	CtrEscalations:      "recovery.escalations",
	CtrRecoveries:       "recovery.recoveries",
	CtrAuditRuns:        "audit.runs",
	CtrAuditViolations:  "audit.violations",
	CtrAuditRepairs:     "audit.repairs",
	CtrAuditDegraded:    "audit.degraded",
	CtrAuditEscalate:    "audit.escalate",
	CtrSchedWakes:       "sched.wakes",
	CtrSchedSwitches:    "sched.switches",
	CtrSchedBlocks:      "sched.blocks",
	CtrLockAcquisitions: "lock.acquisitions",
	CtrLockContended:    "lock.contended",
	CtrMgmtCompletions:  "hv.mgmt_completions",
	CtrDetectMgmt:       "detect.mgmt_watchdog",
	CtrDetectIRQ:        "detect.irq_delivery",
	CtrPrivVMRestarts:   "recovery.privvm_restarts",
	CtrIOAPICRepairs:    "recovery.ioapic_repairs",
}

// Name returns the counter's stable export name.
func (c Counter) Name() string {
	if int(c) < len(counterNames) && counterNames[c] != "" {
		return counterNames[c]
	}
	if c >= ctrOpBase && int(c) < NumCounters {
		return "hypercall.op." + itoa(int(c-ctrOpBase))
	}
	return "counter." + itoa(int(c))
}

// Gauge identifies a sampled point-in-time value (set, not accumulated).
type Gauge int

// Gauge registry (append-only, same rule as counters).
const (
	GaugeHeldLocks Gauge = iota // locks held at sample time
	GaugeLiveDomains
	GaugeClockQueueHighWater // peak pending-event queue depth
	GaugeHypervisorCycles    // cycles spent in hypervisor code
	GaugeTrafficUsers        // simulated open-loop users offered against the host
	GaugeTrafficGoodput      // traffic goodput of the last closed SLO interval, ‰
	NumGauges
)

var gaugeNames = [...]string{
	GaugeHeldLocks:           "lock.held",
	GaugeLiveDomains:         "dom.live",
	GaugeClockQueueHighWater: "clock.queue_high_water",
	GaugeHypervisorCycles:    "cpu.hypervisor_cycles",
	GaugeTrafficUsers:        "traffic.users",
	GaugeTrafficGoodput:      "traffic.goodput_permille",
}

// Name returns the gauge's stable export name.
func (g Gauge) Name() string {
	if int(g) < len(gaugeNames) && gaugeNames[g] != "" {
		return gaugeNames[g]
	}
	return "gauge." + itoa(int(g))
}

// HistID identifies a pre-registered histogram.
type HistID int

// Histogram registry (append-only).
const (
	HistProgramSteps     HistID = iota // steps per dispatched handler program
	HistAttemptLatencyUs               // per-attempt recovery latency, µs
	HistRequestLatencyUs               // end-user request latency (traffic engine), µs
	NumHists
)

var histNames = [...]string{
	HistProgramSteps:     "hv.program_steps",
	HistAttemptLatencyUs: "recovery.attempt_latency_us",
	HistRequestLatencyUs: "traffic.request_latency_us",
}

// Name returns the histogram's stable export name.
func (id HistID) Name() string {
	if int(id) < len(histNames) && histNames[id] != "" {
		return histNames[id]
	}
	return "hist." + itoa(int(id))
}

// Telemetry is one simulation's metrics registry plus flight recorder.
// It is single-threaded like the simulation itself; campaign workers each
// own a private instance.
type Telemetry struct {
	Counters [NumCounters]uint64
	Gauges   [NumGauges]int64
	Hists    [NumHists]Hist
	Flight   Ring

	// OpNames, when set (by hv at boot), names the per-op counter block
	// and dispatch/complete flight events in exports.
	OpNames []string

	now func() time.Duration

	// String interning: flight events carry uint64 args, so variable
	// strings (lock names, panic reasons, phase names) are stored once
	// here and referenced by ID. The table is part of snapshots —
	// restore truncates it back to its boot-time length so forked runs
	// assign the same IDs a cold boot would.
	strs   []string
	strIDs map[string]uint64
}

// New builds a telemetry instance whose flight recorder holds capacity
// events (rounded up to a power of two; minimum 16) and whose timestamps
// come from now (the simulation clock).
func New(capacity int, now func() time.Duration) *Telemetry {
	if capacity < 16 {
		capacity = 16
	}
	size := 16
	for size < capacity {
		size <<= 1
	}
	t := &Telemetry{
		now:    now,
		strIDs: make(map[string]uint64, 64),
		strs:   make([]string, 0, 64),
	}
	t.Flight.buf = make([]Event, size)
	t.Flight.mask = uint64(size - 1)
	// ID 0 is reserved so a zero Arg decodes to "" rather than aliasing
	// the first interned string.
	t.strs = append(t.strs, "")
	t.strIDs[""] = 0
	return t
}

// Inc adds one to a counter. Safe on a nil receiver (uninstrumented
// standalone subsystem construction in tests).
func (t *Telemetry) Inc(c Counter) {
	if t == nil {
		return
	}
	t.Counters[c]++
}

// Add adds n to a counter. Safe on a nil receiver.
func (t *Telemetry) Add(c Counter, n uint64) {
	if t == nil {
		return
	}
	t.Counters[c] += n
}

// SetGauge records a sampled value. Safe on a nil receiver.
func (t *Telemetry) SetGauge(g Gauge, v int64) {
	if t == nil {
		return
	}
	t.Gauges[g] = v
}

// Observe records v into a histogram. Safe on a nil receiver.
func (t *Telemetry) Observe(id HistID, v uint64) {
	if t == nil {
		return
	}
	t.Hists[id].Observe(v)
}

// Intern returns a stable ID for s, assigning one on first sight. IDs are
// assigned in first-use order, which is deterministic because the
// simulation is; snapshots capture the table and restores truncate it, so
// a forked run re-assigns exactly the IDs a cold boot would.
func (t *Telemetry) Intern(s string) uint64 {
	if t == nil {
		return 0
	}
	if id, ok := t.strIDs[s]; ok {
		return id
	}
	id := uint64(len(t.strs))
	t.strs = append(t.strs, s)
	t.strIDs[s] = id
	return id
}

// Str resolves an interned ID (empty string for unknown IDs).
func (t *Telemetry) Str(id uint64) string {
	if t == nil || id >= uint64(len(t.strs)) {
		return ""
	}
	return t.strs[id]
}

// Record appends a flight event stamped with the current simulated time.
// Safe on a nil receiver. This is the hot path: a now() call, one struct
// store, one increment.
func (t *Telemetry) Record(cpu int, code EventCode, arg uint64) {
	if t == nil {
		return
	}
	f := &t.Flight
	f.buf[f.next&f.mask] = Event{At: int64(t.now()), Arg: arg, Code: code, CPU: int16(cpu)}
	f.next++
}

// RecordAt appends a flight event with an explicit timestamp — used by the
// recovery engine, which charges phase latencies while the clock is frozen
// at detection time and therefore knows span times the clock hasn't
// reached yet.
func (t *Telemetry) RecordAt(at time.Duration, cpu int, code EventCode, arg uint64) {
	if t == nil {
		return
	}
	f := &t.Flight
	f.buf[f.next&f.mask] = Event{At: int64(at), Arg: arg, Code: code, CPU: int16(cpu)}
	f.next++
}

// Snapshot is captured telemetry state for later Restore.
type Snapshot struct {
	counters   [NumCounters]uint64
	gauges     [NumGauges]int64
	hists      [NumHists]Hist
	flightBuf  []Event
	flightNext uint64
	strLen     int
}

// Snapshot captures the full telemetry state. The returned snapshot stays
// valid for the life of the Telemetry and can be restored repeatedly.
func (t *Telemetry) Snapshot() *Snapshot {
	s := &Snapshot{
		counters:   t.Counters,
		gauges:     t.Gauges,
		hists:      t.Hists,
		flightNext: t.Flight.next,
		strLen:     len(t.strs),
		flightBuf:  make([]Event, len(t.Flight.buf)),
	}
	copy(s.flightBuf, t.Flight.buf)
	return s
}

// Restore rewinds to a snapshot taken on this instance. It does not
// allocate: arrays copy in place, and the intern table truncates back to
// its captured length (deleting the map entries interned since), so the
// next run re-assigns the same IDs from the same starting point.
func (t *Telemetry) Restore(s *Snapshot) {
	t.Counters = s.counters
	t.Gauges = s.gauges
	t.Hists = s.hists
	copy(t.Flight.buf, s.flightBuf)
	t.Flight.next = s.flightNext
	for i := s.strLen; i < len(t.strs); i++ {
		delete(t.strIDs, t.strs[i])
		t.strs[i] = ""
	}
	t.strs = t.strs[:s.strLen]
}

// itoa is a minimal integer formatter (avoids strconv in name paths that
// tests may hit before any formatting package is otherwise needed — and
// keeps the metric-name functions allocation-predictable).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
