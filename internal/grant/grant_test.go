package grant

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestGrantRevokeRoundTrip(t *testing.T) {
	tab := NewTable(1, 8)
	if tab.Owner() != 1 || tab.Len() != 8 {
		t.Fatal("accessors wrong")
	}
	if err := tab.Grant(3, 100, false); err != nil {
		t.Fatal(err)
	}
	e, err := tab.Entry(3)
	if err != nil || !e.InUse || e.Frame != 100 || e.ReadOnly {
		t.Fatalf("entry = %+v, %v", e, err)
	}
	if got := tab.ActiveGrants(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("ActiveGrants = %v", got)
	}
	if err := tab.Revoke(3); err != nil {
		t.Fatal(err)
	}
	if got := tab.ActiveGrants(); len(got) != 0 {
		t.Fatalf("ActiveGrants after revoke = %v", got)
	}
}

func TestGrantErrors(t *testing.T) {
	tab := NewTable(1, 4)
	if err := tab.Grant(99, 1, false); !errors.Is(err, ErrBadRef) {
		t.Fatalf("err = %v, want ErrBadRef", err)
	}
	if err := tab.Revoke(2); !errors.Is(err, ErrNotInUse) {
		t.Fatalf("err = %v, want ErrNotInUse", err)
	}
	if _, err := tab.Entry(-1); !errors.Is(err, ErrBadRef) {
		t.Fatalf("err = %v, want ErrBadRef", err)
	}
}

func TestMapUnmapLifecycle(t *testing.T) {
	granter := NewTable(1, 8)
	mt := NewMaptrack(0)
	if err := granter.Grant(2, 555, true); err != nil {
		t.Fatal(err)
	}
	h, frame, err := mt.Map(granter, 2)
	if err != nil || frame != 555 {
		t.Fatalf("Map = %v, %d, %v", h, frame, err)
	}
	if mt.Active() != 1 {
		t.Fatalf("Active = %d", mt.Active())
	}
	e, _ := granter.Entry(2)
	if e.MapCount != 1 {
		t.Fatalf("MapCount = %d", e.MapCount)
	}
	// Busy entry cannot be revoked or re-granted.
	if err := granter.Revoke(2); !errors.Is(err, ErrBusy) {
		t.Fatalf("revoke busy: %v, want ErrBusy", err)
	}
	if err := granter.Grant(2, 777, false); !errors.Is(err, ErrBusy) {
		t.Fatalf("re-grant busy: %v, want ErrBusy", err)
	}
	if got := mt.HandleForRef(1, 2); got != h {
		t.Fatalf("HandleForRef = %v, want %v", got, h)
	}
	mp, err := mt.Unmap(h, granter)
	if err != nil || mp.Frame != 555 || mp.Ref != 2 || mp.GranterDom != 1 {
		t.Fatalf("Unmap = %+v, %v", mp, err)
	}
	if e.MapCount != 0 || mt.Active() != 0 {
		t.Fatal("counts not restored")
	}
	if err := granter.Revoke(2); err != nil {
		t.Fatalf("revoke after unmap: %v", err)
	}
	if got := mt.HandleForRef(1, 2); got != -1 {
		t.Fatalf("HandleForRef after unmap = %v", got)
	}
}

func TestMapErrors(t *testing.T) {
	granter := NewTable(1, 4)
	mt := NewMaptrack(0)
	if _, _, err := mt.Map(granter, 2); !errors.Is(err, ErrNotInUse) {
		t.Fatalf("map unused: %v", err)
	}
	if _, _, err := mt.Map(granter, 99); !errors.Is(err, ErrBadRef) {
		t.Fatalf("map bad ref: %v", err)
	}
	if _, err := mt.Unmap(42, granter); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("unmap bad handle: %v", err)
	}
}

func TestMultipleMappingsPerEntry(t *testing.T) {
	granter := NewTable(1, 4)
	mt := NewMaptrack(0)
	granter.Grant(1, 10, false)
	h1, _, _ := mt.Map(granter, 1)
	h2, _, _ := mt.Map(granter, 1)
	e, _ := granter.Entry(1)
	if e.MapCount != 2 {
		t.Fatalf("MapCount = %d", e.MapCount)
	}
	mt.Unmap(h1, granter)
	if e.MapCount != 1 {
		t.Fatalf("MapCount after first unmap = %d", e.MapCount)
	}
	mt.Unmap(h2, granter)
	if e.MapCount != 0 {
		t.Fatalf("MapCount after second unmap = %d", e.MapCount)
	}
}

func TestForceUnmapAll(t *testing.T) {
	granter := NewTable(1, 8)
	mt := NewMaptrack(0)
	for ref := 0; ref < 3; ref++ {
		granter.Grant(ref, 100+ref, false)
		if _, _, err := mt.Map(granter, ref); err != nil {
			t.Fatal(err)
		}
	}
	dropped := mt.ForceUnmapAll(func(dom int) *Table {
		if dom == 1 {
			return granter
		}
		return nil
	})
	if len(dropped) != 3 || mt.Active() != 0 {
		t.Fatalf("dropped %d, active %d", len(dropped), mt.Active())
	}
	for ref := 0; ref < 3; ref++ {
		if e, _ := granter.Entry(ref); e.MapCount != 0 {
			t.Fatalf("ref %d MapCount = %d", ref, e.MapCount)
		}
	}
}

// TestPropertyMapCountBalance: any interleaving of grants, maps and
// unmaps keeps every entry's MapCount equal to its live handles.
func TestPropertyMapCountBalance(t *testing.T) {
	f := func(ops []uint8) bool {
		granter := NewTable(1, 8)
		mt := NewMaptrack(0)
		var handles []Handle
		for _, op := range ops {
			ref := int(op) % 8
			switch (op / 8) % 3 {
			case 0:
				granter.Grant(ref, int(op), false)
			case 1:
				if h, _, err := mt.Map(granter, ref); err == nil {
					handles = append(handles, h)
				}
			case 2:
				if len(handles) > 0 {
					mt.Unmap(handles[len(handles)-1], granter)
					handles = handles[:len(handles)-1]
				}
			}
		}
		// Balance: sum of MapCounts == live handles.
		sum := 0
		for ref := 0; ref < 8; ref++ {
			e, _ := granter.Entry(ref)
			if e.MapCount < 0 {
				return false
			}
			sum += e.MapCount
		}
		return sum == mt.Active()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
