package hv

// Console is the hypervisor console: a bounded ring of messages guarded
// by the static console lock (the structure console_io writes under). The
// PrivVM drains it during normal operation; recovery diagnostics land
// here too, which is why a held console lock after a failed recovery is
// so deadly — even the panic path wants it.
type Console struct {
	ring  []string
	cap   int
	start int

	// Written counts all messages ever accepted; Dropped counts ring
	// overwrites (oldest-first overwrite, as in Xen's conring).
	Written uint64
	Dropped uint64
}

// NewConsole builds a console ring with the given capacity.
func NewConsole(capacity int) *Console {
	if capacity <= 0 {
		capacity = 256
	}
	return &Console{cap: capacity}
}

// Write appends a message, overwriting the oldest once full. Callers must
// hold the console lock (hypercall handlers acquire it; the model does not
// enforce it here because panic paths write lock-free by design).
func (c *Console) Write(msg string) {
	c.Written++
	if len(c.ring) < c.cap {
		c.ring = append(c.ring, msg)
		return
	}
	c.ring[c.start] = msg
	c.start = (c.start + 1) % c.cap
	c.Dropped++
}

// Drain returns and clears the buffered messages in write order (the
// PrivVM's console daemon).
func (c *Console) Drain() []string {
	out := make([]string, 0, len(c.ring))
	out = append(out, c.ring[c.start:]...)
	out = append(out, c.ring[:c.start]...)
	c.ring = c.ring[:0]
	c.start = 0
	return out
}

// Discard clears the buffered messages without rendering them — Drain for
// consumers that ignore the output (the PrivVM's console daemon on the
// campaign hot path), so draining never allocates.
func (c *Console) Discard() {
	for i := range c.ring {
		c.ring[i] = ""
	}
	c.ring = c.ring[:0]
	c.start = 0
}

// Len returns the number of buffered messages.
func (c *Console) Len() int { return len(c.ring) }
