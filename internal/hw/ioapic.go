package hw

import "fmt"

// IRQLine identifies a hardware interrupt line routed through the IO-APIC.
type IRQLine int

// Device interrupt lines.
const (
	IRQBlock IRQLine = iota + 1
	IRQNIC

	numIRQLines = int(IRQNIC) + 1
)

// String returns a short name for the line.
func (l IRQLine) String() string {
	switch l {
	case IRQBlock:
		return "irq-block"
	case IRQNIC:
		return "irq-nic"
	default:
		return fmt.Sprintf("irq(%d)", int(l))
	}
}

// lineState tracks the per-line delivery state machine. A line with an
// un-acknowledged in-service interrupt cannot deliver again: if recovery
// fails to acknowledge in-service interrupts (§III-B "all pending and
// in-service interrupts are acknowledged"), the device behind the line goes
// silent and the corresponding VM eventually fails.
type lineState struct {
	cpu       int    // routed destination CPU
	vec       Vector // delivered vector
	enabled   bool
	inService bool
	pending   bool
}

// IOAPIC routes device interrupt lines to CPUs. Writes to its redirection
// table during normal operation are what ReHype must log and replay across
// reboot (Table IV discussion); NiLiHype keeps the table in place.
type IOAPIC struct {
	machine *Machine
	lines   [numIRQLines + 1]lineState

	// RedirWrites counts redirection-table writes since boot; ReHype's
	// IO-APIC logging during normal operation mirrors these.
	RedirWrites uint64
}

func newIOAPIC(m *Machine) *IOAPIC {
	io := &IOAPIC{machine: m}
	return io
}

// Route programs line to deliver vec to cpu and enables it.
func (io *IOAPIC) Route(line IRQLine, cpu int, vec Vector) {
	io.lines[line] = lineState{cpu: cpu, vec: vec, enabled: true}
	io.RedirWrites++
}

// Mask disables delivery on line.
func (io *IOAPIC) Mask(line IRQLine) {
	io.lines[line].enabled = false
	io.RedirWrites++
}

// Raise asserts line. If the line is enabled and has no in-service
// interrupt, the interrupt is delivered (or queued pending at the CPU);
// otherwise the assertion is latched pending at the line.
func (io *IOAPIC) Raise(line IRQLine) {
	st := &io.lines[line]
	if !st.enabled {
		return
	}
	if st.inService {
		st.pending = true
		return
	}
	st.inService = true
	io.machine.cpus[st.cpu].raise(st.vec)
}

// EOI acknowledges the in-service interrupt on line. If another assertion
// was latched while in service, it is delivered immediately.
func (io *IOAPIC) EOI(line IRQLine) {
	st := &io.lines[line]
	if !st.inService {
		return
	}
	st.inService = false
	if st.pending {
		st.pending = false
		st.inService = true
		io.machine.cpus[st.cpu].raise(st.vec)
	}
}

// InService reports whether line has an unacknowledged in-service
// interrupt.
func (io *IOAPIC) InService(line IRQLine) bool { return io.lines[line].inService }

// AckAll acknowledges every pending and in-service interrupt on every
// line. This is the recovery-time "acknowledge all pending and in-service
// interrupts" operation shared by ReHype and NiLiHype.
func (io *IOAPIC) AckAll() {
	for i := range io.lines {
		io.lines[i].inService = false
		io.lines[i].pending = false
	}
}

// LineFor returns the line that delivers vec, or -1 if none does.
func (io *IOAPIC) LineFor(vec Vector) IRQLine {
	for i := 1; i < len(io.lines); i++ {
		if io.lines[i].enabled && io.lines[i].vec == vec {
			return IRQLine(i)
		}
	}
	return -1
}
