package guest

import (
	"time"

	"nilihype/internal/hw"
)

// NetSender is the NetBench sender: a process on a separate physical host
// that sends one UDP packet per millisecond to the receiver AppVM and
// measures replies (§VI-A). Because it is outside the target system, it
// keeps running during hypervisor recovery — which is exactly how the
// paper measures recovery latency as service interruption (§VII-B).
type NetSender struct {
	w *World

	flow    int
	period  time.Duration
	startAt time.Duration
	stopAt  time.Duration
	seq     uint64

	// Sent/Received count packets and replies.
	Sent     uint64
	Received uint64

	lastReply   time.Duration
	gotReply    bool
	maxGap      time.Duration
	replyTimes  []time.Duration
	exclusions  []window
	intervalLen time.Duration
}

type window struct{ start, end time.Duration }

func newNetSender(w *World) *NetSender {
	s := &NetSender{w: w, period: time.Millisecond, intervalLen: time.Second}
	w.H.Machine.NIC().SetTxSink(s.onReply)
	return s
}

// Period returns the send period (1 ms).
func (s *NetSender) Period() time.Duration { return s.period }

// Start begins sending to the receiver domain for the given duration.
func (s *NetSender) Start(flow int, duration time.Duration) {
	s.flow = flow
	s.startAt = s.w.H.Clock.Now()
	s.stopAt = s.startAt + duration
	s.scheduleSend()
}

func (s *NetSender) scheduleSend() {
	s.w.H.Clock.After(s.period, "netbench-send", func() {
		now := s.w.H.Clock.Now()
		if now >= s.stopAt {
			return
		}
		if failed, _ := s.w.H.Failed(); failed {
			return
		}
		s.seq++
		s.Sent++
		s.w.H.Machine.NIC().Inject(hw.Packet{Flow: s.flow, Seq: s.seq, SentAt: now})
		s.scheduleSend()
	})
}

// onReply records one reply from the receiver.
func (s *NetSender) onReply(p hw.Packet) {
	now := s.w.H.Clock.Now()
	s.Received++
	s.replyTimes = append(s.replyTimes, now)
	if s.gotReply && now-s.lastReply > s.maxGap {
		s.maxGap = now - s.lastReply
	}
	s.gotReply = true
	s.lastReply = now
}

// MaxGap returns the longest observed inter-reply gap — the sender-side
// view of service interruption (recovery latency plus one send period).
func (s *NetSender) MaxGap() time.Duration { return s.maxGap }

// ServiceInterruption estimates the service outage: the longest gap minus
// the nominal reply spacing.
func (s *NetSender) ServiceInterruption() time.Duration {
	if s.maxGap <= s.period {
		return 0
	}
	return s.maxGap - s.period
}

// ExcludeWindow marks [start, end) as an announced outage (the recovery
// window) that the reception-rate criterion does not penalize. The paper
// applies the 10%-drop criterion to steady-state behavior and separately
// reports the recovery gap as latency (§VI-A, §VII-B).
//
// The exclusion set is kept sorted, disjoint, and coalesced on insert.
// Escalating recoveries announce one window per attempt and those windows
// share a start (the first detection instant), so without coalescing the
// per-window overlap sum would double-count the shared span and
// over-discount an interval's usable time — masking genuinely failed
// intervals. Adjacent windows ([a,b) + [b,c)) merge too: exclusion is
// about covered time, and they cover [a,c).
func (s *NetSender) ExcludeWindow(start, end time.Duration) {
	if end <= start {
		return
	}
	// Find the run [i, j) of existing windows that overlap or touch
	// [start, end); they merge with it into one.
	i := 0
	for i < len(s.exclusions) && s.exclusions[i].end < start {
		i++
	}
	j := i
	for j < len(s.exclusions) && s.exclusions[j].start <= end {
		if s.exclusions[j].start < start {
			start = s.exclusions[j].start
		}
		if s.exclusions[j].end > end {
			end = s.exclusions[j].end
		}
		j++
	}
	if i == j {
		// No overlap: splice the new window in at i.
		s.exclusions = append(s.exclusions, window{})
		copy(s.exclusions[i+1:], s.exclusions[i:])
		s.exclusions[i] = window{start, end}
		return
	}
	s.exclusions[i] = window{start, end}
	s.exclusions = append(s.exclusions[:i+1], s.exclusions[j:]...)
}

// FailedIntervals applies the paper's criterion: the number of 1-second
// intervals whose reception rate dropped more than 10% below nominal,
// with excluded windows discounted.
func (s *NetSender) FailedIntervals() int {
	if s.stopAt == 0 {
		return 0
	}
	failed := 0
	for t := s.startAt; t < s.stopAt; t += s.intervalLen {
		end := min(t+s.intervalLen, s.stopAt)
		usable := (end - t) - s.overlap(t, end)
		expected := float64(usable) / float64(s.period)
		if expected < 1 {
			continue
		}
		got := 0
		for _, rt := range s.replyTimes {
			if rt >= t && rt < end {
				got++
			}
		}
		if float64(got) < 0.9*expected {
			failed++
		}
	}
	return failed
}

// overlap returns how much of [a,b) is covered by exclusion windows.
// Because the set is disjoint, the per-window sum is exact (and can never
// exceed b-a).
func (s *NetSender) overlap(a, b time.Duration) time.Duration {
	var total time.Duration
	for _, w := range s.exclusions {
		lo, hi := max(a, w.start), min(b, w.end)
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}
