package dom

import (
	"nilihype/internal/evtchn"
	"nilihype/internal/grant"
	"nilihype/internal/sched"
	"nilihype/internal/xentime"
)

// domainState is one domain's captured mutable fields plus the snapshots
// of its owned sub-tables. The *Domain pointer is part of the snapshot:
// the rest of the hypervisor references domains by pointer, so restore
// revives the same structures in place.
type domainState struct {
	d          *Domain
	vcpus      []*sched.VCPU
	totPages   int
	ringPort   int
	wakeup     *xentime.Timer
	failed     bool
	failReason string

	events   *evtchn.TableSnapshot
	grants   *grant.TableSnapshot
	maptrack *grant.MaptrackSnapshot
}

// Snapshot captures the domain list: the preserved structures in insertion
// order (link state is implied — a snapshot is only taken while the links
// are intact, so restore relinks from the order) and each domain's mutable
// fields and sub-tables.
type Snapshot struct {
	domains []domainState
}

// Snapshot captures the list state.
func (l *List) Snapshot() *Snapshot {
	s := &Snapshot{domains: make([]domainState, len(l.domains))}
	for i, d := range l.domains {
		st := domainState{
			d:          d,
			vcpus:      append([]*sched.VCPU(nil), d.VCPUs...),
			totPages:   d.TotPages,
			ringPort:   d.RingPort,
			wakeup:     d.WakeupTimer,
			failed:     d.Failed,
			failReason: d.FailReason,
		}
		if d.Events != nil {
			st.events = d.Events.Snapshot()
		}
		if d.GrantTab != nil {
			st.grants = d.GrantTab.Snapshot()
		}
		if d.Maptrack != nil {
			st.maptrack = d.Maptrack.Snapshot()
		}
		s.domains[i] = st
	}
	return s
}

// Restore rewinds the list: domains created after the snapshot drop out,
// snapshot domains regain their saved fields and sub-table contents, and
// the linked list is rebuilt from the saved insertion order (undoing any
// link corruption inflicted since).
func (l *List) Restore(s *Snapshot) {
	l.domains = l.domains[:0]
	for i := range s.domains {
		st := &s.domains[i]
		d := st.d
		d.VCPUs = append(d.VCPUs[:0], st.vcpus...)
		d.TotPages = st.totPages
		d.RingPort = st.ringPort
		d.WakeupTimer = st.wakeup
		d.Failed = st.failed
		d.FailReason = st.failReason
		if st.events != nil {
			d.Events.Restore(st.events)
		}
		if st.grants != nil {
			d.GrantTab.Restore(st.grants)
		}
		if st.maptrack != nil {
			d.Maptrack.Restore(st.maptrack)
		}
		l.domains = append(l.domains, d)
	}
	l.relink()
}
