package hv

import (
	"strings"
	"testing"
	"time"

	"nilihype/internal/hypercall"
)

func TestTraceKindStrings(t *testing.T) {
	for _, tt := range []struct {
		k    TraceKind
		want string
	}{
		{TraceDispatch, "dispatch"}, {TraceComplete, "complete"},
		{TracePanic, "panic"}, {TraceSpin, "spin"}, {TraceWedge, "wedge"},
		{TraceDiscard, "discard"}, {TraceRetry, "retry"}, {TraceDrop, "drop"},
		{TraceKind(99), "trace(99)"},
	} {
		if got := tt.k.String(); got != tt.want {
			t.Fatalf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestTraceRecordsFullRecoveryTimeline(t *testing.T) {
	h, _ := newBooted(t)
	addAppVM(t, h, 1, 1)
	rec := NewTraceRecorder(256)
	h.SetTracer(rec.Record)
	h.SetPanicHook(func(int, string) {})

	d, _ := h.Domain(1)
	h.ArmInjection(250, func(InjectionPoint) (InjectAction, string) {
		return ActionPanic, "failstop"
	})
	h.Dispatch(1, &hypercall.Call{Op: hypercall.OpMMUUpdate, Dom: 1,
		Args: [4]uint64{hypercall.MMUPin, uint64(d.MemStart + 7)}})
	pending := h.DiscardAllThreads()
	h.Locks.UnlockHeapLocks()
	h.ClearIRQCounts()
	h.ReenableCPUs()
	h.RetryPendingCalls(pending)

	wantOrder := []TraceKind{TraceDispatch, TracePanic, TraceDiscard, TraceRetry, TraceDispatch, TraceComplete}
	events := rec.Events()
	if len(events) < len(wantOrder) {
		t.Fatalf("recorded %d events, want >= %d: %v", len(events), len(wantOrder), events)
	}
	for i, k := range wantOrder {
		if events[i].Kind != k {
			t.Fatalf("event %d = %v, want %v (timeline: %v)", i, events[i].Kind, k, events)
		}
	}
	if got := rec.Filter(TracePanic); len(got) != 1 || !strings.Contains(got[0].Detail, "failstop") {
		t.Fatalf("Filter(panic) = %v", got)
	}
	if !strings.Contains(events[0].String(), "cpu1") {
		t.Fatalf("String() = %q", events[0].String())
	}
}

func TestTraceRecorderBounded(t *testing.T) {
	rec := NewTraceRecorder(2)
	for i := 0; i < 5; i++ {
		rec.Record(TraceEvent{At: time.Duration(i), Kind: TraceDispatch})
	}
	events := rec.Events()
	if len(events) != 2 || rec.Dropped != 3 {
		t.Fatalf("events=%d dropped=%d", len(events), rec.Dropped)
	}
	// The recorder is a ring: the most recent events are retained (the
	// oldest are evicted), in chronological order.
	if events[0].At != 3 || events[1].At != 4 {
		t.Fatalf("ring should keep newest events in order, got %v", events)
	}
	// Filter sees the same retained window.
	if got := rec.Filter(TraceDispatch); len(got) != 2 || got[0].At != 3 {
		t.Fatalf("Filter over ring = %v", got)
	}
}

func TestTraceRecorderZeroCapacity(t *testing.T) {
	rec := NewTraceRecorder(0)
	rec.Record(TraceEvent{Kind: TracePanic})
	if len(rec.Events()) != 0 || rec.Dropped != 1 {
		t.Fatalf("zero-cap recorder retained events: %v dropped=%d", rec.Events(), rec.Dropped)
	}
}

func TestTraceDropAndSpinEvents(t *testing.T) {
	h, _ := newBooted(t)
	addAppVM(t, h, 1, 1)
	rec := NewTraceRecorder(64)
	h.SetTracer(rec.Record)
	h.SetPanicHook(func(int, string) {})

	// Spin event.
	h.Statics.Console.TryAcquire(3)
	h.Dispatch(1, &hypercall.Call{Op: hypercall.OpConsoleIO, Dom: 1})
	if got := rec.Filter(TraceSpin); len(got) != 1 || got[0].Detail != "console_lock" {
		t.Fatalf("Filter(spin) = %v", got)
	}
	// Drop event.
	pending := h.DiscardAllThreads()
	h.DropPendingCalls(pending)
	if got := rec.Filter(TraceDrop); len(got) != 1 {
		t.Fatalf("Filter(drop) = %v", got)
	}
}

func TestTracingDisabledByDefault(t *testing.T) {
	h, clk := newBooted(t)
	addAppVM(t, h, 1, 1)
	clk.RunUntil(50 * time.Millisecond) // must not panic with nil tracer
}

// TestUntracedEmitSitesAreAllocationFree pins down the zero-tracer fast
// path: with no tracer installed, the trace emit helpers must not format,
// box, or allocate anything. Campaigns run with tracing off, and these
// helpers sit on every hypercall dispatch and completion.
func TestUntracedEmitSitesAreAllocationFree(t *testing.T) {
	h, _ := newBooted(t)
	call := &hypercall.Call{Op: hypercall.OpMMUUpdate, Dom: 1,
		Args: [4]uint64{hypercall.MMUPin, 42}}

	if h.Tracing() {
		t.Fatal("tracer installed on a fresh hypervisor")
	}
	if allocs := testing.AllocsPerRun(200, func() {
		h.traceCall(1, TraceDispatch, call)
		h.traceCall(1, TraceComplete, call)
		h.trace(1, TraceSpin, "lock")
	}); allocs != 0 {
		t.Fatalf("untraced emit sites allocated %.0f objects per run, want 0", allocs)
	}
}

// TestTraceCallFormatsLazily checks the traced path still produces the
// same detail string an eager call.String() would have.
func TestTraceCallFormatsLazily(t *testing.T) {
	h, _ := newBooted(t)
	rec := NewTraceRecorder(8)
	h.SetTracer(rec.Record)
	if !h.Tracing() {
		t.Fatal("Tracing() false after SetTracer")
	}
	call := &hypercall.Call{Op: hypercall.OpEventChannelOp, Dom: 3}
	h.traceCall(2, TraceRetry, call)
	evs := rec.Events()
	if len(evs) != 1 {
		t.Fatalf("recorded %d events, want 1", len(evs))
	}
	if evs[0].Detail != call.String() || evs[0].Kind != TraceRetry || evs[0].CPU != 2 {
		t.Fatalf("event = %+v, want detail %q", evs[0], call.String())
	}
}
