package hv

import (
	"nilihype/internal/dom"
	"nilihype/internal/evtchn"
	"nilihype/internal/hw"
	"nilihype/internal/hypercall"
	"nilihype/internal/journal"
	"nilihype/internal/locking"
	"nilihype/internal/mm"
	"nilihype/internal/sched"
	"nilihype/internal/simclock"
	"nilihype/internal/telemetry"
	"nilihype/internal/xentime"
)

// percpuSaved is one CPU's captured hypervisor-private state.
type percpuSaved struct {
	localIRQCount        int
	current              *hypercall.Call
	currentProg          hypercall.Program
	currentStep          int
	inIRQ                bool
	irqActivity          string
	pendingPanic         string
	wedged               bool
	spinning             *locking.Lock
	fsgsSaved            bool
	wasBusyAtDiscard     bool
	abandonedUnmitigated bool

	undoWrites    uint64
	undoRollbacks uint64
}

// consSaved is the captured console ring.
type consSaved struct {
	ring    []string
	start   int
	written uint64
	dropped uint64
}

// Snapshot is a captured whole-hypervisor state: every subsystem snapshot
// plus the core's own mutable fields. It is designed for the boot-once /
// fork-many campaign pattern: capture once at a quiescent point (no
// in-flight handler program, no pending recovery), then Restore before
// each run.
//
// The snapshot deliberately does NOT capture h.RNG's position — forked
// runs reseed it via ReseedRun, and a freshly booted hypervisor is already
// at the same position, so both paths draw identical sequences.
type Snapshot struct {
	clock   *simclock.Snapshot
	machine *hw.Snapshot
	locks   *locking.Snapshot
	frames  *mm.FrameTableSnapshot
	heap    *mm.HeapSnapshot
	sched   *sched.Snapshot
	timers  *xentime.Snapshot
	domains *dom.Snapshot
	broker  *evtchn.BrokerSnapshot

	percpu []percpuSaved
	cons   consSaved

	nextGuestFrame int
	schedTicks     []*xentime.Timer
	crossCPUWaits  []CrossCPUWait

	injectArmed  bool
	injectBudget int64
	injectFn     InjectFunc

	failed     bool
	failReason string

	panicHook    func(cpu int, reason string)
	nmiHook      func(cpu int)
	callDoneHook func(*hypercall.Call, error)
	eventHook    func(domID, port int)
	nicRxHook    func(hw.Packet)
	pauseHook    func()
	tracer       func(TraceEvent)

	recoveryEpoch  uint64
	schedFluxProb  float64
	paused         bool
	callSeq        uint64
	staticScratch  []uint64
	recoveryVector uint64
	stats          Stats
	tel            *telemetry.Snapshot
	jrn            *journal.Snapshot
}

// Snapshot captures the hypervisor and everything below it (machine,
// clock, all subsystems). The caller must ensure the simulation is
// quiescent: between clock events, with no in-flight handler program and
// no deferred post-resume work. The campaign layer snapshots at
// boot-complete, which satisfies this by construction.
func (h *Hypervisor) Snapshot() *Snapshot {
	s := &Snapshot{
		clock:   h.Clock.Snapshot(),
		machine: h.Machine.Snapshot(),
		locks:   h.Locks.Snapshot(),
		frames:  h.Frames.Snapshot(),
		heap:    h.Heap.Snapshot(),
		sched:   h.Sched.Snapshot(),
		timers:  h.Timers.Snapshot(),
		domains: h.Domains.Snapshot(),
		broker:  h.Broker.Snapshot(),

		percpu: make([]percpuSaved, len(h.percpu)),
		cons: consSaved{
			ring:    append([]string(nil), h.Cons.ring...),
			start:   h.Cons.start,
			written: h.Cons.Written,
			dropped: h.Cons.Dropped,
		},

		nextGuestFrame: h.nextGuestFrame,
		crossCPUWaits:  append([]CrossCPUWait(nil), h.crossCPUWaits...),

		injectArmed:  h.injectArmed,
		injectBudget: h.injectBudget,
		injectFn:     h.injectFn,

		failed:     h.failed,
		failReason: h.failReason,

		panicHook:    h.panicHook,
		nmiHook:      h.nmiHook,
		callDoneHook: h.callDoneHook,
		eventHook:    h.eventHook,
		nicRxHook:    h.nicRxHook,
		pauseHook:    h.pauseHook,
		tracer:       h.tracer,

		recoveryEpoch:  h.recoveryEpoch,
		schedFluxProb:  h.schedFluxProb,
		paused:         h.paused,
		callSeq:        h.callSeq,
		staticScratch:  append([]uint64(nil), h.staticScratch...),
		recoveryVector: h.recoveryVector,
		stats:          h.Stats,
		tel:            h.Tel.Snapshot(),
		jrn:            h.Jrn.Snapshot(),
	}
	// Deterministic order for the standing-tick set is not needed (it is
	// restored into a map), but capture through the timer subsystem's
	// registered set would drag in inactive timers; iterate the map.
	for t := range h.schedTicks {
		s.schedTicks = append(s.schedTicks, t)
	}
	for i, pc := range h.percpu {
		s.percpu[i] = percpuSaved{
			localIRQCount:        pc.LocalIRQCount,
			current:              pc.Current,
			currentProg:          pc.CurrentProg,
			currentStep:          pc.CurrentStep,
			inIRQ:                pc.InIRQProgram,
			irqActivity:          pc.IRQActivity,
			pendingPanic:         pc.PendingPanic,
			wedged:               pc.Wedged,
			spinning:             pc.Spinning,
			fsgsSaved:            pc.FSGSSaved,
			wasBusyAtDiscard:     pc.WasBusyAtDiscard,
			abandonedUnmitigated: pc.abandonedUnmitigated,
			undoWrites:           pc.Env.Undo.Writes,
			undoRollbacks:        pc.Env.Undo.Rollbacks,
		}
	}
	return s
}

// Restore rewinds the hypervisor to the snapshot. Object identity is
// preserved throughout — every Domain, VCPU, Timer, Lock, heap Object and
// clock Event the snapshot saw is revived in place, so cross-references
// (including closures wired during boot) stay valid. State created after
// the snapshot (domains, timers, heap objects, clock events) is dropped.
//
// h.RNG is NOT rewound — callers fork a run by calling ReseedRun next,
// which puts the stream exactly where a fresh boot would.
func (h *Hypervisor) Restore(s *Snapshot) {
	h.Clock.Restore(s.clock)
	h.Machine.Restore(s.machine)
	h.Locks.Restore(s.locks)
	h.Frames.Restore(s.frames)
	h.Heap.Restore(s.heap)
	h.Sched.Restore(s.sched)
	h.Timers.Restore(s.timers)
	h.Domains.Restore(s.domains)
	h.Broker.Restore(s.broker)

	h.Cons.ring = append(h.Cons.ring[:0], s.cons.ring...)
	h.Cons.start = s.cons.start
	h.Cons.Written = s.cons.written
	h.Cons.Dropped = s.cons.dropped

	h.nextGuestFrame = s.nextGuestFrame
	h.crossCPUWaits = append(h.crossCPUWaits[:0], s.crossCPUWaits...)

	for t := range h.schedTicks {
		delete(h.schedTicks, t)
	}
	for _, t := range s.schedTicks {
		h.schedTicks[t] = true
	}

	h.injectArmed = s.injectArmed
	h.injectBudget = s.injectBudget
	h.injectFn = s.injectFn

	h.failed = s.failed
	h.failReason = s.failReason

	h.panicHook = s.panicHook
	h.nmiHook = s.nmiHook
	h.callDoneHook = s.callDoneHook
	h.eventHook = s.eventHook
	h.nicRxHook = s.nicRxHook
	h.pauseHook = s.pauseHook
	h.tracer = s.tracer

	h.recoveryEpoch = s.recoveryEpoch
	h.schedFluxProb = s.schedFluxProb
	h.paused = s.paused
	h.afterResume = h.afterResume[:0]
	h.callSeq = s.callSeq
	copy(h.staticScratch, s.staticScratch)
	h.recoveryVector = s.recoveryVector
	h.Stats = s.stats
	h.Tel.Restore(s.tel)
	h.Jrn.Restore(s.jrn)

	for i, pc := range h.percpu {
		st := &s.percpu[i]
		pc.LocalIRQCount = st.localIRQCount
		pc.Current = st.current
		pc.CurrentProg = st.currentProg
		pc.CurrentStep = st.currentStep
		pc.InIRQProgram = st.inIRQ
		pc.IRQActivity = st.irqActivity
		pc.PendingPanic = st.pendingPanic
		pc.Wedged = st.wedged
		pc.Spinning = st.spinning
		pc.FSGSSaved = st.fsgsSaved
		pc.WasBusyAtDiscard = st.wasBusyAtDiscard
		pc.abandonedUnmitigated = st.abandonedUnmitigated
		// The snapshot point is quiescent, so program-transient Env state
		// resets to its between-calls values.
		pc.Env.ResetProgramState()
		pc.Env.Call = nil
		pc.Env.Undo.Clear()
		pc.Env.Undo.Writes = st.undoWrites
		pc.Env.Undo.Rollbacks = st.undoRollbacks
	}
}

// ReseedRun rewinds the hypervisor's RNG stream to the position a fresh
// boot with this seed would have. On a freshly constructed hypervisor it
// is a no-op (New already seeds the stream identically), which is what
// makes cold-boot and snapshot-fork runs draw bit-identical sequences.
func (h *Hypervisor) ReseedRun(seed uint64) {
	h.rngStream.Reseed(seed, 0xce11)
}
