package simclock

import (
	"testing"
	"time"
)

// BenchmarkScheduleFire measures the steady-state schedule+dispatch cycle:
// every iteration schedules one event and dispatches one. This is the
// kernel's hot loop — hundreds of these per virtual millisecond per run.
func BenchmarkScheduleFire(b *testing.B) {
	c := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.After(time.Microsecond, "bench", fn)
		c.Step()
	}
}

// BenchmarkScheduleFireDepth64 keeps 64 events pending so sift-down walks
// real heap levels (the cache-miss case the 4-ary layout targets).
func BenchmarkScheduleFireDepth64(b *testing.B) {
	c := New()
	fn := func() {}
	for i := 0; i < 64; i++ {
		c.After(time.Duration(i+1)*time.Microsecond, "fill", fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.After(65*time.Microsecond, "bench", fn)
		c.Step()
	}
}

// BenchmarkCancel measures the schedule+cancel cycle (timer re-arm
// patterns: the APIC one-shot cancels and re-arms constantly).
func BenchmarkCancel(b *testing.B) {
	c := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := c.After(time.Millisecond, "bench", fn)
		c.Cancel(e)
	}
}

// BenchmarkReschedule measures moving a pending event (deadline updates).
func BenchmarkReschedule(b *testing.B) {
	c := New()
	fn := func() {}
	for i := 0; i < 32; i++ {
		c.After(time.Duration(i+1)*time.Hour, "fill", fn)
	}
	e := c.After(time.Hour, "bench", fn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reschedule(e, time.Duration(i%1000+1)*time.Minute)
	}
}
