package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"nilihype/internal/core"
	"nilihype/internal/inject"
)

func TestParseMechanismAndFault(t *testing.T) {
	if m, err := parseMechanism("rehype"); err != nil || m != core.Microreboot {
		t.Fatalf("parseMechanism(rehype) = %v, %v", m, err)
	}
	if _, err := parseMechanism("bogus"); err == nil {
		t.Fatal("parseMechanism accepted bogus")
	}
	if f, err := parseFault("Register"); err != nil || f != inject.Register {
		t.Fatalf("parseFault(Register) = %v, %v", f, err)
	}
	if _, err := parseFault("cosmic"); err == nil {
		t.Fatal("parseFault accepted cosmic")
	}
}

func TestBuildRunConfigAdversarial(t *testing.T) {
	rc, err := buildRunConfig(options{Seed: 5, Fault: "code", Mechanism: "nilihype",
		Adversarial: true, FlightCap: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if rc.Recovery.MaxAttempts() <= 1 || !rc.Recovery.Escalation.Audit {
		t.Fatalf("adversarial config lacks ladder/audit: %+v", rc.Recovery)
	}
	if rc.BurstWindow == 0 || !rc.FaultDuringRecovery {
		t.Fatalf("adversarial config lacks burst/during-recovery: %+v", rc)
	}
	if rc.FlightRecorderCapacity != 1024 {
		t.Fatalf("flight capacity not threaded: %d", rc.FlightRecorderCapacity)
	}
}

// chromeDoc mirrors the trace_event JSON shape for the assertions below.
type chromeDoc struct {
	TraceEvents []struct {
		Name  string  `json:"name"`
		Phase string  `json:"ph"`
		TS    float64 `json:"ts"`
		Dur   float64 `json:"dur"`
		PID   int     `json:"pid"`
		TID   int     `json:"tid"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestFailedAdversarialRunRendersChromeTrace is the tool's acceptance bar:
// scan for an adversarial run that fails or escalates and verify its
// rendering is valid Chrome trace JSON carrying the injection marker, the
// detection event, and recovery-phase spans.
func TestFailedAdversarialRunRendersChromeTrace(t *testing.T) {
	o := options{Seed: 1, Fault: "code", Mechanism: "nilihype", Adversarial: true,
		Format: "chrome", FlightCap: 4096, FindFailed: 64}
	var out, diag bytes.Buffer
	if err := render(o, &out, &diag); err != nil {
		t.Fatalf("render: %v", err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	var injects, detects, spans int
	for _, e := range doc.TraceEvents {
		switch {
		case strings.HasPrefix(e.Name, "inject:"):
			injects++
		case strings.HasPrefix(e.Name, "detect:"):
			detects++
		case e.Phase == "X":
			spans++
			if e.Dur < 0 {
				t.Fatalf("span %q has negative duration", e.Name)
			}
		}
	}
	if injects == 0 || detects == 0 || spans == 0 {
		t.Fatalf("trace missing markers: injects=%d detects=%d phase spans=%d\n%s",
			injects, detects, spans, diag.String())
	}
	if !strings.Contains(diag.String(), "seed") {
		t.Fatalf("diagnostic line missing: %q", diag.String())
	}
}

func TestTextFormatIncludesTimelineAndMetrics(t *testing.T) {
	o := options{Seed: 1, Fault: "failstop", Mechanism: "nilihype",
		Format: "text", FlightCap: 1024}
	var out, diag bytes.Buffer
	if err := render(o, &out, &diag); err != nil {
		t.Fatalf("render: %v", err)
	}
	s := out.String()
	for _, want := range []string{"inject", "detect", "hv.dispatches", "recovery.attempt_latency_us"} {
		if !strings.Contains(s, want) {
			t.Fatalf("text output missing %q:\n%s", want, s)
		}
	}
}

func TestRenderRejectsUnknownFormat(t *testing.T) {
	var out, diag bytes.Buffer
	err := render(options{Fault: "failstop", Mechanism: "nilihype", Format: "svg"}, &out, &diag)
	if err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("err = %v", err)
	}
}
