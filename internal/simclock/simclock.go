// Package simclock provides the discrete-event simulation kernel used by
// every other subsystem: a virtual clock, a deterministic event queue, and
// cancellable timers.
//
// All simulated components schedule work on a single Clock. Virtual time
// only advances when the next event is dispatched, so a simulated second
// costs only as many event dispatches as there are events in it. Events
// scheduled for the same instant fire in scheduling order (FIFO), which
// makes runs bit-for-bit reproducible for a fixed seed.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Func is the callback invoked when an event fires.
type Func func()

// Event is a scheduled callback. It is returned by At and After so that the
// caller can cancel or reschedule it. The zero value is not usable; events
// are created only by Clock.
type Event struct {
	when   time.Duration
	seq    uint64
	fn     Func
	tag    string
	index  int // heap index; -1 when not queued
	halted bool
}

// When reports the virtual time at which the event is scheduled to fire.
func (e *Event) When() time.Duration { return e.when }

// Tag returns the diagnostic label the event was scheduled with.
func (e *Event) Tag() string { return e.tag }

// Pending reports whether the event is still queued.
func (e *Event) Pending() bool { return e.index >= 0 }

// Clock is a discrete-event virtual clock. It is not safe for concurrent
// use; the whole simulation is single-threaded by design (determinism).
type Clock struct {
	now        time.Duration
	seq        uint64
	queue      eventQueue
	halted     bool
	dispatched uint64
}

// New returns a Clock positioned at virtual time zero.
func New() *Clock {
	return &Clock{}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Dispatched returns the number of events dispatched so far. It is useful
// for bounding runaway simulations in tests.
func (c *Clock) Dispatched() uint64 { return c.dispatched }

// Len returns the number of pending events.
func (c *Clock) Len() int { return c.queue.Len() }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is a programming error and panics: allowing it would silently reorder
// time and break determinism.
func (c *Clock) At(t time.Duration, tag string, fn Func) *Event {
	if t < c.now {
		panic(fmt.Sprintf("simclock: scheduling %q at %v before now %v", tag, t, c.now))
	}
	e := &Event{when: t, seq: c.seq, fn: fn, tag: tag}
	c.seq++
	heap.Push(&c.queue, e)
	return e
}

// After schedules fn to run d after the current virtual time.
func (c *Clock) After(d time.Duration, tag string, fn Func) *Event {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative delay %v for %q", d, tag))
	}
	return c.At(c.now+d, tag, fn)
}

// Cancel removes a pending event. Cancelling an event that already fired or
// was already cancelled is a no-op, so callers need not track event state.
func (c *Clock) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&c.queue, e.index)
}

// Reschedule moves a pending event to a new absolute time, preserving its
// callback and tag. If the event already fired it is re-queued.
func (c *Clock) Reschedule(e *Event, t time.Duration) {
	if t < c.now {
		panic(fmt.Sprintf("simclock: rescheduling %q at %v before now %v", e.tag, t, c.now))
	}
	if e.index >= 0 {
		heap.Remove(&c.queue, e.index)
	}
	e.when = t
	e.seq = c.seq
	c.seq++
	heap.Push(&c.queue, e)
}

// Step dispatches the single next event and returns true, or returns false
// if the queue is empty or the clock has been halted.
func (c *Clock) Step() bool {
	if c.halted || c.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&c.queue).(*Event)
	c.now = e.when
	c.dispatched++
	e.fn()
	return true
}

// RunUntil dispatches events until virtual time would pass t, the queue
// empties, or the clock halts. On return Now() == t unless halted earlier.
func (c *Clock) RunUntil(t time.Duration) {
	for !c.halted && c.queue.Len() > 0 && c.queue[0].when <= t {
		c.Step()
	}
	if !c.halted && c.now < t {
		c.now = t
	}
}

// Run dispatches events until the queue empties or the clock halts.
func (c *Clock) Run() {
	for c.Step() {
	}
}

// Halt stops dispatching. Pending events are preserved; Resume re-enables
// dispatching. Halt is how a simulation terminates early (e.g. on an
// unrecoverable hypervisor failure).
func (c *Clock) Halt() { c.halted = true }

// Resume re-enables dispatching after Halt.
func (c *Clock) Resume() { c.halted = false }

// Halted reports whether the clock is halted.
func (c *Clock) Halted() bool { return c.halted }

// eventQueue implements heap.Interface ordered by (when, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}
