package guest

// WorldSnapshot captures the guest world's structure: which AppVMs exist.
// Per-run workload state (counters, RNGs, file stores) is not saved —
// Restore resets it and the campaign re-arms each VM with SeedAppVM, the
// same way a cold boot would.
type WorldSnapshot struct {
	doms []int
	vms  []*AppVM
}

// Snapshot captures the world's AppVM set in domain-ID order.
func (w *World) Snapshot() *WorldSnapshot {
	s := &WorldSnapshot{}
	for _, vm := range w.Apps() {
		s.doms = append(s.doms, vm.Cfg.Dom)
		s.vms = append(s.vms, vm)
	}
	return s
}

// Restore rewinds the world: AppVMs attached after the snapshot (the
// 3AppVM setup's post-recovery BlkBench VM) drop out, the snapshot VMs
// reset to their pre-Start state, and the external sender's measurements
// clear. Callers must Reseed and SeedAppVM afterwards to arm the next run.
func (w *World) Restore(s *WorldSnapshot) {
	for d := range w.apps {
		delete(w.apps, d)
	}
	for i, d := range s.doms {
		vm := s.vms[i]
		vm.resetForRun()
		w.apps[d] = vm
	}
	w.Sender.reset()
	// At image-build time the PrivVM is healthy and its housekeeping tick
	// chain is armed (the queued tick event is clock-snapshot state that
	// the paired clock restore revives).
	w.privHung = false
	w.privTickLive = true
}

// resetForRun returns the VM to a state indistinguishable (to the
// workload) from freshly created: all benchmark-visible state rewinds,
// while allocation pools — the process free list, the in-flight map, the
// file store's map, the cached iterate method values — keep their capacity
// for the next run. SeedAppVM reseeds rng and Files afterwards, so a
// forked run draws exactly what a cold boot would.
func (vm *AppVM) resetForRun() {
	vm.OpsCompleted = 0
	vm.OpsAfterMark = 0
	vm.Started = false
	vm.Finished = false
	vm.OutputCorrupted = false
	vm.rng = nil
	vm.finishAt = 0
	vm.procs.reset()
	vm.nextRef = 0
	clear(vm.inFlight)
	vm.reserved = 0
}

// reset returns the sender to its pre-Start state, keeping the slice
// capacity of its measurement buffers.
func (s *NetSender) reset() {
	s.flow = 0
	s.startAt = 0
	s.stopAt = 0
	s.seq = 0
	s.Sent = 0
	s.Received = 0
	s.lastReply = 0
	s.gotReply = false
	s.maxGap = 0
	s.replyTimes = s.replyTimes[:0]
	s.exclusions = s.exclusions[:0]
}
