// Package detect implements the error-detection mechanisms the paper
// relies on (§VI-B): Xen's built-in panic detector (fatal exceptions and
// failed assertions) and the hang detector — a watchdog built from a
// per-CPU performance-counter NMI every 100 ms of unhalted cycles plus a
// recurring 100 ms software timer event that increments a counter. If the
// NMI handler sees the counter unchanged for three consecutive checks, a
// hang is detected.
package detect

import (
	"fmt"
	"time"

	"nilihype/internal/hv"
	"nilihype/internal/telemetry"
	"nilihype/internal/xentime"
)

// Kind is the detection type.
type Kind int

// Detection kinds.
const (
	Panic Kind = iota + 1
	Hang
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Hang:
		return "hang"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one detection.
type Event struct {
	CPU    int
	Kind   Kind
	Reason string
	At     time.Duration
}

// String formats the event.
func (e Event) String() string {
	return fmt.Sprintf("%v on cpu%d at %v: %s", e.Kind, e.CPU, e.At, e.Reason)
}

// Period is the watchdog period (both the NMI and the soft tick).
const Period = 100 * time.Millisecond

// StaleChecks is the number of consecutive unchanged-counter NMI checks
// that declare a hang.
const StaleChecks = 3

// Detector wires the panic and hang detectors into a hypervisor and
// reports detections through a single hook.
type Detector struct {
	h    *hv.Hypervisor
	hook func(Event)

	softCount []uint64 // incremented by the 100ms software timer event
	lastSeen  []uint64
	stale     []int
	ticks     []*xentime.Timer // per-CPU watchdog soft tick timers

	// Detections counts all events reported (including post-recovery
	// re-detections).
	Detections int
}

// New builds a detector for h. Call Start to arm it.
func New(h *hv.Hypervisor, hook func(Event)) *Detector {
	n := h.NumCPUs()
	return &Detector{
		h:         h,
		hook:      hook,
		softCount: make([]uint64, n),
		lastSeen:  make([]uint64, n),
		stale:     make([]int, n),
	}
}

// Start arms both detectors: the panic hook, the per-CPU watchdog soft
// timers, and the per-CPU performance-counter NMIs.
func (d *Detector) Start() {
	d.h.SetPanicHook(func(cpu int, reason string) {
		d.fire(Event{CPU: cpu, Kind: Panic, Reason: reason, At: d.h.Clock.Now()})
	})
	d.h.SetNMIHook(d.checkHang)
	now := d.h.Clock.Now()
	d.ticks = make([]*xentime.Timer, d.h.NumCPUs())
	for cpu := 0; cpu < d.h.NumCPUs(); cpu++ {
		cpu := cpu
		d.ticks[cpu] = d.h.Timers.AddTimer(cpu, fmt.Sprintf("watchdog_tick.cpu%d", cpu),
			now+Period, Period, func() { d.softCount[cpu]++ })
		d.h.Timers.ProgramAPIC(cpu)
		d.h.Machine.CPU(cpu).StartPerfNMI(Period)
	}
}

// checkHang is the NMI handler body: compare the CPU's soft counter with
// the last observation.
func (d *Detector) checkHang(cpu int) {
	if d.softCount[cpu] != d.lastSeen[cpu] {
		d.lastSeen[cpu] = d.softCount[cpu]
		d.stale[cpu] = 0
		return
	}
	d.stale[cpu]++
	if d.stale[cpu] >= StaleChecks {
		d.stale[cpu] = 0
		reason := "watchdog: no progress"
		if pc := d.h.PerCPU(cpu); pc.Spinning != nil {
			reason = fmt.Sprintf("watchdog: spinning on lock %q", pc.Spinning.Name())
		} else if pc.Wedged {
			reason = "watchdog: CPU wedged"
		}
		d.fire(Event{CPU: cpu, Kind: Hang, Reason: reason, At: d.h.Clock.Now()})
	}
}

// ResetProgress clears staleness tracking (recovery resumes fresh).
func (d *Detector) ResetProgress() {
	for cpu := range d.stale {
		d.stale[cpu] = 0
		d.lastSeen[cpu] = d.softCount[cpu]
	}
}

// Rearm prepares the detectors for the next recovery attempt: staleness
// tracking resets, and any watchdog source the failed attempt left dead —
// an inactive soft tick timer, a stopped performance-counter NMI — is
// revived. Escalating engines call it after every attempt: re-detection
// (and hence escalation) must work even when the attempt's repairs did not
// extend to the watchdog's own machinery.
func (d *Detector) Rearm() {
	d.ResetProgress()
	now := d.h.Clock.Now()
	for cpu := 0; cpu < d.h.NumCPUs(); cpu++ {
		if cpu < len(d.ticks) && d.ticks[cpu] != nil && !d.ticks[cpu].Active() {
			d.h.Timers.Reactivate(d.ticks[cpu], now)
		}
		if c := d.h.Machine.CPU(cpu); !c.PerfNMIRunning() {
			c.StartPerfNMI(Period)
		}
	}
}

// Reset rewinds the detector to its just-Started state: soft counters,
// NMI observations, staleness tracking and the detection count all return
// to zero. The tick timers and performance-counter NMIs themselves are
// run state restored by the hypervisor snapshot, so only the detector's
// own observations need clearing. Used by the campaign's snapshot-fork
// path between runs.
func (d *Detector) Reset() {
	for cpu := range d.softCount {
		d.softCount[cpu] = 0
		d.lastSeen[cpu] = 0
		d.stale[cpu] = 0
	}
	d.Detections = 0
}

func (d *Detector) fire(e Event) {
	d.Detections++
	d.h.Tel.Counters[telemetry.CtrDetections]++
	switch e.Kind {
	case Panic:
		d.h.Tel.Counters[telemetry.CtrDetectPanic]++
	case Hang:
		d.h.Tel.Counters[telemetry.CtrDetectHang]++
	}
	d.h.Tel.Record(e.CPU, telemetry.EvDetect, d.h.Tel.Intern(e.Reason))
	if d.hook != nil {
		d.hook(e)
	}
}
