package sched

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"nilihype/internal/locking"
)

func newTestSched(cpus int) (*Scheduler, *locking.Registry) {
	reg := locking.NewRegistry()
	return NewScheduler(cpus, reg), reg
}

func TestNewSchedulerRegistersHeapLocks(t *testing.T) {
	_, reg := newTestSched(4)
	staticN, heapN := reg.Counts()
	if staticN != 0 || heapN != 4 {
		t.Fatalf("lock counts = (%d,%d), want (0,4): Xen 4.x schedule locks are heap-allocated", staticN, heapN)
	}
}

func TestAddVCPUStartsRunnable(t *testing.T) {
	s, _ := newTestSched(2)
	v := s.AddVCPU(1, 0, 1)
	if v.State != Runnable || v.Processor != 1 || v.RunningOn != NoCPU {
		t.Fatalf("vcpu = %+v", v)
	}
	if s.RunqueueLen(1) != 1 || s.RunqueueLen(0) != 0 {
		t.Fatal("vcpu not on its pinned CPU's runqueue")
	}
	if v.Name() != "d1v0" {
		t.Fatalf("Name() = %q", v.Name())
	}
	if !v.ContextValid {
		t.Fatal("new vcpu has invalid context")
	}
}

func TestCompleteSwitchRunsVCPU(t *testing.T) {
	s, _ := newTestSched(1)
	v := s.AddVCPU(1, 0, 0)
	op := s.BeginSwitch(0)
	if op == nil {
		t.Fatal("BeginSwitch returned nil with runnable vcpu")
	}
	if op.Next() != v {
		t.Fatal("wrong next vcpu")
	}
	op.Complete()
	if s.Curr(0) != v || v.State != Running || v.RunningOn != 0 {
		t.Fatalf("after switch: curr=%v state=%v runningOn=%d", s.Curr(0), v.State, v.RunningOn)
	}
	if len(s.CheckConsistency()) != 0 {
		t.Fatalf("inconsistencies after clean switch: %v", s.CheckConsistency())
	}
}

func TestSwitchRequeuesPrev(t *testing.T) {
	s, _ := newTestSched(1)
	a := s.AddVCPU(1, 0, 0)
	b := s.AddVCPU(2, 0, 0)
	s.BeginSwitch(0).Complete() // a runs
	op := s.BeginSwitch(0)
	if op.Next() != b || op.Prev() != a {
		t.Fatalf("next=%v prev=%v", op.Next(), op.Prev())
	}
	op.Complete()
	if s.Curr(0) != b || a.State != Runnable || a.RunningOn != NoCPU {
		t.Fatal("prev not requeued runnable")
	}
	if s.RunqueueLen(0) != 1 {
		t.Fatalf("runq len = %d, want 1", s.RunqueueLen(0))
	}
	if len(s.CheckConsistency()) != 0 {
		t.Fatalf("inconsistencies: %v", s.CheckConsistency())
	}
}

func TestBeginSwitchEmptyRunqueue(t *testing.T) {
	s, _ := newTestSched(1)
	if op := s.BeginSwitch(0); op != nil {
		t.Fatal("BeginSwitch on empty runqueue returned op")
	}
}

func TestPartialSwitchLeavesInconsistency(t *testing.T) {
	// The paper's hazard: the switch is abandoned between updating the
	// per-CPU structure and the per-vCPU copies.
	s, _ := newTestSched(1)
	s.AddVCPU(1, 0, 0)
	op := s.BeginSwitch(0)
	op.StepDequeueNext()
	op.StepRequeuePrev()
	op.StepSetCurr()
	// discarded before StepSetVCPU
	inc := s.CheckConsistency()
	if len(inc) == 0 {
		t.Fatal("partial switch reported consistent")
	}
	fixed := s.RepairFromPerCPU()
	if fixed == 0 {
		t.Fatal("repair fixed nothing")
	}
	if len(s.CheckConsistency()) != 0 {
		t.Fatalf("inconsistencies after repair: %v", s.CheckConsistency())
	}
	// Per-CPU is the source of truth: the vCPU must now be Running here.
	if v := s.Curr(0); v == nil || v.State != Running || v.RunningOn != 0 {
		t.Fatal("repair did not promote percpu.curr to running")
	}
}

func TestBlockClearsCurr(t *testing.T) {
	s, _ := newTestSched(1)
	v := s.AddVCPU(1, 0, 0)
	s.BeginSwitch(0).Complete()
	s.Block(0)
	if s.Curr(0) != nil || v.State != Blocked || v.RunningOn != NoCPU {
		t.Fatal("block did not transition vcpu")
	}
	s.Block(0) // idle CPU: no-op
	s.Wake(v)
	if v.State != Runnable || s.RunqueueLen(0) != 1 {
		t.Fatal("wake did not requeue vcpu")
	}
	s.Wake(v) // already runnable: no-op
	if s.RunqueueLen(0) != 1 {
		t.Fatal("double wake double-enqueued")
	}
}

func TestRemoveVCPU(t *testing.T) {
	s, _ := newTestSched(2)
	a := s.AddVCPU(1, 0, 0)
	b := s.AddVCPU(2, 0, 1)
	s.BeginSwitch(0).Complete()
	s.RemoveVCPU(a) // currently running
	if s.Curr(0) != nil {
		t.Fatal("removed vcpu still curr")
	}
	s.RemoveVCPU(b) // queued
	if s.RunqueueLen(1) != 0 {
		t.Fatal("removed vcpu still queued")
	}
	if len(s.VCPUs()) != 0 {
		t.Fatal("vcpus still registered")
	}
	if len(s.CheckConsistency()) != 0 {
		t.Fatalf("inconsistencies: %v", s.CheckConsistency())
	}
}

func TestCheckConsistencyDetectsEachDisagreement(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(s *Scheduler, v *VCPU)
	}{
		{"runningOn wrong", func(s *Scheduler, v *VCPU) { v.RunningOn = 1 }},
		{"processor wrong", func(s *Scheduler, v *VCPU) { v.Processor = 1 }},
		{"state wrong", func(s *Scheduler, v *VCPU) { v.State = Blocked }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, _ := newTestSched(2)
			v := s.AddVCPU(1, 0, 0)
			s.BeginSwitch(0).Complete()
			tt.mutate(s, v)
			if len(s.CheckConsistency()) == 0 {
				t.Fatal("inconsistency not detected")
			}
			s.RepairFromPerCPU()
			if got := s.CheckConsistency(); len(got) != 0 {
				t.Fatalf("after repair: %v", got)
			}
		})
	}
}

func TestCreditRefill(t *testing.T) {
	s, _ := newTestSched(1)
	v := s.AddVCPU(1, 0, 0)
	start := v.Credit
	for i := 0; i < 40; i++ {
		s.BeginSwitch(0).Complete()
		s.Block(0)
		s.Wake(v)
	}
	if v.Credit <= 0 || v.Credit > start {
		t.Fatalf("credit = %d, want in (0,%d] after refills", v.Credit, start)
	}
}

func TestStateString(t *testing.T) {
	tests := []struct {
		s    State
		want string
	}{
		{Runnable, "runnable"}, {Running, "running"},
		{Blocked, "blocked"}, {Offline, "offline"}, {State(9), "state(9)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestCorruptRandomCreatesDetectableDamage(t *testing.T) {
	s, _ := newTestSched(2)
	s.AddVCPU(1, 0, 0)
	s.AddVCPU(2, 0, 1)
	s.BeginSwitch(0).Complete()
	s.BeginSwitch(1).Complete()
	rng := rand.New(rand.NewPCG(7, 7))
	damaged := 0
	for i := 0; i < 50; i++ {
		s.CorruptRandom(rng)
		if len(s.CheckConsistency()) > 0 {
			damaged++
		}
		s.RepairFromPerCPU()
		if len(s.CheckConsistency()) != 0 {
			t.Fatal("repair left inconsistency")
		}
	}
	if damaged == 0 {
		t.Fatal("CorruptRandom never produced detectable damage")
	}
}

func TestCorruptRandomNoVCPUs(t *testing.T) {
	s, _ := newTestSched(1)
	if got := s.CorruptRandom(rand.New(rand.NewPCG(1, 1))); got != "no vcpus" {
		t.Fatalf("got %q", got)
	}
}

// TestPropertyRepairAlwaysConverges: from any corrupted state, one repair
// pass yields zero inconsistencies and preserves the per-CPU assignments.
func TestPropertyRepairAlwaysConverges(t *testing.T) {
	f := func(seed uint64, nCorrupt uint8) bool {
		s, _ := newTestSched(4)
		for d := 1; d <= 4; d++ {
			s.AddVCPU(d, 0, d-1)
		}
		for c := 0; c < 4; c++ {
			s.BeginSwitch(c).Complete()
		}
		currBefore := make([]*VCPU, 4)
		for c := 0; c < 4; c++ {
			currBefore[c] = s.Curr(c)
		}
		rng := rand.New(rand.NewPCG(seed, 1))
		for i := 0; i < int(nCorrupt%16); i++ {
			s.CorruptRandom(rng)
		}
		s.RepairFromPerCPU()
		if len(s.CheckConsistency()) != 0 {
			return false
		}
		for c := 0; c < 4; c++ {
			if s.Curr(c) != currBefore[c] {
				return false // repair must trust the per-CPU structure
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySwitchSequenceMaintainsInvariant: any interleaving of
// complete switches, blocks and wakes keeps metadata consistent.
func TestPropertySwitchSequenceMaintainsInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		s, _ := newTestSched(2)
		vs := []*VCPU{s.AddVCPU(1, 0, 0), s.AddVCPU(2, 0, 1), s.AddVCPU(3, 0, 0)}
		for _, op := range ops {
			cpu := int(op) % 2
			switch (op / 2) % 3 {
			case 0:
				if sw := s.BeginSwitch(cpu); sw != nil {
					sw.Complete()
				}
			case 1:
				s.Block(cpu)
			case 2:
				s.Wake(vs[int(op)%3])
			}
			if len(s.CheckConsistency()) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
